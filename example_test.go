package pchls_test

import (
	"fmt"
	"log"

	"pchls"
)

// ExampleSynthesize shows the basic synthesis flow: the HAL benchmark
// under a 17-cycle latency bound and a per-cycle power cap of 8 units.
func ExampleSynthesize() {
	g := pchls.MustBenchmark("hal")
	lib := pchls.Table1()
	design, err := pchls.Synthesize(g, lib, pchls.Constraints{
		Deadline: 17,
		PowerMax: 8,
	}, pchls.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("area %.0f with %d functional units in %d cycles, peak power %.1f\n",
		design.Area(), len(design.FUs), design.Schedule.Length(), design.Schedule.PeakPower())
	// Output:
	// area 511 with 8 functional units in 16 cycles, peak power 7.9
}

// ExamplePASAP contrasts the paper's power-constrained ASAP against the
// classical ASAP: the same graph and modules, but the schedule is
// stretched until no cycle exceeds the power cap.
func ExamplePASAP() {
	g := pchls.MustBenchmark("hal")
	lib := pchls.Table1()
	bind := pchls.UniformSmallest(lib) // serial multipliers

	classical, err := pchls.ASAP(g, bind)
	if err != nil {
		log.Fatal(err)
	}
	capped, err := pchls.PASAP(g, bind, pchls.ScheduleOptions{PowerMax: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("asap:  %d cycles, peak %.1f\n", classical.Length(), classical.PeakPower())
	fmt.Printf("pasap: %d cycles, peak %.1f\n", capped.Length(), capped.PeakPower())
	// Output:
	// asap:  12 cycles, peak 15.0
	// pasap: 17 cycles, peak 5.9
}

// ExampleFigure1 reproduces the paper's motivation: capping the power
// profile extends battery lifetime at identical energy.
func ExampleFigure1() {
	r, err := pchls.Figure1(pchls.MustBenchmark("hal"), pchls.Table1(), 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KiBaM battery lifetime extension: %.1f%%\n", r.Kibam.ExtensionPercent())
	// Output:
	// KiBaM battery lifetime extension: 25.0%
}

// ExampleSimulateDesign runs the synthesized FSMD on concrete inputs;
// the result matches direct evaluation of the data-flow graph.
func ExampleSimulateDesign() {
	design, err := pchls.Synthesize(pchls.MustBenchmark("hal"), pchls.Table1(),
		pchls.Constraints{Deadline: 17, PowerMax: 8}, pchls.Config{})
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[string]int64{"x": 3, "y": 4, "u": 5, "dx": 2, "a": 100}
	out, err := pchls.SimulateDesign(design, inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("y1 =", out["out_y1"]) // y + u*dx = 4 + 10
	// Output:
	// y1 = 14
}

// ExampleNewGraph builds a custom data-flow graph and synthesizes it.
func ExampleNewGraph() {
	g := pchls.NewGraph("mac")
	x := g.MustAddNode("x", pchls.Input)
	y := g.MustAddNode("y", pchls.Input)
	acc := g.MustAddNode("acc", pchls.Input)
	mul := g.MustAddNode("mul", pchls.Mul)
	add := g.MustAddNode("add", pchls.Add)
	out := g.MustAddNode("out", pchls.Output)
	g.MustAddEdge(x, mul)
	g.MustAddEdge(y, mul)
	g.MustAddEdge(mul, add)
	g.MustAddEdge(acc, add)
	g.MustAddEdge(add, out)

	design, err := pchls.Synthesize(g, pchls.Table1(), pchls.Constraints{Deadline: 8}, pchls.Config{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := pchls.SimulateDesign(design, map[string]int64{"x": 6, "y": 7, "acc": 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("out =", res["out"])
	// Output:
	// out = 50
}

// ExamplePipelineSchedule folds the HAL loop at an initiation interval of
// 8 cycles: a new iteration starts every 8 cycles and the power cap
// applies to the folded steady-state profile.
func ExamplePipelineSchedule() {
	g := pchls.MustBenchmark("hal")
	lib := pchls.Table1()
	bind := pchls.UniformFastest(lib)
	r, err := pchls.PipelineSchedule(g, bind, lib, 8, 24, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("II=%d: latency %d, folded peak %.2f, FU area %.0f\n",
		r.II, r.Schedule.Length(), r.PeakPower(), r.FUArea)
	// Output:
	// II=8: latency 9, folded peak 19.60, FU area 972
}

// ExampleExploreSurface samples the time-power design space and extracts
// the Pareto-optimal corner points.
func ExampleExploreSurface() {
	s, err := pchls.ExploreSurface(pchls.MustBenchmark("hal"), pchls.Table1(), pchls.SurfaceConfig{
		Deadlines:  []int{10, 17},
		Powers:     []float64{8, 20},
		SinglePass: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range s.ParetoFront() {
		fmt.Printf("T=%d P<=%g area %.0f\n", p.Deadline, p.Power, p.Area)
	}
	// Output:
	// T=10 P<=20 area 1407
	// T=17 P<=8 area 511
}
