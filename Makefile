# pchls — power-constrained high-level synthesis.

GO ?= go

.PHONY: all build test test-race vet bench bench-compare bench-pareto bench-scaling test-alloc figures fuzz cover cover-report sweep lint vulncheck serve smoke cluster-smoke loadtest clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l .

test:
	$(GO) test ./...

# Full suite under the race detector — the gate for the parallel
# exploration engine (internal/runner and its call sites).
test-race:
	$(GO) test -race ./...

# One iteration of every benchmark: regenerates the data behind every
# table and figure of the paper plus the ablations.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE .

# Benchmark regression gate: re-run the checked-in suites and fail when
# ns/op or allocs/op regresses >20% vs results/BENCH_*.json
# (override with BENCH_TOLERANCE=0.30 etc.).
bench-compare:
	./scripts/bench_compare.sh

# Pareto lane only: multi-objective exploration wall time plus the
# exactly-pinned front size and minimum front area QoR metrics
# (results/BENCH_pareto.json).
bench-pareto:
	BENCH_LANES=pareto ./scripts/bench_compare.sh

# Full scaling lane: every BenchmarkScaling tier including the two
# ~20-minute legacy n=1000 passes, gated against results/BENCH_scaling.json budgets
# and the legacy-over-scale speedup floors.
bench-scaling:
	PCHLS_SCALING_FULL=1 BENCH_LANES=scaling ./scripts/bench_compare.sh

# Allocation-regression tests (hot-path AllocsPerRun budgets); these are
# meaningless under -race, so they get their own race-free lane.
test-alloc:
	$(GO) test -run Allocs -v ./internal/sched ./internal/core ./internal/compat

# Full experiment artifacts: Figure 2 CSVs + HTML, Figure 1 report,
# time-power surface.
figures:
	$(GO) run ./cmd/pchls-explore -all -pmin 2.5 -step 2.5 -csvdir results -html results/figure2.html
	$(GO) run ./cmd/pchls-battery -g hal -P 12 > results/figure1.txt
	$(GO) run ./cmd/pchls-explore -surface -g hal -html results/surface_hal.html > results/surface_hal.txt
	$(GO) run ./cmd/pchls-battery -g hal -P 12 -html results/figure1.html > /dev/null

fuzz:
	$(GO) test -fuzz='FuzzParse$$' -fuzztime=30s ./internal/cdfg/
	$(GO) test -fuzz=FuzzParseJSON -fuzztime=30s ./internal/cdfg/
	$(GO) test -fuzz='FuzzParse$$' -fuzztime=30s ./internal/library/
	$(GO) test -fuzz=FuzzParseJSON -fuzztime=30s ./internal/library/
	$(GO) test -fuzz=FuzzRunnerMap -fuzztime=30s ./internal/runner/
	$(GO) test -fuzz=FuzzDecodeRequest -fuzztime=30s ./internal/server/
	$(GO) test -fuzz=FuzzSynthesizeVerify -fuzztime=30s .

# Run the synthesis daemon locally.
serve:
	$(GO) run ./cmd/pchls-server -addr :8080

# End-to-end smoke of the daemon: start it on a private port, probe
# /healthz, synthesize hal twice (cold then warm must byte-match), and
# check /metrics reports the cache hit.
smoke:
	./scripts/smoke.sh

# Cluster smoke: boot a coordinator plus two workers, run a sharded
# sweep and surface, and require byte-identity against the pchls CLI.
cluster-smoke:
	./scripts/cluster_smoke.sh

# Load test: warm an in-process daemon, then drive 1000-concurrent
# traffic at it and report latency quantiles from the obs histogram
# (LOADTEST_ARGS overrides, e.g. LOADTEST_ARGS='-addr http://host:8080').
loadtest:
	$(GO) run ./scripts/loadtest $(LOADTEST_ARGS)

cover:
	$(GO) test ./... -cover

# Coverage profile + per-function report (writes cover.out).
cover-report:
	$(GO) test ./... -coverprofile=cover.out
	$(GO) tool cover -func=cover.out | tail -1

# Full-size property sweep: 10k random instances through
# synthesize -> independent verify (override PCHLS_PROPERTY_DESIGNS).
sweep:
	$(GO) test -run TestPropertySynthesizeVerify -v .

# Static analysis beyond vet. staticcheck/govulncheck are not vendored;
# the targets no-op with a notice when the binaries are absent so the
# default dev container stays dependency-free (CI installs them).
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

clean:
	rm -f test_output.txt bench_output.txt
