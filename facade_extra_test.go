package pchls

import (
	"strings"
	"testing"
)

func halInputs() map[string]int64 {
	return map[string]int64{"x": 3, "y": 4, "u": 5, "dx": 2, "a": 100}
}

func TestFacadeSimulateAndVerify(t *testing.T) {
	d, err := Synthesize(MustBenchmark("hal"), Table1(), Constraints{Deadline: 17, PowerMax: 8}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := SimulateDesign(d, halInputs())
	if err != nil {
		t.Fatal(err)
	}
	// x1 = x + dx = 5; y1 = y + u*dx = 14; u1 = u - x*(u*dx) - y*dx = -33
	// (constant operands evaluate as identities); c = (x1 > a) = 0.
	want := map[string]int64{"out_x1": 5, "out_y1": 14, "out_u1": -33, "out_c": 0}
	for name, v := range want {
		if out[name] != v {
			t.Errorf("%s = %d, want %d", name, out[name], v)
		}
	}
	if err := VerifyDesign(d, halInputs()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDumpVCD(t *testing.T) {
	d, err := Synthesize(MustBenchmark("hal"), Table1(), Constraints{Deadline: 17, PowerMax: 8}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := DumpVCD(d, halInputs(), 16, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "$enddefinitions $end") {
		t.Fatal("VCD header missing")
	}
}

func TestFacadeCliquePartitionMode(t *testing.T) {
	d, err := SynthesizeCliquePartition(MustBenchmark("hal"), Table1(), Constraints{Deadline: 17, PowerMax: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Schedule.Validate(10, 17); err != nil {
		t.Fatal(err)
	}
	if err := VerifyDesign(d, halInputs()); err != nil {
		t.Fatalf("static clique-mode design functionally wrong: %v", err)
	}
}

func TestFacadeTimeSweep(t *testing.T) {
	c, err := TimeSweep(MustBenchmark("hal"), Table1(), 0, TimeSweepConfig{
		TMin: 8, TMax: 16, Step: 2, SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 5 {
		t.Fatalf("%d points", len(c.Points))
	}
	if _, ok := c.MinFeasibleDeadline(); !ok {
		t.Fatal("no feasible deadline")
	}
	if !strings.Contains(c.CSV(), "deadline") {
		t.Fatal("csv header missing")
	}
}

func TestFacadeStatsSurfaced(t *testing.T) {
	d, err := Synthesize(MustBenchmark("hal"), Table1(), Constraints{Deadline: 17, PowerMax: 20}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.SchedulerRuns == 0 {
		t.Fatal("Design.Stats reports zero scheduler runs")
	}
	// Engine savings are visible on graphs above the small-graph
	// threshold (hal itself auto-selects the legacy path — see DESIGN.md
	// §7 on engine selection).
	big, err := Synthesize(MustBenchmark("ar"), Table1(), Constraints{Deadline: 30, PowerMax: 13}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Synthesize(MustBenchmark("ar"), Table1(), Constraints{Deadline: 30, PowerMax: 13},
		Config{DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Stats.SchedulerRuns <= big.Stats.SchedulerRuns {
		t.Fatalf("legacy path did %d full runs, incremental %d — engine saved nothing",
			legacy.Stats.SchedulerRuns, big.Stats.SchedulerRuns)
	}
	var agg Stats
	agg = agg.Add(big.Stats).Add(legacy.Stats)
	if agg.SchedulerRuns != big.Stats.SchedulerRuns+legacy.Stats.SchedulerRuns {
		t.Fatalf("Stats.Add mismatch: %+v", agg)
	}
	c, err := Sweep(MustBenchmark("hal"), Table1(), 17, SweepConfig{PowerMin: 10, PowerMax: 20, Step: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalStats().SchedulerRuns == 0 {
		t.Fatal("Curve.TotalStats reports zero scheduler runs")
	}
}
