package pchls_test

import (
	"errors"
	"testing"

	"pchls"
	"pchls/internal/gen"
)

// FuzzSynthesizeVerify drives the whole pipeline from a fuzzed seed and
// constraint perturbation: generate an instance, synthesize it, and hold
// the engine to its two allowed outcomes — a design that passes the
// independent validator, or an explicit infeasibility verdict. The fuzzer
// owns the constraint knobs, so it explores corners the property sweep's
// fixed grid does not (zero and huge slack, sub-floor power caps).
func FuzzSynthesizeVerify(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(130), uint8(120), false)
	f.Add(int64(42), uint8(4), uint8(100), uint8(0), true)
	f.Add(int64(7), uint8(12), uint8(255), uint8(255), false)
	f.Add(int64(-3), uint8(1), uint8(110), uint8(100), true)
	f.Add(int64(999), uint8(9), uint8(140), uint8(10), false)
	f.Fuzz(func(t *testing.T, seed int64, nodes, slackPct, powerPct uint8, portfolio bool) {
		n := 1 + int(nodes)%14
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph:   gen.GraphConfig{Nodes: n, MaxWidth: 1 + n/3},
			Library: gen.LibraryConfig{ModulesPerOp: 2, DelayMax: 3, ALUChance: 0.25},
			// NewInstance keeps its defaults; the fuzzed percentages below
			// override the constraint point entirely.
			SlackMin: 1.2, SlackMax: 1.3,
		})
		// Deadline: slackPct percent of the derived deadline, floor 1.
		deadline := inst.Deadline * int(slackPct) / 100
		if deadline < 1 {
			deadline = 1
		}
		// Power cap: powerPct percent of the derived cap; 0 = unconstrained.
		powerMax := inst.PowerMax * float64(powerPct) / 100

		synth := pchls.Synthesize
		if portfolio {
			synth = pchls.SynthesizeBest
		}
		d, err := synth(inst.Graph, inst.Library, pchls.Constraints{Deadline: deadline, PowerMax: powerMax}, pchls.Config{Workers: 1})
		if err != nil {
			if !errors.Is(err, pchls.ErrInfeasible) {
				t.Fatalf("seed %d nodes %d T=%d P<=%g: non-infeasibility failure: %v", seed, n, deadline, powerMax, err)
			}
			return
		}
		if verr := pchls.Verify(d); verr != nil {
			t.Fatalf("seed %d nodes %d T=%d P<=%g: design rejected by the independent validator: %v",
				seed, n, deadline, powerMax, verr)
		}
	})
}
