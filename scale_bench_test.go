package pchls

// Scaling benchmark lane: synthesis wall-time on seeded random graphs of
// 100, 300 and 1000 computation nodes, comparing the scaling engine
// (auto-selected SDC windows, incremental compatibility maintenance,
// hierarchical decomposition — the default Config) against the
// pre-refactor path (exhaustive per-candidate windows, no decomposition).
// scripts/benchcompare gates the scale-mode budgets and the
// legacy-over-scale speedup ratios against results/BENCH_scaling.json.
//
//	go test -bench Scaling -benchtime 1x .

import (
	"context"
	"os"
	"runtime/pprof"
	"testing"

	"pchls/internal/gen"
)

// scalingTier is one (shape, size) point of the lane.
type scalingTier struct {
	name   string
	preset gen.Preset
	nodes  int
	// connect bridges the generated graph into a single weakly-connected
	// component (gen.GraphConfig.Connect). Connected tiers exercise the
	// min-cut decomposition, and their legacy mode is the serial
	// monolithic SDC pass (Partition off) rather than the exhaustive
	// pre-refactor engine — the comparison the min-cut speedup floor is
	// defined against.
	connect bool
}

// scalingTiers is the published tier set; benchcompare's min_speedup map
// keys match the tier names here.
var scalingTiers = []scalingTier{
	{"layered-n100", gen.PresetLayered, 100, false},
	{"layered-n300", gen.PresetLayered, 300, false},
	{"blocks-n300", gen.PresetBlocks, 300, false},
	{"layered-n1000", gen.PresetLayered, 1000, false},
	{"blocks-n1000", gen.PresetBlocks, 1000, false},
	{"layered-n1000-connected", gen.PresetLayered, 1000, true},
	{"mixed-n1000-connected", gen.PresetMixed, 1000, true},
}

// scalingInstance derives the tier's seeded instance and a binding but
// feasible constraint point: 50% deadline slack over the fastest-module
// ASAP length, power capped at 70% of the unconstrained ASAP peak. The
// point is deterministic in the tier (fixed seed) and verified feasible
// outside any timer, loosening the cap in 20% steps only as a safety
// valve (the published tiers all accept the first point).
func scalingInstance(b *testing.B, tier scalingTier) (*Graph, *Library, Constraints) {
	b.Helper()
	cfg, err := gen.PresetConfig(tier.preset, tier.nodes)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Connect = tier.connect
	inst := gen.NewInstance(int64(1000+tier.nodes), gen.InstanceConfig{Graph: cfg})
	asap, err := ASAP(inst.Graph, UniformFastest(inst.Library))
	if err != nil {
		b.Fatal(err)
	}
	cons := Constraints{
		Deadline: asap.Length() + asap.Length()/2,
		PowerMax: asap.PeakPower() * 0.7,
	}
	for tries := 0; ; tries++ {
		if _, err := Synthesize(inst.Graph, inst.Library, cons, Config{}); err == nil {
			break
		}
		switch {
		case cons.PowerMax <= 0:
			b.Fatalf("%s: unconstrained point infeasible: deadline too tight", tier.name)
		case tries >= 3:
			cons.PowerMax = 0 // latency-only fallback
		default:
			cons.PowerMax *= 1.2
		}
	}
	return inst.Graph, inst.Library, cons
}

// BenchmarkScaling runs every tier in both engine modes. The legacy mode
// of the n=100 tier doubles as the control: below the auto thresholds
// both modes take the identical code path, so their times must agree.
func BenchmarkScaling(b *testing.B) {
	for _, tier := range scalingTiers {
		modes := []struct {
			tag string
			cfg Config
		}{
			{"scale", Config{}},
			{"legacy", Config{Windows: WindowsExhaustive, Partition: PartitionOff}},
		}
		if tier.connect {
			// Connected tiers measure the min-cut decomposition, whose
			// published floor is against the serial monolithic SDC pass
			// (the previous default for a single-component graph), not
			// the exhaustive engine.
			modes[1].cfg = Config{Partition: PartitionOff}
		}
		g, lib, cons := scalingInstance(b, tier)
		for _, mode := range modes {
			b.Run(tier.name+"/"+mode.tag, func(b *testing.B) {
				// One exhaustive-legacy pass over an n=1000 graph takes
				// ~20 minutes (it is the O(n^3) path this lane exists to
				// retire), so the full-ratio run is opt-in: `make
				// bench-scaling` sets the variable; plain `-bench .`
				// smokes stay fast. The connected tiers' legacy mode is
				// the serial SDC pass (seconds, not minutes) and always
				// runs.
				if mode.tag == "legacy" && tier.nodes >= 1000 && !tier.connect && os.Getenv("PCHLS_SCALING_FULL") == "" {
					b.Skip("legacy n>=1000 tier skipped; set PCHLS_SCALING_FULL=1 (make bench-scaling)")
				}
				b.ReportAllocs()
				var st Stats
				pprof.Do(context.Background(),
					pprof.Labels("graph", tier.name, "mode", mode.tag, "lane", "scaling"),
					func(context.Context) {
						for i := 0; i < b.N; i++ {
							d, err := Synthesize(g, lib, cons, mode.cfg)
							if err != nil {
								b.Fatal(err)
							}
							st = d.Stats
						}
					})
				b.ReportMetric(float64(st.SDCDerivations), "sdc-derivations")
				b.ReportMetric(float64(st.CompatPatches), "compat-patches")
				b.ReportMetric(float64(st.Regions), "regions")
			})
		}
	}
}
