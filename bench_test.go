package pchls

// This file is the benchmark harness for the paper's evaluation artifacts:
// one benchmark per table and figure, plus ablation benches for the design
// choices documented in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics:
//
//	area        datapath area of the synthesized design (Table 1 units)
//	plateau     area at the loosest power budget of a Figure 2 curve
//	knee        tightest feasible power budget of a Figure 2 curve
//	ext%        battery lifetime extension of the capped schedule (Fig. 1)

import (
	"context"
	"runtime/pprof"
	"testing"

	"pchls/internal/clique"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// BenchmarkTable1FunctionalUnitLibrary regenerates Table 1: construction,
// validation and the selection queries the synthesizer performs against
// the paper's functional-unit library.
func BenchmarkTable1FunctionalUnitLibrary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lib := Table1()
		if lib.Len() != 8 {
			b.Fatal("table 1 must have 8 modules")
		}
		for _, op := range []Op{Add, Sub, Cmp, Mul, Input, Output} {
			if _, err := lib.Fastest(op); err != nil {
				b.Fatal(err)
			}
			if _, err := lib.Smallest(op); err != nil {
				b.Fatal(err)
			}
			if _, err := lib.LowestPower(op); err != nil {
				b.Fatal(err)
			}
		}
		_ = lib.Table()
	}
}

// BenchmarkFigure1PowerSchedules regenerates Figure 1: the undesired
// (ASAP) versus desired (pasap-capped) power schedule of HAL and the
// battery-lifetime delta between them.
func BenchmarkFigure1PowerSchedules(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	var ext float64
	for i := 0; i < b.N; i++ {
		r, err := Figure1(g, lib, 12)
		if err != nil {
			b.Fatal(err)
		}
		if r.StatsC.Peak > 12 {
			b.Fatal("constrained schedule exceeds the cap")
		}
		ext = r.Kibam.ExtensionPercent()
	}
	b.ReportMetric(ext, "ext%")
}

// figure2Curve sweeps one Figure 2 curve on a coarse grid and reports its
// plateau area and feasibility knee.
func figure2Curve(b *testing.B, benchmark string, deadline int) {
	b.Helper()
	g := MustBenchmark(benchmark)
	lib := Table1()
	cfg := SweepConfig{PowerMin: 5, PowerMax: 60, Step: 5}
	var plateau, knee float64
	for i := 0; i < b.N; i++ {
		c, err := Sweep(g, lib, deadline, cfg)
		if err != nil {
			b.Fatal(err)
		}
		k, ok := c.Knee()
		if !ok {
			b.Fatalf("%s (T=%d): no feasible point", benchmark, deadline)
		}
		p, _ := c.PlateauArea()
		plateau, knee = p, k
	}
	b.ReportMetric(plateau, "plateau")
	b.ReportMetric(knee, "knee")
}

// The six curves of Figure 2.

func BenchmarkFigure2AreaVsPowerHalT10(b *testing.B)      { figure2Curve(b, "hal", 10) }
func BenchmarkFigure2AreaVsPowerHalT17(b *testing.B)      { figure2Curve(b, "hal", 17) }
func BenchmarkFigure2AreaVsPowerCosineT12(b *testing.B)   { figure2Curve(b, "cosine", 12) }
func BenchmarkFigure2AreaVsPowerCosineT15(b *testing.B)   { figure2Curve(b, "cosine", 15) }
func BenchmarkFigure2AreaVsPowerCosineT19(b *testing.B)   { figure2Curve(b, "cosine", 19) }
func BenchmarkFigure2AreaVsPowerEllipticT22(b *testing.B) { figure2Curve(b, "elliptic", 22) }

// BenchmarkSynthesize measures the one-pass synthesizer on every paper
// benchmark at a binding constraint point (deadline = critical path + 3,
// power cap = 80% of the unconstrained peak), comparing the incremental
// evaluation engine against the recompute-everything legacy path. The
// custom metrics expose why the engine wins: full PASAP/PALAP scheduler
// runs, pinned incremental runs and window-cache hits per synthesis.
// results/BENCH_synthesize.json holds the recorded baseline.
func BenchmarkSynthesize(b *testing.B) {
	lib := Table1()
	for _, name := range []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"} {
		g := MustBenchmark(name)
		asap, err := ASAP(g, UniformFastest(lib))
		if err != nil {
			b.Fatal(err)
		}
		// Probe a binding but feasible cap: 80% of the unconstrained peak,
		// loosened in 10% steps when the point is infeasible (ar needs one
		// step). The probe runs outside the timer.
		cons := Constraints{Deadline: asap.Length() + 3, PowerMax: asap.PeakPower() * 0.8}
		for {
			if _, err := Synthesize(g, lib, cons, Config{}); err == nil {
				break
			}
			cons.PowerMax *= 1.1
			if cons.PowerMax > asap.PeakPower()*2 {
				b.Fatalf("%s: no feasible cap found", name)
			}
		}
		for _, mode := range []struct {
			tag string
			cfg Config
		}{
			{"incremental", Config{}},
			{"legacy", Config{DisableIncremental: true}},
		} {
			b.Run(name+"/"+mode.tag, func(b *testing.B) {
				b.ReportAllocs()
				var st Stats
				// pprof labels partition -cpuprofile/-memprofile samples by
				// benchmark graph and engine mode (see DESIGN.md §10).
				pprof.Do(context.Background(), pprof.Labels("graph", name, "mode", mode.tag), func(context.Context) {
					for i := 0; i < b.N; i++ {
						d, err := Synthesize(g, lib, cons, mode.cfg)
						if err != nil {
							b.Fatal(err)
						}
						st = d.Stats
					}
				})
				b.ReportMetric(float64(st.SchedulerRuns), "full-runs")
				b.ReportMetric(float64(st.IncrementalRuns), "pinned-runs")
				b.ReportMetric(float64(st.WindowCacheHits), "cache-hits")
			})
		}
	}
}

// BenchmarkSynthesizeSinglePass measures the paper's one-pass algorithm on
// each benchmark at a representative constraint point.
func BenchmarkSynthesizeSinglePass(b *testing.B) {
	cases := []struct {
		name string
		T    int
		P    float64
	}{
		{"hal", 10, 20}, {"cosine", 15, 30}, {"elliptic", 22, 15},
	}
	lib := Table1()
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g := MustBenchmark(tc.name)
			var area float64
			for i := 0; i < b.N; i++ {
				d, err := Synthesize(g, lib, Constraints{Deadline: tc.T, PowerMax: tc.P}, Config{})
				if err != nil {
					b.Fatal(err)
				}
				area = d.Area()
			}
			b.ReportMetric(area, "area")
		})
	}
}

// BenchmarkSynthesizePortfolio measures SynthesizeBest on the same points
// (the quality/runtime trade against the single pass).
func BenchmarkSynthesizePortfolio(b *testing.B) {
	cases := []struct {
		name string
		T    int
		P    float64
	}{
		{"hal", 10, 20}, {"cosine", 15, 30}, {"elliptic", 22, 15},
	}
	lib := Table1()
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			g := MustBenchmark(tc.name)
			var area float64
			for i := 0; i < b.N; i++ {
				d, err := SynthesizeBest(g, lib, Constraints{Deadline: tc.T, PowerMax: tc.P}, Config{})
				if err != nil {
					b.Fatal(err)
				}
				area = d.Area()
			}
			b.ReportMetric(area, "area")
		})
	}
}

// BenchmarkAnytimePortfolio measures the anytime portfolio layer
// (internal/portfolio: K perturbed passes + subgraph re-exploration) on a
// representative subset of benchmarks at the binding constraint point of
// BenchmarkSynthesize (deadline = critical path + 3, power cap = 80% of
// the unconstrained peak, loosened until feasible). Worker count and seed
// are pinned so allocs/op stays deterministic; the area metric records
// the QoR the portfolio converges to. results/BENCH_portfolio.json holds
// the recorded baseline for `make bench-compare`.
func BenchmarkAnytimePortfolio(b *testing.B) {
	lib := Table1()
	for _, name := range []string{"hal", "diffeq2", "fft8"} {
		g := MustBenchmark(name)
		asap, err := ASAP(g, UniformFastest(lib))
		if err != nil {
			b.Fatal(err)
		}
		cons := Constraints{Deadline: asap.Length() + 3, PowerMax: asap.PeakPower() * 0.8}
		for {
			if _, err := Synthesize(g, lib, cons, Config{}); err == nil {
				break
			}
			cons.PowerMax *= 1.1
			if cons.PowerMax > asap.PeakPower()*2 {
				b.Fatalf("%s: no feasible cap found", name)
			}
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var res *PortfolioResult
			for i := 0; i < b.N; i++ {
				r, err := SynthesizePortfolio(g, lib, cons, PortfolioConfig{
					K: 8, Budget: 2, Seed: 1, Workers: 4,
				})
				if err != nil {
					b.Fatal(err)
				}
				res = r
			}
			b.ReportMetric(res.Design.Area(), "area")
			b.ReportMetric(res.BaselineArea, "baseline-area")
		})
	}
}

// BenchmarkAblationTwoStepBaseline compares the two-phase baseline
// (force-directed schedule, then power repair; refs [1][2] style) against
// the paper's one-step pasap on HAL across a power grid: the metric is the
// number of grid points each approach can schedule at all.
func BenchmarkAblationTwoStepBaseline(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	bindF := sched.UniformSmallest(lib)
	const deadline = 17
	grid := []float64{5.5, 6, 7, 8, 10, 12, 15, 20}
	var oneStepOK, twoStepOK int
	for i := 0; i < b.N; i++ {
		oneStepOK, twoStepOK = 0, 0
		for _, p := range grid {
			if s, err := sched.PASAP(g, bindF, sched.Options{PowerMax: p}); err == nil && s.Length() <= deadline {
				oneStepOK++
			}
			if _, err := sched.TwoStep(g, bindF, deadline, p); err == nil {
				twoStepOK++
			}
		}
	}
	if oneStepOK < twoStepOK {
		b.Fatalf("one-step solved %d grid points, two-step %d: expected one-step >= two-step", oneStepOK, twoStepOK)
	}
	b.ReportMetric(float64(oneStepOK), "pasap-feasible")
	b.ReportMetric(float64(twoStepOK), "twostep-feasible")
}

// BenchmarkAblationRepairDisabled measures how often the backtrack-and-
// lock repair rescues synthesis on a constraint grid (DESIGN.md ablation).
func BenchmarkAblationRepairDisabled(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	grid := []float64{5.5, 6, 8, 10, 14, 20}
	var withRepair, withoutRepair int
	for i := 0; i < b.N; i++ {
		withRepair, withoutRepair = 0, 0
		for _, p := range grid {
			cons := Constraints{Deadline: 17, PowerMax: p}
			if _, err := Synthesize(g, lib, cons, Config{}); err == nil {
				withRepair++
			}
			if _, err := Synthesize(g, lib, cons, Config{DisableRepair: true}); err == nil {
				withoutRepair++
			}
		}
	}
	if withRepair < withoutRepair {
		b.Fatal("repair should never lose feasible points")
	}
	b.ReportMetric(float64(withRepair), "with-repair")
	b.ReportMetric(float64(withoutRepair), "without-repair")
}

// BenchmarkAblationLibraryMultipliers synthesizes HAL T=17 with
// serial-only and parallel-only multiplier libraries (DESIGN.md library
// ablation): the mixed library must be at least as good as either.
func BenchmarkAblationLibraryMultipliers(b *testing.B) {
	g := MustBenchmark("hal")
	cons := Constraints{Deadline: 17, PowerMax: 10}
	full := Table1()
	serOnly, err := library.Table1Without(library.NameMulPar)
	if err != nil {
		b.Fatal(err)
	}
	parOnly, err := library.Table1Without(library.NameMulSer)
	if err != nil {
		b.Fatal(err)
	}
	var mixedArea, serArea, parArea float64
	for i := 0; i < b.N; i++ {
		d, err := SynthesizeBest(g, full, cons, Config{})
		if err != nil {
			b.Fatal(err)
		}
		mixedArea = d.Area()
		if d, err := SynthesizeBest(g, serOnly, cons, Config{}); err == nil {
			serArea = d.Area()
		}
		if d, err := SynthesizeBest(g, parOnly, cons, Config{}); err == nil {
			parArea = d.Area()
		}
	}
	b.ReportMetric(mixedArea, "mixed")
	b.ReportMetric(serArea, "serial-only")
	b.ReportMetric(parArea, "parallel-only")
}

// BenchmarkAblationALUMerging synthesizes HAL with and without the
// multi-function ALU module (DESIGN.md library ablation).
func BenchmarkAblationALUMerging(b *testing.B) {
	g := MustBenchmark("hal")
	cons := Constraints{Deadline: 17, PowerMax: 10}
	withALU := Table1()
	withoutALU, err := library.Table1Without(library.NameALU)
	if err != nil {
		b.Fatal(err)
	}
	var a1, a2 float64
	for i := 0; i < b.N; i++ {
		d1, err := SynthesizeBest(g, withALU, cons, Config{})
		if err != nil {
			b.Fatal(err)
		}
		d2, err := SynthesizeBest(g, withoutALU, cons, Config{})
		if err != nil {
			b.Fatal(err)
		}
		a1, a2 = d1.Area(), d2.Area()
	}
	b.ReportMetric(a1, "with-alu")
	b.ReportMetric(a2, "without-alu")
}

// BenchmarkCliquePartitioningHeuristics compares the greedy and
// Tseng-Siewiorek partitioners against the exact branch-and-bound oracle
// on small random compatibility graphs (DESIGN.md clique ablation).
func BenchmarkCliquePartitioningHeuristics(b *testing.B) {
	graphs := make([]*clique.Graph, 0, 16)
	seed := uint64(1)
	for k := 0; k < 16; k++ {
		g := clique.New(12)
		for i := 0; i < 12; i++ {
			for j := i + 1; j < 12; j++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				if seed>>33%100 < 50 {
					g.SetCompatible(i, j)
				}
			}
		}
		graphs = append(graphs, g)
	}
	var greedyBlocks, tsBlocks, exactBlocks int
	for i := 0; i < b.N; i++ {
		greedyBlocks, tsBlocks, exactBlocks = 0, 0, 0
		for _, g := range graphs {
			greedyBlocks += len(clique.Greedy(g, nil))
			tsBlocks += len(clique.TsengSiewiorek(g))
			exact, err := clique.ExactMinCliques(g)
			if err != nil {
				b.Fatal(err)
			}
			exactBlocks += len(exact)
		}
	}
	b.ReportMetric(float64(greedyBlocks), "greedy-cliques")
	b.ReportMetric(float64(tsBlocks), "ts-cliques")
	b.ReportMetric(float64(exactBlocks), "exact-cliques")
}

// BenchmarkAblationStaticCliqueMode compares the incremental algorithm
// (windows re-derived after every decision, the paper's extension) against
// the static one-shot clique-partition formulation it extends, on a hal
// T=17 power grid: feasible points and area at a representative point.
func BenchmarkAblationStaticCliqueMode(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	grid := []float64{5.5, 6, 7, 8, 10, 14, 20}
	var incOK, staticOK int
	var incArea, staticArea float64
	for i := 0; i < b.N; i++ {
		incOK, staticOK = 0, 0
		for _, p := range grid {
			cons := Constraints{Deadline: 17, PowerMax: p}
			if d, err := Synthesize(g, lib, cons, Config{}); err == nil {
				incOK++
				if p == 10 {
					incArea = d.Area()
				}
			}
			if d, err := SynthesizeCliquePartition(g, lib, cons, Config{}); err == nil {
				staticOK++
				if p == 10 {
					staticArea = d.Area()
				}
			}
		}
	}
	if incOK < staticOK {
		b.Fatalf("incremental solved %d, static %d", incOK, staticOK)
	}
	b.ReportMetric(float64(incOK), "incremental-feasible")
	b.ReportMetric(float64(staticOK), "static-feasible")
	b.ReportMetric(incArea, "incremental-area@P10")
	b.ReportMetric(staticArea, "static-area@P10")
}

// BenchmarkAblationPASAPSelection compares the two readings of the paper's
// "pick an unscheduled operator" step — critical-path-first versus a plain
// topological sweep — by the pasap schedule length on cosine under a
// moderate power cap.
func BenchmarkAblationPASAPSelection(b *testing.B) {
	g := MustBenchmark("cosine")
	bindF := sched.UniformFastest(Table1())
	var critLen, plainLen int
	for i := 0; i < b.N; i++ {
		c, err := sched.PASAP(g, bindF, sched.Options{PowerMax: 40, Select: sched.CriticalFirst})
		if err != nil {
			b.Fatal(err)
		}
		p, err := sched.PASAP(g, bindF, sched.Options{PowerMax: 40, Select: sched.SmallestID})
		if err != nil {
			b.Fatal(err)
		}
		critLen, plainLen = c.Length(), p.Length()
	}
	if critLen > plainLen {
		b.Fatalf("critical-first %d cycles worse than plain %d", critLen, plainLen)
	}
	b.ReportMetric(float64(critLen), "critical-first-len")
	b.ReportMetric(float64(plainLen), "smallest-id-len")
}

// BenchmarkTimeSweep measures the orthogonal latency sweep (area versus T
// at fixed P<), the other axis of the paper's time-power design space.
func BenchmarkTimeSweep(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	var minT int
	for i := 0; i < b.N; i++ {
		c, err := TimeSweep(g, lib, 8, TimeSweepConfig{TMin: 8, TMax: 26, Step: 2})
		if err != nil {
			b.Fatal(err)
		}
		t, ok := c.MinFeasibleDeadline()
		if !ok {
			b.Fatal("no feasible deadline")
		}
		minT = t
	}
	b.ReportMetric(float64(minT), "min-T@P8")
}

// BenchmarkAblationAnnealingBaseline compares the meta-heuristic baseline
// family of the paper's related work (simulated annealing) against the
// constructive pasap: same constraints, wall time and resulting makespan.
func BenchmarkAblationAnnealingBaseline(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	bindF := sched.UniformFastest(lib)
	const T, P = 15, 14
	var pasapLen, annealLen int
	for i := 0; i < b.N; i++ {
		ps, err := sched.PASAP(g, bindF, sched.Options{PowerMax: P})
		if err != nil {
			b.Fatal(err)
		}
		sa, err := sched.Anneal(g, bindF, lib, T, P, sched.AnnealConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		pasapLen, annealLen = ps.Length(), sa.Length()
	}
	b.ReportMetric(float64(pasapLen), "pasap-len")
	b.ReportMetric(float64(annealLen), "anneal-len")
}

// BenchmarkTimePowerSurface explores the (T x P<) grid of HAL — the
// "different regions in the time-power-constraint space" of the paper's
// conclusion — and reports the Pareto-front size.
func BenchmarkTimePowerSurface(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	cfg := SurfaceConfig{
		Deadlines:  []int{8, 10, 12, 14, 17},
		Powers:     []float64{6, 8, 12, 17, 25, 40},
		SinglePass: true,
	}
	var front int
	for i := 0; i < b.N; i++ {
		s, err := ExploreSurface(g, lib, cfg)
		if err != nil {
			b.Fatal(err)
		}
		front = len(s.ParetoFront())
	}
	if front == 0 {
		b.Fatal("empty pareto front")
	}
	b.ReportMetric(float64(front), "pareto-points")
}

// BenchmarkBatterySweep measures the lifetime-extension sweep behind the
// Figure 1 motivation.
func BenchmarkBatterySweep(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	caps := []float64{9, 12, 16, 20, 28, 40}
	var best float64
	for i := 0; i < b.N; i++ {
		c, err := BatterySweep(g, lib, caps)
		if err != nil {
			b.Fatal(err)
		}
		if p, ok := c.BestExtension(); ok {
			best = p.KibamExt
		}
	}
	b.ReportMetric(best, "best-ext%")
}

// BenchmarkPipelineExplore measures the pipelined (modulo-scheduled)
// throughput sweep — the loop-folded extension beyond the paper.
func BenchmarkPipelineExplore(b *testing.B) {
	g := MustBenchmark("hal")
	lib := Table1()
	bindF := sched.UniformFastest(lib)
	var minII int
	for i := 0; i < b.N; i++ {
		results, err := PipelineExplore(g, bindF, lib, 16, 24, 20)
		if err != nil {
			b.Fatal(err)
		}
		minII = results[0].II
	}
	b.ReportMetric(float64(minII), "min-II@P20")
}

// BenchmarkFSMDSimulation measures the cycle-accurate FSMD simulator.
func BenchmarkFSMDSimulation(b *testing.B) {
	d, err := Synthesize(MustBenchmark("elliptic"), Table1(), Constraints{Deadline: 22, PowerMax: 15}, Config{})
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string]int64{}
	for _, n := range d.Graph.Nodes() {
		if n.Op == Input {
			inputs[n.Name] = int64(n.ID) * 3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := VerifyDesign(d, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPASAPScheduler measures the raw power-constrained scheduler on
// the largest benchmark.
func BenchmarkPASAPScheduler(b *testing.B) {
	g := MustBenchmark("elliptic")
	bindF := sched.UniformFastest(Table1())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sched.PASAP(g, bindF, sched.Options{PowerMax: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerilogEmission measures the RTL back end.
func BenchmarkVerilogEmission(b *testing.B) {
	d, err := Synthesize(MustBenchmark("elliptic"), Table1(), Constraints{Deadline: 22, PowerMax: 15}, Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EmitVerilog(d, 16); err != nil {
			b.Fatal(err)
		}
	}
}
