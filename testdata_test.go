package pchls

import (
	"os"
	"path/filepath"
	"testing"
)

// loadTestdata parses a .cdfg file from testdata/.
func loadTestdata(t *testing.T, name string) *Graph {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ParseGraph(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSynthesizeMAC4FromFile(t *testing.T) {
	g := loadTestdata(t, "mac4.cdfg")
	if g.Name != "mac4" || g.N() != 12 {
		t.Fatalf("mac4: %v", g)
	}
	d, err := SynthesizeBest(g, Table1(), Constraints{Deadline: 12, PowerMax: 12}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Single-operand coefficient multiplies act as identity: y = sum(x_i).
	out, err := SimulateDesign(d, map[string]int64{"x0": 1, "x1": 2, "x2": 3, "x3": 4})
	if err != nil {
		t.Fatal(err)
	}
	if out["y"] != 10 {
		t.Fatalf("y = %d, want 10", out["y"])
	}
	if err := VerifyDesign(d, map[string]int64{"x0": -7, "x1": 0, "x2": 9, "x3": 13}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthesizeIIR2FromFile(t *testing.T) {
	g := loadTestdata(t, "iir2.cdfg")
	d, err := SynthesizeBest(g, Table1(), Constraints{Deadline: 14, PowerMax: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDesign(d, map[string]int64{"xin": 5, "s1": 3, "s2": -2}); err != nil {
		t.Fatal(err)
	}
	if d.Schedule.PeakPower() > 10 {
		t.Fatalf("peak %.2f", d.Schedule.PeakPower())
	}
}

func TestBadCycleFileRejected(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bad_cycle.cdfg"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := ParseGraph(f); err == nil {
		t.Fatal("cyclic .cdfg accepted")
	}
}
