module pchls

go 1.22
