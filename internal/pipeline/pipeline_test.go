package pipeline

import (
	"errors"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

func halSetup() (*cdfg.Graph, sched.Binding, *library.Library) {
	lib := library.Table1()
	return bench.HAL(), sched.UniformFastest(lib), lib
}

func TestScheduleUnpipelinedEqualsLatency(t *testing.T) {
	// II = deadline reduces to the plain case: folded profile = profile.
	g, bind, lib := halSetup()
	r, err := Schedule(g, bind, lib, 20, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schedule.Length() > 20 {
		t.Fatalf("latency %d", r.Schedule.Length())
	}
	if err := r.Schedule.Validate(0, 20); err != nil {
		t.Fatal(err)
	}
	if r.PeakPower() > 20 {
		t.Fatalf("folded peak %.2f", r.PeakPower())
	}
}

func TestScheduleFoldedPowerRespectsCap(t *testing.T) {
	g, bind, lib := halSetup()
	const ii, T, P = 8, 24, 20
	r, err := Schedule(g, bind, lib, ii, T, P)
	if err != nil {
		t.Fatal(err)
	}
	if r.II != ii || len(r.FoldedProfile) != ii {
		t.Fatalf("II %d, folded %d", r.II, len(r.FoldedProfile))
	}
	if r.PeakPower() > P+1e-9 {
		t.Fatalf("folded peak %.2f > %d", r.PeakPower(), P)
	}
	// The folded profile must equal the plain profile folded modulo II.
	plain := r.Schedule.Profile()
	want := make([]float64, ii)
	for c, p := range plain {
		want[c%ii] += p
	}
	for c := range want {
		if diff := want[c] - r.FoldedProfile[c]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("folded[%d] = %g, want %g", c, r.FoldedProfile[c], want[c])
		}
	}
	// Precedence still holds on the iteration-local schedule.
	if err := r.Schedule.Validate(0, T); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleFUNeedGrowsWithThroughput(t *testing.T) {
	// Lower II (higher throughput) needs at least as many multipliers.
	g, bind, lib := halSetup()
	fast, err := Schedule(g, bind, lib, 6, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Schedule(g, bind, lib, 12, 24, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fast.FUNeed[library.NameMulPar] < slow.FUNeed[library.NameMulPar] {
		t.Fatalf("II=6 needs %d mults, II=12 needs %d", fast.FUNeed[library.NameMulPar], slow.FUNeed[library.NameMulPar])
	}
	if fast.FUArea < slow.FUArea {
		t.Fatalf("II=6 area %.1f below II=12 area %.1f", fast.FUArea, slow.FUArea)
	}
}

func TestScheduleMultiCycleOpLongerThanII(t *testing.T) {
	// A 4-cycle serial multiply at II=2 occupies both folded slots twice:
	// the reservation and the folded power must account for multiplicity.
	g := cdfg.New("t")
	i := g.MustAddNode("i", cdfg.Input)
	m := g.MustAddNode("m", cdfg.Mul)
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i, m)
	g.MustAddEdge(m, o)
	lib := library.Table1()
	bind := sched.UniformSmallest(lib) // serial multiplier, delay 4
	r, err := Schedule(g, bind, lib, 2, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.FUNeed[library.NameMulSer] != 2 {
		t.Fatalf("serial mult need at II=2 = %d, want 2 (4 busy cycles / 2 slots)", r.FUNeed[library.NameMulSer])
	}
	// And the folded power sees 2x the multiplier draw.
	peak := r.PeakPower()
	if peak < 2*2.7 {
		t.Fatalf("folded peak %.2f should include the doubled multiplier", peak)
	}
}

func TestScheduleInfeasibleII(t *testing.T) {
	g, bind, lib := halSetup()
	// II=1 at a tight cap: every cycle carries the whole iteration's
	// power; hopeless.
	if _, err := Schedule(g, bind, lib, 1, 20, 20); !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("err = %v, want ErrNoSchedule", err)
	}
	if _, err := Schedule(g, bind, lib, 0, 20, 20); err == nil {
		t.Fatal("II=0 accepted")
	}
	if _, err := Schedule(g, bind, lib, 10, 5, 0); err == nil {
		t.Fatal("deadline below II accepted")
	}
	if _, err := Schedule(g, bind, lib, 4, 6, 0); !errors.Is(err, sched.ErrDeadline) {
		t.Fatalf("deadline below critical path: %v", err)
	}
	if _, err := Schedule(g, bind, lib, 8, 20, 5); !errors.Is(err, sched.ErrPowerInfeasible) {
		t.Fatalf("single-op power: %v", err)
	}
}

func TestMinII(t *testing.T) {
	g, bind, _ := halSetup()
	// Unconstrained: 1.
	ii, err := MinII(g, bind, 0)
	if err != nil || ii != 1 {
		t.Fatalf("MinII unconstrained = %d, %v", ii, err)
	}
	// Energy of hal under fastest binding is 117.5; cap 20 needs >= 6.
	ii, err = MinII(g, bind, 20)
	if err != nil || ii != 6 {
		t.Fatalf("MinII(20) = %d, %v; want 6", ii, err)
	}
}

func TestExplore(t *testing.T) {
	g, bind, lib := halSetup()
	results, err := Explore(g, bind, lib, 16, 24, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no feasible II")
	}
	prevII := 0
	prevArea := 1e18
	for _, r := range results {
		if r.II <= prevII {
			t.Fatalf("IIs not increasing: %d after %d", r.II, prevII)
		}
		prevII = r.II
		if r.PeakPower() > 20+1e-9 {
			t.Fatalf("II=%d folded peak %.2f", r.II, r.PeakPower())
		}
		if r.FUArea > prevArea+340 { // allow noise of one multiplier
			t.Fatalf("area should broadly fall with II: %.1f after %.1f", r.FUArea, prevArea)
		}
		prevArea = r.FUArea
	}
	// No feasible II at an absurd cap.
	if _, err := Explore(g, bind, lib, 4, 24, 3); err == nil {
		t.Fatal("expected failure at cap 3")
	}
}
