// Package pipeline analyzes functionally pipelined (loop-folded)
// implementations of a data-flow graph: successive iterations of the loop
// body start every II cycles (the initiation interval), so at steady state
// the per-cycle power and the functional-unit occupancy fold modulo II.
//
// The paper's benchmarks are DSP loop bodies, making throughput (1/II)
// the natural third axis next to latency T and power P<. This package is
// a documented extension beyond the two-page paper: it computes feasible
// initiation intervals under a power cap, modulo-scheduled start times,
// the folded steady-state power profile, and the modulo-reservation
// functional-unit demand (and implied area) per II.
package pipeline

import (
	"errors"
	"fmt"
	"sort"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// Result describes one modulo-scheduled pipelined implementation.
type Result struct {
	// II is the initiation interval in cycles.
	II int
	// Schedule holds the iteration-local start times (latency T is its
	// makespan); the folded constraints are already satisfied.
	Schedule *sched.Schedule
	// FoldedProfile is the steady-state per-cycle power over [0, II).
	FoldedProfile []float64
	// FUNeed is the modulo-reservation demand per module name.
	FUNeed map[string]int
	// FUArea is the implied functional-unit area.
	FUArea float64
}

// PeakPower returns the steady-state peak of the folded profile.
func (r *Result) PeakPower() float64 {
	peak := 0.0
	for _, p := range r.FoldedProfile {
		if p > peak {
			peak = p
		}
	}
	return peak
}

// ErrNoSchedule is returned when no modulo schedule exists for the given
// II within the latency bound.
var ErrNoSchedule = errors.New("no modulo schedule for this initiation interval")

// Schedule computes a power-constrained modulo schedule at the given
// initiation interval: operations are placed critical-path-first at the
// earliest precedence-feasible cycle whose FOLDED power profile (the sum
// over all in-flight iterations) stays within powerMax, within a latency
// bound of deadline cycles. DAG loop bodies carry no loop-carried
// dependence, so any II >= 1 is precedence-admissible; power and the
// latency bound decide feasibility.
func Schedule(g *cdfg.Graph, bind sched.Binding, lib *library.Library, ii, deadline int, powerMax float64) (*Result, error) {
	if ii < 1 {
		return nil, fmt.Errorf("pipeline: II %d must be >= 1", ii)
	}
	if deadline < ii {
		return nil, fmt.Errorf("pipeline: deadline %d below II %d", deadline, ii)
	}
	asap, err := sched.ASAP(g, bind)
	if err != nil {
		return nil, err
	}
	if asap.Length() > deadline {
		return nil, fmt.Errorf("pipeline: critical path %d exceeds deadline %d: %w", asap.Length(), deadline, sched.ErrDeadline)
	}
	s := asap.Clone() // correct Delay/Power/Module; starts are rewritten below
	for i := range s.Start {
		s.Start[i] = -1 // unplaced
	}
	if powerMax > 0 {
		for i, p := range s.Power {
			if p > powerMax+1e-9 {
				return nil, fmt.Errorf("pipeline: node %q draws %.3g > %.3g: %w",
					g.Node(cdfg.NodeID(i)).Name, p, powerMax, sched.ErrPowerInfeasible)
			}
		}
	}

	folded := make([]float64, ii)
	place := func(id cdfg.NodeID, start int) {
		for c := start; c < start+s.Delay[id]; c++ {
			folded[c%ii] += s.Power[id]
		}
	}
	fits := func(id cdfg.NodeID, start int) bool {
		if powerMax <= 0 {
			return true
		}
		if s.Delay[id] >= ii {
			// The op occupies every folded slot; check total plus its own
			// multiplicity per slot.
			for c := 0; c < ii; c++ {
				occ := 0
				for k := start; k < start+s.Delay[id]; k++ {
					if k%ii == c {
						occ++
					}
				}
				if folded[c]+float64(occ)*s.Power[id] > powerMax+1e-9 {
					return false
				}
			}
			return true
		}
		for c := start; c < start+s.Delay[id]; c++ {
			if folded[c%ii]+s.Power[id] > powerMax+1e-9 {
				return false
			}
		}
		return true
	}

	// Critical-path-first ready order, mirroring pasap.
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	prio := make([]int, g.N())
	for i := len(topo) - 1; i >= 0; i-- {
		u := topo[i]
		best := 0
		for _, v := range g.Succs(u) {
			if prio[v] > best {
				best = prio[v]
			}
		}
		prio[u] = best + s.Delay[u]
	}
	indeg := make([]int, g.N())
	for i := range indeg {
		indeg[i] = len(g.Preds(cdfg.NodeID(i)))
	}
	remaining := g.N()
	for remaining > 0 {
		pick := -1
		for i := 0; i < g.N(); i++ {
			if indeg[i] == 0 && s.Start[i] < 0 {
				if pick < 0 || prio[i] > prio[pick] {
					pick = i
				}
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("pipeline: no ready operation (internal error)")
		}
		id := cdfg.NodeID(pick)
		earliest := 0
		for _, p := range g.Preds(id) {
			if e := s.Start[p] + s.Delay[p]; e > earliest {
				earliest = e
			}
		}
		start := earliest
		for !fits(id, start) {
			start++
			if start+s.Delay[id] > deadline {
				return nil, fmt.Errorf("pipeline: II=%d: %q does not fit by %d: %w",
					ii, g.Node(id).Name, deadline, ErrNoSchedule)
			}
		}
		s.Start[id] = start
		place(id, start)
		indeg[pick] = -1 // consumed
		for _, v := range g.Succs(id) {
			indeg[v]--
		}
		remaining--
	}

	res := &Result{II: ii, Schedule: s, FoldedProfile: folded}
	res.FUNeed = moduloReservation(g, s, ii)
	names := make([]string, 0, len(res.FUNeed))
	for name := range res.FUNeed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m, ok := lib.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("pipeline: unknown module %q", name)
		}
		res.FUArea += float64(res.FUNeed[name]) * m.Area
	}
	return res, nil
}

// moduloReservation computes, per module, the maximum number of operations
// occupying any folded cycle — the instance count a modulo-reservation
// table requires.
func moduloReservation(g *cdfg.Graph, s *sched.Schedule, ii int) map[string]int {
	need := make(map[string]int)
	perSlot := make(map[string][]int)
	for i := range s.Start {
		name := s.Module[i]
		if perSlot[name] == nil {
			perSlot[name] = make([]int, ii)
		}
		for c := s.Start[i]; c < s.Start[i]+s.Delay[i]; c++ {
			perSlot[name][c%ii]++
		}
	}
	for name, slots := range perSlot {
		peak := 0
		for _, k := range slots {
			if k > peak {
				peak = k
			}
		}
		need[name] = peak
	}
	return need
}

// MinII returns the smallest initiation interval that could possibly admit
// a schedule under the power cap: the total energy per iteration divided
// by the cap, rounded up (energy must fit in II cycles of at most powerMax
// each). powerMax <= 0 gives 1.
func MinII(g *cdfg.Graph, bind sched.Binding, powerMax float64) (int, error) {
	if powerMax <= 0 {
		return 1, nil
	}
	s, err := sched.ASAP(g, bind)
	if err != nil {
		return 0, err
	}
	energy := s.Energy()
	ii := int(energy / powerMax)
	for float64(ii)*powerMax < energy-1e-9 {
		ii++
	}
	if ii < 1 {
		ii = 1
	}
	return ii, nil
}

// Explore sweeps initiation intervals from MinII up to maxII and returns
// the feasible designs in increasing II order — the throughput/area/power
// trade-off curve of the pipelined implementation.
func Explore(g *cdfg.Graph, bind sched.Binding, lib *library.Library, maxII, deadline int, powerMax float64) ([]*Result, error) {
	lo, err := MinII(g, bind, powerMax)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for ii := lo; ii <= maxII; ii++ {
		r, err := Schedule(g, bind, lib, ii, deadline, powerMax)
		if err != nil {
			continue
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("pipeline: no feasible II in [%d,%d]: %w", lo, maxII, ErrNoSchedule)
	}
	return out, nil
}
