// Package clique implements clique partitioning on undirected compatibility
// graphs: partitioning the vertex set into groups whose members are all
// pairwise compatible. In high-level synthesis a clique of the (time-
// extended) compatibility graph is a set of operations that can share one
// functional unit, or a set of values that can share one register.
//
// Three solvers are provided: a greedy maximum-gain merger (the paper's
// "evaluate and pick a best decision" strategy generalized to an arbitrary
// gain function), the Tseng-Siewiorek common-neighbour heuristic, and an
// exact branch-and-bound partitioner usable as a test oracle on small
// graphs.
package clique

import (
	"fmt"
	"sort"
)

// Graph is an undirected compatibility graph over vertices 0..n-1. The
// zero value is unusable; create with New.
type Graph struct {
	n   int
	adj []bool // row-major n x n, symmetric, false diagonal
}

// New returns an empty compatibility graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("clique: New(%d)", n))
	}
	return &Graph{n: n, adj: make([]bool, n*n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// SetCompatible marks u and v as pairwise compatible. Self-pairs are
// ignored (a vertex is trivially compatible with itself).
func (g *Graph) SetCompatible(u, v int) {
	if u == v {
		return
	}
	g.adj[u*g.n+v] = true
	g.adj[v*g.n+u] = true
}

// Compatible reports whether u and v may share a clique.
func (g *Graph) Compatible(u, v int) bool {
	return u == v || g.adj[u*g.n+v]
}

// Degree returns the number of vertices compatible with u.
func (g *Graph) Degree(u int) int {
	d := 0
	for v := 0; v < g.n; v++ {
		if g.adj[u*g.n+v] {
			d++
		}
	}
	return d
}

// Edges returns the number of compatible pairs.
func (g *Graph) Edges() int {
	e := 0
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.adj[u*g.n+v] {
				e++
			}
		}
	}
	return e
}

// IsClique reports whether every pair in the set is compatible.
func (g *Graph) IsClique(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if !g.Compatible(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// Partition is a disjoint cover of the vertices by cliques.
type Partition [][]int

// Validate checks that p covers every vertex of g exactly once and that
// every block is a clique.
func (p Partition) Validate(g *Graph) error {
	seen := make([]bool, g.N())
	for bi, block := range p {
		if len(block) == 0 {
			return fmt.Errorf("clique: block %d is empty", bi)
		}
		for _, v := range block {
			if v < 0 || v >= g.N() {
				return fmt.Errorf("clique: block %d contains out-of-range vertex %d", bi, v)
			}
			if seen[v] {
				return fmt.Errorf("clique: vertex %d appears in more than one block", v)
			}
			seen[v] = true
		}
		if !g.IsClique(block) {
			return fmt.Errorf("clique: block %d %v is not a clique", bi, block)
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("clique: vertex %d is not covered", v)
		}
	}
	return nil
}

// normalize sorts vertices within blocks and blocks by first vertex, for
// deterministic output.
func (p Partition) normalize() Partition {
	for _, b := range p {
		sort.Ints(b)
	}
	sort.Slice(p, func(i, j int) bool { return p[i][0] < p[j][0] })
	return p
}

// GainFunc scores a candidate merge of two cliques. It returns the gain of
// merging (higher is better) and whether the merge is admissible beyond
// pairwise compatibility (e.g. resource-specific feasibility). The solver
// only calls it on pairwise-compatible unions.
type GainFunc func(a, b []int) (gain float64, ok bool)

// Greedy partitions g by repeatedly merging the pair of current cliques
// with the highest positive gain, starting from singletons, until no
// admissible merge with gain >= 0 remains. Ties break toward the
// lexicographically smallest pair for determinism. A nil gain function
// means "always gain 1", reducing to greedy clique-count minimization.
func Greedy(g *Graph, gain GainFunc) Partition {
	if gain == nil {
		gain = func(a, b []int) (float64, bool) { return 1, true }
	}
	blocks := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		blocks[v] = []int{v}
	}
	compatible := func(a, b []int) bool {
		for _, u := range a {
			for _, v := range b {
				if !g.Compatible(u, v) {
					return false
				}
			}
		}
		return true
	}
	for {
		bi, bj, best := -1, -1, -1.0
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				if !compatible(blocks[i], blocks[j]) {
					continue
				}
				gv, ok := gain(blocks[i], blocks[j])
				if !ok || gv < 0 {
					continue
				}
				if gv > best {
					bi, bj, best = i, j, gv
				}
			}
		}
		if bi < 0 {
			break
		}
		blocks[bi] = append(blocks[bi], blocks[bj]...)
		blocks = append(blocks[:bj], blocks[bj+1:]...)
	}
	return Partition(blocks).normalize()
}

// TsengSiewiorek partitions g with the classical common-neighbour
// heuristic: repeatedly merge the compatible pair of super-vertices with
// the largest number of common compatible neighbours (ties: smallest
// indices). It tends to preserve future merge opportunities and usually
// produces few cliques.
func TsengSiewiorek(g *Graph) Partition {
	// Super-vertex compatibility: two supers are compatible iff all
	// cross-pairs are compatible; their neighbourhood is the AND of member
	// neighbourhoods.
	supers := make([][]int, g.N())
	for v := range supers {
		supers[v] = []int{v}
	}
	neigh := make([][]bool, g.N())
	for v := 0; v < g.N(); v++ {
		row := make([]bool, g.N())
		for u := 0; u < g.N(); u++ {
			row[u] = g.adj[v*g.n+u]
		}
		neigh[v] = row
	}
	alive := make([]bool, g.N())
	for v := range alive {
		alive[v] = true
	}
	superCompat := func(i, j int) bool {
		for _, u := range supers[i] {
			for _, v := range supers[j] {
				if !g.Compatible(u, v) {
					return false
				}
			}
		}
		return true
	}
	common := func(i, j int) int {
		c := 0
		for v := 0; v < g.N(); v++ {
			if neigh[i][v] && neigh[j][v] {
				c++
			}
		}
		return c
	}
	for {
		bi, bj, best := -1, -1, -1
		for i := 0; i < g.N(); i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < g.N(); j++ {
				if !alive[j] || !superCompat(i, j) {
					continue
				}
				if c := common(i, j); c > best {
					bi, bj, best = i, j, c
				}
			}
		}
		if bi < 0 {
			break
		}
		supers[bi] = append(supers[bi], supers[bj]...)
		alive[bj] = false
		for v := 0; v < g.N(); v++ {
			neigh[bi][v] = neigh[bi][v] && neigh[bj][v]
		}
	}
	var p Partition
	for i, ok := range alive {
		if ok {
			p = append(p, supers[i])
		}
	}
	return p.normalize()
}

// MaxExactVertices bounds the exact solver; beyond this it refuses.
const MaxExactVertices = 24

// ExactMinCliques returns a partition of g into the minimum possible
// number of cliques (equivalently, an optimal colouring of the complement
// graph), via branch and bound with a greedy upper bound. It returns an
// error for graphs with more than MaxExactVertices vertices — it is a test
// oracle, not a production solver.
func ExactMinCliques(g *Graph) (Partition, error) {
	n := g.N()
	if n > MaxExactVertices {
		return nil, fmt.Errorf("clique: exact solver limited to %d vertices, got %d", MaxExactVertices, n)
	}
	if n == 0 {
		return Partition{}, nil
	}
	// Upper bound from the common-neighbour heuristic.
	best := TsengSiewiorek(g)
	bestK := len(best)

	// Branch and bound: assign vertices in order; vertex v joins one of
	// the existing cliques (if compatible with all members) or opens a new
	// one. Prune when the clique count reaches the incumbent.
	blocks := make([][]int, 0, n)
	var rec func(v int)
	rec = func(v int) {
		if len(blocks) >= bestK {
			return // cannot beat the incumbent
		}
		if v == n {
			cp := make(Partition, len(blocks))
			for i, b := range blocks {
				cp[i] = append([]int(nil), b...)
			}
			best = cp
			bestK = len(cp)
			return
		}
		for i := range blocks {
			ok := true
			for _, u := range blocks[i] {
				if !g.Compatible(u, v) {
					ok = false
					break
				}
			}
			if ok {
				blocks[i] = append(blocks[i], v)
				rec(v + 1)
				blocks[i] = blocks[i][:len(blocks[i])-1]
			}
		}
		blocks = append(blocks, []int{v})
		rec(v + 1)
		blocks = blocks[:len(blocks)-1]
	}
	rec(0)
	return best.normalize(), nil
}
