package clique

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pentagon builds C5: 0-1-2-3-4-0 compatible pairs only. Its minimum
// clique partition has 3 blocks (two edges + one singleton).
func pentagon() *Graph {
	g := New(5)
	for i := 0; i < 5; i++ {
		g.SetCompatible(i, (i+1)%5)
	}
	return g
}

// complete builds K_n (everything compatible).
func complete(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetCompatible(i, j)
		}
	}
	return g
}

func TestGraphBasics(t *testing.T) {
	g := New(4)
	g.SetCompatible(0, 1)
	g.SetCompatible(1, 1) // self pair ignored
	if !g.Compatible(0, 1) || !g.Compatible(1, 0) {
		t.Fatal("compatibility not symmetric")
	}
	if !g.Compatible(2, 2) {
		t.Fatal("vertex should be compatible with itself")
	}
	if g.Compatible(0, 2) {
		t.Fatal("unset pair reported compatible")
	}
	if g.Degree(1) != 1 || g.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d", g.Degree(1), g.Degree(3))
	}
	if g.Edges() != 1 {
		t.Fatalf("edges = %d", g.Edges())
	}
	if g.N() != 4 {
		t.Fatalf("n = %d", g.N())
	}
}

func TestIsClique(t *testing.T) {
	g := pentagon()
	if !g.IsClique([]int{0, 1}) || !g.IsClique([]int{3}) || !g.IsClique(nil) {
		t.Fatal("valid cliques rejected")
	}
	if g.IsClique([]int{0, 1, 2}) {
		t.Fatal("path of C5 accepted as clique")
	}
}

func TestPartitionValidate(t *testing.T) {
	g := pentagon()
	good := Partition{{0, 1}, {2, 3}, {4}}
	if err := good.Validate(g); err != nil {
		t.Fatalf("good partition rejected: %v", err)
	}
	cases := []struct {
		name string
		p    Partition
	}{
		{"not a clique", Partition{{0, 2}, {1, 3}, {4}}},
		{"missing vertex", Partition{{0, 1}, {2, 3}}},
		{"duplicate vertex", Partition{{0, 1}, {1, 2}, {3}, {4}}},
		{"empty block", Partition{{0, 1}, {}, {2, 3}, {4}}},
		{"out of range", Partition{{0, 1}, {2, 3}, {9}}},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(g); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestGreedyCompleteGraphSingleClique(t *testing.T) {
	g := complete(6)
	p := Greedy(g, nil)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 || len(p[0]) != 6 {
		t.Fatalf("K6 partition = %v", p)
	}
}

func TestGreedyEmptyGraphSingletons(t *testing.T) {
	g := New(4) // no compatibilities
	p := Greedy(g, nil)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("edgeless graph partition = %v", p)
	}
}

func TestGreedyGainVeto(t *testing.T) {
	g := complete(4)
	// Gain function forbids blocks larger than 2.
	gain := func(a, b []int) (float64, bool) {
		if len(a)+len(b) > 2 {
			return 0, false
		}
		return 1, true
	}
	p := Greedy(g, gain)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, b := range p {
		if len(b) > 2 {
			t.Fatalf("gain veto ignored: %v", p)
		}
	}
	if len(p) != 2 {
		t.Fatalf("K4 pair partition = %v", p)
	}
}

func TestGreedyPrefersHighestGain(t *testing.T) {
	// Vertices 0,1,2: 0-1 and 0-2 compatible; 1-2 not. Gain prefers {0,2}.
	g := New(3)
	g.SetCompatible(0, 1)
	g.SetCompatible(0, 2)
	gain := func(a, b []int) (float64, bool) {
		for _, u := range a {
			for _, v := range b {
				if (u == 0 && v == 2) || (u == 2 && v == 0) {
					return 10, true
				}
			}
		}
		return 1, true
	}
	p := Greedy(g, gain)
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range p {
		if len(b) == 2 && b[0] == 0 && b[1] == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected {0,2} block, got %v", p)
	}
}

func TestTsengSiewiorekPentagon(t *testing.T) {
	p := TsengSiewiorek(pentagon())
	if err := p.Validate(pentagon()); err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("C5 partition = %v, want 3 blocks", p)
	}
}

func TestExactMinCliquesPentagon(t *testing.T) {
	p, err := ExactMinCliques(pentagon())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(pentagon()); err != nil {
		t.Fatal(err)
	}
	if len(p) != 3 {
		t.Fatalf("optimal C5 partition has %d blocks, want 3", len(p))
	}
}

func TestExactMinCliquesComplete(t *testing.T) {
	p, err := ExactMinCliques(complete(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 1 {
		t.Fatalf("K8 optimal = %v", p)
	}
}

func TestExactMinCliquesEmpty(t *testing.T) {
	p, err := ExactMinCliques(New(0))
	if err != nil || len(p) != 0 {
		t.Fatalf("empty graph: %v, %v", p, err)
	}
}

func TestExactRefusesLargeGraphs(t *testing.T) {
	if _, err := ExactMinCliques(New(MaxExactVertices + 1)); err == nil {
		t.Fatal("exact solver accepted oversized graph")
	}
}

func randomCompat(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.SetCompatible(i, j)
			}
		}
	}
	return g
}

func TestQuickHeuristicsValidAndExactNoWorse(t *testing.T) {
	f := func(seed int64, szRaw uint8, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%10) + 2 // small enough for exact
		p := float64(pRaw%90+5) / 100
		g := randomCompat(rng, n, p)

		greedy := Greedy(g, nil)
		if greedy.Validate(g) != nil {
			return false
		}
		ts := TsengSiewiorek(g)
		if ts.Validate(g) != nil {
			return false
		}
		exact, err := ExactMinCliques(g)
		if err != nil || exact.Validate(g) != nil {
			return false
		}
		// Optimality: exact never uses more cliques than either heuristic.
		return len(exact) <= len(greedy) && len(exact) <= len(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTsengSiewiorekNearOptimalOnSmall(t *testing.T) {
	// On tiny graphs the common-neighbour heuristic is usually optimal;
	// we assert it is never more than 1 clique worse (a known property on
	// graphs this small, acting as a regression tripwire for the
	// implementation).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomCompat(rng, 8, 0.5)
		ts := TsengSiewiorek(g)
		exact, err := ExactMinCliques(g)
		if err != nil {
			return false
		}
		return len(ts) <= len(exact)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
