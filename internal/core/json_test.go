package core

import (
	"encoding/json"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func TestDesignJSON(t *testing.T) {
	d := mustSynth(t, bench.HAL(), 17, 8)
	raw, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if back["graph"] != "hal" {
		t.Fatalf("graph = %v", back["graph"])
	}
	if back["deadline"].(float64) != 17 || back["power_max"].(float64) != 8 {
		t.Fatalf("constraints: %v %v", back["deadline"], back["power_max"])
	}
	area := back["area"].(map[string]any)
	if area["total"].(float64) != d.Area() {
		t.Fatalf("area total %v != %v", area["total"], d.Area())
	}
	ops := back["operations"].([]any)
	if len(ops) != d.Graph.N() {
		t.Fatalf("%d operations exported, want %d", len(ops), d.Graph.N())
	}
	first := ops[0].(map[string]any)
	for _, key := range []string{"name", "op", "module", "fu", "start", "delay", "power"} {
		if _, ok := first[key]; !ok {
			t.Errorf("operation missing key %q", key)
		}
	}
	fus := back["functional_units"].([]any)
	if len(fus) != len(d.FUs) {
		t.Fatalf("%d FUs exported, want %d", len(fus), len(d.FUs))
	}
	regs := back["registers"].([]any)
	if len(regs) != len(d.Datapath.Registers) {
		t.Fatalf("%d registers exported, want %d", len(regs), len(d.Datapath.Registers))
	}
}

func TestDesignJSONDeterministic(t *testing.T) {
	d := mustSynth(t, bench.Elliptic(), 22, 15)
	a, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Synthesize(bench.Elliptic(), library.Table1(), Constraints{Deadline: 22, PowerMax: 15}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := d2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("JSON export is not deterministic across identical syntheses")
	}
}
