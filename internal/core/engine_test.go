package core

import (
	"math"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// TestEngineReducesSchedulerRuns checks the engine's reason to exist: on
// a large benchmark under a binding power cap, the incremental path must
// perform strictly fewer full scheduler runs than the legacy path while
// producing the same design, with the savings visible in the cache
// counters.
func TestEngineReducesSchedulerRuns(t *testing.T) {
	lib := library.Table1()
	for _, name := range []string{"elliptic", "fft8"} {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		asap, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			t.Fatal(err)
		}
		cons := Constraints{Deadline: asap.Length() + 3, PowerMax: asap.PeakPower() * 0.8}
		inc, err := Synthesize(g, lib, cons, Config{})
		if err != nil {
			t.Fatalf("%s: incremental: %v", name, err)
		}
		legacy, err := Synthesize(g, lib, cons, Config{DisableIncremental: true})
		if err != nil {
			t.Fatalf("%s: legacy: %v", name, err)
		}
		if inc.Stats.SchedulerRuns >= legacy.Stats.SchedulerRuns {
			t.Errorf("%s: incremental did %d full runs, legacy %d — no savings",
				name, inc.Stats.SchedulerRuns, legacy.Stats.SchedulerRuns)
		}
		if inc.Stats.WindowCacheHits == 0 {
			t.Errorf("%s: incremental run had zero window cache hits", name)
		}
		if inc.Stats.ProfileRebuilds != 0 {
			t.Errorf("%s: incremental run rebuilt the profile %d times", name, inc.Stats.ProfileRebuilds)
		}
		if legacy.Stats.ProfileRebuilds == 0 && cons.PowerMax > 0 {
			t.Errorf("%s: legacy run reported zero profile rebuilds", name)
		}
		if legacy.Stats.IncrementalRuns != 0 || legacy.Stats.WindowCacheHits != 0 {
			t.Errorf("%s: legacy run reported incremental work: %+v", name, legacy.Stats)
		}
		t.Logf("%s: full runs %d -> %d (incremental: %d pinned runs, %d hits, %d misses, %d fallbacks)",
			name, legacy.Stats.SchedulerRuns, inc.Stats.SchedulerRuns,
			inc.Stats.IncrementalRuns, inc.Stats.WindowCacheHits,
			inc.Stats.WindowCacheMisses, inc.Stats.Fallbacks)
	}
}

// TestEngineProfileAndReservations white-boxes the incremental
// bookkeeping: after each commit of a real synthesis prefix, the engine's
// profile must equal the from-scratch committedProfile and its
// reservation lists must equal the re-derived ones; after an uncommit the
// profile must return to (numerically) zero deviation.
func TestEngineProfileAndReservations(t *testing.T) {
	lib := library.Table1()
	g := bench.HAL()
	cons := Constraints{Deadline: 17, PowerMax: 20}
	st, err := newState(g, lib, cons, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.refineInitialModules(); err != nil {
		t.Fatal(err)
	}
	check := func(step int) {
		want := st.committedProfile(cons.Deadline)
		for c := range want {
			if math.Abs(st.eng.profile[c]-want[c]) > 1e-9 {
				t.Fatalf("step %d: profile[%d] = %g, want %g", step, c, st.eng.profile[c], want[c])
			}
		}
		if len(st.eng.resv) != len(st.fus) {
			t.Fatalf("step %d: %d reservation lists for %d instances", step, len(st.eng.resv), len(st.fus))
		}
		for f := range st.fus {
			var legacy []interval
			for _, op := range st.fus[f].ops {
				m := st.lib.Module(st.moduleOf[op])
				legacy = append(legacy, interval{st.start[op], st.start[op] + m.Delay})
			}
			got := st.eng.resv[f]
			if len(got) != len(legacy) {
				t.Fatalf("step %d: instance %d has %d reservations, want %d", step, f, len(got), len(legacy))
			}
			for k := range got {
				if got[k] != legacy[k] {
					t.Fatalf("step %d: instance %d reservation %d = %+v, want %+v", step, f, k, got[k], legacy[k])
				}
			}
		}
	}
	var last Decision
	for step := 0; step < 5; step++ {
		dec, ok := st.bestDecision()
		if !ok {
			t.Fatalf("step %d: no decision", step)
		}
		st.commit(dec)
		last = dec
		check(step)
	}
	st.uncommit(last)
	check(-1)
}

// TestStatsAdd checks the field-wise aggregation used by the sweep
// surfaces.
func TestStatsAdd(t *testing.T) {
	a := Stats{SchedulerRuns: 1, IncrementalRuns: 2, WindowCacheHits: 3, WindowCacheMisses: 4,
		WindowInvalidations: 5, FullInvalidations: 6, Fallbacks: 7, ProfileProbes: 8, ProfileRebuilds: 9}
	b := Stats{SchedulerRuns: 10, IncrementalRuns: 20, WindowCacheHits: 30, WindowCacheMisses: 40,
		WindowInvalidations: 50, FullInvalidations: 60, Fallbacks: 70, ProfileProbes: 80, ProfileRebuilds: 90}
	got := a.Add(b)
	want := Stats{SchedulerRuns: 11, IncrementalRuns: 22, WindowCacheHits: 33, WindowCacheMisses: 44,
		WindowInvalidations: 55, FullInvalidations: 66, Fallbacks: 77, ProfileProbes: 88, ProfileRebuilds: 99}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	if s := got.String(); s == "" {
		t.Fatal("String() returned empty")
	}
}
