package core

import "fmt"

// Stats counts the work one synthesis run performed. It is the
// observability surface of the incremental evaluation engine: the
// benchmark harness compares SchedulerRuns between the incremental and
// the DisableIncremental paths, and the cache counters explain where the
// savings come from. All counters are zero-based per run; Design.Stats
// carries the counters of the run that produced the design.
type Stats struct {
	// SchedulerRuns counts full pasap/palap executions (probes, window
	// derivations, per-candidate overrides).
	SchedulerRuns int64
	// IncrementalRuns counts dirty-subset (pinned) scheduler executions,
	// each of which replaces a full run on the incremental path.
	IncrementalRuns int64
	// WindowCacheHits counts (node, module) candidate windows served from
	// the engine's cache without any scheduler run.
	WindowCacheHits int64
	// WindowCacheMisses counts candidate windows that had to be computed
	// by a full pasap/palap pair because the node was invalidated (or
	// never cached).
	WindowCacheMisses int64
	// WindowInvalidations counts cached candidate entries discarded by
	// the post-commit invalidation rule.
	WindowInvalidations int64
	// FullInvalidations counts whole-cache resets: cold starts,
	// backtracks, and incremental derivations abandoned mid-way.
	FullInvalidations int64
	// Fallbacks counts iterations where the incremental derivation was
	// rejected (stale pin or audit mismatch) and the full derivation ran
	// instead.
	Fallbacks int64
	// ProfileProbes counts freeSlot feasibility probes against the
	// committed power profile.
	ProfileProbes int64
	// ProfileRebuilds counts full committed-profile rebuilds; the
	// incremental engine maintains the profile in O(delay) per commit and
	// never rebuilds it on the hot path.
	ProfileRebuilds int64
	// SDCDerivations counts iterations whose candidate windows came from
	// the SDC difference-constraint bounds (one O(V+E) pass) instead of
	// per-candidate scheduler pairs.
	SDCDerivations int64
	// CompatPatches counts incremental compatibility-graph candidate
	// patches (edges re-derived because a window changed); CompatRebuilds
	// counts from-scratch rebuilds (only the differential audit performs
	// them — the hot path never does).
	CompatPatches  int64
	CompatRebuilds int64
	// Regions counts independently synthesized weakly-connected regions
	// stitched into the design (zero for monolithic synthesis);
	// RegionRepairs counts decompositions that needed the sequential
	// power-coupled re-synthesis; PartitionFallbacks counts decompositions
	// abandoned for the monolithic path.
	Regions            int64
	RegionRepairs      int64
	PartitionFallbacks int64
	// CutEdges counts the edges severed by the min-cut partitioning of a
	// connected graph (zero for component decomposition and monolithic
	// runs); BoundaryTransfers counts committed-finish pins threaded across
	// those edges into downstream parts (one per cut edge per partitioned
	// attempt that reached the downstream part).
	CutEdges          int64
	BoundaryTransfers int64
	// SharedCrossRegion counts functional-unit instances eliminated by the
	// cross-region sharing pass of the stitch merge (operations re-timed
	// within precedence slack onto an instance from another region).
	SharedCrossRegion int64
	// BoundTightenings counts SDC candidate windows shrunk by the
	// power-aware bound propagation against the ambient BaseProfile power
	// committed by already-synthesized parts.
	BoundTightenings int64
}

// Add returns the field-wise sum of s and o, for aggregating the stats of
// several runs (e.g. the points of a sweep).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		SchedulerRuns:       s.SchedulerRuns + o.SchedulerRuns,
		IncrementalRuns:     s.IncrementalRuns + o.IncrementalRuns,
		WindowCacheHits:     s.WindowCacheHits + o.WindowCacheHits,
		WindowCacheMisses:   s.WindowCacheMisses + o.WindowCacheMisses,
		WindowInvalidations: s.WindowInvalidations + o.WindowInvalidations,
		FullInvalidations:   s.FullInvalidations + o.FullInvalidations,
		Fallbacks:           s.Fallbacks + o.Fallbacks,
		ProfileProbes:       s.ProfileProbes + o.ProfileProbes,
		ProfileRebuilds:     s.ProfileRebuilds + o.ProfileRebuilds,
		SDCDerivations:      s.SDCDerivations + o.SDCDerivations,
		CompatPatches:       s.CompatPatches + o.CompatPatches,
		CompatRebuilds:      s.CompatRebuilds + o.CompatRebuilds,
		Regions:             s.Regions + o.Regions,
		RegionRepairs:       s.RegionRepairs + o.RegionRepairs,
		PartitionFallbacks:  s.PartitionFallbacks + o.PartitionFallbacks,
		CutEdges:            s.CutEdges + o.CutEdges,
		BoundaryTransfers:   s.BoundaryTransfers + o.BoundaryTransfers,
		SharedCrossRegion:   s.SharedCrossRegion + o.SharedCrossRegion,
		BoundTightenings:    s.BoundTightenings + o.BoundTightenings,
	}
}

// String formats the counters as an aligned block, one per line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"  scheduler runs (full)        %8d\n"+
			"  scheduler runs (incremental) %8d\n"+
			"  window cache hits            %8d\n"+
			"  window cache misses          %8d\n"+
			"  window invalidations         %8d\n"+
			"  full cache invalidations     %8d\n"+
			"  incremental fallbacks        %8d\n"+
			"  profile probes               %8d\n"+
			"  profile rebuilds             %8d\n"+
			"  sdc window derivations       %8d\n"+
			"  compat edge patches          %8d\n"+
			"  compat full rebuilds         %8d\n"+
			"  regions stitched             %8d\n"+
			"  region repairs               %8d\n"+
			"  partition fallbacks          %8d\n"+
			"  cut edges                    %8d\n"+
			"  boundary transfers           %8d\n"+
			"  cross-region shares          %8d\n"+
			"  bound tightenings            %8d\n",
		s.SchedulerRuns, s.IncrementalRuns,
		s.WindowCacheHits, s.WindowCacheMisses,
		s.WindowInvalidations, s.FullInvalidations, s.Fallbacks,
		s.ProfileProbes, s.ProfileRebuilds,
		s.SDCDerivations, s.CompatPatches, s.CompatRebuilds,
		s.Regions, s.RegionRepairs, s.PartitionFallbacks,
		s.CutEdges, s.BoundaryTransfers, s.SharedCrossRegion,
		s.BoundTightenings)
}
