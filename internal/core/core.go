// Package core implements the paper's primary contribution: a heuristic
// high-level synthesis algorithm that solves scheduling, allocation and
// binding simultaneously, minimizing datapath area under both a latency
// constraint T and a maximum power-per-clock-cycle constraint P<.
//
// The algorithm is the power-constrained partial clique partitioning of
// Nielsen & Madsen (DATE 2003): the design space is bounded by the
// power-feasible mobility windows of the pasap/palap schedulers
// (internal/sched); candidate (operation, module) vertices and their
// sharing compatibility form the time-extended compatibility graph V1
// (internal/compat); synthesis repeatedly evaluates the current graph and
// greedily commits the cheapest decision — bind an operation onto an
// already-allocated functional unit, or allocate a new one — re-deriving
// the windows after every commitment. When a commitment strands a
// remaining operation (empty window), the algorithm backtracks one step
// and locks all uncommitted operations to the last valid pasap schedule,
// after which only binding decisions remain.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"pchls/internal/bind"
	"pchls/internal/cdfg"
	"pchls/internal/compat"
	"pchls/internal/library"
	"pchls/internal/runner"
	"pchls/internal/sched"
)

// Constraints are the synthesis constraints of the paper: a latency bound
// in clock cycles and a per-cycle power cap.
type Constraints struct {
	// Deadline is the latency constraint T in cycles (> 0).
	Deadline int
	// PowerMax is the per-cycle power constraint P<; <= 0 disables it.
	PowerMax float64
}

// Perturb seeds controlled randomization of the greedy search, the
// diversity source of the anytime portfolio (internal/portfolio). The
// zero value leaves the paper's deterministic ordering untouched; any
// non-zero setting is still a pure function of the seed, so a perturbed
// run is exactly reproducible.
type Perturb struct {
	// Seed selects the perturbation stream.
	Seed int64
	// Jitter is the relative amplitude of the multiplicative noise applied
	// to the resource-class weight that orders greedy decisions (0.1 means
	// each node's weight is scaled by a seeded factor in [0.9, 1.1]).
	// <= 0 disables weight jitter.
	Jitter float64
	// ShuffleTies replaces the node-ID tie-break among equal-cost
	// candidate decisions with a seeded random priority permutation.
	ShuffleTies bool
	// PlaceLate commits operations at the latest feasible slot of their
	// mobility window instead of the earliest (palap-direction packing).
	PlaceLate bool
}

// enabled reports whether any perturbation is active.
func (p Perturb) enabled() bool { return p.Jitter > 0 || p.ShuffleTies }

// WindowPolicy selects how the per-candidate mobility windows are derived
// (Config.Windows).
type WindowPolicy int

// The window-derivation policies.
const (
	// WindowsAuto (the zero value) derives windows exhaustively for small
	// graphs and switches to the SDC difference-constraint bounds at
	// sdcGraphNodes, the same way smallGraphNodes gates the incremental
	// engine.
	WindowsAuto WindowPolicy = iota
	// WindowsExhaustive forces the per-candidate pasap/palap pairs
	// regardless of size — the pre-refactor path, kept as the oracle.
	WindowsExhaustive
	// WindowsSDC forces the O(V+E) difference-constraint derivation
	// regardless of size.
	WindowsSDC
)

// PartitionPolicy selects hierarchical decomposition (Config.Partition).
type PartitionPolicy int

// The decomposition policies.
const (
	// PartitionAuto (the zero value) decomposes graphs of at least
	// partitionGraphNodes nodes that have two or more weakly-connected
	// components; everything else synthesizes monolithically.
	PartitionAuto PartitionPolicy = iota
	// PartitionOff forces monolithic synthesis.
	PartitionOff
	// PartitionForce decomposes regardless of size: along component
	// boundaries when the graph has two or more weakly-connected
	// components, along a balanced min edge cut when it is connected.
	PartitionForce
)

// Config tunes the synthesizer beyond the constraints.
type Config struct {
	// Cost holds the interconnect/register area coefficients; zero value
	// means bind.DefaultCostModel().
	Cost bind.CostModel
	// DisableRepair turns off the backtrack-and-lock feasibility repair
	// (for the ablation experiments). Synthesis then fails where the
	// repair would have rescued it.
	DisableRepair bool
	// SkipAreaDescent turns off the initial area-driven module descent
	// (for the ablation experiments and as a portfolio variant): module
	// assumptions then stay at the fastest power-feasible choice.
	SkipAreaDescent bool
	// DisableIncremental turns off the incremental evaluation engine
	// (window cache, incrementally maintained power profile and
	// reservation lists) and recomputes everything from scratch each
	// iteration, as the original implementation did — for the ablation
	// experiments and the golden equivalence tests, mirroring
	// DisableRepair. The synthesized design is byte-identical either way;
	// only the work performed (see Stats) differs.
	DisableIncremental bool
	// Workers bounds how many independent synthesis runs SynthesizeBest's
	// portfolio and peak-shaving ladder evaluate concurrently: 0 uses
	// GOMAXPROCS, 1 keeps the legacy serial path. The returned design is
	// identical for every setting.
	Workers int
	// Select chooses the pasap/palap ready-operation selection policy
	// (default CriticalFirst, the paper's rule). SmallestID is the naive
	// topological policy; the portfolio mixes both directions.
	Select sched.Selection
	// Perturb seeds controlled randomization of the greedy ordering; the
	// zero value keeps the paper's deterministic search.
	Perturb Perturb
	// AreaBound, when positive, aborts synthesis with ErrDominated as soon
	// as the committed functional-unit area alone reaches the bound. The
	// portfolio sets it to the incumbent's total area so provably dominated
	// passes stop early (the incumbent-bounding idea of the brute-force
	// search lifted into the heuristic). The cut is heuristic for quality —
	// the merge pass can still shrink committed FU area — but never unsound:
	// an aborted pass produces no design, and the portfolio only ever adopts
	// verified improvements over an incumbent it already holds.
	AreaBound float64
	// Windows selects the candidate-window derivation: exhaustive
	// pasap/palap pairs (small graphs, the paper's formulation) or the SDC
	// difference-constraint bounds (large graphs, O(V+E) per iteration).
	// The zero value auto-selects by node count.
	Windows WindowPolicy
	// Partition selects hierarchical decomposition: large multi-component
	// graphs are split into weakly-connected regions, synthesized
	// independently on the worker pool and stitched back. The zero value
	// auto-selects by node count.
	Partition PartitionPolicy
	// BaseProfile, when non-nil, is an ambient per-cycle power draw added
	// to the committed profile before every P< check (scheduler stretches,
	// slot probes). The sequential region-repair path of the decomposed
	// synthesis threads the power already committed by earlier regions
	// through it, so the stitched union respects the cap by construction.
	// Cycles beyond len(BaseProfile) draw zero ambient power.
	BaseProfile []float64
	// Release, when non-nil, holds one entry per node: Release[i] > 0
	// forbids node i from starting before that cycle (entries <= 0 are
	// free). The min-cut partition path pins a part's boundary sinks to the
	// committed finishes of upstream parts through it; every scheduler run
	// (SDC sweeps, pasap/palap probes, repair locks) sees the same bound.
	Release []int
	// Due, when non-nil, holds one entry per node: Due[i] > 0 forbids node
	// i from completing after that cycle (entries <= 0 unconstrained). The
	// min-cut partition path bounds a part's boundary sources with the
	// whole-graph SDC completion bounds so area descent inside one part
	// cannot starve downstream parts of deadline slack.
	Due []int

	// noCompat disables the incremental-compatibility sharing prefilter on
	// the SDC path. Test-only (in-package): proves the prefilter is
	// output-neutral.
	noCompat bool
	// auditCompat cross-checks the incrementally patched compatibility
	// edge set against a from-scratch rebuild after every sync. Test-only
	// (in-package): the randomized differential suite sets it.
	auditCompat bool
}

func (c Config) cost() bind.CostModel {
	if c.Cost == (bind.CostModel{}) {
		return bind.DefaultCostModel()
	}
	return c.Cost
}

// Decision records one committed synthesis step, for reports.
type Decision struct {
	Node   cdfg.NodeID
	Module string
	FU     int  // instance index
	NewFU  bool // whether the instance was allocated by this decision
	Start  int  // committed start cycle
	Cost   float64
}

// Design is a complete synthesis result.
type Design struct {
	Graph    *cdfg.Graph
	Library  *library.Library
	Cons     Constraints
	Schedule *sched.Schedule
	Datapath *bind.Datapath
	FUs      []bind.FU
	FUOf     []int
	// Locked reports whether the backtrack-and-lock repair was triggered.
	Locked bool
	// Decisions is the commit log in order.
	Decisions []Decision
	// Stats counts the work performed by the run that produced this
	// design (scheduler executions, cache effectiveness, profile probes).
	Stats Stats
}

// Area returns the total datapath area (the synthesis objective).
func (d *Design) Area() float64 { return d.Datapath.TotalArea() }

// Synthesis errors.
var (
	// ErrInfeasible indicates no power- and latency-feasible design exists
	// within the heuristic's search space.
	ErrInfeasible = errors.New("no feasible design under the constraints")
	// ErrUncovered indicates the library lacks a module for some operation.
	ErrUncovered = errors.New("library does not cover all operations")
	// ErrDominated indicates a run was cut off by Config.AreaBound: its
	// committed functional-unit area reached the incumbent bound, so it
	// could not have produced a strictly better design (modulo the merge
	// pass). Only runs with a positive AreaBound can return it.
	ErrDominated = errors.New("dominated by the incumbent area bound")
)

// state is the synthesizer's working state.
type state struct {
	g    *cdfg.Graph
	lib  *library.Library
	cons Constraints
	cfg  Config

	committed []bool
	start     []int // valid where committed (or locked)
	moduleOf  []int // committed module, or assumed module while open
	fuOf      []int // instance index, -1 while uncommitted
	fus       []instance

	locked    bool
	decisions []Decision
	// fuAreaCommitted is the summed module area of the allocated
	// instances, maintained by commit/uncommit for the AreaBound cut.
	fuAreaCommitted float64

	// eng holds the incremental caches; nil when cfg.DisableIncremental
	// selects the legacy recompute-everything path.
	eng   *engine
	stats Stats

	// sdc selects the SDC window derivation (useSDC); topo and sdcB are
	// its cached topological order and recycled bounds buffers.
	sdc  bool
	topo []cdfg.NodeID
	sdcB sched.SDCBounds
	// v1 is the incrementally maintained compatibility graph, alive across
	// commits on the SDC path; nil otherwise (the exhaustive path's windows
	// already encode power, so the prefilter would be redundant work there).
	v1 *compat.Incremental

	// Hot-path lookup tables and scratch, built once by initTables. The
	// synthesize loop runs the schedulers hundreds of times per design;
	// these make the steady state allocation-free and lookup-free.
	nm           int            // library module count
	cand         [][]int        // cand[v]: candidate module indices of v's op
	smallestArea []float64      // smallestArea[v]: cheapest-module area of v's op
	nameToMi     map[string]int // module name -> index
	delays       []int          // delays[v]: delay under moduleOf[v]
	powers       []float64      // powers[v]: per-cycle power under moduleOf[v]
	ovDelays     []int          // single-node override copies of delays/powers
	ovPowers     []float64      //   (windowSchedsFor)
	fixedStarts  []int          // schedOpts buffer: committed starts, -1 = free
	arena        *sched.Arena   // scheduler scratch bound to g
	baseBind     sched.Binding  // binding under the current assumptions
	wins         []sched.Window // flat (node, module) candidate windows
	winSet       []bool         //   parallel presence bits
	potential    []int          // per-module uncommitted-implementer counts
	profScratch  []float64      // legacy committedProfile scratch
	busyA, busyB []interval     // reservation-list scratch (legacy path)
	cm           bind.CostModel

	// Power-aware SDC tightening tables (partition paths only): per
	// candidate module, the next/previous cycle where the ambient
	// BaseProfile leaves no headroom for that module's power. BaseProfile
	// is immutable for the life of a state, so the tables are built once,
	// lazily, on first use (tightenWindow).
	tightNext map[int][]int
	tightPrev map[int][]int

	// Perturbation tables (nil when Config.Perturb is zero): jitterW
	// scales the per-node decision weight, tieRank replaces the node-ID
	// tie-break with a seeded permutation rank.
	jitterW []float64
	tieRank []int
}

// initTables builds the per-state lookup tables and scratch once the
// module assumptions exist. moduleOf must be initialized; committed state
// may be anything.
func (st *state) initTables() {
	n := st.g.N()
	st.nm = st.lib.Len()
	st.cand = make([][]int, n)
	st.smallestArea = make([]float64, n)
	st.nameToMi = make(map[string]int, st.nm)
	for mi := 0; mi < st.nm; mi++ {
		st.nameToMi[st.lib.Module(mi).Name] = mi
	}
	for _, node := range st.g.Nodes() {
		st.cand[node.ID] = st.lib.Candidates(node.Op)
		if m, err := st.lib.Smallest(node.Op); err == nil {
			st.smallestArea[node.ID] = m.Area
		}
	}
	st.delays = make([]int, n)
	st.powers = make([]float64, n)
	for i, mi := range st.moduleOf {
		m := st.lib.Module(mi)
		st.delays[i] = m.Delay
		st.powers[i] = m.Power
	}
	st.ovDelays = make([]int, n)
	st.ovPowers = make([]float64, n)
	st.fixedStarts = make([]int, n)
	st.arena = sched.NewArena(st.g)
	st.baseBind = func(nd cdfg.Node) *library.Module {
		return st.lib.Module(st.moduleOf[nd.ID])
	}
	st.wins = make([]sched.Window, n*st.nm)
	st.winSet = make([]bool, n*st.nm)
	st.potential = make([]int, st.nm)
	st.cm = st.cfg.cost()
	if p := st.cfg.Perturb; p.enabled() {
		// One fixed draw order (jitter factors, then the tie permutation)
		// keeps every perturbed run a pure function of the seed.
		rng := rand.New(rand.NewSource(p.Seed))
		if p.Jitter > 0 {
			st.jitterW = make([]float64, n)
			for i := range st.jitterW {
				st.jitterW[i] = 1 + p.Jitter*(2*rng.Float64()-1)
			}
		}
		if p.ShuffleTies {
			st.tieRank = rng.Perm(n)
		}
	}
}

// setModule updates a node's module assumption and the delay/power tables
// that mirror it. Every moduleOf write after initTables must go through
// here.
func (st *state) setModule(v cdfg.NodeID, mi int) {
	st.moduleOf[v] = mi
	m := st.lib.Module(mi)
	st.delays[v] = m.Delay
	st.powers[v] = m.Power
}

type instance struct {
	module int
	ops    []cdfg.NodeID
}

// newState validates the inputs and builds the synthesizer's working
// state with the initial (fastest power-feasible) module assumptions and,
// unless disabled, the incremental evaluation engine.
func newState(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*state, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid graph: %w", err)
	}
	if cons.Deadline <= 0 {
		return nil, fmt.Errorf("core: deadline %d must be positive", cons.Deadline)
	}
	if missing := lib.Covers(g); missing != nil {
		return nil, fmt.Errorf("core: operations %v: %w", missing, ErrUncovered)
	}
	st := &state{
		g: g, lib: lib, cons: cons, cfg: cfg,
		committed: make([]bool, g.N()),
		start:     make([]int, g.N()),
		moduleOf:  make([]int, g.N()),
		fuOf:      make([]int, g.N()),
	}
	for i := range st.fuOf {
		st.fuOf[i] = -1
	}
	// Assume, per operation, the fastest power-feasible module; this is
	// the most latency-optimistic assumption, so if it misses the deadline
	// no uniform refinement can meet it either.
	for _, n := range g.Nodes() {
		mi, err := st.fastestFeasible(n.Op)
		if err != nil {
			return nil, err
		}
		st.moduleOf[n.ID] = mi
	}
	st.initTables()
	if !cfg.DisableIncremental {
		eng, err := newEngine(st)
		if err != nil {
			return nil, err
		}
		st.eng = eng
	}
	if st.sdc = useSDC(g, cfg); st.sdc {
		topo, err := g.TopoOrder()
		if err != nil {
			return nil, err
		}
		st.topo = topo
		if !cfg.noCompat {
			v1, err := compat.NewIncremental(g, lib)
			if err != nil {
				return nil, err
			}
			st.v1 = v1
		}
	}
	return st, nil
}

// smallGraphNodes gates the incremental engine by graph size: below this
// many nodes the legacy recompute-everything path is selected even when
// the engine is enabled. On tiny graphs a full scheduler run is only a few
// microseconds, so the engine's fixed per-commit work (validity filtering,
// dirty-set fixpoint, audit) costs more than the runs it saves — measured
// on hal (20 nodes), the engine cuts runs 39% yet loses wall-clock. Both
// paths are proven byte-identical by the golden equivalence tests, so the
// selection is output-neutral; only Stats differ. See DESIGN.md §7.
const smallGraphNodes = 24

// useEngine reports whether the incremental engine should run for g.
func useEngine(g *cdfg.Graph, cfg Config) bool {
	return !cfg.DisableIncremental && g.N() >= smallGraphNodes
}

// sdcGraphNodes gates the SDC window derivation by graph size, the way
// smallGraphNodes gates the engine: below this many nodes the exhaustive
// pasap/palap windows are exact and cheap, and their extra tightness
// (they encode the power cap; the SDC bounds do not) is worth keeping.
// Above it the per-candidate scheduler pairs are the dominant cost and the
// relaxed windows win. All seven classic benchmarks are far below the
// threshold, so the paper-faithful path is untouched. See DESIGN.md §13.
const sdcGraphNodes = 160

// useSDC reports whether synthesis of g should derive candidate windows
// from the SDC difference-constraint bounds.
func useSDC(g *cdfg.Graph, cfg Config) bool {
	switch cfg.Windows {
	case WindowsExhaustive:
		return false
	case WindowsSDC:
		return true
	}
	return g.N() >= sdcGraphNodes
}

// partitionGraphNodes gates hierarchical decomposition by graph size:
// below it even a multi-component graph synthesizes monolithically (the
// classic path; byte-identical results matter more than the split's
// savings at these sizes). Decomposition additionally requires two or
// more weakly-connected components — it never cuts data dependencies.
const partitionGraphNodes = 128

// usePartition reports whether synthesis of g should try hierarchical
// decomposition.
func usePartition(g *cdfg.Graph, cfg Config) bool {
	switch cfg.Partition {
	case PartitionOff:
		return false
	case PartitionForce:
		return true
	}
	return g.N() >= partitionGraphNodes
}

// expandLevels lowers a multi-level library into its single-level
// expansion before synthesis (library.Expand): each voltage operating
// point becomes an ordinary module candidate, so the decision loop picks
// an operating point exactly the way it picks a module, and the flat
// (node x nm) scratch tables gain the level dimension through nm itself.
// Single-level libraries pass through untouched (pointer-identical), so
// every pre-voltage input keeps byte-identical designs.
func expandLevels(lib *library.Library) (*library.Library, error) {
	elib, err := lib.Expand()
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return elib, nil
}

// Synthesize runs the combined scheduling/allocation/binding algorithm.
// Multi-level libraries are first lowered into their single-level
// expansion (one module per voltage operating point; see expandLevels).
// Large graphs that split into several weakly-connected components are
// decomposed: the regions synthesize independently on the worker pool and
// the results are stitched back together (see synthesizePartitioned);
// everything else runs the monolithic greedy loop.
func Synthesize(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	lib, err := expandLevels(lib)
	if err != nil {
		return nil, err
	}
	cfg.DisableIncremental = !useEngine(g, cfg)
	if usePartition(g, cfg) {
		return synthesizePartitioned(g, lib, cons, cfg)
	}
	return synthesizeMono(g, lib, cons, cfg)
}

// synthesizeMono is the monolithic synthesis loop — the paper's algorithm
// over one graph, with no decomposition.
func synthesizeMono(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	st, err := newState(g, lib, cons, cfg)
	if err != nil {
		return nil, err
	}
	if err := st.refineInitialModules(); err != nil {
		return nil, err
	}

	for remaining := g.N(); remaining > 0; remaining-- {
		dec, ok := st.bestDecision()
		if !ok {
			if err := st.repair(); err != nil {
				return nil, err
			}
			dec, ok = st.bestDecision()
			if !ok {
				return nil, fmt.Errorf("core: no decision available after repair: %w", ErrInfeasible)
			}
		}
		st.commit(dec)
		if !st.locked {
			probe, err := st.currentPASAP()
			if err != nil {
				// The commitment stranded the remaining operations:
				// backtrack one step and lock (the paper's repair).
				st.uncommit(dec)
				if err := st.repair(); err != nil {
					return nil, err
				}
				// Re-evaluate under the locked schedule.
				dec, ok = st.bestDecision()
				if !ok {
					return nil, fmt.Errorf("core: no decision available after repair: %w", ErrInfeasible)
				}
				st.commit(dec)
			} else {
				st.noteProbe(dec, probe)
			}
		}
		// Incumbent cut: once the committed FU area alone reaches the
		// bound, this run cannot beat the incumbent it was raced against
		// (up to merge-pass shrinkage — see Config.AreaBound).
		if cfg.AreaBound > 0 && st.fuAreaCommitted >= cfg.AreaBound {
			return nil, fmt.Errorf("core: committed FU area %.6g reached the bound %.6g: %w",
				st.fuAreaCommitted, cfg.AreaBound, ErrDominated)
		}
	}
	// Post-pass: merge instances whenever that reduces the exact area.
	st.mergePass()
	return st.finish()
}

// SynthesizeBest wraps Synthesize with two cheap meta-heuristics and
// returns the smallest-area feasible design:
//
//   - a two-point portfolio over the initial module assumptions (with and
//     without the area-driven descent), and
//   - iterative peak shaving: the per-cycle power cap is repeatedly
//     tightened to just below the peak of the best design found, which
//     narrows the pasap/palap windows and often steers the greedy search
//     to a cheaper design. Every candidate is synthesized under a cap at
//     or below cons.PowerMax, so the result always satisfies the original
//     constraints (which it reports).
//
// The single-pass Synthesize is the paper's algorithm; SynthesizeBest is
// the recommended entry point when area quality matters more than a ~10x
// constant in synthesis time.
func SynthesizeBest(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	return SynthesizeBestContext(context.Background(), g, lib, cons, cfg)
}

// synthResult captures one portfolio run so runner.Map can carry synthesis
// failures as data (an infeasible candidate is not a pool error).
type synthResult struct {
	d   *Design
	err error
}

// SynthesizeBestContext is SynthesizeBest with cancellation and a bounded
// worker pool: the two portfolio variants and the caps of the peak-shaving
// ladder are independent synthesis runs evaluated cfg.Workers at a time.
//
// The returned design is identical for every worker count. The ladder's
// serial semantics — walk caps from loosest to tightest, stopping after
// 3 consecutive infeasible caps — are preserved by
// evaluating caps speculatively in chunks and replaying the stop rule over
// the results in cap order; chunk results past the serial stopping point
// are discarded. Cancellation is checked between synthesis runs: a cancelled
// ctx returns its error promptly without starting new runs.
func SynthesizeBestContext(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	// Expand voltage levels once up front; the per-cap Synthesize calls
	// below then see a single-level library and pass it through untouched.
	lib, err := expandLevels(lib)
	if err != nil {
		return nil, err
	}
	altCfg := cfg
	altCfg.SkipAreaDescent = !cfg.SkipAreaDescent
	configs := [2]Config{cfg, altCfg}
	port, err := runner.Map(ctx, len(configs), runner.Config{Workers: cfg.Workers},
		func(_ context.Context, i int) (synthResult, error) {
			d, err := Synthesize(g, lib, cons, configs[i])
			return synthResult{d, err}, nil
		})
	if err != nil {
		return nil, err
	}
	best, firstErr := port[0].d, port[0].err
	maxPeak := 0.0
	if best != nil {
		maxPeak = best.Schedule.PeakPower()
	}
	if alt := port[1].d; port[1].err == nil && alt != nil {
		if p := alt.Schedule.PeakPower(); p > maxPeak {
			maxPeak = p
		}
		if best == nil || alt.Area() < best.Area() {
			best = alt
		}
	}
	if best == nil {
		return nil, firstErr
	}
	// Peak shaving over a geometric ladder of internal caps, from the
	// loosest meaningful cap down to the feasibility floor. Tighter caps
	// narrow the pasap/palap windows, which often steers the greedy search
	// to a cheaper design even when the cap itself is slack.
	top := cons.PowerMax
	if top <= 0 || top > maxPeak/0.95 {
		// Unconstrained (or very loose): no cap above the portfolio peak
		// can change anything.
		top = maxPeak / 0.95
	}
	// Materialize the ladder with the same repeated multiplication the
	// serial loop used so cap values are bit-identical.
	var caps []float64
	for cap := top * 0.95; cap > 0.1; cap *= 0.95 {
		caps = append(caps, cap)
	}
	chunk, err := runner.ResolveWorkers(cfg.Workers, len(caps))
	if err != nil {
		return nil, err
	}
	failures := 0
	for lo := 0; lo < len(caps) && failures < 3; lo += chunk {
		hi := lo + chunk
		if hi > len(caps) {
			hi = len(caps)
		}
		shaved, err := runner.Map(ctx, hi-lo, runner.Config{Workers: cfg.Workers},
			func(_ context.Context, i int) (synthResult, error) {
				d, err := Synthesize(g, lib, Constraints{Deadline: cons.Deadline, PowerMax: caps[lo+i]}, cfg)
				return synthResult{d, err}, nil
			})
		if err != nil {
			return nil, err
		}
		for _, r := range shaved {
			if failures >= 3 {
				break // the serial walk would have stopped here
			}
			if r.err != nil {
				failures++
				continue
			}
			failures = 0
			if r.d.Area() < best.Area() {
				best = r.d
			}
		}
	}
	best.Cons = cons
	return best, nil
}

// fastestFeasible picks the minimum-delay module for op whose power fits
// the constraint, breaking ties toward smaller area.
func (st *state) fastestFeasible(op cdfg.Op) (int, error) {
	best := -1
	for _, mi := range st.lib.Candidates(op) {
		m := st.lib.Module(mi)
		if st.cons.PowerMax > 0 && m.Power > st.cons.PowerMax+1e-9 {
			continue
		}
		if best < 0 {
			best = mi
			continue
		}
		b := st.lib.Module(best)
		if m.Delay < b.Delay || (m.Delay == b.Delay && m.Area < b.Area) {
			best = mi
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("core: no module for %s fits P< = %.3g: %w", op, st.cons.PowerMax, ErrInfeasible)
	}
	return best, nil
}

// schedOpts returns the scheduler options with committed (or locked)
// operations fixed. The FixedStarts buffer and the delay/power tables are
// shared state scratch: their contents are stable within one synthesis
// iteration, which is as long as any scheduler run reads them.
func (st *state) schedOpts() sched.Options {
	st.fillFixedStarts()
	return sched.Options{
		PowerMax:    st.cons.PowerMax,
		Select:      st.cfg.Select,
		Base:        st.cfg.BaseProfile,
		FixedStarts: st.fixedStarts,
		Delays:      st.delays,
		Powers:      st.powers,
		Arena:       st.arena,
		Release:     st.cfg.Release,
		Due:         st.cfg.Due,
	}
}

// fillFixedStarts refreshes the committed-starts buffer schedOpts and the
// SDC derivation share.
func (st *state) fillFixedStarts() {
	for i, c := range st.committed {
		if c || st.locked {
			st.fixedStarts[i] = st.start[i]
		} else {
			st.fixedStarts[i] = -1
		}
	}
}

// baseAt returns the ambient power Config.BaseProfile contributes at
// cycle c (zero beyond its length, zero when unset).
func (st *state) baseAt(c int) float64 {
	if b := st.cfg.BaseProfile; c < len(b) {
		return b[c]
	}
	return 0
}

// currentPASAP computes the pasap schedule of the whole graph under the
// current state and verifies it meets the deadline; it is the validity
// probe run after every commitment.
func (st *state) currentPASAP() (*sched.Schedule, error) {
	st.stats.SchedulerRuns++
	s, err := sched.PASAP(st.g, st.baseBind, st.schedOpts())
	if err != nil {
		return nil, fmt.Errorf("core: %w: %w", ErrInfeasible, err)
	}
	if s.Length() > st.cons.Deadline {
		return nil, fmt.Errorf("core: pasap length %d exceeds T = %d: %w", s.Length(), st.cons.Deadline, ErrInfeasible)
	}
	return s, nil
}

// windowFor computes the power-feasible mobility window of node v when
// bound to module mi, under the current committed state. ok=false means
// the candidate is infeasible.
func (st *state) windowFor(v cdfg.NodeID, mi int) (sched.Window, bool) {
	if st.locked {
		if mi != st.moduleOf[v] {
			return sched.Window{}, false
		}
		return sched.Window{Early: st.start[v], Late: st.start[v]}, true
	}
	early, late, ok := st.windowSchedsFor(v, mi)
	if !ok {
		return sched.Window{}, false
	}
	w := sched.Window{Early: early.Start[v], Late: late.Start[v]}
	if w.Width() < 1 {
		return sched.Window{}, false
	}
	return w, true
}

// windowSchedsFor runs the override pasap/palap pair for candidate
// (v, mi) and returns both schedules — the engine caches their full
// start arrays to prove entries valid across later commitments.
// ok=false means the pair is infeasible.
func (st *state) windowSchedsFor(v cdfg.NodeID, mi int) (early, late *sched.Schedule, ok bool) {
	m := st.lib.Module(mi)
	if st.cons.PowerMax > 0 && m.Power > st.cons.PowerMax+1e-9 {
		return nil, nil, false
	}
	opts := st.schedOpts()
	// Single-node override: copy the base tables and patch v. The returned
	// schedules alias these buffers, but every caller consumes the pair
	// (reading Start and Length) before the next override run refills them.
	copy(st.ovDelays, st.delays)
	copy(st.ovPowers, st.powers)
	st.ovDelays[v] = m.Delay
	st.ovPowers[v] = m.Power
	opts.Delays, opts.Powers = st.ovDelays, st.ovPowers
	st.stats.SchedulerRuns++
	early, err := sched.PASAP(st.g, st.baseBind, opts)
	if err != nil || early.Length() > st.cons.Deadline {
		return nil, nil, false
	}
	st.stats.SchedulerRuns++
	late, err = sched.PALAP(st.g, st.baseBind, st.cons.Deadline, opts)
	if err != nil {
		return nil, nil, false
	}
	return early, late, true
}

// committedProfile returns the per-cycle power drawn by committed
// operations over [0, horizon).
func (st *state) committedProfile(horizon int) []float64 {
	return st.fillCommittedProfile(make([]float64, horizon))
}

// committedProfileScratch is committedProfile into the state's recycled
// buffer — the legacy path probes it on every freeSlot call, so the hot
// loop must not allocate. The result is valid until the next call.
func (st *state) committedProfileScratch(horizon int) []float64 {
	if cap(st.profScratch) < horizon {
		st.profScratch = make([]float64, horizon)
	}
	p := st.profScratch[:horizon]
	for c := range p {
		p[c] = 0
	}
	return st.fillCommittedProfile(p)
}

func (st *state) fillCommittedProfile(p []float64) []float64 {
	horizon := len(p)
	for i, c := range st.committed {
		if !c {
			continue
		}
		for cyc := st.start[i]; cyc < st.start[i]+st.delays[i] && cyc < horizon; cyc++ {
			p[cyc] += st.powers[i]
		}
	}
	return p
}

// commit applies a decision.
func (st *state) commit(d Decision) {
	mi := st.moduleIndexOf(d)
	st.committed[d.Node] = true
	st.start[d.Node] = d.Start
	st.setModule(d.Node, mi)
	if d.NewFU {
		st.fus = append(st.fus, instance{module: mi})
		st.fuAreaCommitted += st.lib.Module(mi).Area
	}
	st.fuOf[d.Node] = d.FU
	st.fus[d.FU].ops = append(st.fus[d.FU].ops, d.Node)
	st.decisions = append(st.decisions, d)
	if st.eng != nil {
		st.eng.applyCommit(d, st.lib.Module(mi))
	}
}

// uncommit reverts the most recent decision (must be d).
func (st *state) uncommit(d Decision) {
	if st.eng != nil {
		// Revert before the module assumption is restored: the profile
		// entry was made with the committed module. A backtrack changes
		// placements non-locally, so the window cache is dropped whole.
		st.eng.revertCommit(d, st.lib.Module(st.moduleOf[d.Node]))
		st.eng.invalidateWindows()
		st.stats.FullInvalidations++
	}
	st.committed[d.Node] = false
	st.fuOf[d.Node] = -1
	f := &st.fus[d.FU]
	f.ops = f.ops[:len(f.ops)-1]
	if d.NewFU {
		st.fuAreaCommitted -= st.lib.Module(st.fus[d.FU].module).Area
		st.fus = st.fus[:len(st.fus)-1]
	}
	st.decisions = st.decisions[:len(st.decisions)-1]
	// Restore the assumed module for the node.
	if mi, err := st.fastestFeasible(st.g.Node(d.Node).Op); err == nil {
		st.setModule(d.Node, mi)
	}
}

// noteProbe records the successful post-commit pasap probe with the
// engine: the probe is the exact base Early schedule of the next
// iteration (saving one full run), and the commitment is folded into the
// cache's validity state.
//
// A cached scheduler-run pair survives the commitment of node u at cycle
// s exactly when both of its runs already placed u at s under the
// committed module: fixing a node where the greedy schedulers put it
// anyway changes neither schedule — per-cycle power sums are symmetric,
// added power never opens earlier slots, and each clean node re-settles
// on its previous start — so the cached windows remain byte-identical to
// a recompute. Entries failing the condition are dropped; when the base
// pair itself passes (the new probe equals the previous one and the late
// schedule had u at s), the next iteration reuses all base windows with
// no scheduler run at all, otherwise the commitment's disturbance is
// folded into the dirty set for the pinned re-derivation.
func (st *state) noteProbe(d Decision, probe *sched.Schedule) {
	if st.eng == nil {
		return
	}
	eng := st.eng
	if eng.warm {
		u, s := int(d.Node), d.Start
		moduleMatch := eng.assumed != nil && st.moduleOf[u] == eng.assumed[u]
		for idx := range eng.overSet {
			if !eng.overSet[idx] {
				continue
			}
			if idx/st.nm != u {
				ent := &eng.over[idx]
				if moduleMatch && ent.earlyStart != nil &&
					ent.earlyStart[u] == s && ent.lateStart[u] == s {
					continue
				}
			}
			eng.overSet[idx] = false
			eng.over[idx] = winEntry{}
			st.stats.WindowInvalidations++
		}
		eng.baseValid = moduleMatch && eng.baseWin[u].Late == s && sameStarts(eng.probe, probe)
		if !eng.baseValid {
			st.markDirtyAfterCommit(d)
		}
	}
	eng.probe = probe
}

func (st *state) moduleIndexOf(d Decision) int {
	if mi, ok := st.nameToMi[d.Module]; ok {
		return mi
	}
	panic("core: decision references unknown module " + d.Module)
}

// repair implements the paper's feasibility repair: lock every uncommitted
// operation to the last valid pasap schedule, so that only allocation and
// binding decisions remain.
func (st *state) repair() error {
	if st.cfg.DisableRepair {
		return fmt.Errorf("core: stranded operation with repair disabled: %w", ErrInfeasible)
	}
	if st.locked {
		return fmt.Errorf("core: stranded operation in locked mode: %w", ErrInfeasible)
	}
	s, err := st.currentPASAP()
	if err != nil {
		return err
	}
	for i := range st.committed {
		if !st.committed[i] {
			st.start[i] = s.Start[i]
		}
	}
	st.locked = true
	return nil
}

// finish validates and assembles the Design.
func (st *state) finish() (*Design, error) {
	s := sched.Schedule{
		G:      st.g,
		Start:  append([]int(nil), st.start...),
		Delay:  make([]int, st.g.N()),
		Power:  make([]float64, st.g.N()),
		Module: make([]string, st.g.N()),
	}
	for i := range st.moduleOf {
		m := st.lib.Module(st.moduleOf[i])
		s.Delay[i] = m.Delay
		s.Power[i] = m.Power
		s.Module[i] = m.Name
	}
	if err := s.Validate(st.cons.PowerMax, st.cons.Deadline); err != nil {
		return nil, fmt.Errorf("core: internal error: final schedule invalid: %w", err)
	}
	fus := make([]bind.FU, len(st.fus))
	for i, f := range st.fus {
		fus[i] = bind.FU{Module: st.lib.Module(f.module), Ops: append([]cdfg.NodeID(nil), f.ops...)}
	}
	dp, err := bind.Build(st.g, &s, fus, st.fuOf, st.cfg.cost())
	if err != nil {
		return nil, fmt.Errorf("core: internal error: %w", err)
	}
	return &Design{
		Graph:     st.g,
		Library:   st.lib,
		Cons:      st.cons,
		Schedule:  &s,
		Datapath:  dp,
		FUs:       fus,
		FUOf:      append([]int(nil), st.fuOf...),
		Locked:    st.locked,
		Decisions: st.decisions,
		Stats:     st.stats,
	}, nil
}
