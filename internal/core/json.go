package core

import (
	"encoding/json"

	"pchls/internal/cdfg"
)

// designJSON is the machine-readable export schema of a Design. Field
// names are part of the tool's public output contract.
type designJSON struct {
	Graph       string          `json:"graph"`
	Deadline    int             `json:"deadline"`
	PowerMax    float64         `json:"power_max"`
	Area        areaJSON        `json:"area"`
	Makespan    int             `json:"makespan"`
	PeakPower   float64         `json:"peak_power"`
	Energy      float64         `json:"energy"`
	Locked      bool            `json:"repair_locked"`
	Operations  []operationJSON `json:"operations"`
	FUs         []fuJSON        `json:"functional_units"`
	Registers   [][]string      `json:"registers"`
	MuxInputsFU int             `json:"fu_mux_inputs"`
	MuxInputsRg int             `json:"reg_mux_inputs"`
}

type areaJSON struct {
	Total     float64 `json:"total"`
	FUs       float64 `json:"functional_units"`
	Registers float64 `json:"registers"`
	Mux       float64 `json:"interconnect"`
}

type operationJSON struct {
	Name   string  `json:"name"`
	Op     string  `json:"op"`
	Module string  `json:"module"`
	FU     int     `json:"fu"`
	Start  int     `json:"start"`
	Delay  int     `json:"delay"`
	Power  float64 `json:"power"`
}

type fuJSON struct {
	Module string   `json:"module"`
	Area   float64  `json:"area"`
	Ops    []string `json:"ops"`
}

// JSON renders the design as indented JSON for downstream tooling.
func (d *Design) JSON() ([]byte, error) {
	out := designJSON{
		Graph:       d.Graph.Name,
		Deadline:    d.Cons.Deadline,
		PowerMax:    d.Cons.PowerMax,
		Makespan:    d.Schedule.Length(),
		PeakPower:   d.Schedule.PeakPower(),
		Energy:      d.Schedule.Energy(),
		Locked:      d.Locked,
		MuxInputsFU: d.Datapath.FUMuxInputs,
		MuxInputsRg: d.Datapath.RegMuxInputs,
		Area: areaJSON{
			Total:     d.Area(),
			FUs:       d.Datapath.FUArea,
			Registers: d.Datapath.RegArea,
			Mux:       d.Datapath.MuxArea,
		},
	}
	for _, n := range d.Graph.Nodes() {
		out.Operations = append(out.Operations, operationJSON{
			Name:   n.Name,
			Op:     n.Op.String(),
			Module: d.Schedule.Module[n.ID],
			FU:     d.FUOf[n.ID],
			Start:  d.Schedule.Start[n.ID],
			Delay:  d.Schedule.Delay[n.ID],
			Power:  d.Schedule.Power[n.ID],
		})
	}
	for _, fu := range d.FUs {
		fj := fuJSON{Module: fu.Module.Name, Area: fu.Module.Area}
		for _, op := range fu.Ops {
			fj.Ops = append(fj.Ops, d.Graph.Node(op).Name)
		}
		out.FUs = append(out.FUs, fj)
	}
	for _, r := range d.Datapath.Registers {
		names := make([]string, len(r.Values))
		for i, v := range r.Values {
			names[i] = d.Graph.Node(cdfg.NodeID(v)).Name
		}
		out.Registers = append(out.Registers, names)
	}
	return json.MarshalIndent(out, "", "  ")
}
