package core

import (
	"pchls/internal/cdfg"
	"pchls/internal/sched"
)

// syncCompat reconciles the incrementally maintained compatibility graph
// with this iteration's candidate windows. A committed operation collapses
// to a point window at its committed module (its other candidates become
// infeasible); every open (node, module) candidate takes the window the
// derivation just produced. Incremental.Set patches only edges incident
// to candidates that actually changed — the dirty set that commit,
// uncommit and repair induce through the window table — so a steady-state
// iteration re-derives O(changed·n) edge bits instead of the O((n·m)²)
// full rebuild the pre-refactor structure paid.
func (st *state) syncCompat() {
	ic := st.v1
	for i := 0; i < st.g.N(); i++ {
		v := cdfg.NodeID(i)
		if st.committed[i] {
			for _, mi := range st.cand[i] {
				if mi == st.moduleOf[i] {
					w := sched.Window{Early: st.start[i], Late: st.start[i]}
					if ic.Set(v, mi, w, true) {
						st.stats.CompatPatches++
					}
				} else if ic.Set(v, mi, sched.Window{}, false) {
					st.stats.CompatPatches++
				}
			}
			continue
		}
		for _, mi := range st.cand[i] {
			w, ok := st.getWin(v, mi)
			if ic.Set(v, mi, w, ok) {
				st.stats.CompatPatches++
			}
		}
	}
	if st.cfg.auditCompat {
		st.stats.CompatRebuilds++
		if err := ic.Audit(); err != nil {
			// Test-only invariant: the patched edge set must equal the
			// from-scratch rebuild bit for bit.
			panic("core: incremental compatibility audit failed: " + err.Error())
		}
	}
}
