package core

import (
	"context"
	"fmt"
	"sort"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/runner"
	"pchls/internal/sched"
	"pchls/internal/verify"
)

// mincutGraphNodes is the auto-policy threshold for min-cut decomposition
// of connected graphs: below it the monolithic SDC path is already fast and
// cutting would only cost QoR. Chosen above the ~420-node layered-n300
// benchmark graph and below the ~1400-node n=1000 tiers.
const mincutGraphNodes = 512

// mincutPartTarget is the node count each min-cut part aims for: big enough
// that parts land on the SDC window path themselves, small enough that the
// serial work drops by an order of magnitude (the greedy loop is
// superlinear in the node count).
const mincutPartTarget = 200

// synthesizePartitioned is the hierarchical-decomposition entry point for
// graphs that usePartition selected. Graphs with two or more
// weakly-connected components decompose along component boundaries (regions
// share no data dependency, so each region's schedule is valid in
// isolation). Connected graphs large enough for the cut to pay off (or
// forced by PartitionForce) decompose along a balanced min edge cut
// instead, with every severed dependency re-imposed as a boundary-transfer
// constraint (synthesizeMinCut).
//
// Regions synthesized in parallel each respect the power cap alone but
// may exceed it jointly; the stitch validation catches that, and the
// sequential repair re-synthesizes the regions in order, threading the
// power profile committed so far through Config.BaseProfile so the union
// respects P< by construction. If that also fails, the graph synthesizes
// monolithically (counted in Stats.PartitionFallbacks).
//
// Every stitched result is re-checked by the engine-independent
// verify.Check before being returned. The function is deterministic for
// every worker count: runner.Map preserves region order, and stitching
// walks regions in that order.
func synthesizePartitioned(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	comps := g.Components()
	if len(comps) < 2 {
		if cfg.Partition == PartitionForce || g.N() >= mincutGraphNodes {
			return synthesizeMinCut(g, lib, cons, cfg)
		}
		return synthesizeMono(g, lib, cons, cfg)
	}
	subs := make([]*cdfg.Graph, len(comps))
	for i, ids := range comps {
		sub, err := g.Subgraph(fmt.Sprintf("%s#%d", g.Name, i), ids)
		if err != nil {
			return nil, fmt.Errorf("core: internal error extracting region %d: %w", i, err)
		}
		subs[i] = sub
	}
	// Region runs are leaves: no nested decomposition, no nested worker
	// fan-out, no incumbent cut (the bound is about whole designs), no
	// inherited ambient profile.
	rcfg := regionConfig(cfg)

	regions, err := runner.Map(context.Background(), len(subs), runner.Config{Workers: cfg.Workers},
		func(_ context.Context, i int) (synthResult, error) {
			d, err := Synthesize(subs[i], lib, cons, rcfg)
			return synthResult{d, err}, nil
		})
	if err == nil {
		ds := make([]*Design, len(regions))
		ok := true
		for i, r := range regions {
			if r.err != nil {
				ok = false
				break
			}
			ds[i] = r.d
		}
		if ok {
			if d, err := stitchRegions(g, lib, cons, cfg, comps, nil, ds, Stats{}); err == nil {
				return d, nil
			}
		}
	}
	if cons.PowerMax > 0 {
		if d, err := stitchSequential(g, lib, cons, cfg, comps, subs, rcfg); err == nil {
			return d, nil
		}
	}
	d, err := synthesizeMono(g, lib, cons, cfg)
	if d != nil {
		d.Stats.PartitionFallbacks++
	}
	return d, err
}

// regionConfig strips the per-region synthesis config of everything that
// belongs to the whole-graph run: nested decomposition, worker fan-out, the
// incumbent area bound, the ambient profile, and boundary pins (the
// partition drivers set their own per part).
func regionConfig(cfg Config) Config {
	cfg.Partition = PartitionOff
	cfg.Workers = 1
	cfg.AreaBound = 0
	cfg.BaseProfile = nil
	cfg.Release = nil
	cfg.Due = nil
	return cfg
}

// synthesizeMinCut decomposes a connected graph along a balanced min edge
// cut (cdfg.PartitionBalanced) and synthesizes the parts wave by wave on
// the worker pool: parts with no cut edges between them run concurrently,
// and every cut edge u -> v is re-imposed on the downstream part as a
// release — v may not start before u's committed finish — enforced through
// the same SDC sweeps and pasap/palap bounds as in-part precedence
// (sched.Options.Release/Due), not a separate mechanism. Two measures keep
// the cut's QoR loss in check:
//
//   - Boundary sources carry dues from the whole-graph SDC completion
//     bounds under fastest-feasible delays, so area descent inside an
//     upstream part cannot consume slack that downstream parts need.
//   - Parts see the per-cycle power committed by earlier waves as an
//     ambient BaseProfile, which both constrains their placements and
//     tightens their SDC windows (power-aware bound propagation,
//     Stats.BoundTightenings).
//
// Within a wave, parts are power-coupled only: an acceptance walk in part
// order re-synthesizes any member whose committed profile jointly breaks
// the cap against the accumulated base (the sequential repair of the
// component path, woven in per wave and counted in Stats.RegionRepairs).
// Any part failure abandons the decomposition for the monolithic path
// (Stats.PartitionFallbacks). The stitched result must pass verify.Check.
//
// Deterministic for every worker count: the cut, the wave grouping, the
// acceptance order, and the stitch all follow part order.
func synthesizeMinCut(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	n := g.N()
	k := n / mincutPartTarget
	if k < 2 {
		k = 2
	}
	if k > 16 {
		k = 16
	}
	parts, cut, err := g.PartitionBalanced(k)
	if err != nil || len(parts) < 2 {
		return synthesizeMono(g, lib, cons, cfg)
	}

	partIdx := make([]int, n)
	localIdx := make([]int, n)
	for pi, ids := range parts {
		for li, id := range ids {
			partIdx[id] = pi
			localIdx[id] = li
		}
	}
	subs := make([]*cdfg.Graph, len(parts))
	realNs := make([]int, len(parts))
	for pi, ids := range parts {
		sub, err := g.InducedSubgraph(fmt.Sprintf("%s#cut%d", g.Name, pi), ids)
		if err != nil {
			return nil, fmt.Errorf("core: internal error extracting part %d: %w", pi, err)
		}
		realNs[pi] = sub.N()
		addGhostInput(sub)
		subs[pi] = sub
	}

	// Group parts into waves by longest cut-edge chain: parts in one wave
	// have no cut edges between them (an edge always strictly increases the
	// level), so they are data-independent. Part indices are already
	// quotient-topological, which keeps every computation below one pass.
	level := make([]int, len(parts))
	maxLevel := 0
	outEdges := make([][]cdfg.CutEdge, len(parts))
	for _, e := range cut {
		pu, pv := partIdx[e.U], partIdx[e.V]
		outEdges[pu] = append(outEdges[pu], e)
		if l := level[pu] + 1; l > level[pv] {
			level[pv] = l
		}
		if level[pv] > maxLevel {
			maxLevel = level[pv]
		}
	}
	waves := make([][]int, maxLevel+1)
	for pi := range parts {
		waves[level[pi]] = append(waves[level[pi]], pi)
	}

	// Boundary dues: the latest completion each cut-edge source can afford
	// under the whole-graph difference constraints with fastest-feasible
	// delays — the loosest precedence-valid bound, so a feasible monolithic
	// schedule never becomes part-infeasible through the due alone.
	fast, err := fastestDelays(g, lib, cons)
	if err != nil {
		return synthesizeMono(g, lib, cons, cfg)
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("core: internal error: %w", err)
	}
	free := make([]int, n)
	for i := range free {
		free[i] = -1
	}
	var wb sched.SDCBounds
	sched.DeriveSDCBounds(g, topo, cons.Deadline, fast, free, nil, nil, &wb)

	releases := make([][]int, len(parts))
	dues := make([][]int, len(parts))
	for pi := range parts {
		releases[pi] = make([]int, subs[pi].N())
		dues[pi] = make([]int, subs[pi].N())
	}
	for _, e := range cut {
		pu, lu := partIdx[e.U], localIdx[e.U]
		if d := wb.LateEnd[e.U]; d > 0 && (dues[pu][lu] == 0 || d < dues[pu][lu]) {
			dues[pu][lu] = d
		}
	}

	var driver Stats
	driver.CutEdges = int64(len(cut))
	rcfg := regionConfig(cfg)
	base := make([]float64, cons.Deadline)
	ds := make([]*Design, len(parts))
	failed := false
waveLoop:
	for _, wave := range waves {
		wave := wave
		results, err := runner.Map(context.Background(), len(wave), runner.Config{Workers: cfg.Workers},
			func(_ context.Context, i int) (synthResult, error) {
				pi := wave[i]
				rc := rcfg
				rc.BaseProfile = base // read-only while the wave runs
				rc.Release = releases[pi]
				rc.Due = dues[pi]
				d, err := Synthesize(subs[pi], lib, cons, rc)
				return synthResult{d, err}, nil
			})
		if err != nil {
			failed = true
			break
		}
		// Acceptance walk in part order: within a wave the parts are
		// power-coupled only, so a member whose profile jointly breaks the
		// cap against everything accepted so far is re-synthesized alone
		// against the accumulated base — after which it fits by
		// construction.
		for i, pi := range wave {
			d, derr := results[i].d, results[i].err
			if derr == nil && cons.PowerMax > 0 && !fitsUnderBase(base, d, realNs[pi], cons.PowerMax) {
				rc := rcfg
				rc.BaseProfile = base
				rc.Release = releases[pi]
				rc.Due = dues[pi]
				driver.RegionRepairs++
				d, derr = Synthesize(subs[pi], lib, cons, rc)
			}
			if derr != nil {
				failed = true
				break waveLoop
			}
			ds[pi] = d
			addRealPower(base, d, realNs[pi])
			// Thread the committed finish of every cut-edge source into the
			// downstream part's release: the boundary transfer.
			for _, e := range outEdges[pi] {
				fin := d.Schedule.Start[localIdx[e.U]] + d.Schedule.Delay[localIdx[e.U]]
				pv, lv := partIdx[e.V], localIdx[e.V]
				if fin > releases[pv][lv] {
					releases[pv][lv] = fin
				}
				driver.BoundaryTransfers++
			}
		}
	}
	if !failed {
		if d, err := stitchRegions(g, lib, cons, cfg, parts, realNs, ds, driver); err == nil {
			return d, nil
		}
	}
	d, err := synthesizeMono(g, lib, cons, cfg)
	if d != nil {
		d.Stats.PartitionFallbacks++
	}
	return d, err
}

// addGhostInput repairs the arity of an induced part in place: a
// computation whose predecessors were all severed by the cut would fail
// cdfg.Validate (fan-in minimums), so one shared synthetic Input node —
// appended last, local ID = the part's real node count — feeds every such
// node. The ghost schedules like any input transfer inside the part and is
// filtered back out at stitch time.
func addGhostInput(sub *cdfg.Graph) {
	var needs []cdfg.NodeID
	for id := 0; id < sub.N(); id++ {
		v := cdfg.NodeID(id)
		if len(sub.Preds(v)) == 0 && sub.Node(v).Op.MinFanIn() > 0 {
			needs = append(needs, v)
		}
	}
	if len(needs) == 0 {
		return
	}
	name := "__cut_in"
	for i := 0; ; i++ {
		if _, ok := sub.Lookup(name); !ok {
			break
		}
		name = fmt.Sprintf("__cut_in%d", i)
	}
	ghost := sub.MustAddNode(name, cdfg.Input)
	for _, v := range needs {
		sub.MustAddEdge(ghost, v)
	}
}

// fastestDelays returns each node's delay under the fastest power-feasible
// module — the same initial assumption newState makes — for the whole-graph
// due derivation of the min-cut path.
func fastestDelays(g *cdfg.Graph, lib *library.Library, cons Constraints) ([]int, error) {
	delays := make([]int, g.N())
	for _, node := range g.Nodes() {
		best := -1
		for _, mi := range lib.Candidates(node.Op) {
			m := lib.Module(mi)
			if cons.PowerMax > 0 && m.Power > cons.PowerMax+1e-9 {
				continue
			}
			if best < 0 || m.Delay < lib.Module(best).Delay {
				best = mi
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("core: no module for %s fits P< = %.3g: %w", node.Op, cons.PowerMax, ErrInfeasible)
		}
		delays[node.ID] = lib.Module(best).Delay
	}
	return delays, nil
}

// fitsUnderBase reports whether the design's committed power (ghost nodes
// excluded) stays under the cap on top of the ambient base at every cycle.
func fitsUnderBase(base []float64, d *Design, realN int, powerMax float64) bool {
	prof := make([]float64, len(base))
	addRealPower(prof, d, realN)
	for c := range prof {
		if prof[c]+base[c] > powerMax+1e-9 {
			return false
		}
	}
	return true
}

// addRealPower accumulates the per-cycle power of the design's first realN
// nodes (the non-ghost ones) into dst.
func addRealPower(dst []float64, d *Design, realN int) {
	for li := 0; li < realN; li++ {
		s, dl, p := d.Schedule.Start[li], d.Schedule.Delay[li], d.Schedule.Power[li]
		for c := s; c < s+dl && c < len(dst); c++ {
			dst[c] += p
		}
	}
}

// stitchRegions merges per-part designs into one design over the parent
// graph: committed starts, modules and binding carry over (module indices
// agree — every part shares the parent library), functional units
// concatenate with re-based indices, and the commit logs append in part
// order. realNs, when non-nil, gives each part's real node count: nodes at
// or past it are min-cut ghost inputs, dropped from the stitched design
// along with any instance or decision that only served them (instance
// indices are remapped). driver carries the cut/boundary counters of the
// min-cut driver into the stitched stats.
//
// The merge pass then reconciles shared instances across region
// boundaries, the shift-merge pass re-times operations within precedence
// slack to share instances whose reservations collide (cross-region
// sharing), finish re-validates the joint schedule — this is where a joint
// power-cap violation of independently synthesized regions, or a severed
// dependency a part scheduled too early, surfaces as an error — and
// verify.Check independently re-derives every constraint on the stitched
// result.
func stitchRegions(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config, comps [][]cdfg.NodeID, realNs []int, regions []*Design, driver Stats) (*Design, error) {
	cfg.Partition = PartitionOff
	cfg.BaseProfile = nil
	cfg.Release = nil
	cfg.Due = nil
	st, err := newState(g, lib, cons, cfg)
	if err != nil {
		return nil, err
	}
	st.stats = st.stats.Add(driver)
	for ri, d := range regions {
		ids := comps[ri]
		rn := len(ids)
		if realNs != nil {
			rn = realNs[ri]
		}
		fuBase := len(st.fus)
		fuMap := make([]int, len(d.FUs))
		kept := 0
		for fi := range d.FUs {
			mi, ok := st.nameToMi[d.FUs[fi].Module.Name]
			if !ok {
				return nil, fmt.Errorf("core: stitch: region %d references unknown module %q", ri, d.FUs[fi].Module.Name)
			}
			var ops []cdfg.NodeID
			for _, lv := range d.FUs[fi].Ops {
				if int(lv) < rn {
					ops = append(ops, ids[lv])
				}
			}
			if len(ops) == 0 {
				// The instance only hosted ghost inputs; it does not exist
				// in the stitched design.
				fuMap[fi] = -1
				continue
			}
			fuMap[fi] = kept
			kept++
			st.fus = append(st.fus, instance{module: mi, ops: ops})
			st.fuAreaCommitted += lib.Module(mi).Area
		}
		for li, old := range ids {
			mi, ok := st.nameToMi[d.Schedule.Module[li]]
			if !ok {
				return nil, fmt.Errorf("core: stitch: region %d references unknown module %q", ri, d.Schedule.Module[li])
			}
			st.committed[old] = true
			st.start[old] = d.Schedule.Start[li]
			st.setModule(old, mi)
			st.fuOf[old] = fuBase + fuMap[d.FUOf[li]]
		}
		for _, dec := range d.Decisions {
			if int(dec.Node) >= rn {
				continue // ghost commit
			}
			st.decisions = append(st.decisions, Decision{
				Node: ids[dec.Node], Module: dec.Module, FU: fuBase + fuMap[dec.FU],
				NewFU: dec.NewFU, Start: dec.Start, Cost: dec.Cost,
			})
		}
		st.locked = st.locked || d.Locked
		st.stats = st.stats.Add(d.Stats)
		st.stats.Regions++
	}
	if st.eng != nil {
		st.eng.rebuild(st)
	}
	st.mergePass()
	for st.shiftMergePass() {
		st.mergePass()
	}
	d, err := st.finish()
	if err != nil {
		return nil, err
	}
	if err := verify.Check(VerifyInput(d)); err != nil {
		return nil, fmt.Errorf("core: stitched design rejected by the verifier: %w", err)
	}
	return d, nil
}

// stitchSequential is the power-coupled repair of the decomposed path:
// regions synthesize one after another, each seeing the per-cycle power
// the previous regions committed as an ambient BaseProfile, so every
// placement (scheduler stretches and slot probes alike) already accounts
// for the neighbors and the stitched union respects the cap by
// construction.
func stitchSequential(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config, comps [][]cdfg.NodeID, subs []*cdfg.Graph, rcfg Config) (*Design, error) {
	base := make([]float64, cons.Deadline)
	ds := make([]*Design, len(subs))
	for i, sub := range subs {
		rc := rcfg
		rc.BaseProfile = append([]float64(nil), base...)
		d, err := Synthesize(sub, lib, cons, rc)
		if err != nil {
			return nil, err
		}
		ds[i] = d
		for li := range d.Schedule.Start {
			s, dl, p := d.Schedule.Start[li], d.Schedule.Delay[li], d.Schedule.Power[li]
			for c := s; c < s+dl && c < len(base); c++ {
				base[c] += p
			}
		}
	}
	d, err := stitchRegions(g, lib, cons, cfg, comps, nil, ds, Stats{})
	if err != nil {
		return nil, err
	}
	d.Stats.RegionRepairs++
	return d, nil
}

// shiftMergePass is the cross-region instance-sharing pass of the stitch:
// instance pairs the plain merge pass cannot combine — same module with
// overlapping reservations, or different modules hosting the same
// operation class — are reconciled by re-timing (and, across modules,
// re-binding) operations within their precedence-local slack, and merged
// when every collision resolves and the exact datapath area shrinks. Runs
// after all operations are committed; returns whether anything merged.
func (st *state) shiftMergePass() bool {
	d0, err := st.finish()
	if err != nil {
		return false
	}
	cur := d0.Area()
	any := false
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(st.fus); i++ {
			for j := i + 1; j < len(st.fus); j++ {
				if st.fus[i].module == st.fus[j].module && !st.overlaps(i, j) {
					continue // the plain merge pass handles these
				}
				if a, ok := st.tryShiftMerge(i, j, cur); ok {
					cur = a
					st.stats.SharedCrossRegion++
					changed, any = true, true
					j-- // instance j was removed; re-examine this index
				}
			}
		}
	}
	return any
}

// canHost reports whether module mi implements the operation class of
// every listed node.
func (st *state) canHost(mi int, ops []cdfg.NodeID) bool {
	for _, x := range ops {
		ok := false
		for _, c := range st.lib.Candidates(st.g.Node(x).Op) {
			if c == mi {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// tryShiftMerge re-times operations so instances i and j can share one
// timeline, then merges j into i when the exact area strictly improves.
// Same-module pairs attempt three progressively more aggressive
// re-timings: move j's operations around i's fixed reservations, move i's
// around j's, and finally re-pack the union from an empty timeline.
// Different-module pairs additionally re-bind one side's operations onto
// the other's module (both directions tried) before re-timing. The first
// attempt whose merged design passes the full finish validation and
// shrinks the exact area wins; every rejected attempt is rolled back
// completely. Returns the new area and whether a merge was kept.
func (st *state) tryShiftMerge(i, j int, cur float64) (float64, bool) {
	iOps := append([]cdfg.NodeID(nil), st.fus[i].ops...)
	jOps := append([]cdfg.NodeID(nil), st.fus[j].ops...)
	union := append(append([]cdfg.NodeID(nil), iOps...), jOps...)
	iResv := append([]interval(nil), st.reservationsInto(i, &st.busyA)...)
	jResv := append([]interval(nil), st.reservationsInto(j, &st.busyA)...)
	mi, mj := st.fus[i].module, st.fus[j].module
	type attempt struct {
		rebind []cdfg.NodeID // ops re-bound to the target module first
		target int           // merged instance's module
		moving []cdfg.NodeID
		fixed  []interval
		ripple bool // ripplePack instead of packShift
	}
	var attempts []attempt
	if mi == mj {
		attempts = []attempt{
			{nil, mi, jOps, iResv, false},
			{nil, mi, iOps, jResv, false},
			{nil, mi, union, nil, false},
			{nil, mi, union, nil, true},
		}
	} else {
		if st.canHost(mi, jOps) {
			attempts = append(attempts,
				attempt{jOps, mi, jOps, iResv, false},
				attempt{jOps, mi, union, nil, false},
				attempt{jOps, mi, union, nil, true})
		}
		if st.canHost(mj, iOps) {
			attempts = append(attempts,
				attempt{iOps, mj, iOps, jResv, false},
				attempt{iOps, mj, union, nil, false},
				attempt{iOps, mj, union, nil, true})
		}
	}
	// Committed per-cycle power at entry, copied once per call: straight
	// from the engine's incrementally maintained profile when it is live,
	// rebuilt from the committed starts otherwise. Each attempt below works
	// on its own copy, patched for the ops it re-binds (a module change the
	// engine has not seen), so the re-timings never pay the full-profile
	// rebuild that dominated the stitch at n=1000.
	var baseProf []float64
	if st.cons.PowerMax > 0 {
		if st.eng != nil {
			baseProf = append([]float64(nil), st.eng.profile...)
		} else {
			baseProf = append([]float64(nil), st.committedProfileScratch(st.cons.Deadline)...)
		}
	}
	for _, at := range attempts {
		var prof []float64
		if baseProf != nil {
			prof = append([]float64(nil), baseProf...)
		}
		oldMods := make([]int, len(at.rebind))
		for k, x := range at.rebind {
			oldMods[k] = st.moduleOf[x]
			if prof != nil {
				for c := st.start[x]; c < st.start[x]+st.delays[x] && c < len(prof); c++ {
					prof[c] -= st.powers[x]
				}
			}
			st.setModule(x, at.target)
			if prof != nil {
				for c := st.start[x]; c < st.start[x]+st.delays[x] && c < len(prof); c++ {
					prof[c] += st.powers[x]
				}
			}
		}
		unbind := func() {
			for k, x := range at.rebind {
				st.setModule(x, oldMods[k])
			}
		}
		var revert func()
		var ok bool
		if at.ripple {
			revert, ok = st.ripplePack(i, j, prof)
		} else {
			revert, ok = st.packShift(at.moving, at.fixed, prof)
		}
		if !ok {
			unbind()
			continue
		}
		saved := st.snapshotFUs()
		st.fus[i].module = at.target
		st.mergeFUs(i, j)
		if st.eng != nil {
			st.eng.rebuild(st)
		}
		if d2, err := st.finish(); err == nil && d2.Area() < cur-1e-9 {
			return d2.Area(), true
		}
		st.restoreFUs(saved)
		revert()
		unbind()
		if st.eng != nil {
			st.eng.rebuild(st)
		}
	}
	return cur, false
}

// packShift re-times the moving operations to the earliest
// collision-free, power-feasible starts inside their precedence-local
// windows, treating fixed as immovable reservations of the target
// instance. Operations are processed in committed start order — committed
// schedules satisfy precedence, so the order is precedence-consistent
// even across two instances — and moves apply eagerly so later operations
// see updated predecessor finishes. prof is the caller's private copy of
// the committed per-cycle power (nil without a cap); it is consumed — the
// bookkeeping mutates it freely. On success the moves are left applied
// and the returned closure undoes them; on failure everything is already
// rolled back.
func (st *state) packShift(moving []cdfg.NodeID, fixed []interval, prof []float64) (func(), bool) {
	T := st.cons.Deadline
	ops := append([]cdfg.NodeID(nil), moving...)
	sort.Slice(ops, func(a, b int) bool {
		if st.start[ops[a]] != st.start[ops[b]] {
			return st.start[ops[a]] < st.start[ops[b]]
		}
		return ops[a] < ops[b]
	})
	inMoving := make(map[cdfg.NodeID]bool, len(ops))
	for _, x := range ops {
		inMoving[x] = true
	}
	busy := append([]interval(nil), fixed...)
	type move struct {
		id  cdfg.NodeID
		old int
	}
	undo := make([]move, 0, len(ops))
	revert := func() {
		for k := len(undo) - 1; k >= 0; k-- {
			st.start[undo[k].id] = undo[k].old
		}
	}
	for _, x := range ops {
		d, p := st.delays[x], st.powers[x]
		lo := 0
		for _, pr := range st.g.Preds(x) {
			if e := st.start[pr] + st.delays[pr]; e > lo {
				lo = e
			}
		}
		hi := T
		for _, sc := range st.g.Succs(x) {
			// Successors that move too are re-placed after x (the start
			// order respects precedence), with a lower bound that already
			// covers this edge — they do not pin x's window.
			if inMoving[sc] {
				continue
			}
			if st.start[sc] < hi {
				hi = st.start[sc]
			}
		}
		if prof != nil {
			for c := st.start[x]; c < st.start[x]+d && c < len(prof); c++ {
				prof[c] -= p
			}
		}
		t, found := lo, false
	search:
		for t+d <= hi {
			for _, b := range busy {
				if b.s < t+d && t < b.e {
					t = b.e
					continue search
				}
			}
			if prof != nil {
				for c := t; c < t+d; c++ {
					if c >= len(prof) || prof[c]+p+st.baseAt(c) > st.cons.PowerMax+1e-9 {
						t = c + 1
						continue search
					}
				}
			}
			found = true
			break
		}
		if !found {
			revert()
			return nil, false
		}
		undo = append(undo, move{x, st.start[x]})
		st.start[x] = t
		busy = append(busy, interval{t, t + d})
		if prof != nil {
			for c := t; c < t+d && c < len(prof); c++ {
				prof[c] += p
			}
		}
	}
	return revert, true
}

// ripplePack is the most aggressive re-timing of the shift merge: the
// union of instances i's and j's operations is re-packed onto one
// timeline ignoring successor pins entirely, and the resulting precedence
// violations are repaired by a single right-shift sweep over the whole
// graph in topological order — each violated node moves to the earliest
// collision-free, power-feasible start at or after its predecessors'
// updated finishes, on its own instance's live reservations. Right-only
// moves in topological order restore precedence globally without
// revisiting: when a node's turn comes, its predecessors are final.
// Zero-slack neighborhoods that packShift cannot touch (every region ends
// up deadline-tight after its own area descent) become mergeable at the
// price of re-timing bystander operations; the full finish validation
// still gates acceptance. Same contract as packShift: prof is the
// caller's private, freely mutated copy of the committed power profile
// (nil without a cap); on success the moves are applied and the closure
// undoes them, on failure everything is already rolled back.
func (st *state) ripplePack(i, j int, prof []float64) (func(), bool) {
	T := st.cons.Deadline
	if st.topo == nil {
		topo, err := st.g.TopoOrder()
		if err != nil {
			return nil, false
		}
		st.topo = topo
	}
	moving := append(append([]cdfg.NodeID(nil), st.fus[i].ops...), st.fus[j].ops...)
	sort.Slice(moving, func(a, b int) bool {
		if st.start[moving[a]] != st.start[moving[b]] {
			return st.start[moving[a]] < st.start[moving[b]]
		}
		return moving[a] < moving[b]
	})
	type move struct {
		id  cdfg.NodeID
		old int
	}
	var undo []move
	revert := func() {
		for k := len(undo) - 1; k >= 0; k-- {
			st.start[undo[k].id] = undo[k].old
		}
	}
	// place moves x to the earliest busy- and power-free start in
	// [lo, T-delay], maintaining the profile and the undo log.
	place := func(x cdfg.NodeID, lo int, busy []interval) bool {
		d, p := st.delays[x], st.powers[x]
		if prof != nil {
			for c := st.start[x]; c < st.start[x]+d && c < len(prof); c++ {
				prof[c] -= p
			}
		}
		t, found := lo, false
	search:
		for t+d <= T {
			for _, b := range busy {
				if b.s < t+d && t < b.e {
					t = b.e
					continue search
				}
			}
			if prof != nil {
				for c := t; c < t+d; c++ {
					if c >= len(prof) || prof[c]+p+st.baseAt(c) > st.cons.PowerMax+1e-9 {
						t = c + 1
						continue search
					}
				}
			}
			found = true
			break
		}
		if !found {
			return false
		}
		undo = append(undo, move{x, st.start[x]})
		st.start[x] = t
		if prof != nil {
			for c := t; c < t+d && c < len(prof); c++ {
				prof[c] += p
			}
		}
		return true
	}
	// Phase 1: re-pack the union, earliest-fit after live predecessor
	// finishes, successors unconstrained (the sweep repairs them).
	busy := make([]interval, 0, len(moving))
	for _, x := range moving {
		lo := 0
		for _, pr := range st.g.Preds(x) {
			if e := st.start[pr] + st.delays[pr]; e > lo {
				lo = e
			}
		}
		if !place(x, lo, busy) {
			revert()
			return nil, false
		}
		busy = append(busy, interval{st.start[x], st.start[x] + st.delays[x]})
	}
	// Phase 2: right-shift repair sweep. Only precedence violations move;
	// every move lands on a free slot of the node's own instance (i and j
	// count as one), so instance exclusivity is preserved throughout.
	for _, v := range st.topo {
		lo := 0
		for _, pr := range st.g.Preds(v) {
			if e := st.start[pr] + st.delays[pr]; e > lo {
				lo = e
			}
		}
		if st.start[v] >= lo {
			continue
		}
		var group []cdfg.NodeID
		if f := st.fuOf[v]; f == i || f == j {
			group = moving
		} else {
			group = st.fus[f].ops
		}
		resv := make([]interval, 0, len(group))
		for _, o := range group {
			if o == v {
				continue
			}
			resv = append(resv, interval{st.start[o], st.start[o] + st.delays[o]})
		}
		if !place(v, lo, resv) {
			revert()
			return nil, false
		}
	}
	return revert, true
}
