package core

import (
	"context"
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/runner"
	"pchls/internal/verify"
)

// synthesizePartitioned is the hierarchical-decomposition entry point for
// graphs that usePartition selected. The weakly-connected components of g
// synthesize as independent sub-problems on the worker pool (regions share
// no data dependency, so each region's schedule is valid in isolation),
// and stitchRegions merges the results back over the parent graph — the
// shared-instance reconciliation pass then merges functional units across
// region boundaries wherever that shrinks the exact area.
//
// Regions synthesized in parallel each respect the power cap alone but
// may exceed it jointly; the stitch validation catches that, and the
// sequential repair re-synthesizes the regions in order, threading the
// power profile committed so far through Config.BaseProfile so the union
// respects P< by construction. If that also fails, the graph synthesizes
// monolithically (counted in Stats.PartitionFallbacks).
//
// Every stitched result is re-checked by the engine-independent
// verify.Check before being returned. The function is deterministic for
// every worker count: runner.Map preserves region order, and stitching
// walks regions in that order.
func synthesizePartitioned(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	comps := g.Components()
	if len(comps) < 2 {
		return synthesizeMono(g, lib, cons, cfg)
	}
	subs := make([]*cdfg.Graph, len(comps))
	for i, ids := range comps {
		sub, err := g.Subgraph(fmt.Sprintf("%s#%d", g.Name, i), ids)
		if err != nil {
			return nil, fmt.Errorf("core: internal error extracting region %d: %w", i, err)
		}
		subs[i] = sub
	}
	// Region runs are leaves: no nested decomposition, no nested worker
	// fan-out, no incumbent cut (the bound is about whole designs), no
	// inherited ambient profile.
	rcfg := cfg
	rcfg.Partition = PartitionOff
	rcfg.Workers = 1
	rcfg.AreaBound = 0
	rcfg.BaseProfile = nil

	regions, err := runner.Map(context.Background(), len(subs), runner.Config{Workers: cfg.Workers},
		func(_ context.Context, i int) (synthResult, error) {
			d, err := Synthesize(subs[i], lib, cons, rcfg)
			return synthResult{d, err}, nil
		})
	if err == nil {
		ds := make([]*Design, len(regions))
		ok := true
		for i, r := range regions {
			if r.err != nil {
				ok = false
				break
			}
			ds[i] = r.d
		}
		if ok {
			if d, err := stitchRegions(g, lib, cons, cfg, comps, ds); err == nil {
				return d, nil
			}
		}
	}
	if cons.PowerMax > 0 {
		if d, err := stitchSequential(g, lib, cons, cfg, comps, subs, rcfg); err == nil {
			return d, nil
		}
	}
	d, err := synthesizeMono(g, lib, cons, cfg)
	if d != nil {
		d.Stats.PartitionFallbacks++
	}
	return d, err
}

// stitchRegions merges per-component designs into one design over the
// parent graph: committed starts, modules and binding carry over (module
// indices agree — every region shares the parent library), functional
// units concatenate with re-based indices, and the commit logs append in
// region order. The merge pass then reconciles shared instances across
// region boundaries, finish re-validates the joint schedule (this is
// where a joint power-cap violation of independently synthesized regions
// surfaces as an error), and verify.Check independently re-derives every
// constraint on the stitched result.
func stitchRegions(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config, comps [][]cdfg.NodeID, regions []*Design) (*Design, error) {
	cfg.Partition = PartitionOff
	cfg.BaseProfile = nil
	st, err := newState(g, lib, cons, cfg)
	if err != nil {
		return nil, err
	}
	for ri, d := range regions {
		ids := comps[ri]
		fuBase := len(st.fus)
		for fi := range d.FUs {
			mi, ok := st.nameToMi[d.FUs[fi].Module.Name]
			if !ok {
				return nil, fmt.Errorf("core: stitch: region %d references unknown module %q", ri, d.FUs[fi].Module.Name)
			}
			ops := make([]cdfg.NodeID, len(d.FUs[fi].Ops))
			for k, lv := range d.FUs[fi].Ops {
				ops[k] = ids[lv]
			}
			st.fus = append(st.fus, instance{module: mi, ops: ops})
			st.fuAreaCommitted += lib.Module(mi).Area
		}
		for li, old := range ids {
			mi, ok := st.nameToMi[d.Schedule.Module[li]]
			if !ok {
				return nil, fmt.Errorf("core: stitch: region %d references unknown module %q", ri, d.Schedule.Module[li])
			}
			st.committed[old] = true
			st.start[old] = d.Schedule.Start[li]
			st.setModule(old, mi)
			st.fuOf[old] = fuBase + d.FUOf[li]
		}
		for _, dec := range d.Decisions {
			st.decisions = append(st.decisions, Decision{
				Node: ids[dec.Node], Module: dec.Module, FU: fuBase + dec.FU,
				NewFU: dec.NewFU, Start: dec.Start, Cost: dec.Cost,
			})
		}
		st.locked = st.locked || d.Locked
		st.stats = st.stats.Add(d.Stats)
		st.stats.Regions++
	}
	if st.eng != nil {
		st.eng.rebuild(st)
	}
	st.mergePass()
	d, err := st.finish()
	if err != nil {
		return nil, err
	}
	if err := verify.Check(VerifyInput(d)); err != nil {
		return nil, fmt.Errorf("core: stitched design rejected by the verifier: %w", err)
	}
	return d, nil
}

// stitchSequential is the power-coupled repair of the decomposed path:
// regions synthesize one after another, each seeing the per-cycle power
// the previous regions committed as an ambient BaseProfile, so every
// placement (scheduler stretches and slot probes alike) already accounts
// for the neighbors and the stitched union respects the cap by
// construction.
func stitchSequential(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config, comps [][]cdfg.NodeID, subs []*cdfg.Graph, rcfg Config) (*Design, error) {
	base := make([]float64, cons.Deadline)
	ds := make([]*Design, len(subs))
	for i, sub := range subs {
		rc := rcfg
		rc.BaseProfile = append([]float64(nil), base...)
		d, err := Synthesize(sub, lib, cons, rc)
		if err != nil {
			return nil, err
		}
		ds[i] = d
		for li := range d.Schedule.Start {
			s, dl, p := d.Schedule.Start[li], d.Schedule.Delay[li], d.Schedule.Power[li]
			for c := s; c < s+dl && c < len(base); c++ {
				base[c] += p
			}
		}
	}
	d, err := stitchRegions(g, lib, cons, cfg, comps, ds)
	if err != nil {
		return nil, err
	}
	d.Stats.RegionRepairs++
	return d, nil
}
