package core

import (
	"errors"
	"math/rand"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// tinyGraph builds a small random graph with IO transfers.
func tinyGraph(seed int64, nodes int) *cdfg.Graph {
	return bench.Random(rand.New(rand.NewSource(seed)), bench.RandomConfig{Nodes: nodes, MaxWidth: 2})
}

func TestExactSynthesizeChain(t *testing.T) {
	// i -> a1(+) -> a2(+) -> o at T=6: one adder suffices (sequential),
	// plus one input and one output unit: 87 + 16 + 16 = 119.
	g := cdfg.New("t")
	i := g.MustAddNode("i", cdfg.Input)
	a1 := g.MustAddNode("a1", cdfg.Add)
	a2 := g.MustAddNode("a2", cdfg.Add)
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i, a1)
	g.MustAddEdge(a1, a2)
	g.MustAddEdge(a2, o)
	lib := library.Table1()
	res, err := ExactSynthesize(g, lib, Constraints{Deadline: 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FUArea != 119 {
		t.Fatalf("exact FU area = %g, want 119", res.FUArea)
	}
	if err := res.Validate(g, lib, Constraints{Deadline: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestExactSynthesizePrefersSerialMultWhenTimeAllows(t *testing.T) {
	// One multiply with plenty of slack: the serial multiplier (103) beats
	// the parallel one (339).
	g := cdfg.New("t")
	i := g.MustAddNode("i", cdfg.Input)
	m := g.MustAddNode("m", cdfg.Mul)
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i, m)
	g.MustAddEdge(m, o)
	lib := library.Table1()
	res, err := ExactSynthesize(g, lib, Constraints{Deadline: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FUArea != 103+16+16 {
		t.Fatalf("exact FU area = %g, want 135", res.FUArea)
	}
	// At T=4 only the parallel multiplier fits.
	res, err = ExactSynthesize(g, lib, Constraints{Deadline: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.FUArea != 339+16+16 {
		t.Fatalf("tight-T exact FU area = %g, want 371", res.FUArea)
	}
}

func TestExactSynthesizeInfeasible(t *testing.T) {
	g := cdfg.New("t")
	i := g.MustAddNode("i", cdfg.Input)
	m := g.MustAddNode("m", cdfg.Mul)
	g.MustAddEdge(i, m)
	if _, err := ExactSynthesize(g, library.Table1(), Constraints{Deadline: 2}, 0); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if _, err := ExactSynthesize(g, library.Table1(), Constraints{Deadline: 0}, 0); err == nil {
		t.Fatal("accepted zero deadline")
	}
}

func TestExactSynthesizeBudget(t *testing.T) {
	g := bench.Cosine() // far too large for an exact search
	_, err := ExactSynthesize(g, library.Table1(), Constraints{Deadline: 12}, 10000)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestGreedyOptimalityGapOnTinyInstances measures the greedy against the
// exact optimum: the greedy must never beat it (or the oracle is broken),
// and on these instances it should stay within 40 % FU area.
func TestGreedyOptimalityGapOnTinyInstances(t *testing.T) {
	lib := library.Table1()
	checked := 0
	for seed := int64(0); seed < 12; seed++ {
		g := tinyGraph(seed, 4)
		cp, _ := g.CriticalPath(func(n cdfg.Node) int {
			if n.Op == cdfg.Mul {
				return 2
			}
			return 1
		})
		cons := Constraints{Deadline: cp + 3}
		exact, err := ExactSynthesize(g, lib, cons, 2_000_000)
		if errors.Is(err, ErrTooLarge) {
			continue
		}
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			t.Fatal(err)
		}
		if err := exact.Validate(g, lib, cons); err != nil {
			t.Fatalf("seed %d: exact result invalid: %v", seed, err)
		}
		greedy, err := SynthesizeBest(g, lib, cons, Config{})
		if err != nil {
			t.Fatalf("seed %d: greedy failed where exact succeeded: %v", seed, err)
		}
		if greedy.Datapath.FUArea < exact.FUArea-1e-9 {
			t.Fatalf("seed %d: greedy FU area %.1f beats the exact optimum %.1f",
				seed, greedy.Datapath.FUArea, exact.FUArea)
		}
		if greedy.Datapath.FUArea > exact.FUArea*1.4+1e-9 {
			t.Errorf("seed %d: greedy FU area %.1f vs optimum %.1f (gap > 40%%)",
				seed, greedy.Datapath.FUArea, exact.FUArea)
		}
		checked++
	}
	if checked < 6 {
		t.Fatalf("only %d instances checked; oracle budget too small", checked)
	}
}
