package core

import (
	"pchls/internal/cdfg"
	"pchls/internal/sched"
)

// windowMap collects candidate windows keyed by node then module.
type windowMap = map[cdfg.NodeID]map[int]sched.Window

func addWindow(out windowMap, v cdfg.NodeID, mi int, w sched.Window) {
	if out[v] == nil {
		out[v] = make(map[int]sched.Window)
	}
	out[v][mi] = w
}

// candidateWindows computes, once per iteration, the feasible window of
// every (uncommitted op, module) candidate. The assumed-module windows all
// come from one pasap/palap pair; only overrides need extra runs. The
// incremental engine serves clean nodes from its cache and re-derives only
// the dirty subset; the legacy path (DisableIncremental) recomputes
// everything. Both produce identical maps — the incremental derivation is
// audited against a full pasap probe and falls back on any disagreement.
func (st *state) candidateWindows() windowMap {
	if st.locked {
		out := make(windowMap)
		for i, c := range st.committed {
			if !c {
				v := cdfg.NodeID(i)
				addWindow(out, v, st.moduleOf[v], sched.Window{Early: st.start[v], Late: st.start[v]})
			}
		}
		return out
	}
	if st.eng != nil {
		if st.eng.warm {
			if out, ok := st.reusedWindows(); ok {
				return out
			}
			// The incremental derivation was rejected; rebuild the cache
			// from scratch.
			st.eng.invalidateWindows()
			st.stats.FullInvalidations++
		}
		return st.refreshedWindows()
	}
	return st.scratchWindows()
}

// scratchWindows is the legacy recompute-everything derivation.
func (st *state) scratchWindows() windowMap {
	out := make(windowMap)
	// Base run under the assumed modules.
	opts := st.schedOpts()
	base := st.binding(cdfg.None, 0)
	st.stats.SchedulerRuns++
	early, err1 := sched.PASAP(st.g, base, opts)
	var late *sched.Schedule
	var err2 error
	if err1 == nil && early.Length() <= st.cons.Deadline {
		st.stats.SchedulerRuns++
		late, err2 = sched.PALAP(st.g, base, st.cons.Deadline, opts)
	}
	baseOK := err1 == nil && early.Length() <= st.cons.Deadline && err2 == nil

	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		for _, mi := range st.lib.Candidates(st.g.Node(v).Op) {
			if mi == st.moduleOf[v] && baseOK {
				w := sched.Window{Early: early.Start[v], Late: late.Start[v]}
				if w.Width() >= 1 {
					addWindow(out, v, mi, w)
				}
				continue
			}
			if w, ok := st.windowFor(v, mi); ok {
				addWindow(out, v, mi, w)
			}
		}
	}
	return out
}

// refreshedWindows is the engine's cold-path derivation: the same work as
// scratchWindows — except that the post-commit probe, when present, is
// reused as the base Early schedule, saving one full run — with every
// result (including infeasible candidates) stored in the cache. The cache
// becomes warm only when the base pair succeeded, since the reuse path
// pins clean nodes to base windows.
func (st *state) refreshedWindows() windowMap {
	eng := st.eng
	out := make(windowMap)
	opts := st.schedOpts()
	base := st.binding(cdfg.None, 0)
	early, err1 := eng.probe, error(nil)
	if early == nil {
		st.stats.SchedulerRuns++
		early, err1 = sched.PASAP(st.g, base, opts)
	}
	var late *sched.Schedule
	var err2 error
	if err1 == nil && early.Length() <= st.cons.Deadline {
		st.stats.SchedulerRuns++
		late, err2 = sched.PALAP(st.g, base, st.cons.Deadline, opts)
	}
	baseOK := err1 == nil && early.Length() <= st.cons.Deadline && err2 == nil
	if baseOK {
		for i := range eng.baseWin {
			eng.baseWin[i] = sched.Window{Early: early.Start[i], Late: late.Start[i]}
		}
		eng.probe = early
		// Snapshot the module assumptions the cached runs are made under;
		// entry validity across a later commitment requires the committed
		// module to match this snapshot.
		eng.assumed = append(eng.assumed[:0], st.moduleOf...)
	}

	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		for _, mi := range st.lib.Candidates(st.g.Node(v).Op) {
			if mi == st.moduleOf[v] && baseOK {
				w := eng.baseWin[v]
				if w.Width() >= 1 {
					addWindow(out, v, mi, w)
				}
				continue
			}
			st.stats.WindowCacheMisses++
			ent := st.computeEntry(v, mi)
			if baseOK {
				if eng.over[v] == nil {
					eng.over[v] = make(map[int]winEntry)
				}
				eng.over[v][mi] = ent
			}
			if ent.ok {
				addWindow(out, v, mi, ent.w)
			}
		}
	}
	eng.warm = baseOK
	eng.baseValid = false
	for i := range eng.dirty {
		eng.dirty[i] = false
	}
	return out
}

// reusedWindows is the engine's warm path. When the last commitment
// provably left the base pair unchanged (baseValid), the base windows
// are reused outright with no scheduler run; otherwise they are
// re-derived by the dirty-subset schedulers (clean nodes replayed, dirty
// nodes re-placed) and audited against the exact post-commit pasap
// probe. Override candidates are served from the cache — every surviving
// entry was proven valid by the per-commit filter in noteProbe — and
// only dropped entries are recomputed. ok=false means the pinned
// derivation was rejected — stale pin or audit mismatch — and the caller
// must fall back to refreshedWindows.
func (st *state) reusedWindows() (windowMap, bool) {
	eng := st.eng
	ws := eng.baseWin
	if !eng.baseValid {
		opts := st.schedOpts()
		base := st.binding(cdfg.None, 0)
		st.stats.IncrementalRuns += 2
		var err error
		ws, err = sched.WindowsDirty(st.g, base, st.cons.Deadline, opts, eng.baseWin, eng.dirty)
		if err != nil {
			st.stats.Fallbacks++
			return nil, false
		}
		// Audit: the incremental Early side must agree with the full pasap
		// probe on every node; any disagreement means the dirty set was
		// too small.
		for i := range ws {
			if ws[i].Early != eng.probe.Start[i] {
				st.stats.Fallbacks++
				return nil, false
			}
		}
	}
	out := make(windowMap)
	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		for _, mi := range st.lib.Candidates(st.g.Node(v).Op) {
			if mi == st.moduleOf[v] {
				w := ws[v]
				if w.Width() >= 1 {
					addWindow(out, v, mi, w)
				}
				continue
			}
			if ent, ok := eng.over[v][mi]; ok {
				st.stats.WindowCacheHits++
				if ent.ok {
					addWindow(out, v, mi, ent.w)
				}
				continue
			}
			st.stats.WindowCacheMisses++
			ent := st.computeEntry(v, mi)
			if eng.over[v] == nil {
				eng.over[v] = make(map[int]winEntry)
			}
			eng.over[v][mi] = ent
			if ent.ok {
				addWindow(out, v, mi, ent.w)
			}
		}
	}
	eng.baseWin = ws
	for i := range eng.dirty {
		eng.dirty[i] = false
	}
	return out, true
}

// muxEstimate approximates the interconnect cost of binding v onto
// instance f: one new multiplexer input for every operand port of v whose
// producer differs from the producers already feeding that port of f, and
// one for the result port when f already has operations (its output fans
// to a new destination register). This mirrors bind.Build's mux model
// using producer nodes as register proxies (registers do not exist yet at
// decision time).
func (st *state) muxEstimate(v cdfg.NodeID, f int) float64 {
	fu := st.fus[f]
	if len(fu.ops) == 0 {
		return 0
	}
	cm := st.cfg.cost()
	inputs := 0
	preds := st.g.Preds(v)
	for port, p := range preds {
		seen := false
		fresh := false
		for _, op := range fu.ops {
			ep := st.g.Preds(op)
			if port < len(ep) {
				seen = true
				if ep[port] != p {
					fresh = true
				}
			}
		}
		if seen && fresh {
			inputs++
		}
	}
	// Result-side fan-out: sharing adds one register-write source.
	inputs++
	return float64(inputs) * cm.MuxInputArea
}

// amortizedArea estimates the effective cost of allocating a new instance
// of module mi: its area divided by the number of operations it could
// plausibly end up serving — the uncommitted operations of matching type,
// capped by the number of executions that fit in the deadline.
func (st *state) amortizedArea(mi int) float64 {
	m := st.lib.Module(mi)
	potential := 0
	for i, c := range st.committed {
		if !c && m.Implements(st.g.Node(cdfg.NodeID(i)).Op) {
			potential++
		}
	}
	slots := st.cons.Deadline / m.Delay
	if slots < 1 {
		slots = 1
	}
	share := potential
	if slots < share {
		share = slots
	}
	if share < 1 {
		share = 1
	}
	return m.Area / float64(share)
}

type interval struct{ s, e int }

// reservations returns the busy intervals of instance f: the engine's
// incrementally maintained list, or (legacy path) re-derived from the
// instance's operations.
func (st *state) reservations(f int) []interval {
	if st.eng != nil {
		return st.eng.resv[f]
	}
	var busy []interval
	for _, op := range st.fus[f].ops {
		m := st.lib.Module(st.moduleOf[op])
		busy = append(busy, interval{st.start[op], st.start[op] + m.Delay})
	}
	return busy
}

// freeSlot returns the earliest start t within w at which none of the busy
// intervals overlap an execution of d cycles and the committed power
// profile leaves room for the module's power, or ok=false.
func (st *state) freeSlot(busy []interval, w sched.Window, d int, power float64) (int, bool) {
	st.stats.ProfileProbes++
	horizon := st.cons.Deadline
	var prof []float64
	if st.cons.PowerMax > 0 {
		if st.eng != nil {
			prof = st.eng.profile
		} else {
			st.stats.ProfileRebuilds++
			prof = st.committedProfile(horizon)
		}
	}
	for t := w.Early; t <= w.Late; t++ {
		if t+d > horizon {
			break
		}
		ok := true
		for _, b := range busy {
			if t < b.e && b.s < t+d {
				ok = false
				break
			}
		}
		if ok && prof != nil {
			for c := t; c < t+d; c++ {
				if prof[c]+power > st.cons.PowerMax+1e-9 {
					ok = false
					break
				}
			}
		}
		if ok {
			return t, true
		}
	}
	return 0, false
}

// bestDecision evaluates the current compatibility structure and returns
// the cheapest admissible decision: bind an uncommitted operation onto an
// existing instance, or allocate a new instance for it. Ties break toward
// the most schedule-constrained operation (smallest window), then the
// smallest node ID, then the smallest module area — all deterministic.
func (st *state) bestDecision() (Decision, bool) {
	windows := st.candidateWindows()
	best := Decision{FU: -1}
	bestWidth, bestWeight := 0, 0.0
	found := false

	// weight ranks operations by how expensive their resource class is
	// (the cheapest module that could implement them): multiplications
	// before ALU operations before transfers. Binding the expensive
	// resources first keeps their sharing opportunities intact; cheap
	// transfers adapt around them.
	weight := func(d Decision) float64 {
		m, err := st.lib.Smallest(st.g.Node(d.Node).Op)
		if err != nil {
			return 0
		}
		return m.Area
	}

	consider := func(d Decision, width int) {
		w := weight(d)
		if !found {
			best, bestWidth, bestWeight, found = d, width, w, true
			return
		}
		if w != bestWeight {
			if w > bestWeight {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if d.Cost != best.Cost {
			if d.Cost < best.Cost {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if width != bestWidth {
			if width < bestWidth {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if d.Node != best.Node {
			if d.Node < best.Node {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if st.lib.Module(st.moduleIndexOf(d)).Area < st.lib.Module(st.moduleIndexOf(best)).Area {
			best, bestWidth, bestWeight = d, width, w
		}
	}

	for i := 0; i < st.g.N(); i++ {
		v := cdfg.NodeID(i)
		if st.committed[v] {
			continue
		}
		// Best new-instance module for v, chosen by amortized area so that
		// a slightly larger multi-function unit (the ALU) beats several
		// single-function units — the effect the clique formulation
		// captures globally. Ranked against other decisions at FULL area,
		// so sharing an existing instance always wins when feasible.
		newMi, newStart, newWidth := -1, 0, 0
		var newAmort float64
		for _, mi := range st.lib.Candidates(st.g.Node(v).Op) {
			w, ok := windows[v][mi]
			if !ok {
				continue
			}
			m := st.lib.Module(mi)
			// Share an existing instance of the same module.
			for f := range st.fus {
				if st.fus[f].module != mi {
					continue
				}
				if t, ok := st.freeSlot(st.reservations(f), w, m.Delay, m.Power); ok {
					consider(Decision{
						Node: v, Module: m.Name, FU: f, NewFU: false,
						Start: t, Cost: st.muxEstimate(v, f),
					}, w.Width())
				}
			}
			if t, ok := st.freeSlot(nil, w, m.Delay, m.Power); ok {
				a := st.amortizedArea(mi)
				if newMi < 0 || a < newAmort {
					newMi, newStart, newWidth, newAmort = mi, t, w.Width(), a
				}
			}
		}
		if newMi >= 0 {
			m := st.lib.Module(newMi)
			consider(Decision{
				Node: v, Module: m.Name, FU: len(st.fus), NewFU: true,
				Start: newStart, Cost: m.Area,
			}, newWidth)
		}
	}
	return best, found
}
