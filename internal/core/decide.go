package core

import (
	"pchls/internal/cdfg"
	"pchls/internal/sched"
)

// candidateWindows computes, once per iteration, the feasible window of
// every (uncommitted op, module) candidate. The assumed-module windows all
// come from one pasap/palap pair; only overrides need extra runs.
func (st *state) candidateWindows() map[cdfg.NodeID]map[int]sched.Window {
	out := make(map[cdfg.NodeID]map[int]sched.Window)
	addWindow := func(v cdfg.NodeID, mi int, w sched.Window) {
		if out[v] == nil {
			out[v] = make(map[int]sched.Window)
		}
		out[v][mi] = w
	}
	if st.locked {
		for i, c := range st.committed {
			if !c {
				v := cdfg.NodeID(i)
				addWindow(v, st.moduleOf[v], sched.Window{Early: st.start[v], Late: st.start[v]})
			}
		}
		return out
	}
	// Base run under the assumed modules.
	opts := st.schedOpts()
	base := st.binding(cdfg.None, 0)
	early, err1 := sched.PASAP(st.g, base, opts)
	var late *sched.Schedule
	var err2 error
	if err1 == nil && early.Length() <= st.cons.Deadline {
		late, err2 = sched.PALAP(st.g, base, st.cons.Deadline, opts)
	}
	baseOK := err1 == nil && early.Length() <= st.cons.Deadline && err2 == nil

	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		for _, mi := range st.lib.Candidates(st.g.Node(v).Op) {
			if mi == st.moduleOf[v] && baseOK {
				w := sched.Window{Early: early.Start[v], Late: late.Start[v]}
				if w.Width() >= 1 {
					addWindow(v, mi, w)
				}
				continue
			}
			if w, ok := st.windowFor(v, mi); ok {
				addWindow(v, mi, w)
			}
		}
	}
	return out
}

// muxEstimate approximates the interconnect cost of binding v onto
// instance f: one new multiplexer input for every operand port of v whose
// producer differs from the producers already feeding that port of f, and
// one for the result port when f already has operations (its output fans
// to a new destination register). This mirrors bind.Build's mux model
// using producer nodes as register proxies (registers do not exist yet at
// decision time).
func (st *state) muxEstimate(v cdfg.NodeID, f int) float64 {
	fu := st.fus[f]
	if len(fu.ops) == 0 {
		return 0
	}
	cm := st.cfg.cost()
	inputs := 0
	preds := st.g.Preds(v)
	for port, p := range preds {
		seen := false
		fresh := false
		for _, op := range fu.ops {
			ep := st.g.Preds(op)
			if port < len(ep) {
				seen = true
				if ep[port] != p {
					fresh = true
				}
			}
		}
		if seen && fresh {
			inputs++
		}
	}
	// Result-side fan-out: sharing adds one register-write source.
	inputs++
	return float64(inputs) * cm.MuxInputArea
}

// amortizedArea estimates the effective cost of allocating a new instance
// of module mi: its area divided by the number of operations it could
// plausibly end up serving — the uncommitted operations of matching type,
// capped by the number of executions that fit in the deadline.
func (st *state) amortizedArea(mi int) float64 {
	m := st.lib.Module(mi)
	potential := 0
	for i, c := range st.committed {
		if !c && m.Implements(st.g.Node(cdfg.NodeID(i)).Op) {
			potential++
		}
	}
	slots := st.cons.Deadline / m.Delay
	if slots < 1 {
		slots = 1
	}
	share := potential
	if slots < share {
		share = slots
	}
	if share < 1 {
		share = 1
	}
	return m.Area / float64(share)
}

type interval struct{ s, e int }

// reservations returns the busy intervals of instance f.
func (st *state) reservations(f int) []interval {
	var busy []interval
	for _, op := range st.fus[f].ops {
		m := st.lib.Module(st.moduleOf[op])
		busy = append(busy, interval{st.start[op], st.start[op] + m.Delay})
	}
	return busy
}

// freeSlot returns the earliest start t within w at which none of the busy
// intervals overlap an execution of d cycles and the committed power
// profile leaves room for the module's power, or ok=false.
func (st *state) freeSlot(busy []interval, w sched.Window, d int, power float64) (int, bool) {
	horizon := st.cons.Deadline
	var prof []float64
	if st.cons.PowerMax > 0 {
		prof = st.committedProfile(horizon)
	}
	for t := w.Early; t <= w.Late; t++ {
		if t+d > horizon {
			break
		}
		ok := true
		for _, b := range busy {
			if t < b.e && b.s < t+d {
				ok = false
				break
			}
		}
		if ok && prof != nil {
			for c := t; c < t+d; c++ {
				if prof[c]+power > st.cons.PowerMax+1e-9 {
					ok = false
					break
				}
			}
		}
		if ok {
			return t, true
		}
	}
	return 0, false
}

// bestDecision evaluates the current compatibility structure and returns
// the cheapest admissible decision: bind an uncommitted operation onto an
// existing instance, or allocate a new instance for it. Ties break toward
// the most schedule-constrained operation (smallest window), then the
// smallest node ID, then the smallest module area — all deterministic.
func (st *state) bestDecision() (Decision, bool) {
	windows := st.candidateWindows()
	best := Decision{FU: -1}
	bestWidth, bestWeight := 0, 0.0
	found := false

	// weight ranks operations by how expensive their resource class is
	// (the cheapest module that could implement them): multiplications
	// before ALU operations before transfers. Binding the expensive
	// resources first keeps their sharing opportunities intact; cheap
	// transfers adapt around them.
	weight := func(d Decision) float64 {
		m, err := st.lib.Smallest(st.g.Node(d.Node).Op)
		if err != nil {
			return 0
		}
		return m.Area
	}

	consider := func(d Decision, width int) {
		w := weight(d)
		if !found {
			best, bestWidth, bestWeight, found = d, width, w, true
			return
		}
		if w != bestWeight {
			if w > bestWeight {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if d.Cost != best.Cost {
			if d.Cost < best.Cost {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if width != bestWidth {
			if width < bestWidth {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if d.Node != best.Node {
			if d.Node < best.Node {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if st.lib.Module(st.moduleIndexOf(d)).Area < st.lib.Module(st.moduleIndexOf(best)).Area {
			best, bestWidth, bestWeight = d, width, w
		}
	}

	for i := 0; i < st.g.N(); i++ {
		v := cdfg.NodeID(i)
		if st.committed[v] {
			continue
		}
		// Best new-instance module for v, chosen by amortized area so that
		// a slightly larger multi-function unit (the ALU) beats several
		// single-function units — the effect the clique formulation
		// captures globally. Ranked against other decisions at FULL area,
		// so sharing an existing instance always wins when feasible.
		newMi, newStart, newWidth := -1, 0, 0
		var newAmort float64
		for _, mi := range st.lib.Candidates(st.g.Node(v).Op) {
			w, ok := windows[v][mi]
			if !ok {
				continue
			}
			m := st.lib.Module(mi)
			// Share an existing instance of the same module.
			for f := range st.fus {
				if st.fus[f].module != mi {
					continue
				}
				if t, ok := st.freeSlot(st.reservations(f), w, m.Delay, m.Power); ok {
					consider(Decision{
						Node: v, Module: m.Name, FU: f, NewFU: false,
						Start: t, Cost: st.muxEstimate(v, f),
					}, w.Width())
				}
			}
			if t, ok := st.freeSlot(nil, w, m.Delay, m.Power); ok {
				a := st.amortizedArea(mi)
				if newMi < 0 || a < newAmort {
					newMi, newStart, newWidth, newAmort = mi, t, w.Width(), a
				}
			}
		}
		if newMi >= 0 {
			m := st.lib.Module(newMi)
			consider(Decision{
				Node: v, Module: m.Name, FU: len(st.fus), NewFU: true,
				Start: newStart, Cost: m.Area,
			}, newWidth)
		}
	}
	return best, found
}
