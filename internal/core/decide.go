package core

import (
	"pchls/internal/cdfg"
	"pchls/internal/sched"
)

// The candidate windows of one iteration live in the state's flat
// (node, module) table: wins[v*nm+mi] with a parallel winSet presence bit.
// A flat table replaces the former map-of-maps, which allocated a fresh
// two-level map every iteration and dominated the synthesize profile.

func (st *state) setWin(v cdfg.NodeID, mi int, w sched.Window) {
	idx := int(v)*st.nm + mi
	st.wins[idx] = w
	st.winSet[idx] = true
}

func (st *state) getWin(v cdfg.NodeID, mi int) (sched.Window, bool) {
	idx := int(v)*st.nm + mi
	return st.wins[idx], st.winSet[idx]
}

// candidateWindows computes, once per iteration, the feasible window of
// every (uncommitted op, module) candidate into the state's flat window
// table. The assumed-module windows all come from one pasap/palap pair;
// only overrides need extra runs. The incremental engine serves clean
// nodes from its cache and re-derives only the dirty subset; the legacy
// path (DisableIncremental) recomputes everything. Both produce identical
// tables — the incremental derivation is audited against a full pasap
// probe and falls back on any disagreement.
func (st *state) candidateWindows() {
	for i := range st.winSet {
		st.winSet[i] = false
	}
	if st.locked {
		for i, c := range st.committed {
			if !c {
				v := cdfg.NodeID(i)
				st.setWin(v, st.moduleOf[v], sched.Window{Early: st.start[v], Late: st.start[v]})
			}
		}
		return
	}
	if st.sdc {
		st.sdcWindows()
		return
	}
	if st.eng != nil {
		if st.eng.warm {
			if st.reusedWindows() {
				return
			}
			// The incremental derivation was rejected; rebuild the cache
			// from scratch.
			st.eng.invalidateWindows()
			st.stats.FullInvalidations++
			for i := range st.winSet {
				st.winSet[i] = false
			}
		}
		st.refreshedWindows()
		return
	}
	st.scratchWindows()
}

// scratchWindows is the legacy recompute-everything derivation.
func (st *state) scratchWindows() {
	// Base run under the assumed modules.
	opts := st.schedOpts()
	st.stats.SchedulerRuns++
	early, err1 := sched.PASAP(st.g, st.baseBind, opts)
	var late *sched.Schedule
	var err2 error
	if err1 == nil && early.Length() <= st.cons.Deadline {
		st.stats.SchedulerRuns++
		late, err2 = sched.PALAP(st.g, st.baseBind, st.cons.Deadline, opts)
	}
	baseOK := err1 == nil && early.Length() <= st.cons.Deadline && err2 == nil

	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		for _, mi := range st.cand[v] {
			if mi == st.moduleOf[v] && baseOK {
				w := sched.Window{Early: early.Start[v], Late: late.Start[v]}
				if w.Width() >= 1 {
					st.setWin(v, mi, w)
				}
				continue
			}
			if w, ok := st.windowFor(v, mi); ok {
				st.setWin(v, mi, w)
			}
		}
	}
}

// sdcWindows derives every candidate window from the SDC
// difference-constraint bounds: one O(V+E) longest-path pass per
// iteration, then an O(1) lookup per (node, module) candidate — Early[v]
// never depends on v's own delay and LateEnd[v] doesn't either while v is
// uncommitted, so a module override is just a different subtraction. This
// replaces the O(n·m) override pasap/palap pairs of the exhaustive path,
// which is what makes thousand-node synthesis tractable.
//
// The bounds ignore the power cap, so these windows are supersets of the
// power-feasible exhaustive ones. Soundness is unaffected: every placement
// is still checked against the committed power profile (freeSlot), every
// commit is re-probed by the full power-aware pasap, repair handles
// stranded operations, and the final schedule passes Validate — the
// relaxation only widens which decisions get considered. Modules whose
// own power exceeds the cap are rejected here exactly as windowSchedsFor
// rejects them.
func (st *state) sdcWindows() {
	st.stats.SDCDerivations++
	st.fillFixedStarts()
	sched.DeriveSDCBounds(st.g, st.topo, st.cons.Deadline, st.delays, st.fixedStarts,
		st.cfg.Release, st.cfg.Due, &st.sdcB)
	// Power-aware bound propagation: when an ambient BaseProfile carries the
	// power already committed by other parts of a decomposed synthesis, any
	// feasible start must leave headroom for the candidate's own draw across
	// its whole execution — so window ends sitting under saturated ambient
	// cycles can be pulled in before any placement probe runs. freeSlot
	// re-checks every interior cycle, so this only removes starts that were
	// doomed anyway (plus their cache/compat bookkeeping).
	tighten := st.cons.PowerMax > 0 && len(st.cfg.BaseProfile) > 0
	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		early := st.sdcB.Early[v]
		for _, mi := range st.cand[v] {
			m := st.lib.Module(mi)
			if st.cons.PowerMax > 0 && m.Power > st.cons.PowerMax+1e-9 {
				continue
			}
			w := sched.Window{Early: early, Late: st.sdcB.LateEnd[v] - m.Delay}
			if tighten {
				var changed bool
				if w, changed = st.tightenWindow(mi, m.Delay, w); changed {
					st.stats.BoundTightenings++
				}
			}
			if w.Width() >= 1 {
				st.setWin(v, mi, w)
			}
		}
	}
}

// tightenWindow shrinks an SDC candidate window to the nearest start cycles
// whose full execution interval fits under the ambient BaseProfile draw:
// starts where base(c) + module power would break the cap for some covered
// cycle c are skipped from both ends. Interior starts are left to freeSlot.
// The per-module blocked-cycle tables are built lazily and reused for the
// life of the state (BaseProfile never changes within one run).
func (st *state) tightenWindow(mi, d int, w sched.Window) (sched.Window, bool) {
	T := st.cons.Deadline
	next, prev := st.tightNext[mi], st.tightPrev[mi]
	if next == nil {
		power := st.lib.Module(mi).Power
		// next[c]: smallest cycle >= c with no headroom (T+1 when none);
		// prev[c]: largest such cycle <= c (-1 when none).
		next = make([]int, T+2)
		prev = make([]int, T+1)
		next[T+1] = T + 1
		blocked := func(c int) bool {
			return st.baseAt(c)+power > st.cons.PowerMax+1e-9
		}
		for c := T; c >= 0; c-- {
			if blocked(c) {
				next[c] = c
			} else {
				next[c] = next[c+1]
			}
		}
		last := -1
		for c := 0; c <= T; c++ {
			if blocked(c) {
				last = c
			}
			prev[c] = last
		}
		if st.tightNext == nil {
			st.tightNext = make(map[int][]int)
			st.tightPrev = make(map[int][]int)
		}
		st.tightNext[mi], st.tightPrev[mi] = next, prev
	}
	e, l := w.Early, w.Late
	// Jump the early end past blocked runs: a start e is viable only when
	// the first blocked cycle at or after it lies beyond e+d-1.
	for e >= 0 && e <= l && e <= T {
		b := next[e]
		if b >= e+d {
			break
		}
		e = b + 1
	}
	// Mirror for the late end: viable when the last blocked cycle at or
	// before l+d-1 lies before l.
	for l >= e && l >= 0 {
		hi := l + d - 1
		if hi > T {
			hi = T
		}
		if hi < 0 {
			break
		}
		b := prev[hi]
		if b < l {
			break
		}
		l = b - d
	}
	if e == w.Early && l == w.Late {
		return w, false
	}
	return sched.Window{Early: e, Late: l}, true
}

// refreshedWindows is the engine's cold-path derivation: the same work as
// scratchWindows — except that the post-commit probe, when present, is
// reused as the base Early schedule, saving one full run — with every
// result (including infeasible candidates) stored in the cache. The cache
// becomes warm only when the base pair succeeded, since the reuse path
// pins clean nodes to base windows.
func (st *state) refreshedWindows() {
	eng := st.eng
	opts := st.schedOpts()
	early, err1 := eng.probe, error(nil)
	if early == nil {
		st.stats.SchedulerRuns++
		early, err1 = sched.PASAP(st.g, st.baseBind, opts)
	}
	var late *sched.Schedule
	var err2 error
	if err1 == nil && early.Length() <= st.cons.Deadline {
		st.stats.SchedulerRuns++
		late, err2 = sched.PALAP(st.g, st.baseBind, st.cons.Deadline, opts)
	}
	baseOK := err1 == nil && early.Length() <= st.cons.Deadline && err2 == nil
	if baseOK {
		for i := range eng.baseWin {
			eng.baseWin[i] = sched.Window{Early: early.Start[i], Late: late.Start[i]}
		}
		eng.probe = early
		// Snapshot the module assumptions the cached runs are made under;
		// entry validity across a later commitment requires the committed
		// module to match this snapshot.
		eng.assumed = append(eng.assumed[:0], st.moduleOf...)
	}

	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		for _, mi := range st.cand[v] {
			if mi == st.moduleOf[v] && baseOK {
				w := eng.baseWin[v]
				if w.Width() >= 1 {
					st.setWin(v, mi, w)
				}
				continue
			}
			st.stats.WindowCacheMisses++
			ent := st.computeEntry(v, mi)
			if baseOK {
				idx := int(v)*st.nm + mi
				eng.over[idx] = ent
				eng.overSet[idx] = true
			}
			if ent.ok {
				st.setWin(v, mi, ent.w)
			}
		}
	}
	eng.warm = baseOK
	eng.baseValid = false
	for i := range eng.dirty {
		eng.dirty[i] = false
	}
}

// reusedWindows is the engine's warm path. When the last commitment
// provably left the base pair unchanged (baseValid), the base windows
// are reused outright with no scheduler run; otherwise they are
// re-derived by the dirty-subset schedulers (clean nodes replayed, dirty
// nodes re-placed) and audited against the exact post-commit pasap
// probe. Override candidates are served from the cache — every surviving
// entry was proven valid by the per-commit filter in noteProbe — and
// only dropped entries are recomputed. false means the pinned
// derivation was rejected — stale pin or audit mismatch — and the caller
// must fall back to refreshedWindows.
func (st *state) reusedWindows() bool {
	eng := st.eng
	ws := eng.baseWin
	if !eng.baseValid {
		opts := st.schedOpts()
		st.stats.IncrementalRuns += 2
		var err error
		ws, err = sched.WindowsDirty(st.g, st.baseBind, st.cons.Deadline, opts, eng.baseWin, eng.dirty)
		if err != nil {
			st.stats.Fallbacks++
			return false
		}
		// Audit: the incremental Early side must agree with the full pasap
		// probe on every node; any disagreement means the dirty set was
		// too small.
		for i := range ws {
			if ws[i].Early != eng.probe.Start[i] {
				st.stats.Fallbacks++
				return false
			}
		}
	}
	for i, c := range st.committed {
		if c {
			continue
		}
		v := cdfg.NodeID(i)
		for _, mi := range st.cand[v] {
			if mi == st.moduleOf[v] {
				w := ws[v]
				if w.Width() >= 1 {
					st.setWin(v, mi, w)
				}
				continue
			}
			idx := int(v)*st.nm + mi
			if eng.overSet[idx] {
				st.stats.WindowCacheHits++
				if ent := eng.over[idx]; ent.ok {
					st.setWin(v, mi, ent.w)
				}
				continue
			}
			st.stats.WindowCacheMisses++
			ent := st.computeEntry(v, mi)
			eng.over[idx] = ent
			eng.overSet[idx] = true
			if ent.ok {
				st.setWin(v, mi, ent.w)
			}
		}
	}
	eng.baseWin = ws
	for i := range eng.dirty {
		eng.dirty[i] = false
	}
	return true
}

// muxEstimate approximates the interconnect cost of binding v onto
// instance f: one new multiplexer input for every operand port of v whose
// producer differs from the producers already feeding that port of f, and
// one for the result port when f already has operations (its output fans
// to a new destination register). This mirrors bind.Build's mux model
// using producer nodes as register proxies (registers do not exist yet at
// decision time).
func (st *state) muxEstimate(v cdfg.NodeID, f int) float64 {
	fu := st.fus[f]
	if len(fu.ops) == 0 {
		return 0
	}
	inputs := 0
	preds := st.g.Preds(v)
	for port, p := range preds {
		seen := false
		fresh := false
		for _, op := range fu.ops {
			ep := st.g.Preds(op)
			if port < len(ep) {
				seen = true
				if ep[port] != p {
					fresh = true
				}
			}
		}
		if seen && fresh {
			inputs++
		}
	}
	// Result-side fan-out: sharing adds one register-write source.
	inputs++
	return float64(inputs) * st.cm.MuxInputArea
}

// amortizedArea estimates the effective cost of allocating a new instance
// of module mi: its area divided by the number of operations it could
// plausibly end up serving — the uncommitted operations of matching type,
// capped by the number of executions that fit in the deadline.
func (st *state) amortizedArea(mi int) float64 {
	m := st.lib.Module(mi)
	potential := 0
	for i, c := range st.committed {
		if !c && m.Implements(st.g.Node(cdfg.NodeID(i)).Op) {
			potential++
		}
	}
	return st.amortizedAreaWith(mi, potential)
}

// amortizedAreaWith is amortizedArea with the potential-implementer count
// precomputed — bestDecision counts all modules in one sweep instead of
// re-scanning the graph per candidate.
func (st *state) amortizedAreaWith(mi, potential int) float64 {
	m := st.lib.Module(mi)
	slots := st.cons.Deadline / m.Delay
	if slots < 1 {
		slots = 1
	}
	share := potential
	if slots < share {
		share = slots
	}
	if share < 1 {
		share = 1
	}
	return m.Area / float64(share)
}

type interval struct{ s, e int }

// reservationsInto returns the busy intervals of instance f: the engine's
// incrementally maintained list, or (legacy path) re-derived into the
// given recycled buffer, which stays valid until its next use.
func (st *state) reservationsInto(f int, buf *[]interval) []interval {
	if st.eng != nil {
		return st.eng.resv[f]
	}
	busy := (*buf)[:0]
	for _, op := range st.fus[f].ops {
		busy = append(busy, interval{st.start[op], st.start[op] + st.delays[op]})
	}
	*buf = busy
	return busy
}

// reservations is reservationsInto with a fresh buffer on the legacy path.
func (st *state) reservations(f int) []interval {
	var buf []interval
	return st.reservationsInto(f, &buf)
}

// freeSlot returns the earliest start t within w at which none of the busy
// intervals overlap an execution of d cycles and the committed power
// profile leaves room for the module's power, or ok=false.
func (st *state) freeSlot(busy []interval, w sched.Window, d int, power float64) (int, bool) {
	st.stats.ProfileProbes++
	horizon := st.cons.Deadline
	var prof []float64
	if st.cons.PowerMax > 0 {
		if st.eng != nil {
			prof = st.eng.profile
		} else {
			st.stats.ProfileRebuilds++
			prof = st.committedProfileScratch(horizon)
		}
	}
	// The paper packs operations as early as possible; a PlaceLate
	// perturbation walks the window from the palap end instead, which
	// shifts sharing opportunities toward later cycles.
	from, to, step := w.Early, w.Late, 1
	if st.cfg.Perturb.PlaceLate {
		from, to, step = w.Late, w.Early, -1
	}
	for t := from; (step > 0 && t <= to) || (step < 0 && t >= to); t += step {
		if t+d > horizon {
			continue
		}
		ok := true
		for _, b := range busy {
			if t < b.e && b.s < t+d {
				ok = false
				break
			}
		}
		if ok && prof != nil {
			for c := t; c < t+d; c++ {
				if prof[c]+st.baseAt(c)+power > st.cons.PowerMax+1e-9 {
					ok = false
					break
				}
			}
		}
		if ok {
			return t, true
		}
	}
	return 0, false
}

// bestDecision evaluates the current compatibility structure and returns
// the cheapest admissible decision: bind an uncommitted operation onto an
// existing instance, or allocate a new instance for it. Ties break toward
// the most schedule-constrained operation (smallest window), then the
// smallest node ID, then the smallest module area — all deterministic.
func (st *state) bestDecision() (Decision, bool) {
	st.candidateWindows()
	if st.v1 != nil {
		st.syncCompat()
	}
	best := Decision{FU: -1}
	bestWidth, bestWeight := 0, 0.0
	found := false

	// Per-module count of uncommitted operations it could implement, for
	// the amortized-area estimate; one sweep instead of one graph scan per
	// (op, module) candidate. mi implements node i's op exactly when mi is
	// among the op's candidate modules.
	for mi := range st.potential {
		st.potential[mi] = 0
	}
	for i, c := range st.committed {
		if c {
			continue
		}
		for _, mi := range st.cand[i] {
			st.potential[mi]++
		}
	}

	// weight ranks operations by how expensive their resource class is
	// (the cheapest module that could implement them): multiplications
	// before ALU operations before transfers. Binding the expensive
	// resources first keeps their sharing opportunities intact; cheap
	// transfers adapt around them.
	consider := func(d Decision, width int) {
		w := st.smallestArea[d.Node]
		if st.jitterW != nil {
			// Seeded priority-order jitter: scale the resource-class weight
			// so perturbed passes explore different commit orders.
			w *= st.jitterW[d.Node]
		}
		if !found {
			best, bestWidth, bestWeight, found = d, width, w, true
			return
		}
		if w != bestWeight {
			if w > bestWeight {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if d.Cost != best.Cost {
			if d.Cost < best.Cost {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if width != bestWidth {
			if width < bestWidth {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if d.Node != best.Node {
			// Candidate-tie reshuffling: a seeded permutation rank replaces
			// the node-ID order among otherwise equal decisions.
			if st.tieRank != nil {
				if st.tieRank[d.Node] < st.tieRank[best.Node] {
					best, bestWidth, bestWeight = d, width, w
				}
				return
			}
			if d.Node < best.Node {
				best, bestWidth, bestWeight = d, width, w
			}
			return
		}
		if st.lib.Module(st.moduleIndexOf(d)).Area < st.lib.Module(st.moduleIndexOf(best)).Area {
			best, bestWidth, bestWeight = d, width, w
		}
	}

	for i := 0; i < st.g.N(); i++ {
		v := cdfg.NodeID(i)
		if st.committed[v] {
			continue
		}
		// Best new-instance module for v, chosen by amortized area so that
		// a slightly larger multi-function unit (the ALU) beats several
		// single-function units — the effect the clique formulation
		// captures globally. Ranked against other decisions at FULL area,
		// so sharing an existing instance always wins when feasible.
		newMi, newStart, newWidth := -1, 0, 0
		var newAmort float64
		for _, mi := range st.cand[v] {
			w, ok := st.getWin(v, mi)
			if !ok {
				continue
			}
			m := st.lib.Module(mi)
			// Share an existing instance of the same module.
			for f := range st.fus {
				if st.fus[f].module != mi {
					continue
				}
				// V1 prefilter: an edge missing between (v, mi) and any
				// operation on f proves no in-window start can coexist with
				// f's reservations (CanShare false implies freeSlot false —
				// the windows already encode precedence against committed
				// starts), so the slot walk is skipped without changing the
				// decision set.
				if st.v1 != nil && !st.v1.ShareOK(v, mi, st.fus[f].ops) {
					continue
				}
				if t, ok := st.freeSlot(st.reservationsInto(f, &st.busyA), w, m.Delay, m.Power); ok {
					consider(Decision{
						Node: v, Module: m.Name, FU: f, NewFU: false,
						Start: t, Cost: st.muxEstimate(v, f),
					}, w.Width())
				}
			}
			if t, ok := st.freeSlot(nil, w, m.Delay, m.Power); ok {
				a := st.amortizedAreaWith(mi, st.potential[mi])
				if newMi < 0 || a < newAmort {
					newMi, newStart, newWidth, newAmort = mi, t, w.Width(), a
				}
			}
		}
		if newMi >= 0 {
			m := st.lib.Module(newMi)
			consider(Decision{
				Node: v, Module: m.Name, FU: len(st.fus), NewFU: true,
				Start: newStart, Cost: m.Area,
			}, newWidth)
		}
	}
	return best, found
}
