package core

// Tests for the min-cut decomposition of connected graphs: determinism
// across worker counts, independent verification of every stitched
// design, the boundary-transfer and QoR-recovery stats, the repair →
// fallback chain on infeasible parts, and the area gap against
// monolithic synthesis.

import (
	"fmt"
	"testing"

	"pchls/internal/gen"
	"pchls/internal/sched"
	"pchls/internal/verify"
)

// connectedInstance derives a single-component preset instance plus the
// scaling lane's constraint point: 50% deadline slack over the
// fastest-module ASAP length, power capped at the given fraction of the
// unconstrained ASAP peak (0 = latency-only).
func connectedInstance(t *testing.T, preset gen.Preset, nodes int, seed int64, powerFrac float64) (gen.Instance, Constraints) {
	t.Helper()
	cfg, err := gen.PresetConfig(preset, nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Connect = true
	inst := gen.NewInstance(seed, gen.InstanceConfig{Graph: cfg})
	asap, err := sched.ASAP(inst.Graph, sched.UniformFastest(inst.Library))
	if err != nil {
		t.Fatal(err)
	}
	return inst, Constraints{
		Deadline: asap.Length() + asap.Length()/2,
		PowerMax: asap.PeakPower() * powerFrac,
	}
}

// TestMinCutDeterministicAcrossWorkers: the wave-parallel min-cut driver
// must produce byte-identical designs for every worker count — the cut,
// the wave grouping, the acceptance walk, and the stitch all follow part
// order, never scheduling order.
func TestMinCutDeterministicAcrossWorkers(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		inst, cons := connectedInstance(t, gen.PresetLayered, 300, seed, 0.7)
		var ref *Design
		var refErr error
		for _, workers := range []int{1, 2, 8} {
			d, err := Synthesize(inst.Graph, inst.Library, cons, Config{Partition: PartitionForce, Workers: workers})
			label := fmt.Sprintf("seed %d workers=%d", seed, workers)
			if workers == 1 {
				ref, refErr = d, err
				if err == nil {
					if verr := verify.Check(VerifyInput(d)); verr != nil {
						t.Fatalf("%s: min-cut design fails verification: %v", label, verr)
					}
					if d.Stats.CutEdges == 0 && d.Stats.PartitionFallbacks == 0 {
						t.Fatalf("%s: forced min-cut reports neither cut edges nor a fallback:\n%v", label, d.Stats)
					}
				}
				continue
			}
			requireSameDesign(t, label, d, ref, err, refErr)
		}
	}
}

// TestMinCutVerifiesUnderPowerSweep pushes tight-power connected
// instances through the forced min-cut path: every produced design must
// pass the engine-independent verifier, monolithic feasibility must imply
// min-cut feasibility (the fallback chain guarantees it), and across the
// sweep both dispositions of an infeasible part subproblem must appear —
// stitched designs with cut edges, and abandoned decompositions counted
// in PartitionFallbacks.
func TestMinCutVerifiesUnderPowerSweep(t *testing.T) {
	var stitched, fallbacks, produced int
	for _, frac := range []float64{0.3, 0.4, 0.5} {
		for seed := int64(0); seed < 8; seed++ {
			cfg := gen.GraphConfig{
				Nodes: 60 + int(seed%40), MaxWidth: 5, EdgeDensity: 0.6,
				MulFraction: 0.3, CmpFraction: 0.1, Connect: true,
			}
			inst := gen.NewInstance(seed, gen.InstanceConfig{Graph: cfg})
			asap, err := sched.ASAP(inst.Graph, sched.UniformFastest(inst.Library))
			if err != nil {
				t.Fatal(err)
			}
			cons := Constraints{Deadline: asap.Length() + asap.Length()/2, PowerMax: asap.PeakPower() * frac}
			label := fmt.Sprintf("frac=%.2f seed=%d", frac, seed)
			d, err := Synthesize(inst.Graph, inst.Library, cons, Config{Partition: PartitionForce})
			if err != nil {
				if m, merr := Synthesize(inst.Graph, inst.Library, cons, Config{Partition: PartitionOff}); merr == nil {
					t.Fatalf("%s: monolithic synthesis succeeds (area %.2f) but the min-cut path errors: %v", label, m.Area(), err)
				}
				continue
			}
			produced++
			if verr := verify.Check(VerifyInput(d)); verr != nil {
				t.Fatalf("%s: min-cut design fails verification: %v", label, verr)
			}
			if d.Stats.CutEdges > 0 {
				stitched++
				if d.Stats.BoundaryTransfers == 0 {
					t.Fatalf("%s: stitched design reports cut edges but no boundary transfers:\n%v", label, d.Stats)
				}
			}
			if d.Stats.PartitionFallbacks > 0 {
				fallbacks++
			}
		}
	}
	if produced < 10 {
		t.Fatalf("only %d designs produced; sweep too weak to mean anything", produced)
	}
	if stitched == 0 {
		t.Fatal("no design in the sweep was stitched from a min cut")
	}
	if fallbacks == 0 {
		t.Fatal("no instance in the sweep exercised the monolithic fallback of an infeasible part")
	}
}

// TestMinCutRepairAndTightening pins a thousand-node instance whose
// power coupling exercises both QoR-recovery mechanisms: the acceptance
// walk re-synthesizes a part whose committed profile jointly breaks the
// cap (RegionRepairs), and the repair run's ambient profile shrinks SDC
// candidate windows (BoundTightenings). The instance is seeded, so the
// trigger is deterministic; the stitched result must still verify.
func TestMinCutRepairAndTightening(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-node synthesis; skipped with -short")
	}
	inst, cons := connectedInstance(t, gen.PresetLayered, 1000, 2001, 0.45)
	d, err := Synthesize(inst.Graph, inst.Library, cons, Config{Workers: 8})
	if err != nil {
		t.Fatalf("synthesis failed: %v", err)
	}
	if verr := verify.Check(VerifyInput(d)); verr != nil {
		t.Fatalf("design fails verification: %v", verr)
	}
	st := d.Stats
	if st.CutEdges == 0 || st.BoundaryTransfers == 0 {
		t.Fatalf("pinned instance no longer takes the min-cut path:\n%v", st)
	}
	if st.RegionRepairs == 0 {
		t.Fatalf("pinned instance no longer triggers the acceptance-walk repair:\n%v", st)
	}
	if st.BoundTightenings == 0 {
		t.Fatalf("pinned instance no longer triggers power-aware bound tightening:\n%v", st)
	}
	if st.SharedCrossRegion == 0 {
		t.Fatalf("pinned instance no longer triggers cross-region sharing:\n%v", st)
	}
}

// TestMinCutAreaGapUnconstrained bounds the QoR cost of cutting a
// connected graph: without a power cap the stitched design's area must
// stay within 15% of monolithic synthesis in aggregate over the suite —
// the boundary dues (area descent cannot starve downstream slack) and the
// cross-region sharing passes are what hold the gap down from the ~30%
// a naive cut-and-stitch pays.
func TestMinCutAreaGapUnconstrained(t *testing.T) {
	var part, mono float64
	for seed := int64(0); seed < 6; seed++ {
		inst, cons := connectedInstance(t, gen.PresetLayered, 300, seed, 0)
		label := fmt.Sprintf("seed %d", seed)
		p, perr := Synthesize(inst.Graph, inst.Library, cons, Config{Partition: PartitionForce})
		m, merr := Synthesize(inst.Graph, inst.Library, cons, Config{Partition: PartitionOff})
		if merr != nil {
			t.Fatalf("%s: monolithic synthesis failed: %v", label, merr)
		}
		if perr != nil {
			t.Fatalf("%s: min-cut synthesis failed: %v", label, perr)
		}
		if verr := verify.Check(VerifyInput(p)); verr != nil {
			t.Fatalf("%s: min-cut design fails verification: %v", label, verr)
		}
		if p.Stats.PartitionFallbacks > 0 {
			t.Fatalf("%s: fell back to monolithic; the gap bound would be vacuous", label)
		}
		t.Logf("%s: area min-cut %.2f vs monolithic %.2f (%.1f%%)", label, p.Area(), m.Area(), 100*(p.Area()/m.Area()-1))
		part += p.Area()
		mono += m.Area()
	}
	if gap := part / mono; gap > 1.15 {
		t.Fatalf("aggregate min-cut area gap %.4f exceeds 1.15", gap)
	}
}
