package core

import (
	"fmt"

	"pchls/internal/bind"
	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// Assemble builds a complete, validated Design from an explicit solution:
// per-node start cycles and module indices, a node-to-instance binding and
// the module of every instance. It is the entry point for synthesis layers
// that construct solutions outside the greedy engine — the portfolio's
// subgraph splice rebuilds a design from a re-explored fragment through
// here — and rejects anything violating the schedule constraints or the
// binding invariants (bind.Build re-checks occupancy and compatibility).
//
// The returned design has no decision log and zero work counters: it
// records a solution, not a search.
func Assemble(g *cdfg.Graph, lib *library.Library, cons Constraints,
	start, moduleOf, fuOf, fuModule []int, cfg Config) (*Design, error) {
	n := g.N()
	if len(start) != n || len(moduleOf) != n || len(fuOf) != n {
		return nil, fmt.Errorf("core: assemble: start/moduleOf/fuOf have %d/%d/%d entries for %d nodes",
			len(start), len(moduleOf), len(fuOf), n)
	}
	if cons.Deadline <= 0 {
		return nil, fmt.Errorf("core: assemble: deadline %d must be positive", cons.Deadline)
	}
	s := sched.Schedule{
		G:      g,
		Start:  append([]int(nil), start...),
		Delay:  make([]int, n),
		Power:  make([]float64, n),
		Module: make([]string, n),
	}
	for v := 0; v < n; v++ {
		if moduleOf[v] < 0 || moduleOf[v] >= lib.Len() {
			return nil, fmt.Errorf("core: assemble: node %d names module index %d of %d", v, moduleOf[v], lib.Len())
		}
		m := lib.Module(moduleOf[v])
		if !m.Implements(g.Node(cdfg.NodeID(v)).Op) {
			return nil, fmt.Errorf("core: assemble: node %q (%s) assigned module %q which cannot execute it",
				g.Node(cdfg.NodeID(v)).Name, g.Node(cdfg.NodeID(v)).Op, m.Name)
		}
		s.Delay[v] = m.Delay
		s.Power[v] = m.Power
		s.Module[v] = m.Name
	}
	if err := s.Validate(cons.PowerMax, cons.Deadline); err != nil {
		return nil, fmt.Errorf("core: assemble: invalid schedule: %w", err)
	}
	fus := make([]bind.FU, len(fuModule))
	for f, mi := range fuModule {
		if mi < 0 || mi >= lib.Len() {
			return nil, fmt.Errorf("core: assemble: instance %d names module index %d of %d", f, mi, lib.Len())
		}
		fus[f].Module = lib.Module(mi)
	}
	for v := 0; v < n; v++ {
		f := fuOf[v]
		if f < 0 || f >= len(fus) {
			return nil, fmt.Errorf("core: assemble: node %d bound to instance %d of %d", v, f, len(fus))
		}
		if moduleOf[v] != fuModule[f] {
			return nil, fmt.Errorf("core: assemble: node %d runs module %d but its instance %d is module %d",
				v, moduleOf[v], f, fuModule[f])
		}
		fus[f].Ops = append(fus[f].Ops, cdfg.NodeID(v))
	}
	for f := range fus {
		if len(fus[f].Ops) == 0 {
			return nil, fmt.Errorf("core: assemble: instance %d has no operations bound to it", f)
		}
	}
	dp, err := bind.Build(g, &s, fus, fuOf, cfg.cost())
	if err != nil {
		return nil, fmt.Errorf("core: assemble: %w", err)
	}
	return &Design{
		Graph:    g,
		Library:  lib,
		Cons:     cons,
		Schedule: &s,
		Datapath: dp,
		FUs:      fus,
		FUOf:     append([]int(nil), fuOf...),
	}, nil
}
