package core

import (
	"fmt"
	"strings"
)

// Report renders a complete human-readable synthesis report: constraints,
// decision log, schedule, datapath and area breakdown.
func (d *Design) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "design %q: T = %d cycles, P< = %s\n",
		d.Graph.Name, d.Cons.Deadline, powerString(d.Cons.PowerMax))
	if d.Locked {
		sb.WriteString("note: backtrack-and-lock repair was triggered\n")
	}
	fmt.Fprintf(&sb, "\ndecisions (%d):\n", len(d.Decisions))
	for i, dec := range d.Decisions {
		kind := "bind to"
		if dec.NewFU {
			kind = "allocate"
		}
		fmt.Fprintf(&sb, "  %3d: %-10s %s FU%-3d (%-12s) at cycle %2d, cost %6.1f\n",
			i, d.Graph.Node(dec.Node).Name, kind, dec.FU, dec.Module, dec.Start, dec.Cost)
	}
	sb.WriteString("\nschedule:\n")
	sb.WriteString(d.Schedule.Table())
	sb.WriteString("\ndatapath:\n")
	sb.WriteString(d.Datapath.Report(d.Graph))
	return sb.String()
}

// Summary returns a one-line result summary for sweep tables.
func (d *Design) Summary() string {
	return fmt.Sprintf("%s T=%d P<=%s: area %.1f (FU %.1f, reg %.1f, mux %.1f), %d FUs, %d regs, peak %.2f, len %d",
		d.Graph.Name, d.Cons.Deadline, powerString(d.Cons.PowerMax),
		d.Area(), d.Datapath.FUArea, d.Datapath.RegArea, d.Datapath.MuxArea,
		len(d.FUs), len(d.Datapath.Registers), d.Schedule.PeakPower(), d.Schedule.Length())
}

func powerString(p float64) string {
	if p <= 0 {
		return "unconstrained"
	}
	return fmt.Sprintf("%.4g", p)
}

// Utilization returns, per functional-unit instance, the fraction of the
// schedule's cycles the instance is executing (0..1), in instance order.
func (d *Design) Utilization() []float64 {
	length := d.Schedule.Length()
	out := make([]float64, len(d.FUs))
	if length == 0 {
		return out
	}
	for i, fu := range d.FUs {
		busy := 0
		for _, op := range fu.Ops {
			busy += d.Schedule.Delay[op]
		}
		out[i] = float64(busy) / float64(length)
	}
	return out
}

// MeanUtilization returns the average instance utilization — a proxy for
// how well the binding time-shares the allocated hardware.
func (d *Design) MeanUtilization() float64 {
	u := d.Utilization()
	if len(u) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range u {
		sum += x
	}
	return sum / float64(len(u))
}
