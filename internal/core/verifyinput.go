package core

import "pchls/internal/verify"

// VerifyInput flattens a Design into the engine-independent form the
// internal/verify validator consumes. The dependency points this way
// only — core knows about verify, verify must never import core — so the
// validator re-derives every invariant with none of the engine's code in
// its import graph (verify's own tests enforce that).
func VerifyInput(d *Design) verify.Input {
	fuModules := make([]string, len(d.FUs))
	for i := range d.FUs {
		fuModules[i] = d.FUs[i].Module.Name
	}
	return verify.Input{
		Graph:          d.Graph,
		Library:        d.Library,
		Deadline:       d.Cons.Deadline,
		PowerMax:       d.Cons.PowerMax,
		Start:          d.Schedule.Start,
		Module:         d.Schedule.Module,
		FU:             d.FUOf,
		FUModules:      fuModules,
		ReportedFUArea: d.Datapath.FUArea,
	}
}
