package core

import (
	"fmt"
	"sort"

	"pchls/internal/cdfg"
	"pchls/internal/clique"
	"pchls/internal/compat"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// SynthesizeCliquePartition is the static one-shot variant of the
// synthesis problem, following the original clique-partitioning
// formulation the paper extends: the power-feasible mobility windows are
// derived once (not re-derived after every commitment), the time-extended
// compatibility graph over the assumed module assignment is partitioned
// with the greedy maximum-gain clique partitioner, and a final
// resource-constrained, power-constrained packing assigns concrete start
// times.
//
// It exists as the baseline for the DESIGN.md ablation "why re-derive the
// windows after every decision": it is faster but fails or produces worse
// area near tight constraints, where the incremental algorithm adapts.
func SynthesizeCliquePartition(g *cdfg.Graph, lib *library.Library, cons Constraints, cfg Config) (*Design, error) {
	lib, err := expandLevels(lib)
	if err != nil {
		return nil, err
	}
	// Reuse the module-assumption machinery of the incremental algorithm.
	cfg.DisableIncremental = !useEngine(g, cfg)
	st, err := newState(g, lib, cons, cfg)
	if err != nil {
		return nil, err
	}
	if err := st.refineInitialModules(); err != nil {
		return nil, err
	}

	// Static windows under the assumed modules.
	opts := sched.Options{PowerMax: cons.PowerMax, Delays: st.delays, Powers: st.powers, Arena: st.arena}
	st.stats.SchedulerRuns += 2
	windows, err := sched.Windows(g, st.baseBind, cons.Deadline, opts)
	if err != nil {
		return nil, fmt.Errorf("core: clique mode: %w: %w", ErrInfeasible, err)
	}
	reach, err := g.Reachability()
	if err != nil {
		return nil, err
	}

	// Compatibility graph over the nodes (one candidate per node: its
	// assumed module). Nodes with empty heuristic windows are widened to
	// their pasap point so they can still be placed (the incremental
	// algorithm would have repaired them; the static variant does not).
	n := g.N()
	for i := range windows {
		if windows[i].Width() < 1 {
			windows[i].Late = windows[i].Early
		}
	}
	cg := clique.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if st.moduleOf[i] != st.moduleOf[j] {
				continue
			}
			d := lib.Module(st.moduleOf[i]).Delay
			ab := reach.Get(i, j)
			ba := reach.Get(j, i)
			// Same-delay check suffices: both use the same module.
			if compat.CanShare(windows[i], windows[j], d, ab, ba) {
				cg.SetCompatible(i, j)
			}
		}
	}

	// Greedy maximum-gain partitioning: merging two cliques of the same
	// module saves one instance; the gain function also verifies a
	// sequential packing of the union exists within the static windows.
	gain := func(a, b []int) (float64, bool) {
		union := append(append([]int(nil), a...), b...)
		if !packable(g, st, windows, union) {
			return 0, false
		}
		m := lib.Module(st.moduleOf[a[0]])
		return m.Area, true
	}
	partition := clique.Greedy(cg, gain)

	partition, err = repairPack(g, st, windows, reach, partition)
	if err != nil {
		return nil, err
	}
	st.locked = true // start times are final; Decisions log is synthetic
	for _, block := range partition {
		fu := len(st.fus)
		st.fus = append(st.fus, instance{module: st.moduleOf[block[0]]})
		for _, v := range block {
			st.fuOf[v] = fu
			st.fus[fu].ops = append(st.fus[fu].ops, cdfg.NodeID(v))
			st.committed[v] = true
			st.decisions = append(st.decisions, Decision{
				Node: cdfg.NodeID(v), Module: lib.Module(st.moduleOf[v]).Name,
				FU: fu, NewFU: len(st.fus[fu].ops) == 1, Start: st.start[v],
			})
		}
	}
	if st.eng != nil {
		// The bulk commits above bypassed commit(); bring the engine's
		// profile and reservation lists up to date for the merge pass.
		st.eng.rebuild(st)
	}
	st.mergePass()
	return st.finish()
}

// repairPack packs the partition into concrete start times, repairing
// deadline misses by eviction. The pairwise window test behind the
// partition is optimistic about cross-clique precedence, so a miss is
// repaired by evicting into its own instance the worst-deviating
// shareable ancestor of the violator — the node packed furthest beyond
// its static window — falling back to the violator itself when no
// ancestor deviates. Each eviction strictly grows the partition (an
// n-block partition of n nodes packs trivially or fails for good), so the
// loop terminates.
func repairPack(g *cdfg.Graph, st *state, windows []sched.Window, reach cdfg.Bitmat, partition clique.Partition) (clique.Partition, error) {
	n := g.N()
	for {
		violator, err := packPartition(g, st, windows, partition)
		if err == nil {
			return partition, nil
		}
		if violator < 0 {
			return nil, err
		}
		evict := -1
		for v := 0; v < n; v++ {
			if v != violator && !reach.Get(v, violator) {
				continue
			}
			if st.start[v] <= windows[v].Late {
				continue
			}
			if blockSize(partition, v) < 2 {
				continue
			}
			if evict < 0 || st.start[v]-windows[v].Late > st.start[evict]-windows[evict].Late {
				evict = v
			}
		}
		if evict < 0 {
			// No deviating shareable ancestor: fall back to the violator
			// itself, else give up.
			if blockSize(partition, violator) >= 2 {
				evict = violator
			} else {
				return nil, err
			}
		}
		partition = evictNode(partition, evict)
	}
}

// blockSize returns the size of the partition block containing v.
func blockSize(p clique.Partition, v int) int {
	for _, block := range p {
		for _, u := range block {
			if u == v {
				return len(block)
			}
		}
	}
	return 0
}

// evictNode moves v into a fresh singleton block.
func evictNode(p clique.Partition, v int) clique.Partition {
	for bi, block := range p {
		for k, u := range block {
			if u == v {
				// Copy before truncating: appending block[k+1:] onto
				// block[:k] would shift elements within the shared backing
				// array and corrupt any alias of the original block.
				nb := make([]int, 0, len(block)-1)
				nb = append(nb, block[:k]...)
				nb = append(nb, block[k+1:]...)
				p[bi] = nb
				return append(p, []int{v})
			}
		}
	}
	return p
}

// packable reports whether the clique's operations admit a sequential
// packing within their windows: processed in Early order, each op starts
// at max(own Early, previous end) and must not exceed its Late.
func packable(g *cdfg.Graph, st *state, windows []sched.Window, ops []int) bool {
	sorted := append([]int(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool {
		if windows[sorted[i]].Early != windows[sorted[j]].Early {
			return windows[sorted[i]].Early < windows[sorted[j]].Early
		}
		return sorted[i] < sorted[j]
	})
	t := 0
	for _, v := range sorted {
		d := st.lib.Module(st.moduleOf[v]).Delay
		start := windows[v].Early
		if start < t {
			start = t
		}
		if start > windows[v].Late {
			return false
		}
		t = start + d
	}
	return true
}

// packPartition assigns concrete start times: a list schedule over the
// partition's instances under precedence, instance exclusivity and the
// power cap, then a deadline check. On a deadline miss it returns the
// violating node (for the split repair) and an error; violator is -1 for
// non-repairable failures.
func packPartition(g *cdfg.Graph, st *state, windows []sched.Window, partition clique.Partition) (violator int, err error) {
	instanceOf := make([]int, g.N())
	for bi, block := range partition {
		for _, v := range block {
			instanceOf[v] = bi
		}
	}
	order, err := g.TopoOrder()
	if err != nil {
		return -1, err
	}
	// Critical-first among ready ops, mirroring pasap.
	prio := make([]int, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		best := 0
		for _, v := range g.Succs(u) {
			if prio[v] > best {
				best = prio[v]
			}
		}
		prio[u] = best + st.lib.Module(st.moduleOf[u]).Delay
	}
	horizon := st.cons.Deadline
	profile := make([]float64, horizon)
	busyUntil := make([]int, len(partition))
	placed := make([]bool, g.N())
	remaining := g.N()
	indeg := make([]int, g.N())
	for i := 0; i < g.N(); i++ {
		indeg[i] = len(g.Preds(cdfg.NodeID(i)))
	}
	for remaining > 0 {
		// Pick the highest-priority ready op.
		pick := -1
		for i := 0; i < g.N(); i++ {
			if placed[i] || indeg[i] > 0 {
				continue
			}
			if pick < 0 || prio[i] > prio[pick] {
				pick = i
			}
		}
		if pick < 0 {
			return -1, fmt.Errorf("core: clique mode: no ready operation (internal error)")
		}
		m := st.lib.Module(st.moduleOf[pick])
		earliest := 0
		for _, p := range g.Preds(cdfg.NodeID(pick)) {
			if e := st.start[p] + st.lib.Module(st.moduleOf[p]).Delay; e > earliest {
				earliest = e
			}
		}
		if b := busyUntil[instanceOf[pick]]; b > earliest {
			earliest = b
		}
		start := earliest
		for {
			if start+m.Delay > horizon {
				return pick, fmt.Errorf("core: clique mode: %q does not fit by T=%d: %w",
					g.Node(cdfg.NodeID(pick)).Name, horizon, ErrInfeasible)
			}
			ok := true
			if st.cons.PowerMax > 0 {
				for c := start; c < start+m.Delay; c++ {
					if profile[c]+m.Power > st.cons.PowerMax+1e-9 {
						ok = false
						break
					}
				}
			}
			if ok {
				break
			}
			start++
		}
		st.start[pick] = start
		for c := start; c < start+m.Delay; c++ {
			profile[c] += m.Power
		}
		busyUntil[instanceOf[pick]] = start + m.Delay
		placed[pick] = true
		remaining--
		for _, v := range g.Succs(cdfg.NodeID(pick)) {
			indeg[v]--
		}
	}
	return -1, nil
}
