package core

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/runner"
	"pchls/internal/sched"
)

// goldenBenchmarks are the seven paper benchmarks.
var goldenBenchmarks = []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"}

// goldenGrid reproduces, per benchmark, the union of the (T, P<) grid
// points the exploration surfaces in explore/parallel_test.go exercise:
// the Figure 2 power sweep at T = cp+3, the time sweep at P = 0.8*peak,
// and the 3x3 surface grid. The power values are accumulated with the
// same repeated additions the sweep engine uses, so they are
// bit-identical to the explored points.
func goldenGrid(cp int, peak float64) []Constraints {
	var grid []Constraints
	for p := peak / 4; p <= peak*1.25+1e-9; p += peak / 4 {
		grid = append(grid, Constraints{Deadline: cp + 3, PowerMax: p})
	}
	for T := cp; T <= cp+4; T += 2 {
		grid = append(grid, Constraints{Deadline: T, PowerMax: peak * 0.8})
	}
	for _, T := range []int{cp, cp + 2, cp + 5} {
		for _, p := range []float64{peak * 0.5, peak * 0.8, peak * 1.1} {
			grid = append(grid, Constraints{Deadline: T, PowerMax: p})
		}
	}
	return grid
}

// requireSameDesign compares two synthesis outcomes for byte-identical
// equivalence: same error disposition, identical serialized design,
// identical decision log, identical report.
func requireSameDesign(t *testing.T, label string, inc, legacy *Design, incErr, legacyErr error) {
	t.Helper()
	if (incErr != nil) != (legacyErr != nil) {
		t.Fatalf("%s: error disposition diverges:\n  incremental: %v\n  legacy:      %v", label, incErr, legacyErr)
	}
	if incErr != nil {
		return
	}
	ij, err := inc.JSON()
	if err != nil {
		t.Fatalf("%s: incremental JSON: %v", label, err)
	}
	lj, err := legacy.JSON()
	if err != nil {
		t.Fatalf("%s: legacy JSON: %v", label, err)
	}
	if !bytes.Equal(ij, lj) {
		t.Fatalf("%s: serialized designs diverge:\n--- incremental ---\n%s\n--- legacy ---\n%s", label, ij, lj)
	}
	if !reflect.DeepEqual(inc.Decisions, legacy.Decisions) {
		t.Fatalf("%s: decision logs diverge:\n  incremental: %+v\n  legacy:      %+v", label, inc.Decisions, legacy.Decisions)
	}
	if ir, lr := inc.Report(), legacy.Report(); ir != lr {
		t.Fatalf("%s: reports diverge:\n--- incremental ---\n%s\n--- legacy ---\n%s", label, ir, lr)
	}
}

// TestGoldenEquivalence gates the incremental evaluation engine: for
// every benchmark × (T, P<) grid point exercised by the exploration
// test surfaces, the engine and the DisableIncremental legacy path must
// produce byte-identical serialized designs and decision logs (or fail
// identically).
func TestGoldenEquivalence(t *testing.T) {
	lib := library.Table1()
	for _, name := range goldenBenchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			asap, err := sched.ASAP(g, sched.UniformFastest(lib))
			if err != nil {
				t.Fatal(err)
			}
			for _, cons := range goldenGrid(asap.Length(), asap.PeakPower()) {
				label := fmt.Sprintf("%s T=%d P<=%g", name, cons.Deadline, cons.PowerMax)
				inc, incErr := Synthesize(g, lib, cons, Config{})
				legacy, legacyErr := Synthesize(g, lib, cons, Config{DisableIncremental: true})
				requireSameDesign(t, label, inc, legacy, incErr, legacyErr)
			}
		})
	}
}

// TestGoldenEquivalenceUnconstrained covers the PowerMax <= 0 regime,
// where the invalidation rule is purely precedence-based.
func TestGoldenEquivalenceUnconstrained(t *testing.T) {
	lib := library.Table1()
	for _, name := range goldenBenchmarks {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		asap, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			t.Fatal(err)
		}
		for _, T := range []int{asap.Length(), asap.Length() + 4} {
			cons := Constraints{Deadline: T}
			label := fmt.Sprintf("%s T=%d unconstrained", name, T)
			inc, incErr := Synthesize(g, lib, cons, Config{})
			legacy, legacyErr := Synthesize(g, lib, cons, Config{DisableIncremental: true})
			requireSameDesign(t, label, inc, legacy, incErr, legacyErr)
		}
	}
}

// TestGoldenEquivalencePortfolio runs the SynthesizeBest meta-heuristic
// (portfolio + peak-shaving ladder) on both paths: every internal run
// must agree, so the winning design must too.
func TestGoldenEquivalencePortfolio(t *testing.T) {
	lib := library.Table1()
	g := bench.HAL()
	for _, p := range []float64{5, 10, 20, 30} {
		cons := Constraints{Deadline: 17, PowerMax: p}
		label := fmt.Sprintf("hal best T=17 P<=%g", p)
		inc, incErr := SynthesizeBest(g, lib, cons, Config{})
		legacy, legacyErr := SynthesizeBest(g, lib, cons, Config{DisableIncremental: true})
		requireSameDesign(t, label, inc, legacy, incErr, legacyErr)
	}
}

// TestGoldenEquivalenceParallelGrid replays the full benchmark × grid
// equivalence matrix with every point synthesized concurrently (both the
// incremental and the legacy path inside each worker), sharing one graph
// and one library across all workers, and requires the results to be
// byte-identical to a serial rerun. This is the aliasing gate for the
// scratch-reuse optimizations: per-state arenas, flat window tables and
// lookup slices must never leak between concurrent syntheses. Run under
// -race this emulates what Sweep/ExploreSurface do through runner.Map
// (the facade itself cannot be imported here without a cycle).
func TestGoldenEquivalenceParallelGrid(t *testing.T) {
	lib := library.Table1()
	type point struct {
		g    *cdfg.Graph
		name string
		cons Constraints
	}
	var points []point
	for _, name := range goldenBenchmarks {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		asap, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			t.Fatal(err)
		}
		for _, cons := range goldenGrid(asap.Length(), asap.PeakPower()) {
			points = append(points, point{g: g, name: name, cons: cons})
		}
	}
	type outcome struct {
		incJSON, legacyJSON []byte
		incErr, legacyErr   error
	}
	run := func(workers int) []outcome {
		res, err := runner.Map(context.Background(), len(points), runner.Config{Workers: workers},
			func(_ context.Context, i int) (outcome, error) {
				p := points[i]
				var o outcome
				var inc, legacy *Design
				inc, o.incErr = Synthesize(p.g, lib, p.cons, Config{})
				legacy, o.legacyErr = Synthesize(p.g, lib, p.cons, Config{DisableIncremental: true})
				if o.incErr == nil {
					if o.incJSON, o.incErr = inc.JSON(); o.incErr != nil {
						return o, o.incErr
					}
				}
				if o.legacyErr == nil {
					if o.legacyJSON, o.legacyErr = legacy.JSON(); o.legacyErr != nil {
						return o, o.legacyErr
					}
				}
				return o, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	parallel := run(8)
	serial := run(1)
	for i, p := range points {
		label := fmt.Sprintf("%s T=%d P<=%g", p.name, p.cons.Deadline, p.cons.PowerMax)
		if (parallel[i].incErr != nil) != (serial[i].incErr != nil) ||
			(parallel[i].legacyErr != nil) != (serial[i].legacyErr != nil) {
			t.Fatalf("%s: parallel/serial error disposition diverges: %v/%v vs %v/%v",
				label, parallel[i].incErr, parallel[i].legacyErr, serial[i].incErr, serial[i].legacyErr)
		}
		if !bytes.Equal(parallel[i].incJSON, serial[i].incJSON) {
			t.Fatalf("%s: incremental design differs between parallel and serial run", label)
		}
		if !bytes.Equal(parallel[i].legacyJSON, serial[i].legacyJSON) {
			t.Fatalf("%s: legacy design differs between parallel and serial run", label)
		}
		if parallel[i].incErr == nil && !bytes.Equal(parallel[i].incJSON, parallel[i].legacyJSON) {
			t.Fatalf("%s: incremental and legacy designs diverge under concurrency", label)
		}
	}
}

// TestGoldenEquivalenceCliqueMode pins the static clique-partitioning
// baseline, whose merge pass now runs over the engine's incrementally
// maintained reservation lists.
func TestGoldenEquivalenceCliqueMode(t *testing.T) {
	lib := library.Table1()
	for _, name := range goldenBenchmarks {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		asap, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			t.Fatal(err)
		}
		cons := Constraints{Deadline: asap.Length() + 3, PowerMax: asap.PeakPower() * 0.8}
		label := fmt.Sprintf("%s clique T=%d P<=%g", name, cons.Deadline, cons.PowerMax)
		inc, incErr := SynthesizeCliquePartition(g, lib, cons, Config{})
		legacy, legacyErr := SynthesizeCliquePartition(g, lib, cons, Config{DisableIncremental: true})
		requireSameDesign(t, label, inc, legacy, incErr, legacyErr)
	}
}
