package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

func TestOracleSimpleSchedule(t *testing.T) {
	// Two adds overlapping in time need 2 adders; a third, later add
	// shares: the oracle must report 2 instances.
	g := cdfg.New("t")
	i1 := g.MustAddNode("i1", cdfg.Input)
	i2 := g.MustAddNode("i2", cdfg.Input)
	a1 := g.MustAddNode("a1", cdfg.Add)
	a2 := g.MustAddNode("a2", cdfg.Add)
	a3 := g.MustAddNode("a3", cdfg.Add)
	g.MustAddEdge(i1, a1)
	g.MustAddEdge(i2, a2)
	g.MustAddEdge(a1, a3)
	g.MustAddEdge(a2, a3)
	lib := library.Table1()
	s, err := sched.ASAP(g, sched.UniformSmallest(lib))
	if err != nil {
		t.Fatal(err)
	}
	area, counts, err := MinFUAreaForSchedule(s, lib)
	if err != nil {
		t.Fatal(err)
	}
	if counts[library.NameAdd] != 2 {
		t.Fatalf("adders = %d, want 2 (counts %v)", counts[library.NameAdd], counts)
	}
	if counts[library.NameInput] != 2 {
		t.Fatalf("inputs = %d, want 2", counts[library.NameInput])
	}
	wantArea := 2*87.0 + 2*16.0
	if area != wantArea {
		t.Fatalf("area = %g, want %g", area, wantArea)
	}
}

func TestOracleBackToBackSharing(t *testing.T) {
	// An op starting exactly when another ends shares one instance.
	g := cdfg.New("t")
	i := g.MustAddNode("i", cdfg.Input)
	a1 := g.MustAddNode("a1", cdfg.Add)
	a2 := g.MustAddNode("a2", cdfg.Add)
	g.MustAddEdge(i, a1)
	g.MustAddEdge(a1, a2)
	lib := library.Table1()
	s, _ := sched.ASAP(g, sched.UniformSmallest(lib))
	_, counts, err := MinFUAreaForSchedule(s, lib)
	if err != nil {
		t.Fatal(err)
	}
	if counts[library.NameAdd] != 1 {
		t.Fatalf("back-to-back adds need %d adders, want 1", counts[library.NameAdd])
	}
}

func TestOracleUnknownModule(t *testing.T) {
	g := cdfg.New("t")
	g.MustAddNode("a", cdfg.Add)
	lib := library.Table1()
	s, _ := sched.ASAP(g, sched.UniformSmallest(lib))
	s.Module[0] = "bogus"
	if _, _, err := MinFUAreaForSchedule(s, lib); err == nil {
		t.Fatal("unknown module accepted")
	}
}

func TestDesignsNeverBeatOracle(t *testing.T) {
	// Every synthesized design's FU area must be >= the oracle minimum for
	// its own schedule; on the benchmark set the greedy + merge pass is
	// expected to close the gap entirely.
	cases := []struct {
		name string
		T    int
		P    float64
	}{
		{"hal", 10, 20}, {"hal", 17, 8},
		{"cosine", 15, 30}, {"elliptic", 22, 15},
		{"fir16", 30, 0}, {"diffeq2", 30, 15},
	}
	for _, tc := range cases {
		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Synthesize(g, library.Table1(), Constraints{Deadline: tc.T, PowerMax: tc.P}, Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		gap, err := FUAreaGap(d)
		if err != nil {
			t.Fatal(err)
		}
		if gap < -1e-9 {
			t.Fatalf("%s: design FU area beats the oracle by %.1f — oracle or binder broken", tc.name, -gap)
		}
		if gap > 0 {
			t.Errorf("%s T=%d P=%g: binding gap %.1f above the oracle for its schedule", tc.name, tc.T, tc.P, gap)
		}
	}
}

func TestQuickOracleLowerBound(t *testing.T) {
	lib := library.Table1()
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := bench.Random(rng, bench.RandomConfig{Nodes: int(szRaw%12) + 2, MaxWidth: 3})
		cp, _ := g.CriticalPath(func(n cdfg.Node) int {
			if n.Op == cdfg.Mul {
				return 4
			}
			return 1
		})
		d, err := Synthesize(g, lib, Constraints{Deadline: cp + 4}, Config{})
		if err != nil {
			return true
		}
		gap, err := FUAreaGap(d)
		return err == nil && gap >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
