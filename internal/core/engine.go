package core

import (
	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// winEntry caches the result of one override window derivation for a
// (node, module) candidate. earlyStart/lateStart keep the full start
// arrays of the pasap/palap pair that produced the window: an entry
// stays provably valid across a commitment of node u at cycle s exactly
// when both runs already placed u at s under the committed module —
// fixing a node where the greedy schedulers put it anyway changes
// neither schedule (power sums are symmetric and added power never opens
// earlier slots), so the cached window is byte-identical to a recompute.
// Infeasible results (ok=false) carry no arrays and are dropped on the
// next commit.
type winEntry struct {
	w          sched.Window
	ok         bool
	earlyStart []int
	lateStart  []int
}

// engine owns the synthesizer's cached, invalidation-tracked artifacts:
// the committed per-cycle power profile (updated in O(delay) on
// commit/backtrack), the per-instance reservation lists, and the window
// cache with its dirty set. The legacy recompute-everything path
// (Config.DisableIncremental) runs with a nil engine; the synthesized
// design is byte-identical either way — the window cache is audited
// against a full pasap probe every iteration and falls back to the full
// derivation on any disagreement.
type engine struct {
	// horizon is the profile length (the latency constraint T).
	horizon int
	// profile is the per-cycle power drawn by committed operations.
	profile []float64
	// resv holds the busy intervals of each instance, parallel to
	// state.fus.
	resv [][]interval

	// warm reports whether baseWin/over describe the current state; it is
	// cleared by any backtrack or abandoned derivation.
	warm bool
	// baseValid reports that the last commitment provably left the whole
	// base window pair unchanged (the post-commit probe equals the
	// previous one and the late schedule already had the committed node
	// at its committed start), so the next iteration can reuse baseWin
	// without any scheduler run.
	baseValid bool
	// probe is the exact post-commit pasap schedule — the base Early
	// schedule of the next iteration, and the auditor for the pinned
	// derivation.
	probe *sched.Schedule
	// assumed snapshots the per-node module assumptions at cache-warming
	// time; entry validity across a commit requires the committed module
	// to equal the assumption the cached runs used.
	assumed []int
	// baseWin is the last derived window of every node under the assumed
	// modules.
	baseWin []sched.Window
	// over caches the override windows in a flat (node, module) table:
	// over[v*nm+mi] for a non-assumed candidate module mi of node v, with
	// overSet as the parallel presence bit.
	over    []winEntry
	overSet []bool
	// dirty marks nodes whose windows may have changed since baseWin/over
	// were derived.
	dirty []bool

	// reach is the precedence reachability bitmap (reach.Get(u, v) means
	// v is reachable from u).
	reach cdfg.Bitmat
	// minStart/maxEnd bound, per node, every start/completion time any
	// schedule under the deadline can assign, using minimum candidate
	// delays; they are the conservative spans of the power-coupling
	// fixpoint.
	minStart, maxEnd []int
	// maxDelay is the largest candidate delay of each node, used to cover
	// a node's previous window span when seeding the fixpoint.
	maxDelay []int

	// markDirtyAfterCommit scratch, recycled across commits.
	changed []bool
	queue   []int
}

// newEngine builds the engine for a fresh state: empty profile and
// reservations, cold window cache, and the static precedence artifacts
// (reachability and conservative spans).
func newEngine(st *state) (*engine, error) {
	n := st.g.N()
	reach, err := st.g.Reachability()
	if err != nil {
		return nil, err
	}
	minDelay := make([]int, n)
	maxDelay := make([]int, n)
	for i := 0; i < n; i++ {
		for _, mi := range st.lib.Candidates(st.g.Node(cdfg.NodeID(i)).Op) {
			d := st.lib.Module(mi).Delay
			if minDelay[i] == 0 || d < minDelay[i] {
				minDelay[i] = d
			}
			if d > maxDelay[i] {
				maxDelay[i] = d
			}
		}
	}
	topo, err := st.g.TopoOrder()
	if err != nil {
		return nil, err
	}
	minStart := make([]int, n)
	downAfter := make([]int, n)
	for _, v := range topo {
		for _, p := range st.g.Preds(v) {
			if e := minStart[p] + minDelay[p]; e > minStart[v] {
				minStart[v] = e
			}
		}
	}
	maxEnd := make([]int, n)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, s := range st.g.Succs(v) {
			if e := downAfter[s] + minDelay[s]; e > downAfter[v] {
				downAfter[v] = e
			}
		}
		maxEnd[v] = st.cons.Deadline - downAfter[v]
	}
	return &engine{
		horizon:  st.cons.Deadline,
		profile:  make([]float64, st.cons.Deadline),
		warm:     false,
		baseWin:  make([]sched.Window, n),
		over:     make([]winEntry, n*st.nm),
		overSet:  make([]bool, n*st.nm),
		dirty:    make([]bool, n),
		reach:    reach,
		minStart: minStart,
		maxEnd:   maxEnd,
		maxDelay: maxDelay,
		changed:  make([]bool, st.cons.Deadline),
	}, nil
}

// applyCommit folds one committed decision into the profile and the
// reservation lists.
func (e *engine) applyCommit(d Decision, m *library.Module) {
	for c := d.Start; c < d.Start+m.Delay && c < e.horizon; c++ {
		e.profile[c] += m.Power
	}
	if d.NewFU {
		e.resv = append(e.resv, nil)
	}
	e.resv[d.FU] = append(e.resv[d.FU], interval{d.Start, d.Start + m.Delay})
}

// revertCommit undoes applyCommit for the most recent decision (must be
// d, bound to module m).
func (e *engine) revertCommit(d Decision, m *library.Module) {
	for c := d.Start; c < d.Start+m.Delay && c < e.horizon; c++ {
		e.profile[c] -= m.Power
	}
	lst := e.resv[d.FU]
	e.resv[d.FU] = lst[:len(lst)-1]
	if d.NewFU {
		e.resv = e.resv[:len(e.resv)-1]
	}
}

// invalidateWindows drops the whole window cache (backtracks, abandoned
// derivations); profile and reservations stay valid.
func (e *engine) invalidateWindows() {
	e.warm = false
	e.baseValid = false
	e.probe = nil
	for i := range e.dirty {
		e.dirty[i] = false
	}
	for i := range e.overSet {
		if e.overSet[i] {
			e.overSet[i] = false
			e.over[i] = winEntry{} // release the cached start arrays
		}
	}
}

// sameStarts reports whether two schedules place every node at the same
// start cycle.
func sameStarts(a, b *sched.Schedule) bool {
	if a == nil || b == nil || len(a.Start) != len(b.Start) {
		return false
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			return false
		}
	}
	return true
}

// computeEntry derives the cacheable override window entry for candidate
// (v, mi): the window plus the full start arrays of the pair that
// produced it. Width-zero windows cache as infeasible with their arrays
// kept — if the runs provably cannot change, neither can the verdict.
func (st *state) computeEntry(v cdfg.NodeID, mi int) winEntry {
	early, late, ok := st.windowSchedsFor(v, mi)
	if !ok {
		return winEntry{}
	}
	w := sched.Window{Early: early.Start[v], Late: late.Start[v]}
	return winEntry{w: w, ok: w.Width() >= 1, earlyStart: early.Start, lateStart: late.Start}
}

// rebuild recomputes profile and reservations from the committed state —
// the clique-partition path commits in bulk without going through
// commit(), then calls this before the merge pass.
func (e *engine) rebuild(st *state) {
	for c := range e.profile {
		e.profile[c] = 0
	}
	e.resv = make([][]interval, len(st.fus))
	for f := range st.fus {
		for _, op := range st.fus[f].ops {
			m := st.lib.Module(st.moduleOf[op])
			e.resv[f] = append(e.resv[f], interval{st.start[op], st.start[op] + m.Delay})
			for c := st.start[op]; c < st.start[op]+m.Delay && c < e.horizon; c++ {
				e.profile[c] += m.Power
			}
		}
	}
}

// markDirtyAfterCommit computes which nodes' windows the commitment of d
// may have changed and marks them dirty.
//
// Without a power cap, windows are pure functions of precedence and the
// fixed set, so exactly the committed node's ancestors and descendants
// can move. With a cap the disturbance also travels through the shared
// power profile: freeing or occupying cycles can move any node whose
// feasible span touches them, and each moved node drags its own
// precedence relatives along. That cascade is covered by a fixpoint over
// conservative spans — every dirty node contributes its span to the set
// of disturbed cycles and its precedence relatives to the dirty set,
// until no clean node's span overlaps a disturbed cycle.
func (st *state) markDirtyAfterCommit(d Decision) {
	eng := st.eng
	n := st.g.N()
	u := int(d.Node)
	if st.cons.PowerMax <= 0 {
		for v := 0; v < n; v++ {
			if !st.committed[v] && (eng.reach.Get(u, v) || eng.reach.Get(v, u)) {
				eng.dirty[v] = true
			}
		}
		return
	}
	changed := eng.changed
	for c := range changed {
		changed[c] = false
	}
	mark := func(lo, hi int) { // [lo, hi)
		if lo < 0 {
			lo = 0
		}
		if hi > len(changed) {
			hi = len(changed)
		}
		for c := lo; c < hi; c++ {
			changed[c] = true
		}
	}
	span := func(v int) (int, int) {
		if st.committed[v] {
			m := st.lib.Module(st.moduleOf[v])
			return st.start[v], st.start[v] + m.Delay
		}
		return eng.minStart[v], eng.maxEnd[v]
	}
	overlapsChanged := func(lo, hi int) bool {
		if lo < 0 {
			lo = 0
		}
		if hi > len(changed) {
			hi = len(changed)
		}
		for c := lo; c < hi; c++ {
			if changed[c] {
				return true
			}
		}
		return false
	}

	queue := eng.queue[:0]
	add := func(v int) {
		if !eng.dirty[v] && !st.committed[v] {
			eng.dirty[v] = true
			queue = append(queue, v)
		}
	}
	// Seeds: the cycles the committed node now occupies, the whole span
	// its previous base window could have covered, and its precedence
	// relatives.
	m := st.lib.Module(st.moduleOf[u])
	mark(d.Start, d.Start+m.Delay)
	mark(eng.baseWin[u].Early, eng.baseWin[u].Late+eng.maxDelay[u])
	for v := 0; v < n; v++ {
		if eng.reach.Get(u, v) || eng.reach.Get(v, u) {
			add(v)
		}
	}
	for {
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for v := 0; v < n; v++ {
				if eng.reach.Get(x, v) || eng.reach.Get(v, x) {
					add(v)
				}
			}
			lo, hi := span(x)
			mark(lo, hi)
		}
		progressed := false
		for v := 0; v < n; v++ {
			if eng.dirty[v] || st.committed[v] {
				continue
			}
			if lo, hi := span(v); overlapsChanged(lo, hi) {
				add(v)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	eng.queue = queue[:0] // keep the grown capacity for the next commit
}
