package core

import (
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/sched"
)

// refineInitialModules establishes the initial per-operation module
// assumptions. It starts from the fastest power-feasible module everywhere
// (the most latency-optimistic uniform choice) and, when the pasap probe
// misses the deadline, greedily switches single operations to lower-power
// modules while that strictly shortens the power-constrained schedule —
// lower-power units relieve per-cycle congestion at the price of their own
// latency, which is exactly the operator speed/energy/area trade the paper
// explores. It returns ErrInfeasible when no assignment reachable by these
// single-op descents meets the deadline.
func (st *state) refineInitialModules() error {
	probe := func() (int, bool) {
		st.stats.SchedulerRuns++
		s, err := sched.PASAP(st.g, st.baseBind, st.schedOpts())
		if err != nil {
			return 0, false
		}
		return s.Length(), true
	}
	length, ok := probe()
	if ok && length <= st.cons.Deadline {
		if !st.cfg.SkipAreaDescent {
			st.areaDescent()
		}
		return nil
	}
	if !ok {
		length = 1 << 30
	}
	maxRounds := st.g.N() * st.lib.Len()
	for round := 0; round < maxRounds; round++ {
		bestNode, bestModule, bestLen := -1, -1, length
		for i := 0; i < st.g.N(); i++ {
			cur := st.lib.Module(st.moduleOf[i])
			for _, mi := range st.lib.Candidates(st.g.Node(cdfg.NodeID(i)).Op) {
				alt := st.lib.Module(mi)
				if mi == st.moduleOf[i] || alt.Power >= cur.Power {
					continue
				}
				if st.cons.PowerMax > 0 && alt.Power > st.cons.PowerMax+1e-9 {
					continue
				}
				saved := st.moduleOf[i]
				st.setModule(cdfg.NodeID(i), mi)
				if l, ok := probe(); ok && l < bestLen {
					bestNode, bestModule, bestLen = i, mi, l
				}
				st.setModule(cdfg.NodeID(i), saved)
			}
		}
		if bestNode < 0 {
			break
		}
		st.setModule(cdfg.NodeID(bestNode), bestModule)
		length = bestLen
		if length <= st.cons.Deadline {
			if !st.cfg.SkipAreaDescent {
				st.areaDescent()
			}
			return nil
		}
	}
	return fmt.Errorf("core: pasap length %d exceeds T = %d for every initial module assignment tried: %w",
		length, st.cons.Deadline, ErrInfeasible)
}

// areaDescent refines the initial module assumptions toward smaller-area
// modules: any single operation is switched to a cheaper (power-feasible)
// module whenever the pasap probe still meets the deadline afterwards.
// Since datapath area is the synthesis objective and slower modules both
// cost less and draw less power, this orients the whole greedy search
// toward the cheap end of the operator trade-off; the per-candidate
// windows still let individual operations upgrade to fast modules where
// the schedule needs them.
func (st *state) areaDescent() {
	probe := func() bool {
		st.stats.SchedulerRuns++
		s, err := sched.PASAP(st.g, st.baseBind, st.schedOpts())
		return err == nil && s.Length() <= st.cons.Deadline
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < st.g.N(); i++ {
			if st.committed[cdfg.NodeID(i)] {
				continue
			}
			cur := st.lib.Module(st.moduleOf[i])
			bestMi := -1
			for _, mi := range st.lib.Candidates(st.g.Node(cdfg.NodeID(i)).Op) {
				alt := st.lib.Module(mi)
				if mi == st.moduleOf[i] || alt.Area >= cur.Area {
					continue
				}
				if st.cons.PowerMax > 0 && alt.Power > st.cons.PowerMax+1e-9 {
					continue
				}
				if bestMi >= 0 && alt.Area >= st.lib.Module(bestMi).Area {
					continue
				}
				saved := st.moduleOf[i]
				st.setModule(cdfg.NodeID(i), mi)
				if probe() {
					bestMi = mi
				}
				st.setModule(cdfg.NodeID(i), saved)
			}
			if bestMi >= 0 {
				st.setModule(cdfg.NodeID(i), bestMi)
				changed = true
			}
		}
	}
}

// mergePass tries to merge functional-unit instances of the same module
// whose reservations do not overlap, keeping a merge whenever it reduces
// the exact datapath area (functional units, registers and interconnect).
// It runs after all operations are committed.
func (st *state) mergePass() {
	area := func() (float64, bool) {
		d, err := st.finish()
		if err != nil {
			return 0, false
		}
		return d.Area(), true
	}
	cur, ok := area()
	if !ok {
		return
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(st.fus); i++ {
			for j := i + 1; j < len(st.fus); j++ {
				if st.fus[i].module != st.fus[j].module {
					continue
				}
				if st.overlaps(i, j) {
					continue
				}
				saved := st.snapshotFUs()
				st.mergeFUs(i, j)
				if a, ok := area(); ok && a < cur-1e-9 {
					cur = a
					changed = true
					j-- // instance j was removed; re-examine this index
				} else {
					st.restoreFUs(saved)
				}
			}
		}
	}
}

// overlaps reports whether any reservation of instance i overlaps one of j.
// The two reservation lists are read simultaneously, so each gets its own
// scratch buffer on the legacy path.
func (st *state) overlaps(i, j int) bool {
	for _, a := range st.reservationsInto(i, &st.busyA) {
		for _, b := range st.reservationsInto(j, &st.busyB) {
			if a.s < b.e && b.s < a.e {
				return true
			}
		}
	}
	return false
}

type fuSnapshot struct {
	fus  []instance
	fuOf []int
	resv [][]interval
}

func (st *state) snapshotFUs() fuSnapshot {
	s := fuSnapshot{
		fus:  make([]instance, len(st.fus)),
		fuOf: append([]int(nil), st.fuOf...),
	}
	for i, f := range st.fus {
		s.fus[i] = instance{module: f.module, ops: append([]cdfg.NodeID(nil), f.ops...)}
	}
	if st.eng != nil {
		s.resv = make([][]interval, len(st.eng.resv))
		for i, r := range st.eng.resv {
			s.resv[i] = append([]interval(nil), r...)
		}
	}
	return s
}

func (st *state) restoreFUs(s fuSnapshot) {
	st.fus = s.fus
	st.fuOf = s.fuOf
	if st.eng != nil {
		st.eng.resv = s.resv
	}
}

// mergeFUs moves all ops of instance j onto instance i and deletes j,
// renumbering fuOf (and the engine's reservation lists alongside).
func (st *state) mergeFUs(i, j int) {
	st.fus[i].ops = append(st.fus[i].ops, st.fus[j].ops...)
	st.fus = append(st.fus[:j], st.fus[j+1:]...)
	if st.eng != nil {
		st.eng.resv[i] = append(st.eng.resv[i], st.eng.resv[j]...)
		st.eng.resv = append(st.eng.resv[:j], st.eng.resv[j+1:]...)
	}
	for n := range st.fuOf {
		switch {
		case st.fuOf[n] == j:
			st.fuOf[n] = i
		case st.fuOf[n] > j:
			st.fuOf[n]--
		}
	}
}
