package core

import (
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// newTestState builds an initialized synthesizer state without running the
// main loop, for unit-testing the decision internals.
func newTestState(t *testing.T, g *cdfg.Graph, cons Constraints) *state {
	t.Helper()
	lib := library.Table1()
	st := &state{
		g: g, lib: lib, cons: cons, cfg: Config{},
		committed: make([]bool, g.N()),
		start:     make([]int, g.N()),
		moduleOf:  make([]int, g.N()),
		fuOf:      make([]int, g.N()),
	}
	for i := range st.fuOf {
		st.fuOf[i] = -1
	}
	for _, n := range g.Nodes() {
		mi, err := st.fastestFeasible(n.Op)
		if err != nil {
			t.Fatal(err)
		}
		st.moduleOf[n.ID] = mi
	}
	st.initTables()
	return st
}

func TestAmortizedArea(t *testing.T) {
	g := bench.HAL() // 6 muls, 2 adds, 2 subs, 1 cmp
	st := newTestState(t, g, Constraints{Deadline: 10})
	var parIdx, serIdx, aluIdx int
	for _, mi := range st.lib.Candidates(cdfg.Mul) {
		switch st.lib.Module(mi).Name {
		case library.NameMulPar:
			parIdx = mi
		case library.NameMulSer:
			serIdx = mi
		}
	}
	for _, mi := range st.lib.Candidates(cdfg.Add) {
		if st.lib.Module(mi).Name == library.NameALU {
			aluIdx = mi
		}
	}
	// Parallel mult: potential 6 muls, slots 10/2 = 5 -> 339/5.
	if got := st.amortizedArea(parIdx); got != 339.0/5 {
		t.Errorf("parallel mult amortized = %g, want %g", got, 339.0/5)
	}
	// Serial mult: slots 10/4 = 2 -> 103/2.
	if got := st.amortizedArea(serIdx); got != 103.0/2 {
		t.Errorf("serial mult amortized = %g, want %g", got, 103.0/2)
	}
	// ALU: potential 2+2+1 = 5 ops, slots 10 -> 97/5.
	if got := st.amortizedArea(aluIdx); got != 97.0/5 {
		t.Errorf("ALU amortized = %g, want %g", got, 97.0/5)
	}
	// Committing operations shrinks the potential.
	muls := g.NodesOf(cdfg.Mul)
	for _, id := range muls[:4] {
		st.committed[id] = true
	}
	if got := st.amortizedArea(parIdx); got != 339.0/2 {
		t.Errorf("parallel mult amortized after commits = %g, want %g", got, 339.0/2)
	}
}

func TestMuxEstimate(t *testing.T) {
	// Two adds with different producers sharing one FU: both operand
	// ports change sources (+2) plus the result-side write (+1) = 3 mux
	// inputs at 4 area each.
	g := cdfg.New("t")
	i1 := g.MustAddNode("i1", cdfg.Input)
	i2 := g.MustAddNode("i2", cdfg.Input)
	i3 := g.MustAddNode("i3", cdfg.Input)
	i4 := g.MustAddNode("i4", cdfg.Input)
	a1 := g.MustAddNode("a1", cdfg.Add)
	a2 := g.MustAddNode("a2", cdfg.Add)
	g.MustAddEdge(i1, a1)
	g.MustAddEdge(i2, a1)
	g.MustAddEdge(i3, a2)
	g.MustAddEdge(i4, a2)
	st := newTestState(t, g, Constraints{Deadline: 10})
	addIdx := st.moduleOf[a1]
	st.fus = append(st.fus, instance{module: addIdx, ops: []cdfg.NodeID{a1}})
	st.committed[a1] = true
	st.fuOf[a1] = 0
	if got := st.muxEstimate(a2, 0); got != 3*4.0 {
		t.Errorf("muxEstimate = %g, want 12", got)
	}
	// Empty instance: free.
	st.fus = append(st.fus, instance{module: addIdx})
	if got := st.muxEstimate(a2, 1); got != 0 {
		t.Errorf("muxEstimate on empty FU = %g, want 0", got)
	}
}

func TestFreeSlot(t *testing.T) {
	g := bench.HAL()
	st := newTestState(t, g, Constraints{Deadline: 10, PowerMax: 100})
	// One busy interval [2,4): a 2-cycle op with window [0,6] fits at 0.
	busy := []interval{{2, 4}}
	if tt, ok := st.freeSlot(busy, sched.Window{Early: 0, Late: 6}, 2, 8.1); !ok || tt != 0 {
		t.Fatalf("freeSlot = %d, %v; want 0", tt, ok)
	}
	// Window starting at 1: [1,3) overlaps, [2,4) overlaps, 4 is free.
	if tt, ok := st.freeSlot(busy, sched.Window{Early: 1, Late: 6}, 2, 8.1); !ok || tt != 4 {
		t.Fatalf("freeSlot = %d, %v; want 4", tt, ok)
	}
	// No room before the deadline: a 2-cycle op at window [9,9] ends at 11.
	if _, ok := st.freeSlot(nil, sched.Window{Early: 9, Late: 9}, 2, 8.1); ok {
		t.Fatal("slot beyond deadline accepted")
	}
	// Power-blocked: commit an op drawing 8.1 at cycles 0-1, cap 10.
	st.cons.PowerMax = 10
	mul := g.NodesOf(cdfg.Mul)[0]
	st.committed[mul] = true
	st.start[mul] = 0
	if tt, ok := st.freeSlot(nil, sched.Window{Early: 0, Late: 6}, 1, 8.1); !ok || tt != 2 {
		t.Fatalf("power-blocked freeSlot = %d, %v; want 2", tt, ok)
	}
}

func TestFastestFeasibleRespectsPowerCap(t *testing.T) {
	g := bench.HAL()
	st := newTestState(t, g, Constraints{Deadline: 20, PowerMax: 5})
	mi, err := st.fastestFeasible(cdfg.Mul)
	if err != nil {
		t.Fatal(err)
	}
	if st.lib.Module(mi).Name != library.NameMulSer {
		t.Fatalf("under P<=5 the serial mult is the only feasible one, got %q", st.lib.Module(mi).Name)
	}
	st.cons.PowerMax = 1
	if _, err := st.fastestFeasible(cdfg.Mul); err == nil {
		t.Fatal("P<=1 accepted for multiplication")
	}
}
