package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
)

func mustSynth(t *testing.T, g *cdfg.Graph, T int, P float64) *Design {
	t.Helper()
	d, err := Synthesize(g, library.Table1(), Constraints{Deadline: T, PowerMax: P}, Config{})
	if err != nil {
		t.Fatalf("Synthesize(%s, T=%d, P=%g): %v", g.Name, T, P, err)
	}
	return d
}

// checkDesign verifies the invariants every returned design must satisfy.
func checkDesign(t *testing.T, d *Design, T int, P float64) {
	t.Helper()
	if err := d.Schedule.Validate(P, T); err != nil {
		t.Fatalf("design schedule invalid: %v", err)
	}
	if len(d.FUOf) != d.Graph.N() {
		t.Fatalf("FUOf covers %d of %d nodes", len(d.FUOf), d.Graph.N())
	}
	for _, n := range d.Graph.Nodes() {
		fu := d.FUs[d.FUOf[n.ID]]
		if !fu.Module.Implements(n.Op) {
			t.Fatalf("node %q (%s) bound to module %q", n.Name, n.Op, fu.Module.Name)
		}
	}
	if d.Area() != d.Datapath.FUArea+d.Datapath.RegArea+d.Datapath.MuxArea {
		t.Fatal("area breakdown inconsistent")
	}
	if len(d.Decisions) != d.Graph.N() {
		t.Fatalf("%d decisions for %d nodes", len(d.Decisions), d.Graph.N())
	}
}

func TestSynthesizeHALBasic(t *testing.T) {
	d := mustSynth(t, bench.HAL(), 10, 0)
	checkDesign(t, d, 10, 0)
	if d.Schedule.Length() > 10 {
		t.Fatalf("length %d > 10", d.Schedule.Length())
	}
	// Sharing must happen: fewer FUs than nodes.
	if len(d.FUs) >= d.Graph.N() {
		t.Fatalf("no sharing: %d FUs for %d nodes", len(d.FUs), d.Graph.N())
	}
}

func TestSynthesizeRespectsPowerCap(t *testing.T) {
	for _, p := range []float64{25, 20, 18} {
		d := mustSynth(t, bench.HAL(), 10, p)
		checkDesign(t, d, 10, p)
		if peak := d.Schedule.PeakPower(); peak > p {
			t.Fatalf("P<=%g: peak %g", p, peak)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := mustSynth(t, bench.Elliptic(), 22, 15)
	b := mustSynth(t, bench.Elliptic(), 22, 15)
	if a.Report() != b.Report() {
		t.Fatal("two identical syntheses produced different designs")
	}
}

func TestSynthesizeAllBenchmarksFigure2Points(t *testing.T) {
	cases := []struct {
		name string
		T    int
		P    float64
	}{
		{"hal", 10, 0}, {"hal", 10, 20}, {"hal", 17, 0}, {"hal", 17, 8},
		{"cosine", 12, 0}, {"cosine", 12, 40},
		{"cosine", 15, 0}, {"cosine", 15, 30},
		{"cosine", 19, 0}, {"cosine", 19, 20},
		{"elliptic", 22, 0}, {"elliptic", 22, 15},
	}
	for _, tc := range cases {
		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		d := mustSynth(t, g, tc.T, tc.P)
		checkDesign(t, d, tc.T, tc.P)
	}
}

func TestSynthesizeInfeasiblePower(t *testing.T) {
	// Every module for * draws at least 2.7: P = 1 is hopeless.
	_, err := Synthesize(bench.HAL(), library.Table1(), Constraints{Deadline: 20, PowerMax: 1}, Config{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSynthesizeInfeasibleDeadline(t *testing.T) {
	_, err := Synthesize(bench.HAL(), library.Table1(), Constraints{Deadline: 4, PowerMax: 0}, Config{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSynthesizeBadDeadline(t *testing.T) {
	if _, err := Synthesize(bench.HAL(), library.Table1(), Constraints{Deadline: 0}, Config{}); err == nil {
		t.Fatal("accepted deadline 0")
	}
}

func TestSynthesizeUncoveredLibrary(t *testing.T) {
	lib, err := library.Table1Without(library.NameMulSer, library.NameMulPar)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Synthesize(bench.HAL(), lib, Constraints{Deadline: 10}, Config{})
	if !errors.Is(err, ErrUncovered) {
		t.Fatalf("err = %v, want ErrUncovered", err)
	}
}

func TestSynthesizeInvalidGraph(t *testing.T) {
	g := cdfg.New("bad")
	a := g.MustAddNode("a", cdfg.Add)
	b := g.MustAddNode("b", cdfg.Add)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a) // cycle
	if _, err := Synthesize(g, library.Table1(), Constraints{Deadline: 5}, Config{}); err == nil {
		t.Fatal("accepted cyclic graph")
	}
}

func TestRepairLockTriggersAndDisableRepairFails(t *testing.T) {
	// hal at T=17, P=5.5 is known to need the backtrack-and-lock repair.
	g := bench.HAL()
	cons := Constraints{Deadline: 17, PowerMax: 5.5}
	d, err := Synthesize(g, library.Table1(), cons, Config{})
	if err != nil {
		t.Fatalf("repair-needing case failed: %v", err)
	}
	if !d.Locked {
		t.Skip("constraint set no longer triggers repair; pick a tighter point")
	}
	checkDesign(t, d, cons.Deadline, cons.PowerMax)
	if _, err := Synthesize(g, library.Table1(), cons, Config{DisableRepair: true}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("DisableRepair err = %v, want ErrInfeasible", err)
	}
}

func TestTighterPowerNeverBeatsUnconstrainedByMuch(t *testing.T) {
	// Sanity on the objective: the unconstrained area should be no worse
	// than a tightly constrained one by more than the noise margin of the
	// greedy (the constrained design is also valid unconstrained).
	free, err := SynthesizeBest(bench.HAL(), library.Table1(), Constraints{Deadline: 17}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := SynthesizeBest(bench.HAL(), library.Table1(), Constraints{Deadline: 17, PowerMax: 8}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if free.Area() > tight.Area()*1.15 {
		t.Fatalf("unconstrained area %.1f much worse than constrained %.1f", free.Area(), tight.Area())
	}
}

func TestSynthesizeBestNotWorseThanSinglePass(t *testing.T) {
	for _, tc := range []struct {
		name string
		T    int
		P    float64
	}{{"hal", 10, 0}, {"hal", 17, 8}, {"elliptic", 22, 15}} {
		g, _ := bench.ByName(tc.name)
		cons := Constraints{Deadline: tc.T, PowerMax: tc.P}
		single, err := Synthesize(g, library.Table1(), cons, Config{})
		if err != nil {
			t.Fatal(err)
		}
		best, err := SynthesizeBest(g, library.Table1(), cons, Config{})
		if err != nil {
			t.Fatal(err)
		}
		checkDesign(t, best, tc.T, tc.P)
		if best.Cons != cons {
			t.Fatalf("SynthesizeBest reports cons %+v, want %+v", best.Cons, cons)
		}
		if best.Area() > single.Area() {
			t.Fatalf("%s: SynthesizeBest %.1f worse than Synthesize %.1f", tc.name, best.Area(), single.Area())
		}
	}
}

func TestSharedFUsNeverOverlap(t *testing.T) {
	d := mustSynth(t, bench.Cosine(), 15, 30)
	for fi, fu := range d.FUs {
		for i := 0; i < len(fu.Ops); i++ {
			for j := i + 1; j < len(fu.Ops); j++ {
				a, b := fu.Ops[i], fu.Ops[j]
				if d.Schedule.Start[a] < d.Schedule.End(b) && d.Schedule.Start[b] < d.Schedule.End(a) {
					t.Fatalf("FU %d: ops %d and %d overlap", fi, a, b)
				}
			}
		}
	}
}

func TestReportContents(t *testing.T) {
	d := mustSynth(t, bench.HAL(), 17, 8)
	rep := d.Report()
	for _, want := range []string{"design \"hal\"", "T = 17", "P< = 8", "decisions (20)", "schedule:", "datapath:", "area:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	sum := d.Summary()
	if !strings.Contains(sum, "hal T=17") || !strings.Contains(sum, "area") {
		t.Errorf("summary = %q", sum)
	}
	// Unconstrained rendering.
	d2 := mustSynth(t, bench.HAL(), 17, 0)
	if !strings.Contains(d2.Summary(), "unconstrained") {
		t.Errorf("summary = %q", d2.Summary())
	}
}

func TestQuickSynthesizeRandomGraphsValid(t *testing.T) {
	lib := library.Table1()
	f := func(seed int64, szRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := bench.Random(rng, bench.RandomConfig{Nodes: int(szRaw%14) + 2, MaxWidth: 3})
		// Deadline: serial critical path plus slack; power: generous or
		// moderately tight.
		cp, _ := g.CriticalPath(func(n cdfg.Node) int {
			if n.Op == cdfg.Mul {
				return 4
			}
			return 1
		})
		T := cp + int(pRaw%8)
		P := 0.0
		if pRaw%2 == 0 {
			P = 8.2 + float64(pRaw%30)
		}
		d, err := Synthesize(g, lib, Constraints{Deadline: T, PowerMax: P}, Config{})
		if errors.Is(err, ErrInfeasible) {
			return true // heuristic infeasibility is allowed
		}
		if err != nil {
			return false
		}
		return d.Schedule.Validate(P, T) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaTrendAcrossPowerSweep(t *testing.T) {
	// The Figure 2 premise: with best-effort synthesis plus subsumption
	// (looser budgets may reuse tighter designs), area is non-increasing
	// in the power budget. Verify on hal T=17 at three budgets.
	lib := library.Table1()
	budgets := []float64{5.5, 8, 30}
	bestSoFar := 0.0
	prev := -1.0
	for _, p := range budgets {
		d, err := SynthesizeBest(bench.HAL(), lib, Constraints{Deadline: 17, PowerMax: p}, Config{})
		if err != nil {
			t.Fatalf("P=%g: %v", p, err)
		}
		area := d.Area()
		if bestSoFar > 0 && bestSoFar < area {
			area = bestSoFar // subsumption: tighter design is reusable
		}
		if prev > 0 && area > prev+1e-9 {
			t.Fatalf("area rose from %.1f to %.1f as budget loosened to %g", prev, area, p)
		}
		prev = area
		if bestSoFar == 0 || area < bestSoFar {
			bestSoFar = area
		}
	}
}

func TestUtilization(t *testing.T) {
	d := mustSynth(t, bench.HAL(), 17, 8)
	u := d.Utilization()
	if len(u) != len(d.FUs) {
		t.Fatalf("%d utilizations for %d FUs", len(u), len(d.FUs))
	}
	for i, x := range u {
		if x <= 0 || x > 1+1e-9 {
			t.Errorf("FU%d utilization %g out of (0,1]", i, x)
		}
	}
	mean := d.MeanUtilization()
	if mean <= 0 || mean > 1 {
		t.Fatalf("mean utilization %g", mean)
	}
	// Sharing-heavy designs should keep the hardware reasonably busy.
	if mean < 0.2 {
		t.Errorf("mean utilization %.2f suspiciously low for a constrained design", mean)
	}
}
