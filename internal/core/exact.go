package core

import (
	"errors"
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// ErrTooLarge is returned by ExactSynthesize when the search budget is
// exhausted before the space is covered.
var ErrTooLarge = errors.New("instance too large for exact synthesis")

// ExactResult is the optimum found by ExactSynthesize.
type ExactResult struct {
	// FUArea is the minimal total functional-unit area.
	FUArea float64
	// Start, Module and FU describe one optimal solution.
	Start  []int
	Module []int // library module index per node
	FU     []int // instance index per node
	// Expansions counts search-tree nodes, for reporting.
	Expansions int
}

// ExactSynthesize finds the minimum functional-unit area over ALL
// combinations of module selection, power/latency-feasible schedule and
// binding, by exhaustive branch-and-bound — the joint problem the paper's
// greedy approximates. It is exponential and intended for graphs of up to
// roughly ten operations (the test oracle for the greedy's optimality
// gap); maxExpansions bounds the search (<= 0 means 4e6).
//
// The objective is functional-unit area only: registers and multiplexers
// are secondary in the paper's cost function and depend on binding details
// the exact search does not model.
func ExactSynthesize(g *cdfg.Graph, lib *library.Library, cons Constraints, maxExpansions int) (*ExactResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cons.Deadline <= 0 {
		return nil, fmt.Errorf("core: exact: deadline %d must be positive", cons.Deadline)
	}
	if missing := lib.Covers(g); missing != nil {
		return nil, fmt.Errorf("core: exact: operations %v: %w", missing, ErrUncovered)
	}
	if maxExpansions <= 0 {
		maxExpansions = 4_000_000
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := g.N()
	T := cons.Deadline

	// An incumbent from the greedy bounds the search from above.
	incumbent := 1e18
	var best *ExactResult
	if d, err := Synthesize(g, lib, cons, Config{}); err == nil {
		incumbent = d.Datapath.FUArea + 1e-9 // accept strictly better only
	}

	type inst struct {
		module int
		// busy intervals, maintained as parallel slices for cheap undo.
		starts, ends []int
	}
	var (
		instances  []inst
		start      = make([]int, n)
		moduleOf   = make([]int, n)
		fuOf       = make([]int, n)
		profile    = make([]float64, T)
		fuArea     float64
		expansions int
	)

	// cheapestArea[op] = min module area implementing op (admissible
	// remaining-cost heuristic assuming perfect sharing costs zero extra).
	cheapest := make(map[cdfg.Op]float64)
	for _, node := range g.Nodes() {
		if _, ok := cheapest[node.Op]; !ok {
			m, err := lib.Smallest(node.Op)
			if err != nil {
				return nil, err
			}
			cheapest[node.Op] = m.Area
		}
	}

	overBudget := false
	var rec func(k int)
	rec = func(k int) {
		expansions++
		if expansions > maxExpansions {
			overBudget = true
			return
		}
		if fuArea >= incumbent {
			return
		}
		if k == n {
			incumbent = fuArea
			best = &ExactResult{
				FUArea: fuArea,
				Start:  append([]int(nil), start...),
				Module: append([]int(nil), moduleOf...),
				FU:     append([]int(nil), fuOf...),
			}
			return
		}
		v := order[k]
		node := g.Node(v)
		earliest := 0
		for _, p := range g.Preds(v) {
			m := lib.Module(moduleOf[p])
			if e := start[p] + m.Delay; e > earliest {
				earliest = e
			}
		}
		for _, mi := range lib.Candidates(node.Op) {
			m := lib.Module(mi)
			if cons.PowerMax > 0 && m.Power > cons.PowerMax+1e-9 {
				continue
			}
			moduleOf[v] = mi
			for t := earliest; t+m.Delay <= T; t++ {
				if overBudget {
					return
				}
				// Power feasibility of this placement.
				ok := true
				if cons.PowerMax > 0 {
					for c := t; c < t+m.Delay; c++ {
						if profile[c]+m.Power > cons.PowerMax+1e-9 {
							ok = false
							break
						}
					}
				}
				if !ok {
					continue
				}
				start[v] = t
				for c := t; c < t+m.Delay; c++ {
					profile[c] += m.Power
				}
				// Existing instances of the same module with a free slot.
				for fi := range instances {
					if instances[fi].module != mi {
						continue
					}
					clash := false
					for bi := range instances[fi].starts {
						if t < instances[fi].ends[bi] && instances[fi].starts[bi] < t+m.Delay {
							clash = true
							break
						}
					}
					if clash {
						continue
					}
					instances[fi].starts = append(instances[fi].starts, t)
					instances[fi].ends = append(instances[fi].ends, t+m.Delay)
					fuOf[v] = fi
					rec(k + 1)
					instances[fi].starts = instances[fi].starts[:len(instances[fi].starts)-1]
					instances[fi].ends = instances[fi].ends[:len(instances[fi].ends)-1]
				}
				// A fresh instance.
				if fuArea+m.Area < incumbent {
					instances = append(instances, inst{module: mi, starts: []int{t}, ends: []int{t + m.Delay}})
					fuOf[v] = len(instances) - 1
					fuArea += m.Area
					rec(k + 1)
					fuArea -= m.Area
					instances = instances[:len(instances)-1]
				}
				for c := t; c < t+m.Delay; c++ {
					profile[c] -= m.Power
				}
			}
		}
	}
	rec(0)
	if overBudget && best == nil {
		return nil, fmt.Errorf("core: exact: %w (budget %d)", ErrTooLarge, maxExpansions)
	}
	if best == nil {
		// The greedy incumbent was already optimal (or the instance is
		// infeasible). Distinguish by re-running the greedy.
		d, err := Synthesize(g, lib, cons, Config{})
		if err != nil {
			return nil, fmt.Errorf("core: exact: %w", ErrInfeasible)
		}
		res := &ExactResult{FUArea: d.Datapath.FUArea, Expansions: expansions}
		res.Start = append([]int(nil), d.Schedule.Start...)
		res.FU = append([]int(nil), d.FUOf...)
		res.Module = make([]int, n)
		for i := range res.Module {
			for _, mi := range lib.Candidates(g.Node(cdfg.NodeID(i)).Op) {
				if lib.Module(mi).Name == d.Schedule.Module[i] {
					res.Module[i] = mi
				}
			}
		}
		if overBudget {
			return res, fmt.Errorf("core: exact: %w (budget %d); returning greedy incumbent", ErrTooLarge, maxExpansions)
		}
		return res, nil
	}
	best.Expansions = expansions
	if overBudget {
		return best, fmt.Errorf("core: exact: %w (budget %d); returning best found", ErrTooLarge, maxExpansions)
	}
	return best, nil
}

// Validate checks an exact result against the constraints.
func (r *ExactResult) Validate(g *cdfg.Graph, lib *library.Library, cons Constraints) error {
	s := &sched.Schedule{
		G:      g,
		Start:  r.Start,
		Delay:  make([]int, g.N()),
		Power:  make([]float64, g.N()),
		Module: make([]string, g.N()),
	}
	for i, mi := range r.Module {
		m := lib.Module(mi)
		s.Delay[i] = m.Delay
		s.Power[i] = m.Power
		s.Module[i] = m.Name
	}
	if err := s.Validate(cons.PowerMax, cons.Deadline); err != nil {
		return err
	}
	// Instance exclusivity.
	byFU := map[int][]cdfg.NodeID{}
	for i, f := range r.FU {
		byFU[f] = append(byFU[f], cdfg.NodeID(i))
	}
	for f, ops := range byFU {
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, b := ops[i], ops[j]
				if r.Module[a] != r.Module[b] {
					return fmt.Errorf("core: exact: instance %d mixes modules", f)
				}
				if s.Start[a] < s.End(b) && s.Start[b] < s.End(a) {
					return fmt.Errorf("core: exact: instance %d ops overlap", f)
				}
			}
		}
	}
	return nil
}
