package core

import (
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func TestCliquePartitionModeProducesValidDesigns(t *testing.T) {
	cases := []struct {
		name string
		T    int
		P    float64
	}{
		{"hal", 12, 0}, {"hal", 17, 10},
		{"cosine", 15, 0}, {"elliptic", 22, 0},
		{"fir16", 30, 20},
	}
	for _, tc := range cases {
		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := SynthesizeCliquePartition(g, library.Table1(), Constraints{Deadline: tc.T, PowerMax: tc.P}, Config{})
		if err != nil {
			t.Errorf("%s T=%d P=%g: %v", tc.name, tc.T, tc.P, err)
			continue
		}
		checkDesign(t, d, tc.T, tc.P)
	}
}

func TestCliquePartitionModeSharesFUs(t *testing.T) {
	g := bench.HAL()
	d, err := SynthesizeCliquePartition(g, library.Table1(), Constraints{Deadline: 17, PowerMax: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.FUs) >= g.N() {
		t.Fatalf("no sharing: %d FUs for %d nodes", len(d.FUs), g.N())
	}
}

func TestCliquePartitionModeRejectsBadInput(t *testing.T) {
	g := bench.HAL()
	if _, err := SynthesizeCliquePartition(g, library.Table1(), Constraints{Deadline: 0}, Config{}); err == nil {
		t.Fatal("accepted zero deadline")
	}
	lib, _ := library.Table1Without(library.NameMulSer, library.NameMulPar)
	if _, err := SynthesizeCliquePartition(g, lib, Constraints{Deadline: 17}, Config{}); err == nil {
		t.Fatal("accepted uncovered library")
	}
}

func TestIncrementalBeatsOrMatchesStaticNearKnee(t *testing.T) {
	// The DESIGN.md ablation: near the feasibility knee the incremental
	// algorithm (windows re-derived per decision, backtrack-and-lock
	// repair) should solve at least as many points as the static
	// clique-partition formulation, and never with worse area when both
	// succeed... area may differ either way in the loose region, so the
	// assertion is about feasibility count plus the tight-point areas.
	g := bench.HAL()
	lib := library.Table1()
	grid := []float64{5.5, 6, 7, 8, 10, 14, 20}
	incOK, staticOK := 0, 0
	for _, p := range grid {
		cons := Constraints{Deadline: 17, PowerMax: p}
		if _, err := Synthesize(g, lib, cons, Config{}); err == nil {
			incOK++
		}
		if _, err := SynthesizeCliquePartition(g, lib, cons, Config{}); err == nil {
			staticOK++
		}
	}
	if incOK < staticOK {
		t.Fatalf("incremental solved %d points, static %d", incOK, staticOK)
	}
	if incOK == 0 {
		t.Fatal("grid too hard for both variants; test is vacuous")
	}
}
