package core

import (
	"errors"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/clique"
	"pchls/internal/library"
	"pchls/internal/sched"
)

func TestCliquePartitionModeProducesValidDesigns(t *testing.T) {
	cases := []struct {
		name string
		T    int
		P    float64
	}{
		{"hal", 12, 0}, {"hal", 17, 10},
		{"cosine", 15, 0}, {"elliptic", 22, 0},
		{"fir16", 30, 20},
	}
	for _, tc := range cases {
		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := SynthesizeCliquePartition(g, library.Table1(), Constraints{Deadline: tc.T, PowerMax: tc.P}, Config{})
		if err != nil {
			t.Errorf("%s T=%d P=%g: %v", tc.name, tc.T, tc.P, err)
			continue
		}
		checkDesign(t, d, tc.T, tc.P)
	}
}

func TestCliquePartitionModeSharesFUs(t *testing.T) {
	g := bench.HAL()
	d, err := SynthesizeCliquePartition(g, library.Table1(), Constraints{Deadline: 17, PowerMax: 10}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.FUs) >= g.N() {
		t.Fatalf("no sharing: %d FUs for %d nodes", len(d.FUs), g.N())
	}
}

func TestCliquePartitionModeRejectsBadInput(t *testing.T) {
	g := bench.HAL()
	if _, err := SynthesizeCliquePartition(g, library.Table1(), Constraints{Deadline: 0}, Config{}); err == nil {
		t.Fatal("accepted zero deadline")
	}
	lib, _ := library.Table1Without(library.NameMulSer, library.NameMulPar)
	if _, err := SynthesizeCliquePartition(g, lib, Constraints{Deadline: 17}, Config{}); err == nil {
		t.Fatal("accepted uncovered library")
	}
}

func TestIncrementalBeatsOrMatchesStaticNearKnee(t *testing.T) {
	// The DESIGN.md ablation: near the feasibility knee the incremental
	// algorithm (windows re-derived per decision, backtrack-and-lock
	// repair) should solve at least as many points as the static
	// clique-partition formulation, and never with worse area when both
	// succeed... area may differ either way in the loose region, so the
	// assertion is about feasibility count plus the tight-point areas.
	g := bench.HAL()
	lib := library.Table1()
	grid := []float64{5.5, 6, 7, 8, 10, 14, 20}
	incOK, staticOK := 0, 0
	for _, p := range grid {
		cons := Constraints{Deadline: 17, PowerMax: p}
		if _, err := Synthesize(g, lib, cons, Config{}); err == nil {
			incOK++
		}
		if _, err := SynthesizeCliquePartition(g, lib, cons, Config{}); err == nil {
			staticOK++
		}
	}
	if incOK < staticOK {
		t.Fatalf("incremental solved %d points, static %d", incOK, staticOK)
	}
	if incOK == 0 {
		t.Fatal("grid too hard for both variants; test is vacuous")
	}
}

// TestEvictNodeDoesNotMutateSharedBacking is the regression test for the
// shared-backing-array bug: evictNode must build the shrunken block in a
// fresh slice, because appending block[k+1:] onto block[:k] shifts
// elements inside the backing array and corrupts any alias of the
// original block.
func TestEvictNodeDoesNotMutateSharedBacking(t *testing.T) {
	block := []int{1, 2, 3}
	alias := block[:3] // shares the backing array with p[0]
	p := clique.Partition{block, {4}}
	got := evictNode(p, 2)
	if alias[0] != 1 || alias[1] != 2 || alias[2] != 3 {
		t.Fatalf("evictNode mutated the original block through its backing array: %v", alias)
	}
	if len(got) != 3 {
		t.Fatalf("partition has %d blocks, want 3: %v", len(got), got)
	}
	if len(got[0]) != 2 || got[0][0] != 1 || got[0][1] != 3 {
		t.Fatalf("shrunken block = %v, want [1 3]", got[0])
	}
	if len(got[2]) != 1 || got[2][0] != 2 {
		t.Fatalf("evicted block = %v, want [2]", got[2])
	}
}

// repairFixture builds a tiny synthesizer state plus reachability for the
// repairPack unit tests. All operations are additions (delay 1), so the
// packed cycle arithmetic is exact.
func repairFixture(t *testing.T, deadline int, build func(g *cdfg.Graph) []cdfg.NodeID) (*cdfg.Graph, *state, cdfg.Bitmat, []cdfg.NodeID) {
	t.Helper()
	g := cdfg.New("repair")
	ids := build(g)
	st := newTestState(t, g, Constraints{Deadline: deadline})
	reach, err := g.Reachability()
	if err != nil {
		t.Fatal(err)
	}
	return g, st, reach, ids
}

// TestRepairPackEvictsDeviatingAncestor drives the repair loop down its
// primary branch: the packed schedule misses the deadline at node v, and
// the repair evicts not v but its ancestor p — the shareable node packed
// beyond its static window — after which the packing fits.
//
// Layout: q and p are independent adds sharing one instance; q -> w and
// p -> v are chains. Sharing delays p to cycle 1 (past its static Late
// of 0), which pushes v to end at cycle 3 > T=2. Evicting p onto its own
// instance lets it run at 0 and the whole graph packs.
func TestRepairPackEvictsDeviatingAncestor(t *testing.T) {
	g, st, reach, ids := repairFixture(t, 2, func(g *cdfg.Graph) []cdfg.NodeID {
		q := g.MustAddNode("q", cdfg.Add)
		p := g.MustAddNode("p", cdfg.Add)
		w := g.MustAddNode("w", cdfg.Add)
		v := g.MustAddNode("v", cdfg.Add)
		g.MustAddEdge(q, w)
		g.MustAddEdge(p, v)
		return []cdfg.NodeID{q, p, w, v}
	})
	q, p, w, v := ids[0], ids[1], ids[2], ids[3]
	// Indexed by node ID: q=0, p=1, w=2, v=3.
	windows := []sched.Window{
		{Early: 0, Late: 0}, {Early: 0, Late: 0},
		{Early: 1, Late: 1}, {Early: 1, Late: 1},
	}
	partition := clique.Partition{{int(q), int(p)}, {int(w)}, {int(v)}}
	repaired, err := repairPack(g, st, windows, reach, partition)
	if err != nil {
		t.Fatalf("repairPack: %v", err)
	}
	if len(repaired) != 4 {
		t.Fatalf("repaired partition has %d blocks, want 4 (p evicted): %v", len(repaired), repaired)
	}
	lastBlock := repaired[len(repaired)-1]
	if len(lastBlock) != 1 || lastBlock[0] != int(p) {
		t.Fatalf("evicted block = %v, want [%d] (the deviating ancestor)", lastBlock, p)
	}
	if st.start[p] != 0 || st.start[v] != 1 {
		t.Fatalf("repacked starts p=%d v=%d, want 0 and 1", st.start[p], st.start[v])
	}
}

// TestRepairPackFallsBackToViolator covers the no-deviating-ancestor
// branch: two independent adds share one instance under T=1, so the
// second one cannot fit, and no ancestor exists to evict — the repair
// must fall back to evicting the violator itself.
func TestRepairPackFallsBackToViolator(t *testing.T) {
	g, st, reach, ids := repairFixture(t, 1, func(g *cdfg.Graph) []cdfg.NodeID {
		x := g.MustAddNode("x", cdfg.Add)
		y := g.MustAddNode("y", cdfg.Add)
		return []cdfg.NodeID{x, y}
	})
	x, y := ids[0], ids[1]
	windows := []sched.Window{{Early: 0, Late: 0}, {Early: 0, Late: 0}}
	partition := clique.Partition{{int(x), int(y)}}
	repaired, err := repairPack(g, st, windows, reach, partition)
	if err != nil {
		t.Fatalf("repairPack: %v", err)
	}
	if len(repaired) != 2 {
		t.Fatalf("repaired partition has %d blocks, want 2: %v", len(repaired), repaired)
	}
	if st.start[x] != 0 || st.start[y] != 0 {
		t.Fatalf("repacked starts x=%d y=%d, want both 0", st.start[x], st.start[y])
	}
}

// TestRepairPackTerminatesOnAllSingletons pins the termination argument:
// once every block is a singleton no eviction can help, and the repair
// must report infeasibility instead of looping. A two-add chain cannot
// meet T=1 under any partition.
func TestRepairPackTerminatesOnAllSingletons(t *testing.T) {
	g, st, reach, ids := repairFixture(t, 1, func(g *cdfg.Graph) []cdfg.NodeID {
		a := g.MustAddNode("a", cdfg.Add)
		b := g.MustAddNode("b", cdfg.Add)
		g.MustAddEdge(a, b)
		return []cdfg.NodeID{a, b}
	})
	a, b := ids[0], ids[1]
	windows := []sched.Window{{Early: 0, Late: 0}, {Early: 0, Late: 0}}
	partition := clique.Partition{{int(a)}, {int(b)}}
	repaired, err := repairPack(g, st, windows, reach, partition)
	if err == nil {
		t.Fatalf("repairPack accepted an unsatisfiable deadline: %v", repaired)
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error %v is not ErrInfeasible", err)
	}
	if repaired != nil {
		t.Fatalf("failed repair returned a partition: %v", repaired)
	}
}

// TestRepairPackConvergesFromOneBlock exercises repeated evictions: all
// four adds of two independent 2-chains crammed into a single instance
// need several rounds of repair before the packing fits, and the loop's
// partition-growth bound guarantees it gets there.
func TestRepairPackConvergesFromOneBlock(t *testing.T) {
	g, st, reach, ids := repairFixture(t, 2, func(g *cdfg.Graph) []cdfg.NodeID {
		a := g.MustAddNode("a", cdfg.Add)
		b := g.MustAddNode("b", cdfg.Add)
		c := g.MustAddNode("c", cdfg.Add)
		d := g.MustAddNode("d", cdfg.Add)
		g.MustAddEdge(a, c)
		g.MustAddEdge(b, d)
		return []cdfg.NodeID{a, b, c, d}
	})
	a, b, c, d := ids[0], ids[1], ids[2], ids[3]
	// Indexed by node ID: a=0, b=1, c=2, d=3.
	windows := []sched.Window{
		{Early: 0, Late: 0}, {Early: 0, Late: 0},
		{Early: 1, Late: 1}, {Early: 1, Late: 1},
	}
	partition := clique.Partition{{int(a), int(b), int(c), int(d)}}
	repaired, err := repairPack(g, st, windows, reach, partition)
	if err != nil {
		t.Fatalf("repairPack: %v", err)
	}
	if len(repaired) < 2 {
		t.Fatalf("repair did not split the overfull block: %v", repaired)
	}
	for _, id := range []cdfg.NodeID{a, b} {
		if st.start[id] != 0 {
			t.Fatalf("chain head %d starts at %d, want 0", id, st.start[id])
		}
	}
	for _, id := range []cdfg.NodeID{c, d} {
		if st.start[id] != 1 {
			t.Fatalf("chain tail %d starts at %d, want 1", id, st.start[id])
		}
	}
}
