package core

import (
	"fmt"

	"pchls/internal/library"
	"pchls/internal/sched"
)

// MinFUAreaForSchedule computes the provably minimal functional-unit area
// that can implement the given schedule with its module assignment. For a
// fixed schedule, operations bound to the same module type may share an
// instance exactly when their execution intervals are disjoint; the
// conflict graph per module type is an interval graph, whose minimum
// partition into instances equals its clique number — the maximum number
// of simultaneously executing operations of that type. The result is the
// per-module instance counts and their total area.
//
// It is the test oracle for the greedy binder: any valid design built on
// this schedule has FUArea >= the returned area.
func MinFUAreaForSchedule(s *sched.Schedule, lib *library.Library) (float64, map[string]int, error) {
	// Events per module: +1 at start, -1 at end.
	type event struct {
		t     int
		delta int
	}
	events := make(map[string][]event)
	for i := range s.Start {
		name := s.Module[i]
		if _, ok := lib.Lookup(name); !ok {
			return 0, nil, fmt.Errorf("core: oracle: schedule references unknown module %q", name)
		}
		events[name] = append(events[name],
			event{t: s.Start[i], delta: +1},
			event{t: s.Start[i] + s.Delay[i], delta: -1})
	}
	counts := make(map[string]int, len(events))
	total := 0.0
	for name, evs := range events {
		// Sort by time with ends before starts at equal time (an op may
		// start exactly when another ends on the same instance).
		for i := 1; i < len(evs); i++ {
			for j := i; j > 0; j-- {
				a, b := evs[j-1], evs[j]
				if b.t < a.t || (b.t == a.t && b.delta < a.delta) {
					evs[j-1], evs[j] = b, a
				} else {
					break
				}
			}
		}
		cur, peak := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		counts[name] = peak
		m, _ := lib.Lookup(name)
		total += float64(peak) * m.Area
	}
	return total, counts, nil
}

// FUAreaGap reports how far a design's functional-unit area is from the
// oracle minimum for its own schedule (0 = provably optimal binding for
// that schedule; the schedule itself may of course be improvable).
func FUAreaGap(d *Design) (gap float64, err error) {
	minArea, _, err := MinFUAreaForSchedule(d.Schedule, d.Library)
	if err != nil {
		return 0, err
	}
	return d.Datapath.FUArea - minArea, nil
}
