//go:build !race

// Allocation-regression tests for the synthesize hot path. AllocsPerRun
// counts are not meaningful under the race detector, so these run in the
// race-free CI lane only.

package core

import (
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// TestBestDecisionSteadyStateAllocs pins the allocation count of one warm
// bestDecision iteration on a large benchmark: the flat window table, the
// scheduler arena and the lookup tables must hold — the only allocations
// left are the dirty-subset scheduler pair behind WindowsDirty (schedule
// shells, start arrays, the window slice) plus cache entries for
// candidates the last commit invalidated.
func TestBestDecisionSteadyStateAllocs(t *testing.T) {
	lib := library.Table1()
	g := bench.Elliptic()
	asap, err := sched.ASAP(g, sched.UniformFastest(lib))
	if err != nil {
		t.Fatal(err)
	}
	cons := Constraints{Deadline: asap.Length() + 3, PowerMax: asap.PeakPower() * 0.8}
	st, err := newState(g, lib, cons, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.refineInitialModules(); err != nil {
		t.Fatal(err)
	}
	// Advance into the warm regime: a few committed decisions with their
	// post-commit probes, exactly as Synthesize drives the loop.
	for i := 0; i < 6; i++ {
		dec, ok := st.bestDecision()
		if !ok {
			t.Fatalf("step %d: no decision", i)
		}
		st.commit(dec)
		probe, err := st.currentPASAP()
		if err != nil {
			t.Fatal(err)
		}
		st.noteProbe(dec, probe)
	}
	if !st.eng.warm {
		t.Fatal("engine not warm after 6 commits")
	}
	got := testing.AllocsPerRun(20, func() {
		if _, ok := st.bestDecision(); !ok {
			t.Fatal("no decision")
		}
	})
	// A repeated warm iteration is fully served from the flat window
	// table, the override cache and the scheduler arena: zero allocations.
	// The pre-optimization map-of-maps path allocated several hundred per
	// iteration; a small budget leaves headroom for runtime noise only.
	const max = 8
	if got > max {
		t.Fatalf("warm bestDecision allocates %.1f/run, budget %d", got, max)
	}
	t.Logf("warm bestDecision: %.1f allocs/run", got)
}
