package core

// Tests for the thousand-node scaling path: SDC window derivation, the
// incremental compatibility prefilter, and hierarchical decomposition.
// The common theme is equivalence — the fast paths must either match the
// exhaustive paths byte for byte (where the theory says they coincide)
// or produce independently verified designs (where they legitimately
// diverge).

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"pchls/internal/gen"
	"pchls/internal/verify"
)

// scaleInstances yields moderate random instances for the equivalence
// sweeps; sizes straddle the engine's smallGraphNodes threshold so both
// the warm-cache engine and the plain path see SDC windows.
func scaleInstance(seed int64) gen.Instance {
	return gen.NewInstance(seed, gen.InstanceConfig{
		Graph: gen.GraphConfig{Nodes: 8 + int(seed%28)},
	})
}

// TestSDCMatchesExhaustiveUnconstrained pins the regime where the SDC
// windows are provably exact: with PowerMax <= 0 the pasap/palap pair
// degenerates to precedence ASAP/ALAP, which is the very system of
// difference constraints the SDC sweep solves, so forcing either window
// policy must give byte-identical designs.
func TestSDCMatchesExhaustiveUnconstrained(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		inst := scaleInstance(seed)
		cons := Constraints{Deadline: inst.Deadline, PowerMax: 0}
		label := fmt.Sprintf("seed %d n=%d T=%d", seed, inst.Graph.N(), cons.Deadline)
		sdc, sdcErr := Synthesize(inst.Graph, inst.Library, cons, Config{Windows: WindowsSDC, Partition: PartitionOff})
		ex, exErr := Synthesize(inst.Graph, inst.Library, cons, Config{Windows: WindowsExhaustive, Partition: PartitionOff})
		requireSameDesign(t, label, sdc, ex, sdcErr, exErr)
		if sdcErr == nil && sdc.Stats.SDCDerivations == 0 {
			t.Fatalf("%s: SDC policy ran without any SDC derivation", label)
		}
	}
}

// TestSDCPrefilterOutputNeutral checks the compatibility prefilter
// theorem on power-constrained instances: CanShare-false implies
// freeSlot-false, so running the SDC path with the prefilter disabled
// must not change a single byte of the result.
func TestSDCPrefilterOutputNeutral(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		inst := scaleInstance(seed)
		cons := Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}
		label := fmt.Sprintf("seed %d n=%d T=%d P<=%g", seed, inst.Graph.N(), cons.Deadline, cons.PowerMax)
		with, withErr := Synthesize(inst.Graph, inst.Library, cons, Config{Windows: WindowsSDC, Partition: PartitionOff})
		without, withoutErr := Synthesize(inst.Graph, inst.Library, cons, Config{Windows: WindowsSDC, Partition: PartitionOff, noCompat: true})
		requireSameDesign(t, label, with, without, withErr, withoutErr)
	}
}

// TestSDCSynthesisVerifies pushes power-constrained instances through
// the forced-SDC path and re-checks every produced design with the
// engine-independent verifier: the SDC windows are supersets of the
// power-feasible ones, so this is the test that the downstream probes
// (freeSlot, the post-commit pasap probe, final validation) really do
// re-impose the power cap.
func TestSDCSynthesisVerifies(t *testing.T) {
	produced := 0
	for seed := int64(0); seed < 200; seed++ {
		inst := scaleInstance(seed)
		if inst.PowerMax <= 0 {
			continue
		}
		cons := Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}
		d, err := Synthesize(inst.Graph, inst.Library, cons, Config{Windows: WindowsSDC, Partition: PartitionOff})
		if err != nil {
			continue
		}
		produced++
		if err := verify.Check(VerifyInput(d)); err != nil {
			t.Fatalf("seed %d: SDC design fails verification: %v", seed, err)
		}
	}
	if produced < 50 {
		t.Fatalf("only %d/200 instances produced designs; sweep too weak to mean anything", produced)
	}
}

// compatDifferentialDesigns sizes the randomized incremental-V1
// differential: 1000 designs by default (the acceptance floor),
// overridable through PCHLS_COMPAT_DESIGNS for soak runs.
func compatDifferentialDesigns(t *testing.T) int {
	if s := os.Getenv("PCHLS_COMPAT_DESIGNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("PCHLS_COMPAT_DESIGNS=%q: want a positive integer", s)
		}
		return n
	}
	return 1000
}

// TestCompatIncrementalDifferential synthesizes >= 1k seeded random
// designs with the audit hook enabled: after every per-iteration compat
// sync, the incrementally patched edge set is compared bit for bit
// against a from-scratch recomputation, and any mismatch panics inside
// the engine. Passing means the dirty-set maintenance rule is exact
// across every commit/uncommit/repair pattern the sweep produced.
func TestCompatIncrementalDifferential(t *testing.T) {
	n := compatDifferentialDesigns(t)
	for seed := int64(0); seed < int64(n); seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph: gen.GraphConfig{Nodes: 6 + int(seed%10)},
		})
		cons := Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}
		cfg := Config{Windows: WindowsSDC, Partition: PartitionOff, auditCompat: true}
		if _, err := Synthesize(inst.Graph, inst.Library, cons, cfg); err != nil {
			continue // infeasible instances still audited every iteration they ran
		}
	}
}

// TestPartitionStitchMatchesForced checks the decomposition path at the
// core level: a multi-block graph synthesized with PartitionForce must
// produce the same bytes for every worker count (region order is fixed
// by the component order, not by scheduling), must verify independently,
// and must report the regions in its stats.
func TestPartitionStitchMatchesForced(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph: gen.GraphConfig{Nodes: 60, Blocks: 4},
		})
		cons := Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}
		var ref *Design
		var refErr error
		for _, workers := range []int{1, 2, 8} {
			cfg := Config{Partition: PartitionForce, Workers: workers}
			d, err := Synthesize(inst.Graph, inst.Library, cons, cfg)
			label := fmt.Sprintf("seed %d workers=%d", seed, workers)
			if workers == 1 {
				ref, refErr = d, err
				if err == nil {
					if verr := verify.Check(VerifyInput(d)); verr != nil {
						t.Fatalf("%s: stitched design fails verification: %v", label, verr)
					}
					if d.Stats.Regions == 0 && d.Stats.PartitionFallbacks == 0 {
						t.Fatalf("%s: forced partition reports neither regions nor a fallback:\n%v", label, d.Stats)
					}
				}
				continue
			}
			requireSameDesign(t, label, d, ref, err, refErr)
		}
	}
}

// TestPartitionMatchesMonolithicUnconstrained: with no power cap, regions
// do not interact at all (no shared profile), so decomposed synthesis of
// a disjoint union must succeed exactly when monolithic synthesis does,
// and must verify independently. Area may be worse than monolithic —
// that is the documented cost of the decomposition speedup — but the
// stitch's sharing passes (plain merge, then shift/rebind/ripple
// cross-region merges) must hold the aggregate gap to 15% over the
// suite, and must actually fire somewhere in it.
func TestPartitionMatchesMonolithicUnconstrained(t *testing.T) {
	var partArea, monoArea float64
	var shares int64
	for seed := int64(0); seed < 10; seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph: gen.GraphConfig{Nodes: 48, Blocks: 3},
		})
		cons := Constraints{Deadline: inst.Deadline, PowerMax: 0}
		label := fmt.Sprintf("seed %d", seed)
		part, partErr := Synthesize(inst.Graph, inst.Library, cons, Config{Partition: PartitionForce})
		mono, monoErr := Synthesize(inst.Graph, inst.Library, cons, Config{Partition: PartitionOff})
		if (partErr != nil) != (monoErr != nil) {
			t.Fatalf("%s: error disposition diverges: partitioned %v, monolithic %v", label, partErr, monoErr)
		}
		if partErr != nil {
			continue
		}
		if verr := verify.Check(VerifyInput(part)); verr != nil {
			t.Fatalf("%s: partitioned design fails verification: %v", label, verr)
		}
		t.Logf("%s: area partitioned %.2f vs monolithic %.2f (shares %d)", label, part.Area(), mono.Area(), part.Stats.SharedCrossRegion)
		partArea += part.Area()
		monoArea += mono.Area()
		shares += part.Stats.SharedCrossRegion
	}
	if monoArea == 0 {
		t.Fatal("no instance in the suite produced designs")
	}
	if gap := partArea / monoArea; gap > 1.15 {
		t.Fatalf("aggregate partitioned area gap %.4f exceeds 1.15", gap)
	}
	if shares == 0 {
		t.Fatal("cross-region sharing never fired across the suite")
	}
}
