package verify_test

import (
	"errors"
	"go/parser"
	"go/token"
	"os"
	"strconv"
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/verify"
)

// TestValidatorImportIndependence enforces the package's charter: the
// validator must re-derive every invariant without the engine's code in
// its import graph, so a bug shared by core/sched and verify cannot pass
// silently. It parses every non-test source file of internal/verify and
// rejects any import of internal/core or internal/sched (directly;
// transitive independence follows because cdfg and library import
// neither).
func TestValidatorImportIndependence(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	forbidden := []string{"pchls/internal/core", "pchls/internal/sched"}
	checked := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		checked++
		f, err := parser.ParseFile(token.NewFileSet(), name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for _, bad := range forbidden {
				if path == bad {
					t.Errorf("%s imports %s: the validator must stay independent of the engine", name, bad)
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-test source files found; is the test running in the package directory?")
	}
}

// validInput synthesizes a benchmark and flattens the design, giving the
// tests a known-good input to corrupt.
func validInput(t *testing.T, name string, deadline int, powerMax float64) verify.Input {
	t.Helper()
	g, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.SynthesizeBest(g, library.Table1(), core.Constraints{Deadline: deadline, PowerMax: powerMax}, core.Config{Workers: 1})
	if err != nil {
		t.Fatalf("synthesize %s: %v", name, err)
	}
	return core.VerifyInput(d)
}

func TestCheckAcceptsEngineDesigns(t *testing.T) {
	cases := []struct {
		bench    string
		deadline int
		powerMax float64
	}{
		{"hal", 10, 0},
		{"hal", 10, 20},
		{"hal", 17, 7.5},
		{"cosine", 20, 40},
		{"elliptic", 24, 30},
		{"diffeq2", 16, 0},
	}
	for _, c := range cases {
		t.Run(c.bench+"-T"+strconv.Itoa(c.deadline), func(t *testing.T) {
			in := validInput(t, c.bench, c.deadline, c.powerMax)
			if err := verify.Check(in); err != nil {
				t.Errorf("validator rejected a correct design (T=%d, P<=%g): %v", c.deadline, c.powerMax, err)
			}
		})
	}
}

func TestCheckShapeErrors(t *testing.T) {
	base := validInput(t, "hal", 10, 20)

	t.Run("nil graph", func(t *testing.T) {
		in := base.Clone()
		in.Graph = nil
		if err := verify.Check(in); !errors.Is(err, verify.ErrShape) {
			t.Errorf("got %v, want ErrShape", err)
		}
	})
	t.Run("short start slice", func(t *testing.T) {
		in := base.Clone()
		in.Start = in.Start[:len(in.Start)-1]
		if err := verify.Check(in); !errors.Is(err, verify.ErrShape) {
			t.Errorf("got %v, want ErrShape", err)
		}
	})
	t.Run("unknown module name", func(t *testing.T) {
		in := base.Clone()
		in.Module[0] = "no-such-module"
		if err := verify.Check(in); !errors.Is(err, verify.ErrShape) {
			t.Errorf("got %v, want ErrShape", err)
		}
	})
	t.Run("instance index out of range", func(t *testing.T) {
		in := base.Clone()
		in.FU[0] = len(in.FUModules)
		if err := verify.Check(in); !errors.Is(err, verify.ErrShape) {
			t.Errorf("got %v, want ErrShape", err)
		}
	})
	t.Run("unknown instance module", func(t *testing.T) {
		in := base.Clone()
		in.FUModules[0] = "ghost"
		if err := verify.Check(in); !errors.Is(err, verify.ErrShape) {
			t.Errorf("got %v, want ErrShape", err)
		}
	})
	t.Run("non-positive deadline", func(t *testing.T) {
		in := base.Clone()
		in.Deadline = 0
		if err := verify.Check(in); !errors.Is(err, verify.ErrShape) {
			t.Errorf("got %v, want ErrShape", err)
		}
	})
}

// TestCheckReportsAllViolations confirms violations of independent
// classes are reported together, not first-failure-only.
func TestCheckReportsAllViolations(t *testing.T) {
	in := validInput(t, "hal", 10, 20)
	in.ReportedFUArea += 100 // area accounting
	in.Start[0] = -1         // negative start
	in.Deadline = 1          // makespan now exceeds T
	err := verify.Check(in)
	for _, want := range []error{verify.ErrArea, verify.ErrPrecedence, verify.ErrDeadline} {
		if !errors.Is(err, want) {
			t.Errorf("joined error misses %v; got: %v", want, err)
		}
	}
}
