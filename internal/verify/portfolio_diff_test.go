package verify_test

import (
	"errors"
	"os"
	"strconv"
	"testing"

	"pchls/internal/core"
	"pchls/internal/portfolio"
	"pchls/internal/verify"
)

// diffSeeds returns the seed-sweep width for the portfolio differential:
// 200 by default, 60 under -short, PCHLS_PROPERTY_DESIGNS (capped at
// 200) for CI lanes that trade coverage for latency.
func diffSeeds(t *testing.T) int64 {
	seeds := int64(200)
	if testing.Short() {
		seeds = 60
	}
	if s := os.Getenv("PCHLS_PROPERTY_DESIGNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("PCHLS_PROPERTY_DESIGNS=%q: want a positive integer", s)
		}
		if int64(n) < seeds {
			seeds = int64(n)
		}
	}
	return seeds
}

// TestPortfolioMatchesBruteForce is the portfolio layer's optimality
// gate: on every generated graph small enough for the subgraph splice to
// cover whole (<= 8 nodes) with the generator's relaxed slack regime
// (>= 1.2x the critical path), the portfolio's functional-unit area must
// EQUAL the exhaustive oracle's proven optimum — not just stay above it.
// The splice degenerates into a full exhaustive search on such graphs,
// so any gap means the splice search, its pruning, or the adoption rule
// is losing solutions.
func TestPortfolioMatchesBruteForce(t *testing.T) {
	seeds := diffSeeds(t)
	feasible, infeasible, skipped := 0, 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := tinyInstance(seed, 3+int(seed%2), 1.2, 2.2)
		if inst.Graph.N() > 8 {
			skipped++
			continue
		}
		cons := core.Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}
		res, perr := portfolio.Synthesize(inst.Graph, inst.Library, cons, portfolio.Config{Seed: seed, Workers: 1})
		br, berr := verify.BruteForce(inst.Graph, inst.Library, inst.Deadline, inst.PowerMax,
			verify.BruteOptions{MaxNodes: 8})
		if berr != nil {
			t.Fatalf("seed %d: brute force: %v", seed, berr)
		}
		if perr != nil {
			if !errors.Is(perr, core.ErrInfeasible) {
				t.Fatalf("seed %d: portfolio failed with a non-infeasibility error: %v", seed, perr)
			}
			if br.Feasible {
				t.Errorf("seed %d: portfolio declared infeasible but the oracle found FU area %.2f (T=%d, P<=%g)",
					seed, br.FUArea, inst.Deadline, inst.PowerMax)
			}
			infeasible++
			continue
		}
		if !br.Feasible {
			t.Errorf("seed %d: portfolio produced a design but the oracle proves the instance infeasible (T=%d, P<=%g)",
				seed, inst.Deadline, inst.PowerMax)
			continue
		}
		feasible++
		got := res.Design.Datapath.FUArea
		if got < br.FUArea-1e-6 {
			t.Errorf("seed %d: portfolio FU area %.2f beats the proven optimum %.2f — one of the two is wrong",
				seed, got, br.FUArea)
		}
		if got > br.FUArea+1e-6 {
			t.Errorf("seed %d: portfolio FU area %.2f misses the optimum %.2f (T=%d, P<=%g, %d nodes)",
				seed, got, br.FUArea, inst.Deadline, inst.PowerMax, inst.Graph.N())
		}
		if err := verify.Check(core.VerifyInput(res.Design)); err != nil {
			t.Errorf("seed %d: portfolio design fails the validator: %v", seed, err)
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("constraint distribution degenerate: %d feasible, %d infeasible — the differential needs both", feasible, infeasible)
	}
	t.Logf("%d seeds: %d optimal matches, %d infeasible agreements, %d graphs over 8 nodes skipped",
		seeds, feasible, infeasible, skipped)
}
