package verify

import (
	"errors"
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// ErrTooLarge is returned when an exhaustive search exceeds its node or
// expansion budget; the brute-force oracle is only meaningful when the
// space is fully covered, so a partial search is an error, never a
// silently weaker verdict.
var ErrTooLarge = errors.New("verify: instance too large for exhaustive search")

// BruteOptions bounds the exhaustive searches.
type BruteOptions struct {
	// MaxNodes rejects graphs with more nodes than this (<= 0: 8). The
	// search is exponential; the oracle is intended for <= 6 operations
	// plus their transfers.
	MaxNodes int
	// MaxExpansions bounds search-tree nodes (<= 0: 20 million).
	MaxExpansions int
}

func (o BruteOptions) withDefaults() BruteOptions {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 8
	}
	if o.MaxExpansions <= 0 {
		o.MaxExpansions = 20_000_000
	}
	return o
}

// BruteResult is the verdict of the exhaustive reference synthesizer.
type BruteResult struct {
	// Feasible reports whether any (module selection, schedule, binding)
	// combination satisfies the constraints.
	Feasible bool
	// FUArea is the provably minimal functional-unit area over the whole
	// space (meaningful only when Feasible).
	FUArea float64
	// Start, Module, Level and FU describe one optimal solution: per-node
	// start cycle, library module index, voltage operating-point index
	// within that module, and instance index.
	Start, Module, Level, FU []int
	// Expansions counts visited search-tree nodes, for reporting.
	Expansions int
}

// BruteForce exhaustively solves the joint scheduling/allocation/binding
// problem the heuristic approximates: over every combination of module
// selection, voltage operating point, power- and latency-feasible
// schedule, and binding onto instances, it finds the minimum total
// functional-unit area. Two operations may share an instance only when
// they agree on both the module and the operating point (an instance is
// fixed at one supply voltage). It shares nothing with the engine — the
// only pruning is against its own best solution found so far (plain
// branch-and-bound, still exact) — and is the differential oracle for
// tiny graphs.
//
// The objective is functional-unit area only, matching the primary term
// of the paper's cost function; registers and interconnect are secondary
// and depend on binding details the oracle does not model.
func BruteForce(g *cdfg.Graph, lib *library.Library, deadline int, powerMax float64, opt BruteOptions) (*BruteResult, error) {
	opt = opt.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("verify: brute force: %w", err)
	}
	if deadline <= 0 {
		return nil, fmt.Errorf("verify: brute force: deadline %d must be positive", deadline)
	}
	if g.N() > opt.MaxNodes {
		return nil, fmt.Errorf("verify: brute force: %d nodes > limit %d: %w", g.N(), opt.MaxNodes, ErrTooLarge)
	}
	if missing := lib.Covers(g); missing != nil {
		return nil, fmt.Errorf("verify: brute force: no module implements %v", missing)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	n := g.N()
	var (
		start    = make([]int, n)
		moduleOf = make([]int, n)
		levelOf  = make([]int, n)
		fuOf     = make([]int, n)
		profile  = make([]float64, deadline)
		// instModule[f]/instLevel[f] identify instance f's module and fixed
		// operating point; its occupancy is recovered by walking the
		// already-placed prefix of the order.
		instModule []int
		instLevel  []int
		fuArea     float64
		best       *BruteResult
		bestArea   = 1e18
		exps       int
		over       bool
	)

	// occupied reports whether instance f already executes during [s, e).
	occupied := func(f, s, e, upto int) bool {
		for k := 0; k < upto; k++ {
			v := order[k]
			if fuOf[v] != f {
				continue
			}
			d := lib.Module(moduleOf[v]).Level(levelOf[v]).Delay
			if start[v] < e && s < start[v]+d {
				return true
			}
		}
		return false
	}

	var rec func(k int)
	rec = func(k int) {
		exps++
		if exps > opt.MaxExpansions {
			over = true
			return
		}
		if fuArea >= bestArea {
			return
		}
		if k == n {
			bestArea = fuArea
			best = &BruteResult{
				Feasible: true,
				FUArea:   fuArea,
				Start:    append([]int(nil), start...),
				Module:   append([]int(nil), moduleOf...),
				Level:    append([]int(nil), levelOf...),
				FU:       append([]int(nil), fuOf...),
			}
			return
		}
		v := order[k]
		node := g.Node(v)
		earliest := 0
		for _, p := range g.Preds(v) {
			if e := start[p] + lib.Module(moduleOf[p]).Level(levelOf[p]).Delay; e > earliest {
				earliest = e
			}
		}
		for _, mi := range lib.Candidates(node.Op) {
			m := lib.Module(mi)
			moduleOf[v] = mi
			for li := 0; li < m.NumLevels(); li++ {
				lv := m.Level(li)
				if powerMax > 0 && lv.Power > powerMax+powerEps {
					continue
				}
				levelOf[v] = li
				for t := earliest; t+lv.Delay <= deadline; t++ {
					if over {
						return
					}
					ok := true
					if powerMax > 0 {
						for c := t; c < t+lv.Delay; c++ {
							if profile[c]+lv.Power > powerMax+powerEps {
								ok = false
								break
							}
						}
					}
					if !ok {
						continue
					}
					start[v] = t
					for c := t; c < t+lv.Delay; c++ {
						profile[c] += lv.Power
					}
					// Share an existing instance of the same module at the
					// same operating point.
					for f, fm := range instModule {
						if fm != mi || instLevel[f] != li || occupied(f, t, t+lv.Delay, k) {
							continue
						}
						fuOf[v] = f
						rec(k + 1)
					}
					// Allocate a fresh instance.
					if fuArea+m.Area < bestArea {
						instModule = append(instModule, mi)
						instLevel = append(instLevel, li)
						fuOf[v] = len(instModule) - 1
						fuArea += m.Area
						rec(k + 1)
						fuArea -= m.Area
						instModule = instModule[:len(instModule)-1]
						instLevel = instLevel[:len(instLevel)-1]
					}
					for c := t; c < t+lv.Delay; c++ {
						profile[c] -= lv.Power
					}
				}
			}
		}
	}
	rec(0)
	if over {
		return nil, fmt.Errorf("verify: brute force: %w (budget %d)", ErrTooLarge, opt.MaxExpansions)
	}
	if best == nil {
		return &BruteResult{Feasible: false, Expansions: exps}, nil
	}
	best.Expansions = exps
	return best, nil
}

// Schedulable exhaustively decides whether the graph admits ANY schedule
// meeting the deadline and per-cycle power cap when every node's delay
// and power are fixed (the fixed-binding feasibility question the
// pasap/palap window pair answers heuristically). It is the ground truth
// for the window metamorphic property on tiny graphs.
func Schedulable(g *cdfg.Graph, delays []int, powers []float64, deadline int, powerMax float64, opt BruteOptions) (bool, error) {
	opt = opt.withDefaults()
	if g.N() > opt.MaxNodes {
		return false, fmt.Errorf("verify: schedulable: %d nodes > limit %d: %w", g.N(), opt.MaxNodes, ErrTooLarge)
	}
	if len(delays) != g.N() || len(powers) != g.N() {
		return false, fmt.Errorf("verify: schedulable: %d delays / %d powers for %d nodes", len(delays), len(powers), g.N())
	}
	if deadline <= 0 {
		return false, fmt.Errorf("verify: schedulable: deadline %d must be positive", deadline)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return false, err
	}
	n := g.N()
	start := make([]int, n)
	profile := make([]float64, deadline)
	exps := 0
	over := false
	var rec func(k int) bool
	rec = func(k int) bool {
		exps++
		if exps > opt.MaxExpansions {
			over = true
			return false
		}
		if k == n {
			return true
		}
		v := order[k]
		d := delays[v]
		if d < 1 {
			d = 1
		}
		earliest := 0
		for _, p := range g.Preds(v) {
			pd := delays[p]
			if pd < 1 {
				pd = 1
			}
			if e := start[p] + pd; e > earliest {
				earliest = e
			}
		}
		for t := earliest; t+d <= deadline; t++ {
			ok := true
			if powerMax > 0 {
				for c := t; c < t+d; c++ {
					if profile[c]+powers[v] > powerMax+powerEps {
						ok = false
						break
					}
				}
			}
			if !ok {
				continue
			}
			start[v] = t
			for c := t; c < t+d; c++ {
				profile[c] += powers[v]
			}
			if rec(k + 1) {
				return true
			}
			for c := t; c < t+d; c++ {
				profile[c] -= powers[v]
			}
		}
		return false
	}
	feasible := rec(0)
	if over {
		return false, fmt.Errorf("verify: schedulable: %w (budget %d)", ErrTooLarge, opt.MaxExpansions)
	}
	return feasible, nil
}
