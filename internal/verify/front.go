package verify

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// FrontPoint is one non-dominated design found by the exhaustive
// multi-objective search: its four objective values plus one concrete
// witness design achieving them.
type FrontPoint struct {
	// FUArea is the functional-unit area (minimized).
	FUArea float64
	// Latency is the schedule makespan in cycles (minimized).
	Latency int
	// Peak is the maximum per-cycle power draw (minimized).
	Peak float64
	// Lifetime is the battery lifetime in schedule periods as reported by
	// the caller's lifetime function (maximized); 0 when no lifetime
	// function was supplied.
	Lifetime int
	// Start, Module, Level and FU describe the witness design: per-node
	// start cycle, library module index, voltage operating-point index,
	// and instance index.
	Start, Module, Level, FU []int
	// FUModules names the module of each allocated instance.
	FUModules []string
}

// VerifyInput converts the witness design into a Check input. The
// deadline is the point's own latency (the tightest constraint the
// design satisfies); the power cap is the one the search ran under.
func (p FrontPoint) VerifyInput(g *cdfg.Graph, lib *library.Library, powerMax float64) Input {
	n := len(p.Start)
	in := Input{
		Graph:          g,
		Library:        lib,
		Deadline:       p.Latency,
		PowerMax:       powerMax,
		Start:          append([]int(nil), p.Start...),
		Module:         make([]string, n),
		Level:          append([]int(nil), p.Level...),
		FU:             append([]int(nil), p.FU...),
		FUModules:      append([]string(nil), p.FUModules...),
		ReportedFUArea: p.FUArea,
	}
	for v := 0; v < n; v++ {
		in.Module[v] = lib.Module(p.Module[v]).Name
	}
	if in.Deadline < 1 {
		in.Deadline = 1
	}
	return in
}

// FrontCSV renders the front's objective tuples, one per line, in the
// order given. Witness designs are deliberately excluded: two searches
// over equivalent spaces must produce byte-identical tuple renderings
// even when recursion order picks different witnesses (the metamorphic
// tests rely on this).
func FrontCSV(front []FrontPoint) string {
	var b strings.Builder
	b.WriteString("fu_area,latency,peak_power,lifetime\n")
	for _, p := range front {
		fmt.Fprintf(&b, "%g,%d,%g,%d\n", p.FUArea, p.Latency, p.Peak, p.Lifetime)
	}
	return b.String()
}

// BruteFront exhaustively computes the exact Pareto front over
// (functional-unit area, latency, peak per-cycle power, battery
// lifetime) for a tiny graph: it enumerates every (module, operating
// point, start cycle) assignment within maxDeadline cycles and the
// per-cycle power cap (powerMax <= 0: uncapped), derives each complete
// schedule's four objectives, and keeps the non-dominated set.
//
// The search enumerates schedules, not bindings: for a fixed schedule
// and (module, level) assignment the minimal functional-unit area is
// computed directly, because binding within one (module, level) group is
// exactly interval partitioning — the minimal instance count equals the
// maximum number of group members executing in any one cycle, and a
// greedy first-free scan achieves it. This removes the exponential
// sharing branching of BruteForce while remaining exact.
//
// life maps a power profile (one entry per cycle, trimmed to the
// schedule makespan) to a battery lifetime in schedule periods; nil
// means the lifetime objective is identically 0 (the front degenerates
// to three objectives). Lifetime evaluations are memoized per distinct
// profile.
//
// The returned front is deduplicated on the objective tuple (the
// witness is the first design found achieving it, in deterministic
// recursion order) and sorted by (FUArea, Latency, Peak, -Lifetime).
func BruteFront(g *cdfg.Graph, lib *library.Library, maxDeadline int, powerMax float64, life func(profile []float64) int, opt BruteOptions) ([]FrontPoint, error) {
	opt = opt.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("verify: brute front: %w", err)
	}
	if maxDeadline <= 0 {
		return nil, fmt.Errorf("verify: brute front: deadline %d must be positive", maxDeadline)
	}
	if g.N() > opt.MaxNodes {
		return nil, fmt.Errorf("verify: brute front: %d nodes > limit %d: %w", g.N(), opt.MaxNodes, ErrTooLarge)
	}
	if missing := lib.Covers(g); missing != nil {
		return nil, fmt.Errorf("verify: brute front: no module implements %v", missing)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	n := g.N()
	var (
		start    = make([]int, n)
		moduleOf = make([]int, n)
		levelOf  = make([]int, n)
		profile  = make([]float64, maxDeadline)
		exps     int
		over     bool
		seen     = map[[4]uint64]bool{}
		lifeMemo = map[string]int{}
		points   []FrontPoint
	)

	// lifetime evaluates the caller's lifetime function on the profile
	// prefix, memoized on the profile bytes.
	lifetime := func(latency int) int {
		if life == nil {
			return 0
		}
		key := make([]byte, 8*latency)
		for c := 0; c < latency; c++ {
			binary.LittleEndian.PutUint64(key[8*c:], math.Float64bits(profile[c]))
		}
		k := string(key)
		if v, ok := lifeMemo[k]; ok {
			return v
		}
		v := life(append([]float64(nil), profile[:latency]...))
		lifeMemo[k] = v
		return v
	}

	// leaf derives the complete schedule's objectives and, when its tuple
	// is new, materializes the minimal-area witness binding.
	leaf := func() {
		latency := 0
		for v := 0; v < n; v++ {
			if e := start[v] + lib.Module(moduleOf[v]).Level(levelOf[v]).Delay; e > latency {
				latency = e
			}
		}
		peak := 0.0
		for c := 0; c < latency; c++ {
			if profile[c] > peak {
				peak = profile[c]
			}
		}
		// Minimal area: per (module, level) group, the maximum number of
		// members executing in any one cycle, times the module area.
		type group struct {
			members []int
			need    int
		}
		groups := map[[2]int]*group{}
		var keys [][2]int
		area := 0.0
		for v := 0; v < n; v++ {
			k := [2]int{moduleOf[v], levelOf[v]}
			gr := groups[k]
			if gr == nil {
				gr = &group{}
				groups[k] = gr
				keys = append(keys, k)
			}
			gr.members = append(gr.members, v)
		}
		for _, k := range keys {
			gr := groups[k]
			d := lib.Module(k[0]).Level(k[1]).Delay
			for c := 0; c < latency; c++ {
				busy := 0
				for _, v := range gr.members {
					if start[v] <= c && c < start[v]+d {
						busy++
					}
				}
				if busy > gr.need {
					gr.need = busy
				}
			}
			area += float64(gr.need) * lib.Module(k[0]).Area
		}
		lt := lifetime(latency)
		tuple := [4]uint64{math.Float64bits(area), uint64(latency), math.Float64bits(peak), uint64(lt)}
		if seen[tuple] {
			return
		}
		seen[tuple] = true
		// Witness binding: greedy first-free interval partitioning per
		// group, members in start order — provably uses exactly `need`
		// instances per group.
		p := FrontPoint{
			FUArea:   area,
			Latency:  latency,
			Peak:     peak,
			Lifetime: lt,
			Start:    append([]int(nil), start...),
			Module:   append([]int(nil), moduleOf...),
			Level:    append([]int(nil), levelOf...),
			FU:       make([]int, n),
		}
		for _, k := range keys {
			gr := groups[k]
			d := lib.Module(k[0]).Level(k[1]).Delay
			members := append([]int(nil), gr.members...)
			sort.Slice(members, func(i, j int) bool { return start[members[i]] < start[members[j]] })
			base := len(p.FUModules)
			var freeAt []int
			for _, v := range members {
				f := -1
				for i, free := range freeAt {
					if free <= start[v] {
						f = i
						break
					}
				}
				if f < 0 {
					f = len(freeAt)
					freeAt = append(freeAt, 0)
					p.FUModules = append(p.FUModules, lib.Module(k[0]).Name)
				}
				freeAt[f] = start[v] + d
				p.FU[v] = base + f
			}
		}
		points = append(points, p)
	}

	var rec func(k int)
	rec = func(k int) {
		exps++
		if exps > opt.MaxExpansions {
			over = true
			return
		}
		if k == n {
			leaf()
			return
		}
		v := order[k]
		node := g.Node(v)
		earliest := 0
		for _, p := range g.Preds(v) {
			if e := start[p] + lib.Module(moduleOf[p]).Level(levelOf[p]).Delay; e > earliest {
				earliest = e
			}
		}
		for _, mi := range lib.Candidates(node.Op) {
			m := lib.Module(mi)
			moduleOf[v] = mi
			for li := 0; li < m.NumLevels(); li++ {
				lv := m.Level(li)
				if powerMax > 0 && lv.Power > powerMax+powerEps {
					continue
				}
				levelOf[v] = li
				for t := earliest; t+lv.Delay <= maxDeadline; t++ {
					if over {
						return
					}
					ok := true
					if powerMax > 0 {
						for c := t; c < t+lv.Delay; c++ {
							if profile[c]+lv.Power > powerMax+powerEps {
								ok = false
								break
							}
						}
					}
					if !ok {
						continue
					}
					start[v] = t
					// Restore the profile window by copy, not by
					// subtracting the power back out: (x+p)-p is not
					// bit-exact in floating point, and a drifting profile
					// would make a leaf's peak depend on which sibling
					// branches were explored before it. The metamorphic
					// front tests require leaf tuples to be a pure
					// function of the assignment.
					saved := append([]float64(nil), profile[t:t+lv.Delay]...)
					for c := t; c < t+lv.Delay; c++ {
						profile[c] += lv.Power
					}
					rec(k + 1)
					copy(profile[t:t+lv.Delay], saved)
				}
			}
		}
	}
	rec(0)
	if over {
		return nil, fmt.Errorf("verify: brute front: %w (budget %d)", ErrTooLarge, opt.MaxExpansions)
	}

	// Non-dominated filter: drop every point some other point weakly
	// dominates with at least one strict improvement. Tuples are unique
	// after dedup, so mutual weak domination (equality) cannot occur.
	front := points[:0:0]
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			if q.FUArea <= p.FUArea && q.Latency <= p.Latency && q.Peak <= p.Peak && q.Lifetime >= p.Lifetime &&
				(q.FUArea < p.FUArea || q.Latency < p.Latency || q.Peak < p.Peak || q.Lifetime > p.Lifetime) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].FUArea != front[j].FUArea {
			return front[i].FUArea < front[j].FUArea
		}
		if front[i].Latency != front[j].Latency {
			return front[i].Latency < front[j].Latency
		}
		if front[i].Peak != front[j].Peak {
			return front[i].Peak < front[j].Peak
		}
		return front[i].Lifetime > front[j].Lifetime
	})
	return front, nil
}
