package verify_test

import (
	"errors"
	"testing"

	"pchls/internal/core"
	"pchls/internal/gen"
	"pchls/internal/verify"
)

// tinyInstance derives a small random synthesis problem sized for the
// exhaustive oracle: nodes computation operations plus their transfers.
func tinyInstance(seed int64, nodes int, slackMin, slackMax float64) gen.Instance {
	return gen.NewInstance(seed, gen.InstanceConfig{
		Graph:          gen.GraphConfig{Nodes: nodes, MaxWidth: 2},
		Library:        gen.LibraryConfig{ModulesPerOp: 2, DelayMax: 2},
		SlackMin:       slackMin,
		SlackMax:       slackMax,
		PowerFactorMin: 1.0,
		PowerFactorMax: 2.5,
	})
}

// bruteInput reconstructs a validator Input from a brute-force solution,
// so the oracle's own answers are checked against the same invariants as
// the engine's.
func bruteInput(inst gen.Instance, br *verify.BruteResult) verify.Input {
	n := inst.Graph.N()
	modules := make([]string, n)
	fuCount := 0
	for _, f := range br.FU {
		if f+1 > fuCount {
			fuCount = f + 1
		}
	}
	fuModules := make([]string, fuCount)
	for v := 0; v < n; v++ {
		name := inst.Library.Module(br.Module[v]).Name
		modules[v] = name
		fuModules[br.FU[v]] = name
	}
	return verify.Input{
		Graph:          inst.Graph,
		Library:        inst.Library,
		Deadline:       inst.Deadline,
		PowerMax:       inst.PowerMax,
		Start:          br.Start,
		Module:         modules,
		FU:             br.FU,
		FUModules:      fuModules,
		ReportedFUArea: br.FUArea,
	}
}

// TestBruteDifferentialVsHeuristic runs the heuristic engine and the
// exhaustive reference synthesizer on the same tiny instances and
// cross-checks them:
//
//   - the feasibility verdicts must agree,
//   - the heuristic must never beat the provably optimal area,
//   - the oracle's own solution must pass the independent validator.
//
// Constraint slack stays in the generator's default regime (>= 1.2x the
// critical path); see TestBruteHeuristicIncompletenessIsOneSided for the
// deliberately over-tight regime where greedy pasap is known to give up
// early.
func TestBruteDifferentialVsHeuristic(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 60
	}
	feasible, infeasible, optimal := 0, 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := tinyInstance(seed, 3+int(seed%2), 1.2, 2.2)
		d, herr := core.SynthesizeBest(inst.Graph, inst.Library,
			core.Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}, core.Config{Workers: 1})
		br, berr := verify.BruteForce(inst.Graph, inst.Library, inst.Deadline, inst.PowerMax,
			verify.BruteOptions{MaxNodes: 16})
		if berr != nil {
			t.Fatalf("seed %d: brute force: %v", seed, berr)
		}
		if herr != nil {
			if !errors.Is(herr, core.ErrInfeasible) {
				t.Fatalf("seed %d: heuristic failed with a non-infeasibility error: %v", seed, herr)
			}
			if br.Feasible {
				t.Errorf("seed %d: heuristic declared infeasible but the exhaustive oracle found FU area %.2f (T=%d, P<=%g)",
					seed, br.FUArea, inst.Deadline, inst.PowerMax)
			}
			infeasible++
			continue
		}
		if !br.Feasible {
			t.Errorf("seed %d: heuristic produced a design but the exhaustive oracle proves the instance infeasible (T=%d, P<=%g)",
				seed, inst.Deadline, inst.PowerMax)
			continue
		}
		feasible++
		if d.Datapath.FUArea < br.FUArea-1e-6 {
			t.Errorf("seed %d: heuristic FU area %.2f beats the proven optimum %.2f — one of the two is wrong",
				seed, d.Datapath.FUArea, br.FUArea)
		}
		if d.Datapath.FUArea <= br.FUArea+1e-6 {
			optimal++
		}
		if err := verify.Check(bruteInput(inst, br)); err != nil {
			t.Errorf("seed %d: the oracle's own solution fails the validator: %v", seed, err)
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("constraint distribution degenerate: %d feasible, %d infeasible — the differential test needs both", feasible, infeasible)
	}
	t.Logf("%d instances: %d feasible (heuristic optimal on %d), %d infeasible, verdicts all agree", seeds, feasible, optimal, infeasible)
}

// TestBruteHeuristicIncompletenessIsOneSided pushes the slack down to the
// critical path itself, where the greedy pasap scheduler is expected to
// sometimes give up on instances the exhaustive search can still solve.
// That direction is acceptable for a heuristic (the paper's algorithm
// offers no completeness guarantee); the reverse direction — the engine
// emitting a design for an instance the oracle proves infeasible — would
// be a soundness bug and fails the test.
func TestBruteHeuristicIncompletenessIsOneSided(t *testing.T) {
	seeds := int64(400)
	if testing.Short() {
		seeds = 60
	}
	missed := 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := tinyInstance(seed, 4, 1.0, 1.3)
		_, herr := core.SynthesizeBest(inst.Graph, inst.Library,
			core.Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}, core.Config{Workers: 1})
		br, berr := verify.BruteForce(inst.Graph, inst.Library, inst.Deadline, inst.PowerMax,
			verify.BruteOptions{MaxNodes: 16})
		if berr != nil {
			t.Fatalf("seed %d: brute force: %v", seed, berr)
		}
		switch {
		case herr == nil && !br.Feasible:
			t.Errorf("seed %d: UNSOUND: heuristic produced a design, oracle proves infeasibility (T=%d, P<=%g)",
				seed, inst.Deadline, inst.PowerMax)
		case herr != nil && br.Feasible:
			missed++ // known greedy incompleteness; tolerated
		}
	}
	t.Logf("heuristic missed %d/%d feasible instances at critical-path slack (greedy incompleteness, one-sided)", missed, seeds)
}

// TestBruteMetamorphicRelaxation: relaxing either constraint can only
// help. For every tiny instance, raising the deadline or the power cap
// (or removing the cap) must keep a feasible instance feasible and never
// increase the provably optimal functional-unit area.
func TestBruteMetamorphicRelaxation(t *testing.T) {
	seeds := int64(150)
	if testing.Short() {
		seeds = 30
	}
	checked := 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := tinyInstance(seed, 3, 1.0, 1.8)
		base, err := verify.BruteForce(inst.Graph, inst.Library, inst.Deadline, inst.PowerMax,
			verify.BruteOptions{MaxNodes: 16})
		if err != nil {
			t.Fatalf("seed %d: brute force: %v", seed, err)
		}
		relaxations := []struct {
			name     string
			deadline int
			powerMax float64
		}{
			{"deadline+1", inst.Deadline + 1, inst.PowerMax},
			{"deadline+3", inst.Deadline + 3, inst.PowerMax},
			{"power*1.5", inst.Deadline, inst.PowerMax * 1.5},
			{"power-unconstrained", inst.Deadline, 0},
			{"both", inst.Deadline + 2, inst.PowerMax * 2},
		}
		for _, r := range relaxations {
			relaxed, err := verify.BruteForce(inst.Graph, inst.Library, r.deadline, r.powerMax,
				verify.BruteOptions{MaxNodes: 16})
			if err != nil {
				t.Fatalf("seed %d %s: brute force: %v", seed, r.name, err)
			}
			if base.Feasible && !relaxed.Feasible {
				t.Errorf("seed %d: relaxation %s turned a feasible instance infeasible", seed, r.name)
			}
			if base.Feasible && relaxed.Feasible && relaxed.FUArea > base.FUArea+1e-6 {
				t.Errorf("seed %d: relaxation %s increased the optimal FU area %.2f -> %.2f",
					seed, r.name, base.FUArea, relaxed.FUArea)
			}
			checked++
		}
	}
	t.Logf("checked %d relaxation pairs", checked)
}

func TestBruteRejectsOversizedAndMalformed(t *testing.T) {
	inst := tinyInstance(1, 6, 1.5, 2.0) // > 8 total nodes with transfers
	if _, err := verify.BruteForce(inst.Graph, inst.Library, inst.Deadline, inst.PowerMax, verify.BruteOptions{}); !errors.Is(err, verify.ErrTooLarge) {
		t.Errorf("default MaxNodes accepted a %d-node graph: %v", inst.Graph.N(), err)
	}
	if _, err := verify.BruteForce(inst.Graph, inst.Library, 0, 0, verify.BruteOptions{MaxNodes: 32}); err == nil {
		t.Error("non-positive deadline accepted")
	}
	// An exhausted expansion budget is an error, never a weaker verdict.
	if _, err := verify.BruteForce(inst.Graph, inst.Library, inst.Deadline, inst.PowerMax,
		verify.BruteOptions{MaxNodes: 32, MaxExpansions: 5}); !errors.Is(err, verify.ErrTooLarge) {
		t.Errorf("budget exhaustion not reported as ErrTooLarge: %v", err)
	}
}
