package verify_test

import (
	"errors"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/verify"
)

// TestMutationsAreCaught is the validator's self-test: every class of
// corruption applied to a known-good design must be caught and attributed
// to the precise invariant it breaks. A validator that misses any of
// these would also wave through the corresponding engine bug.
func TestMutationsAreCaught(t *testing.T) {
	base := validInput(t, "hal", 17, 7.5)
	if err := verify.Check(base); err != nil {
		t.Fatalf("baseline design must be valid: %v", err)
	}

	// Helper lookups over the pristine input.
	delay := func(in verify.Input, v int) int {
		m, ok := in.Library.Lookup(in.Module[v])
		if !ok {
			t.Fatalf("unknown module %q", in.Module[v])
		}
		return m.Delay
	}
	// A node with at least one predecessor, for precedence corruption.
	dependent := -1
	for _, n := range base.Graph.Nodes() {
		if len(base.Graph.Preds(n.ID)) > 0 {
			dependent = int(n.ID)
			break
		}
	}
	if dependent < 0 {
		t.Fatal("benchmark has no dependent node")
	}
	// Two nodes whose execution intervals overlap but run on different
	// instances, for the overbinding corruption.
	overA, overB := -1, -1
	n := base.Graph.N()
	for a := 0; a < n && overA < 0; a++ {
		for b := a + 1; b < n; b++ {
			if base.FU[a] == base.FU[b] {
				continue
			}
			aEnd := base.Start[a] + delay(base, a)
			bEnd := base.Start[b] + delay(base, b)
			if base.Start[a] < bEnd && base.Start[b] < aEnd {
				overA, overB = a, b
				break
			}
		}
	}
	if overA < 0 {
		t.Fatal("no concurrently executing node pair found; pick a tighter benchmark")
	}
	// peak per-cycle power of the valid schedule, for the power corruption.
	peak := 0.0
	for cycle := 0; cycle < base.Deadline; cycle++ {
		total := 0.0
		for v := 0; v < n; v++ {
			if base.Start[v] <= cycle && cycle < base.Start[v]+delay(base, v) {
				m, _ := base.Library.Lookup(base.Module[v])
				total += m.Power
			}
		}
		if total > peak {
			peak = total
		}
	}

	cases := []struct {
		name   string
		mutate func(in *verify.Input)
		want   error
	}{
		{
			name: "start shifted before producer finishes",
			mutate: func(in *verify.Input) {
				pred := base.Graph.Preds(cdfg.NodeID(dependent))[0]
				in.Start[dependent] = in.Start[pred] // producer still executing
			},
			want: verify.ErrPrecedence,
		},
		{
			name: "negative start time",
			mutate: func(in *verify.Input) {
				in.Start[dependent] = -1
			},
			want: verify.ErrPrecedence,
		},
		{
			name: "sink pushed past the deadline",
			mutate: func(in *verify.Input) {
				sink := base.Graph.Sinks()[0]
				in.Start[sink] = in.Deadline // ends at T+delay > T
			},
			want: verify.ErrDeadline,
		},
		{
			name: "power cap tightened below the schedule's peak",
			mutate: func(in *verify.Input) {
				in.PowerMax = peak / 2
			},
			want: verify.ErrPower,
		},
		{
			name: "two concurrent operations overbound to one instance",
			mutate: func(in *verify.Input) {
				in.FU[overA] = in.FU[overB]
			},
			want: verify.ErrOverlap,
		},
		{
			name: "node rebound to a module that cannot execute it",
			mutate: func(in *verify.Input) {
				// hal has both * and + nodes; claim a multiplier runs on
				// the adder.
				for _, nd := range base.Graph.Nodes() {
					if nd.Op == cdfg.Mul {
						in.Module[nd.ID] = library.NameAdd
						return
					}
				}
				t.Fatal("no multiply node")
			},
			want: verify.ErrBinding,
		},
		{
			name: "schedule module disagrees with bound instance",
			mutate: func(in *verify.Input) {
				// Claim a different but type-compatible module (add vs ALU)
				// for an add node without moving its instance binding.
				for _, nd := range base.Graph.Nodes() {
					if nd.Op != cdfg.Add {
						continue
					}
					if in.Module[nd.ID] == library.NameALU {
						in.Module[nd.ID] = library.NameAdd
					} else {
						in.Module[nd.ID] = library.NameALU
					}
					return
				}
				t.Fatal("no add node")
			},
			want: verify.ErrBinding,
		},
		{
			name: "instance dropped with bindings left dangling",
			mutate: func(in *verify.Input) {
				in.FUModules = in.FUModules[:len(in.FUModules)-1]
			},
			want: verify.ErrShape,
		},
		{
			name: "phantom unused instance allocated",
			mutate: func(in *verify.Input) {
				in.FUModules = append(in.FUModules, library.NameAdd)
			},
			want: verify.ErrArea,
		},
		{
			name: "reported area inflated",
			mutate: func(in *verify.Input) {
				in.ReportedFUArea += 1
			},
			want: verify.ErrArea,
		},
		{
			name: "reported area deflated",
			mutate: func(in *verify.Input) {
				in.ReportedFUArea -= 1
			},
			want: verify.ErrArea,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := base.Clone()
			c.mutate(&in)
			err := verify.Check(in)
			if err == nil {
				t.Fatal("corrupted design passed the validator")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("corruption attributed to the wrong class:\n got: %v\nwant: %v", err, c.want)
			}
		})
	}

	// Cloning really isolates mutations: the baseline must still pass
	// after every case above corrupted its clone.
	if err := verify.Check(base); err != nil {
		t.Fatalf("baseline was mutated by a test case: %v", err)
	}
}

// levelInput hand-builds a valid voltage-scaled design: a1 -> a2 share an
// instance at the slow 3.3V point (delay 2), an independent a3 runs at
// the nominal 5V point on its own instance. Every value below is chosen
// so that a validator using nominal delays/powers instead of the claimed
// level's would reach a different verdict on the mutations.
func levelInput(t *testing.T) verify.Input {
	t.Helper()
	g := cdfg.New("levels")
	a1 := g.MustAddNode("a1", cdfg.Add)
	a2 := g.MustAddNode("a2", cdfg.Add)
	g.MustAddNode("a3", cdfg.Add)
	g.MustAddEdge(a1, a2)
	lib := library.MustNew([]library.Module{{
		Name: "add", Ops: []cdfg.Op{cdfg.Add}, Area: 50,
		Levels: []library.OperatingPoint{
			{Voltage: 5, Delay: 1, Power: 8},
			{Voltage: 3.3, Delay: 2, Power: 3.5},
		},
	}})
	return verify.Input{
		Graph:          g,
		Library:        lib,
		Deadline:       4,
		PowerMax:       12, // cycle 0 draws 3.5 + 8 = 11.5; nominal-for-all would be 16
		Start:          []int{0, 2, 0},
		Module:         []string{"add", "add", "add"},
		Level:          []int{1, 1, 0},
		FU:             []int{0, 0, 1},
		FUModules:      []string{"add", "add"},
		ReportedFUArea: 100,
	}
}

// TestLevelMutationsAreCaught extends the validator self-test to the
// voltage-level invariants: level indices must be in range, operations
// sharing an instance must agree on the level, and the precedence,
// deadline and overlap checks must use the claimed level's delay — a
// validator falling back to nominal delays would pass every "level-aware"
// case below.
func TestLevelMutationsAreCaught(t *testing.T) {
	base := levelInput(t)
	if err := verify.Check(base); err != nil {
		t.Fatalf("baseline voltage-scaled design must be valid: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(in *verify.Input)
		want   error
	}{
		{
			name:   "level index past the module's operating points",
			mutate: func(in *verify.Input) { in.Level[0] = 2 },
			want:   verify.ErrLevel,
		},
		{
			name:   "negative level index",
			mutate: func(in *verify.Input) { in.Level[0] = -1 },
			want:   verify.ErrLevel,
		},
		{
			name: "operations sharing an instance disagree on the voltage",
			// a2 alone drops to nominal: its own schedule stays legal
			// (starts at 2, ends at 3), so only the per-instance voltage
			// consistency check can catch it.
			mutate: func(in *verify.Input) { in.Level[1] = 0 },
			want:   verify.ErrLevel,
		},
		{
			name:   "level assignment truncated",
			mutate: func(in *verify.Input) { in.Level = in.Level[:2] },
			want:   verify.ErrShape,
		},
		{
			name: "level-aware precedence: consumer inside the slow producer",
			// a1 at 3.3V runs cycles 0-1; starting a2 at cycle 1 is only
			// illegal if the validator uses the level delay (nominal delay
			// 1 would have a1 done by then).
			mutate: func(in *verify.Input) { in.Start[1] = 1 },
			want:   verify.ErrPrecedence,
		},
		{
			name: "level-aware deadline: makespan counted at the slow level",
			// a2 ends at cycle 4 under its claimed level; at nominal delay
			// it would end at 3 and T = 3 would look satisfied.
			mutate: func(in *verify.Input) { in.Deadline = 3 },
			want:   verify.ErrDeadline,
		},
		{
			name: "level-aware occupancy: slow operations overlap on one instance",
			// a3 joins instance 0 at the instance's level, starting inside
			// a1's 2-cycle execution. At nominal delays the intervals
			// [0,1) and [1,2) would be disjoint. Instance 1 going unused
			// additionally trips the area accounting, which is fine: the
			// occupancy violation must still be attributed.
			mutate: func(in *verify.Input) {
				in.FU[2] = 0
				in.Level[2] = 1
				in.Start[2] = 1
			},
			want: verify.ErrOverlap,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := base.Clone()
			c.mutate(&in)
			err := verify.Check(in)
			if err == nil {
				t.Fatal("corrupted voltage-scaled design passed the validator")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("corruption attributed to the wrong class:\n got: %v\nwant: %v", err, c.want)
			}
		})
	}

	if err := verify.Check(base); err != nil {
		t.Fatalf("baseline was mutated by a test case: %v", err)
	}
}
