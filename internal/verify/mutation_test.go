package verify_test

import (
	"errors"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/verify"
)

// TestMutationsAreCaught is the validator's self-test: every class of
// corruption applied to a known-good design must be caught and attributed
// to the precise invariant it breaks. A validator that misses any of
// these would also wave through the corresponding engine bug.
func TestMutationsAreCaught(t *testing.T) {
	base := validInput(t, "hal", 17, 7.5)
	if err := verify.Check(base); err != nil {
		t.Fatalf("baseline design must be valid: %v", err)
	}

	// Helper lookups over the pristine input.
	delay := func(in verify.Input, v int) int {
		m, ok := in.Library.Lookup(in.Module[v])
		if !ok {
			t.Fatalf("unknown module %q", in.Module[v])
		}
		return m.Delay
	}
	// A node with at least one predecessor, for precedence corruption.
	dependent := -1
	for _, n := range base.Graph.Nodes() {
		if len(base.Graph.Preds(n.ID)) > 0 {
			dependent = int(n.ID)
			break
		}
	}
	if dependent < 0 {
		t.Fatal("benchmark has no dependent node")
	}
	// Two nodes whose execution intervals overlap but run on different
	// instances, for the overbinding corruption.
	overA, overB := -1, -1
	n := base.Graph.N()
	for a := 0; a < n && overA < 0; a++ {
		for b := a + 1; b < n; b++ {
			if base.FU[a] == base.FU[b] {
				continue
			}
			aEnd := base.Start[a] + delay(base, a)
			bEnd := base.Start[b] + delay(base, b)
			if base.Start[a] < bEnd && base.Start[b] < aEnd {
				overA, overB = a, b
				break
			}
		}
	}
	if overA < 0 {
		t.Fatal("no concurrently executing node pair found; pick a tighter benchmark")
	}
	// peak per-cycle power of the valid schedule, for the power corruption.
	peak := 0.0
	for cycle := 0; cycle < base.Deadline; cycle++ {
		total := 0.0
		for v := 0; v < n; v++ {
			if base.Start[v] <= cycle && cycle < base.Start[v]+delay(base, v) {
				m, _ := base.Library.Lookup(base.Module[v])
				total += m.Power
			}
		}
		if total > peak {
			peak = total
		}
	}

	cases := []struct {
		name   string
		mutate func(in *verify.Input)
		want   error
	}{
		{
			name: "start shifted before producer finishes",
			mutate: func(in *verify.Input) {
				pred := base.Graph.Preds(cdfg.NodeID(dependent))[0]
				in.Start[dependent] = in.Start[pred] // producer still executing
			},
			want: verify.ErrPrecedence,
		},
		{
			name: "negative start time",
			mutate: func(in *verify.Input) {
				in.Start[dependent] = -1
			},
			want: verify.ErrPrecedence,
		},
		{
			name: "sink pushed past the deadline",
			mutate: func(in *verify.Input) {
				sink := base.Graph.Sinks()[0]
				in.Start[sink] = in.Deadline // ends at T+delay > T
			},
			want: verify.ErrDeadline,
		},
		{
			name: "power cap tightened below the schedule's peak",
			mutate: func(in *verify.Input) {
				in.PowerMax = peak / 2
			},
			want: verify.ErrPower,
		},
		{
			name: "two concurrent operations overbound to one instance",
			mutate: func(in *verify.Input) {
				in.FU[overA] = in.FU[overB]
			},
			want: verify.ErrOverlap,
		},
		{
			name: "node rebound to a module that cannot execute it",
			mutate: func(in *verify.Input) {
				// hal has both * and + nodes; claim a multiplier runs on
				// the adder.
				for _, nd := range base.Graph.Nodes() {
					if nd.Op == cdfg.Mul {
						in.Module[nd.ID] = library.NameAdd
						return
					}
				}
				t.Fatal("no multiply node")
			},
			want: verify.ErrBinding,
		},
		{
			name: "schedule module disagrees with bound instance",
			mutate: func(in *verify.Input) {
				// Claim a different but type-compatible module (add vs ALU)
				// for an add node without moving its instance binding.
				for _, nd := range base.Graph.Nodes() {
					if nd.Op != cdfg.Add {
						continue
					}
					if in.Module[nd.ID] == library.NameALU {
						in.Module[nd.ID] = library.NameAdd
					} else {
						in.Module[nd.ID] = library.NameALU
					}
					return
				}
				t.Fatal("no add node")
			},
			want: verify.ErrBinding,
		},
		{
			name: "instance dropped with bindings left dangling",
			mutate: func(in *verify.Input) {
				in.FUModules = in.FUModules[:len(in.FUModules)-1]
			},
			want: verify.ErrShape,
		},
		{
			name: "phantom unused instance allocated",
			mutate: func(in *verify.Input) {
				in.FUModules = append(in.FUModules, library.NameAdd)
			},
			want: verify.ErrArea,
		},
		{
			name: "reported area inflated",
			mutate: func(in *verify.Input) {
				in.ReportedFUArea += 1
			},
			want: verify.ErrArea,
		},
		{
			name: "reported area deflated",
			mutate: func(in *verify.Input) {
				in.ReportedFUArea -= 1
			},
			want: verify.ErrArea,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := base.Clone()
			c.mutate(&in)
			err := verify.Check(in)
			if err == nil {
				t.Fatal("corrupted design passed the validator")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("corruption attributed to the wrong class:\n got: %v\nwant: %v", err, c.want)
			}
		})
	}

	// Cloning really isolates mutations: the baseline must still pass
	// after every case above corrupted its clone.
	if err := verify.Check(base); err != nil {
		t.Fatalf("baseline was mutated by a test case: %v", err)
	}
}
