package verify_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/explore"
	"pchls/internal/gen"
	"pchls/internal/library"
	"pchls/internal/power"
	"pchls/internal/sched"
	"pchls/internal/verify"
)

// frontMaxPeriods caps every battery simulation in this file. It bounds
// the per-leaf lifetime cost of the exhaustive searches while staying far
// above the ~50-period lifetimes the default battery sizing produces.
const frontMaxPeriods = 4096

// tinyDVSInstance derives a small random synthesis problem whose library
// carries two voltage operating points per computation module, sized for
// the exhaustive front oracle.
func tinyDVSInstance(seed int64, nodes int) gen.Instance {
	return gen.NewInstance(seed, gen.InstanceConfig{
		Graph:          gen.GraphConfig{Nodes: nodes, MaxWidth: 2},
		Library:        gen.LibraryConfig{ModulesPerOp: 2, DelayMax: 2, Levels: 2},
		SlackMin:       1.2,
		SlackMax:       2.2,
		PowerFactorMin: 1.0,
		PowerFactorMax: 2.5,
	})
}

// frontBattery builds the battery model an instance's lifetime objective
// uses, plus the profile->periods closure both the production search and
// the oracle score with. Capacity is 8x the energy of one fastest-ASAP
// period — small enough that per-leaf lifetime simulations stay cheap
// across millions of enumerated schedules, large enough that different
// profiles still earn different lifetimes.
func frontBattery(t *testing.T, inst gen.Instance, model string) (power.Battery, func([]float64) int) {
	t.Helper()
	base, err := sched.ASAP(inst.Graph, sched.UniformFastest(inst.Library))
	if err != nil {
		t.Fatalf("seed %d: asap: %v", inst.Seed, err)
	}
	energy := 0.0
	for _, p := range base.Profile() {
		energy += p
	}
	b, err := explore.NewBattery(model, energy*8)
	if err != nil {
		t.Fatalf("seed %d: battery: %v", inst.Seed, err)
	}
	return b, func(profile []float64) int {
		periods, _ := b.Lifetime(profile, frontMaxPeriods)
		return periods
	}
}

// frontDeadline caps the exhaustive search at two cycles past the
// fastest-module critical path. The instance's own (slack-derived)
// deadline can make the (module, level, start) space explode; both
// sides of every differential below search the same capped space, so
// the comparison stays exact.
func frontDeadline(t *testing.T, inst gen.Instance) int {
	t.Helper()
	base, err := sched.ASAP(inst.Graph, sched.UniformFastest(inst.Library))
	if err != nil {
		t.Fatalf("seed %d: asap: %v", inst.Seed, err)
	}
	maxD := base.Length() + 2
	if maxD > inst.Deadline {
		maxD = inst.Deadline
	}
	return maxD
}

// oracleFrontCSV recomputes the exact Pareto front with an independent
// implementation and renders it in verify.FrontCSV's format. It walks the
// same (module, level, start) space as verify.BruteFront — the space IS
// the specification — but everything derived from a complete schedule is
// coded differently: per-candidate precomputed tables instead of library
// lookups in the hot loop, difference-array occupancy counting instead of
// per-cycle membership scans for the minimal instance count, string-keyed
// tuple dedup, and a sort-then-prefix-scan non-dominated filter (after
// the lexicographic sort a dominator always precedes its victim, so only
// earlier tuples need checking). Float sums follow the same operand order
// as the production code so matching fronts compare byte-identical.
func oracleFrontCSV(g *cdfg.Graph, lib *library.Library, maxDeadline int, powerMax float64, life func([]float64) int) (string, int) {
	order, err := g.TopoOrder()
	if err != nil {
		panic(err)
	}
	n := g.N()
	type cand struct {
		mi, li int
		delay  int
		power  float64
	}
	cands := make([][]cand, n)
	for v := 0; v < n; v++ {
		for _, mi := range lib.Candidates(g.Node(cdfg.NodeID(v)).Op) {
			m := lib.Module(mi)
			for li := 0; li < m.NumLevels(); li++ {
				lv := m.Level(li)
				if powerMax > 0 && lv.Power > powerMax+1e-9 {
					continue
				}
				cands[v] = append(cands[v], cand{mi: mi, li: li, delay: lv.Delay, power: lv.Power})
			}
		}
	}
	type tuple struct {
		area float64
		lat  int
		peak float64
		life int
	}
	var (
		pick   = make([]int, n)
		at     = make([]int, n)
		prof   = make([]float64, maxDeadline)
		uniq   = map[string]tuple{}
		memo   = map[string]int{}
		leaves int
	)
	score := func() {
		leaves++
		lat := 0
		for v := 0; v < n; v++ {
			if end := at[v] + cands[v][pick[v]].delay; end > lat {
				lat = end
			}
		}
		peak := 0.0
		for c := 0; c < lat; c++ {
			if prof[c] > peak {
				peak = prof[c]
			}
		}
		// Minimal functional-unit area: per (module, level) group the
		// peak of a +1/-1 difference array over the members' execution
		// intervals, times the module area. Groups accumulate in node-
		// index first-seen order (the production code's order) so the
		// float sum is bit-identical when the fronts agree.
		area := 0.0
		grouped := map[[2]int][]int{}
		var gorder [][2]int
		for v := 0; v < n; v++ {
			k := [2]int{cands[v][pick[v]].mi, cands[v][pick[v]].li}
			if _, ok := grouped[k]; !ok {
				gorder = append(gorder, k)
			}
			grouped[k] = append(grouped[k], v)
		}
		for _, k := range gorder {
			d := lib.Module(k[0]).Level(k[1]).Delay
			diff := make([]int, lat+1)
			for _, v := range grouped[k] {
				diff[at[v]]++
				diff[at[v]+d]--
			}
			need, run := 0, 0
			for _, step := range diff {
				run += step
				if run > need {
					need = run
				}
			}
			area += float64(need) * lib.Module(k[0]).Area
		}
		lt := 0
		if life != nil {
			pk := fmt.Sprintf("%x", prof[:lat])
			v, ok := memo[pk]
			if !ok {
				v = life(append([]float64(nil), prof[:lat]...))
				memo[pk] = v
			}
			lt = v
		}
		key := fmt.Sprintf("%g,%d,%g,%d", area, lat, peak, lt)
		if _, ok := uniq[key]; !ok {
			uniq[key] = tuple{area: area, lat: lat, peak: peak, life: lt}
		}
	}
	var walk func(step int)
	walk = func(step int) {
		if step == n {
			score()
			return
		}
		v := order[step]
		earliest := 0
		for _, p := range g.Preds(v) {
			if end := at[p] + cands[p][pick[p]].delay; end > earliest {
				earliest = end
			}
		}
		for ci, c := range cands[v] {
			pick[v] = ci
			for t := earliest; t+c.delay <= maxDeadline; t++ {
				fits := true
				if powerMax > 0 {
					for cc := t; cc < t+c.delay; cc++ {
						if prof[cc]+c.power > powerMax+1e-9 {
							fits = false
							break
						}
					}
				}
				if !fits {
					continue
				}
				at[v] = t
				window := append([]float64(nil), prof[t:t+c.delay]...)
				for cc := t; cc < t+c.delay; cc++ {
					prof[cc] += c.power
				}
				walk(step + 1)
				copy(prof[t:t+c.delay], window)
			}
		}
	}
	walk(0)

	tuples := make([]tuple, 0, len(uniq))
	for _, tu := range uniq {
		tuples = append(tuples, tu)
	}
	sort.Slice(tuples, func(i, j int) bool {
		a, b := tuples[i], tuples[j]
		if a.area != b.area {
			return a.area < b.area
		}
		if a.lat != b.lat {
			return a.lat < b.lat
		}
		if a.peak != b.peak {
			return a.peak < b.peak
		}
		return a.life > b.life
	})
	var sb strings.Builder
	sb.WriteString("fu_area,latency,peak_power,lifetime\n")
	for i, p := range tuples {
		dominated := false
		for j := 0; j < i; j++ {
			q := tuples[j]
			// Tuples are unique, so weak domination here is always
			// strict somewhere.
			if q.area <= p.area && q.lat <= p.lat && q.peak <= p.peak && q.life >= p.life {
				dominated = true
				break
			}
		}
		if !dominated {
			fmt.Fprintf(&sb, "%g,%d,%g,%d\n", p.area, p.lat, p.peak, p.life)
		}
	}
	return sb.String(), leaves
}

// TestFrontDifferentialVsOracle cross-checks verify.BruteFront against
// the independently-coded oracle above on 200 random multi-level
// instances: the two exact searches must render byte-identical fronts
// (no dominated point reported, no non-dominated point missed, no tuple
// mis-scored), and every witness design BruteFront returns must pass the
// independent validator under the point's own latency as deadline.
func TestFrontDifferentialVsOracle(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 40
	}
	multiPoint, totalPoints := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := tinyDVSInstance(seed, 3)
		if !inst.Library.MultiLevel() {
			t.Fatalf("seed %d: generator produced a single-level library despite Levels: 2", seed)
		}
		_, life := frontBattery(t, inst, "kibam")
		maxD := frontDeadline(t, inst)
		front, err := verify.BruteFront(inst.Graph, inst.Library, maxD, inst.PowerMax, life,
			verify.BruteOptions{MaxNodes: 16})
		if err != nil {
			t.Fatalf("seed %d: brute front: %v", seed, err)
		}
		got := verify.FrontCSV(front)
		want, leaves := oracleFrontCSV(inst.Graph, inst.Library, maxD, inst.PowerMax, life)
		if got != want {
			t.Errorf("seed %d (T=%d, P<=%g): BruteFront disagrees with the independent oracle\nbrute:\n%s\noracle (%d schedules):\n%s",
				seed, maxD, inst.PowerMax, got, leaves, want)
		}
		for i, p := range front {
			if err := verify.Check(p.VerifyInput(inst.Graph, inst.Library, inst.PowerMax)); err != nil {
				t.Errorf("seed %d: front point %d witness fails the validator: %v", seed, i, err)
			}
		}
		totalPoints += len(front)
		if len(front) > 1 {
			multiPoint++
		}
	}
	if multiPoint == 0 {
		t.Fatalf("distribution degenerate: no instance produced a multi-point front — the differential test exercised no trade-offs")
	}
	t.Logf("%d instances: %d front points total, %d fronts with a genuine trade-off", seeds, totalPoints, multiPoint)
}

// dominatedLevelLibrary returns a copy of lib where every module gains
// one extra operating point that is strictly worse than the module's
// nominal point in both delay and power. Such a point can contribute no
// new non-dominated tuple: any schedule using it is weakly dominated by
// the same schedule running those operations at the nominal point.
func dominatedLevelLibrary(t *testing.T, lib *library.Library) *library.Library {
	t.Helper()
	mods := lib.Modules()
	for i := range mods {
		m := &mods[i]
		worstDelay, worstPower, maxVolt := 0, 0.0, 0.0
		for li := 0; li < m.NumLevels(); li++ {
			lv := m.Level(li)
			if lv.Delay > worstDelay {
				worstDelay = lv.Delay
			}
			if lv.Power > worstPower {
				worstPower = lv.Power
			}
			if lv.Voltage > maxVolt {
				maxVolt = lv.Voltage
			}
		}
		if len(m.Levels) == 0 {
			m.Levels = []library.OperatingPoint{m.Level(0)}
		}
		m.Levels = append(m.Levels, library.OperatingPoint{
			Voltage: maxVolt + 1, Delay: worstDelay + 2, Power: worstPower + 3.5,
		})
	}
	out, err := library.New(mods)
	if err != nil {
		t.Fatalf("dominated-level library rejected: %v", err)
	}
	return out
}

// TestFrontMetamorphicDominatedLevel: adding a strictly-dominated
// operating point to every module must leave the exact front
// byte-identical — the search space grows, but no new schedule can reach
// a tuple the original space did not already weakly dominate. The
// battery is Peukert because its lifetime is provably monotone in the
// power profile (per-period charge is a sum of per-cycle terms), so a
// pointwise-lower, shorter profile can never shorten the lifetime.
func TestFrontMetamorphicDominatedLevel(t *testing.T) {
	seeds := int64(80)
	if testing.Short() {
		seeds = 20
	}
	nonEmpty := 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := tinyDVSInstance(seed, 3)
		_, life := frontBattery(t, inst, "peukert")
		maxD := frontDeadline(t, inst)
		base, err := verify.BruteFront(inst.Graph, inst.Library, maxD, inst.PowerMax, life,
			verify.BruteOptions{MaxNodes: 16})
		if err != nil {
			t.Fatalf("seed %d: brute front: %v", seed, err)
		}
		padded, err := verify.BruteFront(inst.Graph, dominatedLevelLibrary(t, inst.Library), maxD, inst.PowerMax, life,
			verify.BruteOptions{MaxNodes: 16})
		if err != nil {
			t.Fatalf("seed %d: brute front on padded library: %v", seed, err)
		}
		if got, want := verify.FrontCSV(padded), verify.FrontCSV(base); got != want {
			t.Errorf("seed %d: a strictly-dominated level changed the front\nwithout:\n%s\nwith:\n%s", seed, want, got)
		}
		if len(base) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("distribution degenerate: every instance was infeasible")
	}
	t.Logf("%d instances (%d with non-empty fronts): dominated levels never moved a front", seeds, nonEmpty)
}

// TestParetoHeuristicNeverUnsound locks the heuristic explorer to the
// exact front on 200 random multi-level instances. The heuristic samples
// a (deadline, power) grid and cannot promise completeness — the exact
// front can refine peak power and lifetime beyond what an area-minimizing
// synthesizer at fixed constraints expresses — but it must never be
// UNSOUND:
//
//   - every reported design passes the independent validator,
//   - every reported point is weakly dominated by (or ties) a point of
//     the exhaustive front — a heuristic point beating the proven-exact
//     front would mean one of the two searches is wrong.
//
// Exact tuple-set matches are counted and logged; completeness itself is
// guaranteed oracle-vs-oracle by TestFrontDifferentialVsOracle.
func TestParetoHeuristicNeverUnsound(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 40
	}
	matched, fronts := 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := tinyDVSInstance(seed, 3)
		b, life := frontBattery(t, inst, "kibam")
		maxD := frontDeadline(t, inst)
		exact, err := verify.BruteFront(inst.Graph, inst.Library, maxD, inst.PowerMax, life,
			verify.BruteOptions{MaxNodes: 16})
		if err != nil {
			t.Fatalf("seed %d: brute front: %v", seed, err)
		}
		deadlines := make([]int, maxD)
		for i := range deadlines {
			deadlines[i] = i + 1
		}
		front, err := explore.ExplorePareto(inst.Graph, inst.Library, explore.ParetoConfig{
			Deadlines:  deadlines,
			Powers:     []float64{inst.PowerMax},
			Battery:    b,
			MaxPeriods: frontMaxPeriods,
			Workers:    1,
			Config:     core.Config{Workers: 1},
		})
		if err != nil {
			t.Fatalf("seed %d: explore pareto: %v", seed, err)
		}
		if len(front.Points) > 0 {
			fronts++
		}
		exactMatch := len(front.Points) == len(exact)
		for _, p := range front.Points {
			if err := verify.Check(core.VerifyInput(p.Design)); err != nil {
				t.Errorf("seed %d: heuristic front design (T=%d) rejected by the validator: %v", seed, p.Deadline, err)
			}
			fuArea := p.Design.Datapath.FUArea
			covered, tied := false, false
			for _, e := range exact {
				if e.FUArea <= fuArea+1e-6 && e.Latency <= p.Latency && e.Peak <= p.Peak+1e-6 && e.Lifetime >= p.Lifetime {
					covered = true
					if e.FUArea >= fuArea-1e-6 && e.Latency == p.Latency && e.Peak >= p.Peak-1e-6 && e.Lifetime == p.Lifetime {
						tied = true
					}
				}
			}
			if !covered {
				t.Errorf("seed %d: UNSOUND: heuristic point (fu_area %.2f, latency %d, peak %.4g, lifetime %d) beats the exhaustive front",
					seed, fuArea, p.Latency, p.Peak, p.Lifetime)
			}
			if !tied {
				exactMatch = false
			}
		}
		if exactMatch {
			matched++
		}
		// Infeasibility must agree: a non-empty exact front means some
		// design fits the bounds, and the loosest grid cell asks for
		// exactly those bounds under a complete-on-tiny-instances
		// portfolio; an empty heuristic front there is a missed design.
		if len(exact) > 0 && len(front.Points) == 0 {
			t.Errorf("seed %d: exact front has %d points but the heuristic found none (T=%d, P<=%g)",
				seed, len(exact), maxD, inst.PowerMax)
		}
		if len(exact) == 0 && len(front.Points) > 0 {
			t.Errorf("seed %d: UNSOUND: heuristic reports %d points on an instance the exhaustive search proves infeasible",
				seed, len(front.Points))
		}
	}
	if fronts == 0 {
		t.Fatal("distribution degenerate: every instance was infeasible")
	}
	t.Logf("%d instances: heuristic front sound on all; exact tuple-set match on %d (completeness is oracle-guaranteed, not heuristic-guaranteed)", seeds, matched)
}
