// Package verify is an independent validator for synthesis results: it
// re-derives every invariant the paper promises of a valid design —
// precedence, latency, per-cycle power, exclusive module occupancy,
// binding type-compatibility and area accounting — from first principles,
// sharing no code with the synthesis engine.
//
// Independence is the point: internal/core and internal/sched guard each
// optimisation with byte-identity against the previous implementation, so
// a bug both sides share passes silently. This package must therefore
// never import internal/core or internal/sched (an import-graph test
// enforces it); it depends only on the graph and library substrate, and
// every check is written as the naive direct translation of the paper's
// constraint — O(T x n) per-cycle power summation, O(k^2) pairwise
// occupancy checks — rather than the engine's incremental formulations.
//
// The package also contains a brute-force exhaustive reference
// synthesizer for tiny graphs (brute.go), used as a differential oracle
// against the heuristic.
package verify

import (
	"errors"
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// The invariant classes a design can violate. Check wraps every reported
// violation in exactly one of these, so tests (and the mutation
// self-test) can assert the precise failure class with errors.Is.
var (
	// ErrShape indicates the input is structurally malformed (mismatched
	// slice lengths, out-of-range instance indices, unknown module names)
	// before any invariant can be evaluated.
	ErrShape = errors.New("verify: malformed design input")
	// ErrPrecedence indicates a data dependency is violated: a consumer
	// starts before its producer has finished, or a start time is
	// negative.
	ErrPrecedence = errors.New("verify: precedence violation")
	// ErrDeadline indicates the schedule makespan exceeds the latency
	// constraint T.
	ErrDeadline = errors.New("verify: latency constraint violated")
	// ErrPower indicates some cycle's summed power exceeds the per-cycle
	// constraint P<.
	ErrPower = errors.New("verify: per-cycle power constraint violated")
	// ErrOverlap indicates two operations bound to the same functional-
	// unit instance execute in overlapping cycles.
	ErrOverlap = errors.New("verify: overlapping operations on one instance")
	// ErrBinding indicates a type-compatibility violation: an operation
	// bound to a module that cannot execute it, or to an instance of a
	// different module than the schedule claims.
	ErrBinding = errors.New("verify: binding type incompatibility")
	// ErrArea indicates the reported functional-unit area does not equal
	// the sum of the allocated instances' module areas.
	ErrArea = errors.New("verify: area accounting mismatch")
	// ErrLevel indicates a voltage-assignment violation: a node claims an
	// operating point its module does not define, or two operations bound
	// to the same instance run at different operating points (an instance
	// is fixed at one supply voltage).
	ErrLevel = errors.New("verify: voltage-level violation")
)

// powerEps absorbs float rounding when comparing per-cycle power sums
// against the constraint; it matches the engine's comparison slack.
const powerEps = 1e-9

// areaEps bounds the acceptable rounding error in area accounting.
const areaEps = 1e-6

// Input is the engine-independent description of a synthesis result: the
// problem (graph, library, constraints) plus the claimed solution
// (per-node start cycles, module names and instance indices, the
// per-instance module names, and the reported functional-unit area).
// internal/core knows how to produce one from a Design (core.VerifyInput);
// this package never sees the Design type itself.
type Input struct {
	// Graph is the synthesized data-flow graph.
	Graph *cdfg.Graph
	// Library is the functional-unit library the design draws from.
	Library *library.Library
	// Deadline is the latency constraint T in cycles (> 0).
	Deadline int
	// PowerMax is the per-cycle power constraint P< (<= 0: unconstrained).
	PowerMax float64
	// Start[v] is the first execution cycle of node v.
	Start []int
	// Module[v] names the library module executing node v.
	Module []string
	// Level[v] is the voltage operating-point index node v's module runs
	// at (library.Module.Level). Nil means every node runs at the nominal
	// point (level 0) — the pre-voltage-scaling design shape. When
	// non-nil, every delay/power invariant is checked against the chosen
	// level's values, and operations sharing an instance must agree on the
	// level (an instance is fixed at one supply voltage).
	Level []int
	// FU[v] is the functional-unit instance index node v is bound to.
	FU []int
	// FUModules[f] names the module of allocated instance f.
	FUModules []string
	// ReportedFUArea is the functional-unit area the design reports.
	ReportedFUArea float64
}

// Clone returns a deep copy of the input (sharing the graph and library,
// which are immutable to this package). The mutation self-test corrupts
// clones without touching the original.
func (in Input) Clone() Input {
	out := in
	out.Start = append([]int(nil), in.Start...)
	out.Module = append([]string(nil), in.Module...)
	out.Level = append([]int(nil), in.Level...)
	out.FU = append([]int(nil), in.FU...)
	out.FUModules = append([]string(nil), in.FUModules...)
	return out
}

// Check validates the design input against every invariant and returns
// all violations found, joined. A nil return means the design is a
// correct solution of its stated problem: precedence-respecting, within
// the deadline, within the per-cycle power cap, with exclusive instance
// occupancy, type-compatible bindings and exact area accounting.
func Check(in Input) error {
	if err := checkShape(in); err != nil {
		// Invariant checks index freely into the input; a malformed shape
		// would turn them into panics, so shape errors short-circuit.
		return err
	}
	return errors.Join(
		checkBinding(in),
		checkLevels(in),
		checkPrecedence(in),
		checkDeadline(in),
		checkPower(in),
		checkOverlap(in),
		checkArea(in),
	)
}

// checkShape verifies the input is self-consistent enough to index into.
func checkShape(in Input) error {
	var errs []error
	if in.Graph == nil || in.Library == nil {
		return fmt.Errorf("%w: nil graph or library", ErrShape)
	}
	n := in.Graph.N()
	if in.Deadline <= 0 {
		errs = append(errs, fmt.Errorf("%w: deadline %d is not positive", ErrShape, in.Deadline))
	}
	for name, l := range map[string]int{
		"Start":  len(in.Start),
		"Module": len(in.Module),
		"FU":     len(in.FU),
	} {
		if l != n {
			errs = append(errs, fmt.Errorf("%w: %s has %d entries for %d nodes", ErrShape, name, l, n))
		}
	}
	if in.Level != nil && len(in.Level) != n {
		errs = append(errs, fmt.Errorf("%w: Level has %d entries for %d nodes", ErrShape, len(in.Level), n))
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	for v := 0; v < n; v++ {
		if m, ok := in.Library.Lookup(in.Module[v]); !ok {
			errs = append(errs, fmt.Errorf("%w: node %q names unknown module %q",
				ErrShape, in.Graph.Node(cdfg.NodeID(v)).Name, in.Module[v]))
		} else if in.Level != nil && (in.Level[v] < 0 || in.Level[v] >= m.NumLevels()) {
			// Reported as a shape error: the invariant checks below index
			// into the chosen level, so an out-of-range index would panic
			// them, exactly like an unknown module name.
			errs = append(errs, fmt.Errorf("%w: node %q claims level %d of module %q's %d: %w",
				ErrShape, in.Graph.Node(cdfg.NodeID(v)).Name, in.Level[v], in.Module[v], m.NumLevels(), ErrLevel))
		}
		if in.FU[v] < 0 || in.FU[v] >= len(in.FUModules) {
			errs = append(errs, fmt.Errorf("%w: node %q bound to instance %d of %d",
				ErrShape, in.Graph.Node(cdfg.NodeID(v)).Name, in.FU[v], len(in.FUModules)))
		}
	}
	for f, name := range in.FUModules {
		if _, ok := in.Library.Lookup(name); !ok {
			errs = append(errs, fmt.Errorf("%w: instance %d names unknown module %q", ErrShape, f, name))
		}
	}
	return errors.Join(errs...)
}

// levelOf returns the operating point node v runs at: the claimed level
// of its module, or the nominal point (level 0) when no level assignment
// is present. Shape has been checked, so neither lookup can fail.
func levelOf(in Input, v int) library.OperatingPoint {
	m, _ := in.Library.Lookup(in.Module[v])
	if in.Level == nil {
		return m.Level(0)
	}
	return m.Level(in.Level[v])
}

// delayOf returns the execution delay of node v under its claimed module
// at its claimed operating point.
func delayOf(in Input, v int) int {
	return levelOf(in, v).Delay
}

// checkBinding verifies type compatibility: every node's module
// implements its operation, and every node executes on an instance of
// exactly the module the schedule claims for it.
func checkBinding(in Input) error {
	var errs []error
	for _, node := range in.Graph.Nodes() {
		m, _ := in.Library.Lookup(in.Module[node.ID])
		if !m.Implements(node.Op) {
			errs = append(errs, fmt.Errorf("%w: node %q (%s) bound to module %q which cannot execute it",
				ErrBinding, node.Name, node.Op, m.Name))
		}
		if have := in.FUModules[in.FU[node.ID]]; have != in.Module[node.ID] {
			errs = append(errs, fmt.Errorf("%w: node %q scheduled on module %q but bound to instance %d of module %q",
				ErrBinding, node.Name, in.Module[node.ID], in.FU[node.ID], have))
		}
	}
	return errors.Join(errs...)
}

// checkLevels verifies per-instance voltage consistency: an instance is a
// physical unit supplied at one voltage, so every operation bound to it
// must claim the same operating-point index. With no level assignment
// every node is nominal and the check is vacuous.
func checkLevels(in Input) error {
	if in.Level == nil {
		return nil
	}
	var errs []error
	levelAt := make(map[int]int, len(in.FUModules))
	firstAt := make(map[int]int, len(in.FUModules))
	for v := range in.FU {
		f := in.FU[v]
		if lv, seen := levelAt[f]; !seen {
			levelAt[f] = in.Level[v]
			firstAt[f] = v
		} else if lv != in.Level[v] {
			errs = append(errs, fmt.Errorf("%w: instance %d runs %q at level %d and %q at level %d",
				ErrLevel, f,
				in.Graph.Node(cdfg.NodeID(firstAt[f])).Name, lv,
				in.Graph.Node(cdfg.NodeID(v)).Name, in.Level[v]))
		}
	}
	return errors.Join(errs...)
}

// checkPrecedence verifies every data dependency u -> v satisfies
// Start[v] >= Start[u] + delay(u), and that no start time is negative.
func checkPrecedence(in Input) error {
	var errs []error
	for _, node := range in.Graph.Nodes() {
		if in.Start[node.ID] < 0 {
			errs = append(errs, fmt.Errorf("%w: node %q starts at cycle %d", ErrPrecedence, node.Name, in.Start[node.ID]))
		}
		end := in.Start[node.ID] + delayOf(in, int(node.ID))
		for _, succ := range in.Graph.Succs(node.ID) {
			if in.Start[succ] < end {
				errs = append(errs, fmt.Errorf("%w: edge %q -> %q: consumer starts at cycle %d before producer finishes at cycle %d",
					ErrPrecedence, node.Name, in.Graph.Node(succ).Name, in.Start[succ], end))
			}
		}
	}
	return errors.Join(errs...)
}

// checkDeadline verifies the makespan — the first cycle after every
// operation has finished — is at most the deadline T.
func checkDeadline(in Input) error {
	makespan := 0
	for v := range in.Start {
		if end := in.Start[v] + delayOf(in, v); end > makespan {
			makespan = end
		}
	}
	if makespan > in.Deadline {
		return fmt.Errorf("%w: makespan %d exceeds T = %d", ErrDeadline, makespan, in.Deadline)
	}
	return nil
}

// checkPower verifies the per-cycle power constraint by the naive
// definition: for every cycle, sum the power of every operation executing
// in that cycle and compare against P<. Deliberately O(cycles x nodes) —
// no profile accumulation shared with the engine.
func checkPower(in Input) error {
	if in.PowerMax <= 0 {
		return nil
	}
	last := 0
	for v := range in.Start {
		if end := in.Start[v] + delayOf(in, v); end > last {
			last = end
		}
	}
	var errs []error
	for cycle := 0; cycle < last; cycle++ {
		total := 0.0
		for v := range in.Start {
			if in.Start[v] <= cycle && cycle < in.Start[v]+delayOf(in, v) {
				total += levelOf(in, v).Power
			}
		}
		if total > in.PowerMax+powerEps {
			errs = append(errs, fmt.Errorf("%w: cycle %d draws %.6g > P< = %.6g", ErrPower, cycle, total, in.PowerMax))
		}
	}
	return errors.Join(errs...)
}

// checkOverlap verifies exclusive instance occupancy by the naive
// pairwise rule: two operations bound to the same instance must have
// disjoint execution intervals.
func checkOverlap(in Input) error {
	var errs []error
	n := in.Graph.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if in.FU[a] != in.FU[b] {
				continue
			}
			aEnd := in.Start[a] + delayOf(in, a)
			bEnd := in.Start[b] + delayOf(in, b)
			if in.Start[a] < bEnd && in.Start[b] < aEnd {
				errs = append(errs, fmt.Errorf("%w: instance %d executes %q (cycles %d-%d) and %q (cycles %d-%d) concurrently",
					ErrOverlap, in.FU[a],
					in.Graph.Node(cdfg.NodeID(a)).Name, in.Start[a], aEnd-1,
					in.Graph.Node(cdfg.NodeID(b)).Name, in.Start[b], bEnd-1))
			}
		}
	}
	return errors.Join(errs...)
}

// checkArea verifies the reported functional-unit area equals the sum of
// the allocated instances' module areas, and that every allocated
// instance is actually used by at least one operation (an unused
// instance would inflate the area for nothing — the engine never emits
// one, so the validator treats it as an accounting error).
func checkArea(in Input) error {
	var errs []error
	sum := 0.0
	used := make([]bool, len(in.FUModules))
	for _, v := range in.FU {
		used[v] = true
	}
	for f, name := range in.FUModules {
		m, _ := in.Library.Lookup(name)
		sum += m.Area
		if !used[f] {
			errs = append(errs, fmt.Errorf("%w: instance %d (%s) has no operations bound to it", ErrArea, f, name))
		}
	}
	if diff := sum - in.ReportedFUArea; diff > areaEps || diff < -areaEps {
		errs = append(errs, fmt.Errorf("%w: reported FU area %.6g but allocated instances sum to %.6g", ErrArea, in.ReportedFUArea, sum))
	}
	return errors.Join(errs...)
}
