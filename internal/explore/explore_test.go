package explore

import (
	"errors"
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func halSweep(t *testing.T, cfg SweepConfig) Curve {
	t.Helper()
	c, err := Sweep(bench.HAL(), library.Table1(), 17, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSweepBasics(t *testing.T) {
	cfg := SweepConfig{PowerMin: 4, PowerMax: 30, Step: 2, SinglePass: true}
	c := halSweep(t, cfg)
	if c.Benchmark != "hal" || c.Deadline != 17 {
		t.Fatalf("curve identity: %s T=%d", c.Benchmark, c.Deadline)
	}
	if len(c.Points) != 14 {
		t.Fatalf("%d points, want 14", len(c.Points))
	}
	// Low budgets infeasible (every mult needs >= 2.7 plus concurrency),
	// high budgets feasible.
	if c.Points[0].Feasible {
		t.Error("P=4 should be infeasible for hal (mult power 2.7 + adds)")
	}
	last := c.Points[len(c.Points)-1]
	if !last.Feasible {
		t.Error("P=30 should be feasible for hal T=17")
	}
	if last.Peak > last.Power {
		t.Errorf("peak %.2f exceeds budget %g", last.Peak, last.Power)
	}
}

func TestSweepSubsumptionMonotone(t *testing.T) {
	cfg := SweepConfig{PowerMin: 5, PowerMax: 30, Step: 2.5}
	c := halSweep(t, cfg)
	prev := -1.0
	for _, p := range c.Points {
		if !p.Feasible {
			continue
		}
		if prev > 0 && p.Area > prev+1e-9 {
			t.Fatalf("subsumed curve not monotone: %.1f after %.1f at P=%g", p.Area, prev, p.Power)
		}
		prev = p.Area
	}
}

func TestSweepNoSubsume(t *testing.T) {
	cfg := SweepConfig{PowerMin: 6, PowerMax: 12, Step: 3, SinglePass: true, NoSubsume: true}
	c := halSweep(t, cfg)
	for _, p := range c.Points {
		if p.Feasible && p.Peak > p.Power+1e-9 {
			t.Fatalf("raw point violates its own budget: %+v", p)
		}
	}
}

func TestSweepBadGrid(t *testing.T) {
	for _, cfg := range []SweepConfig{
		{PowerMin: 5, PowerMax: 10, Step: 0},
		{PowerMin: 10, PowerMax: 5, Step: 1},
		{PowerMin: -5, PowerMax: 10, Step: 1},
	} {
		if _, err := Sweep(bench.HAL(), library.Table1(), 17, cfg); !errors.Is(err, ErrBadGrid) {
			t.Errorf("cfg %+v accepted", cfg)
		}
	}
}

func TestCurveCSVAndHelpers(t *testing.T) {
	cfg := SweepConfig{PowerMin: 5, PowerMax: 30, Step: 5, SinglePass: true}
	c := halSweep(t, cfg)
	csv := c.CSV()
	if !strings.HasPrefix(csv, "benchmark,deadline,power") {
		t.Fatalf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if n := strings.Count(csv, "\n"); n != len(c.Points)+1 {
		t.Fatalf("csv has %d lines, want %d", n, len(c.Points)+1)
	}
	knee, ok := c.Knee()
	if !ok || knee < 5 || knee > 30 {
		t.Fatalf("knee = %g, %v", knee, ok)
	}
	plat, ok := c.PlateauArea()
	if !ok || plat <= 0 {
		t.Fatalf("plateau = %g, %v", plat, ok)
	}
	if c.Label() != "hal (T=17)" {
		t.Fatalf("label = %q", c.Label())
	}
}

func TestKneeInfeasibleCurve(t *testing.T) {
	cfg := SweepConfig{PowerMin: 0.5, PowerMax: 1, Step: 0.5, SinglePass: true}
	c := halSweep(t, cfg)
	if _, ok := c.Knee(); ok {
		t.Fatal("knee on all-infeasible curve")
	}
	if _, ok := c.PlateauArea(); ok {
		t.Fatal("plateau on all-infeasible curve")
	}
}

func TestFigure2Specs(t *testing.T) {
	specs := Figure2Specs()
	if len(specs) != 6 {
		t.Fatalf("%d specs", len(specs))
	}
	want := map[string][]int{"hal": {10, 17}, "cosine": {12, 15, 19}, "elliptic": {22}}
	got := map[string][]int{}
	for _, s := range specs {
		got[s.Benchmark] = append(got[s.Benchmark], s.Deadline)
	}
	for b, ds := range want {
		if len(got[b]) != len(ds) {
			t.Errorf("%s deadlines = %v, want %v", b, got[b], ds)
		}
	}
	min, max, step := DefaultGrid()
	if min <= 0 || max != 150 || step <= 0 {
		t.Fatalf("grid = %g %g %g", min, max, step)
	}
}

func TestPlot(t *testing.T) {
	cfg := SweepConfig{PowerMin: 5, PowerMax: 30, Step: 5, SinglePass: true}
	c := halSweep(t, cfg)
	out := Plot([]Curve{c}, 60, 15)
	if !strings.Contains(out, "Area vs power constraint") {
		t.Fatalf("plot header missing:\n%s", out)
	}
	if !strings.Contains(out, "o hal (T=17)") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("no markers plotted")
	}
	// Degenerate inputs.
	if out := Plot(nil, 0, 0); !strings.Contains(out, "no feasible points") {
		t.Fatalf("empty plot: %q", out)
	}
}

func TestPareto(t *testing.T) {
	pts := []Point{
		{Power: 10, Area: 100, Feasible: true},
		{Power: 15, Area: 100, Feasible: true}, // dominated (same area, more power)
		{Power: 20, Area: 80, Feasible: true},
		{Power: 25, Area: 90, Feasible: true}, // dominated
		{Power: 5, Area: 999, Feasible: false},
	}
	out := Pareto(pts)
	if len(out) != 2 || out[0].Power != 10 || out[1].Power != 20 {
		t.Fatalf("pareto = %+v", out)
	}
	if Pareto(nil) != nil {
		t.Fatal("pareto of nil should be nil")
	}
}

func TestFigure1(t *testing.T) {
	r, err := Figure1(bench.HAL(), library.Table1(), 12)
	if err != nil {
		t.Fatal(err)
	}
	// The unconstrained schedule spikes above the cap; the constrained one
	// respects it.
	if r.StatsU.Peak <= 12 {
		t.Fatalf("unconstrained peak %.2f should exceed the cap", r.StatsU.Peak)
	}
	if r.StatsC.Peak > 12 {
		t.Fatalf("constrained peak %.2f exceeds the cap", r.StatsC.Peak)
	}
	// Energy invariant.
	if diff := r.StatsU.Energy - r.StatsC.Energy; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("energy changed: %.2f vs %.2f", r.StatsU.Energy, r.StatsC.Energy)
	}
	// The capped profile must extend battery lifetime on both models —
	// the paper's motivating claim.
	if r.Kibam.ExtensionPercent() <= 0 {
		t.Fatalf("KiBaM extension = %.1f%%", r.Kibam.ExtensionPercent())
	}
	if r.Peukert.ExtensionPercent() <= 0 {
		t.Fatalf("Peukert extension = %.1f%%", r.Peukert.ExtensionPercent())
	}
	rep := r.Report()
	for _, want := range []string{"Undesired power schedule", "Desired power schedule", "battery lifetime (KiBaM)", "invariant"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure1InfeasibleCap(t *testing.T) {
	if _, err := Figure1(bench.HAL(), library.Table1(), 1); err == nil {
		t.Fatal("cap below single-op power accepted")
	}
}
