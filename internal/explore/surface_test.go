package explore

import (
	"errors"
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func halSurface(t *testing.T) Surface {
	t.Helper()
	s, err := ExploreSurface(bench.HAL(), library.Table1(), SurfaceConfig{
		Deadlines:  []int{9, 12, 17},
		Powers:     []float64{6, 10, 20, 30},
		SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExploreSurfaceMonotone(t *testing.T) {
	s := halSurface(t)
	if len(s.Points) != 12 {
		t.Fatalf("%d points, want 12", len(s.Points))
	}
	area := map[[2]float64]SurfacePoint{}
	for _, p := range s.Points {
		area[[2]float64{float64(p.Deadline), p.Power}] = p
	}
	// Monotone in P< at fixed T, and in T at fixed P<.
	for _, T := range []float64{9, 12, 17} {
		prev := -1.0
		for _, P := range []float64{6, 10, 20, 30} {
			pt := area[[2]float64{T, P}]
			if !pt.Feasible {
				continue
			}
			if prev > 0 && pt.Area > prev+1e-9 {
				t.Fatalf("T=%g: area rose from %.1f to %.1f at P=%g", T, prev, pt.Area, P)
			}
			prev = pt.Area
		}
	}
	for _, P := range []float64{6, 10, 20, 30} {
		prev := -1.0
		for _, T := range []float64{9, 12, 17} {
			pt := area[[2]float64{T, P}]
			if !pt.Feasible {
				continue
			}
			if prev > 0 && pt.Area > prev+1e-9 {
				t.Fatalf("P=%g: area rose from %.1f to %.1f at T=%g", P, prev, pt.Area, T)
			}
			prev = pt.Area
		}
	}
	// T=9 is below hal's critical path (with IO) at low power: some cells
	// infeasible; T=17 at P=30 must be feasible.
	if !area[[2]float64{17, 30}].Feasible {
		t.Fatal("loose corner infeasible")
	}
}

func TestSurfaceParetoFront(t *testing.T) {
	s := halSurface(t)
	front := s.ParetoFront()
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	// No point on the front dominates another.
	for i, p := range front {
		for j, q := range front {
			if i == j {
				continue
			}
			if q.Deadline <= p.Deadline && q.Power <= p.Power && q.Area <= p.Area &&
				(q.Deadline < p.Deadline || q.Power < p.Power || q.Area < p.Area) {
				t.Fatalf("front point %+v dominated by %+v", p, q)
			}
		}
	}
}

func TestSurfaceCSVAndTable(t *testing.T) {
	s := halSurface(t)
	csv := s.CSV()
	if !strings.HasPrefix(csv, "benchmark,deadline,power") || strings.Count(csv, "\n") != 13 {
		t.Fatalf("csv malformed")
	}
	table := s.Table()
	if !strings.Contains(table, "T\\P<") {
		t.Fatalf("table header missing:\n%s", table)
	}
	// Three deadline rows plus the header.
	if strings.Count(table, "\n") != 4 {
		t.Fatalf("table rows:\n%s", table)
	}
	if !strings.Contains(table, "-") {
		t.Fatalf("expected at least one infeasible cell:\n%s", table)
	}
}

func TestExploreSurfaceBadGrid(t *testing.T) {
	if _, err := ExploreSurface(bench.HAL(), library.Table1(), SurfaceConfig{}); !errors.Is(err, ErrBadGrid) {
		t.Fatalf("err = %v", err)
	}
}
