package explore

import (
	"fmt"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// BenchmarkPareto measures the four-objective Pareto exploration on the
// three benchmark grids the surface lane also uses, at 1 and 4 workers.
// Besides ns/op it reports two deterministic QoR metrics the regression
// gate pins exactly: the front size ("points") and the minimum
// functional-unit area on the front ("area") — a change to cell walking,
// battery simulation or the domination filter shows up here before it
// shows up in a served response.
func BenchmarkPareto(b *testing.B) {
	lib := library.Table1()
	for _, name := range []string{"hal", "elliptic", "fft8"} {
		g, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		asap, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			b.Fatal(err)
		}
		floor, err := lib.MinPowerFloor(g)
		if err != nil {
			b.Fatal(err)
		}
		battery, err := DefaultBattery(g, lib, "kibam")
		if err != nil {
			b.Fatal(err)
		}
		cp := asap.Length()
		cfg := ParetoConfig{
			Deadlines:  []int{cp, cp + 2, cp + 4, cp + 6},
			Powers:     []float64{floor * 1.5, floor * 2, floor * 3, 0},
			Battery:    battery,
			MaxPeriods: 1 << 16,
			SinglePass: true,
			Config:     core.Config{Workers: 1},
		}
		for _, workers := range []int{1, 4} {
			cfg := cfg
			cfg.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				var front ParetoFront
				for i := 0; i < b.N; i++ {
					front, err = ExplorePareto(g, lib, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				if len(front.Points) == 0 {
					b.Fatal("empty front")
				}
				b.ReportMetric(float64(len(front.Points)), "points")
				b.ReportMetric(front.Points[0].Area, "area")
			})
		}
	}
}
