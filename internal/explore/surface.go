package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/runner"
)

// SurfacePoint is one sample of the two-dimensional time-power design
// space: the best area found at a (deadline, power budget) pair.
type SurfacePoint struct {
	Deadline int
	Power    float64
	Feasible bool
	Area     float64
	// Stats counts the work of the synthesis run at this cell's own
	// constraints (zero when infeasible); subsumption never overwrites it.
	Stats core.Stats
}

// Surface is a grid over the time-power-constraint space — the space the
// paper's conclusion says it investigated "different regions" of.
type Surface struct {
	Benchmark string
	Points    []SurfacePoint
}

// TotalStats aggregates the synthesis work counters over all grid cells.
func (s Surface) TotalStats() core.Stats {
	var total core.Stats
	for _, p := range s.Points {
		total = total.Add(p.Stats)
	}
	return total
}

// SurfaceConfig parameterizes a time-power surface exploration.
type SurfaceConfig struct {
	// Deadlines are the T values to sample.
	Deadlines []int
	// Powers are the P< values to sample.
	Powers []float64
	// SinglePass uses the one-shot Synthesize instead of SynthesizeBest.
	SinglePass bool
	// Workers bounds the number of (deadline, power) cells synthesized
	// concurrently: 0 uses GOMAXPROCS, 1 keeps the legacy serial path. The
	// surface is byte-identical for every setting.
	Workers int
	// InFlight, when non-nil, tracks the worker pool's instantaneous
	// occupancy (see runner.Config.InFlight).
	InFlight runner.Gauge
	// Eval, when non-nil, replaces the in-process synthesis of grid
	// cells: it receives the full constraint grid in row-major
	// (deadline-major, sorted) order and must return one Point per cell,
	// in order. See SweepConfig.Eval; only Feasible, Area and Stats are
	// consumed here. The two-axis subsumption assembly below runs on the
	// returned points unchanged, so a remote evaluation is byte-identical
	// to an in-process one.
	Eval func(ctx context.Context, cons []core.Constraints) ([]Point, error)
	// Config is passed through to the synthesizer.
	Config core.Config
}

// ExploreSurface synthesizes the graph at every (T, P<) pair of the grid.
// Within each deadline the power axis is swept tight-to-loose with budget
// subsumption, and for each power budget the time axis inherits designs
// from tighter deadlines (a design meeting a tighter T also meets a looser
// one), so the surface is monotone in both axes by construction.
func ExploreSurface(g *cdfg.Graph, lib *library.Library, cfg SurfaceConfig) (Surface, error) {
	return ExploreSurfaceContext(context.Background(), g, lib, cfg)
}

// ExploreSurfaceContext is ExploreSurface with cancellation: the grid cells
// are synthesized by a bounded worker pool (cfg.Workers) and ctx
// cancellation aborts the exploration between synthesis runs. The surface
// is identical to the serial exploration for every worker count: cells are
// independent synthesis runs, and the two-axis subsumption pass that makes
// the surface monotone runs serially over the collected results.
func ExploreSurfaceContext(ctx context.Context, g *cdfg.Graph, lib *library.Library, cfg SurfaceConfig) (Surface, error) {
	if len(cfg.Deadlines) == 0 || len(cfg.Powers) == 0 {
		return Surface{}, fmt.Errorf("%w: empty surface grid", ErrBadGrid)
	}
	deadlines := append([]int(nil), cfg.Deadlines...)
	sort.Ints(deadlines)
	powers := append([]float64(nil), cfg.Powers...)
	sort.Float64s(powers)
	synth := core.SynthesizeBestContext
	if cfg.SinglePass {
		synth = func(_ context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, c core.Config) (*core.Design, error) {
			return core.Synthesize(g, lib, cons, c)
		}
	}
	// Cells in row-major (deadline-major) order, matching the serial walk.
	var raw []SurfacePoint
	var err error
	if cfg.Eval != nil {
		cons := make([]core.Constraints, 0, len(deadlines)*len(powers))
		for _, T := range deadlines {
			for _, P := range powers {
				cons = append(cons, core.Constraints{Deadline: T, PowerMax: P})
			}
		}
		pts, evalErr := cfg.Eval(ctx, cons)
		err = evalErr
		if err == nil && len(pts) != len(cons) {
			err = fmt.Errorf("explore: Eval returned %d points for %d grid cells", len(pts), len(cons))
		}
		if err == nil {
			raw = make([]SurfacePoint, len(pts))
			for i, pt := range pts {
				raw[i] = SurfacePoint{
					Deadline: cons[i].Deadline,
					Power:    cons[i].PowerMax,
					Feasible: pt.Feasible,
					Area:     pt.Area,
					Stats:    pt.Stats,
				}
			}
		}
	} else {
		raw, err = runner.Map(ctx, len(deadlines)*len(powers), runner.Config{Workers: cfg.Workers, InFlight: cfg.InFlight},
			func(ctx context.Context, i int) (SurfacePoint, error) {
				T := deadlines[i/len(powers)]
				P := powers[i%len(powers)]
				pt := SurfacePoint{Deadline: T, Power: P}
				d, err := synth(ctx, g, lib, core.Constraints{Deadline: T, PowerMax: P}, cfg.Config)
				if err == nil {
					pt.Feasible = true
					pt.Area = d.Area()
					pt.Stats = d.Stats
				} else if ctxErr := ctx.Err(); ctxErr != nil {
					return pt, ctxErr
				}
				return pt, nil
			})
	}
	if err != nil {
		return Surface{}, err
	}
	surface := Surface{Benchmark: g.Name}
	// bestAtPower[i] carries the best area seen for powers[i] across the
	// deadlines processed so far (deadline subsumption).
	bestAtPower := make([]float64, len(powers))
	for i := range bestAtPower {
		bestAtPower[i] = -1
	}
	for ti := range deadlines {
		carried := -1.0 // power subsumption within this deadline
		for pi := range powers {
			pt := raw[ti*len(powers)+pi]
			if carried >= 0 && (!pt.Feasible || carried < pt.Area) {
				pt.Feasible = true
				pt.Area = carried
			}
			if bestAtPower[pi] >= 0 && (!pt.Feasible || bestAtPower[pi] < pt.Area) {
				pt.Feasible = true
				pt.Area = bestAtPower[pi]
			}
			if pt.Feasible {
				if carried < 0 || pt.Area < carried {
					carried = pt.Area
				}
				if bestAtPower[pi] < 0 || pt.Area < bestAtPower[pi] {
					bestAtPower[pi] = pt.Area
				}
			}
			surface.Points = append(surface.Points, pt)
		}
	}
	return surface, nil
}

// CSV renders the surface with a header.
func (s Surface) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark,deadline,power,feasible,area\n")
	for _, p := range s.Points {
		fmt.Fprintf(&sb, "%s,%d,%g,%t,%.1f\n", s.Benchmark, p.Deadline, p.Power, p.Feasible, p.Area)
	}
	return sb.String()
}

// ParetoFront extracts the Pareto-optimal (deadline, power, area) triples:
// a point survives when no feasible point is at least as good on all three
// axes and strictly better on one.
func (s Surface) ParetoFront() []SurfacePoint {
	var feas []SurfacePoint
	for _, p := range s.Points {
		if p.Feasible {
			feas = append(feas, p)
		}
	}
	var front []SurfacePoint
	for _, p := range feas {
		dominated := false
		for _, q := range feas {
			if q.Deadline <= p.Deadline && q.Power <= p.Power && q.Area <= p.Area &&
				(q.Deadline < p.Deadline || q.Power < p.Power || q.Area < p.Area) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Deadline != front[j].Deadline {
			return front[i].Deadline < front[j].Deadline
		}
		if front[i].Power != front[j].Power {
			return front[i].Power < front[j].Power
		}
		return front[i].Area < front[j].Area
	})
	return front
}

// Table renders the surface as an aligned area matrix (rows: deadlines,
// columns: power budgets; "-" marks infeasible cells).
func (s Surface) Table() string {
	deadlines := []int{}
	powers := []float64{}
	seenT := map[int]bool{}
	seenP := map[float64]bool{}
	for _, p := range s.Points {
		if !seenT[p.Deadline] {
			seenT[p.Deadline] = true
			deadlines = append(deadlines, p.Deadline)
		}
		if !seenP[p.Power] {
			seenP[p.Power] = true
			powers = append(powers, p.Power)
		}
	}
	sort.Ints(deadlines)
	sort.Float64s(powers)
	cell := map[[2]int]SurfacePoint{}
	pIndex := map[float64]int{}
	for i, p := range powers {
		pIndex[p] = i
	}
	for _, p := range s.Points {
		cell[[2]int{p.Deadline, pIndex[p.Power]}] = p
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s", "T\\P<")
	for _, p := range powers {
		fmt.Fprintf(&sb, "%9g", p)
	}
	sb.WriteByte('\n')
	for _, T := range deadlines {
		fmt.Fprintf(&sb, "%-6d", T)
		for i := range powers {
			pt, ok := cell[[2]int{T, i}]
			if !ok || !pt.Feasible {
				fmt.Fprintf(&sb, "%9s", "-")
			} else {
				fmt.Fprintf(&sb, "%9.0f", pt.Area)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
