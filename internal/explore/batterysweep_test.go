package explore

import (
	"errors"
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func TestBatterySweepHal(t *testing.T) {
	caps := []float64{2, 9, 12, 16, 24, 40}
	c, err := BatterySweep(bench.HAL(), library.Table1(), caps)
	if err != nil {
		t.Fatal(err)
	}
	if c.Benchmark != "hal" || len(c.Points) != len(caps) {
		t.Fatalf("curve: %s, %d points", c.Benchmark, len(c.Points))
	}
	if c.BasePeak <= 0 || c.BaseCycles <= 0 {
		t.Fatalf("base: peak %g cycles %d", c.BasePeak, c.BaseCycles)
	}
	// Cap 2 < any multiplier power: infeasible.
	if c.Points[0].Feasible {
		t.Error("cap 2 should be infeasible")
	}
	// A cap above the unconstrained peak changes nothing: zero extension.
	last := c.Points[len(c.Points)-1]
	if !last.Feasible {
		t.Fatal("loose cap infeasible")
	}
	if last.PowerMax > c.BasePeak && (last.KibamExt != 0 || last.PeukertExt != 0) {
		t.Errorf("cap above peak should give 0%% extension, got %g/%g", last.KibamExt, last.PeukertExt)
	}
	// A meaningful cap yields positive extension and a stretched schedule.
	var mid BatteryPoint
	for _, p := range c.Points {
		if p.Feasible && p.PowerMax == 12 {
			mid = p
		}
	}
	if mid.KibamExt <= 0 || mid.PeukertExt <= 0 {
		t.Fatalf("cap 12 extension = %g/%g, want positive", mid.KibamExt, mid.PeukertExt)
	}
	if mid.StretchCycles <= c.BaseCycles {
		t.Fatalf("cap 12 cycles %d should exceed base %d", mid.StretchCycles, c.BaseCycles)
	}
	best, ok := c.BestExtension()
	if !ok || best.KibamExt < mid.KibamExt {
		t.Fatalf("best extension %v, %v", best, ok)
	}
	csv := c.CSV()
	if !strings.HasPrefix(csv, "benchmark,cap,feasible") || strings.Count(csv, "\n") != len(caps)+1 {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestBatterySweepEmptyCaps(t *testing.T) {
	if _, err := BatterySweep(bench.HAL(), library.Table1(), nil); !errors.Is(err, ErrBadGrid) {
		t.Fatalf("err = %v", err)
	}
}

func TestBatterySweepBestExtensionEmpty(t *testing.T) {
	c := BatteryCurve{Points: []BatteryPoint{{PowerMax: 1, Feasible: false}}}
	if _, ok := c.BestExtension(); ok {
		t.Fatal("best extension on all-infeasible curve")
	}
}
