package explore

import (
	"context"
	"fmt"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/runner"
)

// TimePoint is one sample of an area-versus-latency sweep.
type TimePoint struct {
	// Deadline is the time constraint T of this sample.
	Deadline int
	// Feasible reports whether a design was found.
	Feasible bool
	// Area is the datapath area of the best design (valid when Feasible).
	Area float64
	// Peak is the achieved per-cycle power peak.
	Peak float64
	// FUs and Registers are allocation counts.
	FUs, Registers int
}

// TimeCurve is an area-versus-latency series at a fixed power constraint.
type TimeCurve struct {
	// Benchmark is the CDFG name.
	Benchmark string
	// PowerMax is the fixed power constraint (<= 0 unconstrained).
	PowerMax float64
	// Points are the samples in increasing deadline order.
	Points []TimePoint
}

// Label renders the legend label, e.g. "hal (P<=20)".
func (c TimeCurve) Label() string {
	if c.PowerMax <= 0 {
		return fmt.Sprintf("%s (P< unconstrained)", c.Benchmark)
	}
	return fmt.Sprintf("%s (P<=%g)", c.Benchmark, c.PowerMax)
}

// TimeSweepConfig parameterizes a latency sweep.
type TimeSweepConfig struct {
	// TMin, TMax and Step define the deadline grid (inclusive).
	TMin, TMax, Step int
	// SinglePass uses the one-shot Synthesize instead of SynthesizeBest.
	SinglePass bool
	// NoSubsume disables deadline subsumption (a design meeting a tighter
	// deadline also meets a looser one; by default curves are made
	// non-increasing in T by carrying the best design forward).
	NoSubsume bool
	// Workers bounds the number of grid points synthesized concurrently:
	// 0 uses GOMAXPROCS, 1 keeps the legacy serial path. The curve is
	// byte-identical for every setting.
	Workers int
	// InFlight, when non-nil, tracks the worker pool's instantaneous
	// occupancy (see runner.Config.InFlight).
	InFlight runner.Gauge
	// Config is passed through to the synthesizer.
	Config core.Config
}

// TimeSweep synthesizes g at a fixed power constraint for every deadline
// on the grid — the orthogonal cut through the time-power-constraint space
// the paper's evaluation explores.
func TimeSweep(g *cdfg.Graph, lib *library.Library, powerMax float64, cfg TimeSweepConfig) (TimeCurve, error) {
	return TimeSweepContext(context.Background(), g, lib, powerMax, cfg)
}

// TimeSweepContext is TimeSweep with cancellation: grid points are
// synthesized by a bounded worker pool (cfg.Workers) and ctx cancellation
// aborts the sweep between synthesis runs. Results are identical to the
// serial sweep for every worker count; the deadline-subsumption pass runs
// serially over the collected results.
func TimeSweepContext(ctx context.Context, g *cdfg.Graph, lib *library.Library, powerMax float64, cfg TimeSweepConfig) (TimeCurve, error) {
	if cfg.Step <= 0 || cfg.TMax < cfg.TMin || cfg.TMin <= 0 {
		return TimeCurve{}, fmt.Errorf("%w: tmin %d tmax %d step %d", ErrBadGrid, cfg.TMin, cfg.TMax, cfg.Step)
	}
	synth := core.SynthesizeBestContext
	if cfg.SinglePass {
		synth = func(_ context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, c core.Config) (*core.Design, error) {
			return core.Synthesize(g, lib, cons, c)
		}
	}
	var deadlines []int
	for T := cfg.TMin; T <= cfg.TMax; T += cfg.Step {
		deadlines = append(deadlines, T)
	}
	raw, err := runner.Map(ctx, len(deadlines), runner.Config{Workers: cfg.Workers, InFlight: cfg.InFlight},
		func(ctx context.Context, i int) (TimePoint, error) {
			pt := TimePoint{Deadline: deadlines[i]}
			d, err := synth(ctx, g, lib, core.Constraints{Deadline: deadlines[i], PowerMax: powerMax}, cfg.Config)
			if err == nil {
				pt.Feasible = true
				pt.Area = d.Area()
				pt.Peak = d.Schedule.PeakPower()
				pt.FUs = len(d.FUs)
				pt.Registers = len(d.Datapath.Registers)
			} else if ctxErr := ctx.Err(); ctxErr != nil {
				return pt, ctxErr
			}
			return pt, nil
		})
	if err != nil {
		return TimeCurve{}, err
	}
	curve := TimeCurve{Benchmark: g.Name, PowerMax: powerMax}
	var carried *TimePoint
	for _, pt := range raw {
		if !cfg.NoSubsume {
			if carried != nil && (!pt.Feasible || carried.Area < pt.Area) {
				c := *carried
				c.Deadline = pt.Deadline
				pt = c
			}
			if pt.Feasible && (carried == nil || pt.Area < carried.Area) {
				cp := pt
				carried = &cp
			}
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

// CSV renders the time curve with a header.
func (c TimeCurve) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark,powermax,deadline,feasible,area,peak,fus,registers\n")
	for _, p := range c.Points {
		fmt.Fprintf(&sb, "%s,%g,%d,%t,%.1f,%.2f,%d,%d\n",
			c.Benchmark, c.PowerMax, p.Deadline, p.Feasible, p.Area, p.Peak, p.FUs, p.Registers)
	}
	return sb.String()
}

// MinFeasibleDeadline returns the tightest feasible T on the grid.
func (c TimeCurve) MinFeasibleDeadline() (int, bool) {
	for _, p := range c.Points {
		if p.Feasible {
			return p.Deadline, true
		}
	}
	return 0, false
}
