package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"pchls/internal/bench"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// requireIdenticalCSV runs the same exploration serially (Workers: 1) and
// with a saturated pool (Workers: 8) and requires byte-identical CSV output
// — the serial-equivalence guarantee the parallel engine documents.
func requireIdenticalCSV(t *testing.T, label string, run func(workers int) (string, error)) {
	t.Helper()
	serial, err := run(1)
	if err != nil {
		t.Fatalf("%s: serial run: %v", label, err)
	}
	parallel, err := run(8)
	if err != nil {
		t.Fatalf("%s: parallel run: %v", label, err)
	}
	if serial == parallel {
		return
	}
	sl := strings.Split(serial, "\n")
	pl := strings.Split(parallel, "\n")
	for i := 0; i < len(sl) || i < len(pl); i++ {
		var s, p string
		if i < len(sl) {
			s = sl[i]
		}
		if i < len(pl) {
			p = pl[i]
		}
		if s != p {
			t.Fatalf("%s: CSV diverges at line %d:\n  serial:   %q\n  parallel: %q", label, i, s, p)
		}
	}
}

// TestParallelMatchesSerial sweeps every benchmark graph across all four
// exploration surfaces with Workers: 1 and Workers: 8 and requires
// byte-identical CSV output for each pair.
func TestParallelMatchesSerial(t *testing.T) {
	lib := library.Table1()
	for _, name := range []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"} {
		name := name
		t.Run(name, func(t *testing.T) {
			g, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			asap, err := sched.ASAP(g, sched.UniformFastest(lib))
			if err != nil {
				t.Fatal(err)
			}
			cp := asap.Length()
			peak := asap.PeakPower()

			requireIdenticalCSV(t, "Sweep", func(workers int) (string, error) {
				c, err := Sweep(g, lib, cp+3, SweepConfig{
					PowerMin: peak / 4, PowerMax: peak * 1.25, Step: peak / 4,
					SinglePass: true, Workers: workers,
				})
				return c.CSV(), err
			})
			requireIdenticalCSV(t, "TimeSweep", func(workers int) (string, error) {
				c, err := TimeSweep(g, lib, peak*0.8, TimeSweepConfig{
					TMin: cp, TMax: cp + 4, Step: 2,
					SinglePass: true, Workers: workers,
				})
				return c.CSV(), err
			})
			requireIdenticalCSV(t, "BatterySweep", func(workers int) (string, error) {
				c, err := BatterySweepContext(context.Background(), g, lib,
					[]float64{peak * 0.6, peak * 0.8, peak * 1.05, peak * 1.3}, workers)
				return c.CSV(), err
			})
			requireIdenticalCSV(t, "ExploreSurface", func(workers int) (string, error) {
				s, err := ExploreSurface(g, lib, SurfaceConfig{
					Deadlines:  []int{cp, cp + 2, cp + 5},
					Powers:     []float64{peak * 0.5, peak * 0.8, peak * 1.1},
					SinglePass: true, Workers: workers,
				})
				return s.CSV(), err
			})
		})
	}
}

// TestParallelMatchesSerialPortfolio exercises the SynthesizeBest path
// (portfolio + speculative peak-shaving ladder) rather than the one-shot
// synthesizer: the ladder's 3-consecutive-failure stop rule is replayed
// serially over speculative results, so the curve must still match.
func TestParallelMatchesSerialPortfolio(t *testing.T) {
	lib := library.Table1()
	g := bench.HAL()
	requireIdenticalCSV(t, "Sweep/SynthesizeBest", func(workers int) (string, error) {
		cfg := SweepConfig{PowerMin: 5, PowerMax: 30, Step: 5, Workers: workers}
		cfg.Config.Workers = workers
		c, err := Sweep(g, lib, 17, cfg)
		return c.CSV(), err
	})
}

// TestSweepCancelledContext checks the cancellation contract on all four
// exploration surfaces: an already-cancelled context returns promptly with
// context.Canceled and leaves no worker goroutines behind.
func TestSweepCancelledContext(t *testing.T) {
	lib := library.Table1()
	g := bench.HAL()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := runtime.NumGoroutine()

	runs := []struct {
		label string
		run   func() error
	}{
		{"SweepContext", func() error {
			_, err := SweepContext(ctx, g, lib, 17, SweepConfig{PowerMin: 5, PowerMax: 50, Step: 1, Workers: 8})
			return err
		}},
		{"TimeSweepContext", func() error {
			_, err := TimeSweepContext(ctx, g, lib, 20, TimeSweepConfig{TMin: 8, TMax: 40, Step: 1, Workers: 8})
			return err
		}},
		{"BatterySweepContext", func() error {
			_, err := BatterySweepContext(ctx, g, lib, []float64{10, 15, 20, 25}, 8)
			return err
		}},
		{"ExploreSurfaceContext", func() error {
			_, err := ExploreSurfaceContext(ctx, g, lib, SurfaceConfig{
				Deadlines: []int{10, 14, 17}, Powers: []float64{10, 20, 30}, Workers: 8,
			})
			return err
		}},
	}
	for _, r := range runs {
		start := time.Now()
		err := r.run()
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", r.label, err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("%s: cancelled run took %v", r.label, elapsed)
		}
	}

	// Worker goroutines must all have exited; allow the runtime a moment
	// to settle and a small slack for unrelated background goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancelled sweeps", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSweepInfeasibleMiddlePoint pins a latent gap: the greedy synthesizer
// is not monotone in the power budget, so a sweep can hit an infeasible
// point strictly between feasible ones. For hal at T=15 the raw one-pass
// curve is feasible at P=8, infeasible across 8.5..10.5, and feasible
// again from P=11 — and budget subsumption must carry the P=8 design
// across the hole.
func TestSweepInfeasibleMiddlePoint(t *testing.T) {
	lib := library.Table1()
	g := bench.HAL()
	raw, err := Sweep(g, lib, 15, SweepConfig{
		PowerMin: 7, PowerMax: 12, Step: 0.5,
		SinglePass: true, NoSubsume: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feasibleAt := func(c Curve, power float64) (Point, bool) {
		for _, p := range c.Points {
			if p.Power == power {
				return p, p.Feasible
			}
		}
		t.Fatalf("no grid point at P=%g", power)
		return Point{}, false
	}
	p8, ok := feasibleAt(raw, 8)
	if !ok {
		t.Fatal("hal T=15 P=8 should be feasible")
	}
	if p8.Area != 624.0 {
		t.Errorf("hal T=15 P=8 area = %.1f, want 624.0", p8.Area)
	}
	for _, hole := range []float64{8.5, 9, 9.5, 10, 10.5} {
		if _, ok := feasibleAt(raw, hole); ok {
			t.Errorf("hal T=15 P=%g should be an infeasible middle point", hole)
		}
	}
	if _, ok := feasibleAt(raw, 11); !ok {
		t.Error("hal T=15 P=11 should be feasible again (non-monotone heuristic)")
	}

	// With subsumption, the P=8 design (feasible at looser budgets too)
	// must fill the hole, making every point from 8 on feasible with
	// non-increasing area.
	subsumed, err := Sweep(g, lib, 15, SweepConfig{
		PowerMin: 7, PowerMax: 12, Step: 0.5,
		SinglePass: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range subsumed.Points {
		switch {
		case p.Power < 8:
			if p.Feasible {
				t.Errorf("subsumed P=%g should stay infeasible", p.Power)
			}
		default:
			if !p.Feasible {
				t.Errorf("subsumed P=%g should be feasible via the P=8 design", p.Power)
			}
			if p.Area > p8.Area {
				t.Errorf("subsumed P=%g area %.1f exceeds carried %.1f", p.Power, p.Area, p8.Area)
			}
		}
	}

	// The hole must survive parallel evaluation bit-for-bit.
	requireIdenticalCSV(t, "Sweep/middle-hole", func(workers int) (string, error) {
		c, err := Sweep(g, lib, 15, SweepConfig{
			PowerMin: 7, PowerMax: 12, Step: 0.5,
			SinglePass: true, NoSubsume: true, Workers: workers,
		})
		return c.CSV(), err
	})
}

// BenchmarkSurface measures the surface-grid exploration at Workers 1
// versus 4 on the three largest benchmark grids. On a multi-core runner
// the workers=4 variants should show the parallel speedup; on a single
// core they degenerate to the serial cost.
func BenchmarkSurface(b *testing.B) {
	lib := library.Table1()
	for _, name := range []string{"hal", "elliptic", "fft8"} {
		g, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		asap, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			b.Fatal(err)
		}
		cp := asap.Length()
		peak := asap.PeakPower()
		cfg := SurfaceConfig{
			Deadlines:  []int{cp, cp + 2, cp + 4, cp + 6},
			Powers:     []float64{peak * 0.4, peak * 0.6, peak * 0.8, peak * 1.0},
			SinglePass: true,
		}
		for _, workers := range []int{1, 4} {
			cfg := cfg
			cfg.Workers = workers
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := ExploreSurface(g, lib, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
