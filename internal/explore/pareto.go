package explore

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/power"
	"pchls/internal/runner"
	"pchls/internal/sched"
)

// ParetoPoint is one non-dominated design of a multi-objective
// exploration: the constraint pair it was synthesized under, its four
// objective values, and the design itself.
type ParetoPoint struct {
	// Deadline and PowerMax are the grid constraints the design was
	// synthesized under.
	Deadline int
	PowerMax float64
	// Area is the functional-unit area (minimized).
	Area float64
	// Latency is the schedule makespan in cycles (minimized).
	Latency int
	// Peak is the maximum per-cycle power draw (minimized).
	Peak float64
	// Lifetime is the battery lifetime in whole schedule periods under
	// the front's battery model (maximized).
	Lifetime int
	// Design is the synthesized design achieving the objectives.
	Design *core.Design
}

// ParetoFront is the non-dominated set over (area, latency, peak power,
// battery lifetime) found by sweeping the constraint grid.
type ParetoFront struct {
	// Benchmark is the CDFG name.
	Benchmark string
	// Evaluated counts the grid cells synthesized; Feasible counts how
	// many yielded a design before domination filtering.
	Evaluated int
	Feasible  int
	// Points are the non-dominated designs sorted by (Area, Latency,
	// Peak, -Lifetime).
	Points []ParetoPoint
}

// ParetoConfig parameterizes a multi-objective exploration.
type ParetoConfig struct {
	// Deadlines are the T values to sample.
	Deadlines []int
	// Powers are the P< values to sample.
	Powers []float64
	// Battery is the model scoring the lifetime objective; nil uses
	// DefaultBattery(g, lib, "kibam").
	Battery power.Battery
	// MaxPeriods caps the battery simulation (<= 0: 1<<20).
	MaxPeriods int
	// SinglePass uses the one-shot Synthesize instead of SynthesizeBest.
	SinglePass bool
	// Workers bounds the number of grid cells synthesized concurrently:
	// 0 uses GOMAXPROCS, 1 keeps the serial path. The front is
	// byte-identical for every setting.
	Workers int
	// InFlight, when non-nil, tracks the worker pool's instantaneous
	// occupancy (see runner.Config.InFlight).
	InFlight runner.Gauge
	// Config is passed through to the synthesizer.
	Config core.Config
}

// NewBattery builds a battery model by name at an explicit capacity:
// "kibam" (or "") is KiBaM(c=0.2, k=0.03), "peukert" is Peukert with
// exponent 1.25 — the standard parameterizations the battery sweep uses.
func NewBattery(model string, capacity float64) (power.Battery, error) {
	switch model {
	case "", "kibam":
		return power.NewKiBaM(capacity, 0.2, 0.03)
	case "peukert":
		return power.NewPeukert(capacity, 1.25)
	default:
		return nil, fmt.Errorf("explore: unknown battery model %q (want kibam or peukert)", model)
	}
}

// DefaultBattery constructs the battery model the explorations use when
// the caller supplies none: a NewBattery model whose capacity is 50x the
// energy of one unconstrained ASAP schedule period under the fastest
// uniform binding (the same sizing as the battery sweep).
func DefaultBattery(g *cdfg.Graph, lib *library.Library, model string) (power.Battery, error) {
	base, err := sched.ASAP(g, sched.UniformFastest(lib))
	if err != nil {
		return nil, err
	}
	energy := 0.0
	for _, p := range base.Profile() {
		energy += p
	}
	return NewBattery(model, energy*50)
}

// ExplorePareto synthesizes the graph at every (T, P<) pair of the grid
// and returns the non-dominated set over (functional-unit area, latency,
// peak per-cycle power, battery lifetime). With a voltage-scaling
// library the synthesizer chooses operating points per operation, so the
// front exposes the area/latency/power/lifetime trades DVS opens up;
// with a single-level library each cell's design is byte-identical to
// the ExploreSurface cell at the same constraints.
func ExplorePareto(g *cdfg.Graph, lib *library.Library, cfg ParetoConfig) (ParetoFront, error) {
	return ExploreParetoContext(context.Background(), g, lib, cfg)
}

// ExploreParetoContext is ExplorePareto with cancellation: grid cells
// are synthesized by a bounded worker pool and ctx cancellation aborts
// between synthesis runs. Objective scoring and domination filtering run
// serially over the collected cells, so the front is identical for every
// worker count.
func ExploreParetoContext(ctx context.Context, g *cdfg.Graph, lib *library.Library, cfg ParetoConfig) (ParetoFront, error) {
	if len(cfg.Deadlines) == 0 || len(cfg.Powers) == 0 {
		return ParetoFront{}, fmt.Errorf("%w: empty pareto grid", ErrBadGrid)
	}
	deadlines := append([]int(nil), cfg.Deadlines...)
	sort.Ints(deadlines)
	powers := append([]float64(nil), cfg.Powers...)
	sort.Float64s(powers)
	battery := cfg.Battery
	if battery == nil {
		b, err := DefaultBattery(g, lib, "")
		if err != nil {
			return ParetoFront{}, err
		}
		battery = b
	}
	maxPeriods := cfg.MaxPeriods
	if maxPeriods <= 0 {
		maxPeriods = 1 << 20
	}
	synth := core.SynthesizeBestContext
	if cfg.SinglePass {
		synth = func(_ context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, c core.Config) (*core.Design, error) {
			return core.Synthesize(g, lib, cons, c)
		}
	}
	// Cells in row-major (deadline-major) order, matching the surface walk.
	raw, err := runner.Map(ctx, len(deadlines)*len(powers), runner.Config{Workers: cfg.Workers, InFlight: cfg.InFlight},
		func(ctx context.Context, i int) (ParetoPoint, error) {
			T := deadlines[i/len(powers)]
			P := powers[i%len(powers)]
			pt := ParetoPoint{Deadline: T, PowerMax: P}
			d, err := synth(ctx, g, lib, core.Constraints{Deadline: T, PowerMax: P}, cfg.Config)
			if err == nil {
				pt.Design = d
			} else if ctxErr := ctx.Err(); ctxErr != nil {
				return pt, ctxErr
			}
			return pt, nil
		})
	if err != nil {
		return ParetoFront{}, err
	}
	front := ParetoFront{Benchmark: g.Name, Evaluated: len(raw)}
	var feas []ParetoPoint
	for _, pt := range raw {
		if pt.Design == nil {
			continue
		}
		front.Feasible++
		pt.Area = pt.Design.Area()
		pt.Latency = pt.Design.Schedule.Length()
		pt.Peak = pt.Design.Schedule.PeakPower()
		if prof := pt.Design.Schedule.Profile(); len(prof) > 0 {
			periods, _ := battery.Lifetime(prof, maxPeriods)
			pt.Lifetime = periods
		}
		feas = append(feas, pt)
	}
	// Domination filter with tuple dedup: the first cell (row-major)
	// achieving an objective tuple represents it; a point survives when
	// no other point is at least as good on all four axes and strictly
	// better on one.
	seen := map[[4]float64]bool{}
	for _, p := range feas {
		tuple := [4]float64{p.Area, float64(p.Latency), p.Peak, float64(p.Lifetime)}
		if seen[tuple] {
			continue
		}
		seen[tuple] = true
		dominated := false
		for _, q := range feas {
			if q.Area <= p.Area && q.Latency <= p.Latency && q.Peak <= p.Peak && q.Lifetime >= p.Lifetime &&
				(q.Area < p.Area || q.Latency < p.Latency || q.Peak < p.Peak || q.Lifetime > p.Lifetime) {
				dominated = true
				break
			}
		}
		if !dominated {
			front.Points = append(front.Points, p)
		}
	}
	sort.Slice(front.Points, func(i, j int) bool {
		a, b := front.Points[i], front.Points[j]
		if a.Area != b.Area {
			return a.Area < b.Area
		}
		if a.Latency != b.Latency {
			return a.Latency < b.Latency
		}
		if a.Peak != b.Peak {
			return a.Peak < b.Peak
		}
		return a.Lifetime > b.Lifetime
	})
	return front, nil
}

// CSV renders the front with a header.
func (f ParetoFront) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark,deadline,power,area,latency,peak_power,lifetime\n")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%s,%d,%g,%.1f,%d,%g,%d\n",
			f.Benchmark, p.Deadline, p.PowerMax, p.Area, p.Latency, p.Peak, p.Lifetime)
	}
	return sb.String()
}

// Table renders the front as an aligned list for terminal output.
func (f ParetoFront) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-8s %10s %8s %10s %10s\n", "T", "P<", "area", "latency", "peak", "lifetime")
	for _, p := range f.Points {
		fmt.Fprintf(&sb, "%-8d %-8g %10.1f %8d %10.4g %10d\n",
			p.Deadline, p.PowerMax, p.Area, p.Latency, p.Peak, p.Lifetime)
	}
	return sb.String()
}
