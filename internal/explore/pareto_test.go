package explore

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/sched"
	"pchls/internal/verify"
)

// paretoGrid derives a small benchmark-relative constraint grid: three
// deadlines starting at the fastest-module critical path, two finite
// power budgets above the instance's unavoidable floor, and the
// unconstrained budget.
func paretoGrid(t *testing.T, name string) (deadlines []int, powers []float64) {
	t.Helper()
	g, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	asap, err := sched.ASAP(g, sched.UniformFastest(library.Table1()))
	if err != nil {
		t.Fatal(err)
	}
	floor, err := library.Table1().MinPowerFloor(g)
	if err != nil {
		t.Fatal(err)
	}
	cp := asap.Length()
	return []int{cp, cp + 2, cp + 5}, []float64{floor * 1.5, floor * 3, 0}
}

// TestParetoSingleLevelMatchesSurfacePath is the degenerate-library
// equivalence lock: with the single-level Table 1 library on every
// classic benchmark, the Pareto explorer must be the surface explorer
// plus a domination filter — nothing more. Each front point's design is
// byte-compared against a direct synthesis at the point's own grid cell
// (exactly what a surface cell runs), the minimum area must agree with
// ExploreSurface on the same grid to the bit, and the front size is
// pinned per benchmark so a future change to cell walking, scoring or
// filtering cannot slip through as a silent behaviour change.
func TestParetoSingleLevelMatchesSurfacePath(t *testing.T) {
	type pin struct {
		points  int
		minArea float64
		latency int
	}
	wantFront := map[string]pin{
		"hal":      {points: 3, minArea: 610, latency: 13},
		"cosine":   {points: 3, minArea: 1728, latency: 14},
		"elliptic": {points: 3, minArea: 1341, latency: 23},
		"fir16":    {points: 3, minArea: 2628, latency: 11},
		"ar":       {points: 3, minArea: 1012, latency: 24},
		"diffeq2":  {points: 3, minArea: 1013, latency: 19},
		"fft8":     {points: 3, minArea: 2588, latency: 16},
	}
	for name := range wantFront {
		t.Run(name, func(t *testing.T) {
			g, err := bench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			lib := library.Table1()
			if lib.MultiLevel() {
				t.Fatal("Table 1 grew voltage levels; this test requires the degenerate single-level case")
			}
			deadlines, powers := paretoGrid(t, name)
			cfg := ParetoConfig{
				Deadlines:  deadlines,
				Powers:     powers,
				SinglePass: true,
				Workers:    2,
			}
			front, err := ExplorePareto(g, lib, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(front.Points) == 0 {
				t.Fatalf("empty front on %s (grid T=%v P=%v, %d feasible)", name, deadlines, powers, front.Feasible)
			}
			want := wantFront[name]
			best := front.Points[0]
			if len(front.Points) != want.points || best.Area != want.minArea || best.Latency != want.latency {
				t.Errorf("front = %d points, min area %g at latency %d; pinned (%d, %g, %d)\n%s",
					len(front.Points), best.Area, best.Latency, want.points, want.minArea, want.latency, front.CSV())
			}
			for _, p := range front.Points {
				// The cell's design must be exactly what the surface path
				// synthesizes at the same constraints.
				d, err := core.Synthesize(g, lib, core.Constraints{Deadline: p.Deadline, PowerMax: p.PowerMax}, cfg.Config)
				if err != nil {
					t.Fatalf("direct synthesis at front cell (T=%d, P<=%g) failed: %v", p.Deadline, p.PowerMax, err)
				}
				want, err := d.JSON()
				if err != nil {
					t.Fatal(err)
				}
				got, err := p.Design.JSON()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("front design at (T=%d, P<=%g) is not byte-identical to the surface cell's synthesis", p.Deadline, p.PowerMax)
				}
				if err := verify.Check(core.VerifyInput(p.Design)); err != nil {
					t.Errorf("front design at (T=%d, P<=%g) rejected by the validator: %v", p.Deadline, p.PowerMax, err)
				}
			}
			surf, err := ExploreSurface(g, lib, SurfaceConfig{
				Deadlines: deadlines, Powers: powers, SinglePass: true, Workers: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			minSurf := -1.0
			for _, sp := range surf.Points {
				if sp.Feasible && (minSurf < 0 || sp.Area < minSurf) {
					minSurf = sp.Area
				}
			}
			// Area is a minimized objective, so the global minimum survives
			// every domination filter; both paths synthesized the same
			// designs, so the floats must agree exactly.
			if minSurf != front.Points[0].Area {
				t.Errorf("min area disagrees: surface %v, pareto front %v", minSurf, front.Points[0].Area)
			}
		})
	}
}

// TestParetoFrontIsNonDominatedAndSorted locks the filter invariants on a
// real benchmark front.
func TestParetoFrontIsNonDominatedAndSorted(t *testing.T) {
	g, _ := bench.ByName("hal")
	deadlines, powers := paretoGrid(t, "hal")
	front, err := ExplorePareto(g, library.Table1(), ParetoConfig{
		Deadlines: deadlines, Powers: powers, SinglePass: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pts := front.Points
	for i, p := range pts {
		for j, q := range pts {
			if i == j {
				continue
			}
			if q.Area <= p.Area && q.Latency <= p.Latency && q.Peak <= p.Peak && q.Lifetime >= p.Lifetime &&
				(q.Area < p.Area || q.Latency < p.Latency || q.Peak < p.Peak || q.Lifetime > p.Lifetime) {
				t.Errorf("point %d dominated by point %d", i, j)
			}
		}
		if i > 0 && pts[i-1].Area > p.Area {
			t.Errorf("front not sorted by area at %d", i)
		}
		if p.Lifetime <= 0 {
			t.Errorf("point %d: lifetime %d, want > 0 under the default battery", i, p.Lifetime)
		}
	}
	if !strings.Contains(front.CSV(), "benchmark,deadline,power,area,latency,peak_power,lifetime") {
		t.Error("CSV header missing")
	}
	if front.Evaluated != len(deadlines)*len(powers) {
		t.Errorf("evaluated = %d, want %d", front.Evaluated, len(deadlines)*len(powers))
	}
}

// TestParetoWorkerIndependence: the front must be byte-identical for
// every worker count (scoring and filtering run serially over cells
// collected in deterministic row-major order).
func TestParetoWorkerIndependence(t *testing.T) {
	g, _ := bench.ByName("cosine")
	deadlines, powers := paretoGrid(t, "cosine")
	var first string
	for _, workers := range []int{1, 4} {
		front, err := ExplorePareto(g, library.Table1(), ParetoConfig{
			Deadlines: deadlines, Powers: powers, SinglePass: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = front.CSV()
		} else if front.CSV() != first {
			t.Errorf("front differs at %d workers:\n%s\nvs\n%s", workers, front.CSV(), first)
		}
	}
}

// TestParetoRejectsEmptyGridAndBadBattery covers the error contract.
func TestParetoRejectsEmptyGridAndBadBattery(t *testing.T) {
	g, _ := bench.ByName("hal")
	if _, err := ExplorePareto(g, library.Table1(), ParetoConfig{}); !errors.Is(err, ErrBadGrid) {
		t.Errorf("empty grid: got %v, want ErrBadGrid", err)
	}
	if _, err := NewBattery("nimh", 100); err == nil {
		t.Error("unknown battery model accepted")
	}
	if _, err := NewBattery("", 100); err != nil {
		t.Errorf("empty model must default to kibam: %v", err)
	}
	b, err := NewBattery("peukert", 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Model() != "peukert" {
		t.Errorf("Model() = %q, want peukert", b.Model())
	}
}
