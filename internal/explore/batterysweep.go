package explore

import (
	"context"
	"fmt"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/power"
	"pchls/internal/runner"
	"pchls/internal/sched"
)

// BatteryPoint is one sample of a battery sweep: the lifetime extension
// obtained by capping the schedule at the given power budget.
type BatteryPoint struct {
	// PowerMax is the cap applied to the pasap schedule.
	PowerMax float64
	// Feasible reports whether a capped schedule exists.
	Feasible bool
	// StretchCycles is the capped schedule length (the unconstrained
	// length is in BatteryCurve.BaseCycles).
	StretchCycles int
	// KibamExt and PeukertExt are the lifetime extensions in percent
	// (task periods, equal work) over the unconstrained schedule.
	KibamExt, PeukertExt float64
}

// BatteryCurve is the lifetime-extension-versus-cap series for one graph.
type BatteryCurve struct {
	// Benchmark is the CDFG name.
	Benchmark string
	// BasePeak and BaseCycles describe the unconstrained ASAP schedule.
	BasePeak   float64
	BaseCycles int
	// Points are the samples in increasing cap order.
	Points []BatteryPoint
}

// BatterySweep quantifies the paper's motivation across the power axis:
// for each cap on the grid, schedule the graph with pasap under that cap
// and measure the battery-lifetime extension (KiBaM and Peukert, equal
// work per period) relative to the unconstrained ASAP schedule. Caps at or
// above the unconstrained peak yield zero extension by construction.
func BatterySweep(g *cdfg.Graph, lib *library.Library, caps []float64) (BatteryCurve, error) {
	return BatterySweepContext(context.Background(), g, lib, caps, 0)
}

// BatterySweepContext is BatterySweep with cancellation and a bounded
// worker pool: each cap's pasap schedule and battery simulations are
// independent, so they are evaluated workers at a time (0 = GOMAXPROCS,
// 1 = legacy serial path). The curve is byte-identical for every setting;
// the shared battery models are stateless per simulation.
func BatterySweepContext(ctx context.Context, g *cdfg.Graph, lib *library.Library, caps []float64, workers int) (BatteryCurve, error) {
	if len(caps) == 0 {
		return BatteryCurve{}, fmt.Errorf("%w: no caps", ErrBadGrid)
	}
	bind := sched.UniformFastest(lib)
	base, err := sched.ASAP(g, bind)
	if err != nil {
		return BatteryCurve{}, err
	}
	curve := BatteryCurve{
		Benchmark:  g.Name,
		BasePeak:   base.PeakPower(),
		BaseCycles: base.Length(),
	}
	baseProfile := base.Profile()
	energy := 0.0
	for _, p := range baseProfile {
		energy += p
	}
	capacity := energy * 50
	kb, err := power.NewKiBaM(capacity, 0.2, 0.03)
	if err != nil {
		return BatteryCurve{}, err
	}
	pk, err := power.NewPeukert(capacity, 1.25)
	if err != nil {
		return BatteryCurve{}, err
	}
	points, err := runner.Map(ctx, len(caps), runner.Config{Workers: workers},
		func(ctx context.Context, i int) (BatteryPoint, error) {
			pt := BatteryPoint{PowerMax: caps[i]}
			s, err := sched.PASAP(g, bind, sched.Options{PowerMax: caps[i]})
			if err == nil {
				pt.Feasible = true
				pt.StretchCycles = s.Length()
				prof := s.Profile()
				if cmp, err := power.Compare(kb, baseProfile, prof, 1<<20); err == nil {
					pt.KibamExt = cmp.ExtensionPercent()
				}
				if cmp, err := power.Compare(pk, baseProfile, prof, 1<<20); err == nil {
					pt.PeukertExt = cmp.ExtensionPercent()
				}
			} else if ctxErr := ctx.Err(); ctxErr != nil {
				return pt, ctxErr
			}
			return pt, nil
		})
	if err != nil {
		return BatteryCurve{}, err
	}
	curve.Points = points
	return curve, nil
}

// CSV renders the battery curve with a header.
func (c BatteryCurve) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark,cap,feasible,cycles,kibam_ext_pct,peukert_ext_pct\n")
	for _, p := range c.Points {
		fmt.Fprintf(&sb, "%s,%g,%t,%d,%.1f,%.1f\n",
			c.Benchmark, p.PowerMax, p.Feasible, p.StretchCycles, p.KibamExt, p.PeukertExt)
	}
	return sb.String()
}

// BestExtension returns the cap with the highest KiBaM lifetime extension.
func (c BatteryCurve) BestExtension() (BatteryPoint, bool) {
	best := BatteryPoint{}
	found := false
	for _, p := range c.Points {
		if p.Feasible && (!found || p.KibamExt > best.KibamExt) {
			best = p
			found = true
		}
	}
	return best, found
}
