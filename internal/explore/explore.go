// Package explore is the experiment harness that regenerates the paper's
// evaluation: power-constraint sweeps at fixed time constraints producing
// area-versus-power curves (Figure 2), and the constrained-versus-
// unconstrained power-schedule comparison with battery lifetimes
// (Figure 1). Results are emitted as CSV and as terminal ASCII plots.
package explore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/power"
	"pchls/internal/runner"
	"pchls/internal/sched"
)

// Point is one sweep sample.
type Point struct {
	// Power is the per-cycle power constraint P< of this sample.
	Power float64
	// Feasible reports whether a design was found.
	Feasible bool
	// Area is the datapath area of the best design (valid when Feasible).
	Area float64
	// Peak is the achieved per-cycle power peak.
	Peak float64
	// FUs and Registers are allocation counts.
	FUs, Registers int
	// Locked reports whether the design used the backtrack-and-lock
	// repair.
	Locked bool
	// Stats counts the work the synthesis run at this grid point performed
	// (scheduler executions, window-cache effectiveness). It describes the
	// run at this point's own budget even when budget subsumption replaces
	// the design with one found at a tighter budget, and is zero for
	// infeasible points.
	Stats core.Stats
}

// Curve is one area-versus-power series at a fixed time constraint.
type Curve struct {
	// Benchmark is the CDFG name.
	Benchmark string
	// Deadline is the time constraint T.
	Deadline int
	// Points are the samples in increasing power order.
	Points []Point
}

// Label renders the curve's legend label, e.g. "hal (T=10)".
func (c Curve) Label() string { return fmt.Sprintf("%s (T=%d)", c.Benchmark, c.Deadline) }

// TotalStats aggregates the synthesis work counters over all sweep
// points.
func (c Curve) TotalStats() core.Stats {
	var total core.Stats
	for _, p := range c.Points {
		total = total.Add(p.Stats)
	}
	return total
}

// SweepConfig parameterizes a power sweep.
type SweepConfig struct {
	// PowerMin, PowerMax and Step define the sample grid (inclusive).
	PowerMin, PowerMax, Step float64
	// SinglePass uses the paper's one-shot Synthesize instead of the
	// portfolio SynthesizeBest.
	SinglePass bool
	// NoSubsume disables budget subsumption. By default a design found at
	// a tighter budget replaces a worse design at a looser budget (it is
	// feasible there too), making curves non-increasing by construction.
	NoSubsume bool
	// Workers bounds the number of grid points synthesized concurrently:
	// 0 uses GOMAXPROCS, 1 keeps the legacy serial path. The curve is
	// byte-identical for every setting.
	Workers int
	// InFlight, when non-nil, tracks the worker pool's instantaneous
	// occupancy (see runner.Config.InFlight); the synthesis service uses
	// it to export a runner-occupancy gauge.
	InFlight runner.Gauge
	// Eval, when non-nil, replaces the in-process synthesis of grid
	// cells: it receives the full constraint grid (one entry per sample,
	// in grid order) and must return one Point per constraint, in order,
	// with the Point's design fields and Stats filled (Power is
	// overwritten from the grid). The cluster coordinator uses this to
	// shard cells across a worker fleet; the subsumption assembly below
	// runs on the returned points unchanged, so a remote evaluation is
	// byte-identical to an in-process one.
	Eval func(ctx context.Context, cons []core.Constraints) ([]Point, error)
	// Config is passed through to the synthesizer.
	Config core.Config
}

// ErrBadGrid is returned for non-positive sweep grids.
var ErrBadGrid = errors.New("explore: invalid sweep grid")

// Sweep synthesizes g at the fixed deadline for every power budget on the
// grid and returns the resulting curve. Infeasible budgets produce
// Feasible=false points. The graph and library are not modified.
func Sweep(g *cdfg.Graph, lib *library.Library, deadline int, cfg SweepConfig) (Curve, error) {
	return SweepContext(context.Background(), g, lib, deadline, cfg)
}

// SweepContext is Sweep with cancellation: grid points are synthesized by
// a bounded worker pool (cfg.Workers) and ctx cancellation aborts the sweep
// between synthesis runs, returning ctx's error. Results are identical to
// the serial sweep for every worker count: each grid point is an
// independent synthesis run, and the budget-subsumption pass that couples
// neighbouring points runs serially over the collected results.
func SweepContext(ctx context.Context, g *cdfg.Graph, lib *library.Library, deadline int, cfg SweepConfig) (Curve, error) {
	if cfg.Step <= 0 || cfg.PowerMax < cfg.PowerMin || cfg.PowerMin < 0 {
		return Curve{}, fmt.Errorf("%w: min %g max %g step %g", ErrBadGrid, cfg.PowerMin, cfg.PowerMax, cfg.Step)
	}
	synth := core.SynthesizeBestContext
	if cfg.SinglePass {
		synth = func(_ context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, c core.Config) (*core.Design, error) {
			return core.Synthesize(g, lib, cons, c)
		}
	}
	// The grid is materialized with the same accumulating sum the serial
	// loop used, so sample values are bit-identical.
	var powers []float64
	for p := cfg.PowerMin; p <= cfg.PowerMax+1e-9; p += cfg.Step {
		powers = append(powers, p)
	}
	var raw []Point
	var err error
	if cfg.Eval != nil {
		cons := make([]core.Constraints, len(powers))
		for i, p := range powers {
			cons[i] = core.Constraints{Deadline: deadline, PowerMax: p}
		}
		raw, err = cfg.Eval(ctx, cons)
		if err == nil && len(raw) != len(cons) {
			err = fmt.Errorf("explore: Eval returned %d points for %d grid cells", len(raw), len(cons))
		}
		if err == nil {
			for i := range raw {
				raw[i].Power = powers[i]
			}
		}
	} else {
		raw, err = runner.Map(ctx, len(powers), runner.Config{Workers: cfg.Workers, InFlight: cfg.InFlight},
			func(ctx context.Context, i int) (Point, error) {
				pt := Point{Power: powers[i]}
				d, err := synth(ctx, g, lib, core.Constraints{Deadline: deadline, PowerMax: powers[i]}, cfg.Config)
				if err == nil {
					pt.Feasible = true
					pt.Area = d.Area()
					pt.Peak = d.Schedule.PeakPower()
					pt.FUs = len(d.FUs)
					pt.Registers = len(d.Datapath.Registers)
					pt.Locked = d.Locked
					pt.Stats = d.Stats
				} else if ctxErr := ctx.Err(); ctxErr != nil {
					return pt, ctxErr
				}
				return pt, nil
			})
	}
	if err != nil {
		return Curve{}, err
	}
	curve := Curve{Benchmark: g.Name, Deadline: deadline}
	var carried *Point // best feasible point so far (tightest budgets first)
	for _, pt := range raw {
		if !cfg.NoSubsume {
			// A design under a tighter budget is feasible at pt.Power too.
			if carried != nil && (!pt.Feasible || carried.Area < pt.Area) {
				c := *carried
				c.Power = pt.Power
				c.Stats = pt.Stats // Stats describe this point's own run
				pt = c
			}
			if pt.Feasible && (carried == nil || pt.Area < carried.Area) {
				cp := pt
				carried = &cp
			}
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

// Figure2Spec names one curve of the paper's Figure 2.
type Figure2Spec struct {
	Benchmark string
	Deadline  int
}

// Figure2Specs returns the six curves of the paper's Figure 2:
// hal (T=10), hal (T=17), cosine (T=12), cosine (T=15), cosine (T=19),
// elliptic (T=22).
func Figure2Specs() []Figure2Spec {
	return []Figure2Spec{
		{"hal", 10}, {"hal", 17},
		{"cosine", 12}, {"cosine", 15}, {"cosine", 19},
		{"elliptic", 22},
	}
}

// DefaultGrid returns the power grid of the paper's Figure 2 x-axis
// (0..150): samples every 5 units starting at the library floor.
func DefaultGrid() (min, max, step float64) { return 5, 150, 5 }

// CSV renders the curve as "power,feasible,area,peak,fus,registers,locked"
// rows with a header.
func (c Curve) CSV() string {
	var sb strings.Builder
	sb.WriteString("benchmark,deadline,power,feasible,area,peak,fus,registers,locked\n")
	for _, p := range c.Points {
		fmt.Fprintf(&sb, "%s,%d,%g,%t,%.1f,%.2f,%d,%d,%t\n",
			c.Benchmark, c.Deadline, p.Power, p.Feasible, p.Area, p.Peak, p.FUs, p.Registers, p.Locked)
	}
	return sb.String()
}

// Knee returns the tightest feasible power budget of the curve, or ok =
// false when no point is feasible.
func (c Curve) Knee() (float64, bool) {
	for _, p := range c.Points {
		if p.Feasible {
			return p.Power, true
		}
	}
	return 0, false
}

// PlateauArea returns the area at the loosest budget (the curve's
// asymptote), or ok = false when no point is feasible.
func (c Curve) PlateauArea() (float64, bool) {
	for i := len(c.Points) - 1; i >= 0; i-- {
		if c.Points[i].Feasible {
			return c.Points[i].Area, true
		}
	}
	return 0, false
}

// Plot renders the curves as a terminal scatter plot in the style of
// Figure 2: x = power constraint, y = area. Each curve uses its own
// marker. Infeasible points are omitted.
func Plot(curves []Curve, width, height int) string {
	if width < 20 {
		width = 72
	}
	if height < 8 {
		height = 24
	}
	markers := []byte{'o', 'x', '+', '*', '#', '@', '%', '&'}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, c := range curves {
		for _, p := range c.Points {
			if !p.Feasible {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, p.Power), math.Max(maxX, p.Power)
			minY, maxY = math.Min(minY, p.Area), math.Max(maxY, p.Area)
		}
	}
	if !any {
		return "no feasible points to plot\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for ci, c := range curves {
		mk := markers[ci%len(markers)]
		for _, p := range c.Points {
			if !p.Feasible {
				continue
			}
			x := int(math.Round((p.Power - minX) / (maxX - minX) * float64(width-1)))
			y := int(math.Round((p.Area - minY) / (maxY - minY) * float64(height-1)))
			row := height - 1 - y
			grid[row][x] = mk
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Area vs power constraint (y: %.0f..%.0f, x: %.0f..%.0f)\n", minY, maxY, minX, maxX)
	for r := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&sb, "%8.0f |%s|\n", yVal, string(grid[r]))
	}
	fmt.Fprintf(&sb, "%8s +%s+\n", "", strings.Repeat("-", width))
	var legend []string
	for ci, c := range curves {
		legend = append(legend, fmt.Sprintf("%c %s", markers[ci%len(markers)], c.Label()))
	}
	sb.WriteString("          " + strings.Join(legend, "   ") + "\n")
	return sb.String()
}

// Pareto extracts the Pareto-optimal points (minimal area per power
// budget): a point survives when no feasible point with lower-or-equal
// power has lower-or-equal area with at least one strict inequality.
func Pareto(points []Point) []Point {
	var feas []Point
	for _, p := range points {
		if p.Feasible {
			feas = append(feas, p)
		}
	}
	sort.Slice(feas, func(i, j int) bool {
		if feas[i].Power != feas[j].Power {
			return feas[i].Power < feas[j].Power
		}
		return feas[i].Area < feas[j].Area
	})
	var out []Point
	bestArea := math.Inf(1)
	for _, p := range feas {
		if p.Area < bestArea-1e-9 {
			out = append(out, p)
			bestArea = p.Area
		}
	}
	return out
}

// Figure1Result packages the Figure 1 reproduction: the unconstrained
// (spiky) versus power-constrained (stretched) schedule of one benchmark,
// and battery lifetimes for both profiles.
type Figure1Result struct {
	// Unconstrained and Constrained are the two schedules.
	Unconstrained, Constrained *sched.Schedule
	// PowerMax is the cap applied to the constrained schedule.
	PowerMax float64
	// StatsU and StatsC summarize the two profiles.
	StatsU, StatsC power.Stats
	// Kibam and Peukert compare battery lifetime under both profiles
	// (profile A = unconstrained, B = constrained).
	Kibam, Peukert power.Comparison
}

// Figure1 reproduces the paper's Figure 1 on a benchmark graph: the
// classical ASAP schedule (undesired, spiky) against the pasap schedule
// under powerMax (desired, capped), plus battery-lifetime deltas on a
// KiBaM and a Peukert battery scaled to the profile.
func Figure1(g *cdfg.Graph, lib *library.Library, powerMax float64) (*Figure1Result, error) {
	bind := sched.UniformFastest(lib)
	unconstrained, err := sched.ASAP(g, bind)
	if err != nil {
		return nil, err
	}
	constrained, err := sched.PASAP(g, bind, sched.Options{PowerMax: powerMax})
	if err != nil {
		return nil, err
	}
	pu := unconstrained.Profile()
	pc := constrained.Profile()
	res := &Figure1Result{
		Unconstrained: unconstrained,
		Constrained:   constrained,
		PowerMax:      powerMax,
		StatsU:        power.Analyze(pu),
		StatsC:        power.Analyze(pc),
	}
	// Battery constants calibrated so the lifetime extension of a capped
	// schedule lands in the 20-30% band the paper cites for low-cost
	// batteries ([1] in the paper): a KiBaM holding ~50 unconstrained
	// periods with a sluggish bound well, and a Peukert exponent of 1.25.
	capacity := res.StatsU.Energy * 50
	kb, err := power.NewKiBaM(capacity, 0.2, 0.03)
	if err != nil {
		return nil, err
	}
	res.Kibam, err = power.Compare(kb, pu, pc, 1<<20)
	if err != nil {
		return nil, err
	}
	pk, err := power.NewPeukert(capacity, 1.25)
	if err != nil {
		return nil, err
	}
	res.Peukert, err = power.Compare(pk, pu, pc, 1<<20)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Report renders the Figure 1 reproduction as text: both profiles as bar
// charts plus the lifetime comparison.
func (r *Figure1Result) Report() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Undesired power schedule (ASAP, peak %.2f, %d cycles):\n", r.StatsU.Peak, r.StatsU.Cycles)
	sb.WriteString(r.Unconstrained.ProfileString(r.PowerMax))
	fmt.Fprintf(&sb, "\nDesired power schedule (pasap, P< = %.2f, peak %.2f, %d cycles):\n", r.PowerMax, r.StatsC.Peak, r.StatsC.Cycles)
	sb.WriteString(r.Constrained.ProfileString(r.PowerMax))
	fmt.Fprintf(&sb, "\nenergy: unconstrained %.1f, constrained %.1f (invariant)\n", r.StatsU.Energy, r.StatsC.Energy)
	fmt.Fprintf(&sb, "battery lifetime (KiBaM):   %d vs %d task periods (%+.1f%%)\n", r.Kibam.PeriodsA, r.Kibam.PeriodsB, r.Kibam.ExtensionPercent())
	fmt.Fprintf(&sb, "battery lifetime (Peukert): %d vs %d task periods (%+.1f%%)\n", r.Peukert.PeriodsA, r.Peukert.PeriodsB, r.Peukert.ExtensionPercent())
	return sb.String()
}
