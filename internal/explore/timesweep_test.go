package explore

import (
	"errors"
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func TestTimeSweepHal(t *testing.T) {
	c, err := TimeSweep(bench.HAL(), library.Table1(), 0, TimeSweepConfig{
		TMin: 6, TMax: 20, Step: 1, SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Benchmark != "hal" || len(c.Points) != 15 {
		t.Fatalf("curve: %s, %d points", c.Benchmark, len(c.Points))
	}
	// Deadlines below the critical path (8 with parallel mults) are
	// infeasible; generous deadlines are feasible.
	minT, ok := c.MinFeasibleDeadline()
	if !ok {
		t.Fatal("no feasible deadline")
	}
	if minT < 8 || minT > 10 {
		t.Fatalf("min feasible T = %d, expected near the critical path 8", minT)
	}
	// Subsumption: area non-increasing in T.
	prev := -1.0
	for _, p := range c.Points {
		if !p.Feasible {
			continue
		}
		if prev > 0 && p.Area > prev+1e-9 {
			t.Fatalf("area rose from %.1f to %.1f at T=%d", prev, p.Area, p.Deadline)
		}
		prev = p.Area
	}
	// Looser deadlines must enable cheaper (serial-multiplier) designs.
	first := c.Points[len(c.Points)-1]
	knee, _ := firstFeasible(c)
	if first.Area >= knee.Area {
		t.Fatalf("area at T=20 (%.1f) should be below area at T=%d (%.1f)", first.Area, knee.Deadline, knee.Area)
	}
}

func firstFeasible(c TimeCurve) (TimePoint, bool) {
	for _, p := range c.Points {
		if p.Feasible {
			return p, true
		}
	}
	return TimePoint{}, false
}

func TestTimeSweepWithPowerCap(t *testing.T) {
	c, err := TimeSweep(bench.HAL(), library.Table1(), 8, TimeSweepConfig{
		TMin: 8, TMax: 24, Step: 2, SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	minT, ok := c.MinFeasibleDeadline()
	if !ok {
		t.Fatal("no feasible deadline under P<=8")
	}
	// Under a tight power cap the minimum feasible deadline moves out
	// past the unconstrained critical path.
	if minT <= 10 {
		t.Fatalf("min feasible T under P<=8 is %d; expected the power cap to stretch it beyond 10", minT)
	}
	for _, p := range c.Points {
		if p.Feasible && p.Peak > 8+1e-9 {
			t.Fatalf("point at T=%d violates the power cap: peak %.2f", p.Deadline, p.Peak)
		}
	}
}

func TestTimeSweepBadGrid(t *testing.T) {
	for _, cfg := range []TimeSweepConfig{
		{TMin: 5, TMax: 10, Step: 0},
		{TMin: 10, TMax: 5, Step: 1},
		{TMin: 0, TMax: 10, Step: 1},
	} {
		if _, err := TimeSweep(bench.HAL(), library.Table1(), 0, cfg); !errors.Is(err, ErrBadGrid) {
			t.Errorf("cfg %+v accepted", cfg)
		}
	}
}

func TestTimeCurveCSVAndLabel(t *testing.T) {
	c, err := TimeSweep(bench.HAL(), library.Table1(), 20, TimeSweepConfig{
		TMin: 10, TMax: 14, Step: 2, SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	csv := c.CSV()
	if !strings.HasPrefix(csv, "benchmark,powermax,deadline") {
		t.Fatalf("csv header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if c.Label() != "hal (P<=20)" {
		t.Fatalf("label = %q", c.Label())
	}
	unc := TimeCurve{Benchmark: "hal"}
	if !strings.Contains(unc.Label(), "unconstrained") {
		t.Fatalf("label = %q", unc.Label())
	}
}
