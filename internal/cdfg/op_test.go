package cdfg

import (
	"strings"
	"testing"
)

func TestOpStringRoundTrip(t *testing.T) {
	for _, op := range AllOps() {
		got, err := ParseOp(op.String())
		if err != nil {
			t.Fatalf("ParseOp(%q): %v", op.String(), err)
		}
		if got != op {
			t.Fatalf("round trip %v -> %q -> %v", op, op.String(), got)
		}
	}
}

func TestParseOpAliases(t *testing.T) {
	cases := map[string]Op{
		"add": Add, "sub": Sub, "cmp": Cmp, "comp": Cmp,
		"mul": Mul, "mult": Mul, "input": Input, "in": Input,
		"output": Output, "out": Output,
	}
	for s, want := range cases {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseOp("bogus"); err == nil {
		t.Fatal("ParseOp accepted bogus token")
	}
}

func TestOpValid(t *testing.T) {
	if Invalid.Valid() {
		t.Fatal("Invalid reported valid")
	}
	for _, op := range AllOps() {
		if !op.Valid() {
			t.Fatalf("%v reported invalid", op)
		}
	}
	if Op(99).Valid() {
		t.Fatal("out-of-range op reported valid")
	}
	if s := Op(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("out-of-range String = %q", s)
	}
}

func TestOpTransfer(t *testing.T) {
	if !Input.IsTransfer() || !Output.IsTransfer() {
		t.Fatal("transfers not recognized")
	}
	if Add.IsTransfer() || Mul.IsTransfer() {
		t.Fatal("computations flagged as transfers")
	}
}

func TestOpFanIn(t *testing.T) {
	if Input.MaxFanIn() != 0 || Input.MinFanIn() != 0 {
		t.Fatal("input fan-in bounds wrong")
	}
	if Output.MaxFanIn() != 1 || Output.MinFanIn() != 1 {
		t.Fatal("output fan-in bounds wrong")
	}
	if Add.MaxFanIn() != 2 {
		t.Fatal("add fan-in bound wrong")
	}
	if Invalid.MaxFanIn() != 0 || Invalid.MinFanIn() != 0 {
		t.Fatal("invalid op fan-in should be zero")
	}
	if Op(99).MaxFanIn() != 0 {
		t.Fatal("out-of-range op fan-in should be zero")
	}
}

func TestNumOpsMatchesAllOps(t *testing.T) {
	if len(AllOps()) != NumOps {
		t.Fatalf("AllOps has %d entries, NumOps = %d", len(AllOps()), NumOps)
	}
}
