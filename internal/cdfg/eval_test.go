package cdfg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalOp(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{Add, 3, 4, 7},
		{Sub, 3, 4, -1},
		{Mul, 3, 4, 12},
		{Cmp, 5, 4, 1},
		{Cmp, 4, 5, 0},
		{Cmp, 4, 4, 0},
		{Input, 9, 0, 9},
		{Output, 9, 0, 9},
	}
	for _, tc := range cases {
		if got := EvalOp(tc.op, tc.a, tc.b); got != tc.want {
			t.Errorf("EvalOp(%v, %d, %d) = %d, want %d", tc.op, tc.a, tc.b, got, tc.want)
		}
	}
}

func TestIdentityOperand(t *testing.T) {
	if IdentityOperand(Mul) != 1 {
		t.Fatal("mul identity should be 1")
	}
	for _, op := range []Op{Add, Sub, Cmp, Input, Output} {
		if IdentityOperand(op) != 0 {
			t.Fatalf("%v identity should be 0", op)
		}
	}
}

func TestEvalDiamond(t *testing.T) {
	// a(imp)=6 -> b = 6+0... b has single pred: 6+identity(0) = 6;
	// c = 6*1 = 6; d = b - c = 0.
	g := diamond(t)
	a, _ := g.Lookup("a")
	vals, err := g.Eval(map[NodeID]int64{a.ID: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := g.Lookup("b")
	c, _ := g.Lookup("c")
	d, _ := g.Lookup("d")
	if vals[b.ID] != 6 || vals[c.ID] != 6 || vals[d.ID] != 0 {
		t.Fatalf("vals = %v", vals)
	}
}

func TestEvalTwoOperandChain(t *testing.T) {
	g := New("t")
	x := g.MustAddNode("x", Input)
	y := g.MustAddNode("y", Input)
	m := g.MustAddNode("m", Mul)
	s := g.MustAddNode("s", Sub)
	o := g.MustAddNode("o", Output)
	g.MustAddEdge(x, m)
	g.MustAddEdge(y, m)
	g.MustAddEdge(m, s)
	g.MustAddEdge(y, s)
	g.MustAddEdge(s, o)
	out, err := g.EvalOutputs(map[NodeID]int64{x: 7, y: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out["o"] != 7*3-3 {
		t.Fatalf("o = %d, want 18", out["o"])
	}
}

func TestEvalMissingInput(t *testing.T) {
	g := diamond(t)
	if _, err := g.Eval(nil); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestEvalCyclicGraphFails(t *testing.T) {
	g := New("cyc")
	a := g.MustAddNode("a", Add)
	b := g.MustAddNode("b", Add)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, a)
	if _, err := g.Eval(nil); err == nil {
		t.Fatal("cyclic graph evaluated")
	}
}

func TestQuickEvalDeterministic(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%30) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		in := map[NodeID]int64{}
		for _, node := range g.Nodes() {
			if len(g.Preds(node.ID)) == 0 {
				in[node.ID] = seed % 97
			}
		}
		// randomDAG uses Add nodes (min fan-in satisfied only when preds
		// exist); source Add nodes have no preds and are not Input ops,
		// so Eval treats both operands as identity.
		v1, err1 := g.Eval(in)
		v2, err2 := g.Eval(in)
		if err1 != nil || err2 != nil {
			return false
		}
		for k, a := range v1 {
			if v2[k] != a {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
