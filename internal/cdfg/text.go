package cdfg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The .cdfg text format is line oriented:
//
//	# comment (also ; comments)
//	graph <name>
//	node <name> <op>
//	edge <from-name> <to-name>
//
// Tokens are whitespace separated. The "graph" line is optional and may
// appear at most once, before any node. Nodes must be declared before they
// are referenced by an edge.

// Parse reads a graph in the .cdfg text format. The parsed graph is
// validated before being returned.
func Parse(r io.Reader) (*Graph, error) {
	g := New("")
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	sawGraph := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, fmt.Errorf("cdfg: line %d: want \"graph <name>\", got %q", lineNo, line)
			}
			if sawGraph {
				return nil, fmt.Errorf("cdfg: line %d: duplicate graph directive", lineNo)
			}
			if g.N() > 0 {
				return nil, fmt.Errorf("cdfg: line %d: graph directive must precede nodes", lineNo)
			}
			g.Name = fields[1]
			sawGraph = true
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("cdfg: line %d: want \"node <name> <op>\", got %q", lineNo, line)
			}
			op, err := ParseOp(fields[2])
			if err != nil {
				return nil, fmt.Errorf("cdfg: line %d: %w", lineNo, err)
			}
			if _, err := g.AddNode(fields[1], op); err != nil {
				return nil, fmt.Errorf("cdfg: line %d: %w", lineNo, err)
			}
		case "edge":
			if len(fields) != 3 {
				return nil, fmt.Errorf("cdfg: line %d: want \"edge <from> <to>\", got %q", lineNo, line)
			}
			u, ok := g.byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("cdfg: line %d: edge references %w %q", lineNo, ErrUnknownNode, fields[1])
			}
			v, ok := g.byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("cdfg: line %d: edge references %w %q", lineNo, ErrUnknownNode, fields[2])
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("cdfg: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("cdfg: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cdfg: reading input: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Graph, error) { return Parse(strings.NewReader(s)) }

// Write serializes the graph in the .cdfg text format. The output parses
// back to an identical graph (same names, operations and edges; node IDs
// are preserved because nodes are emitted in ID order).
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if g.Name != "" {
		fmt.Fprintf(bw, "graph %s\n", g.Name)
	}
	for _, n := range g.nodes {
		fmt.Fprintf(bw, "node %s %s\n", n.Name, n.Op)
	}
	for _, n := range g.nodes {
		for _, v := range g.succs[n.ID] {
			fmt.Fprintf(bw, "edge %s %s\n", n.Name, g.nodes[v].Name)
		}
	}
	return bw.Flush()
}

// Text returns the .cdfg serialization as a string.
func (g *Graph) Text() string {
	var sb strings.Builder
	_ = g.Write(&sb)
	return sb.String()
}

// Dot renders the graph in Graphviz DOT format. Nodes are labelled
// "name\nop"; transfer nodes are drawn as plain boxes, computations as
// ellipses. An optional rank function may assign nodes to time steps
// (e.g. a schedule); pass nil for no ranking.
func (g *Graph) Dot(rank func(NodeID) (step int, ok bool)) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", dotName(g.Name))
	sb.WriteString("  rankdir=TB;\n")
	for _, n := range g.nodes {
		shape := "ellipse"
		if n.Op.IsTransfer() {
			shape = "box"
		}
		fmt.Fprintf(&sb, "  %q [label=%q, shape=%s];\n", n.Name, fmt.Sprintf("%s\n%s", n.Name, n.Op), shape)
	}
	for _, n := range g.nodes {
		for _, v := range g.succs[n.ID] {
			fmt.Fprintf(&sb, "  %q -> %q;\n", n.Name, g.nodes[v].Name)
		}
	}
	if rank != nil {
		bySteps := make(map[int][]string)
		var steps []int
		for _, n := range g.nodes {
			if s, ok := rank(n.ID); ok {
				if _, seen := bySteps[s]; !seen {
					steps = append(steps, s)
				}
				bySteps[s] = append(bySteps[s], n.Name)
			}
		}
		sort.Ints(steps)
		for _, s := range steps {
			sb.WriteString("  { rank=same;")
			for _, name := range bySteps[s] {
				fmt.Fprintf(&sb, " %q;", name)
			}
			sb.WriteString(" }\n")
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func dotName(s string) string {
	if s == "" {
		return "cdfg"
	}
	return s
}
