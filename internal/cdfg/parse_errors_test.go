package cdfg

import (
	"errors"
	"testing"
)

// TestParseRejectsMalformedGraphs pins down the distinct error classes
// of the two graph parsers: each structural defect must be rejected with
// its own sentinel so callers (and the synthesis service's request
// validation) can classify failures with errors.Is instead of string
// matching.
func TestParseRejectsMalformedGraphs(t *testing.T) {
	cases := []struct {
		name string
		text string
		json string
		want error
	}{
		{
			name: "duplicate node name",
			text: "node a +\nnode a -\n",
			json: `{"nodes":[{"name":"a","op":"+"},{"name":"a","op":"-"}]}`,
			want: ErrDuplicateName,
		},
		{
			name: "self-edge",
			text: "node a +\nedge a a\n",
			json: `{"nodes":[{"name":"a","op":"+"}],"edges":[{"from":"a","to":"a"}]}`,
			want: ErrSelfLoop,
		},
		{
			name: "duplicate edge",
			text: "node a imp\nnode b +\nedge a b\nedge a b\n",
			json: `{"nodes":[{"name":"a","op":"imp"},{"name":"b","op":"+"}],"edges":[{"from":"a","to":"b"},{"from":"a","to":"b"}]}`,
			want: ErrDuplicateEdge,
		},
		{
			name: "dangling edge source",
			text: "node b +\nedge ghost b\n",
			json: `{"nodes":[{"name":"b","op":"+"}],"edges":[{"from":"ghost","to":"b"}]}`,
			want: ErrUnknownNode,
		},
		{
			name: "dangling edge target",
			text: "node a imp\nedge a ghost\n",
			json: `{"nodes":[{"name":"a","op":"imp"}],"edges":[{"from":"a","to":"ghost"}]}`,
			want: ErrUnknownNode,
		},
		{
			name: "cycle",
			text: "node a +\nnode b +\nedge a b\nedge b a\n",
			json: `{"nodes":[{"name":"a","op":"+"},{"name":"b","op":"+"}],"edges":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`,
			want: ErrCycle,
		},
	}
	for _, c := range cases {
		t.Run(c.name+"/text", func(t *testing.T) {
			_, err := ParseString(c.text)
			if !errors.Is(err, c.want) {
				t.Errorf("text parser: got %v, want %v", err, c.want)
			}
		})
		t.Run(c.name+"/json", func(t *testing.T) {
			_, err := ParseJSON([]byte(c.json))
			if !errors.Is(err, c.want) {
				t.Errorf("JSON parser: got %v, want %v", err, c.want)
			}
		})
	}
}

// TestParseErrorClassesAreDistinct guards against two sentinels aliasing
// each other (which would make errors.Is classification meaningless).
func TestParseErrorClassesAreDistinct(t *testing.T) {
	sentinels := []error{ErrDuplicateName, ErrCycle, ErrSelfLoop, ErrDuplicateEdge, ErrUnknownNode}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %v aliases %v", a, b)
			}
		}
	}
}
