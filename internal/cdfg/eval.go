package cdfg

import "fmt"

// Operand conventions for evaluation: a computation node may have fewer
// graph predecessors than its maximum fan-in when one operand is a
// compile-time constant of the source program (e.g. the literal 3 in the
// HAL benchmark). Since the constant's value is not part of the graph,
// evaluation substitutes the operation's identity element — 1 for
// multiplication, 0 otherwise — so that a graph's meaning is well defined
// and the RTL back end can be verified against it bit for bit.

// IdentityOperand returns the value substituted for a missing (constant)
// operand of the operation during evaluation.
func IdentityOperand(op Op) int64 {
	if op == Mul {
		return 1
	}
	return 0
}

// EvalOp applies the operation to two operand values.
func EvalOp(op Op, a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Cmp:
		if a > b {
			return 1
		}
		return 0
	}
	return a // transfers pass their (first) operand through
}

// Eval executes the data-flow graph on concrete values: inputs supplies
// the value of every Input node; the result maps every node to its
// computed value (Output nodes carry the value they transfer). Operand
// order follows edge insertion order, matching the RTL back end.
func (g *Graph) Eval(inputs map[NodeID]int64) (map[NodeID]int64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	vals := make(map[NodeID]int64, g.N())
	for _, id := range order {
		n := g.Node(id)
		if n.Op == Input {
			v, ok := inputs[id]
			if !ok {
				return nil, fmt.Errorf("cdfg: Eval: no value for input node %q", n.Name)
			}
			vals[id] = v
			continue
		}
		preds := g.Preds(id)
		a := IdentityOperand(n.Op)
		b := IdentityOperand(n.Op)
		if len(preds) > 0 {
			a = vals[preds[0]]
		}
		if len(preds) > 1 {
			b = vals[preds[1]]
		}
		if n.Op.IsTransfer() {
			vals[id] = a
			continue
		}
		vals[id] = EvalOp(n.Op, a, b)
	}
	return vals, nil
}

// EvalOutputs is Eval restricted to the Output nodes, keyed by node name.
func (g *Graph) EvalOutputs(inputs map[NodeID]int64) (map[string]int64, error) {
	vals, err := g.Eval(inputs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]int64)
	for _, n := range g.Nodes() {
		if n.Op == Output {
			out[n.Name] = vals[n.ID]
		}
	}
	return out, nil
}
