package cdfg

import (
	"reflect"
	"testing"
)

// partOf rebuilds the node -> part-index map from PartitionBalanced output.
func partOf(t *testing.T, g *Graph, parts [][]NodeID) []int {
	t.Helper()
	m := make([]int, g.N())
	for i := range m {
		m[i] = -1
	}
	for p, ids := range parts {
		for _, id := range ids {
			if m[id] != -1 {
				t.Fatalf("node %d in both part %d and part %d", id, m[id], p)
			}
			m[id] = p
		}
	}
	for id, p := range m {
		if p == -1 {
			t.Fatalf("node %d missing from every part", id)
		}
	}
	return m
}

// diamondChain builds a connected DAG shaped like the layered graphs the
// min-cut path targets: a chain prefix feeding a diamond.
//
//	0 -> 1 -> 2 -> {3,4} -> 5
func diamondChain(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	n0 := g.MustAddNode("in", Input)
	n1 := g.MustAddNode("a", Add)
	n2 := g.MustAddNode("b", Mul)
	n3 := g.MustAddNode("c", Add)
	n4 := g.MustAddNode("d", Sub)
	n5 := g.MustAddNode("out", Output)
	g.MustAddEdge(n0, n1)
	g.MustAddEdge(n1, n2)
	g.MustAddEdge(n2, n3)
	g.MustAddEdge(n2, n4)
	g.MustAddEdge(n3, n5)
	g.MustAddEdge(n4, n5)
	return g
}

func TestPartitionBalancedQuotientAcyclic(t *testing.T) {
	g := diamondChain(t)
	for k := 1; k <= g.N()+2; k++ {
		parts, cut, err := g.PartitionBalanced(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		m := partOf(t, g, parts)
		// Invariant: part(u) <= part(v) for every edge, so the quotient over
		// part indices is acyclic and part order is quotient-topological.
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Succs(NodeID(u)) {
				if m[u] > m[int(v)] {
					t.Fatalf("k=%d: edge %d->%d violates part order (%d > %d)", k, u, v, m[u], m[int(v)])
				}
			}
		}
		// Cut list must be exactly the cross-part edges, sorted by (U, V).
		var want []CutEdge
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Succs(NodeID(u)) {
				if m[u] != m[int(v)] {
					want = append(want, CutEdge{NodeID(u), v})
				}
			}
		}
		sortCutEdges(want)
		if !reflect.DeepEqual(cut, want) {
			t.Fatalf("k=%d: cut = %v, want %v", k, cut, want)
		}
	}
}

func TestPartitionBalancedSingleNodeParts(t *testing.T) {
	g := diamondChain(t)
	// k >= n degenerates to one part per node; each must be a singleton and
	// every edge is a cut edge.
	parts, cut, err := g.PartitionBalanced(g.N() + 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != g.N() {
		t.Fatalf("got %d parts, want %d singletons", len(parts), g.N())
	}
	for p, ids := range parts {
		if len(ids) != 1 {
			t.Fatalf("part %d has %d members, want 1", p, len(ids))
		}
	}
	if len(cut) != g.E() {
		t.Fatalf("got %d cut edges, want all %d edges", len(cut), g.E())
	}
}

func TestPartitionBalancedTrivial(t *testing.T) {
	g := diamondChain(t)
	parts, cut, err := g.PartitionBalanced(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || len(parts[0]) != g.N() || len(cut) != 0 {
		t.Fatalf("k=1: parts=%v cut=%v, want one full part and no cut", parts, cut)
	}
	empty := New("empty")
	parts, cut, err = empty.PartitionBalanced(4)
	if err != nil || parts != nil || cut != nil {
		t.Fatalf("empty graph: parts=%v cut=%v err=%v", parts, cut, err)
	}
}

// TestPartitionBalancedRefinementInternalizesCut exercises the satellite edge
// case: edges that cross the initial contiguous chunking but whose endpoints
// land in the same part after KL refinement must not be reported as cut.
func TestPartitionBalancedRefinementInternalizesCut(t *testing.T) {
	// Topo order 0..5; the k=2 chunking splits {0,1,2} | {3,4,5}. Node 2 has
	// two successors in the second chunk and one predecessor in the first, so
	// refinement moves it forward (gain +1) and edges 2->3, 2->4 become
	// internal while 1->2 becomes the single cut edge.
	g := New("refine")
	for i, op := range []Op{Input, Add, Mul, Add, Sub, Output} {
		g.MustAddNode(string(rune('a'+i)), op)
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(2, 4)
	g.MustAddEdge(3, 5)
	g.MustAddEdge(4, 5)
	parts, cut, err := g.PartitionBalanced(2)
	if err != nil {
		t.Fatal(err)
	}
	m := partOf(t, g, parts)
	if m[2] != m[3] || m[2] != m[4] {
		t.Fatalf("refinement should co-locate node 2 with its successors: parts=%v", parts)
	}
	want := []CutEdge{{1, 2}}
	if !reflect.DeepEqual(cut, want) {
		t.Fatalf("cut = %v, want %v", cut, want)
	}
}

func TestPartitionBalancedDeterministic(t *testing.T) {
	g := diamondChain(t)
	p1, c1, err := g.PartitionBalanced(3)
	if err != nil {
		t.Fatal(err)
	}
	p2, c2, err := g.Clone().PartitionBalanced(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(c1, c2) {
		t.Fatalf("partition not deterministic: %v/%v vs %v/%v", p1, c1, p2, c2)
	}
}

func TestInducedSubgraphDropsBoundaryEdges(t *testing.T) {
	g := diamondChain(t)
	// {2,3,4}: in-edge 1->2 and out-edges 3->5, 4->5 cross the boundary.
	sub, err := g.InducedSubgraph("mid", []NodeID{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.E() != 2 {
		t.Fatalf("got %d nodes / %d edges, want 3 / 2", sub.N(), sub.E())
	}
	// Local IDs follow the input order: 2->0, 3->1, 4->2.
	if got := sub.Succs(0); !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Fatalf("local succs of node 0 = %v, want [1 2]", got)
	}
	// Subgraph (the strict variant) must still reject the same set.
	if _, err := g.Subgraph("mid", []NodeID{2, 3, 4}); err == nil {
		t.Fatal("strict Subgraph accepted a boundary-crossing set")
	}
	// Node 2 (global 4, op Sub) lost its predecessor: arity repair is the
	// caller's job, so Validate on the raw induced subgraph fails.
	if err := sub.Validate(); err == nil {
		t.Fatal("induced subgraph with orphaned computation should fail Validate")
	}
}

func TestInducedSubgraphRejectsBadIDs(t *testing.T) {
	g := diamondChain(t)
	if _, err := g.InducedSubgraph("bad", []NodeID{0, 99}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := g.InducedSubgraph("dup", []NodeID{1, 1}); err == nil {
		t.Fatal("duplicate id accepted")
	}
}
