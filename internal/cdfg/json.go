package cdfg

import (
	"encoding/json"
	"fmt"
)

// The JSON schema of a graph mirrors the .cdfg text format: nodes carry a
// unique name and an operation token, edges reference nodes by name. The
// schema is the request-payload format of the synthesis service, so
// decoding is strict about structural validity: unknown operation tokens,
// dangling edge endpoints, duplicate names and cyclic graphs are all
// rejected with descriptive errors instead of panicking downstream.
//
//	{
//	  "name": "hal",
//	  "nodes": [{"name": "u1", "op": "*"}, ...],
//	  "edges": [{"from": "u1", "to": "u2"}, ...]
//	}

type graphJSON struct {
	Name  string     `json:"name,omitempty"`
	Nodes []nodeJSON `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

type nodeJSON struct {
	Name string `json:"name"`
	Op   string `json:"op"`
}

type edgeJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// MarshalJSON serializes the graph in the JSON schema above. Nodes are
// emitted in ID order and edges in (source ID, declaration) order, so the
// output is canonical: two equal graphs marshal to identical bytes.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := graphJSON{
		Name:  g.Name,
		Nodes: make([]nodeJSON, 0, len(g.nodes)),
		Edges: make([]edgeJSON, 0, g.E()),
	}
	for _, n := range g.nodes {
		out.Nodes = append(out.Nodes, nodeJSON{Name: n.Name, Op: n.Op.String()})
	}
	for _, n := range g.nodes {
		for _, v := range g.succs[n.ID] {
			out.Edges = append(out.Edges, edgeJSON{From: n.Name, To: g.nodes[v].Name})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a graph from the JSON schema above.
// On success the receiver is replaced wholesale; on error it is left
// unchanged. Beyond syntax, the decoded graph must pass the same
// structural validation as parsed text graphs: valid operation tokens,
// unique non-empty node names, known edge endpoints, no duplicate edges or
// self-loops, acyclicity, and per-operation fan-in bounds.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var raw graphJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("cdfg: decoding graph JSON: %w", err)
	}
	ng := New(raw.Name)
	for i, n := range raw.Nodes {
		op, err := ParseOp(n.Op)
		if err != nil {
			return fmt.Errorf("cdfg: node %d (%q): %w", i, n.Name, err)
		}
		if _, err := ng.AddNode(n.Name, op); err != nil {
			return fmt.Errorf("cdfg: node %d: %w", i, err)
		}
	}
	for i, e := range raw.Edges {
		u, ok := ng.byName[e.From]
		if !ok {
			return fmt.Errorf("cdfg: edge %d: source is %w %q", i, ErrUnknownNode, e.From)
		}
		v, ok := ng.byName[e.To]
		if !ok {
			return fmt.Errorf("cdfg: edge %d: target is %w %q", i, ErrUnknownNode, e.To)
		}
		if err := ng.AddEdge(u, v); err != nil {
			return fmt.Errorf("cdfg: edge %d: %w", i, err)
		}
	}
	if err := ng.Validate(); err != nil {
		return err
	}
	*g = *ng
	return nil
}

// ParseJSON decodes and validates a graph from its JSON serialization.
func ParseJSON(data []byte) (*Graph, error) {
	g := New("")
	if err := json.Unmarshal(data, g); err != nil {
		return nil, err
	}
	return g, nil
}
