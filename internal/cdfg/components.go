package cdfg

import (
	"fmt"
	"sort"
)

// Components returns the weakly-connected components of the graph: the
// node sets that are mutually reachable when every edge is treated as
// undirected. Each component's members are sorted ascending by ID and the
// components themselves are ordered by their smallest member, so the
// result is deterministic regardless of insertion history. An empty graph
// yields no components.
//
// Weak connectivity is the decomposition boundary of hierarchical
// synthesis: two operations in different weak components share no data
// dependency, directly or transitively, so their schedules interact only
// through the shared power budget and the shared functional units — both
// of which the stitching pass reconciles.
func (g *Graph) Components() [][]NodeID {
	n := len(g.nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]NodeID
	var stack []NodeID
	for i := 0; i < n; i++ {
		if comp[i] >= 0 {
			continue
		}
		c := len(out)
		comp[i] = c
		stack = append(stack[:0], NodeID(i))
		members := []NodeID{NodeID(i)}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, adj := range [2][]NodeID{g.succs[u], g.preds[u]} {
				for _, v := range adj {
					if comp[v] < 0 {
						comp[v] = c
						stack = append(stack, v)
						members = append(members, v)
					}
				}
			}
		}
		sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
		out = append(out, members)
	}
	return out
}

// Subgraph returns the subgraph induced by ids under the given name: node
// li of the result is g's node ids[li] with its name and operation
// preserved, and every edge of g between two member nodes is kept. An
// edge crossing the boundary of the set is an error — the function
// extracts edge-closed sets (weakly-connected components), where losing
// an edge silently would corrupt the precedence structure.
func (g *Graph) Subgraph(name string, ids []NodeID) (*Graph, error) {
	toLocal := make([]NodeID, len(g.nodes))
	for i := range toLocal {
		toLocal[i] = None
	}
	sub := New(name)
	for _, id := range ids {
		if !g.valid(id) {
			return nil, fmt.Errorf("cdfg: Subgraph: node id %d out of range [0,%d)", id, len(g.nodes))
		}
		if toLocal[id] != None {
			return nil, fmt.Errorf("cdfg: Subgraph: node %q listed twice", g.nodes[id].Name)
		}
		li, err := sub.AddNode(g.nodes[id].Name, g.nodes[id].Op)
		if err != nil {
			return nil, err
		}
		toLocal[id] = li
	}
	for _, id := range ids {
		for _, p := range g.preds[id] {
			if toLocal[p] == None {
				return nil, fmt.Errorf("cdfg: Subgraph: edge %q -> %q leaves the node set",
					g.nodes[p].Name, g.nodes[id].Name)
			}
		}
		for _, s := range g.succs[id] {
			if toLocal[s] == None {
				return nil, fmt.Errorf("cdfg: Subgraph: edge %q -> %q leaves the node set",
					g.nodes[id].Name, g.nodes[s].Name)
			}
			if err := sub.AddEdge(toLocal[id], toLocal[s]); err != nil {
				return nil, err
			}
		}
	}
	return sub, nil
}
