package cdfg

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("t")
	a := g.MustAddNode("a", Input)
	b := g.MustAddNode("b", Input)
	m := g.MustAddNode("m", Mul)
	o := g.MustAddNode("o", Output)
	g.MustAddEdge(a, m)
	g.MustAddEdge(b, m)
	g.MustAddEdge(m, o)
	return g
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := testGraph(t)
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Text() != g.Text() {
		t.Fatalf("round trip changed the graph:\n%s\nvs\n%s", got.Text(), g.Text())
	}
	// Canonical: re-marshaling the round-tripped graph is byte-identical.
	raw2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("marshal not canonical:\n%s\nvs\n%s", raw, raw2)
	}
}

func TestGraphJSONRejects(t *testing.T) {
	cases := []struct {
		name, payload, want string
	}{
		{"syntax", `{`, "unexpected end of JSON input"},
		{"unknown op", `{"nodes":[{"name":"a","op":"frobnicate"}],"edges":[]}`, "unknown operation"},
		{"empty node name", `{"nodes":[{"name":"","op":"+"}],"edges":[]}`, "empty node name"},
		{"duplicate node", `{"nodes":[{"name":"a","op":"imp"},{"name":"a","op":"imp"}],"edges":[]}`, "duplicate node name"},
		{"unknown edge source", `{"nodes":[{"name":"a","op":"imp"}],"edges":[{"from":"zz","to":"a"}]}`, "unknown node"},
		{"unknown edge target", `{"nodes":[{"name":"a","op":"imp"}],"edges":[{"from":"a","to":"zz"}]}`, "unknown node"},
		{"self loop", `{"nodes":[{"name":"a","op":"+"}],"edges":[{"from":"a","to":"a"}]}`, "self-loop"},
		{"duplicate edge", `{"nodes":[{"name":"a","op":"imp"},{"name":"b","op":"xpt"}],"edges":[{"from":"a","to":"b"},{"from":"a","to":"b"}]}`, "duplicate edge"},
		{"cycle", `{"nodes":[{"name":"a","op":"+"},{"name":"b","op":"+"}],"edges":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`, "cycle"},
		{"input with preds", `{"nodes":[{"name":"a","op":"imp"},{"name":"b","op":"imp"}],"edges":[{"from":"a","to":"b"}]}`, "fan-in"},
		{"fan-in overflow", `{"nodes":[{"name":"a","op":"imp"},{"name":"b","op":"imp"},{"name":"c","op":"imp"},{"name":"d","op":"+"}],"edges":[{"from":"a","to":"d"},{"from":"b","to":"d"},{"from":"c","to":"d"}]}`, "fan-in"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJSON([]byte(tc.payload))
			if err == nil {
				t.Fatalf("ParseJSON(%s) succeeded, want error containing %q", tc.payload, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestGraphUnmarshalErrorLeavesReceiver(t *testing.T) {
	g := testGraph(t)
	before := g.Text()
	if err := json.Unmarshal([]byte(`{"nodes":[{"name":"x","op":"??"}],"edges":[]}`), g); err == nil {
		t.Fatal("want error")
	}
	if g.Text() != before {
		t.Fatal("failed unmarshal mutated the receiver")
	}
}

func TestGraphJSONTextAgreement(t *testing.T) {
	// The JSON and text formats describe the same graph.
	g := testGraph(t)
	raw, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	fromText, err := ParseString(g.Text())
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Text() != fromText.Text() {
		t.Fatal("JSON and text round trips disagree")
	}
}
