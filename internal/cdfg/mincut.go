package cdfg

import "fmt"

// CutEdge is a directed edge u -> v of the parent graph whose endpoints were
// assigned to different parts by PartitionBalanced.
type CutEdge struct {
	U, V NodeID
}

// PartitionBalanced splits the graph's nodes into at most k balanced parts
// and returns, for every edge crossing two parts, the cut edge list. The
// partition is deterministic and maintains the invariant part(u) <= part(v)
// for every edge u -> v, so the quotient graph over parts is itself a DAG and
// the part order is a topological order of that quotient.
//
// The initial partition slices a topological order into k contiguous chunks
// of near-equal size; a bounded Kernighan-Lin-style refinement then moves
// nodes between adjacent parts when doing so strictly reduces the number of
// cut edges without breaking the quotient-DAG invariant or the balance
// tolerance. Optimality is not attempted — determinism and acyclicity are the
// contract. Parts are returned in quotient-topological order with member IDs
// ascending; empty parts are dropped, so fewer than k parts may come back.
// Cut edges are sorted by (U, V).
func (g *Graph) PartitionBalanced(k int) ([][]NodeID, []CutEdge, error) {
	n := g.N()
	if k > n {
		k = n
	}
	if k <= 1 || n == 0 {
		all := make([]NodeID, n)
		for i := range all {
			all[i] = NodeID(i)
		}
		if n == 0 {
			return nil, nil, nil
		}
		return [][]NodeID{all}, nil, nil
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, nil, fmt.Errorf("partition %q: %w", g.Name, err)
	}

	// Contiguous topological chunks: node at topo position p lands in part
	// p*k/n, which yields sizes differing by at most one. Every edge u -> v
	// has pos(u) < pos(v), so part(u) <= part(v) holds from the start.
	part := make([]int, n)
	size := make([]int, k)
	for p, id := range topo {
		part[id] = p * k / n
		size[part[id]]++
	}

	// Balance envelope for refinement: parts may not shrink below half nor
	// grow beyond twice the ideal size (and never to zero).
	ideal := n / k
	minSize := ideal / 2
	if minSize < 1 {
		minSize = 1
	}
	maxSize := 2 * ideal
	if maxSize < 2 {
		maxSize = 2
	}

	// legal reports whether moving id from part p to part q (q = p±1) keeps
	// the quotient acyclic, and gain counts the cut edges removed minus the
	// cut edges created by the move.
	tryMove := func(id NodeID) bool {
		p := part[id]
		// Forward move p -> p+1: every successor must already sit in a part
		// strictly after p; predecessors (all in parts <= p) stay legal.
		if q := p + 1; q < k && size[p]-1 >= minSize && size[q]+1 <= maxSize {
			legal, gain := true, 0
			for _, s := range g.succs[id] {
				if part[s] == p {
					legal = false
					break
				}
				if part[s] == q {
					gain++
				}
			}
			if legal {
				for _, pr := range g.preds[id] {
					if part[pr] == p {
						gain--
					}
				}
				if gain > 0 {
					part[id] = q
					size[p]--
					size[q]++
					return true
				}
			}
		}
		// Backward move p -> p-1: every predecessor must already sit strictly
		// before p; successors (all in parts >= p) stay legal.
		if q := p - 1; q >= 0 && size[p]-1 >= minSize && size[q]+1 <= maxSize {
			legal, gain := true, 0
			for _, pr := range g.preds[id] {
				if part[pr] == p {
					legal = false
					break
				}
				if part[pr] == q {
					gain++
				}
			}
			if legal {
				for _, s := range g.succs[id] {
					if part[s] == p {
						gain--
					}
				}
				if gain > 0 {
					part[id] = q
					size[p]--
					size[q]++
					return true
				}
			}
		}
		return false
	}

	const maxPasses = 4
	for pass := 0; pass < maxPasses; pass++ {
		moved := false
		for id := 0; id < n; id++ {
			if tryMove(NodeID(id)) {
				moved = true
			}
		}
		if !moved {
			break
		}
	}

	// Collect parts in label order (quotient-topological), dropping empties.
	remap := make([]int, k)
	nparts := 0
	for p := 0; p < k; p++ {
		if size[p] > 0 {
			remap[p] = nparts
			nparts++
		} else {
			remap[p] = -1
		}
	}
	parts := make([][]NodeID, nparts)
	for p := 0; p < k; p++ {
		if remap[p] >= 0 {
			parts[remap[p]] = make([]NodeID, 0, size[p])
		}
	}
	for id := 0; id < n; id++ {
		pp := remap[part[id]]
		parts[pp] = append(parts[pp], NodeID(id))
	}

	var cut []CutEdge
	for u := 0; u < n; u++ {
		for _, v := range g.succs[NodeID(u)] {
			if part[NodeID(u)] != part[v] {
				cut = append(cut, CutEdge{U: NodeID(u), V: v})
			}
		}
	}
	// succs slices follow insertion order; sort by (U, V) for a stable
	// contract independent of construction order.
	sortCutEdges(cut)
	return parts, cut, nil
}

func sortCutEdges(cut []CutEdge) {
	// Insertion sort: cut lists are short relative to the graph and usually
	// nearly sorted already (outer loop walks U ascending).
	for i := 1; i < len(cut); i++ {
		e := cut[i]
		j := i - 1
		for j >= 0 && (cut[j].U > e.U || (cut[j].U == e.U && cut[j].V > e.V)) {
			cut[j+1] = cut[j]
			j--
		}
		cut[j+1] = e
	}
}

// InducedSubgraph extracts the subgraph induced by ids: nodes keep their
// names and ops, edges with both endpoints inside the set are kept, and edges
// crossing the boundary are silently dropped (unlike Subgraph, which rejects
// them). Local IDs follow the order of ids. The result may violate per-op
// fan-in minimums — computation nodes that lost all predecessors to the cut —
// so callers that need a Validate-clean graph must repair arity themselves
// (see core's ghost-input handling).
func (g *Graph) InducedSubgraph(name string, ids []NodeID) (*Graph, error) {
	sub := New(name)
	toLocal := make(map[NodeID]NodeID, len(ids))
	for _, id := range ids {
		if !g.valid(id) {
			return nil, fmt.Errorf("induced subgraph %q: unknown node id %d", name, id)
		}
		if _, dup := toLocal[id]; dup {
			return nil, fmt.Errorf("induced subgraph %q: duplicate node id %d", name, id)
		}
		lid, err := sub.AddNode(g.nodes[id].Name, g.nodes[id].Op)
		if err != nil {
			return nil, fmt.Errorf("induced subgraph %q: %w", name, err)
		}
		toLocal[id] = lid
	}
	for _, id := range ids {
		for _, s := range g.succs[id] {
			if ls, ok := toLocal[s]; ok {
				if err := sub.AddEdge(toLocal[id], ls); err != nil {
					return nil, fmt.Errorf("induced subgraph %q: %w", name, err)
				}
			}
		}
	}
	return sub, nil
}
