package cdfg

import "testing"

// FuzzParseJSON exercises the JSON graph decoder — the synthesis
// service's request-payload format — with arbitrary bytes: it must never
// panic, anything it accepts must pass structural validation, and the
// accepted graph must survive a marshal/unmarshal round trip unchanged in
// shape.
func FuzzParseJSON(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"nodes":[],"edges":[]}`,
		`{"name":"g","nodes":[{"name":"a","op":"imp"},{"name":"b","op":"+"},{"name":"o","op":"xpt"}],"edges":[{"from":"a","to":"b"},{"from":"b","to":"o"}]}`,
		`{"nodes":[{"name":"a","op":"bogus"}]}`,
		`{"nodes":[{"name":"a","op":"+"},{"name":"a","op":"+"}]}`,
		`{"nodes":[{"name":"a","op":"+"}],"edges":[{"from":"a","to":"a"}]}`,
		`{"nodes":[{"name":"a","op":"+"}],"edges":[{"from":"a","to":"ghost"}]}`,
		`{"nodes":[{"name":"a","op":"+"},{"name":"b","op":"+"}],"edges":[{"from":"a","to":"b"},{"from":"b","to":"a"}]}`,
		`[1,2,3]`,
		`{"nodes":`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ParseJSON(data)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("JSON decoder accepted invalid graph: %v\ninput: %q", err, data)
		}
		out, err := g.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted graph does not marshal: %v", err)
		}
		g2, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("marshaled graph does not reparse: %v\njson: %s", err, out)
		}
		if g2.N() != g.N() || g2.E() != g.E() || g2.Name != g.Name {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d edges", g.N(), g2.N(), g.E(), g2.E())
		}
	})
}
