// Package cdfg provides the control/data-flow graph substrate used by the
// power-constrained high-level synthesis engine. A Graph is a directed
// acyclic graph whose nodes are primitive operations (arithmetic operators
// plus explicit input and output transfers) and whose edges are data
// dependencies. The package supplies construction, validation, traversal,
// reachability, a line-oriented text format and DOT export.
package cdfg

import "fmt"

// Op identifies the primitive operation a node performs. The operation
// alphabet matches the functional-unit library of the paper's Table 1:
// addition, subtraction, comparison, multiplication, plus explicit input
// ("imp") and output ("xpt") transfer operations.
type Op int

// The supported operations.
const (
	// Invalid is the zero Op; it never appears in a valid graph.
	Invalid Op = iota
	// Add is two's-complement addition ("+").
	Add
	// Sub is two's-complement subtraction ("-").
	Sub
	// Cmp is magnitude comparison (">").
	Cmp
	// Mul is multiplication ("*").
	Mul
	// Input is an input transfer from the environment ("imp").
	Input
	// Output is an output transfer to the environment ("xpt").
	Output
)

// NumOps is the number of distinct valid operations.
const NumOps = 6

// opInfo carries the per-operation static attributes.
var opInfo = [...]struct {
	str     string // canonical text-format token
	maxIn   int    // maximum fan-in of a node with this op
	minIn   int    // minimum fan-in
	mayFanO bool   // whether fan-out is permitted
}{
	Invalid: {"?", 0, 0, false},
	Add:     {"+", 2, 1, true},
	Sub:     {"-", 2, 1, true},
	Cmp:     {">", 2, 1, true},
	Mul:     {"*", 2, 1, true},
	Input:   {"imp", 0, 0, true},
	Output:  {"xpt", 1, 1, false},
}

// String returns the canonical text-format token for the operation, e.g.
// "+" for Add and "imp" for Input.
func (o Op) String() string {
	if o < 0 || int(o) >= len(opInfo) {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opInfo[o].str
}

// Valid reports whether o is one of the defined operations (not Invalid).
func (o Op) Valid() bool { return o > Invalid && int(o) < len(opInfo) }

// IsTransfer reports whether the operation is an environment transfer
// (Input or Output) rather than a computation.
func (o Op) IsTransfer() bool { return o == Input || o == Output }

// MaxFanIn returns the maximum number of data-dependency predecessors a node
// with this operation may have.
func (o Op) MaxFanIn() int {
	if !o.Valid() {
		return 0
	}
	return opInfo[o].maxIn
}

// MinFanIn returns the minimum number of data-dependency predecessors a node
// with this operation must have in a validated graph.
func (o Op) MinFanIn() int {
	if !o.Valid() {
		return 0
	}
	return opInfo[o].minIn
}

// ParseOp converts a text-format token into an Op. It accepts the canonical
// tokens "+", "-", ">", "*", "imp", "xpt" as well as the spelled-out
// aliases "add", "sub", "cmp", "comp", "mul", "mult", "input", "in",
// "output", "out".
func ParseOp(s string) (Op, error) {
	switch s {
	case "+", "add":
		return Add, nil
	case "-", "sub":
		return Sub, nil
	case ">", "cmp", "comp":
		return Cmp, nil
	case "*", "mul", "mult":
		return Mul, nil
	case "imp", "input", "in":
		return Input, nil
	case "xpt", "output", "out":
		return Output, nil
	}
	return Invalid, fmt.Errorf("cdfg: unknown operation token %q", s)
}

// AllOps returns the valid operations in a fixed, deterministic order.
func AllOps() []Op {
	return []Op{Add, Sub, Cmp, Mul, Input, Output}
}
