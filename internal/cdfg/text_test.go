package cdfg

import (
	"strings"
	"testing"
)

const sampleText = `
# tiny test graph
graph tiny
node i1 imp
node i2 imp
node m  *      ; a multiply
node s  +
node o  xpt
edge i1 m
edge i2 m
edge m  s
edge s  o
`

func TestParseSample(t *testing.T) {
	g, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "tiny" {
		t.Fatalf("name = %q", g.Name)
	}
	if g.N() != 5 || g.E() != 4 {
		t.Fatalf("size = %d nodes %d edges", g.N(), g.E())
	}
	m, ok := g.Lookup("m")
	if !ok || m.Op != Mul {
		t.Fatalf("node m = %+v, %v", m, ok)
	}
	if len(g.Preds(m.ID)) != 2 {
		t.Fatalf("m preds = %v", g.Preds(m.ID))
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	g, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseString(g.Text())
	if err != nil {
		t.Fatalf("reparsing serialized graph: %v\ntext:\n%s", err, g.Text())
	}
	if g2.Name != g.Name || g2.N() != g.N() || g2.E() != g.E() {
		t.Fatalf("round trip changed shape: %v vs %v", g2, g)
	}
	for _, n := range g.Nodes() {
		n2, ok := g2.Lookup(n.Name)
		if !ok || n2.Op != n.Op || n2.ID != n.ID {
			t.Fatalf("node %q: %+v vs %+v", n.Name, n2, n)
		}
		s1 := g.Succs(n.ID)
		s2 := g2.Succs(n2.ID)
		if len(s1) != len(s2) {
			t.Fatalf("node %q succ count differs", n.Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"unknown directive", "blah x y", "unknown directive"},
		{"bad graph arity", "graph a b", "graph <name>"},
		{"dup graph", "graph a\ngraph b", "duplicate graph"},
		{"graph after node", "node a imp\ngraph g", "must precede"},
		{"bad node arity", "node a", "node <name> <op>"},
		{"bad op", "node a bogus", "unknown operation"},
		{"dup node", "node a imp\nnode a imp", "duplicate node name"},
		{"bad edge arity", "node a imp\nedge a", "edge <from> <to>"},
		{"unknown from", "node a imp\nedge b a", "unknown node"},
		{"unknown to", "node a imp\nedge a b", "unknown node"},
		{"self loop", "node a add\nedge a a", "self-loop"},
		{"cycle", "node a add\nnode b add\nedge a b\nedge b a", "cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.in)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("Parse(%q) error = %q, want substring %q", tc.in, err, tc.wantSub)
			}
		})
	}
}

func TestParseEmptyInput(t *testing.T) {
	g, err := ParseString("  \n# nothing\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 {
		t.Fatalf("empty input produced %d nodes", g.N())
	}
}

func TestDotOutput(t *testing.T) {
	g, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.Dot(nil)
	for _, want := range []string{"digraph", `"i1" -> "m"`, `"m" -> "s"`, "shape=box", "shape=ellipse"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestDotWithRanks(t *testing.T) {
	g, err := ParseString(sampleText)
	if err != nil {
		t.Fatal(err)
	}
	// Rank everything by a trivial two-level schedule.
	dot := g.Dot(func(id NodeID) (int, bool) {
		if g.Node(id).Op == Input {
			return 0, true
		}
		return 1, true
	})
	if !strings.Contains(dot, "rank=same") {
		t.Fatalf("dot output missing rank groups:\n%s", dot)
	}
}

func TestDotUnnamedGraph(t *testing.T) {
	g := New("")
	g.MustAddNode("a", Add)
	if dot := g.Dot(nil); !strings.Contains(dot, `digraph "cdfg"`) {
		t.Fatalf("unnamed dot header: %s", dot)
	}
}
