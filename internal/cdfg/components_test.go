package cdfg

import (
	"reflect"
	"testing"
)

// chainPair builds two disjoint chains a0->a1->a2 and b0->b1, interleaving
// insertion order so component membership is not an artifact of ID ranges.
func chainPair(t *testing.T) *Graph {
	t.Helper()
	g := New("pair")
	a0 := g.MustAddNode("a0", Input)
	b0 := g.MustAddNode("b0", Input)
	a1 := g.MustAddNode("a1", Add)
	b1 := g.MustAddNode("b1", Output)
	a2 := g.MustAddNode("a2", Output)
	g.MustAddEdge(a0, a1)
	g.MustAddEdge(b0, b1)
	g.MustAddEdge(a1, a2)
	return g
}

func TestComponentsDisjointChains(t *testing.T) {
	g := chainPair(t)
	got := g.Components()
	want := [][]NodeID{{0, 2, 4}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Components() = %v, want %v", got, want)
	}
}

func TestComponentsSingle(t *testing.T) {
	g := New("one")
	in := g.MustAddNode("in", Input)
	add := g.MustAddNode("add", Add)
	out := g.MustAddNode("out", Output)
	g.MustAddEdge(in, add)
	g.MustAddEdge(add, out)
	got := g.Components()
	if len(got) != 1 || !reflect.DeepEqual(got[0], []NodeID{0, 1, 2}) {
		t.Fatalf("Components() = %v, want one full component", got)
	}
}

func TestComponentsEmpty(t *testing.T) {
	if got := New("empty").Components(); len(got) != 0 {
		t.Fatalf("Components() of empty graph = %v", got)
	}
}

// Weak connectivity must follow edges both ways: a node reachable only
// via a predecessor link still joins the component.
func TestComponentsFollowsPreds(t *testing.T) {
	g := New("vee")
	x := g.MustAddNode("x", Input)
	y := g.MustAddNode("y", Input)
	m := g.MustAddNode("m", Add)
	o := g.MustAddNode("o", Output)
	g.MustAddEdge(x, m)
	g.MustAddEdge(y, m)
	g.MustAddEdge(m, o)
	got := g.Components()
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("Components() = %v, want one 4-node component", got)
	}
}

func TestSubgraphRoundTrip(t *testing.T) {
	g := chainPair(t)
	for ci, ids := range g.Components() {
		sub, err := g.Subgraph("sub", ids)
		if err != nil {
			t.Fatalf("Subgraph(%v): %v", ids, err)
		}
		if err := sub.Validate(); err != nil {
			t.Fatalf("component %d subgraph invalid: %v", ci, err)
		}
		if sub.N() != len(ids) {
			t.Fatalf("component %d: %d nodes, want %d", ci, sub.N(), len(ids))
		}
		for li, old := range ids {
			want := g.Node(old)
			got := sub.Node(NodeID(li))
			if got.Name != want.Name || got.Op != want.Op {
				t.Fatalf("component %d node %d: got %q/%v, want %q/%v", ci, li, got.Name, got.Op, want.Name, want.Op)
			}
			// Every parent edge between members must exist locally.
			for _, s := range g.Succs(old) {
				found := false
				for _, ls := range sub.Succs(NodeID(li)) {
					if sub.Node(ls).Name == g.Node(s).Name {
						found = true
					}
				}
				if !found {
					t.Fatalf("edge %q->%q missing from subgraph", want.Name, g.Node(s).Name)
				}
			}
		}
	}
}

func TestSubgraphRejectsCrossEdges(t *testing.T) {
	g := chainPair(t)
	// {a0, a1} omits a2, so the a1->a2 edge leaves the set.
	if _, err := g.Subgraph("bad", []NodeID{0, 2}); err == nil {
		t.Fatal("Subgraph with a boundary-crossing edge succeeded")
	}
	if _, err := g.Subgraph("dup", []NodeID{0, 0}); err == nil {
		t.Fatal("Subgraph with a duplicated node succeeded")
	}
}
