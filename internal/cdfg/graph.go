package cdfg

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within one Graph. IDs are dense: a graph with n
// nodes uses IDs 0..n-1 in insertion order.
type NodeID int

// None is the sentinel "no node" value.
const None NodeID = -1

// Node is one operation instance in a data-flow graph.
type Node struct {
	ID   NodeID // dense identifier within the owning graph
	Name string // unique human-readable name, e.g. "u7" or "mul3"
	Op   Op     // the operation the node performs
}

// Graph is a directed acyclic data-flow graph. The zero value is an empty
// graph ready for use. Graphs are not safe for concurrent mutation.
type Graph struct {
	// Name labels the graph, e.g. the benchmark name "hal".
	Name string

	nodes  []Node
	succs  [][]NodeID
	preds  [][]NodeID
	byName map[string]NodeID
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name, byName: make(map[string]NodeID)}
}

// ErrDuplicateName is wrapped by AddNode when a node name is reused.
var ErrDuplicateName = errors.New("duplicate node name")

// ErrCycle is wrapped by Validate and TopoOrder when the graph contains a
// directed cycle.
var ErrCycle = errors.New("graph contains a cycle")

// ErrSelfLoop is wrapped by AddEdge when both endpoints are the same node.
var ErrSelfLoop = errors.New("self-loop edge")

// ErrDuplicateEdge is wrapped by AddEdge when the edge already exists.
var ErrDuplicateEdge = errors.New("duplicate edge")

// ErrUnknownNode is wrapped by the text and JSON parsers when an edge
// references a node that was never declared.
var ErrUnknownNode = errors.New("unknown node")

// AddNode appends a node with the given unique name and operation and
// returns its identifier.
func (g *Graph) AddNode(name string, op Op) (NodeID, error) {
	if !op.Valid() {
		return None, fmt.Errorf("cdfg: AddNode(%q): invalid operation", name)
	}
	if name == "" {
		return None, fmt.Errorf("cdfg: AddNode: empty node name")
	}
	if g.byName == nil {
		g.byName = make(map[string]NodeID)
	}
	if _, dup := g.byName[name]; dup {
		return None, fmt.Errorf("cdfg: AddNode(%q): %w", name, ErrDuplicateName)
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Op: op})
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	g.byName[name] = id
	return id, nil
}

// MustAddNode is AddNode for statically-known-good construction (benchmark
// graphs); it panics on error.
func (g *Graph) MustAddNode(name string, op Op) NodeID {
	id, err := g.AddNode(name, op)
	if err != nil {
		panic(err)
	}
	return id
}

// AddEdge records a data dependency from node u to node v (v consumes the
// value produced by u). Parallel edges are rejected; self-loops are
// rejected. Cycle detection is deferred to Validate/TopoOrder.
func (g *Graph) AddEdge(u, v NodeID) error {
	if !g.valid(u) || !g.valid(v) {
		return fmt.Errorf("cdfg: AddEdge(%d,%d): node id out of range [0,%d)", u, v, len(g.nodes))
	}
	if u == v {
		return fmt.Errorf("cdfg: AddEdge: node %q: %w", g.nodes[u].Name, ErrSelfLoop)
	}
	for _, w := range g.succs[u] {
		if w == v {
			return fmt.Errorf("cdfg: AddEdge: %q -> %q: %w", g.nodes[u].Name, g.nodes[v].Name, ErrDuplicateEdge)
		}
	}
	g.succs[u] = append(g.succs[u], v)
	g.preds[v] = append(g.preds[v], u)
	return nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func (g *Graph) valid(id NodeID) bool { return id >= 0 && int(id) < len(g.nodes) }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.nodes) }

// E returns the number of edges.
func (g *Graph) E() int {
	n := 0
	for _, s := range g.succs {
		n += len(s)
	}
	return n
}

// Node returns the node with the given identifier. It panics if id is out
// of range (programmer error: IDs are only minted by AddNode).
func (g *Graph) Node(id NodeID) Node {
	if !g.valid(id) {
		panic(fmt.Sprintf("cdfg: Node(%d): out of range [0,%d)", id, len(g.nodes)))
	}
	return g.nodes[id]
}

// Lookup returns the node with the given name.
func (g *Graph) Lookup(name string) (Node, bool) {
	id, ok := g.byName[name]
	if !ok {
		return Node{}, false
	}
	return g.nodes[id], true
}

// Succs returns the successors (consumers) of id. The returned slice is
// owned by the graph and must not be mutated.
func (g *Graph) Succs(id NodeID) []NodeID { return g.succs[id] }

// Preds returns the predecessors (producers) of id. The returned slice is
// owned by the graph and must not be mutated.
func (g *Graph) Preds(id NodeID) []NodeID { return g.preds[id] }

// Nodes returns all nodes in ID order. The slice is freshly allocated.
func (g *Graph) Nodes() []Node {
	out := make([]Node, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NodesOf returns the IDs of all nodes performing op, in ID order.
func (g *Graph) NodesOf(op Op) []NodeID {
	var out []NodeID
	for _, n := range g.nodes {
		if n.Op == op {
			out = append(out, n.ID)
		}
	}
	return out
}

// Sources returns nodes with no predecessors, in ID order.
func (g *Graph) Sources() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if len(g.preds[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Sinks returns nodes with no successors, in ID order.
func (g *Graph) Sinks() []NodeID {
	var out []NodeID
	for i := range g.nodes {
		if len(g.succs[i]) == 0 {
			out = append(out, NodeID(i))
		}
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	c.nodes = make([]Node, len(g.nodes))
	copy(c.nodes, g.nodes)
	c.succs = make([][]NodeID, len(g.succs))
	c.preds = make([][]NodeID, len(g.preds))
	for i := range g.succs {
		c.succs[i] = append([]NodeID(nil), g.succs[i]...)
		c.preds[i] = append([]NodeID(nil), g.preds[i]...)
	}
	for k, v := range g.byName {
		c.byName[k] = v
	}
	return c
}

// Reverse returns a new graph with every edge direction flipped. Node IDs,
// names and operations are preserved. Reversal maps Input nodes to Input
// and Output to Output (the operation labels are not swapped): the reversed
// graph is a scheduling artifact, not a semantic data-flow graph, and is
// used to derive ALAP-style schedules by running ASAP-style passes on it.
func (g *Graph) Reverse() *Graph {
	r := New(g.Name + ".rev")
	r.nodes = make([]Node, len(g.nodes))
	copy(r.nodes, g.nodes)
	r.succs = make([][]NodeID, len(g.succs))
	r.preds = make([][]NodeID, len(g.preds))
	for i := range g.succs {
		r.succs[i] = append([]NodeID(nil), g.preds[i]...)
		r.preds[i] = append([]NodeID(nil), g.succs[i]...)
	}
	for k, v := range g.byName {
		r.byName[k] = v
	}
	return r
}

// OpCounts returns the number of nodes per operation.
func (g *Graph) OpCounts() map[Op]int {
	m := make(map[Op]int)
	for _, n := range g.nodes {
		m[n.Op]++
	}
	return m
}

// Validate checks structural well-formedness: the graph is a DAG, node
// fan-ins respect each operation's arity bounds, Input nodes have no
// predecessors, and Output nodes have no successors. It returns the first
// violation found (with all violations joined when several exist).
func (g *Graph) Validate() error {
	var errs []error
	if _, err := g.TopoOrder(); err != nil {
		errs = append(errs, err)
	}
	for _, n := range g.nodes {
		in := len(g.preds[n.ID])
		if in > n.Op.MaxFanIn() {
			errs = append(errs, fmt.Errorf("cdfg: node %q (%s): fan-in %d exceeds maximum %d", n.Name, n.Op, in, n.Op.MaxFanIn()))
		}
		if in < n.Op.MinFanIn() {
			errs = append(errs, fmt.Errorf("cdfg: node %q (%s): fan-in %d below minimum %d", n.Name, n.Op, in, n.Op.MinFanIn()))
		}
		if n.Op == Output && len(g.succs[n.ID]) > 0 {
			errs = append(errs, fmt.Errorf("cdfg: output node %q has successors", n.Name))
		}
	}
	return errors.Join(errs...)
}

// TopoOrder returns the node IDs in a deterministic topological order
// (Kahn's algorithm with a smallest-ID-first tie-break). It returns an
// error wrapping ErrCycle if the graph is not acyclic.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	n := len(g.nodes)
	indeg := make([]int, n)
	for i := range g.nodes {
		indeg[i] = len(g.preds[i])
	}
	// ready is kept sorted ascending; smallest ID is popped first so the
	// order is deterministic and independent of insertion history.
	var ready []NodeID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, NodeID(i))
		}
	}
	order := make([]NodeID, 0, n)
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, v := range g.succs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				i := sort.Search(len(ready), func(k int) bool { return ready[k] >= v })
				ready = append(ready, 0)
				copy(ready[i+1:], ready[i:])
				ready[i] = v
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("cdfg: graph %q: %w", g.Name, ErrCycle)
	}
	return order, nil
}

// CriticalPath returns the length of the longest path through the graph,
// where each node contributes delay(node) cycles, along with one longest
// path (as node IDs, source to sink). For an empty graph it returns (0, nil).
// delay must return a value >= 1 for every node; values < 1 are treated
// as 1.
func (g *Graph) CriticalPath(delay func(Node) int) (int, []NodeID) {
	order, err := g.TopoOrder()
	if err != nil || len(order) == 0 {
		return 0, nil
	}
	dist := make([]int, g.N())
	from := make([]NodeID, g.N())
	for i := range from {
		from[i] = None
	}
	best, bestEnd := 0, None
	for _, u := range order {
		d := delay(g.nodes[u])
		if d < 1 {
			d = 1
		}
		end := dist[u] + d
		if end > best {
			best, bestEnd = end, u
		}
		for _, v := range g.succs[u] {
			if end > dist[v] {
				dist[v] = end
				from[v] = u
			}
		}
	}
	var path []NodeID
	for u := bestEnd; u != None; u = from[u] {
		path = append(path, u)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return best, path
}

// Reachability computes the transitive closure as a bitset matrix:
// result[u] has bit v set iff there is a directed path of one or more edges
// from u to v. It returns an error wrapping ErrCycle on cyclic graphs.
func (g *Graph) Reachability() (Bitmat, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return Bitmat{}, err
	}
	m := NewBitmat(g.N())
	// Process in reverse topological order so each node's successors'
	// closures are already complete.
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		for _, v := range g.succs[u] {
			m.Set(int(u), int(v))
			m.OrRow(int(u), int(v))
		}
	}
	return m, nil
}

// Bitmat is a square bit matrix used for reachability queries.
type Bitmat struct {
	n    int
	w    int // words per row
	bits []uint64
}

// NewBitmat returns an n x n all-zero bit matrix.
func NewBitmat(n int) Bitmat {
	w := (n + 63) / 64
	return Bitmat{n: n, w: w, bits: make([]uint64, n*w)}
}

// N returns the matrix dimension.
func (m Bitmat) N() int { return m.n }

// Set sets bit (r, c).
func (m Bitmat) Set(r, c int) { m.bits[r*m.w+c/64] |= 1 << uint(c%64) }

// Get reports bit (r, c).
func (m Bitmat) Get(r, c int) bool { return m.bits[r*m.w+c/64]&(1<<uint(c%64)) != 0 }

// OrRow ORs row src into row dst (dst |= src).
func (m Bitmat) OrRow(dst, src int) {
	d := m.bits[dst*m.w : dst*m.w+m.w]
	s := m.bits[src*m.w : src*m.w+m.w]
	for i := range d {
		d[i] |= s[i]
	}
}

// String returns a short human-readable summary of the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("cdfg %q: %d nodes, %d edges", g.Name, g.N(), g.E())
}
