package cdfg

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds the four-node diamond a -> {b, c} -> d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.MustAddNode("a", Input)
	b := g.MustAddNode("b", Add)
	c := g.MustAddNode("c", Mul)
	d := g.MustAddNode("d", Sub)
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	return g
}

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New("t")
	for i := 0; i < 5; i++ {
		id := g.MustAddNode(string(rune('a'+i)), Add)
		if int(id) != i {
			t.Fatalf("node %d got id %d", i, id)
		}
	}
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
}

func TestAddNodeRejectsDuplicateName(t *testing.T) {
	g := New("t")
	g.MustAddNode("x", Add)
	if _, err := g.AddNode("x", Mul); !errors.Is(err, ErrDuplicateName) {
		t.Fatalf("duplicate name error = %v, want ErrDuplicateName", err)
	}
}

func TestAddNodeRejectsInvalidOp(t *testing.T) {
	g := New("t")
	if _, err := g.AddNode("x", Invalid); err == nil {
		t.Fatal("AddNode with Invalid op succeeded")
	}
	if _, err := g.AddNode("", Add); err == nil {
		t.Fatal("AddNode with empty name succeeded")
	}
}

func TestAddEdgeRejectsBadEndpoints(t *testing.T) {
	g := New("t")
	a := g.MustAddNode("a", Add)
	if err := g.AddEdge(a, a); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := g.AddEdge(-1, a); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	b := g.MustAddNode("b", Add)
	g.MustAddEdge(a, b)
	if err := g.AddEdge(a, b); err == nil {
		t.Fatal("parallel edge accepted")
	}
}

func TestLookup(t *testing.T) {
	g := diamond(t)
	n, ok := g.Lookup("c")
	if !ok || n.Op != Mul || n.Name != "c" {
		t.Fatalf("Lookup(c) = %+v, %v", n, ok)
	}
	if _, ok := g.Lookup("zz"); ok {
		t.Fatal("Lookup of missing name succeeded")
	}
}

func TestSourcesSinks(t *testing.T) {
	g := diamond(t)
	if src := g.Sources(); len(src) != 1 || g.Node(src[0]).Name != "a" {
		t.Fatalf("Sources() = %v", src)
	}
	if snk := g.Sinks(); len(snk) != 1 || g.Node(snk[0]).Name != "d" {
		t.Fatalf("Sinks() = %v", snk)
	}
}

func TestTopoOrderIsTopological(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, n := range g.Nodes() {
		for _, v := range g.Succs(n.ID) {
			if pos[n.ID] >= pos[v] {
				t.Fatalf("edge %d->%d violates topo order %v", n.ID, v, order)
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cyc")
	a := g.MustAddNode("a", Add)
	b := g.MustAddNode("b", Add)
	c := g.MustAddNode("c", Add)
	g.MustAddEdge(a, b)
	g.MustAddEdge(b, c)
	g.MustAddEdge(c, a)
	if _, err := g.TopoOrder(); !errors.Is(err, ErrCycle) {
		t.Fatalf("TopoOrder on cycle = %v, want ErrCycle", err)
	}
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate on cycle = %v, want ErrCycle", err)
	}
}

func TestValidateArity(t *testing.T) {
	g := New("t")
	a := g.MustAddNode("a", Input)
	b := g.MustAddNode("b", Input)
	c := g.MustAddNode("c", Input)
	d := g.MustAddNode("d", Add)
	g.MustAddEdge(a, d)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d) // fan-in 3 > max 2 for Add
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "fan-in") {
		t.Fatalf("Validate = %v, want fan-in violation", err)
	}
}

func TestValidateOutputHasNoSuccessors(t *testing.T) {
	g := New("t")
	a := g.MustAddNode("a", Input)
	o := g.MustAddNode("o", Output)
	b := g.MustAddNode("b", Add)
	g.MustAddEdge(a, o)
	g.MustAddEdge(o, b)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted output node with successor")
	}
}

func TestValidateInputHasNoPredecessors(t *testing.T) {
	g := New("t")
	a := g.MustAddNode("a", Input)
	b := g.MustAddNode("b", Input)
	g.MustAddEdge(a, b)
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted input node with predecessor")
	}
}

func TestCriticalPathUnitDelays(t *testing.T) {
	g := diamond(t)
	length, path := g.CriticalPath(func(Node) int { return 1 })
	if length != 3 {
		t.Fatalf("critical path length = %d, want 3", length)
	}
	if len(path) != 3 || g.Node(path[0]).Name != "a" || g.Node(path[2]).Name != "d" {
		t.Fatalf("critical path = %v", path)
	}
}

func TestCriticalPathWeightedDelays(t *testing.T) {
	g := diamond(t)
	// Mul (node c) takes 4 cycles: path a-c-d has length 1+4+1 = 6.
	length, path := g.CriticalPath(func(n Node) int {
		if n.Op == Mul {
			return 4
		}
		return 1
	})
	if length != 6 {
		t.Fatalf("critical path length = %d, want 6", length)
	}
	if g.Node(path[1]).Name != "c" {
		t.Fatalf("critical path should route through c, got %v", path)
	}
}

func TestCriticalPathEmptyGraph(t *testing.T) {
	g := New("empty")
	if length, path := g.CriticalPath(func(Node) int { return 1 }); length != 0 || path != nil {
		t.Fatalf("empty graph critical path = %d, %v", length, path)
	}
}

func TestReverseFlipsEdges(t *testing.T) {
	g := diamond(t)
	r := g.Reverse()
	if r.N() != g.N() || r.E() != g.E() {
		t.Fatalf("reverse changed size: %v vs %v", r, g)
	}
	for _, n := range g.Nodes() {
		for _, v := range g.Succs(n.ID) {
			found := false
			for _, w := range r.Succs(v) {
				if w == n.ID {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not reversed", n.ID, v)
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.MustAddNode("extra", Add)
	x, _ := c.Lookup("a")
	y, _ := c.Lookup("extra")
	c.MustAddEdge(x.ID, y.ID)
	if g.N() == c.N() || g.E() == c.E() {
		t.Fatal("mutating clone affected original size")
	}
	if _, ok := g.Lookup("extra"); ok {
		t.Fatal("clone shares name index with original")
	}
}

func TestReachability(t *testing.T) {
	g := diamond(t)
	m, err := g.Reachability()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Lookup("a")
	b, _ := g.Lookup("b")
	c, _ := g.Lookup("c")
	d, _ := g.Lookup("d")
	cases := []struct {
		u, v NodeID
		want bool
	}{
		{a.ID, d.ID, true},
		{a.ID, b.ID, true},
		{b.ID, d.ID, true},
		{d.ID, a.ID, false},
		{b.ID, c.ID, false},
		{a.ID, a.ID, false},
	}
	for _, tc := range cases {
		if got := m.Get(int(tc.u), int(tc.v)); got != tc.want {
			t.Errorf("reach(%d,%d) = %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestOpCounts(t *testing.T) {
	g := diamond(t)
	counts := g.OpCounts()
	if counts[Add] != 1 || counts[Mul] != 1 || counts[Sub] != 1 || counts[Input] != 1 {
		t.Fatalf("OpCounts = %v", counts)
	}
}

func TestNodesOf(t *testing.T) {
	g := diamond(t)
	muls := g.NodesOf(Mul)
	if len(muls) != 1 || g.Node(muls[0]).Name != "c" {
		t.Fatalf("NodesOf(Mul) = %v", muls)
	}
	if got := g.NodesOf(Output); got != nil {
		t.Fatalf("NodesOf(Output) = %v, want nil", got)
	}
}

// randomDAG builds a random layered DAG with edges only from lower to
// higher IDs, so it is acyclic by construction.
func randomDAG(rng *rand.Rand, n int) *Graph {
	g := New("rand")
	for i := 0; i < n; i++ {
		g.MustAddNode(nodeName(i), Add)
	}
	for v := 1; v < n; v++ {
		deg := rng.Intn(2) + 1
		seen := map[int]bool{}
		for k := 0; k < deg; k++ {
			u := rng.Intn(v)
			if !seen[u] && len(g.Preds(NodeID(v))) < 2 {
				seen[u] = true
				g.MustAddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return g
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/100%10)) + string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestQuickTopoOrderPermutation(t *testing.T) {
	// Property: TopoOrder returns each node exactly once and respects all
	// edges on arbitrary random DAGs.
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%60) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		order, err := g.TopoOrder()
		if err != nil || len(order) != n {
			return false
		}
		pos := make([]int, n)
		seen := make([]bool, n)
		for i, id := range order {
			if seen[id] {
				return false
			}
			seen[id] = true
			pos[id] = i
		}
		for _, node := range g.Nodes() {
			for _, v := range g.Succs(node.ID) {
				if pos[node.ID] >= pos[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReachabilityMatchesDFS(t *testing.T) {
	// Property: the bitset transitive closure agrees with a plain DFS.
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%40) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		m, err := g.Reachability()
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			reach := make([]bool, n)
			var dfs func(x NodeID)
			dfs = func(x NodeID) {
				for _, v := range g.Succs(x) {
					if !reach[v] {
						reach[v] = true
						dfs(v)
					}
				}
			}
			dfs(NodeID(u))
			for v := 0; v < n; v++ {
				if m.Get(u, v) != reach[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReverseTwiceIsIdentity(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		n := int(szRaw%40) + 2
		g := randomDAG(rand.New(rand.NewSource(seed)), n)
		rr := g.Reverse().Reverse()
		if rr.N() != g.N() || rr.E() != g.E() {
			return false
		}
		for _, node := range g.Nodes() {
			a := append([]NodeID(nil), g.Succs(node.ID)...)
			b := append([]NodeID(nil), rr.Succs(node.ID)...)
			if len(a) != len(b) {
				return false
			}
			set := map[NodeID]bool{}
			for _, x := range a {
				set[x] = true
			}
			for _, x := range b {
				if !set[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmat(t *testing.T) {
	m := NewBitmat(70) // spans two words per row
	m.Set(0, 0)
	m.Set(0, 69)
	m.Set(3, 64)
	if !m.Get(0, 0) || !m.Get(0, 69) || !m.Get(3, 64) {
		t.Fatal("set bits not readable")
	}
	if m.Get(0, 1) || m.Get(1, 0) {
		t.Fatal("unset bits read as set")
	}
	m.OrRow(1, 0)
	if !m.Get(1, 0) || !m.Get(1, 69) {
		t.Fatal("OrRow did not merge")
	}
	if m.N() != 70 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestGraphString(t *testing.T) {
	g := diamond(t)
	s := g.String()
	if !strings.Contains(s, "diamond") || !strings.Contains(s, "4 nodes") {
		t.Fatalf("String() = %q", s)
	}
}
