package cdfg

import (
	"strings"
	"testing"
)

// FuzzParse exercises the .cdfg text parser with arbitrary input: it must
// never panic, and anything it accepts must be a valid graph that
// round-trips through the serializer.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"graph g\nnode a imp\nnode b add\nedge a b\n",
		"node a imp\nnode o xpt\nedge a o\n",
		"# only a comment\n",
		"graph g\nnode a *\nnode b *\nedge a b\nedge b a\n",
		"node x add\nedge x x\n",
		"graph\n",
		"node a bogusop\n",
		"edge a b\n",
		strings.Repeat("node n add\n", 3),
		"graph g\r\nnode a imp\r\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ParseString(input)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parser accepted invalid graph: %v\ninput: %q", err, input)
		}
		// Round trip.
		g2, err := ParseString(g.Text())
		if err != nil {
			t.Fatalf("serialized graph does not reparse: %v\ntext: %q", err, g.Text())
		}
		if g2.N() != g.N() || g2.E() != g.E() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	})
}
