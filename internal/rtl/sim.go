package rtl

import (
	"fmt"

	"pchls/internal/cdfg"
)

// Simulate executes the FSMD cycle by cycle on concrete input values and
// returns the values appearing on the output ports — a software model of
// the generated Verilog with non-blocking (read-before-write) register
// semantics. inputs is keyed by Input node name (without the "in_"
// prefix). Missing operands of constant-consuming operations use the same
// identity convention as cdfg.Eval, so for any correct synthesis result
//
//	Simulate(m, x) == g.EvalOutputs(x)
//
// which is the end-to-end functional check of scheduling, binding and
// register allocation.
func Simulate(m *Module, inputs map[string]int64) (map[string]int64, error) {
	return m.simulate(inputs, nil)
}

// simulate runs the FSMD; after each step's commits, observe (when
// non-nil) receives the step index, the post-step register file and the
// output port values so far.
func (m *Module) simulate(inputs map[string]int64, observe func(step int, regs []int64, outputs map[string]int64)) (map[string]int64, error) {
	regs := make([]int64, len(m.dp.Registers))
	type latch struct{ a, b int64 }
	fus := make([]latch, len(m.dp.FUs))
	outputs := make(map[string]int64)

	byStep := make(map[int][]Action)
	for _, a := range m.Actions {
		byStep[a.Step] = append(byStep[a.Step], a)
	}

	for step := 0; step < m.Steps; step++ {
		// Two-phase update: compute all new values from the pre-step
		// state, then commit — the non-blocking assignment semantics of
		// the generated always block.
		type regWrite struct {
			reg int
			val int64
		}
		type latchWrite struct {
			fu   int
			a, b int64
		}
		var regWrites []regWrite
		var latchWrites []latchWrite

		for _, act := range byStep[step] {
			n := m.g.Node(act.Node)
			// readOperands resolves the operand values from the pre-step
			// register state (or the input port, or the identity element
			// for constant operands).
			readOperands := func() (int64, int64, error) {
				a := cdfg.IdentityOperand(n.Op)
				b := cdfg.IdentityOperand(n.Op)
				if n.Op == cdfg.Input {
					v, ok := inputs[n.Name]
					if !ok {
						return 0, 0, fmt.Errorf("rtl: Simulate: no value for input %q", n.Name)
					}
					return v, b, nil
				}
				for i, src := range act.Sources {
					if src < 0 || src >= len(regs) {
						return 0, 0, fmt.Errorf("rtl: Simulate: node %q operand %d from bad register %d", n.Name, i, src)
					}
					switch i {
					case 0:
						a = regs[src]
					case 1:
						b = regs[src]
					}
				}
				return a, b, nil
			}
			switch act.Kind {
			case LatchOperands:
				a, b, err := readOperands()
				if err != nil {
					return nil, err
				}
				latchWrites = append(latchWrites, latchWrite{fu: act.FU, a: a, b: b})
			case StoreResult:
				var a, b int64
				if m.s.Delay[act.Node] == 1 {
					var err error
					a, b, err = readOperands()
					if err != nil {
						return nil, err
					}
				} else {
					l := fus[act.FU]
					a, b = l.a, l.b
				}
				var result int64
				if n.Op.IsTransfer() {
					result = a
				} else {
					result = cdfg.EvalOp(n.Op, a, b)
				}
				if n.Op == cdfg.Output {
					outputs[n.Name] = result
					continue
				}
				if act.Register >= 0 {
					regWrites = append(regWrites, regWrite{reg: act.Register, val: result})
				}
			}
		}
		for _, w := range latchWrites {
			fus[w.fu] = latch{a: w.a, b: w.b}
		}
		for _, w := range regWrites {
			regs[w.reg] = w.val
		}
		if observe != nil {
			observe(step, regs, outputs)
		}
	}
	return outputs, nil
}

// Verify synthesizes nothing itself: it runs the FSMD simulation against
// the direct data-flow evaluation on the given inputs (keyed by Input node
// name) and returns an error describing the first mismatch.
func Verify(m *Module, inputs map[string]int64) error {
	byID := make(map[cdfg.NodeID]int64)
	for _, n := range m.g.Nodes() {
		if n.Op == cdfg.Input {
			v, ok := inputs[n.Name]
			if !ok {
				return fmt.Errorf("rtl: Verify: no value for input %q", n.Name)
			}
			byID[n.ID] = v
		}
	}
	want, err := m.g.EvalOutputs(byID)
	if err != nil {
		return err
	}
	got, err := Simulate(m, inputs)
	if err != nil {
		return err
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			return fmt.Errorf("rtl: Verify: output %q never written by the FSMD", name)
		}
		if g != w {
			return fmt.Errorf("rtl: Verify: output %q = %d, data-flow evaluation gives %d", name, g, w)
		}
	}
	return nil
}
