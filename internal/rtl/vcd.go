package rtl

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// DumpVCD simulates the FSMD on the given inputs and writes a Value Change
// Dump (IEEE 1364 VCD) trace of the controller state, every datapath
// register and every output port — loadable in any waveform viewer. One
// timescale unit corresponds to one control step (clock cycle).
func DumpVCD(m *Module, inputs map[string]int64, w io.Writer) error {
	bw := bufio.NewWriter(w)

	// Identifier codes: VCD uses printable ASCII 33..126; generate
	// multi-character codes when needed.
	nextCode := 0
	code := func() string {
		c := nextCode
		nextCode++
		var sb strings.Builder
		for {
			sb.WriteByte(byte(33 + c%94))
			c = c/94 - 1
			if c < 0 {
				break
			}
		}
		return sb.String()
	}

	stateCode := code()
	regCodes := make([]string, len(m.dp.Registers))
	for i := range regCodes {
		regCodes[i] = code()
	}
	outCodes := make(map[string]string, len(m.Outputs))
	outNames := append([]string(nil), m.Outputs...)
	for _, o := range outNames {
		outCodes[o] = code()
	}

	fmt.Fprintf(bw, "$version pchls FSMD trace of %s $end\n", m.Name)
	fmt.Fprintf(bw, "$timescale 1ns $end\n")
	fmt.Fprintf(bw, "$scope module %s $end\n", m.Name)
	fmt.Fprintf(bw, "$var wire %d %s state $end\n", 32, stateCode)
	for i, c := range regCodes {
		fmt.Fprintf(bw, "$var wire %d %s r%d $end\n", m.Width, c, i)
	}
	for _, o := range outNames {
		fmt.Fprintf(bw, "$var wire %d %s %s $end\n", m.Width, outCodes[o], o)
	}
	bw.WriteString("$upscope $end\n$enddefinitions $end\n")

	// Initial values.
	bw.WriteString("#0\n$dumpvars\n")
	emit := func(c string, v int64, width int) {
		fmt.Fprintf(bw, "b%s %s\n", toBinary(v, width), c)
	}
	emit(stateCode, 0, 32)
	for i, c := range regCodes {
		_ = i
		emit(c, 0, m.Width)
	}
	for _, o := range outNames {
		emit(outCodes[o], 0, m.Width)
	}
	bw.WriteString("$end\n")

	prevRegs := make([]int64, len(m.dp.Registers))
	prevOuts := make(map[string]int64, len(outNames))
	_, err := m.simulate(inputs, func(step int, regs []int64, outputs map[string]int64) {
		fmt.Fprintf(bw, "#%d\n", step+1)
		emit(stateCode, int64(step+1), 32)
		for i, v := range regs {
			if v != prevRegs[i] {
				emit(regCodes[i], v, m.Width)
				prevRegs[i] = v
			}
		}
		for _, o := range outNames {
			// Output port names in the module carry the "out_" prefix;
			// simulation results are keyed by node name.
			node := strings.TrimPrefix(o, "out_")
			if v, ok := outputs[node]; ok && v != prevOuts[o] {
				emit(outCodes[o], v, m.Width)
				prevOuts[o] = v
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(bw, "#%d\n", m.Steps+1)
	return bw.Flush()
}

// toBinary renders the low `width` bits of v as a VCD binary literal.
func toBinary(v int64, width int) string {
	if width <= 0 {
		width = 1
	}
	if width > 64 {
		width = 64
	}
	b := make([]byte, width)
	for i := 0; i < width; i++ {
		if v&(1<<uint(width-1-i)) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
