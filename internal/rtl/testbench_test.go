package rtl

import (
	"strings"
	"testing"
)

func TestTestbenchHal(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]int64{"x": 3, "y": 4, "u": 5, "dx": 2, "a": 100}
	tb, err := Testbench(m, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module hal_tb;",
		"hal #(.WIDTH(16)) dut",
		".clk(clk), .rst(rst)",
		"reg  [15:0] in_x = 16'd3;",
		"wire [15:0] out_out_y1;",
		"wait (done);",
		// y1 = y + u*dx = 14; expected value asserted.
		"out_out_y1 !== 16'd14",
		`$display("PASS")`,
		"endmodule",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	// u1 = -33 asserted as its 16-bit two's complement.
	if !strings.Contains(tb, "16'd65503") {
		t.Error("negative expected value not rendered in two's complement")
	}
}

func TestTestbenchMissingInput(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Testbench(m, map[string]int64{"x": 1}); err == nil {
		t.Fatal("missing inputs accepted")
	}
}
