package rtl

import (
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/core"
	"pchls/internal/library"
)

func TestLintAcceptsEmittedVerilog(t *testing.T) {
	// Every benchmark's emitted module must pass the structural lint.
	lib := library.Table1()
	for _, tc := range []struct {
		name string
		T    int
	}{{"hal", 17}, {"cosine", 19}, {"elliptic", 26}, {"fft8", 20}} {
		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Synthesize(g, lib, core.Constraints{Deadline: tc.T}, core.Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
		if err != nil {
			t.Fatal(err)
		}
		if err := Lint(m.Verilog()); err != nil {
			t.Errorf("%s: emitted verilog fails lint: %v", tc.name, err)
		}
	}
}

func TestLintCatchesUnbalancedBlocks(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing endmodule", "module m;\n"},
		{"missing end", "module m;\nalways begin\nendmodule\n"},
		{"missing endcase", "module m;\ncase (x)\nendmodule\n"},
	}
	for _, tc := range cases {
		if err := Lint(tc.src); err == nil || !strings.Contains(err.Error(), "unbalanced") {
			t.Errorf("%s: lint = %v", tc.name, err)
		}
	}
}

func TestLintCatchesUndeclaredAssignment(t *testing.T) {
	src := "module m;\n  reg [3:0] a;\n  always begin\n    b <= a;\n  end\nendmodule\n"
	if err := Lint(src); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("lint = %v", err)
	}
}

func TestLintCatchesUnassignedOutput(t *testing.T) {
	src := "module m(\n  output reg [3:0] y\n);\nendmodule\n"
	if err := Lint(src); err == nil || !strings.Contains(err.Error(), "never assigned") {
		t.Fatalf("lint = %v", err)
	}
}

func TestIsIdentifier(t *testing.T) {
	for _, good := range []string{"a", "r0", "out_x1", "_t"} {
		if !isIdentifier(good) {
			t.Errorf("isIdentifier(%q) = false", good)
		}
	}
	for _, bad := range []string{"", "0a", "a-b", "16'd3"} {
		if isIdentifier(bad) {
			t.Errorf("isIdentifier(%q) = true", bad)
		}
	}
}
