package rtl

import (
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
)

func synthHAL(t *testing.T) *core.Design {
	t.Helper()
	d, err := core.Synthesize(bench.HAL(), library.Table1(), core.Constraints{Deadline: 17, PowerMax: 8}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateHAL(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "hal" || m.Width != 16 {
		t.Fatalf("module %q width %d", m.Name, m.Width)
	}
	if m.Steps != d.Schedule.Length() {
		t.Fatalf("steps %d, schedule length %d", m.Steps, d.Schedule.Length())
	}
	if len(m.Inputs) != 5 || len(m.Outputs) != 4 {
		t.Fatalf("io: %v %v", m.Inputs, m.Outputs)
	}
	// One action per single-cycle node, two per multi-cycle node.
	want := 0
	for i := 0; i < d.Graph.N(); i++ {
		if d.Schedule.Delay[i] == 1 {
			want++
		} else {
			want += 2
		}
	}
	if len(m.Actions) != want {
		t.Fatalf("%d actions, want %d", len(m.Actions), want)
	}
	if err := m.Check(); err != nil {
		t.Fatalf("self-check: %v", err)
	}
}

func TestGenerateDefaultWidthAndStats(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Width != 16 {
		t.Fatalf("default width = %d", m.Width)
	}
	stats := m.Stats()
	for _, want := range []string{"rtl hal", "FUs", "registers", "actions"} {
		if !strings.Contains(stats, want) {
			t.Errorf("stats missing %q: %s", want, stats)
		}
	}
}

func TestGenerateRejectsBadFuOf(t *testing.T) {
	d := synthHAL(t)
	if _, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf[:3], 16); err == nil {
		t.Fatal("accepted short fuOf")
	}
}

func TestVerilogOutput(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	v := m.Verilog()
	for _, want := range []string{
		"module hal #(parameter WIDTH = 16)",
		"input  wire clk",
		"input  wire [WIDTH-1:0] in_x,",
		"output reg  [WIDTH-1:0] out_out_u1,",
		"output reg  done",
		"always @(posedge clk)",
		"case (state)",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("verilog missing %q", want)
		}
	}
	// Every register appears as a declaration.
	for r := range d.Datapath.Registers {
		decl := "reg [WIDTH-1:0] r" + string(rune('0'+r))
		if r < 10 && !strings.Contains(v, decl) {
			t.Errorf("verilog missing %q", decl)
		}
	}
	// Multiplications render as *.
	if !strings.Contains(v, "*") {
		t.Error("verilog missing multiply")
	}
}

func TestVerilogAllBenchmarks(t *testing.T) {
	lib := library.Table1()
	cases := []struct {
		name string
		T    int
	}{{"hal", 17}, {"cosine", 19}, {"elliptic", 22}, {"fir16", 30}, {"ar", 40}, {"diffeq2", 30}}
	for _, tc := range cases {
		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Synthesize(g, lib, core.Constraints{Deadline: tc.T}, core.Config{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if v := m.Verilog(); !strings.Contains(v, "endmodule") {
			t.Errorf("%s: truncated verilog", tc.name)
		}
	}
}

func TestActionKindString(t *testing.T) {
	if LatchOperands.String() != "latch" || StoreResult.String() != "store" {
		t.Fatal("action kind names wrong")
	}
	if !strings.Contains(ActionKind(9).String(), "9") {
		t.Fatal("unknown kind should include number")
	}
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"hal":       "hal",
		"":          "pchls",
		"9lives":    "n9lives",
		"a-b.c":     "a_b_c",
		"Mult(par)": "Mult_par_",
	}
	for in, want := range cases {
		if got := sanitize(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckCatchesCorruptedActions(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: action outside the step range.
	m.Actions[0].Step = m.Steps + 5
	if err := m.Check(); err == nil {
		t.Fatal("check accepted out-of-range step")
	}
}

func TestCheckCatchesMissingSourceRegister(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Actions {
		if m.Actions[i].Kind == LatchOperands && len(m.Actions[i].Sources) > 0 {
			m.Actions[i].Sources[0] = -1
			break
		}
	}
	if err := m.Check(); err == nil {
		t.Fatal("check accepted missing source register")
	}
}

func TestGenerateOnTinyGraph(t *testing.T) {
	g := cdfg.New("tiny")
	i := g.MustAddNode("i", cdfg.Input)
	a := g.MustAddNode("a", cdfg.Add)
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i, a)
	g.MustAddEdge(a, o)
	lib := library.Table1()
	d, err := core.Synthesize(g, lib, core.Constraints{Deadline: 5}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 8)
	if err != nil {
		t.Fatal(err)
	}
	v := m.Verilog()
	if !strings.Contains(v, "parameter WIDTH = 8") {
		t.Error("custom width not applied")
	}
}
