package rtl

import (
	"strings"
	"testing"
)

func TestDumpVCDHal(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string]int64{"x": 3, "y": 4, "u": 5, "dx": 2, "a": 100}
	var sb strings.Builder
	if err := DumpVCD(m, inputs, &sb); err != nil {
		t.Fatal(err)
	}
	vcd := sb.String()
	for _, want := range []string{
		"$version pchls FSMD trace of hal $end",
		"$timescale 1ns $end",
		"$scope module hal $end",
		"$var wire 16", "state $end",
		"$enddefinitions $end",
		"$dumpvars",
		"#0\n", "#1\n",
	} {
		if !strings.Contains(vcd, want) {
			t.Errorf("vcd missing %q", want)
		}
	}
	// The trace must cover every control step.
	lastMark := "#" + itoa(m.Steps+1) + "\n"
	if !strings.Contains(vcd, lastMark) {
		t.Errorf("vcd missing final time mark %q", lastMark)
	}
	// Output values must appear: out_y1 = y + u*dx = 4 + 10 = 14.
	want := "b" + toBinary(14, 16)
	if !strings.Contains(vcd, want) {
		t.Errorf("vcd missing output value 14 (%s)", want)
	}
}

func TestDumpVCDMissingInput(t *testing.T) {
	d := synthHAL(t)
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 16)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := DumpVCD(m, map[string]int64{"x": 1}, &sb); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestToBinary(t *testing.T) {
	cases := []struct {
		v     int64
		width int
		want  string
	}{
		{0, 4, "0000"},
		{5, 4, "0101"},
		{15, 4, "1111"},
		{16, 4, "0000"}, // truncated to low bits
		{-1, 4, "1111"}, // two's complement low bits
		{1, 0, "1"},     // width floor
		{3, 2, "11"},
	}
	for _, tc := range cases {
		if got := toBinary(tc.v, tc.width); got != tc.want {
			t.Errorf("toBinary(%d,%d) = %q, want %q", tc.v, tc.width, got, tc.want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
