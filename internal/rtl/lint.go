package rtl

import (
	"errors"
	"fmt"
	"strings"
)

// Lint performs a structural sanity check of emitted Verilog text: the
// module/endmodule, begin/end and case/endcase pairs balance, every
// referenced register and operand latch is declared, and every declared
// output port is assigned somewhere. It is a guard on the emitter itself
// (a mini-linter, not a Verilog parser): Generate's Check validates the
// FSMD model, Lint validates the rendering.
func Lint(verilog string) error {
	var errs []error
	bal := map[string]int{}
	declared := map[string]bool{}
	assigned := map[string]bool{}
	outputs := map[string]bool{}

	for lineNo, raw := range strings.Split(verilog, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		words := strings.FieldsFunc(line, func(r rune) bool {
			return !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
		})
		for _, w := range words {
			switch w {
			case "module":
				bal["module"]++
			case "endmodule":
				bal["module"]--
			case "begin":
				bal["begin"]++
			case "end":
				bal["begin"]--
			case "case":
				bal["case"]++
			case "endcase":
				bal["case"]--
			}
		}
		// Declarations: "reg [..] name" / "wire [..] name" / ports.
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "reg ") || strings.Contains(trimmed, " reg ") ||
			strings.HasPrefix(trimmed, "wire ") || strings.Contains(trimmed, " wire ") {
			for _, w := range words {
				if isIdentifier(w) && w != "reg" && w != "wire" && w != "input" && w != "output" && w != "WIDTH" {
					declared[w] = true
					if strings.Contains(trimmed, "output") {
						outputs[w] = true
					}
				}
			}
		}
		// Assignments: "x <= expr".
		if i := strings.Index(line, "<="); i >= 0 {
			lhs := strings.TrimSpace(line[:i])
			if fields := strings.Fields(lhs); len(fields) > 0 {
				name := fields[len(fields)-1]
				if isIdentifier(name) {
					assigned[name] = true
					if !declared[name] {
						errs = append(errs, fmt.Errorf("rtl: lint: line %d assigns undeclared %q", lineNo+1, name))
					}
				}
			}
		}
	}
	for kind, n := range bal {
		if n != 0 {
			errs = append(errs, fmt.Errorf("rtl: lint: unbalanced %s/end%s (%+d)", kind, kind, n))
		}
	}
	for name := range outputs {
		if !assigned[name] {
			errs = append(errs, fmt.Errorf("rtl: lint: output port %q never assigned", name))
		}
	}
	return errors.Join(errs...)
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	if s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}
