package rtl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
)

// randomInputs assigns a deterministic pseudo-random value to every Input
// node, keyed by name.
func randomInputs(g *cdfg.Graph, rng *rand.Rand) map[string]int64 {
	in := make(map[string]int64)
	for _, n := range g.Nodes() {
		if n.Op == cdfg.Input {
			in[n.Name] = int64(rng.Intn(200) - 100)
		}
	}
	return in
}

// synthAndGenerate synthesizes and builds the FSMD.
func synthAndGenerate(t *testing.T, g *cdfg.Graph, T int, P float64) *Module {
	t.Helper()
	d, err := core.Synthesize(g, library.Table1(), core.Constraints{Deadline: T, PowerMax: P}, core.Config{})
	if err != nil {
		t.Fatalf("synthesize %s: %v", g.Name, err)
	}
	m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 32)
	if err != nil {
		t.Fatalf("generate %s: %v", g.Name, err)
	}
	return m
}

func TestSimulateMatchesEvalOnBenchmarks(t *testing.T) {
	cases := []struct {
		name string
		T    int
		P    float64
	}{
		{"hal", 10, 20}, {"hal", 17, 8},
		{"cosine", 15, 30}, {"elliptic", 22, 15},
		{"fir16", 30, 0}, {"ar", 40, 12}, {"diffeq2", 30, 15},
	}
	rng := rand.New(rand.NewSource(42))
	for _, tc := range cases {
		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		m := synthAndGenerate(t, g, tc.T, tc.P)
		for trial := 0; trial < 5; trial++ {
			if err := Verify(m, randomInputs(g, rng)); err != nil {
				t.Fatalf("%s T=%d P=%g trial %d: %v", tc.name, tc.T, tc.P, trial, err)
			}
		}
	}
}

func TestSimulateTinyPipelineExactValues(t *testing.T) {
	// i1=7, i2=5 -> m = 7*5 = 35; a = 35 + i3(4) = 39 -> o.
	g := cdfg.New("tiny")
	i1 := g.MustAddNode("i1", cdfg.Input)
	i2 := g.MustAddNode("i2", cdfg.Input)
	i3 := g.MustAddNode("i3", cdfg.Input)
	mul := g.MustAddNode("m", cdfg.Mul)
	add := g.MustAddNode("a", cdfg.Add)
	out := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i1, mul)
	g.MustAddEdge(i2, mul)
	g.MustAddEdge(mul, add)
	g.MustAddEdge(i3, add)
	g.MustAddEdge(add, out)
	m := synthAndGenerate(t, g, 8, 0)
	got, err := Simulate(m, map[string]int64{"i1": 7, "i2": 5, "i3": 4})
	if err != nil {
		t.Fatal(err)
	}
	if got["o"] != 39 {
		t.Fatalf("o = %d, want 39", got["o"])
	}
}

func TestSimulateSingleOperandIdentity(t *testing.T) {
	// A single-operand multiply behaves as *1 (identity), matching Eval.
	g := cdfg.New("ident")
	i := g.MustAddNode("i", cdfg.Input)
	mul := g.MustAddNode("m", cdfg.Mul)
	sub := g.MustAddNode("s", cdfg.Sub)
	out := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i, mul)
	g.MustAddEdge(mul, sub)
	g.MustAddEdge(sub, out)
	m := synthAndGenerate(t, g, 10, 0)
	got, err := Simulate(m, map[string]int64{"i": 9})
	if err != nil {
		t.Fatal(err)
	}
	// m = 9*1 = 9; s = 9-0 = 9.
	if got["o"] != 9 {
		t.Fatalf("o = %d, want 9", got["o"])
	}
	if err := Verify(m, map[string]int64{"i": -3}); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateMissingInput(t *testing.T) {
	g, _ := bench.ByName("hal")
	m := synthAndGenerate(t, g, 17, 0)
	if _, err := Simulate(m, map[string]int64{"x": 1}); err == nil {
		t.Fatal("missing inputs accepted")
	}
	if err := Verify(m, map[string]int64{"x": 1}); err == nil {
		t.Fatal("Verify with missing inputs succeeded")
	}
}

func TestQuickSynthesisIsFunctionallyCorrect(t *testing.T) {
	// The flagship end-to-end property: for random graphs, random
	// constraints and random inputs, the synthesized FSMD computes exactly
	// what the data-flow graph computes.
	lib := library.Table1()
	f := func(seed int64, szRaw, slackRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := bench.Random(rng, bench.RandomConfig{Nodes: int(szRaw%12) + 2, MaxWidth: 3})
		cp, _ := g.CriticalPath(func(n cdfg.Node) int {
			if n.Op == cdfg.Mul {
				return 4
			}
			return 1
		})
		T := cp + int(slackRaw%6)
		d, err := core.Synthesize(g, lib, core.Constraints{Deadline: T}, core.Config{})
		if err != nil {
			return true // heuristic infeasibility is allowed; nothing to verify
		}
		m, err := Generate(d.Graph, d.Schedule, d.Datapath, d.FUOf, 32)
		if err != nil {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			if err := Verify(m, randomInputs(g, rng)); err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestVerilogLatchesConstantOperands(t *testing.T) {
	g := cdfg.New("const")
	i := g.MustAddNode("i", cdfg.Input)
	mul := g.MustAddNode("m", cdfg.Mul)
	out := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i, mul)
	g.MustAddEdge(mul, out)
	m := synthAndGenerate(t, g, 8, 0)
	v := m.Verilog()
	// The multiply's missing operand renders as its identity element 1
	// (either latched for a multi-cycle unit or read inline).
	if !strings.Contains(v, "<= 1; // m operand 1") && !strings.Contains(v, "* 1; // ") && !strings.Contains(v, " * 1") {
		t.Fatalf("verilog does not substitute the identity for the constant operand:\n%s", v)
	}
}
