// Package rtl generates a register-transfer-level implementation of a
// synthesized design: a finite-state-machine-with-datapath (FSMD) whose
// datapath instantiates the allocated functional units, the left-edge
// registers and the implied operand multiplexers, and whose controller
// sequences the schedule. The result can be rendered as a synthesizable
// Verilog-2001 subset and self-checked for structural consistency.
package rtl

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pchls/internal/bind"
	"pchls/internal/cdfg"
	"pchls/internal/sched"
)

// Action is one register transfer performed in a control step.
//
// Single-cycle operations (delay 1) are a single StoreResult action whose
// Sources name the operand registers: the hardware reads its operands
// combinationally through the input multiplexers and stores the result at
// the same clock edge. Multi-cycle operations split into a LatchOperands
// action at their start step (operands are captured into the unit's
// operand latches) and a Sources-less StoreResult action at their final
// step (the result, computed from the latches, is stored).
type Action struct {
	// Step is the control step (clock cycle) the action fires in.
	Step int
	// Kind describes the transfer.
	Kind ActionKind
	// FU is the functional-unit instance involved.
	FU int
	// Node is the operation being executed.
	Node cdfg.NodeID
	// Register is the destination register (StoreResult); -1 when the
	// result goes off-chip (Output) or is unused.
	Register int
	// Sources are the source registers per operand port (LatchOperands,
	// and StoreResult of single-cycle operations).
	Sources []int
}

// ActionKind enumerates register-transfer kinds.
type ActionKind int

// The action kinds.
const (
	// LatchOperands loads the FU's operand latches from registers (or a
	// top-level input port for Input operations).
	LatchOperands ActionKind = iota
	// StoreResult writes the FU result into a register (or a top-level
	// output port for Output operations).
	StoreResult
)

// String names the action kind.
func (k ActionKind) String() string {
	switch k {
	case LatchOperands:
		return "latch"
	case StoreResult:
		return "store"
	}
	return fmt.Sprintf("ActionKind(%d)", int(k))
}

// Module is the generated FSMD.
type Module struct {
	// Name is the Verilog module name (derived from the graph name).
	Name string
	// Width is the datapath bit width.
	Width int
	// Steps is the number of control steps (schedule length).
	Steps int
	// Inputs and Outputs are the top-level data ports (from Input/Output
	// operations), in node-ID order.
	Inputs, Outputs []string
	// Actions is the control plan sorted by step.
	Actions []Action

	g    *cdfg.Graph
	s    *sched.Schedule
	dp   *bind.Datapath
	fuOf []int
	// regOf maps producing node -> register index, -1 if value not stored.
	regOf []int
}

// Generate builds the FSMD for a bound design. Width is the datapath bit
// width (defaults to 16 when <= 0).
func Generate(g *cdfg.Graph, s *sched.Schedule, dp *bind.Datapath, fuOf []int, width int) (*Module, error) {
	if width <= 0 {
		width = 16
	}
	if len(fuOf) != g.N() {
		return nil, fmt.Errorf("rtl: fuOf has %d entries for %d nodes", len(fuOf), g.N())
	}
	m := &Module{
		Name:  sanitize(g.Name),
		Width: width,
		Steps: s.Length(),
		g:     g, s: s, dp: dp, fuOf: fuOf,
	}
	m.regOf = make([]int, g.N())
	for i := range m.regOf {
		m.regOf[i] = -1
	}
	for r, reg := range dp.Registers {
		for _, v := range reg.Values {
			m.regOf[v] = r
		}
	}
	for _, n := range g.Nodes() {
		switch n.Op {
		case cdfg.Input:
			m.Inputs = append(m.Inputs, "in_"+sanitize(n.Name))
		case cdfg.Output:
			m.Outputs = append(m.Outputs, "out_"+sanitize(n.Name))
		}
	}
	for _, n := range g.Nodes() {
		var sources []int
		for _, p := range g.Preds(n.ID) {
			sources = append(sources, m.regOf[p])
		}
		if s.Delay[n.ID] == 1 {
			m.Actions = append(m.Actions, Action{
				Step: s.Start[n.ID], Kind: StoreResult,
				FU: fuOf[n.ID], Node: n.ID,
				Register: m.regOf[n.ID], Sources: sources,
			})
			continue
		}
		m.Actions = append(m.Actions, Action{
			Step: s.Start[n.ID], Kind: LatchOperands,
			FU: fuOf[n.ID], Node: n.ID, Register: -1, Sources: sources,
		})
		m.Actions = append(m.Actions, Action{
			Step: s.End(n.ID) - 1, Kind: StoreResult,
			FU: fuOf[n.ID], Node: n.ID, Register: m.regOf[n.ID],
		})
	}
	sort.SliceStable(m.Actions, func(i, j int) bool {
		if m.Actions[i].Step != m.Actions[j].Step {
			return m.Actions[i].Step < m.Actions[j].Step
		}
		return m.Actions[i].Node < m.Actions[j].Node
	})
	if err := m.Check(); err != nil {
		return nil, err
	}
	return m, nil
}

// Check validates the structural consistency of the FSMD: every action
// fires within the control-step range, every referenced FU and register
// exists, every non-input operation's operand sources are stored values,
// and no register is written twice in one step.
func (m *Module) Check() error {
	var errs []error
	writes := make(map[[2]int]cdfg.NodeID) // (step, reg) -> writer
	for _, a := range m.Actions {
		if a.Step < 0 || a.Step >= m.Steps {
			errs = append(errs, fmt.Errorf("rtl: action at step %d outside [0,%d)", a.Step, m.Steps))
		}
		if a.FU < 0 || a.FU >= len(m.dp.FUs) {
			errs = append(errs, fmt.Errorf("rtl: action references FU %d of %d", a.FU, len(m.dp.FUs)))
			continue
		}
		n := m.g.Node(a.Node)
		checkSources := func() {
			if len(a.Sources) != len(m.g.Preds(a.Node)) {
				errs = append(errs, fmt.Errorf("rtl: node %q reads %d operands for %d predecessors", n.Name, len(a.Sources), len(m.g.Preds(a.Node))))
			}
			for i, src := range a.Sources {
				if src < 0 {
					errs = append(errs, fmt.Errorf("rtl: node %q operand %d has no source register", n.Name, i))
				} else if src >= len(m.dp.Registers) {
					errs = append(errs, fmt.Errorf("rtl: node %q operand %d references register %d of %d", n.Name, i, src, len(m.dp.Registers)))
				}
			}
		}
		switch a.Kind {
		case LatchOperands:
			checkSources()
		case StoreResult:
			if m.s.Delay[a.Node] == 1 {
				// Single-cycle: operands are read combinationally here.
				checkSources()
			}
			if n.Op != cdfg.Output && len(m.g.Succs(a.Node)) > 0 && a.Register < 0 {
				errs = append(errs, fmt.Errorf("rtl: node %q result has consumers but no register", n.Name))
			}
			if a.Register >= 0 {
				key := [2]int{a.Step, a.Register}
				if prev, clash := writes[key]; clash {
					errs = append(errs, fmt.Errorf("rtl: register r%d written by both %q and %q in step %d",
						a.Register, m.g.Node(prev).Name, n.Name, a.Step))
				}
				writes[key] = a.Node
			}
		}
	}
	return errors.Join(errs...)
}

// verilogOp renders the combinational expression of an operation.
func verilogOp(op cdfg.Op, a, b string) string {
	switch op {
	case cdfg.Add:
		return a + " + " + b
	case cdfg.Sub:
		return a + " - " + b
	case cdfg.Mul:
		return a + " * " + b
	case cdfg.Cmp:
		return "{" + "{WIDTH-1{1'b0}}, " + a + " > " + b + "}"
	}
	return a
}

// Verilog renders the FSMD as a synthesizable Verilog-2001 subset module:
// one state register, per-FU operand latches, the shared registers, and a
// single clocked always block sequencing the schedule.
func (m *Module) Verilog() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// Generated by pchls: %d control steps, %d FUs, %d registers.\n",
		m.Steps, len(m.dp.FUs), len(m.dp.Registers))
	fmt.Fprintf(&sb, "module %s #(parameter WIDTH = %d) (\n", m.Name, m.Width)
	sb.WriteString("  input  wire clk,\n  input  wire rst,\n")
	for _, in := range m.Inputs {
		fmt.Fprintf(&sb, "  input  wire [WIDTH-1:0] %s,\n", in)
	}
	for _, out := range m.Outputs {
		fmt.Fprintf(&sb, "  output reg  [WIDTH-1:0] %s,\n", out)
	}
	sb.WriteString("  output reg  done\n);\n\n")

	stateBits := 1
	for 1<<stateBits < m.Steps+1 {
		stateBits++
	}
	fmt.Fprintf(&sb, "  reg [%d:0] state;\n", stateBits-1)
	for r := range m.dp.Registers {
		fmt.Fprintf(&sb, "  reg [WIDTH-1:0] r%d;\n", r)
	}
	for f, fu := range m.dp.FUs {
		fmt.Fprintf(&sb, "  reg [WIDTH-1:0] fu%d_a, fu%d_b; // %s\n", f, f, fu.Module.Name)
	}
	sb.WriteString("\n  always @(posedge clk) begin\n    if (rst) begin\n      state <= 0;\n      done <= 1'b0;\n")
	for _, out := range m.Outputs {
		fmt.Fprintf(&sb, "      %s <= {WIDTH{1'b0}};\n", out)
	}
	sb.WriteString("    end else begin\n")
	fmt.Fprintf(&sb, "      if (state < %d) state <= state + 1; else done <= 1'b1;\n", m.Steps)
	sb.WriteString("      case (state)\n")

	byStep := map[int][]Action{}
	for _, a := range m.Actions {
		byStep[a.Step] = append(byStep[a.Step], a)
	}
	for step := 0; step < m.Steps; step++ {
		acts := byStep[step]
		if len(acts) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "        %d: begin\n", step)
		for _, a := range acts {
			n := m.g.Node(a.Node)
			// operand renders the i'th operand: a source register for
			// graph predecessors, the top-level port for Input nodes, or
			// the operation's identity element for constant operands of
			// the source program (matching cdfg.Eval and rtl.Simulate).
			operand := func(i int) string {
				if n.Op == cdfg.Input {
					return "in_" + sanitize(n.Name)
				}
				if i < len(a.Sources) {
					return fmt.Sprintf("r%d", a.Sources[i])
				}
				return fmt.Sprintf("%d", cdfg.IdentityOperand(n.Op))
			}
			switch a.Kind {
			case LatchOperands:
				fmt.Fprintf(&sb, "          fu%d_a <= %s; // %s operand 0\n", a.FU, operand(0), n.Name)
				fmt.Fprintf(&sb, "          fu%d_b <= %s; // %s operand 1\n", a.FU, operand(1), n.Name)
			case StoreResult:
				var expr string
				if m.s.Delay[a.Node] == 1 {
					// Single-cycle: read operands combinationally.
					if n.Op.IsTransfer() {
						expr = operand(0)
					} else {
						expr = verilogOp(n.Op, operand(0), operand(1))
					}
				} else {
					if n.Op.IsTransfer() {
						expr = fmt.Sprintf("fu%d_a", a.FU)
					} else {
						expr = verilogOp(n.Op, fmt.Sprintf("fu%d_a", a.FU), fmt.Sprintf("fu%d_b", a.FU))
					}
				}
				switch {
				case n.Op == cdfg.Output:
					fmt.Fprintf(&sb, "          out_%s <= %s; // %s\n", sanitize(n.Name), expr, n.Name)
				case a.Register >= 0:
					fmt.Fprintf(&sb, "          r%d <= %s; // %s\n", a.Register, expr, n.Name)
				default:
					fmt.Fprintf(&sb, "          // %s result unused\n", n.Name)
				}
			}
		}
		sb.WriteString("        end\n")
	}
	sb.WriteString("      endcase\n    end\n  end\nendmodule\n")
	return sb.String()
}

// Stats returns a compact structural summary (for reports).
func (m *Module) Stats() string {
	return fmt.Sprintf("rtl %s: %d steps, %d FUs, %d registers, %d actions, %d inputs, %d outputs",
		m.Name, m.Steps, len(m.dp.FUs), len(m.dp.Registers), len(m.Actions), len(m.Inputs), len(m.Outputs))
}

// sanitize maps a graph/node name to a Verilog identifier.
func sanitize(s string) string {
	if s == "" {
		return "pchls"
	}
	var sb strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteRune('n')
			}
			sb.WriteRune(r)
		default:
			sb.WriteRune('_')
		}
	}
	return sb.String()
}
