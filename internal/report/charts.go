package report

import (
	"fmt"

	"pchls/internal/bind"
	"pchls/internal/cdfg"
	"pchls/internal/explore"
	"pchls/internal/sched"
)

// GanttSVG renders the schedule as a Gantt chart: one row per functional
// unit, one box per operation execution, colored by module.
func GanttSVG(g *cdfg.Graph, s *sched.Schedule, fus []bind.FU, fuOf []int) string {
	const (
		rowH    = 22.0
		leftPad = 120.0
		topPad  = 26.0
		cellW   = 34.0
	)
	steps := s.Length()
	if steps == 0 {
		steps = 1
	}
	width := int(leftPad + float64(steps)*cellW + 20)
	height := int(topPad + float64(len(fus))*rowH + 30)
	sv := newSVG(width, height)

	// Column grid and cycle labels.
	for c := 0; c <= steps; c++ {
		x := leftPad + float64(c)*cellW
		sv.line(x, topPad, x, topPad+float64(len(fus))*rowH, "#ddd", 0.5)
		if c < steps {
			sv.text(x+cellW/2, topPad-8, "middle", fmt.Sprintf("%d", c))
		}
	}
	moduleColor := map[string]int{}
	for fi, fu := range fus {
		y := topPad + float64(fi)*rowH
		sv.text(leftPad-6, y+rowH-7, "end", fmt.Sprintf("FU%d %s", fi, fu.Module.Name))
		ci, ok := moduleColor[fu.Module.Name]
		if !ok {
			ci = len(moduleColor)
			moduleColor[fu.Module.Name] = ci
		}
		for _, op := range fu.Ops {
			x := leftPad + float64(s.Start[op])*cellW
			w := float64(s.Delay[op]) * cellW
			title := fmt.Sprintf("%s (%s) cycles %d-%d", g.Node(op).Name, g.Node(op).Op, s.Start[op], s.End(op)-1)
			sv.rect(x+1, y+2, w-2, rowH-4, colorOf(ci), title)
			if w >= 26 {
				sv.text(x+w/2, y+rowH-7, "middle", g.Node(op).Name)
			}
		}
	}
	_ = fuOf
	return sv.done()
}

// ProfileSVG renders the per-cycle power profile as bars with the
// constraint line.
func ProfileSVG(profile []float64, powerMax float64) string {
	const (
		w       = 560.0
		h       = 180.0
		leftPad = 44.0
		botPad  = 24.0
	)
	sv := newSVG(int(w), int(h))
	maxP := powerMax
	for _, p := range profile {
		if p > maxP {
			maxP = p
		}
	}
	maxP = niceCeil(maxP * 1.05)
	if maxP <= 0 {
		maxP = 1
	}
	plotW := w - leftPad - 10
	plotH := h - botPad - 10
	barW := plotW / float64(maxInt(len(profile), 1))
	for c, p := range profile {
		bh := p / maxP * plotH
		x := leftPad + float64(c)*barW
		fill := colorOf(0)
		if powerMax > 0 && p > powerMax+1e-9 {
			fill = colorOf(1) // violation color
		}
		sv.rect(x+0.5, 10+plotH-bh, barW-1, bh, fill, fmt.Sprintf("cycle %d: %.2f", c, p))
	}
	// Axes and the P< line.
	sv.line(leftPad, 10, leftPad, 10+plotH, "#333", 1)
	sv.line(leftPad, 10+plotH, leftPad+plotW, 10+plotH, "#333", 1)
	sv.text(leftPad-4, 16, "end", fmt.Sprintf("%.0f", maxP))
	sv.text(leftPad-4, 10+plotH, "end", "0")
	if powerMax > 0 {
		y := 10 + plotH - powerMax/maxP*plotH
		sv.dashedLine(leftPad, y, leftPad+plotW, y, "#aa3377")
		sv.text(leftPad+plotW, y-3, "end", fmt.Sprintf("P< = %.4g", powerMax))
	}
	return sv.done()
}

// CurvesSVG renders area-versus-power curves in the style of Figure 2.
func CurvesSVG(curves []explore.Curve) string {
	const (
		w       = 640.0
		h       = 420.0
		leftPad = 60.0
		botPad  = 56.0
	)
	sv := newSVG(int(w), int(h))
	minX, maxX := 1e18, -1e18
	minY, maxY := 0.0, -1e18
	any := false
	for _, c := range curves {
		for _, p := range c.Points {
			if !p.Feasible {
				continue
			}
			any = true
			minX = minFloat(minX, p.Power)
			maxX = maxFloat(maxX, p.Power)
			maxY = maxFloat(maxY, p.Area)
		}
	}
	if !any {
		sv.text(w/2, h/2, "middle", "no feasible points")
		return sv.done()
	}
	maxY = niceCeil(maxY * 1.08)
	if maxX <= minX {
		maxX = minX + 1
	}
	plotW := w - leftPad - 16
	plotH := h - botPad - 14
	xOf := func(p float64) float64 { return leftPad + (p-minX)/(maxX-minX)*plotW }
	yOf := func(a float64) float64 { return 14 + plotH - (a-minY)/(maxY-minY)*plotH }

	sv.line(leftPad, 14, leftPad, 14+plotH, "#333", 1)
	sv.line(leftPad, 14+plotH, leftPad+plotW, 14+plotH, "#333", 1)
	for i := 0; i <= 4; i++ {
		a := minY + (maxY-minY)*float64(i)/4
		sv.text(leftPad-6, yOf(a)+4, "end", fmt.Sprintf("%.0f", a))
		sv.line(leftPad, yOf(a), leftPad+plotW, yOf(a), "#eee", 0.5)
		p := minX + (maxX-minX)*float64(i)/4
		sv.text(xOf(p), 14+plotH+16, "middle", fmt.Sprintf("%.0f", p))
	}
	sv.text(leftPad+plotW/2, float64(int(h))-26, "middle", "power constraint P<")
	sv.text(14, 10, "start", "area")

	for ci, c := range curves {
		var pts []float64
		for _, p := range c.Points {
			if !p.Feasible {
				continue
			}
			x, y := xOf(p.Power), yOf(p.Area)
			pts = append(pts, x, y)
			sv.circle(x, y, 2.6, colorOf(ci), fmt.Sprintf("%s P<=%g area %.0f", c.Label(), p.Power, p.Area))
		}
		sv.polyline(pts, colorOf(ci))
		// Legend.
		lx := leftPad + 10
		ly := 24.0 + float64(ci)*15
		sv.circle(lx, ly-4, 3, colorOf(ci), "")
		sv.text(lx+8, ly, "start", c.Label())
	}
	return sv.done()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
