package report

import (
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/core"
	"pchls/internal/explore"
	"pchls/internal/library"
)

func halDesign(t *testing.T) *core.Design {
	t.Helper()
	d, err := core.Synthesize(bench.HAL(), library.Table1(), core.Constraints{Deadline: 17, PowerMax: 8}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDesignHTML(t *testing.T) {
	html := DesignHTML(halDesign(t))
	for _, want := range []string{
		"<!DOCTYPE html>",
		"pchls design report — hal",
		"Schedule (Gantt)",
		"Power profile",
		"Area breakdown",
		"Decision log",
		"<svg",
		"</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("design html missing %q", want)
		}
	}
	// Balanced SVG tags.
	if strings.Count(html, "<svg") != strings.Count(html, "</svg>") {
		t.Error("unbalanced <svg> tags")
	}
	if strings.Count(html, "<table>") != strings.Count(html, "</table>") {
		t.Error("unbalanced <table> tags")
	}
}

func TestGanttSVGContainsEveryOp(t *testing.T) {
	d := halDesign(t)
	svg := GanttSVG(d.Graph, d.Schedule, d.FUs, d.FUOf)
	// One <rect> per operation (plus none for grid, which uses lines).
	if got := strings.Count(svg, "<rect"); got != d.Graph.N() {
		t.Errorf("gantt has %d rects, want %d", got, d.Graph.N())
	}
	for _, fu := range d.FUs {
		if !strings.Contains(svg, fu.Module.Name) {
			t.Errorf("gantt missing module %q", fu.Module.Name)
		}
	}
}

func TestProfileSVGMarksViolations(t *testing.T) {
	svg := ProfileSVG([]float64{2, 9, 3}, 5)
	if !strings.Contains(svg, "P&lt; = 5") && !strings.Contains(svg, "P< = 5") {
		t.Errorf("profile missing cap label:\n%s", svg)
	}
	// Violation bar uses the second palette color.
	if !strings.Contains(svg, colorOf(1)) {
		t.Error("profile does not color the violating bar")
	}
	// Unconstrained: no dashes.
	svg = ProfileSVG([]float64{2, 3}, 0)
	if strings.Contains(svg, "stroke-dasharray") {
		t.Error("unconstrained profile should not draw a cap line")
	}
}

func TestCurvesSVG(t *testing.T) {
	c, err := explore.Sweep(bench.HAL(), library.Table1(), 17, explore.SweepConfig{
		PowerMin: 5, PowerMax: 25, Step: 5, SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	svg := CurvesSVG([]explore.Curve{c})
	if !strings.Contains(svg, "hal (T=17)") {
		t.Error("curve legend missing")
	}
	if !strings.Contains(svg, "<polyline") || !strings.Contains(svg, "<circle") {
		t.Error("curve marks missing")
	}
	empty := CurvesSVG(nil)
	if !strings.Contains(empty, "no feasible points") {
		t.Error("empty chart message missing")
	}
}

func TestSweepHTML(t *testing.T) {
	c, err := explore.Sweep(bench.HAL(), library.Table1(), 17, explore.SweepConfig{
		PowerMin: 5, PowerMax: 25, Step: 5, SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	html := SweepHTML([]explore.Curve{c})
	for _, want := range []string{"design-space exploration", "Curve summaries", "hal (T=17)", "</html>"} {
		if !strings.Contains(html, want) {
			t.Errorf("sweep html missing %q", want)
		}
	}
	// Infeasible curve row.
	html = SweepHTML([]explore.Curve{{Benchmark: "x", Deadline: 5}})
	if !strings.Contains(html, "infeasible on the grid") {
		t.Error("infeasible curve not reported")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b>&"c`); got != "a&lt;b&gt;&amp;&quot;c" {
		t.Fatalf("escape = %q", got)
	}
}

func TestNiceCeil(t *testing.T) {
	cases := map[float64]float64{0: 1, 0.7: 1, 3: 5, 17: 20, 23: 25, 80: 100, 150: 200}
	for in, want := range cases {
		if got := niceCeil(in); got != want {
			t.Errorf("niceCeil(%g) = %g, want %g", in, got, want)
		}
	}
}
