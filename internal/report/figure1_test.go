package report

import (
	"strings"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/explore"
	"pchls/internal/library"
)

func TestFigure1HTML(t *testing.T) {
	r, err := explore.Figure1(bench.HAL(), library.Table1(), 12)
	if err != nil {
		t.Fatal(err)
	}
	html := Figure1HTML(r)
	for _, want := range []string{
		"Figure 1",
		"Undesired schedule",
		"Desired schedule",
		"Battery lifetime",
		"KiBaM",
		"Peukert",
		"</html>",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("figure1 html missing %q", want)
		}
	}
	if strings.Count(html, "<svg") != 2 {
		t.Errorf("figure1 html should contain two profile charts")
	}
}

func TestSurfaceHTML(t *testing.T) {
	s, err := explore.ExploreSurface(bench.HAL(), library.Table1(), explore.SurfaceConfig{
		Deadlines:  []int{10, 17},
		Powers:     []float64{8, 20},
		SinglePass: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	html := SurfaceHTML(s)
	for _, want := range []string{"time-power surface of hal", "T=10", "T=17", "✦", "</html>"} {
		if !strings.Contains(html, want) {
			t.Errorf("surface html missing %q", want)
		}
	}
	// At least one infeasible cell at T=10, P<=8.
	if !strings.Contains(html, "infeasible") {
		t.Error("surface html missing infeasible cell")
	}
}

func TestSortHelpers(t *testing.T) {
	a := []int{3, 1, 2}
	sortInts(a)
	if a[0] != 1 || a[2] != 3 {
		t.Fatalf("sortInts = %v", a)
	}
	f := []float64{2.5, 0.5, 1.5}
	sortFloats(f)
	if f[0] != 0.5 || f[2] != 2.5 {
		t.Fatalf("sortFloats = %v", f)
	}
}
