package report

import (
	"fmt"
	"strings"

	"pchls/internal/explore"
)

// Figure1HTML renders the Figure 1 reproduction as a self-contained page:
// the undesired (spiky) and desired (capped) power profiles as SVG bar
// charts plus the battery-lifetime comparison table.
func Figure1HTML(r *explore.Figure1Result) string {
	var b strings.Builder
	b.WriteString("<h1>pchls — Figure 1: power schedules and battery lifetime</h1>\n")
	fmt.Fprintf(&b, "<p>The same computation scheduled twice (energy %.1f in both): classical ASAP spikes to %.2f; the power-constrained pasap stays below P&lt; = %.4g.</p>\n",
		r.StatsU.Energy, r.StatsU.Peak, r.PowerMax)

	fmt.Fprintf(&b, "<h2>Undesired schedule (ASAP, %d cycles, peak %.2f)</h2>\n", r.StatsU.Cycles, r.StatsU.Peak)
	b.WriteString(ProfileSVG(r.Unconstrained.Profile(), r.PowerMax))
	fmt.Fprintf(&b, "<h2>Desired schedule (pasap, %d cycles, peak %.2f)</h2>\n", r.StatsC.Cycles, r.StatsC.Peak)
	b.WriteString(ProfileSVG(r.Constrained.Profile(), r.PowerMax))

	b.WriteString("<h2>Battery lifetime (equal work per period)</h2>\n")
	b.WriteString("<table><tr><th>model</th><th>unconstrained</th><th>constrained</th><th>extension</th></tr>")
	fmt.Fprintf(&b, "<tr><td>KiBaM</td><td>%d periods</td><td>%d periods</td><td>%+.1f%%</td></tr>",
		r.Kibam.PeriodsA, r.Kibam.PeriodsB, r.Kibam.ExtensionPercent())
	fmt.Fprintf(&b, "<tr><td>Peukert</td><td>%d periods</td><td>%d periods</td><td>%+.1f%%</td></tr>",
		r.Peukert.PeriodsA, r.Peukert.PeriodsB, r.Peukert.ExtensionPercent())
	b.WriteString("</table>\n")
	return page("pchls figure 1", b.String())
}

// SurfaceHTML renders the time-power surface as a colored heatmap page
// with the Pareto front marked.
func SurfaceHTML(s explore.Surface) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<h1>pchls — time-power surface of %s</h1>\n", escape(s.Benchmark))
	b.WriteString("<p>Datapath area per (T, P&lt;) cell; darker is larger, ✦ marks Pareto-optimal points, blank cells are infeasible.</p>\n")
	b.WriteString(surfaceHeatSVG(s))
	return page("pchls surface "+s.Benchmark, b.String())
}

// surfaceHeatSVG draws the heatmap.
func surfaceHeatSVG(s explore.Surface) string {
	var deadlines []int
	var powers []float64
	seenT := map[int]bool{}
	seenP := map[float64]bool{}
	minA, maxA := 1e18, -1e18
	for _, p := range s.Points {
		if !seenT[p.Deadline] {
			seenT[p.Deadline] = true
			deadlines = append(deadlines, p.Deadline)
		}
		if !seenP[p.Power] {
			seenP[p.Power] = true
			powers = append(powers, p.Power)
		}
		if p.Feasible {
			if p.Area < minA {
				minA = p.Area
			}
			if p.Area > maxA {
				maxA = p.Area
			}
		}
	}
	sortInts(deadlines)
	sortFloats(powers)
	if maxA <= minA {
		maxA = minA + 1
	}
	front := map[[2]float64]bool{}
	for _, p := range s.ParetoFront() {
		front[[2]float64{float64(p.Deadline), p.Power}] = true
	}
	const cell, leftPad, topPad = 52.0, 64.0, 30.0
	w := int(leftPad + float64(len(powers))*cell + 16)
	h := int(topPad + float64(len(deadlines))*cell + 40)
	sv := newSVG(w, h)
	pIdx := map[float64]int{}
	for i, p := range powers {
		pIdx[p] = i
		sv.text(leftPad+float64(i)*cell+cell/2, topPad-8, "middle", trimFloat(p))
	}
	tIdx := map[int]int{}
	for i, T := range deadlines {
		tIdx[T] = i
		sv.text(leftPad-8, topPad+float64(i)*cell+cell/2+4, "end", fmt.Sprintf("T=%d", T))
	}
	for _, p := range s.Points {
		x := leftPad + float64(pIdx[p.Power])*cell
		y := topPad + float64(tIdx[p.Deadline])*cell
		if !p.Feasible {
			sv.rect(x+1, y+1, cell-2, cell-2, "#f7f7f7", "infeasible")
			continue
		}
		// Shade from light (small) to saturated blue (large).
		frac := (p.Area - minA) / (maxA - minA)
		shade := int(235 - frac*150)
		fill := fmt.Sprintf("rgb(%d,%d,255)", shade, shade)
		sv.rect(x+1, y+1, cell-2, cell-2, fill,
			fmt.Sprintf("T=%d P<=%g area %.0f", p.Deadline, p.Power, p.Area))
		label := fmt.Sprintf("%.0f", p.Area)
		if front[[2]float64{float64(p.Deadline), p.Power}] {
			label = "✦" + label
		}
		sv.text(x+cell/2, y+cell/2+4, "middle", label)
	}
	sv.text(leftPad+float64(len(powers))*cell/2, float64(h)-12, "middle", "power constraint P<")
	return sv.done()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
