package report

import (
	"fmt"
	"strings"

	"pchls/internal/core"
	"pchls/internal/explore"
)

const pageStyle = `<style>
body { font-family: sans-serif; margin: 24px auto; max-width: 980px; color: #222; }
h1 { font-size: 22px; } h2 { font-size: 17px; margin-top: 28px; }
table { border-collapse: collapse; margin: 8px 0; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: left; font-size: 13px; }
th { background: #f2f2f2; }
code { background: #f6f6f6; padding: 1px 4px; }
.metric { display: inline-block; margin-right: 22px; }
.metric b { font-size: 19px; display: block; }
</style>`

func page(title, body string) string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>")
	sb.WriteString(escape(title))
	sb.WriteString("</title>")
	sb.WriteString(pageStyle)
	sb.WriteString("</head><body>\n")
	sb.WriteString(body)
	sb.WriteString("\n</body></html>\n")
	return sb.String()
}

// DesignHTML renders a complete synthesis report page for a design:
// headline metrics, the Gantt chart, the power profile, the functional
// units and the decision log.
func DesignHTML(d *core.Design) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<h1>pchls design report — %s</h1>\n", escape(d.Graph.Name))
	fmt.Fprintf(&b, `<p>T = %d cycles, P&lt; = %s; synthesized by power-constrained partial clique partitioning`,
		d.Cons.Deadline, powerLabel(d.Cons.PowerMax))
	if d.Locked {
		b.WriteString(" (backtrack-and-lock repair triggered)")
	}
	b.WriteString(".</p>\n")

	fmt.Fprintf(&b, `<div><span class="metric"><b>%.1f</b>total area</span>`, d.Area())
	fmt.Fprintf(&b, `<span class="metric"><b>%d</b>functional units</span>`, len(d.FUs))
	fmt.Fprintf(&b, `<span class="metric"><b>%d</b>registers</span>`, len(d.Datapath.Registers))
	fmt.Fprintf(&b, `<span class="metric"><b>%.2f</b>peak power</span>`, d.Schedule.PeakPower())
	fmt.Fprintf(&b, `<span class="metric"><b>%d</b>cycles</span></div>`, d.Schedule.Length())

	b.WriteString("<h2>Schedule (Gantt)</h2>\n")
	b.WriteString(GanttSVG(d.Graph, d.Schedule, d.FUs, d.FUOf))

	b.WriteString("<h2>Power profile</h2>\n")
	b.WriteString(ProfileSVG(d.Schedule.Profile(), d.Cons.PowerMax))

	b.WriteString("<h2>Area breakdown</h2>\n<table><tr><th>component</th><th>area</th></tr>")
	fmt.Fprintf(&b, "<tr><td>functional units</td><td>%.1f</td></tr>", d.Datapath.FUArea)
	fmt.Fprintf(&b, "<tr><td>registers (%d)</td><td>%.1f</td></tr>", len(d.Datapath.Registers), d.Datapath.RegArea)
	fmt.Fprintf(&b, "<tr><td>interconnect (%d mux inputs)</td><td>%.1f</td></tr>",
		d.Datapath.FUMuxInputs+d.Datapath.RegMuxInputs, d.Datapath.MuxArea)
	fmt.Fprintf(&b, "<tr><th>total</th><th>%.1f</th></tr></table>\n", d.Area())

	b.WriteString("<h2>Functional units</h2>\n<table><tr><th>unit</th><th>module</th><th>area</th><th>operations</th></tr>")
	for i, fu := range d.FUs {
		names := make([]string, len(fu.Ops))
		for j, op := range fu.Ops {
			names[j] = d.Graph.Node(op).Name
		}
		fmt.Fprintf(&b, "<tr><td>FU%d</td><td>%s</td><td>%.1f</td><td>%s</td></tr>",
			i, escape(fu.Module.Name), fu.Module.Area, escape(strings.Join(names, " ")))
	}
	b.WriteString("</table>\n")

	b.WriteString("<h2>Decision log</h2>\n<table><tr><th>#</th><th>operation</th><th>decision</th><th>module</th><th>start</th><th>cost</th></tr>")
	for i, dec := range d.Decisions {
		kind := fmt.Sprintf("bind to FU%d", dec.FU)
		if dec.NewFU {
			kind = fmt.Sprintf("allocate FU%d", dec.FU)
		}
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%.1f</td></tr>",
			i, escape(d.Graph.Node(dec.Node).Name), kind, escape(dec.Module), dec.Start, dec.Cost)
	}
	b.WriteString("</table>\n")
	return page("pchls design "+d.Graph.Name, b.String())
}

// SweepHTML renders an experiment page for a set of area-versus-power
// curves (the Figure 2 reproduction).
func SweepHTML(curves []explore.Curve) string {
	var b strings.Builder
	b.WriteString("<h1>pchls design-space exploration — area versus power constraint</h1>\n")
	b.WriteString("<p>Each point is the smallest-area design found that satisfies the power budget at the fixed time constraint (Figure 2 of the paper).</p>\n")
	b.WriteString(CurvesSVG(curves))
	b.WriteString("<h2>Curve summaries</h2>\n<table><tr><th>curve</th><th>feasibility knee (P&lt;)</th><th>area at knee</th><th>plateau area</th></tr>")
	for _, c := range curves {
		knee, ok := c.Knee()
		if !ok {
			fmt.Fprintf(&b, "<tr><td>%s</td><td colspan=\"3\">infeasible on the grid</td></tr>", escape(c.Label()))
			continue
		}
		kneeArea := 0.0
		for _, p := range c.Points {
			if p.Feasible {
				kneeArea = p.Area
				break
			}
		}
		plateau, _ := c.PlateauArea()
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%g</td><td>%.1f</td><td>%.1f</td></tr>",
			escape(c.Label()), knee, kneeArea, plateau)
	}
	b.WriteString("</table>\n")
	return page("pchls sweep report", b.String())
}

func powerLabel(p float64) string {
	if p <= 0 {
		return "unconstrained"
	}
	return fmt.Sprintf("%.4g", p)
}
