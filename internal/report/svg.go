// Package report renders synthesis results and experiment sweeps as
// self-contained HTML pages with inline SVG charts: a Gantt chart of the
// schedule per functional unit, the per-cycle power profile against the
// constraint, the datapath area breakdown, and area-versus-power curves in
// the style of the paper's Figure 2. Pages embed no external assets.
package report

import (
	"fmt"
	"math"
	"strings"
)

// svg collects SVG elements with a fixed viewport.
type svg struct {
	w, h int
	b    strings.Builder
}

func newSVG(w, h int) *svg {
	s := &svg{w: w, h: h}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="11">`, w, h, w, h)
	s.b.WriteByte('\n')
	return s
}

func (s *svg) rect(x, y, w, h float64, fill, title string) {
	fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333" stroke-width="0.5">`, x, y, w, h, fill)
	if title != "" {
		fmt.Fprintf(&s.b, "<title>%s</title>", escape(title))
	}
	s.b.WriteString("</rect>\n")
}

func (s *svg) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`, x1, y1, x2, y2, stroke, width)
	s.b.WriteByte('\n')
}

func (s *svg) dashedLine(x1, y1, x2, y2 float64, stroke string) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1" stroke-dasharray="4 3"/>`, x1, y1, x2, y2, stroke)
	s.b.WriteByte('\n')
}

func (s *svg) text(x, y float64, anchor, content string) {
	fmt.Fprintf(&s.b, `<text x="%.1f" y="%.1f" text-anchor="%s">%s</text>`, x, y, anchor, escape(content))
	s.b.WriteByte('\n')
}

func (s *svg) circle(x, y, r float64, fill, title string) {
	fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s">`, x, y, r, fill)
	if title != "" {
		fmt.Fprintf(&s.b, "<title>%s</title>", escape(title))
	}
	s.b.WriteString("</circle>\n")
}

func (s *svg) polyline(points []float64, stroke string) {
	if len(points) < 4 {
		return
	}
	s.b.WriteString(`<polyline fill="none" stroke="` + stroke + `" stroke-width="1.5" points="`)
	for i := 0; i+1 < len(points); i += 2 {
		fmt.Fprintf(&s.b, "%.1f,%.1f ", points[i], points[i+1])
	}
	s.b.WriteString(`"/>` + "\n")
}

func (s *svg) done() string {
	s.b.WriteString("</svg>\n")
	return s.b.String()
}

// palette is a small color-blind-friendly categorical palette.
var palette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
	"#bbbbbb", "#882255",
}

func colorOf(i int) string { return palette[i%len(palette)] }

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// niceCeil rounds v up to a plot-friendly value.
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}
