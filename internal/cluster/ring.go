// Package cluster is the distributed-synthesis fabric: a consistent-hash
// ring over worker addresses, an HTTP client pool that shards grid points
// across a worker fleet with affinity, work-stealing and failover, and a
// peer-fill client that lets one worker's cache serve another's miss.
//
// Sharding keys are the content addresses already used by the result
// cache (internal/cache): a point's key is the canonical SHA-256 of its
// full semantic input, so identical points always hash to the same worker
// and that worker's LRU stays hot across requests, coordinators and
// direct client traffic alike.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultReplicas is the number of virtual points each member contributes
// to the ring. More replicas smooth the key distribution across members
// at the cost of a larger (still tiny) sorted table.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over member addresses.
// Construct with NewRing; the zero value owns nothing.
type Ring struct {
	members []string
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member int // index into members
}

// hash64 maps a string to a uniform 64-bit value. SHA-256 keeps the
// placement identical across processes and architectures — the property
// that makes a coordinator's shard assignment agree with every worker's
// peer ring.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring over the given member addresses with replicas
// virtual points each (<= 0 uses DefaultReplicas). Duplicate members are
// collapsed; member order does not matter (the ring sorts internally), so
// every process configured with the same member set builds the same ring.
func NewRing(members []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	ms := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			ms = append(ms, m)
		}
	}
	sort.Strings(ms)
	r := &Ring{members: ms, points: make([]ringPoint, 0, len(ms)*replicas)}
	buf := make([]byte, 0, 64)
	for mi, m := range ms {
		for rep := 0; rep < replicas; rep++ {
			buf = append(buf[:0], m...)
			buf = append(buf, '#')
			buf = binary.BigEndian.AppendUint32(buf, uint32(rep))
			r.points = append(r.points, ringPoint{hash: hash64(string(buf)), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the distinct member addresses in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Len returns the number of distinct members.
func (r *Ring) Len() int { return len(r.members) }

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in ring order starting at key's
// owner — the failover sequence for that key. Every process with the same
// member set computes the same sequence.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	taken := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.member] {
			taken[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
