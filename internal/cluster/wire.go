package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"pchls/internal/core"
)

// The cluster-internal wire schema. These types ride between coordinator
// and workers (POST /cluster/point) and between cache peers
// (GET /cluster/cache); they are not part of the public /v1 API.

// PointRequest is one grid cell shipped to a worker: the same JSON schema
// as POST /v1/synthesize, so the worker decodes it with the same
// validating request parser. Graph and Library are pre-marshaled raw
// JSON, letting a coordinator serialize them once per grid instead of
// once per point.
type PointRequest struct {
	Benchmark  string          `json:"benchmark,omitempty"`
	Graph      json.RawMessage `json:"graph,omitempty"`
	Library    json.RawMessage `json:"library,omitempty"`
	Deadline   int             `json:"deadline"`
	PowerMax   float64         `json:"power_max,omitempty"`
	SinglePass bool            `json:"single_pass,omitempty"`
}

// CachedResult is a serialized result-cache entry: the exact response
// status and bytes of the producing /v1/synthesize run plus its full
// engine work counters. It is what a peer returns on a cache probe and
// the payload a worker's point evaluation wraps.
type CachedResult struct {
	// Status is the HTTP status of the cached response: 200 for a design,
	// 422 for deterministic infeasibility.
	Status int `json:"status"`
	// Body is the exact response bytes (a design JSON document or an
	// error JSON document).
	Body []byte `json:"body"`
	// Stats carries the producing run's engine counters; synthesis is
	// deterministic, so replayed stats equal what a fresh run would count.
	Stats core.Stats `json:"stats"`
}

// PointResponse is the worker's answer to POST /cluster/point: the cached
// result plus the worker-side cache outcome ("hit", "miss", "coalesced",
// "peer") for observability.
type PointResponse struct {
	CachedResult
	Cache string `json:"cache"`
}

// PointResult is a decoded grid-cell outcome, carrying everything the
// sweep/surface assembly passes need. The fields mirror what the local
// engine records per cell, so a coordinator's assembled response is
// byte-identical to single-process evaluation.
type PointResult struct {
	Feasible  bool
	Area      float64
	Peak      float64
	FUs       int
	Registers int
	Locked    bool
	Stats     core.Stats
}

// designMeta is the subset of the design JSON schema (internal/core) the
// assembly passes need. encoding/json round-trips float64 exactly, so
// Area and Peak decode to the identical bits the worker's engine
// produced.
type designMeta struct {
	Area struct {
		Total float64 `json:"total"`
	} `json:"area"`
	PeakPower float64           `json:"peak_power"`
	Locked    bool              `json:"repair_locked"`
	FUs       []json.RawMessage `json:"functional_units"`
	Registers []json.RawMessage `json:"registers"`
}

// Result decodes the cached result into the per-cell fields the
// exploration assembly needs. A 422 becomes an infeasible point with zero
// stats, matching what the local engine records for infeasible cells; any
// other non-200 status is an error (workers never cache those).
func (c CachedResult) Result() (PointResult, error) {
	switch c.Status {
	case http.StatusUnprocessableEntity:
		return PointResult{}, nil
	case http.StatusOK:
		var m designMeta
		if err := json.Unmarshal(c.Body, &m); err != nil {
			return PointResult{}, fmt.Errorf("cluster: bad design body from worker: %w", err)
		}
		return PointResult{
			Feasible:  true,
			Area:      m.Area.Total,
			Peak:      m.PeakPower,
			FUs:       len(m.FUs),
			Registers: len(m.Registers),
			Locked:    m.Locked,
			Stats:     c.Stats,
		}, nil
	default:
		return PointResult{}, fmt.Errorf("cluster: unexpected point status %d", c.Status)
	}
}

// RegisterRequest is the body of POST /cluster/register: a worker
// announcing itself to a coordinator.
type RegisterRequest struct {
	Addr string `json:"addr"`
}

// RegisterResponse acknowledges a registration with the coordinator's
// current member list.
type RegisterResponse struct {
	Members []string `json:"members"`
}
