package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// DefaultPeerTimeout bounds one cache probe to a peer. Peer fills must be
// cheap relative to a synthesis run: a slow or dead peer degrades a cold
// request by at most this much before the node computes locally.
const DefaultPeerTimeout = 2 * time.Second

// Peers is a worker's view of the cache-peer ring: the full worker member
// list (including itself) plus its own address, so it can answer "who
// owns this key, and is it me?". On a local cache miss for a key owned by
// another worker, Fetch asks that owner before the engine runs — a warm
// hit anywhere becomes a warm hit everywhere, at the cost of one bounded
// HTTP round trip on the miss path.
//
// Membership is mutable (Configure) because a worker learns its final
// address only after its listener binds; all methods are safe for
// concurrent use.
type Peers struct {
	// Timeout bounds one probe (zero uses DefaultPeerTimeout).
	Timeout time.Duration
	// Client is the HTTP client for probes (nil uses a private default).
	Client *http.Client

	mu   sync.RWMutex
	self string
	ring *Ring
}

// NewPeers returns an empty peer set; Configure installs the membership.
func NewPeers() *Peers { return &Peers{} }

// Configure replaces the ring membership and this node's own address.
// The same member list (byte-identical addresses) must be used by every
// worker and by the coordinator, or shard affinity and peer ownership
// disagree.
func (p *Peers) Configure(self string, members []string) {
	r := NewRing(members, 0)
	p.mu.Lock()
	p.self, p.ring = self, r
	p.mu.Unlock()
}

// Owner returns the member owning key and whether that member is this
// node itself (also true for an unconfigured or empty ring: with nobody
// else to ask, the key is "ours").
func (p *Peers) Owner(key string) (addr string, self bool) {
	p.mu.RLock()
	ring, me := p.ring, p.self
	p.mu.RUnlock()
	if ring == nil || ring.Len() == 0 {
		return "", true
	}
	owner := ring.Owner(key)
	return owner, owner == me
}

func (p *Peers) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return defaultClient
}

// defaultClient is shared across peer sets and pools; connection reuse
// across probes is what keeps the peer-fill round trip cheap.
var defaultClient = &http.Client{Transport: &http.Transport{
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}}

// Fetch probes the owner of key for a cached result. ok is false when
// this node owns the key itself, the owner has no entry, or the probe
// fails or times out — all of which mean "compute locally". Fetch never
// triggers computation on the peer: it only reads the peer's cache, so
// two nodes can never recurse into each other.
func (p *Peers) Fetch(ctx context.Context, key string) (CachedResult, bool) {
	owner, self := p.Owner(key)
	if self {
		return CachedResult{}, false
	}
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		owner+"/cluster/cache?key="+url.QueryEscape(key), nil)
	if err != nil {
		return CachedResult{}, false
	}
	resp, err := p.client().Do(req)
	if err != nil {
		return CachedResult{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return CachedResult{}, false
	}
	var cr CachedResult
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return CachedResult{}, false
	}
	return cr, true
}
