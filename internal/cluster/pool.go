package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrNoWorkers is returned when a coordinator operation finds no live
// worker to dispatch to; the server maps it to 503.
var ErrNoWorkers = errors.New("cluster: no live workers")

// statusError is a non-2xx worker response that is not a cacheable
// result (the point protocol folds 422 into CachedResult).
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: worker returned %d: %s", e.code, e.msg)
}

// PoolConfig tunes a worker pool.
type PoolConfig struct {
	// PerWorker is the number of points dispatched concurrently to each
	// worker (<= 0: 2). Match it to the workers' own -workers admission
	// slots; dispatching wider than a worker admits only earns 429s.
	PerWorker int
	// PointTimeout bounds one point attempt on one worker (<= 0: 60s).
	// After it fires the point is retried on a different worker.
	PointTimeout time.Duration
	// ReviveAfter is the probation period for a worker marked dead after
	// a transport failure (<= 0: 5s); afterwards it is probed again.
	ReviveAfter time.Duration
	// Client is the HTTP client used for dispatch (nil: a shared default
	// with idle-connection reuse).
	Client *http.Client
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.PerWorker <= 0 {
		c.PerWorker = 2
	}
	if c.PointTimeout <= 0 {
		c.PointTimeout = 60 * time.Second
	}
	if c.ReviveAfter <= 0 {
		c.ReviveAfter = 5 * time.Second
	}
	return c
}

// PoolStats is a snapshot of the pool's dispatch counters.
type PoolStats struct {
	// Points counts point dispatches that completed successfully.
	Points int64
	// Steals counts points an idle worker pulled from another worker's
	// queue (straggler mitigation).
	Steals int64
	// Retries counts points re-dispatched after a failed attempt.
	Retries int64
	// Failures counts failed point attempts (transport errors, timeouts,
	// 5xx, worker overload).
	Failures int64
}

// Pool is a coordinator's handle on the worker fleet: the membership
// ring, per-worker health, and the dispatch scheduler. Points are
// assigned to the worker owning their content address (so each worker's
// result cache stays hot for its shard), idle workers steal unclaimed
// points from the longest remaining queue, and a point whose worker
// fails or times out is retried on a different worker. Construct with
// NewPool; all methods are safe for concurrent use.
type Pool struct {
	cfg PoolConfig

	mu        sync.Mutex
	members   []string
	ring      *Ring
	deadUntil map[string]time.Time

	points, steals, retries, failures atomic.Int64
}

// NewPool returns an empty pool; SetMembers or Add installs workers.
func NewPool(cfg PoolConfig) *Pool {
	return &Pool{cfg: cfg.withDefaults(), ring: NewRing(nil, 0), deadUntil: map[string]time.Time{}}
}

// SetMembers replaces the worker membership.
func (p *Pool) SetMembers(addrs []string) {
	r := NewRing(addrs, 0)
	p.mu.Lock()
	p.members, p.ring = r.Members(), r
	p.mu.Unlock()
}

// Add registers one worker address, reporting whether it was new.
func (p *Pool) Add(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.members {
		if m == addr {
			return false
		}
	}
	r := NewRing(append(append([]string(nil), p.members...), addr), 0)
	p.members, p.ring = r.Members(), r
	delete(p.deadUntil, addr)
	return true
}

// Members returns the registered worker addresses in sorted order.
func (p *Pool) Members() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.members...)
}

// Stats returns a snapshot of the dispatch counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Points:   p.points.Load(),
		Steals:   p.steals.Load(),
		Retries:  p.retries.Load(),
		Failures: p.failures.Load(),
	}
}

// live returns the current ring and the members not under dead-probation.
func (p *Pool) live() (*Ring, []string) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	alive := make([]string, 0, len(p.members))
	for _, m := range p.members {
		if until, dead := p.deadUntil[m]; !dead || now.After(until) {
			alive = append(alive, m)
		}
	}
	return p.ring, alive
}

// markDead puts a worker under probation after a transport failure.
func (p *Pool) markDead(addr string) {
	p.mu.Lock()
	p.deadUntil[addr] = time.Now().Add(p.cfg.ReviveAfter)
	p.mu.Unlock()
}

func (p *Pool) client() *http.Client {
	if p.cfg.Client != nil {
		return p.cfg.Client
	}
	return defaultClient
}

// postJSON sends one cluster-internal POST and decodes a JSON response
// into out. Non-2xx statuses come back as *statusError.
func (p *Pool) postJSON(ctx context.Context, addr, path string, body []byte, out any) error {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.PointTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return &statusError{code: resp.StatusCode, msg: string(bytes.TrimSpace(raw))}
	}
	return json.Unmarshal(raw, out)
}

// pointOnce dispatches one point to one worker.
func (p *Pool) pointOnce(ctx context.Context, addr string, req PointRequest) (PointResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return PointResponse{}, err
	}
	var resp PointResponse
	if err := p.postJSON(ctx, addr, "/cluster/point", body, &resp); err != nil {
		return PointResponse{}, err
	}
	return resp, nil
}

// retryable reports whether a failed attempt should move to another
// worker (transport errors, timeouts, 5xx, overload) as opposed to a
// deterministic protocol fault (4xx other than 429) that would fail
// identically everywhere.
func retryable(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code == http.StatusTooManyRequests || se.code >= 500
	}
	// Transport-level failure (connection refused, reset, timeout).
	return true
}

// fatalToWorker reports whether the failure indicts the worker itself
// (mark it dead) rather than momentary overload.
func fatalToWorker(err error) bool {
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true // transport failure
}

// Point evaluates one point with shard affinity: the owner of key is
// tried first, then the ring's failover sequence. Dead workers are
// skipped while under probation.
func (p *Pool) Point(ctx context.Context, key string, req PointRequest) (PointResponse, error) {
	ring, alive := p.live()
	if len(alive) == 0 {
		return PointResponse{}, ErrNoWorkers
	}
	liveSet := make(map[string]bool, len(alive))
	for _, m := range alive {
		liveSet[m] = true
	}
	var lastErr error
	tried := 0
	for _, addr := range ring.Owners(key, ring.Len()) {
		if !liveSet[addr] {
			continue
		}
		if tried++; tried > 1 {
			p.retries.Add(1)
		}
		resp, err := p.pointOnce(ctx, addr, req)
		if err == nil {
			p.points.Add(1)
			return resp, nil
		}
		p.failures.Add(1)
		lastErr = err
		if ctx.Err() != nil {
			return PointResponse{}, ctx.Err()
		}
		if !retryable(err) {
			return PointResponse{}, err
		}
		if fatalToWorker(err) {
			p.markDead(addr)
		}
	}
	if lastErr == nil {
		return PointResponse{}, ErrNoWorkers
	}
	return PointResponse{}, lastErr
}

// Proxy forwards a whole /v1 request to the worker owning key and
// returns the worker's status and body verbatim, with the same failover
// sequence as Point. It carries endpoints whose computation cannot be
// decomposed into points (the portfolio).
func (p *Pool) Proxy(ctx context.Context, key, path string, body []byte) (int, []byte, error) {
	ring, alive := p.live()
	if len(alive) == 0 {
		return 0, nil, ErrNoWorkers
	}
	liveSet := make(map[string]bool, len(alive))
	for _, m := range alive {
		liveSet[m] = true
	}
	var lastErr error
	for _, addr := range ring.Owners(key, ring.Len()) {
		if !liveSet[addr] {
			continue
		}
		status, respBody, err := p.proxyOnce(ctx, addr, path, body)
		if err == nil {
			return status, respBody, nil
		}
		p.failures.Add(1)
		lastErr = err
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		p.markDead(addr)
		p.retries.Add(1)
	}
	return 0, nil, lastErr
}

// proxyOnce forwards to one worker. Unlike postJSON, every HTTP status
// is a valid answer (the proxied endpoint's own 4xx/5xx semantics);
// only transport failures are errors.
func (p *Pool) proxyOnce(ctx context.Context, addr, path string, body []byte) (int, []byte, error) {
	ctx, cancel := context.WithTimeout(ctx, p.cfg.PointTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}
