package cluster

import (
	"context"
	"sync"
	"time"
)

// pointTask is one grid cell moving through the scheduler.
type pointTask struct {
	idx      int    // position in the caller's grid; results are placed by index
	key      string // content address, for deterministic requeue ordering
	attempts int
	tried    map[string]bool // workers whose failure removed them from this task
}

// MapPoints evaluates a grid of points across the worker fleet and
// returns results in input order. Each point is queued on the worker
// owning its content address so that worker's result cache stays hot;
// idle workers steal from the tail of the longest remaining queue, so a
// straggling or dead shard cannot hold the grid hostage. A failed
// attempt is retried on another live worker; the grid fails only when a
// point has exhausted the fleet or the context is cancelled.
//
// Results are placed by input index, so the assembled grid is identical
// no matter which worker evaluated which cell.
func (p *Pool) MapPoints(ctx context.Context, keys []string, reqs []PointRequest) ([]PointResponse, error) {
	if len(keys) != len(reqs) {
		panic("cluster: MapPoints keys/reqs length mismatch")
	}
	if len(reqs) == 0 {
		return nil, nil
	}
	ring, alive := p.live()
	if len(alive) == 0 {
		return nil, ErrNoWorkers
	}

	s := &mapState{
		pool:      p,
		ctx:       ctx,
		ring:      ring,
		reqs:      reqs,
		results:   make([]PointResponse, len(reqs)),
		queues:    make(map[string][]*pointTask, len(alive)),
		order:     alive,
		aliveRun:  make(map[string]bool, len(alive)),
		remaining: len(reqs),
		// Enough attempts to visit every worker plus absorb transient
		// overload; beyond this the grid fails rather than spins.
		maxAttempts: 3*len(alive) + 5,
	}
	s.cond = sync.NewCond(&s.mu)
	for _, m := range alive {
		s.aliveRun[m] = true
		s.queues[m] = nil
	}
	// Shard by ownership: first live member in the key's failover
	// sequence. Deterministic given the same membership and health.
	for i, k := range keys {
		for _, m := range ring.Owners(k, ring.Len()) {
			if s.aliveRun[m] {
				s.queues[m] = append(s.queues[m], &pointTask{idx: i, key: k, tried: map[string]bool{}})
				break
			}
		}
	}

	// Cancellation watcher: a blocked cond.Wait cannot observe ctx, so
	// translate Done into the scheduler's error + broadcast.
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			s.fail(ctx.Err())
		case <-done:
		}
	}()

	var wg sync.WaitGroup
	for _, m := range alive {
		for w := 0; w < p.cfg.PerWorker; w++ {
			wg.Add(1)
			go func(member string) {
				defer wg.Done()
				s.dispatch(member)
			}(m)
		}
	}
	wg.Wait()

	s.mu.Lock()
	err, unfinished := s.err, s.remaining
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if unfinished > 0 {
		// Every dispatcher exited with points still queued — the fleet
		// died mid-grid. Never return a partially-filled grid as success.
		return nil, ErrNoWorkers
	}
	return s.results, nil
}

// mapState is the shared scheduler state for one MapPoints call.
type mapState struct {
	pool *Pool
	ctx  context.Context
	ring *Ring
	reqs []PointRequest

	mu        sync.Mutex
	cond      *sync.Cond
	results   []PointResponse
	queues    map[string][]*pointTask
	order     []string        // queue scan order (sorted), for deterministic stealing
	aliveRun  map[string]bool // members still usable within this call
	remaining int
	err       error

	maxAttempts int
}

// dispatch is one worker slot's loop: take a task (own queue first,
// steal otherwise), evaluate it, handle the outcome. Returns when the
// grid is complete, the call has failed, or this member is dead.
func (s *mapState) dispatch(member string) {
	for {
		t, ok := s.next(member)
		if !ok {
			return
		}
		resp, err := s.pool.pointOnce(s.ctx, member, s.reqs[t.idx])
		if err == nil {
			s.pool.points.Add(1)
			s.mu.Lock()
			s.results[t.idx] = resp
			s.remaining--
			if s.remaining == 0 {
				s.cond.Broadcast()
			}
			s.mu.Unlock()
			continue
		}
		s.pool.failures.Add(1)
		if s.ctx.Err() != nil {
			s.fail(s.ctx.Err())
			return
		}
		if !retryable(err) {
			// A protocol-level fault would fail identically on every
			// worker; surface it instead of burning the fleet.
			s.fail(err)
			return
		}
		t.attempts++
		if t.attempts >= s.maxAttempts {
			s.fail(err)
			return
		}
		s.pool.retries.Add(1)
		if fatalToWorker(err) {
			// Leave the run before requeueing: requeue's fallback must
			// never hand the task back to the member that just failed it,
			// or the last death strands the queue with no dispatchers.
			s.pool.markDead(member)
			t.tried[member] = true
			s.memberDied(member)
			if !s.requeue(t) {
				s.fail(ErrNoWorkers)
			}
			return
		}
		// Momentary overload (429): back off and let any worker retry.
		time.Sleep(time.Duration(t.attempts) * 10 * time.Millisecond)
		if !s.requeue(t) {
			s.fail(ErrNoWorkers)
			return
		}
	}
}

// next blocks until a task is available for member, the grid finishes,
// the call fails, or the member dies.
func (s *mapState) next(member string) (*pointTask, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil || s.remaining == 0 || !s.aliveRun[member] {
			return nil, false
		}
		if q := s.queues[member]; len(q) > 0 {
			s.queues[member] = q[1:]
			return q[0], true
		}
		// Steal from the tail of the longest queue (including a dead
		// member's orphaned queue — that is how its shard gets drained).
		best, bestLen := "", 0
		for _, m := range s.order {
			if l := len(s.queues[m]); l > bestLen {
				best, bestLen = m, l
			}
		}
		if bestLen > 0 {
			q := s.queues[best]
			s.queues[best] = q[:len(q)-1]
			s.pool.steals.Add(1)
			return q[len(q)-1], true
		}
		s.cond.Wait()
	}
}

// requeue puts a failed task back on a live queue, preferring untried
// members in the key's failover order. Returns false when no live
// member remains in this call.
func (s *mapState) requeue(t *pointTask) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := ""
	for _, m := range s.ring.Owners(t.key, s.ring.Len()) {
		if s.aliveRun[m] && !t.tried[m] {
			target = m
			break
		}
	}
	if target == "" {
		// Every live member already failed this task once; let any of
		// them have another go before the attempts cap ends it.
		for _, m := range s.order {
			if s.aliveRun[m] {
				target = m
				break
			}
		}
	}
	if target == "" {
		return false
	}
	s.queues[target] = append(s.queues[target], t)
	s.cond.Broadcast()
	return true
}

// memberDied removes a member from this call; its dispatchers exit and
// its remaining queue is drained by stealing.
func (s *mapState) memberDied(member string) {
	s.mu.Lock()
	delete(s.aliveRun, member)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// fail records the first error and wakes every dispatcher.
func (s *mapState) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}
