package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- ring ---

func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b", "http://a"}, 0)
	if a.Len() != 3 || b.Len() != 3 {
		t.Fatalf("Len = %d, %d, want 3 (duplicates collapsed)", a.Len(), b.Len())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if ao, bo := a.Owner(key), b.Owner(key); ao != bo {
			t.Fatalf("Owner(%q) differs across construction orders: %q vs %q", key, ao, bo)
		}
	}
}

func TestRingOwnersFailoverSequence(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r := NewRing(members, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 10) // n beyond Len caps at Len
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 10) = %v, want all 3 members", key, owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%q) repeats %q: %v", key, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %q, Owner = %q", key, owners[0], r.Owner(key))
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, m := range members {
		if counts[m] < n/10 {
			t.Errorf("member %s owns only %d/%d keys; ring is badly unbalanced", m, counts[m], n)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Owner("k"); got != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", got)
	}
	if got := r.Owners("k", 3); got != nil {
		t.Errorf("empty ring Owners = %v, want nil", got)
	}
}

// --- fake workers ---

// fakePointWorker is an in-process stand-in for a worker daemon's
// /cluster/point endpoint. Its responses encode which worker answered
// and which point it was asked for, so tests can verify index-ordered
// assembly without running the engine.
type fakePointWorker struct {
	id     string
	served atomic.Int64
	// intercept, when non-nil, may answer the request itself (return
	// true); otherwise the default success response is written.
	intercept func(w http.ResponseWriter, req PointRequest) bool
	ts        *httptest.Server
}

func newFakePointWorker(t *testing.T, id string) *fakePointWorker {
	t.Helper()
	fw := &fakePointWorker{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/point", func(w http.ResponseWriter, r *http.Request) {
		var req PointRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		fw.served.Add(1)
		if fw.intercept != nil && fw.intercept(w, req) {
			return
		}
		resp := PointResponse{
			CachedResult: CachedResult{
				Status: http.StatusOK,
				Body:   []byte(fw.id + ":" + strconv.Itoa(req.Deadline)),
			},
			Cache: "miss",
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	})
	fw.ts = httptest.NewServer(mux)
	t.Cleanup(fw.ts.Close)
	return fw
}

func workerURLs(ws []*fakePointWorker) []string {
	urls := make([]string, len(ws))
	for i, w := range ws {
		urls[i] = w.ts.URL
	}
	return urls
}

// gridOf builds n points whose deadline doubles as the point's identity.
func gridOf(n int) ([]string, []PointRequest) {
	keys := make([]string, n)
	reqs := make([]PointRequest, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("key-%d", i)
		reqs[i] = PointRequest{Benchmark: "hal", Deadline: i + 1, PowerMax: 20}
	}
	return keys, reqs
}

// checkOrdered verifies every result landed at the index of the point
// that produced it, regardless of which worker evaluated it.
func checkOrdered(t *testing.T, resps []PointResponse) {
	t.Helper()
	for i, resp := range resps {
		body := string(resp.Body)
		idx := strings.LastIndex(body, ":")
		if idx < 0 || body[idx+1:] != strconv.Itoa(i+1) {
			t.Fatalf("result %d = %q, want a body for deadline %d", i, body, i+1)
		}
		if resp.Status != http.StatusOK {
			t.Fatalf("result %d status = %d", i, resp.Status)
		}
	}
}

// --- MapPoints ---

func TestMapPointsOrderedAcrossWorkers(t *testing.T) {
	ws := []*fakePointWorker{
		newFakePointWorker(t, "w0"),
		newFakePointWorker(t, "w1"),
		newFakePointWorker(t, "w2"),
	}
	pool := NewPool(PoolConfig{PerWorker: 2, PointTimeout: 10 * time.Second})
	pool.SetMembers(workerURLs(ws))

	keys, reqs := gridOf(60)
	resps, err := pool.MapPoints(context.Background(), keys, reqs)
	if err != nil {
		t.Fatalf("MapPoints: %v", err)
	}
	checkOrdered(t, resps)
	if got := pool.Stats().Points; got != 60 {
		t.Errorf("Points = %d, want 60", got)
	}
	// 60 points over a 3-member ring: every worker's shard is non-empty
	// with overwhelming probability, and own-queue preference means each
	// worker evaluates at least one of its own points.
	for _, w := range ws {
		if w.served.Load() == 0 {
			t.Errorf("worker %s served no points; sharding or stealing is broken", w.id)
		}
	}
}

func TestMapPointsEmptyAndMismatch(t *testing.T) {
	pool := NewPool(PoolConfig{})
	pool.SetMembers([]string{"http://a"})
	resps, err := pool.MapPoints(context.Background(), nil, nil)
	if err != nil || resps != nil {
		t.Fatalf("empty grid = (%v, %v), want (nil, nil)", resps, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	_, _ = pool.MapPoints(context.Background(), []string{"k"}, nil)
}

func TestMapPointsNoWorkers(t *testing.T) {
	pool := NewPool(PoolConfig{})
	keys, reqs := gridOf(3)
	if _, err := pool.MapPoints(context.Background(), keys, reqs); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestMapPointsRetriesAfterWorkerFailure(t *testing.T) {
	ws := []*fakePointWorker{
		newFakePointWorker(t, "w0"),
		newFakePointWorker(t, "w1"),
		newFakePointWorker(t, "w2"),
	}
	// w0 fails every point: MapPoints must mark it dead, drain its
	// orphaned shard by stealing, and still assemble the full grid.
	ws[0].intercept = func(w http.ResponseWriter, _ PointRequest) bool {
		http.Error(w, "boom", http.StatusInternalServerError)
		return true
	}
	pool := NewPool(PoolConfig{PerWorker: 2, PointTimeout: 10 * time.Second, ReviveAfter: time.Minute})
	pool.SetMembers(workerURLs(ws))

	keys, reqs := gridOf(40)
	resps, err := pool.MapPoints(context.Background(), keys, reqs)
	if err != nil {
		t.Fatalf("MapPoints with a failing worker: %v", err)
	}
	checkOrdered(t, resps)
	st := pool.Stats()
	if st.Failures == 0 || st.Retries == 0 {
		t.Errorf("Failures = %d, Retries = %d; the failing worker was never hit", st.Failures, st.Retries)
	}
	// The dead worker is on probation: a second grid must not touch it.
	before := ws[0].served.Load()
	if _, err := pool.MapPoints(context.Background(), keys, reqs); err != nil {
		t.Fatalf("second MapPoints: %v", err)
	}
	if got := ws[0].served.Load(); got != before {
		t.Errorf("dead worker served %d more points while on probation", got-before)
	}
}

func TestMapPointsAllWorkersDead(t *testing.T) {
	ws := []*fakePointWorker{newFakePointWorker(t, "w0"), newFakePointWorker(t, "w1")}
	pool := NewPool(PoolConfig{PerWorker: 1, PointTimeout: 2 * time.Second, ReviveAfter: time.Minute})
	pool.SetMembers(workerURLs(ws))
	for _, w := range ws {
		w.ts.Close()
	}
	keys, reqs := gridOf(4)
	if _, err := pool.MapPoints(context.Background(), keys, reqs); err == nil {
		t.Fatal("MapPoints succeeded with every worker unreachable")
	}
}

func TestMapPointsOverloadBacksOff(t *testing.T) {
	w := newFakePointWorker(t, "w0")
	// First attempt for every point gets 429; the retry must return to
	// the same (only) worker without marking it dead.
	var rejected atomic.Int64
	seen := make(map[int]bool)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	w.intercept = func(rw http.ResponseWriter, req PointRequest) bool {
		<-mu
		first := !seen[req.Deadline]
		seen[req.Deadline] = true
		mu <- struct{}{}
		if first {
			rejected.Add(1)
			http.Error(rw, "overloaded", http.StatusTooManyRequests)
			return true
		}
		return false
	}
	pool := NewPool(PoolConfig{PerWorker: 2, PointTimeout: 5 * time.Second, ReviveAfter: time.Minute})
	pool.SetMembers([]string{w.ts.URL})

	keys, reqs := gridOf(6)
	resps, err := pool.MapPoints(context.Background(), keys, reqs)
	if err != nil {
		t.Fatalf("MapPoints under transient overload: %v", err)
	}
	checkOrdered(t, resps)
	if rejected.Load() != 6 {
		t.Errorf("rejected = %d, want 6 (one 429 per point)", rejected.Load())
	}
	if got := pool.Stats().Retries; got < 6 {
		t.Errorf("Retries = %d, want >= 6", got)
	}
}

func TestMapPointsContextCancel(t *testing.T) {
	w := newFakePointWorker(t, "w0")
	w.intercept = func(rw http.ResponseWriter, _ PointRequest) bool {
		time.Sleep(300 * time.Millisecond)
		http.Error(rw, "too slow", http.StatusInternalServerError)
		return true
	}
	pool := NewPool(PoolConfig{PerWorker: 1, PointTimeout: 10 * time.Second})
	pool.SetMembers([]string{w.ts.URL})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	keys, reqs := gridOf(8)
	start := time.Now()
	_, err := pool.MapPoints(ctx, keys, reqs)
	if err == nil {
		t.Fatal("MapPoints ignored context cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %s to unwind", elapsed)
	}
}

// --- Point / Proxy ---

func TestPointFailsOverToAnotherWorker(t *testing.T) {
	ws := []*fakePointWorker{newFakePointWorker(t, "w0"), newFakePointWorker(t, "w1")}
	pool := NewPool(PoolConfig{PointTimeout: 5 * time.Second, ReviveAfter: time.Minute})
	pool.SetMembers(workerURLs(ws))

	// Kill the owner of the key; Point must answer from the survivor.
	ring := NewRing(workerURLs(ws), 0)
	const key = "failover-key"
	owner := ring.Owner(key)
	var survivor *fakePointWorker
	for _, w := range ws {
		if w.ts.URL == owner {
			w.ts.Close()
		} else {
			survivor = w
		}
	}
	resp, err := pool.Point(context.Background(), key, PointRequest{Benchmark: "hal", Deadline: 9})
	if err != nil {
		t.Fatalf("Point after owner death: %v", err)
	}
	if want := survivor.id + ":9"; string(resp.Body) != want {
		t.Errorf("Point body = %q, want %q", resp.Body, want)
	}
	if st := pool.Stats(); st.Retries == 0 || st.Failures == 0 {
		t.Errorf("Stats = %+v, want a recorded failover", st)
	}
}

func TestPointDoesNotRetryDeterministicFaults(t *testing.T) {
	ws := []*fakePointWorker{newFakePointWorker(t, "w0"), newFakePointWorker(t, "w1")}
	for _, w := range ws {
		w.intercept = func(rw http.ResponseWriter, _ PointRequest) bool {
			http.Error(rw, "no such benchmark", http.StatusBadRequest)
			return true
		}
	}
	pool := NewPool(PoolConfig{PointTimeout: 5 * time.Second})
	pool.SetMembers(workerURLs(ws))
	_, err := pool.Point(context.Background(), "k", PointRequest{Benchmark: "nope", Deadline: 1})
	if err == nil {
		t.Fatal("Point succeeded on a 400")
	}
	if total := ws[0].served.Load() + ws[1].served.Load(); total != 1 {
		t.Errorf("a deterministic 400 was attempted %d times, want 1", total)
	}
}

func TestProxyForwardsStatusVerbatim(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/portfolio", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusUnprocessableEntity)
		_, _ = w.Write([]byte(`{"error":"infeasible"}`))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	pool := NewPool(PoolConfig{PointTimeout: 5 * time.Second})
	pool.SetMembers([]string{ts.URL})
	status, body, err := pool.Proxy(context.Background(), "k", "/v1/portfolio", []byte(`{}`))
	if err != nil {
		t.Fatalf("Proxy: %v", err)
	}
	if status != http.StatusUnprocessableEntity || string(body) != `{"error":"infeasible"}` {
		t.Errorf("Proxy = (%d, %q); the worker's status and body must pass through verbatim", status, body)
	}
}

// --- Peers ---

func TestPeersFetch(t *testing.T) {
	const key = "cached-key"
	want := CachedResult{Status: http.StatusOK, Body: []byte(`{"x":1}`)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/cache", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("key") != key {
			http.Error(w, "not cached", http.StatusNotFound)
			return
		}
		_ = json.NewEncoder(w).Encode(want)
	})
	owner := httptest.NewServer(mux)
	defer owner.Close()

	p := NewPeers()
	p.Configure("http://self.invalid", []string{"http://self.invalid", owner.URL})

	ring := NewRing([]string{"http://self.invalid", owner.URL}, 0)
	ownedByPeer, ownedBySelf := "", ""
	for i := 0; ownedByPeer == "" || ownedBySelf == ""; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if ring.Owner(k) == owner.URL {
			ownedByPeer = k
		} else {
			ownedBySelf = k
		}
	}

	// Self-owned keys return immediately without a network round trip.
	if _, ok := p.Fetch(context.Background(), ownedBySelf); ok {
		t.Error("Fetch returned ok for a self-owned key")
	}
	// A peer-owned key the peer does not hold: miss.
	if ring.Owner(ownedByPeer) == owner.URL {
		if _, ok := p.Fetch(context.Background(), ownedByPeer); ok {
			t.Error("Fetch returned ok for a key the owner has not cached")
		}
	}
	// The cached key, when owned by the peer, comes back verbatim.
	if ring.Owner(key) == owner.URL {
		got, ok := p.Fetch(context.Background(), key)
		if !ok {
			t.Fatal("Fetch missed a key the owner has cached")
		}
		if got.Status != want.Status || string(got.Body) != string(want.Body) {
			t.Errorf("Fetch = %+v, want %+v", got, want)
		}
	}
}

func TestPeersUnconfigured(t *testing.T) {
	p := NewPeers()
	if addr, self := p.Owner("k"); !self || addr != "" {
		t.Errorf("unconfigured Owner = (%q, %t), want (\"\", true)", addr, self)
	}
	if _, ok := p.Fetch(context.Background(), "k"); ok {
		t.Error("unconfigured Fetch returned ok")
	}
}

// --- wire ---

func TestCachedResultResult(t *testing.T) {
	infeasible := CachedResult{Status: http.StatusUnprocessableEntity, Body: []byte(`{"error":"infeasible"}`)}
	pr, err := infeasible.Result()
	if err != nil {
		t.Fatalf("422 Result: %v", err)
	}
	if pr.Feasible || pr.Area != 0 || pr.Stats.SchedulerRuns != 0 {
		t.Errorf("422 Result = %+v, want the zero infeasible point", pr)
	}

	design := CachedResult{Status: http.StatusOK, Body: []byte(`{
		"area": {"total": 12.5},
		"peak_power": 20,
		"repair_locked": true,
		"functional_units": [{"module":"m1"},{"module":"m2"}],
		"registers": [{}, {}, {}]
	}`)}
	pr, err = design.Result()
	if err != nil {
		t.Fatalf("200 Result: %v", err)
	}
	if !pr.Feasible || pr.Area != 12.5 || pr.Peak != 20 || !pr.Locked || pr.FUs != 2 || pr.Registers != 3 {
		t.Errorf("200 Result = %+v", pr)
	}

	if _, err := (CachedResult{Status: http.StatusInternalServerError}).Result(); err == nil {
		t.Error("a 500 CachedResult must not decode into a point")
	}
}
