package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutLRU(t *testing.T) {
	c := New[int](2, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", 3) // evicts b (a was refreshed by the Get above)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing after eviction pass", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction / 2 entries", s)
	}
}

func TestPutOverwriteRefreshes(t *testing.T) {
	c := New[int](2, 0)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // overwrite refreshes a's LRU slot
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d,%t, want 10,true", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c := New(4, time.Minute, WithClock[int](clock))
	c.Put("a", 1)
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry served")
	}
	if s := c.Stats(); s.Expirations != 1 || s.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 expiration / 0 entries", s)
	}
	// An expired entry recomputes through Do.
	v, out, err := c.Do(context.Background(), "a", func(context.Context) (int, error) { return 9, nil })
	if err != nil || out != Miss || v != 9 {
		t.Fatalf("Do after expiry = %d,%s,%v; want 9,miss,nil", v, out, err)
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New[int](8, 0)
	const waiters = 16
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]int, waiters)
	outcomes := make([]Outcome, waiters)

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, out, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
			computes.Add(1)
			close(started)
			<-release
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		results[0], outcomes[0] = v, out
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "k", func(context.Context) (int, error) {
				computes.Add(1)
				return -1, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], outcomes[i] = v, out
		}(i)
	}
	// Wait until every follower has joined the flight, then release.
	for c.Stats().Coalesced < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	misses, coalesced := 0, 0
	for i := 0; i < waiters; i++ {
		if results[i] != 42 {
			t.Fatalf("result[%d] = %d, want 42", i, results[i])
		}
		switch outcomes[i] {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		}
	}
	if misses != 1 || coalesced != waiters-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1/%d", misses, coalesced, waiters-1)
	}
	// Follow-up call is a plain hit.
	if _, out, _ := c.Do(context.Background(), "k", nil); out != Hit {
		t.Fatalf("follow-up outcome = %s, want hit", out)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New[int](4, 0)
	boom := errors.New("boom")
	calls := 0
	compute := func(context.Context) (int, error) {
		calls++
		if calls == 1 {
			return 0, boom
		}
		return 7, nil
	}
	if _, out, err := c.Do(context.Background(), "k", compute); !errors.Is(err, boom) || out != Miss {
		t.Fatalf("first Do = %s,%v", out, err)
	}
	v, out, err := c.Do(context.Background(), "k", compute)
	if err != nil || out != Miss || v != 7 {
		t.Fatalf("retry = %d,%s,%v; want 7,miss,nil", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("compute calls = %d, want 2", calls)
	}
}

func TestCoalescedWaiterHonorsContext(t *testing.T) {
	c := New[int](4, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) || out != Coalesced {
		t.Fatalf("cancelled waiter = %s,%v; want coalesced,context.Canceled", out, err)
	}
}

func TestConcurrentMixedKeysUnderRace(t *testing.T) {
	c := New[string](16, time.Hour)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				v, _, err := c.Do(context.Background(), key, func(context.Context) (string, error) {
					return "v" + key, nil
				})
				if err != nil || v != "v"+key {
					t.Errorf("Do(%s) = %q, %v", key, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache over bound: %d entries", c.Len())
	}
}
