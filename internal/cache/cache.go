// Package cache is the content-addressed result cache of the synthesis
// service: a bounded LRU with TTL expiry plus singleflight deduplication,
// so that concurrent identical requests compute a result exactly once and
// repeated requests are served without re-running the engine.
//
// Keys are opaque strings; callers derive them as a canonical hash of the
// full semantic input (CDFG, module library, constraints, synthesizer
// configuration — see the server's key derivation). Synthesis is fully
// deterministic for a given key, which is what makes cached bytes
// byte-identical to a fresh run.
package cache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Outcome classifies how a Do call obtained its value.
type Outcome int

const (
	// Hit means the value was served from the cache without computing.
	Hit Outcome = iota
	// Miss means this call ran the compute function and filled the cache.
	Miss
	// Coalesced means the call joined an in-flight identical compute and
	// shared its result (singleflight deduplication).
	Coalesced
	// PeerHit means the value was fetched from a cluster peer's cache
	// instead of computing, and now fills the local cache too.
	PeerHit
)

// String returns "hit", "miss", "coalesced" or "peer".
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Miss:
		return "miss"
	case Coalesced:
		return "coalesced"
	case PeerHit:
		return "peer"
	}
	return "unknown"
}

// Stats is a point-in-time snapshot of the cache's effectiveness counters.
type Stats struct {
	Hits        int64 // Do/Get calls served from the cache
	Misses      int64 // Do calls that ran the compute function
	Coalesced   int64 // Do calls that joined an in-flight compute
	PeerHits    int64 // Do calls served by a cluster peer's cache
	PeerMisses  int64 // peer probes that yielded nothing (fell through to compute)
	Evictions   int64 // entries dropped by the LRU bound
	Expirations int64 // entries dropped because their TTL lapsed
	Entries     int64 // current number of live entries
}

// Cache is a content-addressed LRU+TTL cache with singleflight compute
// deduplication. The zero value is not usable; construct with New.
type Cache[V any] struct {
	maxEntries int
	ttl        time.Duration
	now        func() time.Time
	peer       PeerFunc[V]

	mu      sync.Mutex
	entries map[string]*list.Element // key -> *entry element
	lru     *list.List               // front = most recently used
	flights map[string]*flight[V]

	hits, misses, coalesced, evictions, expirations atomic.Int64
	peerHits, peerMisses                            atomic.Int64
}

type entry[V any] struct {
	key     string
	value   V
	expires time.Time // zero when the cache has no TTL
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Option customizes a Cache.
type Option[V any] func(*Cache[V])

// WithClock replaces the time source (tests).
func WithClock[V any](now func() time.Time) Option[V] {
	return func(c *Cache[V]) { c.now = now }
}

// PeerFunc asks another node's cache for key, returning its value and
// whether it had one. It must only read remote state — never trigger a
// remote computation — so that two nodes can never recurse into each
// other. It should return false quickly for keys this node owns itself.
type PeerFunc[V any] func(ctx context.Context, key string) (V, bool)

// WithPeer installs a peer-fill hook: on a local miss, the flight leader
// consults the peer before running the compute function, and a peer hit
// fills the local cache exactly as a computed value would (the Do
// outcome is PeerHit). Coalesced followers share peer-filled flights the
// same way they share computed ones.
func WithPeer[V any](peer PeerFunc[V]) Option[V] {
	return func(c *Cache[V]) { c.peer = peer }
}

// New returns a cache bounded to maxEntries live entries (<= 0 means 1)
// whose entries expire ttl after insertion (ttl <= 0 disables expiry).
func New[V any](maxEntries int, ttl time.Duration, opts ...Option[V]) *Cache[V] {
	if maxEntries <= 0 {
		maxEntries = 1
	}
	c := &Cache[V]{
		maxEntries: maxEntries,
		ttl:        ttl,
		now:        time.Now,
		entries:    make(map[string]*list.Element),
		lru:        list.New(),
		flights:    make(map[string]*flight[V]),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Get returns the cached value for key, refreshing its LRU position.
// Expired entries are dropped and reported as absent.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	v, ok := c.getLocked(key)
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

func (c *Cache[V]) getLocked(key string) (V, bool) {
	var zero V
	el, ok := c.entries[key]
	if !ok {
		return zero, false
	}
	e := el.Value.(*entry[V])
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.removeLocked(el)
		c.expirations.Add(1)
		return zero, false
	}
	c.lru.MoveToFront(el)
	return e.value, true
}

// Put stores key -> value, evicting the least recently used entry when the
// bound is exceeded.
func (c *Cache[V]) Put(key string, value V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, value)
}

func (c *Cache[V]) putLocked(key string, value V) {
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		e.value, e.expires = value, expires
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&entry[V]{key: key, value: value, expires: expires})
	for c.lru.Len() > c.maxEntries {
		c.removeLocked(c.lru.Back())
		c.evictions.Add(1)
	}
}

func (c *Cache[V]) removeLocked(el *list.Element) {
	e := el.Value.(*entry[V])
	c.lru.Remove(el)
	delete(c.entries, e.key)
}

// Do returns the value for key, computing it with compute on a miss. At
// most one compute per key runs at a time: concurrent callers with the
// same key block until the in-flight compute finishes and share its result
// (and its error). Successful computes fill the cache; errors are not
// cached, so a later call retries.
//
// ctx aborts only this caller's wait, not the shared compute: a coalesced
// caller whose context expires returns ctx.Err() while the flight keeps
// running for the others.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func(ctx context.Context) (V, error)) (V, Outcome, error) {
	var zero V
	c.mu.Lock()
	if v, ok := c.getLocked(key); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return v, Hit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-f.done:
			return f.val, Coalesced, f.err
		case <-ctx.Done():
			return zero, Coalesced, ctx.Err()
		}
	}
	f := &flight[V]{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	outcome := Miss
	if c.peer != nil {
		if v, ok := c.peer(ctx, key); ok {
			c.peerHits.Add(1)
			f.val, outcome = v, PeerHit
		} else {
			c.peerMisses.Add(1)
		}
	}
	if outcome == Miss {
		c.misses.Add(1)
		f.val, f.err = compute(ctx)
	}

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.putLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, outcome, f.err
}

// Len returns the current number of live entries (expired entries linger
// until touched).
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Coalesced:   c.coalesced.Load(),
		PeerHits:    c.peerHits.Load(),
		PeerMisses:  c.peerMisses.Load(),
		Evictions:   c.evictions.Load(),
		Expirations: c.expirations.Load(),
		Entries:     int64(c.Len()),
	}
}
