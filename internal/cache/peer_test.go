package cache

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPeerFillOutcomes pins the peer-fill state machine: a peer hit
// fills the local cache (PeerHit once, Hit afterwards), a peer miss
// falls through to compute exactly once.
func TestPeerFillOutcomes(t *testing.T) {
	var probes atomic.Int64
	peer := func(_ context.Context, key string) (string, bool) {
		probes.Add(1)
		if strings.HasPrefix(key, "peer:") {
			return "from-" + key, true
		}
		return "", false
	}
	c := New[string](64, 0, WithPeer(peer))

	var computes atomic.Int64
	compute := func(context.Context) (string, error) {
		computes.Add(1)
		return "computed", nil
	}

	v, outcome, err := c.Do(context.Background(), "peer:a", compute)
	if err != nil || v != "from-peer:a" || outcome != PeerHit {
		t.Fatalf("peer-owned key = (%q, %v, %v), want (from-peer:a, PeerHit, nil)", v, outcome, err)
	}
	if computes.Load() != 0 {
		t.Fatalf("peer hit ran the compute function")
	}
	// The peer fill populated the local cache: no second probe.
	v, outcome, err = c.Do(context.Background(), "peer:a", compute)
	if err != nil || v != "from-peer:a" || outcome != Hit {
		t.Fatalf("second Do = (%q, %v, %v), want a local hit", v, outcome, err)
	}
	if probes.Load() != 1 {
		t.Fatalf("peer probed %d times, want 1", probes.Load())
	}

	v, outcome, err = c.Do(context.Background(), "local:b", compute)
	if err != nil || v != "computed" || outcome != Miss {
		t.Fatalf("peer miss = (%q, %v, %v), want (computed, Miss, nil)", v, outcome, err)
	}
	st := c.Stats()
	if st.PeerHits != 1 || st.PeerMisses != 1 {
		t.Fatalf("Stats = %+v, want PeerHits 1 and PeerMisses 1", st)
	}
}

// TestPeerFillConcurrent hammers a peer-filled cache from 32 goroutines
// mixing Do, Get and Put under the race detector. The invariant: the
// compute function runs at most once per locally-computed key no matter
// the interleaving (singleflight), and never for a peer-owned key.
func TestPeerFillConcurrent(t *testing.T) {
	const (
		goroutines = 32
		iterations = 200
		keySpace   = 16 // half owned by the peer, half computed locally
	)
	peer := func(_ context.Context, key string) (string, bool) {
		if strings.HasPrefix(key, "peer:") {
			return "peer-value:" + key, true
		}
		return "", false
	}
	c := New[string](1024, 0, WithPeer[string](peer))

	var computes [keySpace]atomic.Int64
	keys := make([]string, keySpace)
	for i := range keys {
		if i%2 == 0 {
			keys[i] = fmt.Sprintf("peer:%d", i)
		} else {
			keys[i] = fmt.Sprintf("local:%d", i)
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (g*iterations + it*7) % keySpace
				key := keys[i]
				switch it % 3 {
				case 0:
					v, _, err := c.Do(context.Background(), key, func(context.Context) (string, error) {
						computes[i].Add(1)
						return "computed:" + key, nil
					})
					if err != nil {
						t.Errorf("Do(%s): %v", key, err)
						return
					}
					want := "computed:" + key
					if strings.HasPrefix(key, "peer:") {
						want = "peer-value:" + key
					}
					if v != want {
						t.Errorf("Do(%s) = %q, want %q", key, v, want)
						return
					}
				case 1:
					if v, ok := c.Get(key); ok && v == "" {
						t.Errorf("Get(%s) returned an empty cached value", key)
						return
					}
				case 2:
					// Re-putting the canonical value must never confuse an
					// in-flight compute or change what Do returns.
					if strings.HasPrefix(key, "peer:") {
						c.Put(key, "peer-value:"+key)
					} else {
						c.Put(key, "computed:"+key)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for i, key := range keys {
		n := computes[i].Load()
		switch {
		case strings.HasPrefix(key, "peer:") && n != 0:
			t.Errorf("peer-owned key %s ran the compute function %d times", key, n)
		case strings.HasPrefix(key, "local:") && n > 1:
			t.Errorf("local key %s computed %d times; singleflight allows at most 1", key, n)
		}
	}
	if st := c.Stats(); st.PeerHits == 0 {
		t.Errorf("Stats = %+v, want at least one peer hit", st)
	}
}
