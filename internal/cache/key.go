package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
)

// Cache keys are content addresses: a SHA-256 over a canonical rendering
// of every input that can change the response bytes — the CDFG (node
// names, operations and edges in ID order), the module library
// (declaration order), the constraints and the algorithm selection.
// Inputs that provably cannot change the result — worker counts, the
// incremental-engine toggle (byte-identical by the PR 2 equivalence
// gate) — are deliberately excluded so they share cache entries.
//
// The same addresses shard work across a cluster (internal/cluster):
// consistent hashing on the content address routes identical points to
// the same worker, so each worker's LRU stays hot for its shard, and
// cache peers use the address to ask "does the owner already have this?"
// before computing. Both uses need every process to derive bit-identical
// keys, which is why the derivation lives here rather than in each
// binary.
//
// The keyVersion prefix invalidates the whole address space whenever the
// canonical rendering or the response schema changes.
const keyVersion = "pchls-v1"

// canonFloat renders a float bit-exactly (hex float format), so distinct
// constraint values never collide and equal values always agree.
func canonFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

// writeGraphLib renders the shared (graph, library) prefix of every key.
func writeGraphLib(sb *strings.Builder, g *cdfg.Graph, lib *library.Library) {
	sb.WriteString("graph\n")
	sb.WriteString(g.Text())
	sb.WriteString("library\n")
	for _, m := range lib.Modules() {
		ops := make([]string, len(m.Ops))
		for i, o := range m.Ops {
			ops[i] = o.String()
		}
		fmt.Fprintf(sb, "module %s %s %s %d %s\n",
			m.Name, strings.Join(ops, ","), canonFloat(m.Area), m.Delay, canonFloat(m.Power))
		// Voltage operating points are part of the module's identity: two
		// libraries differing only in levels produce different designs.
		for _, lv := range m.Levels {
			fmt.Fprintf(sb, "level %s %s %d %s\n",
				m.Name, canonFloat(lv.Voltage), lv.Delay, canonFloat(lv.Power))
		}
	}
}

func finishKey(sb *strings.Builder) string {
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// SynthesizeKey derives the content address of one /v1/synthesize result
// — also the per-point sharding key for cluster grids.
func SynthesizeKey(g *cdfg.Graph, lib *library.Library, cons core.Constraints, singlePass bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s synthesize single=%t deadline=%d power=%s\n",
		keyVersion, singlePass, cons.Deadline, canonFloat(cons.PowerMax))
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}

// PortfolioKey derives the content address of one /v1/portfolio result.
// The effort knobs (k, budget) and the seed are part of the address: the
// portfolio's output is a pure function of them.
func PortfolioKey(g *cdfg.Graph, lib *library.Library, cons core.Constraints, k, budget int, seed int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s portfolio k=%d budget=%d seed=%d deadline=%d power=%s\n",
		keyVersion, k, budget, seed, cons.Deadline, canonFloat(cons.PowerMax))
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}

// SweepKey derives the content address of one /v1/sweep result.
func SweepKey(g *cdfg.Graph, lib *library.Library, deadline int, pmin, pmax, step float64, singlePass bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s sweep single=%t deadline=%d grid=%s:%s:%s\n",
		keyVersion, singlePass, deadline, canonFloat(pmin), canonFloat(pmax), canonFloat(step))
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}

// ParetoKey derives the content address of one /v1/pareto result. The
// battery parameters are part of the address: the lifetime objective —
// and with it the front membership — is a function of the model, its
// capacity and the simulation bound.
func ParetoKey(g *cdfg.Graph, lib *library.Library, deadlines []int, powers []float64, batteryModel string, capacity float64, maxPeriods int, singlePass bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s pareto single=%t battery=%s capacity=%s periods=%d deadlines=",
		keyVersion, singlePass, batteryModel, canonFloat(capacity), maxPeriods)
	for i, d := range deadlines {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(d))
	}
	sb.WriteString(" powers=")
	for i, p := range powers {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(canonFloat(p))
	}
	sb.WriteByte('\n')
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}

// SurfaceKey derives the content address of one /v1/surface result.
func SurfaceKey(g *cdfg.Graph, lib *library.Library, deadlines []int, powers []float64, singlePass bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s surface single=%t deadlines=", keyVersion, singlePass)
	for i, d := range deadlines {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(d))
	}
	sb.WriteString(" powers=")
	for i, p := range powers {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(canonFloat(p))
	}
	sb.WriteByte('\n')
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}
