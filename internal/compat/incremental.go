package compat

import (
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// Incremental maintains the time-extended compatibility graph V1 across
// the synthesizer's commit/uncommit churn. Where Build reconstructs every
// vertex and edge from scratch — O((n·m)²) pairwise checks — Incremental
// keeps a dense candidate table and a bitset adjacency matrix alive and
// patches only the edges incident to candidates whose windows actually
// changed between iterations.
//
// Candidates are indexed densely as node*nm + module, so every (node,
// module) slot exists; slots whose module cannot implement the node's
// operation, or whose window is currently infeasible, are simply marked
// not-ok and carry no edges. Because V1 edges only ever join candidates of
// the same module on different nodes, one window change patches O(n) edge
// bits — the column of that module — not O(n·m).
//
// The structure allocates only at construction; Set is allocation-free,
// which `make test-alloc` pins.
type Incremental struct {
	g     *cdfg.Graph
	lib   *library.Library
	reach cdfg.Bitmat
	n, nm int
	words int // uint64 words per adjacency row

	ok  []bool
	win []sched.Window
	adj []uint64
}

// NewIncremental builds the empty incremental graph for g over lib: all
// candidates start infeasible and edge-less until Set installs windows.
func NewIncremental(g *cdfg.Graph, lib *library.Library) (*Incremental, error) {
	reach, err := g.Reachability()
	if err != nil {
		return nil, err
	}
	n, nm := g.N(), lib.Len()
	cands := n * nm
	words := (cands + 63) / 64
	return &Incremental{
		g: g, lib: lib, reach: reach, n: n, nm: nm, words: words,
		ok:  make([]bool, cands),
		win: make([]sched.Window, cands),
		adj: make([]uint64, cands*words),
	}, nil
}

func (ic *Incremental) idx(v cdfg.NodeID, mi int) int { return int(v)*ic.nm + mi }

// Set installs candidate (v, mi)'s current window (ok=false marks the
// candidate infeasible, clearing its edges) and patches the edges incident
// to it under the CanShare rule. It reports whether the candidate actually
// changed; an unchanged candidate costs one comparison and touches no
// edge bits, so re-syncing a mostly-stable window table is cheap.
func (ic *Incremental) Set(v cdfg.NodeID, mi int, w sched.Window, ok bool) bool {
	i := ic.idx(v, mi)
	if ic.ok[i] == ok && (!ok || ic.win[i] == w) {
		return false
	}
	ic.ok[i] = ok
	ic.win[i] = w
	d := ic.lib.Module(mi).Delay
	row := ic.adj[i*ic.words : (i+1)*ic.words]
	for u := 0; u < ic.n; u++ {
		if u == int(v) {
			continue
		}
		j := u*ic.nm + mi
		share := ok && ic.ok[j] &&
			CanShare(w, ic.win[j], d, ic.reach.Get(int(v), u), ic.reach.Get(u, int(v)))
		setBit(row, j, share)
		setBit(ic.adj[j*ic.words:(j+1)*ic.words], i, share)
	}
	return true
}

func setBit(row []uint64, j int, on bool) {
	if on {
		row[j/64] |= 1 << uint(j%64)
	} else {
		row[j/64] &^= 1 << uint(j%64)
	}
}

// Candidate returns the stored window of (v, mi) and whether the
// candidate is currently feasible.
func (ic *Incremental) Candidate(v cdfg.NodeID, mi int) (sched.Window, bool) {
	i := ic.idx(v, mi)
	return ic.win[i], ic.ok[i]
}

// Compatible reports whether candidates (v, mi) and (u, mj) may share one
// functional-unit instance under the currently installed windows.
func (ic *Incremental) Compatible(v cdfg.NodeID, mi int, u cdfg.NodeID, mj int) bool {
	j := ic.idx(u, mj)
	return ic.adj[ic.idx(v, mi)*ic.words+j/64]&(1<<uint(j%64)) != 0
}

// ShareOK reports whether candidate (v, mi) is compatible with every
// operation in ops when all of them run on one instance of module mi.
// This is the synthesizer's sharing prefilter: a false answer proves no
// in-window start of v can coexist with the committed executions on that
// instance, so the slot search can be skipped without changing its
// outcome.
func (ic *Incremental) ShareOK(v cdfg.NodeID, mi int, ops []cdfg.NodeID) bool {
	row := ic.adj[ic.idx(v, mi)*ic.words : (ic.idx(v, mi)+1)*ic.words]
	for _, u := range ops {
		j := int(u)*ic.nm + mi
		if row[j/64]&(1<<uint(j%64)) == 0 {
			return false
		}
	}
	return true
}

// Audit recomputes every edge from the stored windows with the same
// pairwise rule Build uses — a from-scratch rebuild, sharing no state with
// the patching fast path — and returns an error on the first adjacency bit
// that disagrees in either direction. It is the differential oracle of
// the randomized incremental-maintenance tests.
func (ic *Incremental) Audit() error {
	total := ic.n * ic.nm
	for i := 0; i < total; i++ {
		vi, mi := cdfg.NodeID(i/ic.nm), i%ic.nm
		for j := i + 1; j < total; j++ {
			vj, mj := cdfg.NodeID(j/ic.nm), j%ic.nm
			want := false
			if mi == mj && vi != vj && ic.ok[i] && ic.ok[j] {
				want = CanShare(ic.win[i], ic.win[j], ic.lib.Module(mi).Delay,
					ic.reach.Get(int(vi), int(vj)), ic.reach.Get(int(vj), int(vi)))
			}
			got := ic.adj[i*ic.words+j/64]&(1<<uint(j%64)) != 0
			rev := ic.adj[j*ic.words+i/64]&(1<<uint(i%64)) != 0
			if got != want || rev != want {
				return fmt.Errorf("compat: incremental edge (%d:%s, %d:%s) = %v/%v, rebuild says %v",
					vi, ic.lib.Module(mi).Name, vj, ic.lib.Module(mj).Name, got, rev, want)
			}
		}
	}
	return nil
}

// Edges counts the maintained compatibility edges (each unordered pair
// once), for reports and tests.
func (ic *Incremental) Edges() int {
	total := ic.n * ic.nm
	edges := 0
	for i := 0; i < total; i++ {
		row := ic.adj[i*ic.words : (i+1)*ic.words]
		for j := i + 1; j < total; j++ {
			if row[j/64]&(1<<uint(j%64)) != 0 {
				edges++
			}
		}
	}
	return edges
}
