package compat

import (
	"math/rand"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/gen"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// churnTable is a mutable window table driving both the incremental
// structure and the from-scratch Build during differential testing.
type churnTable struct {
	win []sched.Window
	ok  []bool
	nm  int
}

func newChurnTable(g *cdfg.Graph, lib *library.Library) *churnTable {
	nm := lib.Len()
	return &churnTable{
		win: make([]sched.Window, g.N()*nm),
		ok:  make([]bool, g.N()*nm),
		nm:  nm,
	}
}

func (ct *churnTable) set(v cdfg.NodeID, mi int, w sched.Window, ok bool) {
	ct.win[int(v)*ct.nm+mi] = w
	ct.ok[int(v)*ct.nm+mi] = ok
}

func (ct *churnTable) windowFunc() WindowFunc {
	return func(v cdfg.NodeID, mi int) (sched.Window, bool) {
		return ct.win[int(v)*ct.nm+mi], ct.ok[int(v)*ct.nm+mi]
	}
}

// randomWindow draws a small plausible window.
func randomWindow(rng *rand.Rand) sched.Window {
	e := rng.Intn(12)
	return sched.Window{Early: e, Late: e + rng.Intn(8)}
}

// TestIncrementalMatchesBuild churns random windows through an
// Incremental and checks after every round that its edge set equals the
// from-scratch Build of the same window table, bit for bit. This is the
// differential that licenses patching edges instead of rebuilding: any
// divergence between the dirty-set update rule and the pairwise
// definition shows up as a mismatched pair here.
func TestIncrementalMatchesBuild(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph: gen.GraphConfig{Nodes: 6 + int(seed%8)},
		})
		g, lib := inst.Graph, inst.Library
		ic, err := NewIncremental(g, lib)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ct := newChurnTable(g, lib)
		rng := rand.New(rand.NewSource(seed * 7919))

		for round := 0; round < 6; round++ {
			// Mutate a random subset of candidates; round 0 initializes
			// everything. The first candidate of every node stays
			// feasible so Build never fails its coverage check.
			for _, n := range g.Nodes() {
				for k, mi := range lib.Candidates(n.Op) {
					if round > 0 && rng.Intn(3) != 0 {
						continue
					}
					ok := k == 0 || rng.Intn(5) != 0
					w := sched.Window{}
					if ok {
						w = randomWindow(rng)
					}
					ct.set(n.ID, mi, w, ok)
					ic.Set(n.ID, mi, w, ok)
				}
			}

			ref, err := Build(g, lib, ct.windowFunc())
			if err != nil {
				t.Fatalf("seed %d round %d: build: %v", seed, round, err)
			}
			for i := 0; i < ref.N(); i++ {
				for j := 0; j < ref.N(); j++ {
					a, b := ref.Cands[i], ref.Cands[j]
					want := ref.Compatible(i, j)
					got := ic.Compatible(a.Node, a.Module, b.Node, b.Module)
					if got != want {
						t.Fatalf("seed %d round %d: (%d,%d)x(%d,%d): incremental %v, build %v",
							seed, round, a.Node, a.Module, b.Node, b.Module, got, want)
					}
				}
			}
			// Infeasible candidates must carry no edges at all.
			for _, n := range g.Nodes() {
				for _, mi := range lib.Candidates(n.Op) {
					if _, ok := ic.Candidate(n.ID, mi); ok {
						continue
					}
					for _, u := range g.Nodes() {
						for _, mj := range lib.Candidates(u.Op) {
							if ic.Compatible(n.ID, mi, u.ID, mj) {
								t.Fatalf("seed %d round %d: infeasible candidate (%d,%d) has an edge", seed, round, n.ID, mi)
							}
						}
					}
				}
			}
			if err := ic.Audit(); err != nil {
				t.Fatalf("seed %d round %d: audit: %v", seed, round, err)
			}
		}
	}
}

// TestIncrementalSetReportsChange pins the dirty-set contract: an
// unchanged Set returns false and is free, a changed one returns true.
func TestIncrementalSetReportsChange(t *testing.T) {
	inst := gen.NewInstance(3, gen.InstanceConfig{Graph: gen.GraphConfig{Nodes: 8}})
	ic, err := NewIncremental(inst.Graph, inst.Library)
	if err != nil {
		t.Fatal(err)
	}
	n := inst.Graph.Node(0)
	mi := inst.Library.Candidates(n.Op)[0]
	w := sched.Window{Early: 1, Late: 4}
	if !ic.Set(n.ID, mi, w, true) {
		t.Fatal("first Set of a fresh candidate reported no change")
	}
	if ic.Set(n.ID, mi, w, true) {
		t.Fatal("identical Set reported a change")
	}
	if !ic.Set(n.ID, mi, sched.Window{Early: 1, Late: 5}, true) {
		t.Fatal("window change not reported")
	}
	if !ic.Set(n.ID, mi, sched.Window{}, false) {
		t.Fatal("feasibility change not reported")
	}
	if ic.Set(n.ID, mi, sched.Window{Early: 9, Late: 9}, false) {
		t.Fatal("infeasible-to-infeasible window change reported (windows of infeasible candidates are not observable)")
	}
}

// TestIncrementalSetAllocs pins Set to zero allocations: the structure
// allocates only at construction, so the per-iteration compat sync of the
// synthesizer never touches the heap no matter how many edges it patches.
func TestIncrementalSetAllocs(t *testing.T) {
	inst := gen.NewInstance(11, gen.InstanceConfig{Graph: gen.GraphConfig{Nodes: 40}})
	g, lib := inst.Graph, inst.Library
	ic, err := NewIncremental(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, n := range g.Nodes() {
		for _, mi := range lib.Candidates(n.Op) {
			ic.Set(n.ID, mi, randomWindow(rng), true)
		}
	}
	n := g.Node(cdfg.NodeID(g.N() / 2))
	mi := lib.Candidates(n.Op)[0]
	flip := 0
	got := testing.AllocsPerRun(100, func() {
		flip++
		ic.Set(n.ID, mi, sched.Window{Early: flip % 7, Late: flip%7 + 3}, true)
	})
	if got != 0 {
		t.Fatalf("Incremental.Set allocates %.1f allocs/op, want 0", got)
	}
}
