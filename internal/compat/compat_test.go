package compat

import (
	"strings"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

func TestCanShareDependent(t *testing.T) {
	// a -> b, delay 2. b can start at a.Early+2 iff its Late allows.
	a := sched.Window{Early: 0, Late: 4}
	b := sched.Window{Early: 2, Late: 6}
	if !CanShare(a, b, 2, true, false) {
		t.Fatal("dependent pair with room rejected")
	}
	// b locked before a can possibly finish.
	b = sched.Window{Early: 1, Late: 1}
	if CanShare(a, b, 2, true, false) {
		t.Fatal("dependent pair without room accepted")
	}
	// Same pair presented in swapped argument order (b first, a second,
	// with a preceding b): still not shareable.
	if CanShare(b, a, 2, false, true) {
		t.Fatal("swapped dependent pair without room accepted")
	}
	// Reversed dependency with room: first op {2,6}, preceded by {0,4}.
	if !CanShare(sched.Window{Early: 2, Late: 6}, a, 2, false, true) {
		t.Fatal("reversed dependency with room rejected")
	}
}

func TestCanShareIndependent(t *testing.T) {
	// Disjoint windows always shareable.
	a := sched.Window{Early: 0, Late: 0}
	b := sched.Window{Early: 5, Late: 5}
	if !CanShare(a, b, 2, false, false) {
		t.Fatal("disjoint independent pair rejected")
	}
	// Forced overlap: both locked to the same cycle.
	a = sched.Window{Early: 3, Late: 3}
	b = sched.Window{Early: 3, Late: 3}
	if CanShare(a, b, 2, false, false) {
		t.Fatal("forced-overlap pair accepted")
	}
	// One can slide after the other.
	b = sched.Window{Early: 3, Late: 5}
	if !CanShare(a, b, 2, false, false) {
		t.Fatal("slidable pair rejected")
	}
}

// twoMuls builds i -> {m1, m2} -> a -> o with independent muls.
func twoMuls(t *testing.T) *cdfg.Graph {
	t.Helper()
	g := cdfg.New("twomuls")
	i := g.MustAddNode("i", cdfg.Input)
	m1 := g.MustAddNode("m1", cdfg.Mul)
	m2 := g.MustAddNode("m2", cdfg.Mul)
	a := g.MustAddNode("a", cdfg.Add)
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i, m1)
	g.MustAddEdge(i, m2)
	g.MustAddEdge(m1, a)
	g.MustAddEdge(m2, a)
	g.MustAddEdge(a, o)
	return g
}

// classicWindows builds a WindowFunc from unconstrained ASAP/ALAP with the
// module under test substituted for the node.
func classicWindows(t *testing.T, g *cdfg.Graph, lib *library.Library, deadline int) WindowFunc {
	t.Helper()
	return func(node cdfg.NodeID, module int) (sched.Window, bool) {
		bind := func(n cdfg.Node) *library.Module {
			if n.ID == node {
				return lib.Module(module)
			}
			m, err := lib.Fastest(n.Op)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
		early, err := sched.ASAP(g, bind)
		if err != nil || early.Length() > deadline {
			return sched.Window{}, false
		}
		late, err := sched.ALAP(g, bind, deadline)
		if err != nil {
			return sched.Window{}, false
		}
		return sched.Window{Early: early.Start[node], Late: late.Start[node]}, true
	}
}

func TestBuildTwoMuls(t *testing.T) {
	g := twoMuls(t)
	lib := library.Table1()
	// Deadline 10: both serial and parallel multipliers feasible.
	cg, err := Build(g, lib, classicWindows(t, g, lib, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Candidates: i (input), m1 (ser+par), m2 (ser+par), a (add+ALU), o (output) = 8.
	if cg.N() != 8 {
		t.Fatalf("V1 has %d candidates, want 8", cg.N())
	}
	m1, _ := g.Lookup("m1")
	m2, _ := g.Lookup("m2")
	// m1/m2 on the parallel multiplier: windows [1,?] with delay 2 and
	// independence; deadline 10 leaves room to serialize: compatible.
	var m1par, m2par, m1ser int = -1, -1, -1
	for i, c := range cg.Cands {
		mod := lib.Module(c.Module)
		if c.Node == m1.ID && mod.Name == library.NameMulPar {
			m1par = i
		}
		if c.Node == m2.ID && mod.Name == library.NameMulPar {
			m2par = i
		}
		if c.Node == m1.ID && mod.Name == library.NameMulSer {
			m1ser = i
		}
	}
	if m1par < 0 || m2par < 0 || m1ser < 0 {
		t.Fatalf("missing multiplier candidates: %v", cg.Cands)
	}
	if !cg.Compatible(m1par, m2par) {
		t.Error("independent muls with slack should share a parallel multiplier")
	}
	// Different modules are never compatible (an instance has one type).
	if cg.Compatible(m1ser, m2par) {
		t.Error("serial and parallel candidates must not share an instance")
	}
	// Same node's candidates are not compatible with each other.
	if cg.Compatible(m1par, m1ser) {
		t.Error("candidates of one node must not be adjacent")
	}
}

func TestBuildTightDeadlineRemovesSharing(t *testing.T) {
	g := twoMuls(t)
	lib := library.Table1()
	// Deadline 5 = critical path with parallel muls: no slack, muls must
	// run concurrently, so they cannot share; serial muls are infeasible.
	cg, err := Build(g, lib, classicWindows(t, g, lib, 5))
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := g.Lookup("m1")
	m2, _ := g.Lookup("m2")
	for _, i := range cg.CandidatesOf(m1.ID) {
		if lib.Module(cg.Cands[i].Module).Name == library.NameMulSer {
			t.Error("serial multiplier should be infeasible at deadline 5")
		}
		for _, j := range cg.CandidatesOf(m2.ID) {
			if cg.Compatible(i, j) {
				t.Error("muls without slack should not be shareable")
			}
		}
	}
}

func TestBuildFailsWhenNoCandidate(t *testing.T) {
	g := twoMuls(t)
	lib := library.Table1()
	// Deadline 3 < critical path for every module choice: m1 has no
	// feasible candidate.
	_, err := Build(g, lib, classicWindows(t, g, lib, 3))
	if err == nil || !strings.Contains(err.Error(), "no feasible") {
		t.Fatalf("Build = %v, want no-candidate error", err)
	}
}

func TestCandidatesOfAndStats(t *testing.T) {
	g := twoMuls(t)
	lib := library.Table1()
	cg, err := Build(g, lib, classicWindows(t, g, lib, 10))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := g.Lookup("a")
	cands := cg.CandidatesOf(a.ID)
	if len(cands) != 2 { // add and ALU
		t.Fatalf("a has %d candidates, want 2", len(cands))
	}
	v, e, perMod := cg.Stats()
	if v != 8 {
		t.Fatalf("stats vertices = %d", v)
	}
	if e == 0 {
		t.Fatal("stats edges = 0, expected some compatibility")
	}
	if perMod[library.NameMulSer] != 2 || perMod[library.NameMulPar] != 2 {
		t.Fatalf("per-module counts: %v", perMod)
	}
	if cg.Library() != lib {
		t.Fatal("Library() mismatch")
	}
}
