// Package compat reconstructs the "time-extended compatibility graph" (V1)
// of Jou, Kuang & Chen, extended with the power-feasible mobility windows
// of Nielsen & Madsen: a graph whose vertices are (operation, module)
// candidates and whose edges join candidates that can provably share one
// functional-unit instance of that module under some schedule within the
// operations' windows.
//
// A clique of V1 restricted to one module therefore corresponds to one
// functional-unit instance executing all member operations; minimal-cost
// clique partitioning of V1 is the combined allocation/binding problem.
package compat

import (
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// Candidate is one vertex of the time-extended compatibility graph: an
// operation considered for implementation on a specific library module.
type Candidate struct {
	// Node is the operation.
	Node cdfg.NodeID
	// Module indexes the library module implementing the operation.
	Module int
	// Window is the operation's feasible start-time range when bound to
	// this module (from pasap/palap under the active constraints).
	Window sched.Window
}

// CanShare reports whether two operations can share one functional-unit
// instance, given their start-time windows, execution delays on that
// instance's module, and their dependency relation. Operations can share
// iff some pair of in-window start times executes them on disjoint cycle
// intervals in dependency-consistent order:
//
//   - if a must precede b (a path a -> b exists), sharing requires
//     b.Window.Late >= a.Window.Early + delay (b can start after a ends);
//     the data dependency itself already forces disjoint execution;
//   - if they are independent, sharing requires one of them to be able to
//     finish before the other starts in some window choice.
//
// aBeforeB / bBeforeA describe reachability (both false for independent
// operations; both true is impossible in a DAG).
func CanShare(a, b sched.Window, delay int, aBeforeB, bBeforeA bool) bool {
	switch {
	case aBeforeB:
		return b.Late >= a.Early+delay
	case bBeforeA:
		return a.Late >= b.Early+delay
	default:
		return a.Early+delay <= b.Late || b.Early+delay <= a.Late
	}
}

// WindowFunc supplies the feasible window of an operation when bound to a
// given library module; ok=false means the binding is infeasible (e.g. the
// module's power exceeds the constraint, or no schedule meets the deadline
// with this choice).
type WindowFunc func(node cdfg.NodeID, module int) (w sched.Window, ok bool)

// Graph is the time-extended compatibility graph V1.
type Graph struct {
	// Cands are the candidate vertices in deterministic order (node-major,
	// module-minor).
	Cands []Candidate
	// lib is the module library the candidates reference.
	lib *library.Library
	adj []bool
	n   int
}

// Build constructs V1 for graph g over library lib. windows supplies
// per-(operation, module) feasible windows; infeasible pairs produce no
// vertex. Returns an error if some operation has no candidate at all (the
// synthesis problem is infeasible) or if g is cyclic.
func Build(g *cdfg.Graph, lib *library.Library, windows WindowFunc) (*Graph, error) {
	reach, err := g.Reachability()
	if err != nil {
		return nil, err
	}
	var cands []Candidate
	perNode := make([]int, g.N())
	for _, n := range g.Nodes() {
		for _, mi := range lib.Candidates(n.Op) {
			if w, ok := windows(n.ID, mi); ok {
				cands = append(cands, Candidate{Node: n.ID, Module: mi, Window: w})
				perNode[n.ID]++
			}
		}
	}
	for _, n := range g.Nodes() {
		if perNode[n.ID] == 0 {
			return nil, fmt.Errorf("compat: operation %q has no feasible (module, window) candidate", n.Name)
		}
	}
	cg := &Graph{Cands: cands, lib: lib, n: len(cands)}
	cg.adj = make([]bool, cg.n*cg.n)
	for i := 0; i < cg.n; i++ {
		for j := i + 1; j < cg.n; j++ {
			a, b := cands[i], cands[j]
			if a.Node == b.Node || a.Module != b.Module {
				continue
			}
			d := lib.Module(a.Module).Delay
			ab := reach.Get(int(a.Node), int(b.Node))
			ba := reach.Get(int(b.Node), int(a.Node))
			if CanShare(a.Window, b.Window, d, ab, ba) {
				cg.adj[i*cg.n+j] = true
				cg.adj[j*cg.n+i] = true
			}
		}
	}
	return cg, nil
}

// N returns the number of candidate vertices.
func (cg *Graph) N() int { return cg.n }

// Compatible reports whether candidates i and j may share an instance.
func (cg *Graph) Compatible(i, j int) bool {
	return cg.adj[i*cg.n+j]
}

// Library returns the module library the graph was built over.
func (cg *Graph) Library() *library.Library { return cg.lib }

// CandidatesOf returns the indices of all candidates for the given node.
func (cg *Graph) CandidatesOf(node cdfg.NodeID) []int {
	var out []int
	for i, c := range cg.Cands {
		if c.Node == node {
			out = append(out, i)
		}
	}
	return out
}

// Stats summarizes the graph for reports: vertices, edges, and per-module
// candidate counts keyed by module name.
func (cg *Graph) Stats() (vertices, edges int, perModule map[string]int) {
	perModule = make(map[string]int)
	for _, c := range cg.Cands {
		perModule[cg.lib.Module(c.Module).Name]++
	}
	for i := 0; i < cg.n; i++ {
		for j := i + 1; j < cg.n; j++ {
			if cg.adj[i*cg.n+j] {
				edges++
			}
		}
	}
	return cg.n, edges, perModule
}
