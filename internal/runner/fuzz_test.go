package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// FuzzRunnerMap hammers Map with random item counts, worker counts and
// injected failures (errors and panics), asserting the invariants the
// exploration surfaces depend on: no deadlock, results land by input index,
// failures propagate under both policies, and successful runs return every
// result.
func FuzzRunnerMap(f *testing.F) {
	f.Add(uint8(10), uint8(2), uint16(0), uint16(0), false)
	f.Add(uint8(100), uint8(8), uint16(5), uint16(0), false)
	f.Add(uint8(50), uint8(0), uint16(7), uint16(13), true)
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0), true)
	f.Add(uint8(0), uint8(4), uint16(0), uint16(0), false)
	f.Fuzz(func(t *testing.T, nRaw, workersRaw uint8, errEvery, panicEvery uint16, collectAll bool) {
		n := int(nRaw)
		workers := int(workersRaw) % 17 // 0..16
		policy := FirstError
		if collectAll {
			policy = CollectAll
		}
		injected := errors.New("injected")
		fn := func(_ context.Context, i int) (int, error) {
			if panicEvery > 0 && i%int(panicEvery) == int(panicEvery)-1 {
				panic(fmt.Sprintf("injected panic at %d", i))
			}
			if errEvery > 0 && i%int(errEvery) == int(errEvery)-1 {
				return 0, fmt.Errorf("%w at %d", injected, i)
			}
			return i + 1, nil
		}

		done := make(chan struct{})
		var out []int
		var err error
		go func() {
			defer close(done)
			out, err = Map(context.Background(), n, Config{Workers: workers, Policy: policy}, fn)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("deadlock: Map(n=%d, workers=%d, errEvery=%d, panicEvery=%d, policy=%v) did not return",
				n, workers, errEvery, panicEvery, policy)
		}

		if len(out) != n {
			t.Fatalf("len(out) = %d, want %d", len(out), n)
		}
		anyFailure := false
		for i := 0; i < n; i++ {
			itemPanics := panicEvery > 0 && i%int(panicEvery) == int(panicEvery)-1
			itemErrs := !itemPanics && errEvery > 0 && i%int(errEvery) == int(errEvery)-1
			if itemPanics || itemErrs {
				anyFailure = true
				continue
			}
			// A successful item either ran (out[i] == i+1) or was skipped
			// after a FirstError cancellation (out[i] == 0). Anything else
			// means results were misplaced.
			if out[i] != i+1 && out[i] != 0 {
				t.Fatalf("out[%d] = %d, want %d or 0 (skipped)", i, out[i], i+1)
			}
			if policy == CollectAll && out[i] != i+1 {
				t.Fatalf("CollectAll skipped item %d (out = %d)", i, out[i])
			}
		}
		if anyFailure && err == nil {
			t.Fatalf("failures injected (errEvery=%d panicEvery=%d n=%d) but Map returned nil error",
				errEvery, panicEvery, n)
		}
		if !anyFailure {
			if err != nil {
				t.Fatalf("no failures injected but err = %v", err)
			}
			for i := 0; i < n; i++ {
				if out[i] != i+1 {
					t.Fatalf("out[%d] = %d, want %d", i, out[i], i+1)
				}
			}
		}
		if anyFailure {
			var pe *PanicError
			if !errors.Is(err, injected) && !errors.As(err, &pe) {
				t.Fatalf("err = %v, want injected error or *PanicError", err)
			}
		}
	})
}
