// Package runner is the shared concurrent-evaluation substrate behind the
// design-space exploration surfaces: a bounded worker pool that maps a
// function over an index range with deterministic result placement.
//
// The exploration workloads (power sweeps, time sweeps, battery sweeps,
// time-power surfaces, multi-start synthesis portfolios) are embarrassingly
// parallel grids of independent synthesis runs. Map runs them across a
// bounded number of goroutines while guaranteeing that results land by
// input index, so parallel output is bit-identical to the serial order —
// the property the explore package's determinism harness pins.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Policy selects how Map reacts to item errors.
type Policy int

const (
	// FirstError cancels outstanding work as soon as any item fails and
	// returns a single error: the failure with the smallest input index
	// (preferring real failures over cancellation fallout). Items that
	// never started are skipped and keep their zero-value results.
	FirstError Policy = iota
	// CollectAll runs every item regardless of failures and returns all
	// item errors joined in input-index order.
	CollectAll
)

// Config parameterizes Map.
type Config struct {
	// Workers bounds the number of concurrent item evaluations.
	// 0 means runtime.GOMAXPROCS(0); 1 runs the items inline on the
	// calling goroutine (the legacy serial path, kept for debugging);
	// negative values are an error.
	Workers int
	// Policy selects the error-handling policy (default FirstError).
	Policy Policy
	// InFlight, when non-nil, is incremented as each item starts and
	// decremented when it finishes (including panics), exposing the pool's
	// instantaneous occupancy to an observability layer. The hook must be
	// safe for concurrent use; it never affects results.
	InFlight Gauge
}

// Gauge is the minimal metrics hook Map accepts for occupancy tracking;
// obs.Gauge satisfies it.
type Gauge interface {
	Add(delta int64)
}

// PanicError is the error a recovered item panic is converted to.
type PanicError struct {
	// Index is the input index of the item that panicked.
	Index int
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: item %d panicked: %v", e.Index, e.Value)
}

// ErrBadWorkers is returned for negative worker counts.
var ErrBadWorkers = errors.New("runner: negative worker count")

// ResolveWorkers maps the Workers knob to a concrete pool size:
// 0 becomes runtime.GOMAXPROCS(0), positive values pass through, and the
// pool never exceeds n (spawning more workers than items is waste).
// Negative values return ErrBadWorkers.
func ResolveWorkers(workers, n int) (int, error) {
	if workers < 0 {
		return 0, fmt.Errorf("%w: %d", ErrBadWorkers, workers)
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers, nil
}

// Map applies fn to every index in [0, n) with at most cfg.Workers
// concurrent evaluations and returns the results placed by input index,
// regardless of completion order.
//
// The context is checked before each item starts: once ctx is cancelled no
// new item begins, and Map returns ctx's error after in-flight items drain
// (fn itself is not interrupted; pass ctx-aware functions for finer-grained
// cancellation). A panic inside fn is recovered and converted to a
// *PanicError for that item; it never takes down the process.
//
// With cfg.Workers == 1 the items run inline on the calling goroutine in
// input order — the serial reference path. Any other setting must produce
// byte-identical results for deterministic fn.
func Map[T any](ctx context.Context, n int, cfg Config, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n < 0 {
		return nil, fmt.Errorf("runner: negative item count %d", n)
	}
	results := make([]T, n)
	if n == 0 {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return results, err
			}
		}
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers, err := ResolveWorkers(cfg.Workers, n)
	if err != nil {
		return nil, err
	}

	itemErrs := make([]error, n)
	run := func(ctx context.Context, i int) (err error) {
		if cfg.InFlight != nil {
			cfg.InFlight.Add(1)
			defer cfg.InFlight.Add(-1)
		}
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 64<<10)
				buf = buf[:runtime.Stack(buf, false)]
				err = &PanicError{Index: i, Value: r, Stack: buf}
			}
		}()
		results[i], err = fn(ctx, i)
		return err
	}

	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return results, mapError(cfg.Policy, itemErrs, err)
			}
			itemErrs[i] = run(ctx, i)
			if itemErrs[i] != nil && cfg.Policy == FirstError {
				break
			}
		}
		return results, mapError(cfg.Policy, itemErrs, ctx.Err())
	}

	// Cancel the pool's context on first error under FirstError so idle
	// items are skipped and ctx-aware fns return early.
	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next int
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n || poolCtx.Err() != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				err := run(poolCtx, i)
				if err != nil {
					mu.Lock()
					itemErrs[i] = err
					mu.Unlock()
					if cfg.Policy == FirstError {
						cancel()
					}
				}
			}
		}()
	}
	wg.Wait()
	return results, mapError(cfg.Policy, itemErrs, ctx.Err())
}

// mapError folds per-item errors into Map's return error under the policy.
// ctxErr is the caller context's error (nil when not cancelled); it wins
// only when no real item failure explains the outcome.
func mapError(policy Policy, itemErrs []error, ctxErr error) error {
	if policy == CollectAll {
		var errs []error
		for i, e := range itemErrs {
			if e != nil {
				errs = append(errs, fmt.Errorf("item %d: %w", i, e))
			}
		}
		if ctxErr != nil {
			errs = append(errs, ctxErr)
		}
		return errors.Join(errs...)
	}
	// FirstError: the smallest-index failure that is not cancellation
	// fallout; items cancelled mid-flight report the context error, which
	// must not mask the failure that triggered the cancellation.
	var fallback error
	for i, e := range itemErrs {
		if e == nil {
			continue
		}
		if !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) {
			return fmt.Errorf("runner: item %d: %w", i, e)
		}
		if fallback == nil {
			fallback = fmt.Errorf("runner: item %d: %w", i, e)
		}
	}
	if ctxErr != nil {
		return ctxErr
	}
	return fallback
}
