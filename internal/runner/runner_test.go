package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		out, err := Map(context.Background(), 100, Config{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	out, err := Map(context.Background(), 0, Config{},
		func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}
	if _, err := Map(context.Background(), -1, Config{},
		func(_ context.Context, i int) (int, error) { return 0, nil }); err == nil {
		t.Fatal("negative n accepted")
	}
	if _, err := Map(context.Background(), 3, Config{Workers: -2},
		func(_ context.Context, i int) (int, error) { return 0, nil }); !errors.Is(err, ErrBadWorkers) {
		t.Fatalf("negative workers: %v", err)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	_, err := Map(context.Background(), 50, Config{Workers: workers},
		func(_ context.Context, i int) (struct{}, error) {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(100 * time.Microsecond)
			cur.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent items, cap %d", p, workers)
	}
}

func TestMapFirstErrorPolicy(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		_, err := Map(context.Background(), 200, Config{Workers: workers},
			func(_ context.Context, i int) (int, error) {
				ran.Add(1)
				if i == 5 {
					return 0, boom
				}
				return i, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		if n := ran.Load(); n == 200 && workers == 1 {
			t.Fatalf("workers=%d: FirstError ran all items", workers)
		}
	}
}

func TestMapFirstErrorSmallestIndexWins(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	// Both items fail; the error of the smaller index must be reported
	// regardless of completion order (item 7 fails immediately, item 2
	// slowly).
	_, err := Map(context.Background(), 8, Config{Workers: 8},
		func(_ context.Context, i int) (int, error) {
			switch i {
			case 2:
				time.Sleep(2 * time.Millisecond)
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("no error")
	}
	// Item 7's error cancels the pool; item 2 may be skipped entirely or
	// still fail. Whatever ran, the reported error must be a real item
	// error, never bare cancellation fallout.
	if !errors.Is(err, errA) && !errors.Is(err, errB) {
		t.Fatalf("err = %v, want a real item error", err)
	}
}

func TestMapCollectAllPolicy(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		out, err := Map(context.Background(), 20, Config{Workers: workers, Policy: CollectAll},
			func(_ context.Context, i int) (int, error) {
				ran.Add(1)
				if i%7 == 3 {
					return -1, fmt.Errorf("%w at %d", boom, i)
				}
				return i, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if n := ran.Load(); n != 20 {
			t.Fatalf("workers=%d: CollectAll ran %d/20 items", workers, n)
		}
		for i, v := range out {
			want := i
			if i%7 == 3 {
				want = -1
			}
			if v != want {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, want)
			}
		}
	}
}

func TestMapPanicRecovery(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(context.Background(), 10, Config{Workers: workers},
			func(_ context.Context, i int) (int, error) {
				if i == 3 {
					panic("kaboom")
				}
				return i, nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 3 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: panic error = %+v", workers, pe)
		}
	}
}

func TestMapCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		start := time.Now()
		_, err := Map(ctx, 1000, Config{Workers: workers},
			func(_ context.Context, i int) (int, error) {
				ran.Add(1)
				time.Sleep(time.Millisecond)
				return i, nil
			})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := ran.Load(); n != 0 {
			t.Fatalf("workers=%d: %d items ran under a cancelled context", workers, n)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("workers=%d: cancelled Map took %v", workers, d)
		}
	}
}

func TestMapMidflightCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := Map(ctx, 500, Config{Workers: 2},
		func(c context.Context, i int) (int, error) {
			if ran.Add(1) == 10 {
				cancel()
			}
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 500 {
		t.Fatal("cancellation did not stop the pool")
	}
}

func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 20; k++ {
		_, _ = Map(context.Background(), 50, Config{Workers: 8},
			func(_ context.Context, i int) (int, error) {
				if i == 25 {
					return 0, errors.New("stop")
				}
				return i, nil
			})
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines: before %d, after %d", before, after)
	}
}

func TestResolveWorkers(t *testing.T) {
	cases := []struct{ workers, n, want int }{
		{0, 100, runtime.GOMAXPROCS(0)},
		{1, 100, 1},
		{8, 3, 3},
		{8, 100, 8},
		{5, 0, 1},
	}
	for _, c := range cases {
		got, err := ResolveWorkers(c.workers, c.n)
		if err != nil || got != c.want {
			t.Errorf("ResolveWorkers(%d, %d) = %d, %v; want %d", c.workers, c.n, got, err, c.want)
		}
	}
	if _, err := ResolveWorkers(-1, 10); !errors.Is(err, ErrBadWorkers) {
		t.Errorf("negative workers: %v", err)
	}
}

// trackGauge records the high-water mark of an in-flight level.
type trackGauge struct {
	level atomic.Int64
	peak  atomic.Int64
}

func (g *trackGauge) Add(delta int64) {
	n := g.level.Add(delta)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

func TestMapInFlightGauge(t *testing.T) {
	var g trackGauge
	_, err := Map(context.Background(), 50, Config{Workers: 4, InFlight: &g},
		func(_ context.Context, i int) (int, error) {
			time.Sleep(time.Millisecond)
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if lvl := g.level.Load(); lvl != 0 {
		t.Fatalf("in-flight level = %d after Map returned, want 0", lvl)
	}
	if peak := g.peak.Load(); peak < 1 || peak > 4 {
		t.Fatalf("in-flight peak = %d, want within [1,4]", peak)
	}
}

func TestMapInFlightGaugeBalancedOnPanic(t *testing.T) {
	var g trackGauge
	_, err := Map(context.Background(), 8, Config{Workers: 2, InFlight: &g},
		func(_ context.Context, i int) (int, error) {
			if i == 3 {
				panic("boom")
			}
			return i, nil
		})
	if err == nil {
		t.Fatal("want panic error")
	}
	if lvl := g.level.Load(); lvl != 0 {
		t.Fatalf("in-flight level = %d after panic, want 0", lvl)
	}
}
