package library

import (
	"encoding/json"
	"fmt"

	"pchls/internal/cdfg"
)

// The JSON schema of a library is a list of modules; it is the optional
// "library" field of the synthesis service's request payloads. Decoding
// funnels through New, so every validation rule of the text format applies
// equally: unique names, known operation tokens, delay >= 1, finite
// non-negative area and power.
//
//	[{"name": "ALU", "ops": ["+", "-", ">"], "area": 97, "delay": 1, "power": 2.5}, ...]

type levelJSON struct {
	Voltage float64 `json:"voltage"`
	Delay   int     `json:"delay"`
	Power   float64 `json:"power"`
}

type moduleJSON struct {
	Name  string   `json:"name"`
	Ops   []string `json:"ops"`
	Area  float64  `json:"area"`
	Delay int      `json:"delay"`
	Power float64  `json:"power"`
	// Levels, when present, is the complete voltage operating-point set;
	// the first entry is the nominal point Delay/Power normalize to.
	Levels []levelJSON `json:"levels,omitempty"`
}

// MarshalJSON serializes the library as its module list in declaration
// order; the output is canonical for equal libraries.
func (l *Library) MarshalJSON() ([]byte, error) {
	out := make([]moduleJSON, 0, len(l.modules))
	for i := range l.modules {
		m := &l.modules[i]
		ops := make([]string, len(m.Ops))
		for j, o := range m.Ops {
			ops[j] = o.String()
		}
		mj := moduleJSON{Name: m.Name, Ops: ops, Area: m.Area, Delay: m.Delay, Power: m.Power}
		for _, lv := range m.Levels {
			mj.Levels = append(mj.Levels, levelJSON{Voltage: lv.Voltage, Delay: lv.Delay, Power: lv.Power})
		}
		out = append(out, mj)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes and validates a library from its JSON module list.
// On success the receiver is replaced wholesale; on error it is left
// unchanged. Modules with unknown operation tokens, non-positive delays,
// or invalid area/power are rejected.
func (l *Library) UnmarshalJSON(data []byte) error {
	var raw []moduleJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("library: decoding library JSON: %w", err)
	}
	mods := make([]Module, 0, len(raw))
	for i, mj := range raw {
		m := Module{Name: mj.Name, Area: mj.Area, Delay: mj.Delay, Power: mj.Power}
		for _, lv := range mj.Levels {
			m.Levels = append(m.Levels, OperatingPoint{Voltage: lv.Voltage, Delay: lv.Delay, Power: lv.Power})
		}
		for _, tok := range mj.Ops {
			op, err := cdfg.ParseOp(tok)
			if err != nil {
				return fmt.Errorf("library: module %d (%q): %w", i, mj.Name, err)
			}
			m.Ops = append(m.Ops, op)
		}
		mods = append(mods, m)
	}
	nl, err := New(mods)
	if err != nil {
		return err
	}
	*l = *nl
	return nil
}

// ParseJSON decodes and validates a library from its JSON serialization.
func ParseJSON(data []byte) (*Library, error) {
	l := &Library{}
	if err := json.Unmarshal(data, l); err != nil {
		return nil, err
	}
	return l, nil
}
