package library

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestLibraryJSONRoundTrip(t *testing.T) {
	lib := Table1()
	raw, err := json.Marshal(lib)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table() != lib.Table() {
		t.Fatalf("round trip changed the library:\n%s\nvs\n%s", got.Table(), lib.Table())
	}
	raw2, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatalf("marshal not canonical:\n%s\nvs\n%s", raw, raw2)
	}
}

func TestLibraryJSONRejects(t *testing.T) {
	cases := []struct {
		name, payload, want string
	}{
		{"syntax", `[`, "unexpected end of JSON input"},
		{"unknown op", `[{"name":"m","ops":["frob"],"area":1,"delay":1,"power":1}]`, "unknown operation"},
		{"zero delay", `[{"name":"m","ops":["+"],"area":1,"delay":0,"power":1}]`, "delay 0"},
		{"negative delay", `[{"name":"m","ops":["+"],"area":1,"delay":-3,"power":1}]`, "delay -3"},
		{"negative area", `[{"name":"m","ops":["+"],"area":-1,"delay":1,"power":1}]`, "area -1"},
		{"negative power", `[{"name":"m","ops":["+"],"area":1,"delay":1,"power":-2}]`, "power -2"},
		{"no ops", `[{"name":"m","ops":[],"area":1,"delay":1,"power":1}]`, "implements no operations"},
		{"duplicate name", `[{"name":"m","ops":["+"],"area":1,"delay":1,"power":1},{"name":"m","ops":["-"],"area":1,"delay":1,"power":1}]`, "duplicate module name"},
		{"empty list", `[]`, "empty module list"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseJSON([]byte(tc.payload))
			if err == nil {
				t.Fatalf("ParseJSON(%s) succeeded, want error containing %q", tc.payload, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLibraryUnmarshalErrorLeavesReceiver(t *testing.T) {
	lib := Table1()
	before := lib.Table()
	if err := json.Unmarshal([]byte(`[]`), lib); err == nil {
		t.Fatal("want error")
	}
	if lib.Table() != before {
		t.Fatal("failed unmarshal mutated the receiver")
	}
}
