package library

import (
	"errors"
	"strings"
	"testing"

	"pchls/internal/cdfg"
)

func TestTable1MatchesPaper(t *testing.T) {
	// Field-by-field check against Table 1 of Nielsen & Madsen, DATE 2003.
	lib := Table1()
	want := []struct {
		name  string
		ops   []cdfg.Op
		area  float64
		delay int
		power float64
	}{
		{NameAdd, []cdfg.Op{cdfg.Add}, 87, 1, 2.5},
		{NameSub, []cdfg.Op{cdfg.Sub}, 87, 1, 2.5},
		{NameComp, []cdfg.Op{cdfg.Cmp}, 8, 1, 2.5},
		{NameALU, []cdfg.Op{cdfg.Add, cdfg.Sub, cdfg.Cmp}, 97, 1, 2.5},
		{NameMulSer, []cdfg.Op{cdfg.Mul}, 103, 4, 2.7},
		{NameMulPar, []cdfg.Op{cdfg.Mul}, 339, 2, 8.1},
		{NameInput, []cdfg.Op{cdfg.Input}, 16, 1, 0.2},
		{NameOutput, []cdfg.Op{cdfg.Output}, 16, 1, 1.7},
	}
	if lib.Len() != len(want) {
		t.Fatalf("Table1 has %d modules, want %d", lib.Len(), len(want))
	}
	for i, w := range want {
		m := lib.Module(i)
		if m.Name != w.name || m.Area != w.area || m.Delay != w.delay || m.Power != w.power {
			t.Errorf("module %d = %v, want %+v", i, m, w)
		}
		if len(m.Ops) != len(w.ops) {
			t.Errorf("module %q ops = %v, want %v", w.name, m.Ops, w.ops)
			continue
		}
		for j, op := range w.ops {
			if m.Ops[j] != op {
				t.Errorf("module %q op[%d] = %v, want %v", w.name, j, m.Ops[j], op)
			}
		}
	}
}

func TestModuleImplementsAndEnergy(t *testing.T) {
	lib := Table1()
	alu, ok := lib.Lookup(NameALU)
	if !ok {
		t.Fatal("ALU missing")
	}
	for _, op := range []cdfg.Op{cdfg.Add, cdfg.Sub, cdfg.Cmp} {
		if !alu.Implements(op) {
			t.Errorf("ALU should implement %s", op)
		}
	}
	if alu.Implements(cdfg.Mul) {
		t.Error("ALU should not implement *")
	}
	ser, _ := lib.Lookup(NameMulSer)
	if got := ser.Energy(); got != 2.7*4 {
		t.Errorf("serial mult energy = %g, want %g", got, 2.7*4)
	}
}

func TestCandidatesOrder(t *testing.T) {
	lib := Table1()
	cand := lib.Candidates(cdfg.Mul)
	if len(cand) != 2 {
		t.Fatalf("mul candidates = %v", cand)
	}
	if lib.Module(cand[0]).Name != NameMulSer || lib.Module(cand[1]).Name != NameMulPar {
		t.Fatalf("mul candidate order: %q, %q", lib.Module(cand[0]).Name, lib.Module(cand[1]).Name)
	}
	addCands := lib.Candidates(cdfg.Add)
	if len(addCands) != 2 { // add and ALU
		t.Fatalf("add candidates = %v", addCands)
	}
}

func TestSelectors(t *testing.T) {
	lib := Table1()
	fast, err := lib.Fastest(cdfg.Mul)
	if err != nil || fast.Name != NameMulPar {
		t.Fatalf("Fastest(*) = %v, %v; want parallel mult", fast, err)
	}
	small, err := lib.Smallest(cdfg.Mul)
	if err != nil || small.Name != NameMulSer {
		t.Fatalf("Smallest(*) = %v, %v; want serial mult", small, err)
	}
	lowP, err := lib.LowestPower(cdfg.Mul)
	if err != nil || lowP.Name != NameMulSer {
		t.Fatalf("LowestPower(*) = %v, %v; want serial mult", lowP, err)
	}
	// Add: "add" (87) beats ALU (97) on area; both delay 1 so Fastest ties
	// break by area to "add".
	small, _ = lib.Smallest(cdfg.Add)
	if small.Name != NameAdd {
		t.Fatalf("Smallest(+) = %q", small.Name)
	}
	fast, _ = lib.Fastest(cdfg.Add)
	if fast.Name != NameAdd {
		t.Fatalf("Fastest(+) tie-break = %q", fast.Name)
	}
}

func TestSelectorNoModule(t *testing.T) {
	lib, err := Table1Without(NameMulSer, NameMulPar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Fastest(cdfg.Mul); !errors.Is(err, ErrNoModule) {
		t.Fatalf("Fastest(*) err = %v, want ErrNoModule", err)
	}
}

func TestCovers(t *testing.T) {
	g := cdfg.New("t")
	a := g.MustAddNode("a", cdfg.Input)
	m := g.MustAddNode("m", cdfg.Mul)
	g.MustAddEdge(a, m)

	if missing := Table1().Covers(g); missing != nil {
		t.Fatalf("Table1 should cover, missing %v", missing)
	}
	lib, _ := Table1Without(NameMulSer, NameMulPar)
	missing := lib.Covers(g)
	if len(missing) != 1 || missing[0] != cdfg.Mul {
		t.Fatalf("missing = %v, want [*]", missing)
	}
}

func TestMinPowerFloor(t *testing.T) {
	g := cdfg.New("t")
	a := g.MustAddNode("a", cdfg.Input)
	m := g.MustAddNode("m", cdfg.Mul)
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(a, m)
	g.MustAddEdge(m, o)
	floor, err := Table1().MinPowerFloor(g)
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest multiplier is the serial one at 2.7; inputs/outputs are lower.
	if floor != 2.7 {
		t.Fatalf("floor = %g, want 2.7", floor)
	}
	// Parallel-only library: floor rises to 8.1.
	lib, _ := Table1Without(NameMulSer)
	floor, err = lib.MinPowerFloor(g)
	if err != nil || floor != 8.1 {
		t.Fatalf("parallel-only floor = %g, %v; want 8.1", floor, err)
	}
}

func TestMaxDelay(t *testing.T) {
	if d := Table1().MaxDelay(); d != 4 {
		t.Fatalf("MaxDelay = %d, want 4 (serial mult)", d)
	}
}

func TestTableRendering(t *testing.T) {
	s := Table1().Table()
	for _, want := range []string{"Module", "ALU", "{+,-,>}", "339", "Mult(ser.)", "2.7", "8.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table() missing %q:\n%s", want, s)
		}
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		mods []Module
	}{
		{"empty list", nil},
		{"empty name", []Module{{Name: "", Ops: []cdfg.Op{cdfg.Add}, Area: 1, Delay: 1}}},
		{"no ops", []Module{{Name: "x", Area: 1, Delay: 1}}},
		{"dup op", []Module{{Name: "x", Ops: []cdfg.Op{cdfg.Add, cdfg.Add}, Area: 1, Delay: 1}}},
		{"invalid op", []Module{{Name: "x", Ops: []cdfg.Op{cdfg.Invalid}, Area: 1, Delay: 1}}},
		{"negative area", []Module{{Name: "x", Ops: []cdfg.Op{cdfg.Add}, Area: -1, Delay: 1}}},
		{"zero delay", []Module{{Name: "x", Ops: []cdfg.Op{cdfg.Add}, Area: 1, Delay: 0}}},
		{"negative power", []Module{{Name: "x", Ops: []cdfg.Op{cdfg.Add}, Area: 1, Delay: 1, Power: -2}}},
		{"dup name", []Module{
			{Name: "x", Ops: []cdfg.Op{cdfg.Add}, Area: 1, Delay: 1},
			{Name: "x", Ops: []cdfg.Op{cdfg.Sub}, Area: 1, Delay: 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.mods); err == nil {
				t.Fatalf("New accepted %s", tc.name)
			}
		})
	}
}

func TestParseRoundTrip(t *testing.T) {
	in := `
# test library
module ALU +,-,> 97 1 2.5
module mser * 103 4 2.7
module in imp 16 1 0.2
`
	lib, err := ParseString(in)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 3 {
		t.Fatalf("parsed %d modules", lib.Len())
	}
	alu, ok := lib.Lookup("ALU")
	if !ok || alu.Area != 97 || len(alu.Ops) != 3 {
		t.Fatalf("ALU = %v", alu)
	}
	mser, _ := lib.Lookup("mser")
	if mser.Delay != 4 || mser.Power != 2.7 {
		t.Fatalf("mser = %v", mser)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"bad directive", "mod x + 1 1 1"},
		{"bad arity", "module x + 1 1"},
		{"bad op", "module x %% 1 1 1"},
		{"bad area", "module x + abc 1 1"},
		{"bad delay", "module x + 1 abc 1"},
		{"bad power", "module x + 1 1 abc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.in); err == nil {
				t.Fatalf("ParseString(%q) succeeded", tc.in)
			}
		})
	}
}

func TestTable1WithoutUnknownNameIgnored(t *testing.T) {
	lib, err := Table1Without("nonexistent")
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != Table1().Len() {
		t.Fatalf("dropping unknown name changed library size: %d", lib.Len())
	}
}

func TestModulesReturnsCopy(t *testing.T) {
	lib := Table1()
	mods := lib.Modules()
	mods[0].Area = 99999
	if lib.Module(0).Area == 99999 {
		t.Fatal("Modules() exposes internal storage")
	}
}
