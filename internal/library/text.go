package library

import (
	"fmt"
	"strings"
)

// Text serializes the library in the line-oriented format Parse reads
// ("module <name> <op>[,<op>...] <area> <delay> <power>", with a
// "level <name> <voltage> <delay> <power>" line per explicit operating
// point, immediately after the owning module). For libraries whose module
// names contain no whitespace or comment characters — all generated and
// built-in libraries — the output reparses to an equal library, which is
// what lets cdfgtool gen emit a random library that pchls -lib can
// consume.
func (l *Library) Text() string {
	var sb strings.Builder
	for i := range l.modules {
		m := &l.modules[i]
		ops := make([]string, len(m.Ops))
		for j, o := range m.Ops {
			ops[j] = o.String()
		}
		fmt.Fprintf(&sb, "module %s %s %g %d %g\n", m.Name, strings.Join(ops, ","), m.Area, m.Delay, m.Power)
		for _, lv := range m.Levels {
			fmt.Fprintf(&sb, "level %s %g %d %g\n", m.Name, lv.Voltage, lv.Delay, lv.Power)
		}
	}
	return sb.String()
}
