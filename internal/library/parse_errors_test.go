package library

import (
	"errors"
	"testing"
)

// TestParseRejectsMalformedLibraries pins down the distinct error
// classes of the two library parsers: every defect funnels through New,
// so text and JSON inputs with the same flaw must both be rejected with
// the same sentinel.
func TestParseRejectsMalformedLibraries(t *testing.T) {
	cases := []struct {
		name string
		text string
		json string
		want error
	}{
		{
			name: "zero delay",
			text: "module a + 10 0 1\n",
			json: `[{"name":"a","ops":["+"],"area":10,"delay":0,"power":1}]`,
			want: ErrBadDelay,
		},
		{
			name: "negative delay",
			text: "module a + 10 -3 1\n",
			json: `[{"name":"a","ops":["+"],"area":10,"delay":-3,"power":1}]`,
			want: ErrBadDelay,
		},
		{
			name: "negative area",
			text: "module a + -10 1 1\n",
			json: `[{"name":"a","ops":["+"],"area":-10,"delay":1,"power":1}]`,
			want: ErrBadArea,
		},
		{
			name: "infinite area",
			text: "module a + Inf 1 1\n",
			json: ``, // encoding/json already rejects out-of-range numbers; text-only case
			want: ErrBadArea,
		},
		{
			name: "negative power",
			text: "module a + 10 1 -2\n",
			json: `[{"name":"a","ops":["+"],"area":10,"delay":1,"power":-2}]`,
			want: ErrBadPower,
		},
		{
			name: "NaN power",
			text: "module a + 10 1 NaN\n",
			json: ``, // JSON has no NaN literal; text-only case
			want: ErrBadPower,
		},
		{
			name: "duplicate module name",
			text: "module a + 10 1 1\nmodule a - 10 1 1\n",
			json: `[{"name":"a","ops":["+"],"area":10,"delay":1,"power":1},{"name":"a","ops":["-"],"area":10,"delay":1,"power":1}]`,
			want: ErrDuplicateModule,
		},
	}
	for _, c := range cases {
		t.Run(c.name+"/text", func(t *testing.T) {
			_, err := ParseString(c.text)
			if !errors.Is(err, c.want) {
				t.Errorf("text parser: got %v, want %v", err, c.want)
			}
		})
		if c.json == "" {
			continue
		}
		t.Run(c.name+"/json", func(t *testing.T) {
			_, err := ParseJSON([]byte(c.json))
			if !errors.Is(err, c.want) {
				t.Errorf("JSON parser: got %v, want %v", err, c.want)
			}
		})
	}
}

// TestModuleErrorClassesAreDistinct guards against sentinel aliasing.
func TestModuleErrorClassesAreDistinct(t *testing.T) {
	sentinels := []error{ErrBadDelay, ErrBadArea, ErrBadPower, ErrDuplicateModule, ErrNoModule}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Errorf("sentinel %v aliases %v", a, b)
			}
		}
	}
}

// TestNewJoinsAllModuleDefects: a module list with several independent
// defects reports every class at once, not just the first.
func TestNewJoinsAllModuleDefects(t *testing.T) {
	_, err := ParseString("module a + -1 0 -1\nmodule b - 1 1 1\nmodule b > 1 1 1\n")
	for _, want := range []error{ErrBadArea, ErrBadDelay, ErrBadPower, ErrDuplicateModule} {
		if !errors.Is(err, want) {
			t.Errorf("joined error misses %v; got: %v", want, err)
		}
	}
}
