// Package library models the functional-unit (FU) module library used by
// the synthesizer: each module implements a set of primitive operations
// with a fixed area cost, execution delay in clock cycles, and per-cycle
// power draw while executing. The built-in default is Table 1 of
// Nielsen & Madsen (DATE 2003).
package library

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"pchls/internal/cdfg"
)

// OperatingPoint is one voltage operating point of a module: running the
// same datapath at a lower supply voltage stretches its latency and cuts
// its dynamic power (P ~ V^2), so each point trades Delay against Power
// at unchanged Area.
type OperatingPoint struct {
	// Voltage is the supply voltage in volts (> 0, finite). Voltages are
	// labels for the points and must be distinct within one module.
	Voltage float64
	// Delay is the execution latency in clock cycles at this voltage (>= 1).
	Delay int
	// Power is the per-cycle power drawn at this voltage (finite, >= 0).
	Power float64
}

// Module describes one functional-unit type.
type Module struct {
	// Name is the unique module name, e.g. "ALU" or "Mult(ser.)".
	Name string
	// Ops is the set of operations the module can execute.
	Ops []cdfg.Op
	// Area is the silicon area cost of one instance (Table 1 units). All
	// voltage levels of a module share the same area.
	Area float64
	// Delay is the execution latency in clock cycles (>= 1). An operation
	// bound to this module occupies it for Delay consecutive cycles.
	Delay int
	// Power is the power drawn in each cycle the module is executing
	// (Table 1 units). Idle modules draw no power in this model.
	Power float64
	// Levels, when non-empty, is the COMPLETE set of voltage operating
	// points of the module; Levels[0] is the nominal point and New
	// normalizes Delay and Power to it. Empty Levels means one implicit
	// nominal point {Voltage: 1, Delay, Power} — the classic single-level
	// module, byte-identical to libraries that predate voltage scaling.
	Levels []OperatingPoint
}

// Implements reports whether the module can execute op.
func (m *Module) Implements(op cdfg.Op) bool {
	for _, o := range m.Ops {
		if o == op {
			return true
		}
	}
	return false
}

// Energy returns the total energy one execution consumes at the nominal
// operating point (Power x Delay cycles).
func (m *Module) Energy() float64 { return m.Power * float64(m.Delay) }

// NumLevels returns the number of voltage operating points (>= 1; a
// module without explicit Levels has the single implicit nominal point).
func (m *Module) NumLevels() int {
	if len(m.Levels) == 0 {
		return 1
	}
	return len(m.Levels)
}

// Level returns the i'th operating point. For a module without explicit
// Levels, level 0 is the implicit nominal point at 1 volt.
func (m *Module) Level(i int) OperatingPoint {
	if len(m.Levels) == 0 {
		if i != 0 {
			panic(fmt.Sprintf("library: module %q has 1 level, level %d requested", m.Name, i))
		}
		return OperatingPoint{Voltage: 1, Delay: m.Delay, Power: m.Power}
	}
	return m.Levels[i]
}

// MultiLevel reports whether the module has more than one operating point.
func (m *Module) MultiLevel() bool { return len(m.Levels) > 1 }

// String returns a compact human-readable description.
func (m *Module) String() string {
	ops := make([]string, len(m.Ops))
	for i, o := range m.Ops {
		ops[i] = o.String()
	}
	return fmt.Sprintf("%s{%s} area=%g delay=%d power=%g", m.Name, strings.Join(ops, ","), m.Area, m.Delay, m.Power)
}

// validate checks a single module's fields.
func (m *Module) validate() error {
	var errs []error
	if m.Name == "" {
		errs = append(errs, errors.New("library: module with empty name"))
	}
	if len(m.Ops) == 0 {
		errs = append(errs, fmt.Errorf("library: module %q implements no operations", m.Name))
	}
	seen := map[cdfg.Op]bool{}
	for _, o := range m.Ops {
		if !o.Valid() {
			errs = append(errs, fmt.Errorf("library: module %q: invalid operation", m.Name))
		}
		if seen[o] {
			errs = append(errs, fmt.Errorf("library: module %q: duplicate operation %s", m.Name, o))
		}
		seen[o] = true
	}
	if m.Area < 0 || math.IsNaN(m.Area) || math.IsInf(m.Area, 0) {
		errs = append(errs, fmt.Errorf("library: module %q: area %v: %w", m.Name, m.Area, ErrBadArea))
	}
	if m.Delay < 1 {
		errs = append(errs, fmt.Errorf("library: module %q: delay %d: %w", m.Name, m.Delay, ErrBadDelay))
	}
	if m.Power < 0 || math.IsNaN(m.Power) || math.IsInf(m.Power, 0) {
		errs = append(errs, fmt.Errorf("library: module %q: power %v: %w", m.Name, m.Power, ErrBadPower))
	}
	voltages := map[float64]bool{}
	for i, lv := range m.Levels {
		if lv.Voltage <= 0 || math.IsNaN(lv.Voltage) || math.IsInf(lv.Voltage, 0) {
			errs = append(errs, fmt.Errorf("library: module %q level %d: voltage %v: %w", m.Name, i, lv.Voltage, ErrBadVoltage))
		}
		if lv.Delay < 1 {
			errs = append(errs, fmt.Errorf("library: module %q level %d: delay %d: %w", m.Name, i, lv.Delay, ErrBadDelay))
		}
		if lv.Power < 0 || math.IsNaN(lv.Power) || math.IsInf(lv.Power, 0) {
			errs = append(errs, fmt.Errorf("library: module %q level %d: power %v: %w", m.Name, i, lv.Power, ErrBadPower))
		}
		if voltages[lv.Voltage] {
			errs = append(errs, fmt.Errorf("library: module %q: voltage %v: %w", m.Name, lv.Voltage, ErrDuplicateLevel))
		}
		voltages[lv.Voltage] = true
	}
	return errors.Join(errs...)
}

// Library is an immutable, validated collection of modules. Build one with
// New or Parse, or use Table1.
type Library struct {
	modules []Module
	byName  map[string]int
	byOp    map[cdfg.Op][]int // module indices implementing each op, in declaration order
}

// ErrNoModule is wrapped by lookups that find no module for an operation.
var ErrNoModule = errors.New("no module implements operation")

// The distinct module-validation failure classes, wrapped by New (and
// therefore by every parser, which funnels through New) so callers can
// classify rejects with errors.Is.
var (
	// ErrBadDelay marks a module whose delay is not at least one cycle.
	ErrBadDelay = errors.New("module delay must be >= 1 cycle")
	// ErrBadArea marks a module whose area is negative, NaN or infinite.
	ErrBadArea = errors.New("module area must be finite and non-negative")
	// ErrBadPower marks a module whose per-cycle power is negative, NaN or
	// infinite.
	ErrBadPower = errors.New("module power must be finite and non-negative")
	// ErrDuplicateModule marks a reused module name.
	ErrDuplicateModule = errors.New("duplicate module name")
	// ErrBadVoltage marks an operating point whose supply voltage is not a
	// positive finite number.
	ErrBadVoltage = errors.New("operating-point voltage must be finite and positive")
	// ErrDuplicateLevel marks a module listing two operating points at the
	// same supply voltage.
	ErrDuplicateLevel = errors.New("duplicate operating-point voltage")
	// ErrUnknownLevelModule marks a level declaration that references a
	// module the library does not define.
	ErrUnknownLevelModule = errors.New("level references unknown module")
)

// New builds a validated library from the given modules. Module order is
// preserved and is the deterministic iteration order everywhere.
func New(modules []Module) (*Library, error) {
	l := &Library{
		modules: append([]Module(nil), modules...),
		byName:  make(map[string]int, len(modules)),
		byOp:    make(map[cdfg.Op][]int),
	}
	var errs []error
	for i := range l.modules {
		m := &l.modules[i]
		// A module with explicit Levels is defined by them: the top-level
		// Delay/Power mirror the nominal point Levels[0] so every consumer
		// that ignores voltage scaling sees the nominal behaviour.
		if len(m.Levels) > 0 {
			m.Levels = append([]OperatingPoint(nil), m.Levels...)
			m.Delay = m.Levels[0].Delay
			m.Power = m.Levels[0].Power
		}
		if err := m.validate(); err != nil {
			errs = append(errs, err)
			continue
		}
		if _, dup := l.byName[m.Name]; dup {
			errs = append(errs, fmt.Errorf("library: module %q: %w", m.Name, ErrDuplicateModule))
			continue
		}
		l.byName[m.Name] = i
		for _, o := range m.Ops {
			l.byOp[o] = append(l.byOp[o], i)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if len(l.modules) == 0 {
		return nil, errors.New("library: empty module list")
	}
	return l, nil
}

// MustNew is New that panics on error; for statically-known-good libraries.
func MustNew(modules []Module) *Library {
	l, err := New(modules)
	if err != nil {
		panic(err)
	}
	return l
}

// Len returns the number of modules.
func (l *Library) Len() int { return len(l.modules) }

// Modules returns a copy of the module list in declaration order.
func (l *Library) Modules() []Module {
	out := make([]Module, len(l.modules))
	copy(out, l.modules)
	return out
}

// Module returns the i'th module (declaration order).
func (l *Library) Module(i int) *Module { return &l.modules[i] }

// Lookup returns the module with the given name.
func (l *Library) Lookup(name string) (*Module, bool) {
	i, ok := l.byName[name]
	if !ok {
		return nil, false
	}
	return &l.modules[i], true
}

// Candidates returns the indices of all modules implementing op, in
// declaration order. The returned slice is owned by the library.
func (l *Library) Candidates(op cdfg.Op) []int { return l.byOp[op] }

// Fastest returns the minimum-delay module implementing op, breaking ties
// by smaller area, then declaration order.
func (l *Library) Fastest(op cdfg.Op) (*Module, error) {
	return l.selectBy(op, func(a, b *Module) bool {
		if a.Delay != b.Delay {
			return a.Delay < b.Delay
		}
		return a.Area < b.Area
	})
}

// Smallest returns the minimum-area module implementing op, breaking ties
// by smaller delay, then declaration order.
func (l *Library) Smallest(op cdfg.Op) (*Module, error) {
	return l.selectBy(op, func(a, b *Module) bool {
		if a.Area != b.Area {
			return a.Area < b.Area
		}
		return a.Delay < b.Delay
	})
}

// LowestPower returns the minimum-power module implementing op, breaking
// ties by smaller area, then declaration order.
func (l *Library) LowestPower(op cdfg.Op) (*Module, error) {
	return l.selectBy(op, func(a, b *Module) bool {
		if a.Power != b.Power {
			return a.Power < b.Power
		}
		return a.Area < b.Area
	})
}

func (l *Library) selectBy(op cdfg.Op, less func(a, b *Module) bool) (*Module, error) {
	cand := l.byOp[op]
	if len(cand) == 0 {
		return nil, fmt.Errorf("library: operation %s: %w", op, ErrNoModule)
	}
	best := &l.modules[cand[0]]
	for _, i := range cand[1:] {
		if less(&l.modules[i], best) {
			best = &l.modules[i]
		}
	}
	return best, nil
}

// Covers reports whether every operation used by the graph has at least one
// implementing module, returning the uncovered operations otherwise.
func (l *Library) Covers(g *cdfg.Graph) (missing []cdfg.Op) {
	counts := g.OpCounts()
	ops := make([]cdfg.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		if len(l.byOp[op]) == 0 {
			missing = append(missing, op)
		}
	}
	return missing
}

// MinPowerFloor returns the smallest per-cycle power budget under which the
// graph could possibly be scheduled: the maximum over operations of the
// minimum module power for that operation. Any budget below this makes some
// single operation unschedulable.
func (l *Library) MinPowerFloor(g *cdfg.Graph) (float64, error) {
	floor := 0.0
	counts := g.OpCounts()
	ops := make([]cdfg.Op, 0, len(counts))
	for op := range counts {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		m, err := l.LowestPower(op)
		if err != nil {
			return 0, err
		}
		if m.Power > floor {
			floor = m.Power
		}
	}
	return floor, nil
}

// MaxDelay returns the largest module delay in the library, over every
// voltage operating point.
func (l *Library) MaxDelay() int {
	d := 1
	for i := range l.modules {
		m := &l.modules[i]
		for li := 0; li < m.NumLevels(); li++ {
			if lv := m.Level(li); lv.Delay > d {
				d = lv.Delay
			}
		}
	}
	return d
}

// MultiLevel reports whether any module has more than one voltage
// operating point — i.e. whether Expand would change the library.
func (l *Library) MultiLevel() bool {
	for i := range l.modules {
		if l.modules[i].MultiLevel() {
			return true
		}
	}
	return false
}

// Expand lowers voltage scaling into module selection: every module with
// k > 1 operating points becomes k single-level modules named
// "<name>@<voltage>V", each carrying its level's delay and power at the
// base module's area, in level order. The synthesis engine then chooses
// an operating point exactly the way it chooses a module candidate, and
// its flat (node x module) scratch tables gain the level dimension for
// free. Single-level modules are kept verbatim, and a library with no
// multi-level module returns the receiver itself — voltage-free inputs
// are byte-identical through every downstream path by construction.
func (l *Library) Expand() (*Library, error) {
	if !l.MultiLevel() {
		return l, nil
	}
	var mods []Module
	for i := range l.modules {
		m := &l.modules[i]
		if !m.MultiLevel() {
			mods = append(mods, *m)
			continue
		}
		for _, lv := range m.Levels {
			mods = append(mods, Module{
				Name:   fmt.Sprintf("%s@%gV", m.Name, lv.Voltage),
				Ops:    m.Ops,
				Area:   m.Area,
				Delay:  lv.Delay,
				Power:  lv.Power,
				Levels: []OperatingPoint{lv},
			})
		}
	}
	el, err := New(mods)
	if err != nil {
		return nil, fmt.Errorf("library: expanding voltage levels: %w", err)
	}
	return el, nil
}

// Table renders the library as an aligned text table mirroring the paper's
// Table 1 (Module, Oprs, Area, Clk-cyc., P).
func (l *Library) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %8s %8s %6s\n", "Module", "Oprs", "Area", "Clk-cyc.", "P")
	for i := range l.modules {
		m := &l.modules[i]
		ops := make([]string, len(m.Ops))
		for j, o := range m.Ops {
			ops[j] = o.String()
		}
		fmt.Fprintf(&sb, "%-12s %-10s %8g %8d %6g\n", m.Name, "{"+strings.Join(ops, ",")+"}", m.Area, m.Delay, m.Power)
	}
	return sb.String()
}

// Parse reads a library from a line-oriented text format:
//
//	# comment
//	module <name> <op>[,<op>...] <area> <delay> <power>
//	level <name> <voltage> <delay> <power>
//
// e.g. "module ALU +,-,> 97 1 2.5". Level lines declare voltage operating
// points for a module declared elsewhere in the file (any order); when a
// module has level lines they are its complete operating-point set in file
// order, the first being the nominal point the module line's delay and
// power are normalized to.
func Parse(r io.Reader) (*Library, error) {
	var mods []Module
	var order []string                      // module names with levels, first-reference order
	levels := map[string][]OperatingPoint{} // module name -> operating points in file order
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "level" {
			if len(fields) != 5 {
				return nil, fmt.Errorf("library: line %d: want \"level <module> <voltage> <delay> <power>\", got %q", lineNo, line)
			}
			voltage, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("library: line %d: bad voltage %q: %w", lineNo, fields[2], err)
			}
			delay, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("library: line %d: bad delay %q: %w", lineNo, fields[3], err)
			}
			power, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("library: line %d: bad power %q: %w", lineNo, fields[4], err)
			}
			if _, seen := levels[fields[1]]; !seen {
				order = append(order, fields[1])
			}
			levels[fields[1]] = append(levels[fields[1]], OperatingPoint{Voltage: voltage, Delay: delay, Power: power})
			continue
		}
		if fields[0] != "module" || len(fields) != 6 {
			return nil, fmt.Errorf("library: line %d: want \"module <name> <ops> <area> <delay> <power>\", got %q", lineNo, line)
		}
		var ops []cdfg.Op
		for _, tok := range strings.Split(fields[2], ",") {
			op, err := cdfg.ParseOp(tok)
			if err != nil {
				return nil, fmt.Errorf("library: line %d: %w", lineNo, err)
			}
			ops = append(ops, op)
		}
		area, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("library: line %d: bad area %q: %w", lineNo, fields[3], err)
		}
		delay, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("library: line %d: bad delay %q: %w", lineNo, fields[4], err)
		}
		power, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return nil, fmt.Errorf("library: line %d: bad power %q: %w", lineNo, fields[5], err)
		}
		mods = append(mods, Module{Name: fields[1], Ops: ops, Area: area, Delay: delay, Power: power})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("library: reading input: %w", err)
	}
	if len(levels) > 0 {
		byName := map[string]int{}
		for i := range mods {
			byName[mods[i].Name] = i
		}
		for _, name := range order {
			i, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("library: level for %q: %w", name, ErrUnknownLevelModule)
			}
			mods[i].Levels = levels[name]
		}
	}
	return New(mods)
}

// ParseString is Parse over a string.
func ParseString(s string) (*Library, error) { return Parse(strings.NewReader(s)) }
