package library_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

func multiLevelModules() []library.Module {
	return []library.Module{
		{Name: "add", Ops: []cdfg.Op{cdfg.Add}, Area: 50, Levels: []library.OperatingPoint{
			{Voltage: 5, Delay: 1, Power: 8},
			{Voltage: 3.3, Delay: 2, Power: 3.5},
			{Voltage: 2.4, Delay: 3, Power: 1.8},
		}},
		{Name: "mul", Ops: []cdfg.Op{cdfg.Mul}, Area: 600, Delay: 2, Power: 25},
		{Name: "io", Ops: []cdfg.Op{cdfg.Input, cdfg.Output}, Area: 0, Delay: 1, Power: 1},
	}
}

// TestNewNormalizesToNominalLevel: a module with explicit Levels is
// defined by them — New mirrors Delay/Power from Levels[0] regardless of
// what the caller set, and defensively copies the slice.
func TestNewNormalizesToNominalLevel(t *testing.T) {
	mods := multiLevelModules()
	mods[0].Delay = 99 // lies; Levels[0] is authoritative
	mods[0].Power = 99
	levels := mods[0].Levels
	lib, err := library.New(mods)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := lib.Lookup("add")
	if m.Delay != 1 || m.Power != 8 {
		t.Errorf("nominal delay/power = %d/%g, want 1/8 (normalized from Levels[0])", m.Delay, m.Power)
	}
	levels[0].Delay = 77 // caller's slice must not alias the library's
	if m.Level(0).Delay != 1 {
		t.Error("library aliases the caller's Levels slice")
	}
	if got := m.NumLevels(); got != 3 {
		t.Errorf("NumLevels = %d, want 3", got)
	}
	if !m.MultiLevel() || !lib.MultiLevel() {
		t.Error("module and library must report MultiLevel")
	}
	single, _ := lib.Lookup("mul")
	if single.MultiLevel() {
		t.Error("mul has no explicit levels but reports MultiLevel")
	}
	if lv := single.Level(0); lv.Voltage != 1 || lv.Delay != 2 || lv.Power != 25 {
		t.Errorf("implicit nominal level = %+v, want {1 2 25}", lv)
	}
}

// TestLevelSentinelErrors classifies every level-validation failure.
func TestLevelSentinelErrors(t *testing.T) {
	base := func() []library.Module { return multiLevelModules() }
	cases := []struct {
		name   string
		mutate func([]library.Module)
		want   error
	}{
		{"zero voltage", func(m []library.Module) { m[0].Levels[1].Voltage = 0 }, library.ErrBadVoltage},
		{"negative voltage", func(m []library.Module) { m[0].Levels[2].Voltage = -2.4 }, library.ErrBadVoltage},
		{"duplicate voltage", func(m []library.Module) { m[0].Levels[1].Voltage = 5 }, library.ErrDuplicateLevel},
		{"zero level delay", func(m []library.Module) { m[0].Levels[1].Delay = 0 }, library.ErrBadDelay},
		{"negative level power", func(m []library.Module) { m[0].Levels[1].Power = -1 }, library.ErrBadPower},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mods := base()
			tc.mutate(mods)
			if _, err := library.New(mods); !errors.Is(err, tc.want) {
				t.Errorf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestLevelTextRoundTrip: Text() emits one "level" line per explicit
// operating point and Parse reconstructs the identical library.
func TestLevelTextRoundTrip(t *testing.T) {
	lib := library.MustNew(multiLevelModules())
	text := lib.Text()
	if got := strings.Count(text, "\nlevel add "); got != 3 {
		t.Fatalf("%d level lines for add, want 3:\n%s", got, text)
	}
	back, err := library.ParseString(text)
	if err != nil {
		t.Fatalf("reparsing own Text(): %v\n%s", err, text)
	}
	if back.Text() != text {
		t.Errorf("text round trip not a fixed point:\n%s\nvs\n%s", text, back.Text())
	}
	m, _ := back.Lookup("add")
	if m.NumLevels() != 3 || m.Level(1) != (library.OperatingPoint{Voltage: 3.3, Delay: 2, Power: 3.5}) {
		t.Errorf("levels lost in round trip: %+v", m.Levels)
	}
}

// TestLevelJSONRoundTrip mirrors the text round trip for the JSON form
// the server's "library" request field uses.
func TestLevelJSONRoundTrip(t *testing.T) {
	lib := library.MustNew(multiLevelModules())
	data, err := lib.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"levels"`) {
		t.Fatalf("JSON lacks levels field: %s", data)
	}
	back, err := library.ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := back.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != string(data) {
		t.Errorf("JSON round trip not a fixed point:\n%s\nvs\n%s", data, data2)
	}
	if _, err := library.ParseJSON([]byte(`[{"name":"a","ops":["+"],"area":1,"delay":1,"power":1,` +
		`"levels":[{"voltage":0,"delay":1,"power":1}]}]`)); !errors.Is(err, library.ErrBadVoltage) {
		t.Errorf("bad JSON voltage: got %v, want ErrBadVoltage", err)
	}
}

// TestLevelUnknownModule: a "level" line naming an undefined module is a
// classified parse error.
func TestLevelUnknownModule(t *testing.T) {
	_, err := library.ParseString("module add + 50 1 8\nlevel ghost 3.3 2 3\n")
	if !errors.Is(err, library.ErrUnknownLevelModule) {
		t.Errorf("got %v, want ErrUnknownLevelModule", err)
	}
}

// TestExpandLowersLevelsToSingleLevelModules: Expand is the lowering the
// synthesizer relies on — one module per operating point, named
// "<name>@<voltage>V", sharing the original's ops and area; a library
// without multi-level modules is returned unchanged (same pointer, the
// backward-compatibility fast path).
func TestExpandLowersLevelsToSingleLevelModules(t *testing.T) {
	single := library.Table1()
	if got, err := single.Expand(); err != nil || got != single {
		t.Fatalf("single-level Expand = (%p, %v), want the receiver %p back", got, err, single)
	}

	lib := library.MustNew(multiLevelModules())
	flat, err := lib.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if flat.MultiLevel() {
		t.Error("expanded library still reports MultiLevel")
	}
	if got, want := flat.Len(), 5; got != want { // 3 add points + mul + io
		t.Fatalf("expanded Len = %d, want %d", got, want)
	}
	for _, spec := range []struct {
		name  string
		delay int
		power float64
	}{
		{"add@5V", 1, 8}, {"add@3.3V", 2, 3.5}, {"add@2.4V", 3, 1.8},
	} {
		m, ok := flat.Lookup(spec.name)
		if !ok {
			t.Fatalf("expanded library lacks %q (have %v)", spec.name, names(flat))
		}
		if m.Delay != spec.delay || m.Power != spec.power || m.Area != 50 {
			t.Errorf("%s = delay %d power %g area %g, want %d/%g/50", spec.name, m.Delay, m.Power, m.Area, spec.delay, spec.power)
		}
		if !m.Implements(cdfg.Add) {
			t.Errorf("%s lost the add op", spec.name)
		}
	}
	if _, ok := flat.Lookup("mul"); !ok {
		t.Error("single-level module renamed by Expand")
	}
	// Idempotent: the expanded library is single-level, so a second
	// Expand is the identity.
	again, err := flat.Expand()
	if err != nil || again != flat {
		t.Errorf("Expand not idempotent: (%p, %v) vs %p", again, err, flat)
	}
}

func names(l *library.Library) []string {
	var out []string
	for _, m := range l.Modules() {
		out = append(out, m.Name)
	}
	return out
}

// TestExpandedCandidatesOrder: lowering preserves candidate order —
// operating points of one module stay adjacent, in declaration order, so
// the synthesizer's deterministic tie-breaks survive the lowering.
func TestExpandedCandidatesOrder(t *testing.T) {
	lib := library.MustNew(multiLevelModules())
	flat, err := lib.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, i := range flat.Candidates(cdfg.Add) {
		got = append(got, flat.Module(i).Name)
	}
	want := fmt.Sprintf("%v", []string{"add@5V", "add@3.3V", "add@2.4V"})
	if fmt.Sprintf("%v", got) != want {
		t.Errorf("candidates = %v, want %s", got, want)
	}
}
