package library

import "testing"

// FuzzParse exercises the library text parser with arbitrary input: it
// must never panic, and anything it accepts must be a validated library.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"module ALU +,-,> 97 1 2.5\n",
		"module m * 103 4 2.7\nmodule in imp 16 1 0.2\n",
		"module x + -1 1 1\n",
		"module x + 1 0 1\n",
		"module x + 1 1 nan\n",
		"module x %% 1 1 1\n",
		"# comment\nmodule a + 1 1 1 ; trailing\n",
		"module dup + 1 1 1\nmodule dup - 1 1 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		lib, err := ParseString(input)
		if err != nil {
			return
		}
		if lib.Len() == 0 {
			t.Fatalf("parser accepted an empty library\ninput: %q", input)
		}
		for i := 0; i < lib.Len(); i++ {
			m := lib.Module(i)
			if m.Delay < 1 || m.Area < 0 || m.Power < 0 || len(m.Ops) == 0 {
				t.Fatalf("parser accepted invalid module %v\ninput: %q", m, input)
			}
		}
	})
}
