package library

import "testing"

// FuzzParse exercises the library text parser with arbitrary input: it
// must never panic, anything it accepts must be a validated library
// (including every voltage operating point), and an accepted library
// must round trip through its own Text() rendering unchanged.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"module ALU +,-,> 97 1 2.5\n",
		"module m * 103 4 2.7\nmodule in imp 16 1 0.2\n",
		"module x + -1 1 1\n",
		"module x + 1 0 1\n",
		"module x + 1 1 nan\n",
		"module x %% 1 1 1\n",
		"# comment\nmodule a + 1 1 1 ; trailing\n",
		"module dup + 1 1 1\nmodule dup - 1 1 1\n",
		"module a + 50 1 8\nlevel a 5 1 8\nlevel a 3.3 2 3.5\n",
		"module a + 50 1 8\nlevel ghost 3.3 2 3.5\n",
		"module a + 50 1 8\nlevel a 0 1 8\n",
		"module a + 50 1 8\nlevel a 5 1 8\nlevel a 5 2 3\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		lib, err := ParseString(input)
		if err != nil {
			return
		}
		if lib.Len() == 0 {
			t.Fatalf("parser accepted an empty library\ninput: %q", input)
		}
		for i := 0; i < lib.Len(); i++ {
			m := lib.Module(i)
			if m.Delay < 1 || m.Area < 0 || m.Power < 0 || len(m.Ops) == 0 {
				t.Fatalf("parser accepted invalid module %v\ninput: %q", m, input)
			}
			for l := 0; l < m.NumLevels(); l++ {
				lv := m.Level(l)
				if !(lv.Voltage > 0) || lv.Delay < 1 || lv.Power < 0 {
					t.Fatalf("parser accepted invalid level %v of module %v\ninput: %q", lv, m, input)
				}
			}
		}
		text := lib.Text()
		lib2, err := ParseString(text)
		if err != nil {
			t.Fatalf("accepted library does not reparse: %v\ntext: %q\ninput: %q", err, text, input)
		}
		if lib2.Text() != text {
			t.Fatalf("round trip is not canonical:\n%s\nvs\n%s\ninput: %q", text, lib2.Text(), input)
		}
	})
}
