package library

import "testing"

// FuzzParseJSON exercises the JSON library decoder — the optional
// "library" field of synthesis service requests — with arbitrary bytes:
// it must never panic, anything it accepts must satisfy every module
// validation rule, and accepted libraries must round trip through
// marshal/unmarshal byte-identically (marshaling is canonical).
func FuzzParseJSON(f *testing.F) {
	seeds := []string{
		``,
		`[]`,
		`[{"name":"add","ops":["+"],"area":87,"delay":1,"power":2.5}]`,
		`[{"name":"ALU","ops":["+","-",">"],"area":97,"delay":1,"power":2.5},{"name":"mul","ops":["*"],"area":103,"delay":4,"power":2.7}]`,
		`[{"name":"bad","ops":["?"],"area":1,"delay":1,"power":1}]`,
		`[{"name":"neg","ops":["+"],"area":-1,"delay":1,"power":1}]`,
		`[{"name":"zero","ops":["+"],"area":1,"delay":0,"power":1}]`,
		`[{"name":"dup","ops":["+"],"area":1,"delay":1,"power":1},{"name":"dup","ops":["-"],"area":1,"delay":1,"power":1}]`,
		`[{"name":"nan","ops":["+"],"area":1e999,"delay":1,"power":1}]`,
		`{"not":"a list"}`,
		`[{`,
		`[{"name":"add","ops":["+"],"area":50,"delay":1,"power":8,"levels":[{"voltage":5,"delay":1,"power":8},{"voltage":3.3,"delay":2,"power":3.5}]}]`,
		`[{"name":"add","ops":["+"],"area":50,"delay":1,"power":8,"levels":[{"voltage":0,"delay":1,"power":8}]}]`,
		`[{"name":"add","ops":["+"],"area":50,"delay":1,"power":8,"levels":[{"voltage":5,"delay":1,"power":8},{"voltage":5,"delay":2,"power":3}]}]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ParseJSON(data)
		if err != nil {
			return
		}
		out, err := l.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted library does not marshal: %v", err)
		}
		l2, err := ParseJSON(out)
		if err != nil {
			t.Fatalf("marshaled library does not reparse: %v\njson: %s", err, out)
		}
		out2, err := l2.MarshalJSON()
		if err != nil {
			t.Fatalf("reparsed library does not marshal: %v", err)
		}
		if string(out) != string(out2) {
			t.Fatalf("round trip is not canonical:\n%s\nvs\n%s", out, out2)
		}
	})
}
