package library

import "pchls/internal/cdfg"

// Table 1 module names, exported so callers can select variants by name
// without hard-coding strings.
const (
	NameAdd    = "add"
	NameSub    = "sub"
	NameComp   = "comp"
	NameALU    = "ALU"
	NameMulSer = "Mult(ser.)"
	NameMulPar = "Mult(par.)"
	NameInput  = "input"
	NameOutput = "output"
)

// table1Modules is the functional-unit library of the paper's Table 1,
// verbatim: module name, implemented operations, area, clock cycles, and
// per-cycle power.
var table1Modules = []Module{
	{Name: NameAdd, Ops: []cdfg.Op{cdfg.Add}, Area: 87, Delay: 1, Power: 2.5},
	{Name: NameSub, Ops: []cdfg.Op{cdfg.Sub}, Area: 87, Delay: 1, Power: 2.5},
	{Name: NameComp, Ops: []cdfg.Op{cdfg.Cmp}, Area: 8, Delay: 1, Power: 2.5},
	{Name: NameALU, Ops: []cdfg.Op{cdfg.Add, cdfg.Sub, cdfg.Cmp}, Area: 97, Delay: 1, Power: 2.5},
	{Name: NameMulSer, Ops: []cdfg.Op{cdfg.Mul}, Area: 103, Delay: 4, Power: 2.7},
	{Name: NameMulPar, Ops: []cdfg.Op{cdfg.Mul}, Area: 339, Delay: 2, Power: 8.1},
	{Name: NameInput, Ops: []cdfg.Op{cdfg.Input}, Area: 16, Delay: 1, Power: 0.2},
	{Name: NameOutput, Ops: []cdfg.Op{cdfg.Output}, Area: 16, Delay: 1, Power: 1.7},
}

// Table1 returns the paper's functional-unit library (Table 1). Each call
// returns a fresh Library; the underlying data is immutable.
func Table1() *Library { return MustNew(table1Modules) }

// Table1Without returns Table 1 with the named modules removed, for library
// ablations (e.g. serial-only or parallel-only multipliers, or no ALU).
// Unknown names are ignored.
func Table1Without(names ...string) (*Library, error) {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	var keep []Module
	for _, m := range table1Modules {
		if !drop[m.Name] {
			keep = append(keep, m)
		}
	}
	return New(keep)
}
