// Package portfolio is the anytime, feedback-guided synthesis layer on
// top of the greedy engine (internal/core): it races K perturbed greedy
// passes in parallel, keeps the best verified design as the incumbent,
// and then re-explores the incumbent's worst subgraph exhaustively,
// splicing improved fragments back in. Candidates must beat the incumbent
// AND pass the independent validator (internal/verify) before adoption,
// so every quality improvement is provably sound.
//
// The search is organized in rounds. Each round:
//
//  1. runs K perturbed passes (seeded priority-order jitter, candidate-tie
//     reshuffling, pasap/palap direction mixing, selection-policy and
//     peak-shaving variation) concurrently on internal/runner, each pass
//     racing the incumbent bound: a pass whose committed functional-unit
//     area reaches the bound aborts with core.ErrDominated;
//  2. adopts the best verified pass design, if it improves the incumbent;
//  3. extracts the incumbent's worst-mobility / highest-area-contribution
//     subgraph (<= SubgraphMax nodes) and re-synthesizes it exhaustively
//     in the context of the rest of the design, splicing the fragment
//     back when the rebuilt, re-verified design is better.
//
// Rounds repeat until a round yields no improvement or Budget rounds have
// run. The incumbent bound lives in an atomic cell shared with the
// workers, but it is published only at round barriers and adoption is a
// deterministic in-order scan of the round's results — so the outcome is
// a pure function of (inputs, Config), byte-identical across runs and
// worker counts. See DESIGN.md §12 for why publication is quantized.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/runner"
	"pchls/internal/sched"
	"pchls/internal/verify"
)

// areaEps separates strictly better areas from float noise, matching the
// engine's comparison slack.
const areaEps = 1e-9

// Config tunes the anytime portfolio.
type Config struct {
	// K is the number of perturbed greedy passes per round (<= 0: 8).
	K int
	// Budget is the maximum number of improvement rounds (<= 0: 2); the
	// loop also stops early after any round without improvement.
	Budget int
	// Seed selects the perturbation streams; the full result is a pure
	// function of (inputs, Config), so a fixed seed fixes the output.
	Seed int64
	// SubgraphMax bounds the re-explored subgraph (<= 0 or > 8: 8, the
	// exhaustive search's tractability limit).
	SubgraphMax int
	// MaxExpansions bounds the splice search tree per round (<= 0: 2e6).
	// Exhausting it keeps the best fragment found so far — the incumbent
	// seeds the bound, so a truncated search can only improve on it.
	MaxExpansions int
	// Workers bounds how many passes run concurrently: 0 uses GOMAXPROCS,
	// 1 is serial. The result is identical for every setting.
	Workers int
	// Core is the base engine configuration every pass derives from.
	Core core.Config
	// InFlight, when non-nil, tracks the number of passes currently
	// executing (an obs.Gauge in the server).
	InFlight runner.Gauge
}

func (cfg Config) withDefaults() Config {
	if cfg.K <= 0 {
		cfg.K = 8
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 2
	}
	if cfg.SubgraphMax <= 0 || cfg.SubgraphMax > 8 {
		cfg.SubgraphMax = 8
	}
	if cfg.MaxExpansions <= 0 {
		cfg.MaxExpansions = 2_000_000
	}
	return cfg
}

// Result is the outcome of one portfolio synthesis.
type Result struct {
	// Design is the best verified design found (never worse than the
	// single greedy pass whenever that pass is feasible).
	Design *core.Design
	// BaselineArea and BaselinePeak are the single greedy pass's total
	// area and peak power (zero when the single pass is infeasible).
	BaselineArea float64
	BaselinePeak float64
	// Improved reports whether Design strictly beats the baseline area.
	Improved bool
	// Rounds is the number of improvement rounds executed.
	Rounds int
	// Passes counts perturbed passes run; Aborted counts those cut off by
	// the incumbent bound (core.ErrDominated); Infeasible counts those
	// that found no design under their (possibly tightened) constraints.
	Passes     int
	Aborted    int
	Infeasible int
	// PassImprovements and SpliceImprovements count incumbent adoptions
	// by source; Splices counts subgraph re-explorations attempted.
	PassImprovements   int
	Splices            int
	SpliceImprovements int
}

// Gap is the relative area improvement over the single-pass baseline in
// [0, 1); 0 when the baseline was infeasible or not improved.
func (r *Result) Gap() float64 {
	if r.BaselineArea <= 0 || r.Design == nil {
		return 0
	}
	gap := (r.BaselineArea - r.Design.Area()) / r.BaselineArea
	if gap < 0 {
		return 0
	}
	return gap
}

// bound is the shared incumbent area bound: an atomic float64 the main
// loop publishes to at round barriers and pass-spec construction reads
// from. Monotone non-increasing.
type bound struct{ bits atomic.Uint64 }

func (b *bound) store(v float64) { b.bits.Store(math.Float64bits(v)) }
func (b *bound) load() float64   { return math.Float64frombits(b.bits.Load()) }

// passOutcome carries one pass's design or failure as data, so the worker
// pool treats an infeasible or dominated pass as a result, not an error.
type passOutcome struct {
	d   *core.Design
	err error
}

// Synthesize runs the anytime portfolio. The returned design always
// satisfies cons and passes the independent validator; when the single
// greedy pass is feasible, the result's area is never worse than it.
func Synthesize(g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg Config) (*Result, error) {
	return SynthesizeContext(context.Background(), g, lib, cons, cfg)
}

// SynthesizeContext is Synthesize with cancellation: ctx aborts the
// portfolio between synthesis runs.
func SynthesizeContext(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	var inc *core.Design
	var incBound bound
	incBound.store(math.Inf(1))

	// The single greedy pass is the paper's algorithm and the QoR
	// baseline; it seeds the incumbent, which guarantees the portfolio
	// never returns anything worse.
	baseline, baseErr := core.Synthesize(g, lib, cons, cfg.Core)
	switch {
	case baseErr == nil:
		if err := checkAdoption(baseline); err != nil {
			return nil, err
		}
		inc = baseline
		res.BaselineArea = baseline.Area()
		res.BaselinePeak = baseline.Schedule.PeakPower()
		incBound.store(inc.Area())
	case errors.Is(baseErr, core.ErrInfeasible):
		// Perturbed passes search different orderings and may still find a
		// design where the default greedy gave up.
	default:
		return nil, baseErr
	}

	for round := 0; round < cfg.Budget; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		improved := false
		res.Rounds = round + 1

		// Phase 1: K perturbed passes against the round-start bound. The
		// bound is read once here — not mid-pass — so every pass's abort
		// behaviour is a pure function of the round-start incumbent.
		roundBound := incBound.load()
		specs := make([]passSpec, cfg.K)
		for i := range specs {
			specs[i] = cfg.passSpec(round, i, roundBound, cons, inc)
		}
		outcomes, err := runner.Map(ctx, cfg.K, runner.Config{Workers: cfg.Workers, InFlight: cfg.InFlight},
			func(_ context.Context, i int) (passOutcome, error) {
				d, err := core.Synthesize(g, lib, specs[i].cons, specs[i].cfg)
				return passOutcome{d, err}, nil
			})
		if err != nil {
			return nil, err
		}
		res.Passes += len(outcomes)
		// Deterministic adoption: scan results in pass order after the
		// barrier; ties keep the earlier design.
		for _, out := range outcomes {
			switch {
			case out.err == nil:
				// The pass may have run under a tightened internal cap; the
				// design satisfies the original constraints, which it reports.
				out.d.Cons = cons
				if inc == nil || out.d.Area() < inc.Area()-areaEps {
					if err := checkAdoption(out.d); err != nil {
						return nil, err
					}
					inc = out.d
					improved = true
					res.PassImprovements++
				}
			case errors.Is(out.err, core.ErrDominated):
				res.Aborted++
			case errors.Is(out.err, core.ErrInfeasible):
				res.Infeasible++
			default:
				return nil, out.err
			}
		}
		if inc != nil {
			incBound.store(inc.Area()) // round-barrier publication
		}

		// Phase 2: exhaustive re-exploration of the incumbent's worst
		// subgraph, spliced back only when the rebuilt design verifies and
		// improves.
		if inc != nil {
			sub := worstSubgraph(inc, cfg.SubgraphMax)
			cand, err := resynthesize(inc, cons, sub, cfg)
			if err != nil {
				return nil, err
			}
			res.Splices++
			if cand != nil {
				if err := checkAdoption(cand); err != nil {
					return nil, err
				}
				inc = cand
				improved = true
				res.SpliceImprovements++
				incBound.store(inc.Area())
			}
		}
		if !improved {
			break // anytime convergence: this round found nothing new
		}
	}

	if inc == nil {
		return nil, fmt.Errorf("portfolio: all %d passes infeasible: %w", res.Passes, baseErr)
	}
	res.Design = inc
	res.Improved = res.BaselineArea > 0 && inc.Area() < res.BaselineArea-areaEps
	return res, nil
}

// checkAdoption gates every incumbent adoption (and the baseline) behind
// the independent validator: a candidate that fails it indicates an
// engine or splice bug and aborts the whole synthesis rather than
// silently keeping a wrong "improvement".
func checkAdoption(d *core.Design) error {
	if err := verify.Check(core.VerifyInput(d)); err != nil {
		return fmt.Errorf("portfolio: candidate failed independent validation: %w", err)
	}
	return nil
}

// passSpec is one perturbed pass: an engine configuration plus the
// (possibly internally tightened) constraints it synthesizes under.
type passSpec struct {
	cfg  core.Config
	cons core.Constraints
}

// jitterAmps cycles the weight-jitter amplitude across passes: small
// nudges reorder only near-ties, large ones explore genuinely different
// commit orders.
var jitterAmps = [...]float64{0.05, 0.1, 0.2, 0.35}

// shaveFactors tighten the cap to just below the incumbent peak, the
// peak-shaving move that narrows pasap/palap windows.
var shaveFactors = [...]float64{0.95, 0.9, 0.85}

// passSpec derives pass i of the given round: a deterministic mix of
// perturbation seed, jitter amplitude, tie reshuffling, placement
// direction, scheduler selection policy, area-descent toggle and peak
// shaving, with the round-start incumbent bound installed as the
// dominated-abort cut.
func (cfg Config) passSpec(round, i int, roundBound float64, cons core.Constraints, inc *core.Design) passSpec {
	c := cfg.Core
	c.Perturb = core.Perturb{
		Seed:        cfg.Seed*1_000_003 + int64(round)*8191 + int64(i),
		Jitter:      jitterAmps[i%len(jitterAmps)],
		ShuffleTies: i%2 == 1,
		PlaceLate:   (i/2)%2 == 1,
	}
	if (i/4)%2 == 1 {
		if c.Select == sched.CriticalFirst {
			c.Select = sched.SmallestID
		} else {
			c.Select = sched.CriticalFirst
		}
	}
	if (i/8)%2 == 1 {
		c.SkipAreaDescent = !c.SkipAreaDescent
	}
	if !math.IsInf(roundBound, 1) {
		c.AreaBound = roundBound
	}
	pcons := cons
	if inc != nil && i%3 == 2 {
		// Peak-shave this pass: cap just below the incumbent's peak. The
		// design still satisfies the original constraints.
		cap := inc.Schedule.PeakPower() * shaveFactors[(i/3)%len(shaveFactors)]
		if cap > 0 && (cons.PowerMax <= 0 || cap < cons.PowerMax) {
			pcons.PowerMax = cap
		}
	}
	return passSpec{cfg: c, cons: pcons}
}
