package portfolio

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/gen"
	"pchls/internal/library"
	"pchls/internal/sched"
	"pchls/internal/verify"
)

var qorBenchmarks = []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"}

// qorGrid is the constraint grid the QoR regression suite sweeps per
// benchmark: the paper's standard operating point (T = cp+3, 80% of the
// unconstrained peak), two power-starved points, and the critical path
// itself with headroom.
func qorGrid(cp int, peak float64) []core.Constraints {
	return []core.Constraints{
		{Deadline: cp + 3, PowerMax: peak * 0.8},
		{Deadline: cp + 2, PowerMax: peak * 0.5},
		{Deadline: cp + 5, PowerMax: peak * 0.5},
		{Deadline: cp, PowerMax: peak * 1.1},
	}
}

func benchGraph(t *testing.T, name string) (*cdfg.Graph, int, float64) {
	t.Helper()
	g, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	lib := library.Table1()
	asap, err := sched.ASAP(g, sched.UniformFastest(lib))
	if err != nil {
		t.Fatal(err)
	}
	return g, asap.Length(), asap.PeakPower()
}

// TestPortfolioNeverWorse is the golden QoR regression: on every
// benchmark × constraint grid point, the portfolio must match the
// single-pass baseline's feasibility verdict (or rescue an infeasible
// one), never return a larger total area, and produce a design the
// independent validator accepts.
func TestPortfolioNeverWorse(t *testing.T) {
	lib := library.Table1()
	for _, name := range qorBenchmarks {
		name := name
		t.Run(name, func(t *testing.T) {
			g, cp, peak := benchGraph(t, name)
			for _, cons := range qorGrid(cp, peak) {
				label := fmt.Sprintf("%s T=%d P<=%g", name, cons.Deadline, cons.PowerMax)
				base, berr := core.Synthesize(g, lib, cons, core.Config{})
				res, perr := Synthesize(g, lib, cons, Config{Seed: 1})
				if berr != nil {
					if !errors.Is(berr, core.ErrInfeasible) {
						t.Fatalf("%s: baseline failed oddly: %v", label, berr)
					}
					if perr != nil && !errors.Is(perr, core.ErrInfeasible) {
						t.Fatalf("%s: portfolio failed oddly: %v", label, perr)
					}
					continue // infeasible point; a portfolio rescue is fine too
				}
				if perr != nil {
					t.Fatalf("%s: portfolio infeasible where single pass succeeded: %v", label, perr)
				}
				if res.BaselineArea != base.Area() {
					t.Errorf("%s: reported baseline area %.2f differs from the single pass %.2f",
						label, res.BaselineArea, base.Area())
				}
				if res.Design.Area() > base.Area()+areaEps {
					t.Errorf("%s: portfolio area %.2f regresses the single pass %.2f",
						label, res.Design.Area(), base.Area())
				}
				if err := verify.Check(core.VerifyInput(res.Design)); err != nil {
					t.Errorf("%s: portfolio design fails the validator: %v", label, err)
				}
			}
		})
	}
}

// knownImprovable pins constraint points where the portfolio is known to
// strictly beat the single greedy pass, with the minimum relative gap it
// achieved when this table was recorded (seed 1). These must STAY
// improved: a perturbation-roster or splice change that loses one is a
// QoR regression even if never-worse still holds.
var knownImprovable = []struct {
	name    string
	dT      int     // deadline = critical path + dT
	pFactor float64 // power cap = factor * unconstrained peak
	minGap  float64 // required relative area improvement
}{
	{"hal", 3, 0.8, 0.15},
	{"cosine", 3, 0.8, 0.20},
	{"elliptic", 3, 0.8, 0.10},
	{"diffeq2", 3, 0.8, 0.10},
	{"fft8", 3, 0.8, 0.15},
}

func TestPortfolioKnownImprovements(t *testing.T) {
	lib := library.Table1()
	for _, c := range knownImprovable {
		g, cp, peak := benchGraph(t, c.name)
		cons := core.Constraints{Deadline: cp + c.dT, PowerMax: peak * c.pFactor}
		res, err := Synthesize(g, lib, cons, Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !res.Improved {
			t.Errorf("%s T=%d P<=%g: known-improvable case no longer improves (base %.2f, portfolio %.2f)",
				c.name, cons.Deadline, cons.PowerMax, res.BaselineArea, res.Design.Area())
			continue
		}
		if res.Gap() < c.minGap {
			t.Errorf("%s T=%d P<=%g: gap %.3f fell below the recorded %.3f (base %.2f, portfolio %.2f)",
				c.name, cons.Deadline, cons.PowerMax, res.Gap(), c.minGap, res.BaselineArea, res.Design.Area())
		}
	}
}

// TestPortfolioDeterministic runs the same seeded portfolio ten times
// with the full worker pool and once serially: every run must emit a
// byte-identical design and identical search statistics. Under -race
// this is the gate against unsynchronized incumbent adoption.
func TestPortfolioDeterministic(t *testing.T) {
	lib := library.Table1()
	g, cp, peak := benchGraph(t, "cosine")
	cons := core.Constraints{Deadline: cp + 3, PowerMax: peak * 0.8}
	cfg := Config{Seed: 42, K: 8, Workers: 8}

	type snap struct {
		js    []byte
		stats Result
	}
	run := func(workers int) snap {
		c := cfg
		c.Workers = workers
		res, err := Synthesize(g, lib, cons, c)
		if err != nil {
			t.Fatal(err)
		}
		js, err := res.Design.JSON()
		if err != nil {
			t.Fatal(err)
		}
		stats := *res
		stats.Design = nil
		return snap{js, stats}
	}

	ref := run(8)
	for i := 1; i < 10; i++ {
		got := run(8)
		if !bytes.Equal(got.js, ref.js) {
			t.Fatalf("run %d: design bytes differ from run 0", i)
		}
		if got.stats != ref.stats {
			t.Fatalf("run %d: stats diverge: %+v vs %+v", i, got.stats, ref.stats)
		}
	}
	serial := run(1)
	if !bytes.Equal(serial.js, ref.js) {
		t.Fatal("serial run differs from the 8-worker runs")
	}
	if serial.stats != ref.stats {
		t.Fatalf("serial stats diverge: %+v vs %+v", serial.stats, ref.stats)
	}
}

// TestPortfolioInfeasible checks the infeasibility contract: when no
// pass can meet the constraints the error wraps core.ErrInfeasible.
func TestPortfolioInfeasible(t *testing.T) {
	lib := library.Table1()
	g, _, _ := benchGraph(t, "ar")
	_, err := Synthesize(g, lib, core.Constraints{Deadline: 2, PowerMax: 1}, Config{Seed: 1})
	if !errors.Is(err, core.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// TestAreaBoundAbortsDominatedPass pins the engine-side incumbent cut:
// a synthesis whose committed FU area reaches the bound must abort with
// core.ErrDominated instead of finishing.
func TestAreaBoundAbortsDominatedPass(t *testing.T) {
	lib := library.Table1()
	g, cp, peak := benchGraph(t, "hal")
	cons := core.Constraints{Deadline: cp + 3, PowerMax: peak * 0.8}
	d, err := core.Synthesize(g, lib, cons, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Synthesize(g, lib, cons, core.Config{AreaBound: d.Datapath.FUArea / 2})
	if !errors.Is(err, core.ErrDominated) {
		t.Fatalf("want ErrDominated under a half-incumbent bound, got %v", err)
	}
	// An unreachable bound must not change the result.
	d2, err := core.Synthesize(g, lib, cons, core.Config{AreaBound: d.Area() * 10})
	if err != nil {
		t.Fatal(err)
	}
	if d2.Area() != d.Area() {
		t.Fatalf("loose bound changed the design: %.2f vs %.2f", d2.Area(), d.Area())
	}
}

// TestWorstSubgraph checks the extraction invariants: bounded size,
// connectedness, determinism, and whole-graph coverage for graphs at or
// under the limit.
func TestWorstSubgraph(t *testing.T) {
	lib := library.Table1()
	g, cp, peak := benchGraph(t, "hal")
	d, err := core.Synthesize(g, lib, core.Constraints{Deadline: cp + 3, PowerMax: peak * 0.8}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sub := worstSubgraph(d, 8)
	if len(sub) == 0 || len(sub) > 8 {
		t.Fatalf("subgraph size %d out of (0, 8]", len(sub))
	}
	if again := worstSubgraph(d, 8); fmt.Sprint(again) != fmt.Sprint(sub) {
		t.Fatalf("extraction is not deterministic: %v vs %v", again, sub)
	}
	// Connected: BFS over the undirected graph restricted to the set.
	in := map[cdfg.NodeID]bool{}
	for _, v := range sub {
		in[v] = true
	}
	seen := map[cdfg.NodeID]bool{sub[0]: true}
	queue := []cdfg.NodeID{sub[0]}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, nb := range append(append([]cdfg.NodeID{}, g.Preds(u)...), g.Succs(u)...) {
			if in[nb] && !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(seen) != len(sub) {
		t.Fatalf("subgraph not connected: reached %d of %d", len(seen), len(sub))
	}

	// A graph at the limit is returned whole.
	inst := gen.NewInstance(7, gen.InstanceConfig{
		Graph:    gen.GraphConfig{Nodes: 3, MaxWidth: 2},
		Library:  gen.LibraryConfig{ModulesPerOp: 2, DelayMax: 2},
		SlackMin: 1.5, SlackMax: 2.0,
		PowerFactorMin: 2.0, PowerFactorMax: 2.5,
	})
	td, err := core.Synthesize(inst.Graph, inst.Library,
		core.Constraints{Deadline: inst.Deadline, PowerMax: inst.PowerMax}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if whole := worstSubgraph(td, 8); len(whole) != inst.Graph.N() {
		t.Fatalf("graph with %d nodes: subgraph %d, want all", inst.Graph.N(), len(whole))
	}
}
