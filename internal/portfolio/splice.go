package portfolio

import (
	"fmt"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
)

const (
	// powerEps matches the validator's per-cycle cap slack.
	powerEps = 1e-9
	// maxTieEvals bounds how many added-area-tied leaves get an exact
	// total-area evaluation (each one rebuilds registers and muxes).
	maxTieEvals = 256
)

// resynthesize exhaustively re-explores the sub nodes of the incumbent d
// in the context of the rest of the design: every node outside sub keeps
// its start cycle, module and instance, the outside power profile is
// fixed, and the search branches over (module, start cycle, instance)
// for each sub node in topological order — an instance is either a kept
// one with a free slot, one the search already created, or a fresh
// allocation that costs area. The primary objective is the area added
// back for the fragment (the incumbent's own completion — the area of
// the instances sub exclusively occupied — seeds the bound, so pruning
// mirrors the brute-force oracle's incumbent cut); added-area ties are
// broken by the exact total area of the reassembled design.
//
// On a partial splice the winner is adopted only when it strictly
// shrinks the total area, or strictly shrinks the functional-unit area
// without growing the total — added FU area is a local proxy there, so
// the exact total governs and the portfolio's total never regresses.
// When sub covers the whole graph the search is a true full exhaustive
// search and its FU optimum is the brute-force oracle's optimum, so
// adoption is lexicographic on (FU area, total area): the paper's
// primary cost driver wins, registers and muxes break ties. It returns
// (nil, nil) when the incumbent survives.
func resynthesize(d *core.Design, cons core.Constraints, sub []cdfg.NodeID, cfg Config) (*core.Design, error) {
	sp, err := newSplicer(d, cons, sub, cfg)
	if err != nil {
		return nil, err
	}
	if err := sp.search(0); err != nil {
		return nil, err
	}
	if sp.best == nil {
		return nil, nil
	}
	candTotal, incTotal := sp.best.Area(), d.Area()
	candFU, incFU := sp.best.Datapath.FUArea, d.Datapath.FUArea
	var adopt bool
	if len(sp.order) == sp.g.N() {
		adopt = candFU < incFU-areaEps ||
			(candFU <= incFU+areaEps && candTotal < incTotal-areaEps)
	} else {
		adopt = candTotal < incTotal-areaEps ||
			(candFU < incFU-areaEps && candTotal <= incTotal+areaEps)
	}
	if adopt {
		return sp.best, nil
	}
	return nil, nil
}

// keptInst is an instance that keeps at least one outside operation: its
// module and the occupancy intervals of those fixed operations. Search
// placements are pushed after the fixed prefix and popped on backtrack.
type keptInst struct {
	module       int
	starts, ends []int
}

type splicer struct {
	g    *cdfg.Graph
	lib  *library.Library
	cons core.Constraints
	d    *core.Design
	cfg  Config

	inS                []bool
	order              []cdfg.NodeID // sub in topological order
	baseStart, baseEnd []int
	baseMi             []int // incumbent module index per node

	profile []float64 // per-cycle power: fixed outside ops + placements
	kept    []keptInst
	keptIdx []int // original instance -> kept index, -1 when freed
	// freedArea is the area of instances every operation of which is in
	// sub: what the incumbent itself pays to complete the fragment.
	freedArea float64

	newMods            []int // search-created instances' modules
	newStarts, newEnds [][]int
	addedArea          float64

	placedStart, placedEnd []int
	curMi, curFU           []int // per order position; curFU < len(kept) is a
	// kept index, otherwise len(kept)+j names search-created instance j

	best      *core.Design
	bestAdded float64
	bestTotal float64

	expansions int
	tieEvals   int
	capped     bool
}

func newSplicer(d *core.Design, cons core.Constraints, sub []cdfg.NodeID, cfg Config) (*splicer, error) {
	g, lib := d.Graph, d.Library
	n := g.N()
	sp := &splicer{
		g: g, lib: lib, cons: cons, d: d, cfg: cfg,
		inS:         make([]bool, n),
		baseStart:   make([]int, n),
		baseEnd:     make([]int, n),
		baseMi:      make([]int, n),
		profile:     make([]float64, cons.Deadline),
		keptIdx:     make([]int, len(d.FUs)),
		placedStart: make([]int, n),
		placedEnd:   make([]int, n),
		curMi:       make([]int, len(sub)),
		curFU:       make([]int, len(sub)),
		bestTotal:   d.Area(),
	}
	for _, v := range sub {
		sp.inS[v] = true
	}

	idxOf := make(map[string]int, lib.Len())
	for i := 0; i < lib.Len(); i++ {
		idxOf[lib.Module(i).Name] = i
	}
	for v := 0; v < n; v++ {
		sp.baseStart[v] = d.Schedule.Start[v]
		sp.baseEnd[v] = d.Schedule.Start[v] + d.Schedule.Delay[v]
		mi, ok := idxOf[d.Schedule.Module[v]]
		if !ok {
			return nil, fmt.Errorf("portfolio: design names module %q not in its library", d.Schedule.Module[v])
		}
		sp.baseMi[v] = mi
		if !sp.inS[v] {
			for c := sp.baseStart[v]; c < sp.baseEnd[v] && c < len(sp.profile); c++ {
				sp.profile[c] += d.Schedule.Power[v]
			}
		}
	}

	for f := range d.FUs {
		fu := &d.FUs[f]
		var starts, ends []int
		for _, op := range fu.Ops {
			if !sp.inS[op] {
				starts = append(starts, sp.baseStart[op])
				ends = append(ends, sp.baseEnd[op])
			}
		}
		if len(starts) == 0 {
			sp.keptIdx[f] = -1
			sp.freedArea += fu.Module.Area
			continue
		}
		mi, ok := idxOf[fu.Module.Name]
		if !ok {
			return nil, fmt.Errorf("portfolio: instance %d names module %q not in its library", f, fu.Module.Name)
		}
		sp.keptIdx[f] = len(sp.kept)
		sp.kept = append(sp.kept, keptInst{module: mi, starts: starts, ends: ends})
	}
	sp.bestAdded = sp.freedArea

	topo, err := g.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("portfolio: %w", err)
	}
	sp.order = sp.order[:0]
	for _, v := range topo {
		if sp.inS[v] {
			sp.order = append(sp.order, v)
		}
	}
	return sp, nil
}

func (sp *splicer) search(k int) error {
	if sp.capped {
		return nil
	}
	if sp.expansions++; sp.expansions > sp.cfg.MaxExpansions {
		// Budget exhausted: keep whatever the search has found so far.
		// The incumbent seeds the bound, so truncation never loses ground.
		sp.capped = true
		return nil
	}
	if sp.addedArea > sp.bestAdded+areaEps {
		return nil // cannot even tie the best completion found so far
	}
	if k == len(sp.order) {
		return sp.leaf()
	}
	v := sp.order[k]
	op := sp.g.Node(v).Op
	lo := sp.earliest(v)
	for _, mi := range sp.lib.Candidates(op) {
		m := sp.lib.Module(mi)
		if sp.cons.PowerMax > 0 && m.Power > sp.cons.PowerMax+powerEps {
			continue
		}
		hi := sp.latest(v, m.Delay)
		for t := lo; t <= hi; t++ {
			if !sp.powerOK(t, m) {
				continue
			}
			sp.place(v, k, t, mi, m)
			if err := sp.branchInstances(v, k, t, mi, m); err != nil {
				return err
			}
			sp.unplace(t, m)
			if sp.capped {
				return nil
			}
		}
	}
	return nil
}

// branchInstances tries every way of hosting node v at cycle t on module
// mi: each compatible kept instance with a free slot, each compatible
// search-created instance, and — when the added-area bound still allows
// it — a fresh allocation.
func (sp *splicer) branchInstances(v cdfg.NodeID, k, t, mi int, m *library.Module) error {
	end := t + m.Delay
	for ki := range sp.kept {
		in := &sp.kept[ki]
		if in.module != mi || overlaps(in.starts, in.ends, t, end) {
			continue
		}
		in.starts = append(in.starts, t)
		in.ends = append(in.ends, end)
		sp.curFU[k] = ki
		err := sp.search(k + 1)
		in.starts = in.starts[:len(in.starts)-1]
		in.ends = in.ends[:len(in.ends)-1]
		if err != nil {
			return err
		}
	}
	for j := range sp.newMods {
		if sp.newMods[j] != mi || overlaps(sp.newStarts[j], sp.newEnds[j], t, end) {
			continue
		}
		sp.newStarts[j] = append(sp.newStarts[j], t)
		sp.newEnds[j] = append(sp.newEnds[j], end)
		sp.curFU[k] = len(sp.kept) + j
		err := sp.search(k + 1)
		sp.newStarts[j] = sp.newStarts[j][:len(sp.newStarts[j])-1]
		sp.newEnds[j] = sp.newEnds[j][:len(sp.newEnds[j])-1]
		if err != nil {
			return err
		}
	}
	if sp.addedArea+m.Area <= sp.bestAdded+areaEps {
		sp.newMods = append(sp.newMods, mi)
		sp.newStarts = append(sp.newStarts, []int{t})
		sp.newEnds = append(sp.newEnds, []int{end})
		sp.addedArea += m.Area
		sp.curFU[k] = len(sp.kept) + len(sp.newMods) - 1
		err := sp.search(k + 1)
		sp.addedArea -= m.Area
		sp.newMods = sp.newMods[:len(sp.newMods)-1]
		sp.newStarts = sp.newStarts[:len(sp.newStarts)-1]
		sp.newEnds = sp.newEnds[:len(sp.newEnds)-1]
		if err != nil {
			return err
		}
	}
	return nil
}

// leaf scores a complete assignment: a strictly smaller added area always
// becomes the new best; an added-area tie is kept only when its exact
// reassembled total (registers and muxes included) beats the best total.
func (sp *splicer) leaf() error {
	strict := sp.addedArea < sp.bestAdded-areaEps
	if !strict {
		if sp.tieEvals >= maxTieEvals {
			return nil
		}
		sp.tieEvals++
	}
	cand, err := sp.assemble()
	if err != nil {
		return fmt.Errorf("portfolio: splice produced an unassemblable design: %w", err)
	}
	if strict {
		sp.bestAdded = sp.addedArea
		sp.best = cand
		sp.bestTotal = cand.Area()
		return nil
	}
	if cand.Area() < sp.bestTotal-areaEps {
		sp.best = cand
		sp.bestTotal = cand.Area()
	}
	return nil
}

// assemble rebuilds a full design from the incumbent plus the current
// fragment assignment, through core.Assemble's validation.
func (sp *splicer) assemble() (*core.Design, error) {
	n := sp.g.N()
	start := append([]int(nil), sp.baseStart...)
	moduleOf := append([]int(nil), sp.baseMi...)
	fuOf := make([]int, n)
	fuModule := make([]int, 0, len(sp.kept)+len(sp.newMods))
	for ki := range sp.kept {
		fuModule = append(fuModule, sp.kept[ki].module)
	}
	fuModule = append(fuModule, sp.newMods...)
	for v := 0; v < n; v++ {
		if sp.inS[v] {
			continue
		}
		fuOf[v] = sp.keptIdx[sp.d.FUOf[v]]
	}
	for k, v := range sp.order {
		start[v] = sp.placedStart[v]
		moduleOf[v] = sp.curMi[k]
		fuOf[v] = sp.curFU[k]
	}
	return core.Assemble(sp.g, sp.lib, sp.cons, start, moduleOf, fuOf, fuModule, sp.cfg.Core)
}

// earliest is the first cycle every predecessor of v has finished:
// placed fragment predecessors (earlier in topo order) or fixed outside
// ones.
func (sp *splicer) earliest(v cdfg.NodeID) int {
	lo := 0
	for _, p := range sp.g.Preds(v) {
		e := sp.baseEnd[p]
		if sp.inS[p] {
			e = sp.placedEnd[p]
		}
		if e > lo {
			lo = e
		}
	}
	return lo
}

// latest is the last start cycle keeping v inside the deadline and ahead
// of every fixed outside successor; fragment successors constrain
// nothing here — their own earliest() accounts for v once placed.
func (sp *splicer) latest(v cdfg.NodeID, delay int) int {
	hi := sp.cons.Deadline - delay
	for _, s := range sp.g.Succs(v) {
		if sp.inS[s] {
			continue
		}
		if lim := sp.baseStart[s] - delay; lim < hi {
			hi = lim
		}
	}
	return hi
}

func (sp *splicer) powerOK(t int, m *library.Module) bool {
	if sp.cons.PowerMax <= 0 {
		return true
	}
	for c := t; c < t+m.Delay; c++ {
		if sp.profile[c]+m.Power > sp.cons.PowerMax+powerEps {
			return false
		}
	}
	return true
}

func (sp *splicer) place(v cdfg.NodeID, k, t, mi int, m *library.Module) {
	for c := t; c < t+m.Delay; c++ {
		sp.profile[c] += m.Power
	}
	sp.placedStart[v] = t
	sp.placedEnd[v] = t + m.Delay
	sp.curMi[k] = mi
}

func (sp *splicer) unplace(t int, m *library.Module) {
	for c := t; c < t+m.Delay; c++ {
		sp.profile[c] -= m.Power
	}
}

// overlaps reports whether [t, e) intersects any of the intervals.
func overlaps(starts, ends []int, t, e int) bool {
	for i := range starts {
		if t < ends[i] && starts[i] < e {
			return true
		}
	}
	return false
}
