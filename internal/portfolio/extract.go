package portfolio

import (
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// worstSubgraph picks the region of the incumbent most worth re-exploring
// exhaustively: a connected set of at most maxNodes nodes grown around
// the node with the highest combined area-contribution / scarcity score.
//
// Each node's score is its share of its instance's area (area the design
// could recover if the node shared a cheaper unit) scaled up when the
// node's mobility under the incumbent's module selection is low — rigid,
// expensive nodes are exactly where the greedy pass's one ordering is
// most likely to have locked in a bad sharing decision. Graphs with at
// most maxNodes nodes are re-explored whole, which makes the splice a
// full exhaustive search on small instances.
func worstSubgraph(d *core.Design, maxNodes int) []cdfg.NodeID {
	g := d.Graph
	n := g.N()
	if n <= maxNodes {
		all := make([]cdfg.NodeID, n)
		for v := range all {
			all[v] = cdfg.NodeID(v)
		}
		return all
	}

	score := nodeScores(d)
	seed := cdfg.NodeID(0)
	for v := 1; v < n; v++ {
		if score[v] > score[seed] {
			seed = cdfg.NodeID(v)
		}
	}

	// Grow a connected region from the seed, always absorbing the
	// highest-scoring frontier neighbour (ties: lowest ID, so the set is
	// deterministic).
	in := make([]bool, n)
	in[seed] = true
	picked := []cdfg.NodeID{seed}
	for len(picked) < maxNodes {
		best := cdfg.NodeID(-1)
		for _, u := range picked {
			for _, nb := range g.Preds(u) {
				if !in[nb] && (best < 0 || score[nb] > score[best] || (score[nb] == score[best] && nb < best)) {
					best = nb
				}
			}
			for _, nb := range g.Succs(u) {
				if !in[nb] && (best < 0 || score[nb] > score[best] || (score[nb] == score[best] && nb < best)) {
					best = nb
				}
			}
		}
		if best < 0 {
			break // component exhausted
		}
		in[best] = true
		picked = append(picked, best)
	}

	// Return in ID order: the splice search wants a stable topo-friendly
	// ordering, and callers treat the set as canonical.
	sub := make([]cdfg.NodeID, 0, len(picked))
	for v := 0; v < n; v++ {
		if in[v] {
			sub = append(sub, cdfg.NodeID(v))
		}
	}
	return sub
}

// nodeScores computes fuShare(v) * (1 + 1/(1+mobility(v))): the node's
// amortized instance area, weighted toward low-mobility nodes.
func nodeScores(d *core.Design) []float64 {
	g := d.Graph
	n := g.N()
	share := make([]float64, n)
	for f := range d.FUs {
		fu := &d.FUs[f]
		if len(fu.Ops) == 0 {
			continue
		}
		per := fu.Module.Area / float64(len(fu.Ops))
		for _, v := range fu.Ops {
			share[v] = per
		}
	}

	// Mobility under the incumbent's module selection: ALAP minus ASAP
	// start. Falls back to zero mobility (most conservative: "rigid") if
	// either pass fails, which cannot happen for a valid design.
	mob := make([]int, n)
	binding := func(nd cdfg.Node) *library.Module {
		m, _ := d.Library.Lookup(d.Schedule.Module[nd.ID])
		return m
	}
	asap, errA := sched.ASAP(g, binding)
	alap, errB := sched.ALAP(g, binding, d.Cons.Deadline)
	if errA == nil && errB == nil {
		for v := 0; v < n; v++ {
			if m := alap.Start[v] - asap.Start[v]; m > 0 {
				mob[v] = m
			}
		}
	}

	score := make([]float64, n)
	for v := 0; v < n; v++ {
		score[v] = share[v] * (1 + 1/float64(1+mob[v]))
	}
	return score
}
