package bind

import (
	"sort"

	"pchls/internal/cdfg"
	"pchls/internal/clique"
)

// CliqueRegisters allocates registers by clique partitioning, the
// historical alternative to the left-edge algorithm (Tseng & Siewiorek):
// build the value-compatibility graph — two values are compatible when
// their lifetimes do not overlap — and partition it into cliques, one
// register per clique, with the common-neighbour heuristic.
//
// On interval lifetimes LeftEdge is provably optimal, so this exists for
// the register-allocation ablation: CliqueRegisters never beats LeftEdge
// and the test suite pins the comparison.
func CliqueRegisters(lifetimes []Lifetime) []Register {
	n := len(lifetimes)
	if n == 0 {
		return nil
	}
	sorted := append([]Lifetime(nil), lifetimes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Birth != sorted[j].Birth {
			return sorted[i].Birth < sorted[j].Birth
		}
		return sorted[i].Producer < sorted[j].Producer
	})
	g := clique.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !sorted[i].Overlaps(sorted[j]) {
				g.SetCompatible(i, j)
			}
		}
	}
	partition := clique.TsengSiewiorek(g)
	regs := make([]Register, 0, len(partition))
	for _, block := range partition {
		var r Register
		for _, idx := range block {
			r.Values = append(r.Values, sorted[idx].Producer)
		}
		sort.Slice(r.Values, func(a, b int) bool { return r.Values[a] < r.Values[b] })
		regs = append(regs, r)
	}
	sort.Slice(regs, func(a, b int) bool { return regs[a].Values[0] < regs[b].Values[0] })
	return regs
}

// ValidateRegisters checks that an allocation is sound for the lifetimes:
// every value is stored exactly once and no register holds two overlapping
// values.
func ValidateRegisters(regs []Register, lifetimes []Lifetime) error {
	byProducer := make(map[cdfg.NodeID]Lifetime, len(lifetimes))
	for _, lt := range lifetimes {
		byProducer[lt.Producer] = lt
	}
	seen := make(map[cdfg.NodeID]bool, len(lifetimes))
	for ri, r := range regs {
		for i := 0; i < len(r.Values); i++ {
			v := r.Values[i]
			if _, ok := byProducer[v]; !ok {
				return errRegister(ri, "stores unknown value")
			}
			if seen[v] {
				return errRegister(ri, "value stored twice")
			}
			seen[v] = true
			for j := i + 1; j < len(r.Values); j++ {
				if byProducer[v].Overlaps(byProducer[r.Values[j]]) {
					return errRegister(ri, "holds overlapping lifetimes")
				}
			}
		}
	}
	if len(seen) != len(lifetimes) {
		return errRegister(-1, "allocation does not cover every value")
	}
	return nil
}

type registerError struct {
	reg int
	msg string
}

func errRegister(reg int, msg string) error { return &registerError{reg: reg, msg: msg} }

func (e *registerError) Error() string {
	if e.reg < 0 {
		return "bind: register allocation: " + e.msg
	}
	return "bind: register " + itoa(e.reg) + ": " + e.msg
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
