package bind

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// pipelineGraph: i1,i2 -> m(*) -> a(+) <- i3 ; a -> o(xpt).
func pipelineGraph(t *testing.T) *cdfg.Graph {
	t.Helper()
	g := cdfg.New("pipe")
	i1 := g.MustAddNode("i1", cdfg.Input)
	i2 := g.MustAddNode("i2", cdfg.Input)
	i3 := g.MustAddNode("i3", cdfg.Input)
	m := g.MustAddNode("m", cdfg.Mul)
	a := g.MustAddNode("a", cdfg.Add)
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(i1, m)
	g.MustAddEdge(i2, m)
	g.MustAddEdge(m, a)
	g.MustAddEdge(i3, a)
	g.MustAddEdge(a, o)
	return g
}

func TestLifetimes(t *testing.T) {
	g := pipelineGraph(t)
	s, err := sched.ASAP(g, sched.UniformFastest(library.Table1()))
	if err != nil {
		t.Fatal(err)
	}
	// i1,i2,i3 end at 1; m runs 1-2, ends 3; a runs 3, ends 4; o runs 4.
	lts := Lifetimes(g, s)
	byProducer := map[string]Lifetime{}
	for _, lt := range lts {
		byProducer[g.Node(lt.Producer).Name] = lt
	}
	if len(lts) != 5 { // i1,i2,i3,m,a (o produces nothing storable)
		t.Fatalf("%d lifetimes, want 5", len(lts))
	}
	if lt := byProducer["i1"]; lt.Birth != 1 || lt.LastUse != 1 {
		t.Errorf("i1 lifetime = %+v", lt)
	}
	if lt := byProducer["i3"]; lt.Birth != 1 || lt.LastUse != 3 {
		t.Errorf("i3 lifetime = %+v", lt)
	}
	if lt := byProducer["m"]; lt.Birth != 3 || lt.LastUse != 3 {
		t.Errorf("m lifetime = %+v", lt)
	}
	if lt := byProducer["a"]; lt.Birth != 4 || lt.LastUse != 4 {
		t.Errorf("a lifetime = %+v", lt)
	}
}

func TestLifetimeOverlaps(t *testing.T) {
	a := Lifetime{Birth: 1, LastUse: 3}
	b := Lifetime{Birth: 3, LastUse: 5}
	c := Lifetime{Birth: 4, LastUse: 4}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("touching intervals should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Fatal("disjoint intervals reported overlapping")
	}
}

func TestLeftEdgePacksDisjointIntervals(t *testing.T) {
	lts := []Lifetime{
		{Producer: 0, Birth: 1, LastUse: 2},
		{Producer: 1, Birth: 3, LastUse: 4},
		{Producer: 2, Birth: 5, LastUse: 6},
	}
	regs := LeftEdge(lts)
	if len(regs) != 1 {
		t.Fatalf("disjoint chain needs %d registers, want 1", len(regs))
	}
	if len(regs[0].Values) != 3 {
		t.Fatalf("register holds %v", regs[0].Values)
	}
}

func TestLeftEdgeParallelIntervals(t *testing.T) {
	lts := []Lifetime{
		{Producer: 0, Birth: 1, LastUse: 5},
		{Producer: 1, Birth: 2, LastUse: 4},
		{Producer: 2, Birth: 3, LastUse: 3},
	}
	regs := LeftEdge(lts)
	if len(regs) != 3 {
		t.Fatalf("nested intervals need %d registers, want 3", len(regs))
	}
}

func TestLeftEdgeEmpty(t *testing.T) {
	if regs := LeftEdge(nil); len(regs) != 0 {
		t.Fatalf("LeftEdge(nil) = %v", regs)
	}
}

func TestQuickLeftEdgeOptimal(t *testing.T) {
	// Property: left-edge register count equals the maximum interval
	// overlap (optimal for interval graphs), and no register holds two
	// overlapping values.
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%30) + 1
		lts := make([]Lifetime, n)
		for i := range lts {
			birth := rng.Intn(20)
			lts[i] = Lifetime{Producer: cdfg.NodeID(i), Birth: birth, LastUse: birth + rng.Intn(8)}
		}
		regs := LeftEdge(lts)
		if len(regs) != MaxOverlap(lts) {
			return false
		}
		byProducer := map[cdfg.NodeID]Lifetime{}
		for _, lt := range lts {
			byProducer[lt.Producer] = lt
		}
		for _, r := range regs {
			for i := 0; i < len(r.Values); i++ {
				for j := i + 1; j < len(r.Values); j++ {
					if byProducer[r.Values[i]].Overlaps(byProducer[r.Values[j]]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// buildTrivial makes one FU per node.
func buildTrivial(t *testing.T, g *cdfg.Graph, s *sched.Schedule, lib *library.Library) (*Datapath, []FU, []int) {
	t.Helper()
	var fus []FU
	fuOf := make([]int, g.N())
	for _, n := range g.Nodes() {
		m, err := lib.Fastest(n.Op)
		if err != nil {
			t.Fatal(err)
		}
		fuOf[n.ID] = len(fus)
		fus = append(fus, FU{Module: m, Ops: []cdfg.NodeID{n.ID}})
	}
	d, err := Build(g, s, fus, fuOf, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return d, fus, fuOf
}

func TestBuildTrivialBinding(t *testing.T) {
	g := pipelineGraph(t)
	lib := library.Table1()
	s, _ := sched.ASAP(g, sched.UniformFastest(lib))
	d, _, _ := buildTrivial(t, g, s, lib)
	// FU area: 3 inputs (16), mult par (339), add (87), output (16).
	wantFU := 3*16.0 + 339 + 87 + 16
	if d.FUArea != wantFU {
		t.Errorf("FU area = %g, want %g", d.FUArea, wantFU)
	}
	if len(d.Registers) == 0 {
		t.Error("no registers allocated")
	}
	if d.TotalArea() != d.FUArea+d.RegArea+d.MuxArea {
		t.Error("area breakdown inconsistent")
	}
	// One op per FU: no FU muxes needed.
	if d.FUMuxInputs != 0 {
		t.Errorf("trivial binding has %d FU mux inputs", d.FUMuxInputs)
	}
}

func TestBuildSharedFUNeedsMux(t *testing.T) {
	// Two adds at different cycles sharing one adder, with four distinct
	// input registers -> muxes appear.
	g := cdfg.New("share")
	i1 := g.MustAddNode("i1", cdfg.Input)
	i2 := g.MustAddNode("i2", cdfg.Input)
	a1 := g.MustAddNode("a1", cdfg.Add)
	a2 := g.MustAddNode("a2", cdfg.Add)
	o1 := g.MustAddNode("o1", cdfg.Output)
	o2 := g.MustAddNode("o2", cdfg.Output)
	g.MustAddEdge(i1, a1)
	g.MustAddEdge(i2, a2)
	g.MustAddEdge(a1, a2) // serialize a1 -> a2
	g.MustAddEdge(a1, o1)
	g.MustAddEdge(a2, o2)
	lib := library.Table1()
	s, err := sched.ASAP(g, sched.UniformFastest(lib))
	if err != nil {
		t.Fatal(err)
	}
	addMod, _ := lib.Lookup(library.NameAdd)
	inMod, _ := lib.Lookup(library.NameInput)
	outMod, _ := lib.Lookup(library.NameOutput)
	fus := []FU{
		{Module: inMod, Ops: []cdfg.NodeID{i1}},
		{Module: inMod, Ops: []cdfg.NodeID{i2}},
		{Module: addMod, Ops: []cdfg.NodeID{a1, a2}}, // shared adder
		{Module: outMod, Ops: []cdfg.NodeID{o1}},
		{Module: outMod, Ops: []cdfg.NodeID{o2}},
	}
	fuOf := make([]int, g.N())
	fuOf[i1], fuOf[i2] = 0, 1
	fuOf[a1], fuOf[a2] = 2, 2
	fuOf[o1], fuOf[o2] = 3, 4
	d, err := Build(g, s, fus, fuOf, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if d.FUMuxInputs == 0 {
		t.Error("shared adder with distinct sources should need FU muxes")
	}
	if d.MuxArea == 0 {
		t.Error("mux area is zero despite muxes")
	}
	rep := d.Report(g)
	for _, want := range []string{"FU0", "add", "registers:", "area:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestBuildRejectsBadBindings(t *testing.T) {
	g := pipelineGraph(t)
	lib := library.Table1()
	s, _ := sched.ASAP(g, sched.UniformFastest(lib))
	addMod, _ := lib.Lookup(library.NameAdd)

	// Wrong length fuOf.
	if _, err := Build(g, s, nil, []int{0}, DefaultCostModel()); !errors.Is(err, ErrBinding) {
		t.Errorf("short fuOf: %v", err)
	}
	// Out-of-range FU index.
	fuOf := make([]int, g.N())
	for i := range fuOf {
		fuOf[i] = 5
	}
	if _, err := Build(g, s, []FU{{Module: addMod}}, fuOf, DefaultCostModel()); !errors.Is(err, ErrBinding) {
		t.Errorf("out-of-range fu: %v", err)
	}
	// Module does not implement op.
	_, fus, fuOfGood := func() (*Datapath, []FU, []int) {
		d, f, fo := buildTrivial(t, g, s, lib)
		return d, f, fo
	}()
	m, _ := g.Lookup("m")
	fus[fuOfGood[m.ID]].Module = addMod
	if _, err := Build(g, s, fus, fuOfGood, DefaultCostModel()); !errors.Is(err, ErrBinding) {
		t.Errorf("wrong module: %v", err)
	}
}

func TestBuildRejectsTimeOverlapOnSharedFU(t *testing.T) {
	g := cdfg.New("clash")
	i1 := g.MustAddNode("i1", cdfg.Input)
	i2 := g.MustAddNode("i2", cdfg.Input)
	a1 := g.MustAddNode("a1", cdfg.Add)
	a2 := g.MustAddNode("a2", cdfg.Add)
	g.MustAddEdge(i1, a1)
	g.MustAddEdge(i2, a2)
	lib := library.Table1()
	s, _ := sched.ASAP(g, sched.UniformFastest(lib))
	addMod, _ := lib.Lookup(library.NameAdd)
	inMod, _ := lib.Lookup(library.NameInput)
	fus := []FU{
		{Module: inMod, Ops: []cdfg.NodeID{i1}},
		{Module: inMod, Ops: []cdfg.NodeID{i2}},
		{Module: addMod, Ops: []cdfg.NodeID{a1, a2}}, // both at cycle 1: clash
	}
	fuOf := []int{0, 1, 2, 2}
	if _, err := Build(g, s, fus, fuOf, DefaultCostModel()); !errors.Is(err, ErrBinding) {
		t.Fatalf("overlapping shared ops accepted: %v", err)
	}
}

func TestBuildRejectsFUOfMismatch(t *testing.T) {
	g := pipelineGraph(t)
	lib := library.Table1()
	s, _ := sched.ASAP(g, sched.UniformFastest(lib))
	_, fus, fuOf := buildTrivial(t, g, s, lib)
	// FU 0 claims op it doesn't own.
	fus[0].Ops = append(fus[0].Ops, 1)
	if _, err := Build(g, s, fus, fuOf, DefaultCostModel()); !errors.Is(err, ErrBinding) {
		t.Fatalf("fuOf mismatch accepted: %v", err)
	}
}

func TestMaxOverlap(t *testing.T) {
	lts := []Lifetime{
		{Birth: 0, LastUse: 10},
		{Birth: 2, LastUse: 3},
		{Birth: 3, LastUse: 5},
		{Birth: 11, LastUse: 12},
	}
	if got := MaxOverlap(lts); got != 3 {
		t.Fatalf("MaxOverlap = %d, want 3", got)
	}
	if MaxOverlap(nil) != 0 {
		t.Fatal("MaxOverlap(nil) != 0")
	}
}

func TestDefaultCostModel(t *testing.T) {
	cm := DefaultCostModel()
	if cm.RegisterArea <= 0 || cm.MuxInputArea <= 0 {
		t.Fatalf("bad defaults: %+v", cm)
	}
	if cm.RegisterArea >= 87 {
		t.Fatalf("register area %g should be well below the smallest adder", cm.RegisterArea)
	}
}
