// Package bind constructs the datapath implied by a scheduled, allocated
// and bound data-flow graph: value lifetime analysis, left-edge register
// allocation, multiplexer sizing, and the area cost model combining
// functional units, registers and interconnect.
//
// The paper's objective is minimum area "using least interconnect"; the
// area coefficients for registers and multiplexer inputs are not published
// in the two-page paper, so CostModel exposes them with documented
// defaults chosen to keep interconnect secondary to functional-unit area
// (as in the original Table 1 scale).
package bind

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// CostModel holds the area coefficients of the datapath cost function.
type CostModel struct {
	// RegisterArea is the area of one storage register.
	RegisterArea float64
	// MuxInputArea is the area per multiplexer input beyond the first on
	// any functional-unit or register input port.
	MuxInputArea float64
}

// DefaultCostModel returns the coefficients used by the experiments:
// registers cost 12 area units and each extra multiplexer input 4 — small
// against the 87..339 functional units of Table 1, matching the paper's
// "least interconnect" secondary objective.
func DefaultCostModel() CostModel {
	return CostModel{RegisterArea: 12, MuxInputArea: 4}
}

// FU is one allocated functional-unit instance with the operations bound
// to it.
type FU struct {
	// Module is the library module of this instance.
	Module *library.Module
	// Ops are the operations sharing the instance, in ID order.
	Ops []cdfg.NodeID
}

// Lifetime is the register-relevant live interval of the value produced by
// a node: [Birth, LastUse] in cycles, inclusive. Birth is the producer's
// end cycle; LastUse is the latest consumer start cycle.
type Lifetime struct {
	Producer cdfg.NodeID
	Birth    int
	LastUse  int
}

// Overlaps reports whether two lifetimes cannot share a register.
func (a Lifetime) Overlaps(b Lifetime) bool {
	return a.Birth <= b.LastUse && b.Birth <= a.LastUse
}

// Lifetimes computes the live interval of every value that must be stored:
// one per node that has at least one consumer. Output nodes produce no
// storable value (they transfer off-chip).
func Lifetimes(g *cdfg.Graph, s *sched.Schedule) []Lifetime {
	var out []Lifetime
	for _, n := range g.Nodes() {
		if n.Op == cdfg.Output {
			continue
		}
		succs := g.Succs(n.ID)
		if len(succs) == 0 {
			continue
		}
		last := 0
		for _, v := range succs {
			if s.Start[v] > last {
				last = s.Start[v]
			}
		}
		out = append(out, Lifetime{Producer: n.ID, Birth: s.End(n.ID), LastUse: last})
	}
	return out
}

// Register is one allocated register with the values (producer node IDs)
// stored in it over time.
type Register struct {
	Values []cdfg.NodeID
}

// LeftEdge allocates registers for the given lifetimes with the classical
// left-edge algorithm: intervals sorted by birth are packed greedily into
// the first register whose current occupant has expired. The number of
// registers returned equals the maximum number of simultaneously live
// values (optimal for interval graphs).
func LeftEdge(lifetimes []Lifetime) []Register {
	sorted := append([]Lifetime(nil), lifetimes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Birth != sorted[j].Birth {
			return sorted[i].Birth < sorted[j].Birth
		}
		return sorted[i].Producer < sorted[j].Producer
	})
	var regs []Register
	regLast := []int{} // last cycle each register is occupied through
	for _, lt := range sorted {
		placed := false
		for r := range regs {
			if regLast[r] < lt.Birth {
				regs[r].Values = append(regs[r].Values, lt.Producer)
				regLast[r] = lt.LastUse
				placed = true
				break
			}
		}
		if !placed {
			regs = append(regs, Register{Values: []cdfg.NodeID{lt.Producer}})
			regLast = append(regLast, lt.LastUse)
		}
	}
	return regs
}

// MaxOverlap returns the maximum number of simultaneously live values —
// the lower bound on register count (clique number of the interval graph).
func MaxOverlap(lifetimes []Lifetime) int {
	best := 0
	for _, a := range lifetimes {
		n := 0
		for _, b := range lifetimes {
			if a.Birth >= b.Birth && a.Birth <= b.LastUse {
				n++
			}
		}
		if n > best {
			best = n
		}
	}
	return best
}

// Datapath is the fully bound datapath: functional units, registers and
// multiplexer statistics, with its area breakdown.
type Datapath struct {
	FUs       []FU
	Registers []Register
	// FUMuxInputs is the total number of multiplexer inputs in front of
	// functional-unit operand ports (an FU port fed from k distinct
	// registers needs a k-input mux; k-1 inputs are counted as cost).
	FUMuxInputs int
	// RegMuxInputs is the analogous count for register write ports.
	RegMuxInputs int
	// Area breakdown.
	FUArea, RegArea, MuxArea float64
}

// TotalArea returns the complete datapath area.
func (d *Datapath) TotalArea() float64 { return d.FUArea + d.RegArea + d.MuxArea }

// ErrBinding indicates an inconsistent node-to-FU binding.
var ErrBinding = errors.New("inconsistent binding")

// Build assembles the datapath for a schedule and an FU binding. fuOf maps
// each node to an index into fus. It verifies that the binding is
// consistent: every node maps to an instance whose module implements its
// operation, and operations sharing an instance never overlap in time.
func Build(g *cdfg.Graph, s *sched.Schedule, fus []FU, fuOf []int, cm CostModel) (*Datapath, error) {
	if len(fuOf) != g.N() {
		return nil, fmt.Errorf("bind: fuOf has %d entries for %d nodes: %w", len(fuOf), g.N(), ErrBinding)
	}
	for _, n := range g.Nodes() {
		fi := fuOf[n.ID]
		if fi < 0 || fi >= len(fus) {
			return nil, fmt.Errorf("bind: node %q bound to FU %d of %d: %w", n.Name, fi, len(fus), ErrBinding)
		}
		if !fus[fi].Module.Implements(n.Op) {
			return nil, fmt.Errorf("bind: node %q (%s) bound to module %q: %w", n.Name, n.Op, fus[fi].Module.Name, ErrBinding)
		}
	}
	// No time overlap within an instance.
	for fi, fu := range fus {
		ops := append([]cdfg.NodeID(nil), fu.Ops...)
		sort.Slice(ops, func(i, j int) bool { return s.Start[ops[i]] < s.Start[ops[j]] })
		for k := 1; k < len(ops); k++ {
			prev, cur := ops[k-1], ops[k]
			if s.Start[cur] < s.End(prev) {
				return nil, fmt.Errorf("bind: FU %d (%s): ops %q and %q overlap in time: %w",
					fi, fu.Module.Name, g.Node(prev).Name, g.Node(cur).Name, ErrBinding)
			}
		}
		for _, op := range fu.Ops {
			if fuOf[op] != fi {
				return nil, fmt.Errorf("bind: FU %d lists op %q but fuOf disagrees: %w", fi, g.Node(op).Name, ErrBinding)
			}
		}
	}

	lifetimes := Lifetimes(g, s)
	regs := LeftEdge(lifetimes)
	regOf := make(map[cdfg.NodeID]int) // producer -> register
	for r, reg := range regs {
		for _, v := range reg.Values {
			regOf[v] = r
		}
	}

	d := &Datapath{FUs: fus, Registers: regs}
	// FU operand multiplexers: for each instance and operand position, the
	// set of distinct source registers across its bound operations.
	for _, fu := range fus {
		maxPorts := 0
		for _, op := range fu.Ops {
			if p := len(g.Preds(op)); p > maxPorts {
				maxPorts = p
			}
		}
		for port := 0; port < maxPorts; port++ {
			sources := map[int]bool{}
			for _, op := range fu.Ops {
				preds := g.Preds(op)
				if port < len(preds) {
					if r, ok := regOf[preds[port]]; ok {
						sources[r] = true
					}
				}
			}
			if len(sources) > 1 {
				d.FUMuxInputs += len(sources) - 1
			}
		}
	}
	// Register write multiplexers: distinct producing FUs per register.
	for _, reg := range regs {
		writers := map[int]bool{}
		for _, v := range reg.Values {
			writers[fuOf[v]] = true
		}
		if len(writers) > 1 {
			d.RegMuxInputs += len(writers) - 1
		}
	}

	for _, fu := range fus {
		d.FUArea += fu.Module.Area
	}
	d.RegArea = float64(len(regs)) * cm.RegisterArea
	d.MuxArea = float64(d.FUMuxInputs+d.RegMuxInputs) * cm.MuxInputArea
	return d, nil
}

// Report renders a human-readable datapath summary.
func (d *Datapath) Report(g *cdfg.Graph) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "functional units (%d):\n", len(d.FUs))
	for i, fu := range d.FUs {
		names := make([]string, len(fu.Ops))
		for j, op := range fu.Ops {
			names[j] = g.Node(op).Name
		}
		fmt.Fprintf(&sb, "  FU%-3d %-12s area %6.1f  ops: %s\n", i, fu.Module.Name, fu.Module.Area, strings.Join(names, " "))
	}
	fmt.Fprintf(&sb, "registers: %d, fu-mux inputs: %d, reg-mux inputs: %d\n",
		len(d.Registers), d.FUMuxInputs, d.RegMuxInputs)
	fmt.Fprintf(&sb, "area: FU %.1f + registers %.1f + interconnect %.1f = %.1f\n",
		d.FUArea, d.RegArea, d.MuxArea, d.TotalArea())
	return sb.String()
}
