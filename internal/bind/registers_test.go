package bind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pchls/internal/cdfg"
)

func randomLifetimes(rng *rand.Rand, n int) []Lifetime {
	lts := make([]Lifetime, n)
	for i := range lts {
		birth := rng.Intn(25)
		lts[i] = Lifetime{Producer: cdfg.NodeID(i), Birth: birth, LastUse: birth + rng.Intn(9)}
	}
	return lts
}

func TestCliqueRegistersValidAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lts := randomLifetimes(rng, 20)
	regs := CliqueRegisters(lts)
	if err := ValidateRegisters(regs, lts); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueRegistersEmpty(t *testing.T) {
	if regs := CliqueRegisters(nil); regs != nil {
		t.Fatalf("CliqueRegisters(nil) = %v", regs)
	}
}

func TestQuickLeftEdgeNeverWorseThanClique(t *testing.T) {
	// Left-edge is optimal on interval lifetimes; the clique heuristic may
	// tie but never beat it, and both must be valid.
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		lts := randomLifetimes(rng, int(szRaw%25)+1)
		le := LeftEdge(lts)
		cq := CliqueRegisters(lts)
		if ValidateRegisters(le, lts) != nil || ValidateRegisters(cq, lts) != nil {
			return false
		}
		return len(le) <= len(cq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRegistersCatchesBadAllocations(t *testing.T) {
	lts := []Lifetime{
		{Producer: 0, Birth: 0, LastUse: 2},
		{Producer: 1, Birth: 1, LastUse: 3},
	}
	cases := []struct {
		name string
		regs []Register
	}{
		{"overlap in one register", []Register{{Values: []cdfg.NodeID{0, 1}}}},
		{"value stored twice", []Register{{Values: []cdfg.NodeID{0}}, {Values: []cdfg.NodeID{0, 1}}}},
		{"unknown value", []Register{{Values: []cdfg.NodeID{0}}, {Values: []cdfg.NodeID{9}}}},
		{"missing value", []Register{{Values: []cdfg.NodeID{0}}}},
	}
	for _, tc := range cases {
		if err := ValidateRegisters(tc.regs, lts); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
	good := []Register{{Values: []cdfg.NodeID{0}}, {Values: []cdfg.NodeID{1}}}
	if err := ValidateRegisters(good, lts); err != nil {
		t.Fatalf("good allocation rejected: %v", err)
	}
}

func TestLeftEdgeAllocationsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		lts := randomLifetimes(rng, 15)
		if err := ValidateRegisters(LeftEdge(lts), lts); err != nil {
			t.Fatal(err)
		}
	}
}

func TestItoa(t *testing.T) {
	cases := map[int]string{0: "0", 7: "7", 42: "42", -3: "-3", 100: "100"}
	for n, want := range cases {
		if got := itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}
