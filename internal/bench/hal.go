// Package bench provides the classical high-level-synthesis benchmark
// data-flow graphs the paper evaluates on ("hal", "cosine", "elliptic"),
// plus secondary benchmarks (fir, ar, diffeq2) and random layered DAG
// generators for property-based testing.
//
// Each graph uses explicit Input ("imp") and Output ("xpt") transfer nodes,
// matching the input/output rows of the paper's functional-unit library
// (Table 1). The named benchmarks are reconstructions from the open
// literature; any place where the exact historical netlist is uncertain is
// documented on the constructor.
package bench

import "pchls/internal/cdfg"

// HAL returns the HAL differential-equation benchmark (Paulin & Knight):
// one Euler integration step of y” + 3xy' + 3y = 0. It contains the
// canonical 11 operations — 6 multiplications, 2 additions, 2 subtractions
// and 1 comparison — plus 5 input and 4 output transfer nodes (20 nodes
// total):
//
//	x1 = x + dx
//	u1 = u - 3*x*(u*dx) - 3*y*dx
//	y1 = y + u*dx
//	c  = x1 < a
func HAL() *cdfg.Graph {
	g := cdfg.New("hal")
	// Inputs.
	x := g.MustAddNode("x", cdfg.Input)
	y := g.MustAddNode("y", cdfg.Input)
	u := g.MustAddNode("u", cdfg.Input)
	dx := g.MustAddNode("dx", cdfg.Input)
	a := g.MustAddNode("a", cdfg.Input)

	// x1 = x + dx.
	add1 := g.MustAddNode("add1", cdfg.Add)
	g.MustAddEdge(x, add1)
	g.MustAddEdge(dx, add1)

	// mul1 = 3*x (constant 3 is wired internally, single graph operand).
	mul1 := g.MustAddNode("mul1", cdfg.Mul)
	g.MustAddEdge(x, mul1)
	// mul2 = u*dx.
	mul2 := g.MustAddNode("mul2", cdfg.Mul)
	g.MustAddEdge(u, mul2)
	g.MustAddEdge(dx, mul2)
	// mul3 = 3*y.
	mul3 := g.MustAddNode("mul3", cdfg.Mul)
	g.MustAddEdge(y, mul3)
	// mul4 = mul1*mul2 = 3x(u dx).
	mul4 := g.MustAddNode("mul4", cdfg.Mul)
	g.MustAddEdge(mul1, mul4)
	g.MustAddEdge(mul2, mul4)
	// mul5 = mul3*dx = 3y dx.
	mul5 := g.MustAddNode("mul5", cdfg.Mul)
	g.MustAddEdge(mul3, mul5)
	g.MustAddEdge(dx, mul5)
	// sub1 = u - mul4.
	sub1 := g.MustAddNode("sub1", cdfg.Sub)
	g.MustAddEdge(u, sub1)
	g.MustAddEdge(mul4, sub1)
	// sub2 = sub1 - mul5 (= u1).
	sub2 := g.MustAddNode("sub2", cdfg.Sub)
	g.MustAddEdge(sub1, sub2)
	g.MustAddEdge(mul5, sub2)
	// mul6 = u*dx for the y update (kept distinct, as in the canonical DFG).
	mul6 := g.MustAddNode("mul6", cdfg.Mul)
	g.MustAddEdge(u, mul6)
	g.MustAddEdge(dx, mul6)
	// add2 = y + mul6 (= y1).
	add2 := g.MustAddNode("add2", cdfg.Add)
	g.MustAddEdge(y, add2)
	g.MustAddEdge(mul6, add2)
	// cmp1 = x1 < a.
	cmp1 := g.MustAddNode("cmp1", cdfg.Cmp)
	g.MustAddEdge(add1, cmp1)
	g.MustAddEdge(a, cmp1)

	// Outputs.
	outX := g.MustAddNode("out_x1", cdfg.Output)
	g.MustAddEdge(add1, outX)
	outY := g.MustAddNode("out_y1", cdfg.Output)
	g.MustAddEdge(add2, outY)
	outU := g.MustAddNode("out_u1", cdfg.Output)
	g.MustAddEdge(sub2, outU)
	outC := g.MustAddNode("out_c", cdfg.Output)
	g.MustAddEdge(cmp1, outC)

	mustValid(g)
	return g
}

// mustValid panics if a benchmark constructor produced an invalid graph;
// benchmark graphs are static, so this is a programmer-error assertion.
func mustValid(g *cdfg.Graph) {
	if err := g.Validate(); err != nil {
		panic("bench: invalid benchmark graph " + g.Name + ": " + err.Error())
	}
}
