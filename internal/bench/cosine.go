package bench

import (
	"fmt"

	"pchls/internal/cdfg"
)

// Cosine returns the "cosine" benchmark, reconstructed as an 8-point fast
// DCT-II (cosine transform) flow graph in the Chen/Loeffler style:
//
//   - a first butterfly stage over the 8 inputs (4 additions,
//     4 subtractions),
//   - an even half producing X0, X2, X4, X6 through a second butterfly
//     stage and two plane rotations (6 multiplications, 4 add/sub),
//   - an odd half producing X1, X3, X5, X7 through two plane rotations,
//     a butterfly stage and two sqrt-scalings (10 multiplications,
//     4 add/sub).
//
// Totals: 16 multiplications, 12 additions, 12 subtractions, 8 inputs and
// 8 outputs (56 nodes). Rotation coefficients are compile-time constants
// and therefore not graph operands (as with the constant 3 in HAL).
//
// The exact netlist of the cosine CDFG used by Nielsen & Madsen is not
// public; this reconstruction preserves the defining properties relied on
// by the experiments: a multiply-rich transform with two sequential
// multiplication levels on its critical path, which is schedulable at
// T=12 only with parallel multipliers and admits serial multipliers at
// T=15/19 (cf. Figure 2).
func Cosine() *cdfg.Graph {
	g := cdfg.New("cosine")
	// Inputs x0..x7.
	in := make([]cdfg.NodeID, 8)
	for i := range in {
		in[i] = g.MustAddNode(fmt.Sprintf("x%d", i), cdfg.Input)
	}
	add := func(name string, a, b cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Add)
		g.MustAddEdge(a, id)
		g.MustAddEdge(b, id)
		return id
	}
	sub := func(name string, a, b cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Sub)
		g.MustAddEdge(a, id)
		g.MustAddEdge(b, id)
		return id
	}
	mul1 := func(name string, a cdfg.NodeID) cdfg.NodeID { // multiply by constant coefficient
		id := g.MustAddNode(name, cdfg.Mul)
		g.MustAddEdge(a, id)
		return id
	}
	out := func(name string, a cdfg.NodeID) {
		id := g.MustAddNode(name, cdfg.Output)
		g.MustAddEdge(a, id)
	}

	// Stage 1 butterflies: s_i = x_i + x_{7-i}, d_i = x_i - x_{7-i}.
	s := make([]cdfg.NodeID, 4)
	d := make([]cdfg.NodeID, 4)
	for i := 0; i < 4; i++ {
		s[i] = add(fmt.Sprintf("s%d", i), in[i], in[7-i])
		d[i] = sub(fmt.Sprintf("d%d", i), in[i], in[7-i])
	}

	// Even half: 4-point DCT of s0..s3.
	t0 := add("t0", s[0], s[3])
	t1 := add("t1", s[1], s[2])
	t2 := sub("t2", s[1], s[2])
	t3 := sub("t3", s[0], s[3])
	ae := add("ae", t0, t1)
	be := sub("be", t0, t1)
	x0 := mul1("m_x0", ae) // c4*(t0+t1)
	x4 := mul1("m_x4", be) // c4*(t0-t1)
	m1 := mul1("m1", t3)   // c2*t3
	m2 := mul1("m2", t2)   // c6*t2
	m3 := mul1("m3", t3)   // c6*t3
	m4 := mul1("m4", t2)   // c2*t2
	x2 := add("a_x2", m1, m2)
	x6 := sub("s_x6", m3, m4)

	// Odd half: two rotations of (d0,d3) and (d1,d2).
	r1a1 := mul1("r1a1", d[0]) // c3*d0
	r1a2 := mul1("r1a2", d[3]) // s3*d3
	r1b1 := mul1("r1b1", d[3]) // c3*d3
	r1b2 := mul1("r1b2", d[0]) // s3*d0
	r2a1 := mul1("r2a1", d[1]) // c1*d1
	r2a2 := mul1("r2a2", d[2]) // s1*d2
	r2b1 := mul1("r2b1", d[2]) // c1*d2
	r2b2 := mul1("r2b2", d[1]) // s1*d1
	r1a := add("r1a", r1a1, r1a2)
	r1b := sub("r1b", r1b1, r1b2)
	r2a := add("r2a", r2a1, r2a2)
	r2b := sub("r2b", r2b1, r2b2)
	// Butterflies.
	b1 := add("b1", r1a, r2a)
	b2 := sub("b2", r1a, r2a)
	b3 := add("b3", r1b, r2b)
	b4 := sub("b4", r1b, r2b)
	// Middle scalings by c4 (sqrt(2)/2).
	x3 := mul1("m_x3", b2)
	x5 := mul1("m_x5", b4)

	out("X0", x0)
	out("X1", b1)
	out("X2", x2)
	out("X3", x3)
	out("X4", x4)
	out("X5", x5)
	out("X6", x6)
	out("X7", b3)

	mustValid(g)
	return g
}
