package bench

import (
	"fmt"

	"pchls/internal/cdfg"
)

// FIR returns an n-tap finite-impulse-response filter benchmark: n
// coefficient multiplications of delayed samples followed by a balanced
// adder tree, with n sample inputs and one output. FIR(16) is the common
// "fir" secondary benchmark. n must be at least 2.
func FIR(n int) *cdfg.Graph {
	if n < 2 {
		panic(fmt.Sprintf("bench: FIR(%d): need at least 2 taps", n))
	}
	g := cdfg.New(fmt.Sprintf("fir%d", n))
	level := make([]cdfg.NodeID, n)
	for i := 0; i < n; i++ {
		x := g.MustAddNode(fmt.Sprintf("x%d", i), cdfg.Input)
		m := g.MustAddNode(fmt.Sprintf("m%d", i), cdfg.Mul)
		g.MustAddEdge(x, m)
		level[i] = m
	}
	// Balanced adder tree.
	layer := 0
	for len(level) > 1 {
		var next []cdfg.NodeID
		for i := 0; i+1 < len(level); i += 2 {
			a := g.MustAddNode(fmt.Sprintf("a%d_%d", layer, i/2), cdfg.Add)
			g.MustAddEdge(level[i], a)
			g.MustAddEdge(level[i+1], a)
			next = append(next, a)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		layer++
	}
	o := g.MustAddNode("y", cdfg.Output)
	g.MustAddEdge(level[0], o)
	mustValid(g)
	return g
}

// AR returns the auto-regressive lattice filter secondary benchmark: a
// four-stage lattice, each stage performing two cross multiplications and
// two accumulations (16 multiplications, 12 additions in the classical
// instance modeled here), with two signal inputs per stage pair and two
// outputs.
func AR() *cdfg.Graph {
	g := cdfg.New("ar")
	add := func(name string, a, b cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Add)
		g.MustAddEdge(a, id)
		g.MustAddEdge(b, id)
		return id
	}
	mul := func(name string, a, b cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Mul)
		g.MustAddEdge(a, id)
		if b != cdfg.None {
			g.MustAddEdge(b, id)
		}
		return id
	}
	f := g.MustAddNode("f0", cdfg.Input)
	b := g.MustAddNode("b0", cdfg.Input)
	fcur, bcur := f, b
	for s := 0; s < 4; s++ {
		// Lattice stage: f' = f + k*b ; b' = b + k*f, with reflection
		// coefficients as constants; each product uses two multiplies
		// (coefficient scaling then cross scaling) to match the 16-mult
		// op profile of the classical AR benchmark.
		p := fmt.Sprintf("s%d_", s)
		mf1 := mul(p+"mf1", bcur, cdfg.None)
		mf2 := mul(p+"mf2", mf1, cdfg.None)
		mb1 := mul(p+"mb1", fcur, cdfg.None)
		mb2 := mul(p+"mb2", mb1, cdfg.None)
		fn := add(p+"fa", fcur, mf2)
		bn := add(p+"ba", bcur, mb2)
		if s < 2 {
			// Inter-stage smoothing adds (state updates) on the first two
			// stages only, matching the 16-multiply/12-add op profile.
			fcur = add(p+"fs", fn, mf1)
			bcur = add(p+"bs", bn, mb1)
		} else {
			fcur, bcur = fn, bn
		}
	}
	of := g.MustAddNode("fout", cdfg.Output)
	g.MustAddEdge(fcur, of)
	ob := g.MustAddNode("bout", cdfg.Output)
	g.MustAddEdge(bcur, ob)
	mustValid(g)
	return g
}

// Diffeq2 returns a second-order differential-equation integrator in the
// style of HAL but with a deeper multiply chain (used as an extra stress
// benchmark): two Euler steps fused, 10 multiplications, 4 additions,
// 4 subtractions, 1 comparison.
func Diffeq2() *cdfg.Graph {
	g := cdfg.New("diffeq2")
	x := g.MustAddNode("x", cdfg.Input)
	y := g.MustAddNode("y", cdfg.Input)
	u := g.MustAddNode("u", cdfg.Input)
	dx := g.MustAddNode("dx", cdfg.Input)
	a := g.MustAddNode("a", cdfg.Input)

	add := func(name string, p, q cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Add)
		g.MustAddEdge(p, id)
		g.MustAddEdge(q, id)
		return id
	}
	sub := func(name string, p, q cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Sub)
		g.MustAddEdge(p, id)
		g.MustAddEdge(q, id)
		return id
	}
	mul := func(name string, p, q cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Mul)
		g.MustAddEdge(p, id)
		if q != cdfg.None {
			g.MustAddEdge(q, id)
		}
		return id
	}

	// First step.
	x1 := add("x1", x, dx)
	m1 := mul("m1", x, cdfg.None) // 3*x
	m2 := mul("m2", u, dx)
	m3 := mul("m3", y, cdfg.None) // 3*y
	m4 := mul("m4", m1, m2)
	m5 := mul("m5", m3, dx)
	s1 := sub("s1", u, m4)
	u1 := sub("u1", s1, m5)
	y1 := add("y1", y, m2)
	// Second (fused) step reusing first-step results.
	x2 := add("x2", x1, dx)
	m6 := mul("m6", x1, cdfg.None) // 3*x1
	m7 := mul("m7", u1, dx)
	m8 := mul("m8", y1, cdfg.None) // 3*y1
	m9 := mul("m9", m6, m7)
	m10 := mul("m10", m8, dx)
	s2 := sub("s2", u1, m9)
	u2 := sub("u2", s2, m10)
	y2 := add("y2", y1, m7)
	c := g.MustAddNode("c", cdfg.Cmp)
	g.MustAddEdge(x2, c)
	g.MustAddEdge(a, c)

	outputs := []struct {
		name string
		src  cdfg.NodeID
	}{{"out_x2", x2}, {"out_y2", y2}, {"out_u2", u2}, {"out_c", c}}
	for _, o := range outputs {
		id := g.MustAddNode(o.name, cdfg.Output)
		g.MustAddEdge(o.src, id)
	}
	mustValid(g)
	return g
}

// All returns the full benchmark suite keyed by name, including the three
// graphs of the paper's Figure 2 and the secondary graphs.
func All() map[string]*cdfg.Graph {
	return map[string]*cdfg.Graph{
		"hal":      HAL(),
		"cosine":   Cosine(),
		"elliptic": Elliptic(),
		"fir16":    FIR(16),
		"ar":       AR(),
		"diffeq2":  Diffeq2(),
		"fft8":     FFT(8),
	}
}

// ByName returns the named benchmark graph, or an error listing the
// available names.
func ByName(name string) (*cdfg.Graph, error) {
	switch name {
	case "hal":
		return HAL(), nil
	case "cosine":
		return Cosine(), nil
	case "elliptic":
		return Elliptic(), nil
	case "fir16":
		return FIR(16), nil
	case "ar":
		return AR(), nil
	case "diffeq2":
		return Diffeq2(), nil
	case "fft8":
		return FFT(8), nil
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q (have hal, cosine, elliptic, fir16, ar, diffeq2, fft8)", name)
}
