package bench

import (
	"fmt"

	"pchls/internal/cdfg"
)

// FFT returns an n-point decimation-in-time FFT flow graph (n a power of
// two, n >= 4), modelled over real arithmetic: each butterfly scales its
// odd input by a twiddle constant (one multiplication) and produces sum
// and difference (one addition, one subtraction). The graph has
// (n/2)·log2(n) butterflies — FFT(8) gives 12 multiplications, 12
// additions and 12 subtractions plus 8 inputs and 8 outputs — and is used
// as a deep, regular stress benchmark for the synthesizer (it is not one
// of the paper's three graphs).
func FFT(n int) *cdfg.Graph {
	if n < 4 || n&(n-1) != 0 {
		panic(fmt.Sprintf("bench: FFT(%d): n must be a power of two >= 4", n))
	}
	g := cdfg.New(fmt.Sprintf("fft%d", n))
	cur := make([]cdfg.NodeID, n)
	for i := range cur {
		cur[i] = g.MustAddNode(fmt.Sprintf("x%d", i), cdfg.Input)
	}
	stage := 0
	for span := 1; span < n; span *= 2 {
		next := make([]cdfg.NodeID, n)
		for base := 0; base < n; base += 2 * span {
			for k := 0; k < span; k++ {
				a := cur[base+k]
				b := cur[base+k+span]
				// Twiddle scaling of the odd leg (constant coefficient).
				tw := g.MustAddNode(fmt.Sprintf("s%d_t%d", stage, base+k), cdfg.Mul)
				g.MustAddEdge(b, tw)
				sum := g.MustAddNode(fmt.Sprintf("s%d_a%d", stage, base+k), cdfg.Add)
				g.MustAddEdge(a, sum)
				g.MustAddEdge(tw, sum)
				diff := g.MustAddNode(fmt.Sprintf("s%d_s%d", stage, base+k), cdfg.Sub)
				g.MustAddEdge(a, diff)
				g.MustAddEdge(tw, diff)
				next[base+k] = sum
				next[base+k+span] = diff
			}
		}
		cur = next
		stage++
	}
	for i, id := range cur {
		out := g.MustAddNode(fmt.Sprintf("X%d", i), cdfg.Output)
		g.MustAddEdge(id, out)
	}
	mustValid(g)
	return g
}
