package bench

import "pchls/internal/cdfg"

// Elliptic returns the fifth-order elliptic wave filter benchmark,
// reconstructed as a wave-digital filter data-flow graph with the canonical
// operation counts of the classical "elliptic" HLS benchmark: 26 additions
// and 8 (coefficient) multiplications, with one sample input, one sample
// output and seven delay-state inputs/outputs (50 nodes total).
//
// The structure is two symmetric adaptor half-chains (each: two cascaded
// multiply-accumulate adaptors plus one side adaptor) merged by a two-
// multiplication output section. Four multiplications lie on the critical
// path — under Table 1 the graph is schedulable at T=22 only when the
// critical-path multipliers are parallel (2-cycle) units, while the two
// side-adaptor multipliers have slack for serial (4-cycle) units, which is
// the area/power trade-off the elliptic curve of Figure 2 explores.
//
// The exact historical EWF netlist is not reproduced verbatim (it is not
// in the paper); this reconstruction preserves operation counts, critical-
// path multiply depth and slack distribution, which are the properties the
// experiments depend on.
func Elliptic() *cdfg.Graph {
	g := cdfg.New("elliptic")
	in := g.MustAddNode("in", cdfg.Input)
	sv := make([]cdfg.NodeID, 8) // sv[1..7]
	for i := 1; i <= 7; i++ {
		sv[i] = g.MustAddNode(svName(i), cdfg.Input)
	}
	add := func(name string, a, b cdfg.NodeID) cdfg.NodeID {
		id := g.MustAddNode(name, cdfg.Add)
		g.MustAddEdge(a, id)
		g.MustAddEdge(b, id)
		return id
	}
	cmul := func(name string, a cdfg.NodeID) cdfg.NodeID { // multiply by filter coefficient
		id := g.MustAddNode(name, cdfg.Mul)
		g.MustAddEdge(a, id)
		return id
	}
	out := func(name string, a cdfg.NodeID) {
		id := g.MustAddNode(name, cdfg.Output)
		g.MustAddEdge(a, id)
	}

	// half builds one adaptor half-chain over states s1, s2, s3. It
	// returns the main merge tap (deep) and the side merge tap (shallow).
	half := func(prefix string, s1, s2, s3 cdfg.NodeID) (mainTap, sideTap cdfg.NodeID) {
		a1 := add(prefix+"1", in, s1)
		a2 := add(prefix+"2", a1, s2)
		m1 := cmul(prefix+"m1", a2)
		a3 := add(prefix+"3", m1, s1)
		a4 := add(prefix+"4", m1, a1)
		a9 := add(prefix+"9", a3, a4)
		out("n"+prefix+"sv1", a9) // next state for s1
		m2 := cmul(prefix+"m2", a4)
		a5 := add(prefix+"5", m2, s2)
		a6 := add(prefix+"6", m2, a2)
		a10 := add(prefix+"10", a5, a6)
		out("n"+prefix+"sv2", a10) // next state for s2
		// Side adaptor (off the critical path; its multiplier has slack).
		a7 := add(prefix+"7", a2, s3)
		m3 := cmul(prefix+"m3", a7)
		a8 := add(prefix+"8", m3, s3)
		out("n"+prefix+"sv3", a8) // next state for s3
		return a6, a8
	}

	lMain, lSide := half("l", sv[1], sv[2], sv[3])
	rMain, rSide := half("r", sv[4], sv[5], sv[6])

	// Output section.
	t1 := add("t1", lMain, rMain)
	t2 := add("t2", lSide, rSide)
	t3 := add("t3", t1, t2)
	tm1 := cmul("tm1", t3)
	t4 := add("t4", tm1, sv[7])
	out("nsv7", t4)
	t5 := add("t5", tm1, t3)
	tm2 := cmul("tm2", t5)
	t6 := add("t6", tm2, t1)
	out("out", t6)

	mustValid(g)
	return g
}

func svName(i int) string { return "sv" + string(rune('0'+i)) }
