package bench

import (
	"fmt"
	"math/rand"

	"pchls/internal/cdfg"
)

// RandomConfig parameterizes the layered random DAG generator.
type RandomConfig struct {
	// Nodes is the number of computation nodes (inputs/outputs are added
	// on top). Must be >= 1.
	Nodes int
	// MaxWidth bounds the number of nodes per layer (default 4).
	MaxWidth int
	// MulFraction is the approximate fraction of multiply nodes among the
	// computations (default 0.3); the rest are adds/subs/compares.
	MulFraction float64
}

// Random generates a random layered data-flow DAG: nodes are grouped into
// layers of at most MaxWidth; each non-source node draws 1-2 predecessors
// from earlier layers. The result is always a valid (acyclic, arity-
// respecting) graph. Generation is fully determined by rng.
func Random(rng *rand.Rand, cfg RandomConfig) *cdfg.Graph {
	if cfg.Nodes < 1 {
		panic(fmt.Sprintf("bench: Random: Nodes = %d", cfg.Nodes))
	}
	if cfg.MaxWidth <= 0 {
		cfg.MaxWidth = 4
	}
	if cfg.MulFraction <= 0 {
		cfg.MulFraction = 0.3
	}
	g := cdfg.New("random")
	compOps := []cdfg.Op{cdfg.Add, cdfg.Sub, cdfg.Cmp}

	var all []cdfg.NodeID
	var prevLayers []cdfg.NodeID // nodes in all earlier layers
	made := 0
	layer := 0
	for made < cfg.Nodes {
		width := rng.Intn(cfg.MaxWidth) + 1
		if width > cfg.Nodes-made {
			width = cfg.Nodes - made
		}
		var thisLayer []cdfg.NodeID
		for k := 0; k < width; k++ {
			op := compOps[rng.Intn(len(compOps))]
			if rng.Float64() < cfg.MulFraction {
				op = cdfg.Mul
			}
			id := g.MustAddNode(fmt.Sprintf("n%d_%d", layer, k), op)
			if len(prevLayers) > 0 {
				deg := rng.Intn(2) + 1
				seen := map[cdfg.NodeID]bool{}
				for e := 0; e < deg; e++ {
					p := prevLayers[rng.Intn(len(prevLayers))]
					if !seen[p] {
						seen[p] = true
						g.MustAddEdge(p, id)
					}
				}
			}
			thisLayer = append(thisLayer, id)
			all = append(all, id)
			made++
		}
		prevLayers = append(prevLayers, thisLayer...)
		layer++
	}
	// Attach explicit transfers: every computation source is fed by an
	// Input node and every sink drives an Output node, so the generated
	// graph is always arity-valid.
	for _, id := range append([]cdfg.NodeID(nil), all...) {
		n := g.Node(id)
		if len(g.Preds(id)) == 0 {
			in := g.MustAddNode("in_"+n.Name, cdfg.Input)
			g.MustAddEdge(in, id)
		}
		if len(g.Succs(id)) == 0 {
			out := g.MustAddNode("out_"+n.Name, cdfg.Output)
			g.MustAddEdge(id, out)
		}
	}
	mustValid(g)
	return g
}
