package bench

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pchls/internal/cdfg"
	"pchls/internal/library"
	"pchls/internal/sched"
)

func TestHALOpCounts(t *testing.T) {
	g := HAL()
	counts := g.OpCounts()
	want := map[cdfg.Op]int{
		cdfg.Mul: 6, cdfg.Add: 2, cdfg.Sub: 2, cdfg.Cmp: 1,
		cdfg.Input: 5, cdfg.Output: 4,
	}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("hal %s count = %d, want %d", op, counts[op], n)
		}
	}
	if g.N() != 20 {
		t.Errorf("hal has %d nodes, want 20", g.N())
	}
}

func TestCosineOpCounts(t *testing.T) {
	g := Cosine()
	counts := g.OpCounts()
	want := map[cdfg.Op]int{
		cdfg.Mul: 16, cdfg.Add: 12, cdfg.Sub: 12,
		cdfg.Input: 8, cdfg.Output: 8,
	}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("cosine %s count = %d, want %d", op, counts[op], n)
		}
	}
	if g.N() != 56 {
		t.Errorf("cosine has %d nodes, want 56", g.N())
	}
}

func TestEllipticOpCounts(t *testing.T) {
	g := Elliptic()
	counts := g.OpCounts()
	// The classical elliptic wave filter profile: 26 additions and 8
	// multiplications.
	want := map[cdfg.Op]int{
		cdfg.Add: 26, cdfg.Mul: 8,
		cdfg.Input: 8, cdfg.Output: 8,
	}
	for op, n := range want {
		if counts[op] != n {
			t.Errorf("elliptic %s count = %d, want %d", op, counts[op], n)
		}
	}
	if g.N() != 50 {
		t.Errorf("elliptic has %d nodes, want 50", g.N())
	}
}

// TestFigure2TimeConstraintsAreFeasible checks the premises of the paper's
// Figure 2: each benchmark must be schedulable (power-unconstrained) at the
// time constraints the figure names, with the fastest library modules.
func TestFigure2TimeConstraintsAreFeasible(t *testing.T) {
	lib := library.Table1()
	fastest := sched.UniformFastest(lib)
	cases := []struct {
		g *cdfg.Graph
		T int
	}{
		{HAL(), 10}, {HAL(), 17},
		{Cosine(), 12}, {Cosine(), 15}, {Cosine(), 19},
		{Elliptic(), 22},
	}
	for _, tc := range cases {
		s, err := sched.ASAP(tc.g, fastest)
		if err != nil {
			t.Fatalf("%s: %v", tc.g.Name, err)
		}
		if s.Length() > tc.T {
			t.Errorf("%s: critical path %d exceeds Figure 2 time constraint T=%d", tc.g.Name, s.Length(), tc.T)
		}
	}
}

// TestSerialMultiplierHeadroom checks the library trade-off the figure
// depends on: with serial (4-cycle) multipliers HAL fits T=17 but not
// T=10, and cosine fits T=15 but not T=12.
func TestSerialMultiplierHeadroom(t *testing.T) {
	smallest := sched.UniformSmallest(library.Table1())
	hal, _ := sched.ASAP(HAL(), smallest)
	if hal.Length() > 17 {
		t.Errorf("hal serial critical path %d > 17", hal.Length())
	}
	if hal.Length() <= 10 {
		t.Errorf("hal serial critical path %d <= 10; expected serial mults to be infeasible at T=10", hal.Length())
	}
	cos, _ := sched.ASAP(Cosine(), smallest)
	if cos.Length() > 15 {
		t.Errorf("cosine serial critical path %d > 15", cos.Length())
	}
	if cos.Length() <= 12 {
		t.Errorf("cosine serial critical path %d <= 12; expected serial mults to be infeasible at T=12", cos.Length())
	}
}

func TestEllipticCriticalPathHasSlackAt22(t *testing.T) {
	fastest := sched.UniformFastest(library.Table1())
	s, err := sched.ASAP(Elliptic(), fastest)
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() > 22 {
		t.Fatalf("elliptic critical path %d > 22", s.Length())
	}
	if 22-s.Length() < 2 {
		t.Fatalf("elliptic should keep some slack at T=22, critical path %d", s.Length())
	}
	// All-serial multipliers must NOT fit at T=22 (the trade-off exists).
	smallest := sched.UniformSmallest(library.Table1())
	ss, _ := sched.ASAP(Elliptic(), smallest)
	if ss.Length() <= 22 {
		t.Fatalf("elliptic all-serial critical path %d <= 22; expected pressure toward parallel multipliers", ss.Length())
	}
}

func TestFIR(t *testing.T) {
	g := FIR(16)
	counts := g.OpCounts()
	if counts[cdfg.Mul] != 16 || counts[cdfg.Add] != 15 {
		t.Fatalf("fir16 ops = %v", counts)
	}
	if counts[cdfg.Input] != 16 || counts[cdfg.Output] != 1 {
		t.Fatalf("fir16 io = %v", counts)
	}
	// Odd tap count exercises the tree carry case.
	g5 := FIR(5)
	if c := g5.OpCounts(); c[cdfg.Add] != 4 {
		t.Fatalf("fir5 adds = %d, want 4", c[cdfg.Add])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FIR(1) should panic")
		}
	}()
	FIR(1)
}

func TestAR(t *testing.T) {
	g := AR()
	counts := g.OpCounts()
	if counts[cdfg.Mul] != 16 || counts[cdfg.Add] != 12 {
		t.Fatalf("ar ops = %v", counts)
	}
}

func TestDiffeq2(t *testing.T) {
	g := Diffeq2()
	counts := g.OpCounts()
	if counts[cdfg.Mul] != 10 || counts[cdfg.Add] != 4 || counts[cdfg.Sub] != 4 || counts[cdfg.Cmp] != 1 {
		t.Fatalf("diffeq2 ops = %v", counts)
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("All() has %d graphs", len(all))
	}
	for name, g := range all {
		if g.Name != name && name != "fir16" { // fir16's graph is named fir16 too
			t.Errorf("graph %q has name %q", name, g.Name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("benchmark %q invalid: %v", name, err)
		}
		got, err := ByName(name)
		if err != nil || got.N() != g.N() {
			t.Errorf("ByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown name")
	}
}

func TestBenchmarksScheduleUnderTable1(t *testing.T) {
	// Every benchmark must be fully coverable and schedulable with Table 1.
	lib := library.Table1()
	for name, g := range All() {
		if missing := lib.Covers(g); missing != nil {
			t.Errorf("%s: uncovered ops %v", name, missing)
			continue
		}
		s, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			t.Errorf("%s: asap failed: %v", name, err)
			continue
		}
		if err := s.Validate(0, 0); err != nil {
			t.Errorf("%s: invalid asap: %v", name, err)
		}
	}
}

func TestRandomGeneratorAlwaysValid(t *testing.T) {
	f := func(seed int64, szRaw, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := RandomConfig{
			Nodes:    int(szRaw%60) + 1,
			MaxWidth: int(widthRaw%6) + 1,
		}
		g := Random(rng, cfg)
		if err := g.Validate(); err != nil {
			return false
		}
		comp := 0
		for _, n := range g.Nodes() {
			if !n.Op.IsTransfer() {
				comp++
			}
		}
		return comp == cfg.Nodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministicForSeed(t *testing.T) {
	a := Random(rand.New(rand.NewSource(7)), RandomConfig{Nodes: 30})
	b := Random(rand.New(rand.NewSource(7)), RandomConfig{Nodes: 30})
	if a.Text() != b.Text() {
		t.Fatal("same seed produced different graphs")
	}
	c := Random(rand.New(rand.NewSource(8)), RandomConfig{Nodes: 30})
	if a.Text() == c.Text() {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestRandomPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Random with 0 nodes should panic")
		}
	}()
	Random(rand.New(rand.NewSource(1)), RandomConfig{Nodes: 0})
}

func TestFFT(t *testing.T) {
	g := FFT(8)
	counts := g.OpCounts()
	if counts[cdfg.Mul] != 12 || counts[cdfg.Add] != 12 || counts[cdfg.Sub] != 12 {
		t.Fatalf("fft8 ops = %v", counts)
	}
	if counts[cdfg.Input] != 8 || counts[cdfg.Output] != 8 {
		t.Fatalf("fft8 io = %v", counts)
	}
	// Depth: in(1) + 3 stages of (mul 2 + add 1) + out(1) = 11 with
	// parallel multipliers.
	s, err := sched.ASAP(g, sched.UniformFastest(library.Table1()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 11 {
		t.Fatalf("fft8 critical path = %d, want 11", s.Length())
	}
	// FFT(16): (16/2)*4 = 32 butterflies.
	g16 := FFT(16)
	if c := g16.OpCounts(); c[cdfg.Mul] != 32 {
		t.Fatalf("fft16 muls = %d, want 32", c[cdfg.Mul])
	}
	for _, bad := range []int{0, 3, 6, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FFT(%d) should panic", bad)
				}
			}()
			FFT(bad)
		}()
	}
}
