package sched

import (
	"errors"
	"math/rand"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
)

var incrBenchmarks = []string{"hal", "cosine", "elliptic", "fir16", "ar", "diffeq2", "fft8"}

func sameSchedule(t *testing.T, label string, want, got *Schedule) {
	t.Helper()
	for i := range want.Start {
		if want.Start[i] != got.Start[i] {
			t.Fatalf("%s: start[%d] = %d, want %d", label, i, got.Start[i], want.Start[i])
		}
	}
}

// TestPASAPDirtyAllDirtyMatchesFull: with every node dirty the pinned
// scheduler degenerates to the full one, on every benchmark, with and
// without a power cap.
func TestPASAPDirtyAllDirtyMatchesFull(t *testing.T) {
	lib := library.Table1()
	for _, name := range incrBenchmarks {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := UniformFastest(lib)
		asap, err := ASAP(g, b)
		if err != nil {
			t.Fatal(err)
		}
		for _, pmax := range []float64{0, asap.PeakPower() * 0.7} {
			opts := Options{PowerMax: pmax}
			full, err := PASAP(g, b, opts)
			if err != nil {
				t.Fatalf("%s P<=%g: %v", name, pmax, err)
			}
			dirty := make([]bool, g.N())
			for i := range dirty {
				dirty[i] = true
			}
			inc, err := PASAPDirty(g, b, opts, full, dirty)
			if err != nil {
				t.Fatalf("%s P<=%g: dirty run: %v", name, pmax, err)
			}
			sameSchedule(t, name, full, inc)
		}
	}
}

// TestDirtySubsetMatchesFull pins random clean subsets at the full run's
// own placements: the dirty-subset schedulers must reproduce the full
// result exactly, for PASAP, PALAP and the combined window derivation.
func TestDirtySubsetMatchesFull(t *testing.T) {
	lib := library.Table1()
	rng := rand.New(rand.NewSource(7))
	for _, name := range incrBenchmarks {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := UniformFastest(lib)
		asap, err := ASAP(g, b)
		if err != nil {
			t.Fatal(err)
		}
		deadline := asap.Length() + 3
		for _, pmax := range []float64{0, asap.PeakPower() * 0.7} {
			opts := Options{PowerMax: pmax}
			early, err := PASAP(g, b, opts)
			if err != nil {
				t.Fatalf("%s P<=%g: pasap: %v", name, pmax, err)
			}
			full, err := Windows(g, b, deadline, opts)
			if err != nil {
				// Some benchmark/cap pairs are genuinely infeasible at this
				// deadline; the equivalence claim is vacuous there.
				continue
			}
			late, err := PALAP(g, b, deadline, opts)
			if err != nil {
				t.Fatalf("%s P<=%g: palap: %v", name, pmax, err)
			}
			for trial := 0; trial < 10; trial++ {
				dirty := make([]bool, g.N())
				for i := range dirty {
					dirty[i] = rng.Intn(3) == 0
				}
				e, err := PASAPDirty(g, b, opts, early, dirty)
				if err != nil {
					t.Fatalf("%s P<=%g trial %d: pasap dirty: %v", name, pmax, trial, err)
				}
				sameSchedule(t, name+"/pasap", early, e)
				l, err := PALAPDirty(g, b, deadline, opts, late, dirty)
				if err != nil {
					t.Fatalf("%s P<=%g trial %d: palap dirty: %v", name, pmax, trial, err)
				}
				sameSchedule(t, name+"/palap", late, l)
				ws, err := WindowsDirty(g, b, deadline, opts, full, dirty)
				if err != nil {
					t.Fatalf("%s P<=%g trial %d: windows dirty: %v", name, pmax, trial, err)
				}
				for i := range ws {
					if ws[i] != full[i] {
						t.Fatalf("%s P<=%g trial %d: window[%d] = %+v, want %+v", name, pmax, trial, i, ws[i], full[i])
					}
				}
			}
		}
	}
}

// TestPASAPDirtyStaleDetection corrupts the previous placement of a clean
// node and requires the replay to fail with ErrStale rather than silently
// diverge from the full scheduler.
func TestPASAPDirtyStaleDetection(t *testing.T) {
	lib := library.Table1()
	g, err := bench.ByName("hal")
	if err != nil {
		t.Fatal(err)
	}
	b := UniformFastest(lib)
	full, err := PASAP(g, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, g.N()) // nothing dirty: every node replayed

	// Shift one interior node one cycle late: in the unconstrained case
	// pasap always places at the precedence bound, so the replay must
	// detect the deviation.
	for i := 0; i < g.N(); i++ {
		if full.Start[i] == 0 {
			continue
		}
		prev := &Schedule{Start: append([]int(nil), full.Start...)}
		prev.Start[i]++
		if _, err := PASAPDirty(g, b, Options{}, prev, dirty); !errors.Is(err, ErrStale) {
			t.Fatalf("late pin of node %d: err = %v, want ErrStale", i, err)
		}
		break
	}

	// Shift a node before its precedence bound: replay must reject it too.
	for i := 0; i < g.N(); i++ {
		if len(g.Preds(cdfg.NodeID(i))) == 0 {
			continue
		}
		prev := &Schedule{Start: append([]int(nil), full.Start...)}
		prev.Start[i] = 0
		if full.Start[i] == 0 {
			continue
		}
		if _, err := PASAPDirty(g, b, Options{}, prev, dirty); !errors.Is(err, ErrStale) {
			t.Fatalf("early pin of node %d: err = %v, want ErrStale", i, err)
		}
		break
	}
}

// TestWindowsDirtyWithFixed exercises the dirty derivation under the
// synthesizer's real usage: some nodes fixed (committed), a power cap, and
// a dirty subset around one fixed node.
func TestWindowsDirtyWithFixed(t *testing.T) {
	lib := library.Table1()
	for _, name := range []string{"hal", "elliptic"} {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		b := UniformFastest(lib)
		asap, err := ASAP(g, b)
		if err != nil {
			t.Fatal(err)
		}
		deadline := asap.Length() + 3
		opts := Options{PowerMax: asap.PeakPower() * 0.8}
		base, err := Windows(g, b, deadline, opts)
		if err != nil {
			t.Fatalf("%s: base windows: %v", name, err)
		}
		// Fix node 0 at its early start, as the synthesizer does on commit.
		opts.Fixed = map[cdfg.NodeID]int{0: base[0].Early}
		full, err := Windows(g, b, deadline, opts)
		if err != nil {
			t.Fatalf("%s: fixed windows: %v", name, err)
		}
		dirty := make([]bool, g.N())
		for i := range dirty {
			dirty[i] = i%2 == 0
		}
		ws, err := WindowsDirty(g, b, deadline, opts, full, dirty)
		if err != nil {
			t.Fatalf("%s: dirty windows: %v", name, err)
		}
		for i := range ws {
			if ws[i] != full[i] {
				t.Fatalf("%s: window[%d] = %+v, want %+v", name, i, ws[i], full[i])
			}
		}
	}
}
