package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// AnnealConfig parameterizes the simulated-annealing scheduler.
type AnnealConfig struct {
	// Seed drives the random walk (results are deterministic per seed).
	Seed int64
	// Iterations is the number of proposed moves (default 20000).
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule
	// (defaults 50 and 0.05).
	StartTemp, EndTemp float64
}

// Anneal is the meta-heuristic baseline of the paper's related work: a
// simulated-annealing scheduler over start-time vectors. Moves shift one
// operation within its precedence slack; the energy function penalizes
// per-cycle power above powerMax, makespan above the deadline, and the
// implied functional-unit area (max concurrency per module, weighted by
// module area). It anneals from the ASAP schedule and returns the best
// feasible schedule found, or an error wrapping ErrPowerCap/ErrDeadline
// when the walk never reaches feasibility.
//
// It exists for the baseline comparison: the constructive pasap reaches
// comparable schedules in microseconds, while annealing needs thousands of
// evaluations — the argument the paper makes against meta-heuristics for
// this problem.
func Anneal(g *cdfg.Graph, bind Binding, lib *library.Library, deadline int, powerMax float64, cfg AnnealConfig) (*Schedule, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 20000
	}
	if cfg.StartTemp <= 0 {
		cfg.StartTemp = 50
	}
	if cfg.EndTemp <= 0 || cfg.EndTemp >= cfg.StartTemp {
		cfg.EndTemp = 0.05
	}
	s, err := ASAP(g, bind)
	if err != nil {
		return nil, err
	}
	if s.Length() > deadline {
		return nil, fmt.Errorf("sched: anneal: critical path %d exceeds deadline %d: %w", s.Length(), deadline, ErrDeadline)
	}
	if powerMax > 0 {
		for i, p := range s.Power {
			if p > powerMax+1e-9 {
				return nil, fmt.Errorf("sched: anneal: node %q draws %.3g > %.3g: %w",
					g.Node(cdfg.NodeID(i)).Name, p, powerMax, ErrPowerInfeasible)
			}
		}
	}
	n := g.N()
	if n == 0 {
		return s, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	areaOf := func(name string) float64 {
		if m, ok := lib.Lookup(name); ok {
			return m.Area
		}
		return 100
	}
	energy := func(sc *Schedule) float64 {
		e := 0.0
		if powerMax > 0 {
			for _, p := range sc.Profile() {
				if over := p - powerMax; over > 0 {
					e += 50 * over * over
				}
			}
		}
		if over := sc.Length() - deadline; over > 0 {
			e += 1000 * float64(over)
		}
		// Deterministic summation order (float addition is not
		// associative; map order would leak into accept decisions).
		need := MinResources(sc)
		names := make([]string, 0, len(need))
		for name := range need {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			e += float64(need[name]) * areaOf(name)
		}
		return e
	}

	cur := s.Clone()
	curE := energy(cur)
	best := cur.Clone()
	bestE := curE
	bestFeasible := cur.Validate(powerMax, deadline) == nil

	cool := math.Pow(cfg.EndTemp/cfg.StartTemp, 1/float64(cfg.Iterations))
	temp := cfg.StartTemp
	for it := 0; it < cfg.Iterations; it++ {
		v := cdfg.NodeID(rng.Intn(n))
		// Precedence slack of v against its CURRENT neighbours.
		lo := 0
		for _, p := range g.Preds(v) {
			if e := cur.Start[p] + cur.Delay[p]; e > lo {
				lo = e
			}
		}
		hi := deadline - cur.Delay[v]
		for _, w := range g.Succs(v) {
			if lim := cur.Start[w] - cur.Delay[v]; lim < hi {
				hi = lim
			}
		}
		if hi < lo {
			temp *= cool
			continue
		}
		old := cur.Start[v]
		cur.Start[v] = lo + rng.Intn(hi-lo+1)
		newE := energy(cur)
		if newE <= curE || rng.Float64() < math.Exp((curE-newE)/temp) {
			curE = newE
			feasible := cur.Validate(powerMax, deadline) == nil
			if feasible && (!bestFeasible || newE < bestE) {
				best = cur.Clone()
				bestE = newE
				bestFeasible = true
			}
		} else {
			cur.Start[v] = old
		}
		temp *= cool
	}
	if !bestFeasible {
		return nil, fmt.Errorf("sched: anneal: no feasible schedule found in %d iterations: %w", cfg.Iterations, ErrPowerCap)
	}
	return best, nil
}
