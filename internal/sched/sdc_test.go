package sched

import (
	"math/rand"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/gen"
)

// TestSDCBoundsMatchUnconstrainedPASAP pins the defining property of the
// SDC bounds: with no power cap, Early[v] is exactly the PASAP start and
// LateEnd[v]-delay[v] exactly the PALAP start, for random graphs and
// random pinned subsets. PASAP/PALAP with PowerMax <= 0 degenerate to
// classical ASAP/ALAP under the same fixed starts, which is the same
// difference-constraint system the SDC sweep solves.
func TestSDCBoundsMatchUnconstrainedPASAP(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph: gen.GraphConfig{Nodes: 10 + int(seed%25)},
		})
		g, lib := inst.Graph, inst.Library
		n := g.N()
		topo, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("seed %d: topo: %v", seed, err)
		}
		bind := UniformFastest(lib)
		delays := make([]int, n)
		powers := make([]float64, n)
		for i := 0; i < n; i++ {
			m := bind(g.Node(cdfg.NodeID(i)))
			delays[i] = m.Delay
			powers[i] = m.Power
		}
		// Deadline with generous slack so pinning a prefix at its ASAP
		// start stays feasible.
		deadline := inst.Deadline * 2

		fixed := make([]int, n)
		for i := range fixed {
			fixed[i] = -1
		}
		rng := rand.New(rand.NewSource(seed))
		opts := Options{Delays: delays, Powers: powers, FixedStarts: fixed}

		// Three rounds: no pins, then two rounds pinning a random set of
		// nodes at their current PASAP starts (mirroring how synthesis
		// pins committed operations).
		for round := 0; round < 3; round++ {
			asap, err := PASAP(g, nil, opts)
			if err != nil {
				t.Fatalf("seed %d round %d: pasap: %v", seed, round, err)
			}
			alap, err := PALAP(g, nil, deadline, opts)
			if err != nil {
				t.Fatalf("seed %d round %d: palap: %v", seed, round, err)
			}
			var b SDCBounds
			DeriveSDCBounds(g, topo, deadline, delays, fixed, nil, nil, &b)
			for i := 0; i < n; i++ {
				if b.Early[i] != asap.Start[i] {
					t.Fatalf("seed %d round %d node %d: Early = %d, pasap start = %d",
						seed, round, i, b.Early[i], asap.Start[i])
				}
				if got, want := b.LateEnd[i]-delays[i], alap.Start[i]; got != want {
					t.Fatalf("seed %d round %d node %d: LateEnd-delay = %d, palap start = %d",
						seed, round, i, got, want)
				}
			}
			// Pin a fresh random subset at ASAP starts for the next round.
			for i := 0; i < n; i++ {
				if rng.Intn(3) == 0 {
					fixed[i] = asap.Start[i]
				}
			}
		}
	}
}

// TestSDCBoundsEmptyWindowOnInfeasible checks that an over-constrained
// system yields an empty window rather than an error: a node pinned past
// the point where its successors can meet the deadline gets
// LateEnd - delay < Early somewhere downstream.
func TestSDCBoundsEmptyWindowOnInfeasible(t *testing.T) {
	g := cdfg.New("tight")
	a := g.MustAddNode("a", cdfg.Mul)
	b := g.MustAddNode("b", cdfg.Mul)
	g.MustAddEdge(a, b)
	topo, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	delays := []int{3, 3}
	// Deadline 5 cannot fit two chained 3-cycle ops.
	var bounds SDCBounds
	DeriveSDCBounds(g, topo, 5, delays, []int{-1, -1}, nil, nil, &bounds)
	if bounds.Early[1]+delays[1] <= bounds.LateEnd[1] && bounds.Early[0]+delays[0] <= bounds.LateEnd[0] {
		t.Fatalf("expected an empty window: bounds %+v", bounds)
	}

	// Pinning a at 4 makes b's window empty even with a loose deadline.
	DeriveSDCBounds(g, topo, 9, delays, []int{4, -1}, nil, nil, &bounds)
	if bounds.Early[0] != 4 || bounds.LateEnd[0] != 7 {
		t.Fatalf("pinned node bounds = %+v, want start 4 end 7", bounds)
	}
	if bounds.Early[1]+delays[1] <= bounds.LateEnd[1] {
		t.Fatalf("successor of late pin should have an empty window: %+v", bounds)
	}
}
