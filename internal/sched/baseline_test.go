package sched

import (
	"errors"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

func TestListScheduleSerializesOnScarceResources(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	// One parallel multiplier only: the three multiplies serialize.
	res := map[string]int{
		library.NameMulPar: 1,
		library.NameAdd:    1,
		library.NameInput:  1,
		library.NameOutput: 1,
	}
	s, err := ListSchedule(g, bind, res)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(0, 0); err != nil {
		t.Fatalf("list schedule invalid: %v", err)
	}
	// Multiply executions must not overlap.
	var muls []cdfg.NodeID
	for _, n := range g.Nodes() {
		if n.Op == cdfg.Mul {
			muls = append(muls, n.ID)
		}
	}
	for i := 0; i < len(muls); i++ {
		for j := i + 1; j < len(muls); j++ {
			a, b := muls[i], muls[j]
			if s.Start[a] < s.End(b) && s.Start[b] < s.End(a) {
				t.Fatalf("muls %d and %d overlap: [%d,%d) vs [%d,%d)", a, b, s.Start[a], s.End(a), s.Start[b], s.End(b))
			}
		}
	}
	// With ample resources the schedule matches ASAP.
	ample := map[string]int{
		library.NameMulPar: 10, library.NameAdd: 10,
		library.NameInput: 10, library.NameOutput: 10,
	}
	sa, err := ListSchedule(g, bind, ample)
	if err != nil {
		t.Fatal(err)
	}
	asap, _ := ASAP(g, bind)
	if sa.Length() != asap.Length() {
		t.Fatalf("ample list schedule length %d, asap %d", sa.Length(), asap.Length())
	}
}

func TestListScheduleMissingResource(t *testing.T) {
	g := wide(t, 2)
	_, err := ListSchedule(g, fastest(t), map[string]int{library.NameMulPar: 1})
	if err == nil {
		t.Fatal("list schedule accepted missing module instances")
	}
}

func TestListScheduleRespectsAllocation(t *testing.T) {
	g := wide(t, 4)
	bind := fastest(t)
	res := map[string]int{
		library.NameMulPar: 2,
		library.NameAdd:    1,
		library.NameInput:  1,
		library.NameOutput: 1,
	}
	s, err := ListSchedule(g, bind, res)
	if err != nil {
		t.Fatal(err)
	}
	need := MinResources(s)
	for name, k := range need {
		if k > res[name] {
			t.Errorf("schedule uses %d x %q, allocated %d", k, name, res[name])
		}
	}
}

func TestMinResources(t *testing.T) {
	g := wide(t, 3)
	s, _ := ASAP(g, fastest(t))
	need := MinResources(s)
	if need[library.NameMulPar] != 3 {
		t.Fatalf("ASAP wide(3) needs %d parallel mults, want 3", need[library.NameMulPar])
	}
}

func TestForceDirectedValidAndResourceEfficient(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	asap, _ := ASAP(g, bind)
	deadline := asap.Length() + 6
	s, err := ForceDirected(g, bind, deadline)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(0, deadline); err != nil {
		t.Fatalf("fds invalid: %v", err)
	}
	// With slack, FDS should need fewer concurrent multipliers than ASAP.
	if MinResources(s)[library.NameMulPar] >= MinResources(asap)[library.NameMulPar] {
		t.Fatalf("fds mults %d, asap mults %d — expected balancing",
			MinResources(s)[library.NameMulPar], MinResources(asap)[library.NameMulPar])
	}
}

func TestForceDirectedCriticalDeadline(t *testing.T) {
	g := chain(t)
	bind := fastest(t)
	asap, _ := ASAP(g, bind)
	s, err := ForceDirected(g, bind, asap.Length())
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != asap.Length() {
		t.Fatalf("fds at critical deadline has length %d, want %d", s.Length(), asap.Length())
	}
}

func TestForceDirectedImpossibleDeadline(t *testing.T) {
	g := chain(t)
	if _, err := ForceDirected(g, fastest(t), 2); !errors.Is(err, ErrDeadline) {
		t.Fatalf("fds = %v, want ErrDeadline", err)
	}
}

func TestForceDirectedEmptyGraph(t *testing.T) {
	g := cdfg.New("empty")
	s, err := ForceDirected(g, fastest(t), 5)
	if err != nil || s.Length() != 0 {
		t.Fatalf("fds on empty graph: %v, %d", err, s.Length())
	}
}

func TestTwoStepMeetsPowerWhenSlackAllows(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	asap, _ := ASAP(g, bind)
	deadline := asap.Length() + 8
	pmax := 9.0
	s, err := TwoStep(g, bind, deadline, pmax)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pmax, deadline); err != nil {
		t.Fatalf("twostep invalid: %v", err)
	}
}

func TestTwoStepUnconstrainedPower(t *testing.T) {
	g := chain(t)
	s, err := TwoStep(g, fastest(t), 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(0, 10); err != nil {
		t.Fatal(err)
	}
}

func TestTwoStepSingleOpInfeasible(t *testing.T) {
	g := chain(t)
	_, err := TwoStep(g, fastest(t), 10, 5) // parallel mult draws 8.1
	if !errors.Is(err, ErrPowerInfeasible) {
		t.Fatalf("twostep = %v, want ErrPowerInfeasible", err)
	}
}

func TestTwoStepFailsWithoutSlack(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	asap, _ := ASAP(g, bind)
	// At the critical-path deadline there is no slack to reorder; the
	// one-step algorithm (pasap) would also need more cycles, so the
	// baseline must report failure rather than a constraint-violating
	// schedule.
	_, err := TwoStep(g, bind, asap.Length(), 9.0)
	if err == nil {
		t.Fatal("twostep succeeded with zero slack under tight power cap")
	}
	if !errors.Is(err, ErrPowerCap) && !errors.Is(err, ErrDeadline) {
		t.Fatalf("twostep error = %v, want ErrPowerCap or ErrDeadline", err)
	}
}
