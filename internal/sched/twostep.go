package sched

import (
	"fmt"

	"pchls/internal/cdfg"
)

// TwoStep is the two-phase baseline the paper contrasts with (in the style
// of Luo & Jha and Lahiri et al.): step one builds a traditional
// time-constrained schedule (force-directed), step two reorders it to meet
// the power constraint by repeatedly delaying, within remaining slack, an
// operation that executes in the most overloaded cycle.
//
// It returns an error wrapping ErrPowerCap when the repair loop cannot
// reach the power constraint within the deadline, ErrDeadline when even the
// unconstrained schedule misses the deadline, and ErrPowerInfeasible when a
// single operation exceeds powerMax.
func TwoStep(g *cdfg.Graph, bind Binding, deadline int, powerMax float64) (*Schedule, error) {
	s, err := ForceDirected(g, bind, deadline)
	if err != nil {
		return nil, fmt.Errorf("sched: twostep: %w", err)
	}
	if powerMax <= 0 {
		return s, nil
	}
	for i := range s.Power {
		if s.Power[i] > powerMax+1e-9 {
			return nil, fmt.Errorf("sched: twostep: node %q draws %.3g > %.3g: %w",
				g.Node(cdfg.NodeID(i)).Name, s.Power[i], powerMax, ErrPowerInfeasible)
		}
	}
	// Repair loop: the schedule changes by at most one cycle of one op per
	// iteration; bound iterations generously.
	maxIter := g.N()*deadline + g.N() + 1
	for iter := 0; iter < maxIter; iter++ {
		worst, overload := worstCycle(s, powerMax)
		if worst < 0 {
			return s, nil // constraint met
		}
		id, ok := pickDelayable(g, s, worst, deadline)
		if !ok {
			return nil, fmt.Errorf("sched: twostep: cycle %d overloaded by %.3g with no delayable operation: %w",
				worst, overload, ErrPowerCap)
		}
		delayBy1(g, s, id)
	}
	return nil, fmt.Errorf("sched: twostep: power repair did not converge: %w", ErrPowerCap)
}

// worstCycle returns the most overloaded cycle index and its overload, or
// (-1, 0) when every cycle is within powerMax.
func worstCycle(s *Schedule, powerMax float64) (int, float64) {
	worst, over := -1, 0.0
	for c, p := range s.Profile() {
		if p > powerMax+1e-9 && p-powerMax > over {
			worst, over = c, p-powerMax
		}
	}
	return worst, over
}

// pickDelayable selects an operation executing in the given cycle that can
// be pushed one cycle later (rippling successors) without overrunning the
// deadline. Delaying an operation only relieves cycles up to its new start,
// so candidates with a later start need fewer repair steps: prefer larger
// start, then higher power (greater relief), then smaller ID.
func pickDelayable(g *cdfg.Graph, s *Schedule, cycle, deadline int) (cdfg.NodeID, bool) {
	bestID := cdfg.None
	bestStart, bestPower := -1, -1.0
	for i := range s.Start {
		id := cdfg.NodeID(i)
		if !(s.Start[i] <= cycle && cycle < s.Start[i]+s.Delay[i]) {
			continue
		}
		trial := s.Clone()
		delayBy1(g, trial, id)
		if trial.Length() > deadline {
			continue
		}
		if s.Start[i] > bestStart || (s.Start[i] == bestStart && s.Power[i] > bestPower) {
			bestID, bestStart, bestPower = id, s.Start[i], s.Power[i]
		}
	}
	return bestID, bestID != cdfg.None
}

// delayBy1 pushes id one cycle later and ripples the minimum necessary
// delay through its transitive successors to restore precedence.
func delayBy1(g *cdfg.Graph, s *Schedule, id cdfg.NodeID) {
	s.Start[id]++
	order, _ := g.TopoOrder()
	for _, u := range order {
		for _, v := range g.Succs(u) {
			if s.Start[v] < s.Start[u]+s.Delay[u] {
				s.Start[v] = s.Start[u] + s.Delay[u]
			}
		}
	}
}
