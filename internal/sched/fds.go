package sched

import (
	"fmt"
	"sort"

	"pchls/internal/cdfg"
)

// ForceDirected computes a time-constrained schedule with the force-directed
// heuristic of Paulin & Knight: operations are placed one at a time, each at
// the start time minimizing the total "force" — a measure of how much the
// placement unbalances the per-cycle concurrency of operations sharing a
// module type — so that the resulting schedule needs few functional units.
//
// It is the classical time-constrained baseline; it knows nothing about
// power. Returns an error wrapping ErrDeadline if the critical path exceeds
// the deadline.
func ForceDirected(g *cdfg.Graph, bind Binding, deadline int) (*Schedule, error) {
	n := g.N()
	s := newSchedule(g, bind)
	if n == 0 {
		return s, nil
	}
	asap, err := ASAP(g, bind)
	if err != nil {
		return nil, err
	}
	if asap.Length() > deadline {
		return nil, fmt.Errorf("sched: fds: critical path %d exceeds deadline %d: %w", asap.Length(), deadline, ErrDeadline)
	}
	alap, err := ALAP(g, bind, deadline)
	if err != nil {
		return nil, err
	}

	early := append([]int(nil), asap.Start...)
	late := append([]int(nil), alap.Start...)
	placed := make([]bool, n)

	// prob[id][c] = probability node id executes in cycle c, assuming a
	// uniform distribution of its start time over [early, late].
	prob := func(id int, c int) float64 {
		w := late[id] - early[id] + 1
		if w <= 0 {
			return 0
		}
		// Node executes in cycle c iff start in [c-delay+1, c]; intersect
		// with [early, late].
		lo := c - s.Delay[id] + 1
		if lo < early[id] {
			lo = early[id]
		}
		hi := c
		if hi > late[id] {
			hi = late[id]
		}
		if hi < lo {
			return 0
		}
		return float64(hi-lo+1) / float64(w)
	}

	// Distribution graph per module name.
	dg := func(name string, c int) float64 {
		sum := 0.0
		for id := 0; id < n; id++ {
			if s.Module[id] == name {
				sum += prob(id, c)
			}
		}
		return sum
	}

	// selfForce of placing id at start t: sum over cycles of
	// DG(c) * (x'(c) - x(c)) where x' is the post-placement distribution.
	selfForce := func(id, t int) float64 {
		f := 0.0
		name := s.Module[id]
		for c := early[id]; c < late[id]+s.Delay[id]; c++ {
			old := prob(id, c)
			var nw float64
			if t <= c && c < t+s.Delay[id] {
				nw = 1
			}
			if nw != old {
				f += dg(name, c) * (nw - old)
			}
		}
		return f
	}

	// Propagate window tightening from placing id at t, returning the
	// tightened copies (nil when infeasible). Only direct predecessor and
	// successor windows are tightened (standard FDS practice).
	tighten := func(id, t int) (e2, l2 []int, ok bool) {
		e2 = append([]int(nil), early...)
		l2 = append([]int(nil), late...)
		e2[id], l2[id] = t, t
		for _, p := range g.Preds(cdfg.NodeID(id)) {
			if lim := t - s.Delay[p]; l2[p] > lim {
				l2[p] = lim
			}
			if l2[p] < e2[p] {
				return nil, nil, false
			}
		}
		for _, v := range g.Succs(cdfg.NodeID(id)) {
			if lim := t + s.Delay[id]; e2[v] < lim {
				e2[v] = lim
			}
			if l2[v] < e2[v] {
				return nil, nil, false
			}
		}
		return e2, l2, true
	}

	// predSuccForce approximates the forces exerted on neighbours by the
	// window tightening: for each affected neighbour, the change in its
	// average distribution contribution.
	neighbourForce := func(id int, e2, l2 []int) float64 {
		f := 0.0
		affected := append(append([]cdfg.NodeID(nil), g.Preds(cdfg.NodeID(id))...), g.Succs(cdfg.NodeID(id))...)
		for _, nb := range affected {
			if placed[nb] {
				continue
			}
			name := s.Module[nb]
			for c := early[nb]; c <= late[nb]+s.Delay[nb]-1; c++ {
				oldP := prob(int(nb), c)
				// Temporarily evaluate the new probability under the
				// tightened window.
				savedE, savedL := early[nb], late[nb]
				early[nb], late[nb] = e2[nb], l2[nb]
				newP := prob(int(nb), c)
				early[nb], late[nb] = savedE, savedL
				if newP != oldP {
					f += dg(name, c) * (newP - oldP)
				}
			}
		}
		return f
	}

	type choice struct {
		id, t int
		force float64
	}
	for round := 0; round < n; round++ {
		best := choice{id: -1}
		ids := make([]int, 0, n)
		for id := 0; id < n; id++ {
			if !placed[id] {
				ids = append(ids, id)
			}
		}
		sort.Ints(ids)
		for _, id := range ids {
			for t := early[id]; t <= late[id]; t++ {
				e2, l2, ok := tighten(id, t)
				if !ok {
					continue
				}
				f := selfForce(id, t) + neighbourForce(id, e2, l2)
				if best.id == -1 || f < best.force-1e-12 ||
					(f < best.force+1e-12 && (id < best.id || (id == best.id && t < best.t))) {
					best = choice{id: id, t: t, force: f}
				}
			}
		}
		if best.id == -1 {
			return nil, fmt.Errorf("sched: fds: no feasible placement remains (deadline %d): %w", deadline, ErrDeadline)
		}
		e2, l2, _ := tighten(best.id, best.t)
		early, late = e2, l2
		s.Start[best.id] = best.t
		placed[best.id] = true
	}
	return s, nil
}
