package sched

import (
	"errors"
	"testing"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func halResources() map[string]int {
	return map[string]int{
		library.NameMulPar: 2,
		library.NameALU:    1,
		library.NameAdd:    1,
		library.NameSub:    1,
		library.NameComp:   1,
		library.NameInput:  2,
		library.NameOutput: 1,
	}
}

func TestPowerListUnconstrainedMatchesList(t *testing.T) {
	g := bench.HAL()
	bind := UniformFastest(library.Table1())
	res := halResources()
	a, err := ListSchedule(g, bind, res)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerListSchedule(g, bind, res, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Length() != b.Length() {
		t.Fatalf("unconstrained power list %d cycles, list %d", b.Length(), a.Length())
	}
	if err := b.Validate(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPowerListRespectsCap(t *testing.T) {
	g := bench.HAL()
	bind := UniformFastest(library.Table1())
	s, err := PowerListSchedule(g, bind, halResources(), 12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(12, 0); err != nil {
		t.Fatal(err)
	}
	if s.PeakPower() > 12 {
		t.Fatalf("peak %.2f", s.PeakPower())
	}
	// The cap must stretch the schedule versus the unconstrained run.
	free, _ := PowerListSchedule(g, bind, halResources(), 0, 0)
	if s.Length() <= free.Length() {
		t.Fatalf("capped %d cycles <= unconstrained %d", s.Length(), free.Length())
	}
}

func TestPowerListDeadline(t *testing.T) {
	g := bench.HAL()
	bind := UniformFastest(library.Table1())
	if _, err := PowerListSchedule(g, bind, halResources(), 12, 6); !errors.Is(err, ErrHorizon) {
		t.Fatalf("err = %v, want ErrHorizon", err)
	}
}

func TestPowerListSingleOpInfeasible(t *testing.T) {
	g := bench.HAL()
	bind := UniformFastest(library.Table1())
	if _, err := PowerListSchedule(g, bind, halResources(), 5, 0); !errors.Is(err, ErrPowerInfeasible) {
		t.Fatalf("err = %v, want ErrPowerInfeasible", err)
	}
}

func TestPowerListMissingResource(t *testing.T) {
	g := bench.HAL()
	bind := UniformFastest(library.Table1())
	if _, err := PowerListSchedule(g, bind, map[string]int{library.NameMulPar: 1}, 0, 0); err == nil {
		t.Fatal("missing resources accepted")
	}
}

func TestPowerListVsPASAP(t *testing.T) {
	// With the allocation implied by a pasap schedule, the power list
	// scheduler must also find a schedule within a similar length: the
	// one-step pasap never needs MORE cycles than allocation-first with
	// pasap's own allocation (it chose that allocation freely).
	g := bench.HAL()
	bind := UniformFastest(library.Table1())
	pasap, err := PASAP(g, bind, Options{PowerMax: 12})
	if err != nil {
		t.Fatal(err)
	}
	res := MinResources(pasap)
	pl, err := PowerListSchedule(g, bind, res, 12, pasap.Length()+8)
	if err != nil {
		t.Fatalf("power list with pasap's allocation failed: %v", err)
	}
	if err := pl.Validate(12, 0); err != nil {
		t.Fatal(err)
	}
}
