//go:build !race

// Allocation-regression tests for the scheduler hot path. AllocsPerRun
// counts are not meaningful under the race detector (the runtime inserts
// extra allocations), so these run in the race-free CI lane only.

package sched

import (
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// hotOptions builds the synthesizer-style options for g: a bound arena,
// precomputed delay/power tables and a FixedStarts buffer, which is what
// the synthesize loop passes on every run.
func hotOptions(g *cdfg.Graph, powerMax float64) (Options, Binding) {
	bind := UniformFastest(library.Table1())
	n := g.N()
	delays := make([]int, n)
	powers := make([]float64, n)
	for _, node := range g.Nodes() {
		m := bind(node)
		delays[node.ID] = m.Delay
		powers[node.ID] = m.Power
	}
	fixed := make([]int, n)
	for i := range fixed {
		fixed[i] = -1
	}
	return Options{
		PowerMax:    powerMax,
		FixedStarts: fixed,
		Delays:      delays,
		Powers:      powers,
		Arena:       NewArena(g),
	}, bind
}

// TestPASAPSteadyStateAllocs pins the steady-state allocation count of a
// full PASAP run with arena and tables: the returned Schedule shell and
// its Start slice, nothing else. A regression here multiplies by the
// ~10^3 scheduler runs of every synthesis.
func TestPASAPSteadyStateAllocs(t *testing.T) {
	g := bench.Elliptic()
	opts, bind := hotOptions(g, 20)
	// Warm the arena (topo order, profile, order buffers).
	if _, err := PASAP(g, bind, opts); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(50, func() {
		if _, err := PASAP(g, bind, opts); err != nil {
			t.Fatal(err)
		}
	})
	const max = 2 // Schedule struct + Start slice
	if got > max {
		t.Fatalf("PASAP steady state allocates %.1f/run, budget %d", got, max)
	}
}

// TestPALAPSteadyStateAllocs pins the steady-state allocation count of a
// full PALAP run: the forward and reversed Schedule shells with their
// Start slices (the reversed graph and all conversion buffers live in the
// arena).
func TestPALAPSteadyStateAllocs(t *testing.T) {
	g := bench.Elliptic()
	opts, bind := hotOptions(g, 20)
	if _, err := PALAP(g, bind, 40, opts); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(50, func() {
		if _, err := PALAP(g, bind, 40, opts); err != nil {
			t.Fatal(err)
		}
	})
	const max = 4 // two Schedule shells + two Start slices
	if got > max {
		t.Fatalf("PALAP steady state allocates %.1f/run, budget %d", got, max)
	}
}

// TestWindowsDirtySteadyStateAllocs pins the warm-path window
// re-derivation: one pasap + one palap pair plus the returned window
// slice.
func TestWindowsDirtySteadyStateAllocs(t *testing.T) {
	g := bench.Elliptic()
	opts, bind := hotOptions(g, 20)
	prev, err := Windows(g, bind, 40, opts)
	if err != nil {
		t.Fatal(err)
	}
	dirty := make([]bool, g.N())
	if _, err := WindowsDirty(g, bind, 40, opts, prev, dirty); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(50, func() {
		if _, err := WindowsDirty(g, bind, 40, opts, prev, dirty); err != nil {
			t.Fatal(err)
		}
	})
	const max = 7 // pasap (2) + palap (4) + the []Window result
	if got > max {
		t.Fatalf("WindowsDirty steady state allocates %.1f/run, budget %d", got, max)
	}
}
