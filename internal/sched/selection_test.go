package sched

import (
	"testing"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/library"
)

func TestPASAPSelectionPoliciesBothValid(t *testing.T) {
	g := bench.Cosine()
	bind := UniformFastest(library.Table1())
	for _, sel := range []Selection{CriticalFirst, SmallestID} {
		s, err := PASAP(g, bind, Options{PowerMax: 40, Select: sel})
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if err := s.Validate(40, 0); err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
	}
}

func TestPASAPSelectionIrrelevantWithoutPower(t *testing.T) {
	// Unconstrained, both policies must produce exactly ASAP.
	g := bench.Elliptic()
	bind := UniformFastest(library.Table1())
	a, err := PASAP(g, bind, Options{Select: CriticalFirst})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PASAP(g, bind, Options{Select: SmallestID})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			t.Fatalf("node %d: critical-first %d vs smallest-id %d (unconstrained)", i, a.Start[i], b.Start[i])
		}
	}
}

func TestPASAPCriticalFirstNoWorseOnCosine(t *testing.T) {
	// The motivating case for critical-first selection: under a moderate
	// power cap on the multiply-rich cosine graph, a plain topological
	// sweep starves the critical path. Critical-first must produce a
	// schedule at most as long.
	g := bench.Cosine()
	bind := UniformFastest(library.Table1())
	crit, err := PASAP(g, bind, Options{PowerMax: 40, Select: CriticalFirst})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := PASAP(g, bind, Options{PowerMax: 40, Select: SmallestID})
	if err != nil {
		t.Fatal(err)
	}
	if crit.Length() > plain.Length() {
		t.Fatalf("critical-first %d cycles, smallest-id %d cycles", crit.Length(), plain.Length())
	}
}

func TestPALAPPropagatesSelection(t *testing.T) {
	g := bench.HAL()
	bind := UniformFastest(library.Table1())
	for _, sel := range []Selection{CriticalFirst, SmallestID} {
		s, err := PALAP(g, bind, 20, Options{PowerMax: 12, Select: sel})
		if err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
		if err := s.Validate(12, 20); err != nil {
			t.Fatalf("selection %d: %v", sel, err)
		}
	}
}

func TestCriticalFirstOrderIsTopological(t *testing.T) {
	g := bench.Elliptic()
	bind := UniformFastest(library.Table1())
	order, err := criticalFirstOrder(g, bind, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[cdfg.NodeID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	if len(pos) != g.N() {
		t.Fatalf("order covers %d of %d nodes", len(pos), g.N())
	}
	for _, n := range g.Nodes() {
		for _, v := range g.Succs(n.ID) {
			if pos[n.ID] >= pos[v] {
				t.Fatalf("edge %d->%d violates order", n.ID, v)
			}
		}
	}
}
