package sched

import (
	"fmt"
	"sort"

	"pchls/internal/cdfg"
)

// ListSchedule computes a resource-constrained list schedule: at every
// cycle, ready operations (all predecessors finished) are assigned to idle
// functional-unit instances in priority order, where an operation's
// priority is the length of its longest path to any sink (critical ops
// first). resources maps module name to instance count; every node's bound
// module must have at least one instance.
//
// This is the classical allocation-first baseline the paper's one-step
// algorithm is contrasted with.
func ListSchedule(g *cdfg.Graph, bind Binding, resources map[string]int) (*Schedule, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	s := newSchedule(g, bind)
	for i := range s.Module {
		if resources[s.Module[i]] < 1 {
			return nil, fmt.Errorf("sched: list: node %q bound to module %q with no instances",
				g.Node(cdfg.NodeID(i)).Name, s.Module[i])
		}
	}
	prio := pathToSink(g, s)

	n := g.N()
	remainingPreds := make([]int, n)
	for i := 0; i < n; i++ {
		remainingPreds[i] = len(g.Preds(cdfg.NodeID(i)))
	}
	// busy[name] holds the end cycles of running instances of that module.
	busy := make(map[string][]int)
	ready := []cdfg.NodeID{}
	for i := 0; i < n; i++ {
		if remainingPreds[i] == 0 {
			ready = append(ready, cdfg.NodeID(i))
		}
	}
	readyAt := make(map[int][]cdfg.NodeID) // nodes becoming ready at cycle c
	scheduled := 0

	for cycle := 0; scheduled < n; cycle++ {
		if cycle > len(s.Delay)*maxDelay(s)+1 {
			return nil, fmt.Errorf("sched: list: no progress by cycle %d (internal error)", cycle)
		}
		// Retire finished instances.
		for name, ends := range busy {
			kept := ends[:0]
			for _, e := range ends {
				if e > cycle {
					kept = append(kept, e)
				}
			}
			busy[name] = kept
		}
		// Admit nodes whose producers have finished by this cycle.
		ready = append(ready, readyAt[cycle]...)
		delete(readyAt, cycle)
		sort.Slice(ready, func(a, b int) bool {
			if prio[ready[a]] != prio[ready[b]] {
				return prio[ready[a]] > prio[ready[b]]
			}
			return ready[a] < ready[b]
		})
		var deferred []cdfg.NodeID
		for _, id := range ready {
			name := s.Module[id]
			if len(busy[name]) < resources[name] {
				s.Start[id] = cycle
				end := cycle + s.Delay[id]
				busy[name] = append(busy[name], end)
				scheduled++
				for _, v := range g.Succs(id) {
					remainingPreds[v]--
					if remainingPreds[v] == 0 {
						// Ready only once ALL producers have finished.
						at := end
						for _, p := range g.Preds(v) {
							if e := s.Start[p] + s.Delay[p]; e > at {
								at = e
							}
						}
						readyAt[at] = append(readyAt[at], v)
					}
				}
			} else {
				deferred = append(deferred, id)
			}
		}
		ready = deferred
	}
	return s, nil
}

// pathToSink returns, per node, the longest delay-weighted path from that
// node (inclusive) to any sink — the standard list-scheduling priority.
func pathToSink(g *cdfg.Graph, s *Schedule) []int {
	order, _ := g.TopoOrder()
	dist := make([]int, g.N())
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		best := 0
		for _, v := range g.Succs(u) {
			if dist[v] > best {
				best = dist[v]
			}
		}
		dist[u] = best + s.Delay[u]
	}
	return dist
}

func maxDelay(s *Schedule) int {
	d := 1
	for _, x := range s.Delay {
		if x > d {
			d = x
		}
	}
	return d
}

// PowerListSchedule is the resource- AND power-constrained list scheduler:
// like ListSchedule, but an operation is only issued in a cycle when its
// per-cycle power also fits under powerMax for its whole execution. It is
// the "allocation-first under a power cap" baseline: given a fixed
// allocation it answers whether a power-feasible schedule exists, and how
// long it is — without the module re-selection or the window machinery of
// the full synthesizer. powerMax <= 0 reduces to ListSchedule.
func PowerListSchedule(g *cdfg.Graph, bind Binding, resources map[string]int, powerMax float64, deadline int) (*Schedule, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	s := newSchedule(g, bind)
	for i := range s.Module {
		if resources[s.Module[i]] < 1 {
			return nil, fmt.Errorf("sched: powerlist: node %q bound to module %q with no instances",
				g.Node(cdfg.NodeID(i)).Name, s.Module[i])
		}
		if powerMax > 0 && s.Power[i] > powerMax+1e-9 {
			return nil, fmt.Errorf("sched: powerlist: node %q draws %.3g > %.3g: %w",
				g.Node(cdfg.NodeID(i)).Name, s.Power[i], powerMax, ErrPowerInfeasible)
		}
	}
	prio := pathToSink(g, s)
	horizon := deadline
	if horizon <= 0 {
		horizon = len(s.Delay)*maxDelay(s) + 1
	}
	profile := make([]float64, horizon)

	n := g.N()
	remainingPreds := make([]int, n)
	for i := 0; i < n; i++ {
		remainingPreds[i] = len(g.Preds(cdfg.NodeID(i)))
	}
	busy := make(map[string][]int)
	var ready []cdfg.NodeID
	for i := 0; i < n; i++ {
		if remainingPreds[i] == 0 {
			ready = append(ready, cdfg.NodeID(i))
		}
	}
	readyAt := make(map[int][]cdfg.NodeID)
	scheduled := 0
	for cycle := 0; scheduled < n; cycle++ {
		if cycle >= horizon {
			return nil, fmt.Errorf("sched: powerlist: %d operations unplaced at horizon %d: %w",
				n-scheduled, horizon, ErrHorizon)
		}
		for name, ends := range busy {
			kept := ends[:0]
			for _, e := range ends {
				if e > cycle {
					kept = append(kept, e)
				}
			}
			busy[name] = kept
		}
		ready = append(ready, readyAt[cycle]...)
		delete(readyAt, cycle)
		sort.Slice(ready, func(a, b int) bool {
			if prio[ready[a]] != prio[ready[b]] {
				return prio[ready[a]] > prio[ready[b]]
			}
			return ready[a] < ready[b]
		})
		var deferred []cdfg.NodeID
		for _, id := range ready {
			name := s.Module[id]
			issue := len(busy[name]) < resources[name]
			if issue && powerMax > 0 {
				for c := cycle; c < cycle+s.Delay[id] && issue; c++ {
					if c >= horizon || profile[c]+s.Power[id] > powerMax+1e-9 {
						issue = false
					}
				}
			}
			if !issue {
				deferred = append(deferred, id)
				continue
			}
			s.Start[id] = cycle
			end := cycle + s.Delay[id]
			busy[name] = append(busy[name], end)
			for c := cycle; c < end; c++ {
				profile[c] += s.Power[id]
			}
			scheduled++
			for _, v := range g.Succs(id) {
				remainingPreds[v]--
				if remainingPreds[v] == 0 {
					at := end
					for _, p := range g.Preds(v) {
						if e := s.Start[p] + s.Delay[p]; e > at {
							at = e
						}
					}
					readyAt[at] = append(readyAt[at], v)
				}
			}
		}
		ready = deferred
	}
	return s, nil
}

// MinResources returns, for a schedule, the number of simultaneously active
// instances required of each module — i.e. the allocation the schedule
// implies if every concurrent operation needs its own instance.
func MinResources(s *Schedule) map[string]int {
	need := make(map[string]int)
	length := s.Length()
	for c := 0; c < length; c++ {
		active := make(map[string]int)
		for i := range s.Start {
			if s.Start[i] <= c && c < s.Start[i]+s.Delay[i] {
				active[s.Module[i]]++
			}
		}
		for name, k := range active {
			if k > need[name] {
				need[name] = k
			}
		}
	}
	return need
}
