package sched

import (
	"testing"

	"pchls/internal/gen"
	"pchls/internal/verify"
)

// TestWindowsMatchExhaustiveFeasibility checks the pasap/palap window
// pair against ground truth on tiny instances: with a fixed binding, the
// window computation succeeds exactly when SOME schedule meets the
// deadline and the per-cycle power cap — which verify.Schedulable decides
// by exhaustive search, sharing no code with this package.
//
// One direction is a theorem (a successful pasap/palap run is itself a
// witness schedule, so Windows ok => schedulable); the other direction is
// the empirical completeness of the greedy schedulers at this size, which
// this test pins down so a regression in the power-profile bookkeeping
// cannot hide behind "the heuristic just gave up".
func TestWindowsMatchExhaustiveFeasibility(t *testing.T) {
	seeds := int64(300)
	if testing.Short() {
		seeds = 50
	}
	feasible, infeasible, inverted := 0, 0, 0
	for seed := int64(1); seed <= seeds; seed++ {
		inst := gen.NewInstance(seed, gen.InstanceConfig{
			Graph:          gen.GraphConfig{Nodes: 4, MaxWidth: 2},
			Library:        gen.LibraryConfig{ModulesPerOp: 2, DelayMax: 2},
			SlackMin:       1.0,
			SlackMax:       1.6,
			PowerFactorMin: 1.0,
			PowerFactorMax: 2.0,
		})
		bind := UniformFastest(inst.Library)
		delays := make([]int, inst.Graph.N())
		powers := make([]float64, inst.Graph.N())
		for _, n := range inst.Graph.Nodes() {
			m := bind(n)
			delays[n.ID] = m.Delay
			powers[n.ID] = m.Power
		}
		truth, err := verify.Schedulable(inst.Graph, delays, powers, inst.Deadline, inst.PowerMax,
			verify.BruteOptions{MaxNodes: 16})
		if err != nil {
			t.Fatalf("seed %d: exhaustive check: %v", seed, err)
		}

		// Windows succeeds exactly when both pasap and palap produced a
		// valid schedule within T — each endpoint is itself a witness. A
		// per-node window may still be inverted (Late < Early) when greedy
		// power stretching pushes pasap past palap; that narrows the
		// explored space but says nothing about feasibility, so the
		// equivalence below is on Windows succeeding, not on widths.
		ws, werr := Windows(inst.Graph, bind, inst.Deadline, Options{PowerMax: inst.PowerMax})
		windowsOK := werr == nil
		for _, w := range ws {
			if w.Width() <= 0 {
				inverted++
			}
		}
		if windowsOK && !truth {
			t.Errorf("seed %d: UNSOUND: non-empty windows but no schedule exists (T=%d, P<=%g)",
				seed, inst.Deadline, inst.PowerMax)
		}
		if !windowsOK && truth {
			t.Errorf("seed %d: empty/failed windows (%v) but a schedule exists (T=%d, P<=%g)",
				seed, werr, inst.Deadline, inst.PowerMax)
		}
		if truth {
			feasible++
		} else {
			infeasible++
		}
	}
	if feasible == 0 || infeasible == 0 {
		t.Fatalf("constraint distribution degenerate: %d feasible, %d infeasible", feasible, infeasible)
	}
	t.Logf("%d instances: %d schedulable, %d not — windows agreed on every one (%d inverted windows tolerated)",
		seeds, feasible, infeasible, inverted)
}
