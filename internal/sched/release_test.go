package sched

import (
	"errors"
	"testing"
)

// TestPASAPRelease pins a chain node's release and expects the node and its
// successors to shift, while predecessors stay at their ASAP starts.
func TestPASAPRelease(t *testing.T) {
	g := chain(t) // i1 -> m1 -> a1 -> o1
	rel := make([]int, g.N())
	rel[2] = 7 // a1 may not start before cycle 7
	s, err := PASAP(g, fastest(t), Options{Release: rel})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 0 || s.Start[1] != 1 {
		t.Fatalf("predecessors moved: starts %v", s.Start)
	}
	if s.Start[2] != 7 {
		t.Fatalf("released node starts at %d, want 7", s.Start[2])
	}
	if s.Start[3] != 7+s.Delay[2] {
		t.Fatalf("successor starts at %d, want %d", s.Start[3], 7+s.Delay[2])
	}
	// Horizon auto-sizing must leave room for the released tail even when
	// the release exceeds the serial bound of this tiny graph.
	rel[2] = 500
	if _, err := PASAP(g, fastest(t), Options{Release: rel}); err != nil {
		t.Fatalf("late release should still schedule: %v", err)
	}
}

// TestPASAPDue caps a producer's completion and expects an error when
// precedence cannot meet it, and an unchanged schedule when it is slack.
func TestPASAPDue(t *testing.T) {
	g := chain(t)
	base, err := ASAP(g, fastest(t))
	if err != nil {
		t.Fatal(err)
	}
	due := make([]int, g.N())
	due[2] = base.Start[2] + base.Delay[2] // exactly the ASAP finish: feasible
	s, err := PASAP(g, fastest(t), Options{Due: due})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[2] != base.Start[2] {
		t.Fatalf("slack due moved node: %d vs %d", s.Start[2], base.Start[2])
	}
	due[2] = base.Start[2] + base.Delay[2] - 1 // one cycle too tight
	if _, err := PASAP(g, fastest(t), Options{Due: due}); !errors.Is(err, ErrHorizon) {
		t.Fatalf("tight due should fail with ErrHorizon, got %v", err)
	}
}

// TestPALAPReleaseDue checks the time-reversal conversion: a forward due
// becomes a reversed release and vice versa, so PALAP must respect both in
// the forward frame.
func TestPALAPReleaseDue(t *testing.T) {
	g := chain(t)
	const deadline = 20
	rel := make([]int, g.N())
	due := make([]int, g.N())
	rel[2] = 9  // a1 starts no earlier than 9
	due[1] = 6  // m1 finishes by 6
	due[2] = 12 // a1 finishes by 12 (so it cannot drift to the deadline)
	s, err := PALAP(g, fastest(t), deadline, Options{Release: rel, Due: due})
	if err != nil {
		t.Fatal(err)
	}
	if end := s.Start[1] + s.Delay[1]; end > 6 {
		t.Fatalf("m1 finishes at %d, due 6", end)
	}
	if s.Start[2] < 9 {
		t.Fatalf("a1 starts at %d, release 9", s.Start[2])
	}
	if end := s.Start[2] + s.Delay[2]; end > 12 {
		t.Fatalf("a1 finishes at %d, due 12", end)
	}
	// ALAP semantics: a1 should sit at the latest start its due allows.
	if s.Start[2] != 12-s.Delay[2] {
		t.Fatalf("a1 starts at %d, want %d (latest under due)", s.Start[2], 12-s.Delay[2])
	}
	// A release that cannot finish by the deadline is ErrDeadline.
	rel[2] = deadline
	if _, err := PALAP(g, fastest(t), deadline, Options{Release: rel, Due: nil}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("impossible release should fail with ErrDeadline, got %v", err)
	}
}

// TestWindowsReleaseDueConsistent derives windows under boundary pins and
// checks Early respects releases and Late respects dues for every node.
func TestWindowsReleaseDueConsistent(t *testing.T) {
	g := wide(t, 4)
	const deadline = 30
	rel := make([]int, g.N())
	due := make([]int, g.N())
	rel[3] = 5
	due[5] = 20
	ws, err := Windows(g, fastest(t), deadline, Options{Release: rel, Due: due})
	if err != nil {
		t.Fatal(err)
	}
	if ws[3].Early < 5 {
		t.Fatalf("Early[3] = %d, release 5", ws[3].Early)
	}
	for i, w := range ws {
		if w.Width() < 1 {
			t.Fatalf("node %d window %v infeasible", i, w)
		}
	}
	b := fastest(t)
	if end := ws[5].Late + b(g.Node(5)).Delay; end > 20 {
		t.Fatalf("Late[5]+delay = %d exceeds due 20", end)
	}
}

// TestDeriveSDCBoundsReleaseDue mirrors the scheduler semantics in the SDC
// sweeps: releases seed Early and propagate forward, dues cap LateEnd and
// propagate backward.
func TestDeriveSDCBoundsReleaseDue(t *testing.T) {
	g := chain(t)
	topo, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	delays := []int{1, 2, 1, 1}
	free := []int{-1, -1, -1, -1}
	rel := []int{0, 0, 7, 0}
	due := []int{0, 0, 0, 9}
	var b SDCBounds
	DeriveSDCBounds(g, topo, 20, delays, free, rel, due, &b)
	if b.Early[2] != 7 || b.Early[3] != 8 {
		t.Fatalf("release did not propagate: Early = %v", b.Early)
	}
	if b.LateEnd[3] != 9 || b.LateEnd[2] != 8 {
		t.Fatalf("due did not propagate: LateEnd = %v", b.LateEnd)
	}
	// Unconstrained entries must reproduce the plain bounds.
	var plain SDCBounds
	DeriveSDCBounds(g, topo, 20, delays, free, nil, nil, &plain)
	zero := []int{0, 0, 0, 0}
	var zeroed SDCBounds
	DeriveSDCBounds(g, topo, 20, delays, free, zero, zero, &zeroed)
	for i := range plain.Early {
		if plain.Early[i] != zeroed.Early[i] || plain.LateEnd[i] != zeroed.LateEnd[i] {
			t.Fatalf("zero release/due changed bounds at node %d", i)
		}
	}
}
