package sched

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// chain builds i1 -> m1(*) -> a1(+) -> o1(xpt).
func chain(t *testing.T) *cdfg.Graph {
	t.Helper()
	g := cdfg.New("chain")
	i1 := g.MustAddNode("i1", cdfg.Input)
	m1 := g.MustAddNode("m1", cdfg.Mul)
	a1 := g.MustAddNode("a1", cdfg.Add)
	o1 := g.MustAddNode("o1", cdfg.Output)
	g.MustAddEdge(i1, m1)
	g.MustAddEdge(m1, a1)
	g.MustAddEdge(a1, o1)
	return g
}

// wide builds a graph with k independent multiplies between one input and
// one output-adder chain, to exercise power-driven serialization:
// i -> m1..mk, all mk -> tree of adds -> o. For simplicity each mj feeds a
// distinct adder chained linearly.
func wide(t *testing.T, k int) *cdfg.Graph {
	t.Helper()
	g := cdfg.New("wide")
	in := g.MustAddNode("i", cdfg.Input)
	prev := cdfg.None
	for j := 0; j < k; j++ {
		m := g.MustAddNode("m"+string(rune('0'+j)), cdfg.Mul)
		g.MustAddEdge(in, m)
		a := g.MustAddNode("a"+string(rune('0'+j)), cdfg.Add)
		g.MustAddEdge(m, a)
		if prev != cdfg.None {
			g.MustAddEdge(prev, a)
		}
		prev = a
	}
	o := g.MustAddNode("o", cdfg.Output)
	g.MustAddEdge(prev, o)
	return g
}

func fastest(t *testing.T) Binding {
	t.Helper()
	return UniformFastest(library.Table1())
}

func TestASAPChain(t *testing.T) {
	g := chain(t)
	s, err := ASAP(g, fastest(t))
	if err != nil {
		t.Fatal(err)
	}
	// input 1 cycle, parallel mult 2 cycles, add 1, output 1 => starts 0,1,3,4.
	wantStart := map[string]int{"i1": 0, "m1": 1, "a1": 3, "o1": 4}
	for name, want := range wantStart {
		n, _ := g.Lookup(name)
		if s.Start[n.ID] != want {
			t.Errorf("ASAP start[%s] = %d, want %d", name, s.Start[n.ID], want)
		}
	}
	if s.Length() != 5 {
		t.Errorf("ASAP length = %d, want 5", s.Length())
	}
	if err := s.Validate(0, 0); err != nil {
		t.Errorf("ASAP schedule invalid: %v", err)
	}
}

func TestASAPSerialMultBinding(t *testing.T) {
	g := chain(t)
	s, err := ASAP(g, UniformSmallest(library.Table1()))
	if err != nil {
		t.Fatal(err)
	}
	// Serial mult takes 4 cycles: starts 0,1,5,6; length 7.
	n, _ := g.Lookup("a1")
	if s.Start[n.ID] != 5 || s.Length() != 7 {
		t.Fatalf("serial-mult ASAP: a1 start %d, length %d", s.Start[n.ID], s.Length())
	}
	if s.Module[1] != library.NameMulSer {
		t.Fatalf("m1 module = %q", s.Module[1])
	}
}

func TestALAPChain(t *testing.T) {
	g := chain(t)
	s, err := ALAP(g, fastest(t), 8)
	if err != nil {
		t.Fatal(err)
	}
	// Everything shifted to end at cycle 8: o1 starts 7, a1 6, m1 4, i1 3.
	wantStart := map[string]int{"i1": 3, "m1": 4, "a1": 6, "o1": 7}
	for name, want := range wantStart {
		n, _ := g.Lookup(name)
		if s.Start[n.ID] != want {
			t.Errorf("ALAP start[%s] = %d, want %d", name, s.Start[n.ID], want)
		}
	}
	if err := s.Validate(0, 8); err != nil {
		t.Errorf("ALAP schedule invalid: %v", err)
	}
}

func TestALAPTightDeadlineEqualsASAP(t *testing.T) {
	g := chain(t)
	bind := fastest(t)
	asap, _ := ASAP(g, bind)
	alap, err := ALAP(g, bind, asap.Length())
	if err != nil {
		t.Fatal(err)
	}
	for i := range asap.Start {
		if asap.Start[i] != alap.Start[i] {
			t.Errorf("node %d: asap %d != alap %d under critical deadline", i, asap.Start[i], alap.Start[i])
		}
	}
}

func TestALAPImpossibleDeadline(t *testing.T) {
	g := chain(t)
	if _, err := ALAP(g, fastest(t), 3); !errors.Is(err, ErrDeadline) {
		t.Fatalf("ALAP with impossible deadline = %v, want ErrDeadline", err)
	}
	if _, err := ALAP(g, fastest(t), 0); err == nil {
		t.Fatal("ALAP accepted non-positive deadline")
	}
}

func TestPASAPUnconstrainedMatchesASAP(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	a, _ := ASAP(g, bind)
	p, err := PASAP(g, bind, Options{PowerMax: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Start {
		if a.Start[i] != p.Start[i] {
			t.Errorf("node %d: asap %d, pasap(loose) %d", i, a.Start[i], p.Start[i])
		}
	}
}

func TestPASAPCapsPower(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	a, _ := ASAP(g, bind)
	unconstrainedPeak := a.PeakPower()
	// Three parallel mults at 8.1 each overlap under ASAP.
	if unconstrainedPeak < 16 {
		t.Fatalf("test premise broken: unconstrained peak %.2f", unconstrainedPeak)
	}
	pmax := 9.0 // allows only one parallel mult at a time
	s, err := PASAP(g, bind, Options{PowerMax: pmax})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(pmax, 0); err != nil {
		t.Fatalf("pasap schedule invalid: %v", err)
	}
	if got := s.PeakPower(); got > pmax {
		t.Fatalf("pasap peak %.2f > %.2f", got, pmax)
	}
	if s.Length() <= a.Length() {
		t.Fatalf("pasap should stretch the schedule: %d vs asap %d", s.Length(), a.Length())
	}
	// Energy is invariant under stretching.
	if s.Energy() != a.Energy() {
		t.Fatalf("energy changed: %.2f vs %.2f", s.Energy(), a.Energy())
	}
}

func TestPASAPSingleOpInfeasible(t *testing.T) {
	g := chain(t)
	if _, err := PASAP(g, fastest(t), Options{PowerMax: 5}); !errors.Is(err, ErrPowerInfeasible) {
		// Parallel mult draws 8.1 > 5.
		t.Fatalf("pasap = %v, want ErrPowerInfeasible", err)
	}
	// With the smallest (serial) multiplier it fits.
	if _, err := PASAP(g, UniformSmallest(library.Table1()), Options{PowerMax: 5}); err != nil {
		t.Fatalf("serial-mult pasap under P<=5: %v", err)
	}
}

func TestPASAPWithBaseProfile(t *testing.T) {
	g := cdfg.New("single")
	g.MustAddNode("a", cdfg.Add)  // 2.5 power, 1 cycle
	base := []float64{9, 9, 9, 1} // only cycle 3 has room under P<=10
	s, err := PASAP(g, fastest(t), Options{PowerMax: 10, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[0] != 3 {
		t.Fatalf("node delayed to %d, want 3", s.Start[0])
	}
}

func TestPASAPWithFixedNodes(t *testing.T) {
	g := chain(t)
	bind := fastest(t)
	m, _ := g.Lookup("m1")
	s, err := PASAP(g, bind, Options{Fixed: map[cdfg.NodeID]int{m.ID: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[m.ID] != 5 {
		t.Fatalf("fixed node moved to %d", s.Start[m.ID])
	}
	a, _ := g.Lookup("a1")
	if s.Start[a.ID] != 7 { // after fixed mult ends (5+2)
		t.Fatalf("successor of fixed node starts at %d, want 7", s.Start[a.ID])
	}
	if err := s.Validate(0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPASAPFixedBeyondAutoHorizon(t *testing.T) {
	g := cdfg.New("g")
	a := g.MustAddNode("a", cdfg.Add)
	b := g.MustAddNode("b", cdfg.Add)
	g.MustAddEdge(a, b)
	s, err := PASAP(g, fastest(t), Options{Fixed: map[cdfg.NodeID]int{a: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Start[b] != 101 {
		t.Fatalf("b start = %d, want 101", s.Start[b])
	}
}

func TestPALAPChain(t *testing.T) {
	g := chain(t)
	s, err := PALAP(g, fastest(t), 8, Options{PowerMax: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(100, 8); err != nil {
		t.Fatalf("palap invalid: %v", err)
	}
	o, _ := g.Lookup("o1")
	if s.End(o.ID) != 8 {
		t.Fatalf("palap should finish at the deadline; output ends at %d", s.End(o.ID))
	}
}

func TestPALAPPowerForcesEarlierStarts(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	loose, err := PALAP(g, bind, 20, Options{PowerMax: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := PALAP(g, bind, 20, Options{PowerMax: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := tight.Validate(9, 20); err != nil {
		t.Fatalf("tight palap invalid: %v", err)
	}
	// Under the tight power cap the multipliers cannot all sit late; at
	// least one starts earlier than in the loose schedule.
	movedEarlier := false
	for i := range tight.Start {
		if tight.Start[i] < loose.Start[i] {
			movedEarlier = true
		}
	}
	if !movedEarlier {
		t.Fatal("tight power cap did not move any operation earlier")
	}
}

func TestPALAPDeadlineInfeasible(t *testing.T) {
	g := wide(t, 4)
	// Power cap of 9 serializes four 2-cycle multiplies: needs ~8 cycles
	// plus input/adds; deadline 6 is impossible.
	_, err := PALAP(g, fastest(t), 6, Options{PowerMax: 9})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("palap = %v, want ErrDeadline", err)
	}
	if _, err := PALAP(g, fastest(t), -1, Options{}); err == nil {
		t.Fatal("palap accepted negative deadline")
	}
}

func TestWindowsUnconstrainedAreClassicalMobility(t *testing.T) {
	g := wide(t, 3)
	bind := fastest(t)
	const deadline = 15
	ws, err := Windows(g, bind, deadline, Options{})
	if err != nil {
		t.Fatal(err)
	}
	asap, _ := ASAP(g, bind)
	alap, _ := ALAP(g, bind, deadline)
	for i, w := range ws {
		if w.Early != asap.Start[i] || w.Late != alap.Start[i] {
			t.Errorf("node %d window [%d,%d], want [%d,%d]", i, w.Early, w.Late, asap.Start[i], alap.Start[i])
		}
		if w.Width() < 1 {
			t.Errorf("node %d window empty", i)
		}
	}
}

func TestWindowsMayBeEmptyUnderPower(t *testing.T) {
	// pasap and palap are heuristics: under a tight power cap a node's
	// pasap placement can land later than its palap placement, yielding an
	// empty window. The synthesizer treats such nodes as stranded and
	// repairs via backtrack-and-lock; here we only document the behaviour:
	// Windows must still return consistent per-schedule data (each
	// endpoint belongs to a valid schedule).
	g := wide(t, 3)
	bind := fastest(t)
	const deadline, pmax = 15, 9.0
	ws, err := Windows(g, bind, deadline, Options{PowerMax: pmax})
	if err != nil {
		t.Fatal(err)
	}
	early, err := PASAP(g, bind, Options{PowerMax: pmax})
	if err != nil {
		t.Fatal(err)
	}
	late, err := PALAP(g, bind, deadline, Options{PowerMax: pmax})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if w.Early != early.Start[i] || w.Late != late.Start[i] {
			t.Errorf("node %d window [%d,%d] disagrees with schedules [%d,%d]",
				i, w.Early, w.Late, early.Start[i], late.Start[i])
		}
	}
}

func TestWindowsDeadlineTooTight(t *testing.T) {
	g := chain(t)
	_, err := Windows(g, fastest(t), 3, Options{})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("windows = %v, want ErrDeadline", err)
	}
}

func TestQuickPASAPAlwaysValid(t *testing.T) {
	lib := library.Table1()
	ops := []cdfg.Op{cdfg.Add, cdfg.Sub, cdfg.Mul, cdfg.Cmp}
	f := func(seed int64, szRaw, pRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%25) + 2
		g := cdfg.New("rand")
		for i := 0; i < n; i++ {
			g.MustAddNode(randName(i), ops[rng.Intn(len(ops))])
		}
		for v := 1; v < n; v++ {
			for k := 0; k < rng.Intn(2)+1 && len(g.Preds(cdfg.NodeID(v))) < 2; k++ {
				u := rng.Intn(v)
				hasEdge := false
				for _, w := range g.Preds(cdfg.NodeID(v)) {
					if int(w) == u {
						hasEdge = true
					}
				}
				if !hasEdge {
					g.MustAddEdge(cdfg.NodeID(u), cdfg.NodeID(v))
				}
			}
		}
		pmax := 8.2 + float64(pRaw%40) // >= 8.1 so parallel mult fits
		s, err := PASAP(g, UniformFastest(lib), Options{PowerMax: pmax})
		if err != nil {
			return false
		}
		return s.Validate(pmax, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPALAPValidAndMeetsDeadline(t *testing.T) {
	lib := library.Table1()
	ops := []cdfg.Op{cdfg.Add, cdfg.Sub, cdfg.Mul}
	f := func(seed int64, szRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(szRaw%20) + 2
		g := cdfg.New("rand")
		for i := 0; i < n; i++ {
			g.MustAddNode(randName(i), ops[rng.Intn(len(ops))])
		}
		for v := 1; v < n; v++ {
			u := rng.Intn(v)
			if len(g.Preds(cdfg.NodeID(v))) < 2 {
				g.MustAddEdge(cdfg.NodeID(u), cdfg.NodeID(v))
			}
		}
		bind := UniformFastest(lib)
		// Generous deadline: serial bound.
		deadline := 0
		for _, node := range g.Nodes() {
			deadline += bind(node).Delay
		}
		pmax := 8.2 + float64((seed%20+20)%20)
		s, err := PALAP(g, bind, deadline, Options{PowerMax: pmax})
		if errors.Is(err, ErrDeadline) {
			// Heuristic infeasibility under a fragmented profile is
			// permitted; the property is about schedules that ARE produced.
			return true
		}
		if err != nil {
			return false
		}
		return s.Validate(pmax, deadline) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randName(i int) string {
	return "v" + string(rune('a'+i/26%26)) + string(rune('a'+i%26))
}
