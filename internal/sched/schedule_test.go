package sched

import (
	"errors"
	"strings"
	"testing"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

func TestScheduleProfileAndEnergy(t *testing.T) {
	g := chain(t)
	s, err := ASAP(g, fastest(t))
	if err != nil {
		t.Fatal(err)
	}
	prof := s.Profile()
	if len(prof) != s.Length() {
		t.Fatalf("profile length %d, schedule length %d", len(prof), s.Length())
	}
	// Energy conservation: sum(profile) == sum(power*delay).
	sum := 0.0
	for _, p := range prof {
		sum += p
	}
	if diff := sum - s.Energy(); diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("profile sum %.4f != energy %.4f", sum, s.Energy())
	}
	// Chain: cycle 0 input (0.2), cycles 1-2 parallel mult (8.1),
	// cycle 3 add (2.5), cycle 4 output (1.7).
	want := []float64{0.2, 8.1, 8.1, 2.5, 1.7}
	for c, p := range want {
		if prof[c] != p {
			t.Errorf("profile[%d] = %g, want %g", c, prof[c], p)
		}
	}
	if s.PeakPower() != 8.1 {
		t.Errorf("peak = %g, want 8.1", s.PeakPower())
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	g := chain(t)
	s, _ := ASAP(g, fastest(t))
	m, _ := g.Lookup("m1")
	s.Start[m.ID] = 0 // overlaps its input producer
	if err := s.Validate(0, 0); !errors.Is(err, ErrPrecedence) {
		t.Fatalf("Validate = %v, want ErrPrecedence", err)
	}
}

func TestValidateCatchesNegativeStart(t *testing.T) {
	g := chain(t)
	s, _ := ASAP(g, fastest(t))
	s.Start[0] = -1
	if err := s.Validate(0, 0); !errors.Is(err, ErrPrecedence) {
		t.Fatalf("Validate = %v, want ErrPrecedence", err)
	}
}

func TestValidateCatchesPowerCap(t *testing.T) {
	g := chain(t)
	s, _ := ASAP(g, fastest(t))
	if err := s.Validate(5, 0); !errors.Is(err, ErrPowerCap) {
		t.Fatalf("Validate = %v, want ErrPowerCap (mult draws 8.1)", err)
	}
}

func TestValidateCatchesDeadline(t *testing.T) {
	g := chain(t)
	s, _ := ASAP(g, fastest(t))
	if err := s.Validate(0, s.Length()-1); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Validate = %v, want ErrDeadline", err)
	}
	if err := s.Validate(0, s.Length()); err != nil {
		t.Fatalf("Validate at exact deadline = %v", err)
	}
}

func TestScheduleCloneIndependent(t *testing.T) {
	g := chain(t)
	s, _ := ASAP(g, fastest(t))
	c := s.Clone()
	c.Start[0] = 99
	if s.Start[0] == 99 {
		t.Fatal("clone shares start slice")
	}
}

func TestScheduleTable(t *testing.T) {
	g := chain(t)
	s, _ := ASAP(g, fastest(t))
	out := s.Table()
	for _, want := range []string{"m1", "Mult(par.)", "makespan 5", "peak power 8.10"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table() missing %q:\n%s", want, out)
		}
	}
}

func TestProfileString(t *testing.T) {
	g := chain(t)
	s, _ := ASAP(g, fastest(t))
	out := s.ProfileString(5)
	if !strings.Contains(out, "exceeds P<") {
		t.Fatalf("ProfileString should flag overshoot:\n%s", out)
	}
	if !strings.Contains(out, "P< = 5.00") {
		t.Fatalf("ProfileString missing cap line:\n%s", out)
	}
	out = s.ProfileString(0)
	if strings.Contains(out, "P<") {
		t.Fatalf("uncapped ProfileString should not mention P<:\n%s", out)
	}
}

func TestUniformBindingsPanicOnUncovered(t *testing.T) {
	lib, err := library.Table1Without(library.NameMulSer, library.NameMulPar)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for uncovered op")
		}
	}()
	UniformFastest(lib)(cdfg.Node{ID: 0, Name: "m", Op: cdfg.Mul})
}

func TestUniformLowestPower(t *testing.T) {
	bind := UniformLowestPower(library.Table1())
	m := bind(cdfg.Node{ID: 0, Name: "m", Op: cdfg.Mul})
	if m.Name != library.NameMulSer {
		t.Fatalf("lowest power mult = %q", m.Name)
	}
}

func TestEmptyGraphSchedules(t *testing.T) {
	g := cdfg.New("empty")
	s, err := ASAP(g, fastest(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() != 0 || s.PeakPower() != 0 || s.Energy() != 0 {
		t.Fatalf("empty schedule: len=%d peak=%g energy=%g", s.Length(), s.PeakPower(), s.Energy())
	}
}
