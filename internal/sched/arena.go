package sched

import "pchls/internal/cdfg"

// Arena is per-synthesis scratch storage for the schedulers. A single
// synthesis runs pasap/palap hundreds to thousands of times over the same
// graph; without an arena every run reallocates its topological-order
// buffers, its power profile, the reversed graph of the palap pass, and
// the pin/fixed conversion slices. An Arena, passed via Options.Arena,
// caches the graph-invariant artifacts (topological orders, the reversed
// graph) and recycles the per-run buffers, making the steady-state
// scheduler hot path allocation-free apart from the returned Schedule.
//
// An Arena is bound to one graph and is NOT safe for concurrent use: it
// must be owned by a single scheduler caller (the synthesizer gives each
// state its own). Schedulers silently ignore an arena whose graph does
// not match, so a misrouted arena can never corrupt results.
type Arena struct {
	g   *cdfg.Graph
	rev *cdfg.Graph // lazily built reverse of g, for palap

	topo  []cdfg.NodeID // cached topological order of g
	rtopo []cdfg.NodeID // cached topological order of rev

	// criticalFirstOrder scratch.
	prio  []int
	indeg []int
	ready []cdfg.NodeID
	order []cdfg.NodeID

	// pasapPinned scratch.
	profile  []float64
	fixedIDs []cdfg.NodeID

	// palapPinned scratch (distinct from the buffers the nested pasap run
	// on the reversed graph uses).
	rbase  []float64
	rfixed []int
	rpin   []int

	// WindowsDirty pin scratch.
	pin []int
}

// NewArena returns an arena bound to g. All buffers are grown lazily.
func NewArena(g *cdfg.Graph) *Arena { return &Arena{g: g} }

// owns reports whether the arena's cached artifacts apply to g.
func (a *Arena) owns(g *cdfg.Graph) bool {
	return a != nil && (g == a.g || (a.rev != nil && g == a.rev))
}

// topoFor returns the cached topological order of g (computing it once),
// or a fresh one when g is foreign to the arena.
func (a *Arena) topoFor(g *cdfg.Graph) ([]cdfg.NodeID, error) {
	switch {
	case a != nil && g == a.g:
		if a.topo == nil {
			t, err := g.TopoOrder()
			if err != nil {
				return nil, err
			}
			a.topo = t
		}
		return a.topo, nil
	case a != nil && a.rev != nil && g == a.rev:
		if a.rtopo == nil {
			t, err := g.TopoOrder()
			if err != nil {
				return nil, err
			}
			a.rtopo = t
		}
		return a.rtopo, nil
	}
	return g.TopoOrder()
}

// reverseOf returns the cached reversed graph of g (building it once), or
// a fresh reversal when g is foreign to the arena.
func (a *Arena) reverseOf(g *cdfg.Graph) *cdfg.Graph {
	if a != nil && g == a.g {
		if a.rev == nil {
			a.rev = g.Reverse()
		}
		return a.rev
	}
	return g.Reverse()
}

// The grow helpers resize a recycled buffer to n elements without
// clearing: every caller fully overwrites the returned slice.

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growIDs(buf *[]cdfg.NodeID, n int) []cdfg.NodeID {
	if cap(*buf) < n {
		*buf = make([]cdfg.NodeID, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
