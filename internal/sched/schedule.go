// Package sched implements the scheduling machinery of the power-constrained
// high-level synthesis flow: classical ASAP/ALAP, the power-constrained
// pasap/palap heuristics of Nielsen & Madsen (DATE 2003), mobility windows,
// per-cycle power profiles, schedule validation, and baseline schedulers
// (resource-constrained list scheduling, force-directed scheduling, and a
// two-step schedule-then-power-repair baseline).
//
// Time is measured in integer clock cycles. An operation with start time t
// and delay d occupies cycles t, t+1, ..., t+d-1; a data successor may start
// at cycle t+d or later. Power is the sum, per cycle, of the per-cycle power
// of every operation executing in that cycle.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/library"
)

// Binding chooses the functional-unit module that will execute a node; it
// determines the node's delay and per-cycle power during scheduling. The
// synthesizer refines bindings as it commits decisions; standalone
// schedulers typically use a uniform policy such as UniformFastest.
type Binding func(cdfg.Node) *library.Module

// UniformFastest returns a Binding that picks the minimum-delay module for
// every node (ties broken by area). It panics only if the library does not
// cover an operation — callers should check Library.Covers first.
func UniformFastest(lib *library.Library) Binding {
	return func(n cdfg.Node) *library.Module {
		m, err := lib.Fastest(n.Op)
		if err != nil {
			panic(fmt.Sprintf("sched: uncovered operation %s: %v", n.Op, err))
		}
		return m
	}
}

// UniformSmallest returns a Binding picking the minimum-area module per node.
func UniformSmallest(lib *library.Library) Binding {
	return func(n cdfg.Node) *library.Module {
		m, err := lib.Smallest(n.Op)
		if err != nil {
			panic(fmt.Sprintf("sched: uncovered operation %s: %v", n.Op, err))
		}
		return m
	}
}

// UniformLowestPower returns a Binding picking the minimum-power module per
// node.
func UniformLowestPower(lib *library.Library) Binding {
	return func(n cdfg.Node) *library.Module {
		m, err := lib.LowestPower(n.Op)
		if err != nil {
			panic(fmt.Sprintf("sched: uncovered operation %s: %v", n.Op, err))
		}
		return m
	}
}

// Schedule records start times for every node of a graph together with the
// delay and power implied by the binding used to produce it.
type Schedule struct {
	// G is the scheduled graph.
	G *cdfg.Graph
	// Start[i] is the first execution cycle of node i.
	Start []int
	// Delay[i] is the execution latency in cycles of node i.
	Delay []int
	// Power[i] is the per-cycle power of node i while it executes.
	Power []float64
	// Module[i] names the module chosen for node i (diagnostic).
	Module []string
}

// newSchedule allocates a schedule shell for g under the given binding.
func newSchedule(g *cdfg.Graph, bind Binding) *Schedule {
	n := g.N()
	s := &Schedule{
		G:      g,
		Start:  make([]int, n),
		Delay:  make([]int, n),
		Power:  make([]float64, n),
		Module: make([]string, n),
	}
	for _, node := range g.Nodes() {
		m := bind(node)
		s.Delay[node.ID] = m.Delay
		s.Power[node.ID] = m.Power
		s.Module[node.ID] = m.Name
	}
	return s
}

// newScheduleOpts allocates a schedule shell honoring the precomputed
// Delays/Powers tables when both are set: the shell aliases the two tables
// (the caller keeps them stable while the schedule is read) and leaves
// Module nil, skipping the n Binding calls of newSchedule. This is the
// synthesizer's hot path; diagnostic rendering uses the classic shell.
func newScheduleOpts(g *cdfg.Graph, bind Binding, opts *Options) *Schedule {
	if opts.Delays == nil || opts.Powers == nil {
		return newSchedule(g, bind)
	}
	return &Schedule{
		G:     g,
		Start: make([]int, g.N()),
		Delay: opts.Delays,
		Power: opts.Powers,
	}
}

// End returns the first cycle after node i finishes (Start[i] + Delay[i]).
func (s *Schedule) End(i cdfg.NodeID) int { return s.Start[i] + s.Delay[i] }

// Length returns the schedule makespan: the first cycle after every node
// has finished. An empty schedule has length 0.
func (s *Schedule) Length() int {
	l := 0
	for i := range s.Start {
		if e := s.Start[i] + s.Delay[i]; e > l {
			l = e
		}
	}
	return l
}

// Profile returns the per-cycle power profile over [0, Length()).
func (s *Schedule) Profile() []float64 {
	p := make([]float64, s.Length())
	for i := range s.Start {
		for c := s.Start[i]; c < s.Start[i]+s.Delay[i]; c++ {
			p[c] += s.Power[i]
		}
	}
	return p
}

// PeakPower returns the maximum per-cycle power of the schedule.
func (s *Schedule) PeakPower() float64 {
	peak := 0.0
	for _, p := range s.Profile() {
		if p > peak {
			peak = p
		}
	}
	return peak
}

// Energy returns the total energy of the schedule (sum of the profile; equal
// to the sum over nodes of power x delay).
func (s *Schedule) Energy() float64 {
	e := 0.0
	for i := range s.Start {
		e += s.Power[i] * float64(s.Delay[i])
	}
	return e
}

// Validation errors.
var (
	// ErrPrecedence indicates a data dependency is violated.
	ErrPrecedence = errors.New("precedence violation")
	// ErrPowerCap indicates a cycle exceeds the power constraint.
	ErrPowerCap = errors.New("per-cycle power exceeds constraint")
	// ErrDeadline indicates the schedule (or any feasible schedule) exceeds
	// the latency constraint.
	ErrDeadline = errors.New("latency constraint violated")
	// ErrPowerInfeasible indicates a single operation's power alone exceeds
	// the power constraint, so no schedule can exist.
	ErrPowerInfeasible = errors.New("operation power exceeds power constraint")
	// ErrHorizon indicates an operation could not be placed within the
	// scheduling horizon (with an explicit horizon this typically means the
	// deadline cannot be met).
	ErrHorizon = errors.New("operation cannot be placed within horizon")
)

// Validate checks the schedule: every start time is non-negative, every data
// dependency u -> v satisfies Start[v] >= Start[u] + Delay[u], no cycle
// exceeds powerMax (ignored when powerMax <= 0), and the makespan is at most
// deadline (ignored when deadline <= 0). All violations are joined.
func (s *Schedule) Validate(powerMax float64, deadline int) error {
	var errs []error
	for _, n := range s.G.Nodes() {
		if s.Start[n.ID] < 0 {
			errs = append(errs, fmt.Errorf("sched: node %q starts at %d: %w", n.Name, s.Start[n.ID], ErrPrecedence))
		}
		for _, v := range s.G.Succs(n.ID) {
			if s.Start[v] < s.End(n.ID) {
				errs = append(errs, fmt.Errorf("sched: edge %q -> %q: consumer starts at %d before producer ends at %d: %w",
					n.Name, s.G.Node(v).Name, s.Start[v], s.End(n.ID), ErrPrecedence))
			}
		}
	}
	if powerMax > 0 {
		for c, p := range s.Profile() {
			if p > powerMax+1e-9 {
				errs = append(errs, fmt.Errorf("sched: cycle %d draws %.3g > %.3g: %w", c, p, powerMax, ErrPowerCap))
			}
		}
	}
	if deadline > 0 && s.Length() > deadline {
		errs = append(errs, fmt.Errorf("sched: makespan %d > deadline %d: %w", s.Length(), deadline, ErrDeadline))
	}
	return errors.Join(errs...)
}

// Clone returns a deep copy of the schedule (sharing the graph).
func (s *Schedule) Clone() *Schedule {
	return &Schedule{
		G:      s.G,
		Start:  append([]int(nil), s.Start...),
		Delay:  append([]int(nil), s.Delay...),
		Power:  append([]float64(nil), s.Power...),
		Module: append([]string(nil), s.Module...),
	}
}

// Table renders the schedule as an aligned text table sorted by start time
// (ties by node ID), for reports and CLI output.
func (s *Schedule) Table() string {
	ids := make([]cdfg.NodeID, s.G.N())
	for i := range ids {
		ids[i] = cdfg.NodeID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if s.Start[ids[a]] != s.Start[ids[b]] {
			return s.Start[ids[a]] < s.Start[ids[b]]
		}
		return ids[a] < ids[b]
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %-5s %-12s %6s %6s %7s\n", "node", "op", "module", "start", "end", "power")
	for _, id := range ids {
		n := s.G.Node(id)
		fmt.Fprintf(&sb, "%-10s %-5s %-12s %6d %6d %7.2f\n", n.Name, n.Op, s.Module[id], s.Start[id], s.End(id)-1, s.Power[id])
	}
	fmt.Fprintf(&sb, "makespan %d cycles, peak power %.2f, energy %.2f\n", s.Length(), s.PeakPower(), s.Energy())
	return sb.String()
}

// ProfileString renders the power profile as a small ASCII bar chart, one
// line per cycle, with an optional cap marker.
func (s *Schedule) ProfileString(powerMax float64) string {
	prof := s.Profile()
	maxP := powerMax
	for _, p := range prof {
		if p > maxP {
			maxP = p
		}
	}
	if maxP <= 0 {
		maxP = 1
	}
	const width = 50
	var sb strings.Builder
	for c, p := range prof {
		bar := int(math.Round(p / maxP * width))
		marker := ""
		if powerMax > 0 && p > powerMax+1e-9 {
			marker = " <-- exceeds P<"
		}
		fmt.Fprintf(&sb, "cycle %3d |%-*s| %6.2f%s\n", c, width, strings.Repeat("#", bar), p, marker)
	}
	if powerMax > 0 {
		fmt.Fprintf(&sb, "P< = %.2f\n", powerMax)
	}
	return sb.String()
}
