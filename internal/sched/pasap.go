package sched

import (
	"errors"
	"fmt"

	"pchls/internal/cdfg"
)

// Selection chooses how PASAP picks the next operation among the ready
// ones — the paper's "pick an unscheduled operator" step, which it leaves
// unspecified.
type Selection int

// The selection policies.
const (
	// CriticalFirst picks the ready operation with the longest
	// delay-weighted path to a sink (default): less critical operations
	// absorb the power-driven stretching.
	CriticalFirst Selection = iota
	// SmallestID picks the lowest-numbered ready operation — a plain
	// topological sweep, the most literal reading of the paper.
	SmallestID
)

// Options parameterizes the power-constrained schedulers.
type Options struct {
	// PowerMax is the per-cycle power constraint P<. Zero or negative means
	// unconstrained (pasap degenerates to classical ASAP).
	PowerMax float64
	// Select picks the next ready operation (default CriticalFirst).
	Select Selection
	// Base is an ambient per-cycle power profile that is added to the
	// profile of the graph being scheduled before checking PowerMax —
	// typically the power already committed by bound operations during
	// synthesis. Cycles beyond len(Base) have zero ambient power.
	Base []float64
	// Fixed predetermines the start times of some nodes. Fixed nodes are
	// placed first (their power is accounted) and never moved; the
	// scheduler only places the remaining nodes. A fixed node's
	// predecessors must also be consistent, which Validate will confirm.
	Fixed map[cdfg.NodeID]int
	// FixedStarts is the allocation-free form of Fixed: when non-nil it
	// takes precedence, must have one entry per node, and FixedStarts[i]
	// >= 0 fixes node i at that start (negative entries are free). The
	// scheduler never mutates or retains the slice, so callers may reuse
	// one buffer across runs.
	FixedStarts []int
	// Horizon caps the last cycle (exclusive) the scheduler may use. Zero
	// means automatic: Base length plus the total serial delay of all
	// nodes, which always admits a solution when one exists.
	Horizon int
	// Delays/Powers, when both non-nil, give each node's execution delay
	// and per-cycle power directly, indexed by node ID, and the Binding
	// is never called. Returned schedules alias the two slices (and leave
	// Schedule.Module nil), so the caller must keep their contents
	// unchanged for as long as it reads a returned schedule. This is the
	// synthesizer's hot path: it maintains the tables incrementally
	// instead of paying one Binding call per node per run.
	Delays []int
	Powers []float64
	// Arena recycles scheduler scratch (topological orders, the reversed
	// graph, profiles, pin buffers) across runs over the same graph. Nil
	// means allocate per run. An arena bound to a different graph is
	// ignored. Not safe for concurrent use.
	Arena *Arena
	// Release, when non-nil, holds one entry per node: Release[i] > 0
	// forbids node i from starting before that cycle (entries <= 0 are
	// free). The partitioned synthesizer uses releases to pin a part's
	// boundary sinks to the committed finishes of upstream parts, so a cut
	// edge u -> v behaves like an in-graph precedence edge even though u is
	// not in the scheduled graph. Fixed nodes are exempt: their starts were
	// produced under the same constraints.
	Release []int
	// Due, when non-nil, holds one entry per node: Due[i] > 0 forbids node
	// i from completing after that cycle (entries <= 0 are unconstrained).
	// The partitioned synthesizer uses dues on boundary sources so that
	// slack-hungry refinement inside one part cannot push a cut edge's
	// producer past what downstream parts need to meet the deadline.
	Due []int
}

// baseAt returns the ambient power at cycle c.
func (o *Options) baseAt(c int) float64 {
	if c < len(o.Base) {
		return o.Base[c]
	}
	return 0
}

// fixedAt returns node id's predetermined start, if any.
func (o *Options) fixedAt(id cdfg.NodeID) (int, bool) {
	if o.FixedStarts != nil {
		if s := o.FixedStarts[id]; s >= 0 {
			return s, true
		}
		return 0, false
	}
	s, ok := o.Fixed[id]
	return s, ok
}

// hasFixed reports whether any node is predetermined.
func (o *Options) hasFixed() bool {
	if o.FixedStarts != nil {
		for _, s := range o.FixedStarts {
			if s >= 0 {
				return true
			}
		}
		return false
	}
	return len(o.Fixed) > 0
}

// releaseAt returns node id's earliest allowed start (0 when free).
func (o *Options) releaseAt(id cdfg.NodeID) int {
	if o.Release != nil && o.Release[id] > 0 {
		return o.Release[id]
	}
	return 0
}

// dueAt returns node id's latest allowed completion (0 when unconstrained).
func (o *Options) dueAt(id cdfg.NodeID) int {
	if o.Due != nil && o.Due[id] > 0 {
		return o.Due[id]
	}
	return 0
}

// arenaFor returns the arena when it may serve graph g, else nil.
func (o *Options) arenaFor(g *cdfg.Graph) *Arena {
	if o.Arena.owns(g) {
		return o.Arena
	}
	return nil
}

// PASAP computes the power-constrained as-soon-as-possible schedule of the
// paper (algorithm "pasap (P<)"): each operation is placed at its earliest
// precedence-feasible start time t_i = max over predecessors of (t_j +
// d_j), delayed by the smallest execution offset o_i >= 0 such that the
// per-cycle power constraint holds over the whole execution interval
// [t_i+o_i, t_i+o_i+d_i-1].
//
// The paper's "pick an unscheduled operator" step is implemented as
// critical-path-first selection among ready operations (all predecessors
// placed): the ready operation with the longest delay-weighted path to a
// sink is placed first, so less critical operations absorb the power-driven
// stretching. With PowerMax <= 0 the result is classical ASAP regardless
// of selection order.
//
// It returns an error wrapping ErrPowerInfeasible if some operation's own
// power exceeds PowerMax, and an error if the graph is cyclic or a fixed
// placement is negative.
func PASAP(g *cdfg.Graph, bind Binding, opts Options) (*Schedule, error) {
	return pasapPinned(g, bind, opts, nil)
}

// pasapPinned is the shared core of PASAP and PASAPDirty. pin, when
// non-nil, replays nodes with pin[id] >= 0 at exactly that start cycle
// instead of searching; pinned placements are still verified against
// precedence, the fixed-successor bound, and the power profile built so
// far, returning an error wrapping ErrStale when a replay is no longer
// consistent. Entries with pin[id] < 0 (and all fixed nodes) are placed
// exactly as PASAP places them.
func pasapPinned(g *cdfg.Graph, bind Binding, opts Options, pin []int) (*Schedule, error) {
	a := opts.arenaFor(g)
	var order []cdfg.NodeID
	var err error
	switch opts.Select {
	case SmallestID:
		order, err = a.topoFor(g)
	default:
		order, err = criticalFirstOrder(g, bind, &opts, a)
	}
	if err != nil {
		return nil, err
	}
	s := newScheduleOpts(g, bind, &opts)
	horizon := opts.Horizon
	if horizon <= 0 {
		// A serial placement always exists, but greedy stretching can
		// overshoot the serial bound when the power profile is fragmented:
		// one busy cycle can block up to maxDelay candidate windows of a
		// long operation. sumDelay*maxDelay is a safe overapproximation.
		sumDelay, maxD := 0, 1
		for _, d := range s.Delay {
			sumDelay += d
			if d > maxD {
				maxD = d
			}
		}
		horizon = len(opts.Base) + sumDelay*maxD + 1
		// Fixed placements may sit arbitrarily late; leave room for their
		// transitive successors beyond them.
		if opts.FixedStarts != nil {
			for id, start := range opts.FixedStarts {
				if start < 0 {
					continue
				}
				if end := start + s.Delay[id] + sumDelay*maxD; end > horizon {
					horizon = end
				}
			}
		} else {
			for id, start := range opts.Fixed {
				if end := start + s.Delay[id] + sumDelay*maxD; end > horizon {
					horizon = end
				}
			}
		}
		// Released nodes may likewise be forced arbitrarily late.
		if opts.Release != nil {
			for id, start := range opts.Release {
				if start <= 0 {
					continue
				}
				if end := start + s.Delay[id] + sumDelay*maxD; end > horizon {
					horizon = end
				}
			}
		}
	}
	var profile []float64
	if a != nil {
		profile = growFloats(&a.profile, horizon)
	} else {
		profile = make([]float64, horizon)
	}
	for c := range profile {
		profile[c] = opts.baseAt(c)
	}

	place := func(id cdfg.NodeID, start int) error {
		end := start + s.Delay[id]
		if start < 0 {
			return fmt.Errorf("sched: pasap: node %q placed at negative cycle %d", g.Node(id).Name, start)
		}
		if end > horizon {
			return fmt.Errorf("sched: pasap: node %q placed at [%d,%d) outside horizon %d: %w",
				g.Node(id).Name, start, end, horizon, ErrHorizon)
		}
		s.Start[id] = start
		for c := start; c < end; c++ {
			profile[c] += s.Power[id]
		}
		return nil
	}

	// Place fixed nodes first so their power is visible to everything else,
	// in ascending node order (deterministic).
	if opts.FixedStarts != nil {
		for i, start := range opts.FixedStarts {
			if start < 0 {
				continue
			}
			if err := place(cdfg.NodeID(i), start); err != nil {
				return nil, err
			}
		}
	} else if len(opts.Fixed) > 0 {
		var fixedIDs []cdfg.NodeID
		if a != nil {
			fixedIDs = growIDs(&a.fixedIDs, 0)
		}
		for id := range opts.Fixed {
			fixedIDs = append(fixedIDs, id)
		}
		if a != nil {
			a.fixedIDs = fixedIDs
		}
		// Deterministic order (map iteration is random).
		for i := 1; i < len(fixedIDs); i++ {
			for j := i; j > 0 && fixedIDs[j] < fixedIDs[j-1]; j-- {
				fixedIDs[j], fixedIDs[j-1] = fixedIDs[j-1], fixedIDs[j]
			}
		}
		for _, id := range fixedIDs {
			if err := place(id, opts.Fixed[id]); err != nil {
				return nil, err
			}
		}
	}

	fits := func(id cdfg.NodeID, start int) bool {
		if opts.PowerMax <= 0 {
			return true
		}
		for c := start; c < start+s.Delay[id]; c++ {
			if c >= horizon || profile[c]+s.Power[id] > opts.PowerMax+1e-9 {
				return false
			}
		}
		return true
	}

	for _, id := range order {
		if _, isFixed := opts.fixedAt(id); isFixed {
			continue
		}
		if opts.PowerMax > 0 && s.Power[id] > opts.PowerMax+1e-9 {
			return nil, fmt.Errorf("sched: pasap: node %q draws %.3g per cycle, constraint %.3g: %w",
				g.Node(id).Name, s.Power[id], opts.PowerMax, ErrPowerInfeasible)
		}
		// Earliest precedence-feasible start, no earlier than the node's
		// release (a boundary-transfer pin from an upstream part).
		t := opts.releaseAt(id)
		for _, p := range g.Preds(id) {
			if e := s.Start[p] + s.Delay[p]; e > t {
				t = e
			}
		}
		// Latest start admitted by fixed successors (they cannot move), the
		// node's due (a boundary-transfer bound from downstream parts), and
		// the horizon.
		latest := horizon - s.Delay[id]
		if due := opts.dueAt(id); due > 0 {
			if lim := due - s.Delay[id]; lim < latest {
				latest = lim
			}
		}
		for _, v := range g.Succs(id) {
			if fs, isFixed := opts.fixedAt(v); isFixed {
				if lim := fs - s.Delay[id]; lim < latest {
					latest = lim
				}
			}
		}
		// Stretch: increase the execution offset until power fits.
		start := t
		if pin != nil && pin[id] >= 0 {
			// Replay a clean node at its previous start. No search happens,
			// but the placement is re-verified: precedence may have tightened,
			// the power profile may have shifted under it, or (with no power
			// cap) the node may now be able to start earlier — all of which
			// mean the caller's dirty set was too small.
			start = pin[id]
			if start < t || start > latest || !fits(id, start) ||
				(opts.PowerMax <= 0 && start != t) {
				return nil, fmt.Errorf("sched: pasap: pinned node %q invalid at cycle %d (bounds [%d,%d]): %w",
					g.Node(id).Name, start, t, latest, ErrStale)
			}
		} else {
			for start <= latest && !fits(id, start) {
				start++
			}
			if start > latest {
				return nil, fmt.Errorf("sched: pasap: node %q cannot be placed in [%d,%d] under P< = %.3g: %w",
					g.Node(id).Name, t, latest, opts.PowerMax, ErrHorizon)
			}
		}
		if err := place(id, start); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// ASAP computes the classical unconstrained as-soon-as-possible schedule.
func ASAP(g *cdfg.Graph, bind Binding) (*Schedule, error) {
	return PASAP(g, bind, Options{})
}

// criticalFirstOrder returns a topological order in which, among ready
// operations, the one with the longest delay-weighted path to a sink comes
// first (ties: smallest ID). It returns an error wrapping cdfg.ErrCycle on
// cyclic graphs. With an arena, all scratch (including the returned order,
// valid until the next scheduler run) is recycled. Ready extraction uses
// swap-removal: the (priority, ID) comparator is a strict total order, so
// the selected sequence is independent of the ready slice's layout.
func criticalFirstOrder(g *cdfg.Graph, bind Binding, opts *Options, a *Arena) ([]cdfg.NodeID, error) {
	topo, err := a.topoFor(g)
	if err != nil {
		return nil, err
	}
	n := g.N()
	var prio, indeg []int
	var ready, order []cdfg.NodeID
	if a != nil {
		prio = growInts(&a.prio, n)
		indeg = growInts(&a.indeg, n)
		ready = growIDs(&a.ready, 0)
		order = growIDs(&a.order, 0)
	} else {
		prio = make([]int, n)
		indeg = make([]int, n)
		order = make([]cdfg.NodeID, 0, n)
	}
	// Delay-weighted longest path from each node (inclusive) to a sink.
	for i := len(topo) - 1; i >= 0; i-- {
		u := topo[i]
		best := 0
		for _, v := range g.Succs(u) {
			if prio[v] > best {
				best = prio[v]
			}
		}
		if opts != nil && opts.Delays != nil {
			prio[u] = best + opts.Delays[u]
		} else {
			prio[u] = best + bind(g.Node(u)).Delay
		}
	}
	for i := 0; i < n; i++ {
		indeg[i] = len(g.Preds(cdfg.NodeID(i)))
		if indeg[i] == 0 {
			ready = append(ready, cdfg.NodeID(i))
		}
	}
	for len(ready) > 0 {
		bi := 0
		for k := 1; k < len(ready); k++ {
			x, b := ready[k], ready[bi]
			if prio[x] > prio[b] || (prio[x] == prio[b] && x < b) {
				bi = k
			}
		}
		u := ready[bi]
		last := len(ready) - 1
		ready[bi] = ready[last]
		ready = ready[:last]
		order = append(order, u)
		for _, v := range g.Succs(u) {
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	if a != nil {
		a.ready, a.order = ready[:0], order
	}
	return order, nil
}

// PALAP computes the power-constrained as-late-as-possible schedule under a
// latency constraint of deadline cycles: the time-reversed analogue of
// PASAP. Every operation is placed as late as the deadline, precedence, and
// the power constraint allow. It returns an error wrapping ErrDeadline when
// the graph cannot finish within deadline cycles under the constraint, and
// ErrPowerInfeasible when some single operation exceeds PowerMax.
//
// Options semantics match PASAP; Base and Fixed/FixedStarts are
// interpreted in the forward time frame ([0, deadline)) and converted
// internally. A nonzero opts.Horizon is ignored: the horizon of a PALAP
// schedule is the deadline.
func PALAP(g *cdfg.Graph, bind Binding, deadline int, opts Options) (*Schedule, error) {
	return palapPinned(g, bind, deadline, opts, nil)
}

// palapPinned is the shared core of PALAP and PALAPDirty. pin semantics
// match pasapPinned, expressed in the forward time frame: pin[id] >= 0
// replays node id at that forward start, converted internally into the
// reversed frame.
func palapPinned(g *cdfg.Graph, bind Binding, deadline int, opts Options, pin []int) (*Schedule, error) {
	if deadline <= 0 {
		return nil, fmt.Errorf("sched: palap: deadline %d must be positive", deadline)
	}
	a := opts.arenaFor(g)
	r := a.reverseOf(g)
	// Reverse the ambient profile into the reversed time frame.
	ropts := Options{
		PowerMax: opts.PowerMax, Select: opts.Select, Horizon: deadline,
		Delays: opts.Delays, Powers: opts.Powers, Arena: opts.Arena,
	}
	if len(opts.Base) > 0 {
		var rbase []float64
		if a != nil {
			rbase = growFloats(&a.rbase, deadline)
		} else {
			rbase = make([]float64, deadline)
		}
		for c := 0; c < deadline; c++ {
			rbase[c] = opts.baseAt(deadline - 1 - c)
		}
		ropts.Base = rbase
	}
	delays := opts.Delays
	if delays == nil && (opts.hasFixed() || pin != nil || opts.Release != nil || opts.Due != nil) {
		delays = newSchedule(g, bind).Delay
	}
	// Release/due swap roles under time reversal: a forward release R
	// (start >= R) becomes a reversed due deadline-R (reversed completion
	// deadline-start <= deadline-R), and a forward due D (completion <= D)
	// becomes a reversed release deadline-D.
	if opts.Release != nil || opts.Due != nil {
		n := g.N()
		var rrel, rdue []int
		for id := 0; id < n; id++ {
			if due := opts.dueAt(cdfg.NodeID(id)); due > 0 && due < deadline {
				if rrel == nil {
					rrel = make([]int, n)
				}
				rrel[id] = deadline - due
			}
			if rel := opts.releaseAt(cdfg.NodeID(id)); rel > 0 {
				if rel+delays[id] > deadline {
					return nil, fmt.Errorf("sched: palap: node %q released at cycle %d cannot finish by the deadline %d: %w",
						g.Node(cdfg.NodeID(id)).Name, rel, deadline, ErrDeadline)
				}
				if rdue == nil {
					rdue = make([]int, n)
				}
				rdue[id] = deadline - rel
			}
		}
		ropts.Release, ropts.Due = rrel, rdue
	}
	switch {
	case opts.FixedStarts != nil:
		var rfixed []int
		if a != nil {
			rfixed = growInts(&a.rfixed, len(opts.FixedStarts))
		} else {
			rfixed = make([]int, len(opts.FixedStarts))
		}
		for id, start := range opts.FixedStarts {
			if start < 0 {
				rfixed[id] = -1
			} else {
				rfixed[id] = deadline - start - delays[id]
			}
		}
		ropts.FixedStarts = rfixed
	case len(opts.Fixed) > 0:
		ropts.Fixed = make(map[cdfg.NodeID]int, len(opts.Fixed))
		for id, start := range opts.Fixed {
			ropts.Fixed[id] = deadline - start - delays[id]
		}
	}
	var rpin []int
	if pin != nil {
		if a != nil {
			rpin = growInts(&a.rpin, len(pin))
		} else {
			rpin = make([]int, len(pin))
		}
		for id, p := range pin {
			if p < 0 {
				rpin[id] = -1
			} else {
				rpin[id] = deadline - p - delays[id]
			}
		}
	}
	rs, err := pasapPinned(r, bind, ropts, rpin)
	if err != nil {
		// A horizon overflow in the reversed frame means the deadline
		// cannot be met; single-operation power infeasibility passes
		// through unchanged.
		if errors.Is(err, ErrHorizon) {
			return nil, fmt.Errorf("sched: palap: %w: %w", ErrDeadline, err)
		}
		return nil, fmt.Errorf("sched: palap: %w", err)
	}
	s := newScheduleOpts(g, bind, &opts)
	for i := range s.Start {
		s.Start[i] = deadline - rs.Start[i] - rs.Delay[i]
		if s.Start[i] < 0 {
			return nil, fmt.Errorf("sched: palap: node %q needs to start at cycle %d: %w",
				g.Node(cdfg.NodeID(i)).Name, s.Start[i], ErrDeadline)
		}
	}
	return s, nil
}

// ALAP computes the classical unconstrained as-late-as-possible schedule
// under the given deadline. It returns an error wrapping ErrDeadline when
// the critical path exceeds the deadline.
func ALAP(g *cdfg.Graph, bind Binding, deadline int) (*Schedule, error) {
	return PALAP(g, bind, deadline, Options{})
}

// Window is a node's feasible start-time interval under the power and
// latency constraints: Early from PASAP, Late from PALAP.
type Window struct {
	Early, Late int
}

// Width returns the number of feasible start times (Late - Early + 1);
// negative widths indicate an infeasible (stranded) node.
func (w Window) Width() int { return w.Late - w.Early + 1 }

// Windows computes per-node power-feasible mobility windows: Early[i] from
// the PASAP schedule and Late[i] from the PALAP schedule under the deadline.
// An error is returned when either schedule is infeasible. Note that
// because pasap/palap are heuristics the windows are not exact — they bound
// the design space explored by the synthesizer, as in the paper.
func Windows(g *cdfg.Graph, bind Binding, deadline int, opts Options) ([]Window, error) {
	early, err := PASAP(g, bind, opts)
	if err != nil {
		return nil, err
	}
	if deadline > 0 && early.Length() > deadline {
		return nil, fmt.Errorf("sched: windows: pasap length %d exceeds deadline %d: %w", early.Length(), deadline, ErrDeadline)
	}
	late, err := PALAP(g, bind, deadline, opts)
	if err != nil {
		return nil, err
	}
	ws := make([]Window, g.N())
	for i := range ws {
		ws[i] = Window{Early: early.Start[i], Late: late.Start[i]}
	}
	return ws, nil
}
