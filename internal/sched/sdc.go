package sched

import "pchls/internal/cdfg"

// SDCBounds are per-node start/completion bounds derived from the
// difference constraints of precedence and deadline alone (the SDC — system
// of difference constraints — formulation of scheduling): every edge u -> v
// contributes s_v - s_u >= d_u, the deadline contributes s_v <= T - d_v,
// and a committed node contributes s_v = t_v. The tightest bounds under
// such a system are single longest-path sweeps, so deriving every node's
// bound costs O(V+E) — against O(V+E) per node per module for the
// exhaustive pasap/palap mobility pairs.
//
// The two arrays are shaped so a per-(node, module) candidate window is an
// O(1) lookup: Early[v] depends only on v's predecessors (never on v's own
// delay) and LateEnd[v] is v's latest completion cycle (again independent
// of v's own delay for an uncommitted v), so binding v to a module with
// delay d yields the window {Early[v], LateEnd[v] - d} with no
// recomputation.
//
// The bounds ignore the power cap, so they are supersets of the
// power-feasible pasap/palap windows (stretching for power only moves
// Early later and Late earlier). With PowerMax <= 0 they are exactly the
// pasap/palap windows. Callers that place operations by these relaxed
// windows must re-check power feasibility themselves (the synthesizer's
// committed-profile probes, post-commit pasap probe and final validation
// do exactly that).
type SDCBounds struct {
	// Early[v] is the earliest precedence-feasible start of v. A committed
	// node reports its pinned start.
	Early []int
	// LateEnd[v] is the latest cycle (exclusive) by which v must complete
	// for every transitive successor to still meet the deadline. A
	// committed node reports its pinned completion.
	LateEnd []int
}

// DeriveSDCBounds fills out with the bounds of every node of g under the
// given per-node delays, deadline, and pinned starts (fixedStarts[v] >= 0
// pins node v; negative entries are free). topo must be a topological
// order of g. The out buffers are recycled across calls; the function
// never allocates once they have grown to g.N().
//
// release and due, when non-nil, add per-node boundary-transfer constraints
// in the same difference-constraint system: release[v] > 0 contributes
// s_v >= release[v] (seeding the forward sweep) and due[v] > 0 contributes
// s_v + d_v <= due[v] (capping the backward sweep). Entries <= 0 are
// unconstrained. The partitioned synthesizer uses these to pin a part's
// boundary nodes to the committed finishes of already-synthesized parts —
// cut-edge precedence flows through the same sweeps as in-part precedence.
//
// Infeasibility (a pinned or over-constrained node whose earliest start
// exceeds its latest) is not an error here: the affected node simply gets
// an empty window (Early > LateEnd - delay), which the caller observes per
// candidate.
func DeriveSDCBounds(g *cdfg.Graph, topo []cdfg.NodeID, deadline int, delays, fixedStarts, release, due []int, out *SDCBounds) {
	n := g.N()
	if cap(out.Early) < n {
		out.Early = make([]int, n)
		out.LateEnd = make([]int, n)
	}
	out.Early = out.Early[:n]
	out.LateEnd = out.LateEnd[:n]

	for _, v := range topo {
		e := 0
		if release != nil && release[v] > 0 {
			e = release[v]
		}
		for _, p := range g.Preds(v) {
			if end := out.Early[p] + delays[p]; end > e {
				e = end
			}
		}
		if fixedStarts[v] >= 0 {
			// The pinned start is authoritative for v itself; a predecessor
			// that cannot finish in time shows up as that predecessor's own
			// empty window, not here.
			e = fixedStarts[v]
		}
		out.Early[v] = e
	}
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		if fixedStarts[v] >= 0 {
			out.LateEnd[v] = fixedStarts[v] + delays[v]
			continue
		}
		le := deadline
		if due != nil && due[v] > 0 && due[v] < le {
			le = due[v]
		}
		for _, s := range g.Succs(v) {
			start := out.LateEnd[s] - delays[s]
			if fixedStarts[s] >= 0 {
				start = fixedStarts[s]
			}
			if start < le {
				le = start
			}
		}
		out.LateEnd[v] = le
	}
}
