package sched

import (
	"errors"
	"testing"

	"pchls/internal/cdfg"

	"pchls/internal/bench"
	"pchls/internal/library"
)

func TestAnnealFindsFeasibleSchedule(t *testing.T) {
	g := bench.HAL()
	lib := library.Table1()
	bind := UniformFastest(lib)
	s, err := Anneal(g, bind, lib, 15, 14, AnnealConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(14, 15); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	g := bench.HAL()
	lib := library.Table1()
	bind := UniformFastest(lib)
	cfg := AnnealConfig{Seed: 7, Iterations: 25000}
	a, err := Anneal(g, bind, lib, 15, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(g, bind, lib, 15, 16, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			t.Fatalf("node %d: %d vs %d for same seed", i, a.Start[i], b.Start[i])
		}
	}
}

func TestAnnealImpossibleCases(t *testing.T) {
	g := bench.HAL()
	lib := library.Table1()
	bind := UniformFastest(lib)
	if _, err := Anneal(g, bind, lib, 4, 0, AnnealConfig{Seed: 1}); !errors.Is(err, ErrDeadline) {
		t.Fatalf("deadline err = %v", err)
	}
	if _, err := Anneal(g, bind, lib, 20, 5, AnnealConfig{Seed: 1}); !errors.Is(err, ErrPowerInfeasible) {
		t.Fatalf("power err = %v", err)
	}
	// Feasible cap that annealing cannot reach in 1 iteration from the
	// spiky ASAP start: it must report failure, not an invalid schedule.
	if _, err := Anneal(g, bind, lib, 15, 10, AnnealConfig{Seed: 1, Iterations: 1}); err == nil {
		t.Log("annealing got lucky in one iteration; acceptable")
	} else if !errors.Is(err, ErrPowerCap) {
		t.Fatalf("err = %v, want ErrPowerCap", err)
	}
}

func TestAnnealVersusPASAP(t *testing.T) {
	// The baseline argument: pasap reaches a feasible schedule
	// constructively; annealing needs many iterations for the same
	// constraints and should not beat pasap's makespan meaningfully.
	g := bench.HAL()
	lib := library.Table1()
	bind := UniformFastest(lib)
	const T, P = 15, 14
	pasap, err := PASAP(g, bind, Options{PowerMax: P})
	if err != nil || pasap.Length() > T {
		t.Fatalf("pasap: %v len %d", err, pasap.Length())
	}
	sa, err := Anneal(g, bind, lib, T, P, AnnealConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Length()+3 < pasap.Length() {
		t.Fatalf("annealing (%d cycles) dramatically beats pasap (%d); baseline premise broken",
			sa.Length(), pasap.Length())
	}
}

func TestAnnealEmptyGraph(t *testing.T) {
	lib := library.Table1()
	s, err := Anneal(cdfg.New("empty"), UniformFastest(lib), lib, 5, 10, AnnealConfig{Seed: 1, Iterations: 10})
	if err != nil || s.Length() != 0 {
		t.Fatalf("empty graph: %v %d", err, s.Length())
	}
}
