package sched

import (
	"errors"
	"fmt"

	"pchls/internal/cdfg"
)

// ErrStale is returned (wrapped) by the dirty-subset schedulers when a
// clean node can no longer be replayed at its previous start time — the
// caller's dirty set was too small and the full scheduler must be rerun.
var ErrStale = errors.New("pinned placement no longer consistent")

// pinsFrom builds the pin slice for a dirty-subset run: dirty nodes get
// -1 (full placement search), clean nodes are pinned to prev(i). With an
// arena the slice is the recycled a.pin buffer, so it is only valid until
// the next pinsFrom call; the schedulers read it during the run but never
// retain it.
func pinsFrom(a *Arena, n int, prev func(i int) int, dirty []bool) []int {
	var pin []int
	if a != nil {
		pin = growInts(&a.pin, n)
	} else {
		pin = make([]int, n)
	}
	for i := range pin {
		if dirty == nil || dirty[i] {
			pin[i] = -1
		} else {
			pin[i] = prev(i)
		}
	}
	return pin
}

// PASAPDirty recomputes the power-constrained ASAP schedule after a
// localized change. prev must be the result of a previous PASAP run under
// compatible options; nodes with dirty[i] == false are replayed at
// prev.Start[i] without a placement search (their power still shapes the
// profile seen by later nodes), while dirty nodes — and nodes in
// opts.Fixed — are placed exactly as PASAP places them. When every clean
// node would land on its previous start anyway the result is identical to
// a full PASAP run; when a replayed placement turns out to be
// inconsistent (precedence, power, horizon, or a missed earlier slot in
// the unconstrained case) an error wrapping ErrStale is returned and the
// caller should fall back to the full scheduler.
func PASAPDirty(g *cdfg.Graph, bind Binding, opts Options, prev *Schedule, dirty []bool) (*Schedule, error) {
	if prev == nil {
		return nil, fmt.Errorf("sched: pasap dirty: nil previous schedule")
	}
	return pasapPinned(g, bind, opts, pinsFrom(opts.arenaFor(g), g.N(), func(i int) int { return prev.Start[i] }, dirty))
}

// PALAPDirty is the as-late-as-possible analogue of PASAPDirty: clean
// nodes are replayed at prev.Start[i] (forward time frame), dirty nodes
// are placed exactly as PALAP places them.
func PALAPDirty(g *cdfg.Graph, bind Binding, deadline int, opts Options, prev *Schedule, dirty []bool) (*Schedule, error) {
	if prev == nil {
		return nil, fmt.Errorf("sched: palap dirty: nil previous schedule")
	}
	return palapPinned(g, bind, deadline, opts, pinsFrom(opts.arenaFor(g), g.N(), func(i int) int { return prev.Start[i] }, dirty))
}

// WindowsDirty re-derives the power-feasible mobility windows for a dirty
// subset of nodes without re-scheduling the clean ones: clean nodes are
// pinned to their previous Early/Late starts, dirty nodes get the full
// placement search of the underlying pasap/palap pair. prev must be the
// window set of a previous Windows (or WindowsDirty) call under
// compatible options. An error wrapping ErrStale means the dirty set was
// too small to absorb the change and the caller must fall back to the
// full Windows derivation.
func WindowsDirty(g *cdfg.Graph, bind Binding, deadline int, opts Options, prev []Window, dirty []bool) ([]Window, error) {
	if len(prev) != g.N() {
		return nil, fmt.Errorf("sched: windows dirty: %d previous windows for %d nodes", len(prev), g.N())
	}
	a := opts.arenaFor(g)
	early, err := pasapPinned(g, bind, opts, pinsFrom(a, g.N(), func(i int) int { return prev[i].Early }, dirty))
	if err != nil {
		return nil, err
	}
	if deadline > 0 && early.Length() > deadline {
		return nil, fmt.Errorf("sched: windows: pasap length %d exceeds deadline %d: %w", early.Length(), deadline, ErrDeadline)
	}
	late, err := palapPinned(g, bind, deadline, opts, pinsFrom(a, g.N(), func(i int) int { return prev[i].Late }, dirty))
	if err != nil {
		return nil, err
	}
	ws := make([]Window, g.N())
	for i := range ws {
		ws[i] = Window{Early: early.Start[i], Late: late.Start[i]}
	}
	return ws, nil
}
