package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pchls/internal/bench"
	"pchls/internal/cache"
	"pchls/internal/cdfg"
	"pchls/internal/cluster"
	"pchls/internal/core"
	"pchls/internal/library"
	"pchls/internal/sched"
)

// newTestCluster boots a coordinator fronting n in-process workers and
// returns the coordinator's base URL, its pool, and the worker servers.
func newTestCluster(t *testing.T, n int) (*cluster.Pool, *httptest.Server, []*httptest.Server) {
	t.Helper()
	var (
		urls    []string
		workers []*httptest.Server
	)
	for i := 0; i < n; i++ {
		_, ts := newTestServer(t, Config{Worker: true})
		workers = append(workers, ts)
		urls = append(urls, ts.URL)
	}
	pool := cluster.NewPool(cluster.PoolConfig{
		PerWorker:    2,
		PointTimeout: 30 * time.Second,
		ReviveAfter:  time.Minute,
	})
	pool.SetMembers(urls)
	_, coord := newTestServer(t, Config{Pool: pool})
	return pool, coord, workers
}

// requireSameResponse posts body to path on both servers and requires
// byte-identical (status, body) pairs.
func requireSameResponse(t *testing.T, path, body, clusterURL, soloURL string) {
	t.Helper()
	got := postJSON(t, clusterURL+path, body)
	gotBody := readBody(t, got)
	want := postJSON(t, soloURL+path, body)
	wantBody := readBody(t, want)
	if got.StatusCode != want.StatusCode {
		t.Fatalf("%s: cluster status %d, single-process status %d\ncluster body: %s", path, got.StatusCode, want.StatusCode, gotBody)
	}
	if !bytes.Equal(gotBody, wantBody) {
		t.Fatalf("%s: cluster response differs from single-process response\ncluster:  %s\nsolo:     %s", path, gotBody, wantBody)
	}
}

// TestClusterSurfaceByteIdentical is the acceptance test of the
// distributed path: every built-in benchmark's time-power surface,
// explored through a coordinator sharding cells over three workers, must
// be byte-identical to a single-process server's response.
func TestClusterSurfaceByteIdentical(t *testing.T) {
	pool, coord, _ := newTestCluster(t, 3)
	_, solo := newTestServer(t, Config{})
	lib := library.Table1()

	for _, name := range benchmarkNames {
		g, err := bench.ByName(name)
		if err != nil {
			t.Fatalf("bench.ByName(%q): %v", name, err)
		}
		asap, err := sched.ASAP(g, sched.UniformFastest(lib))
		if err != nil {
			t.Fatalf("ASAP(%s): %v", name, err)
		}
		cp, peak := asap.Length(), asap.PeakPower()
		// One deadline below the critical path exercises the infeasible
		// (422) leg of the point protocol alongside feasible cells.
		body := fmt.Sprintf(`{"benchmark":%q,"deadlines":[%d,%d,%d],"powers":[%g,%g],"single_pass":true}`,
			name, cp-1, cp, cp+3, peak/3, peak)
		requireSameResponse(t, "/v1/surface", body, coord.URL, solo.URL)
	}
	if pts := pool.Stats().Points; pts == 0 {
		t.Error("the coordinator answered every surface without dispatching a single point")
	}
}

// TestClusterSweepByteIdentical drives the full (non-single-pass) engine
// through the sharded sweep path and checks the coordinator's own result
// cache: the repeat request is a hit served without touching the fleet.
func TestClusterSweepByteIdentical(t *testing.T) {
	pool, coord, _ := newTestCluster(t, 3)
	_, solo := newTestServer(t, Config{})

	body := `{"benchmark":"hal","deadline":17,"power_min":5,"power_max":50,"step":5}`
	requireSameResponse(t, "/v1/sweep", body, coord.URL, solo.URL)

	dispatched := pool.Stats().Points
	if dispatched == 0 {
		t.Fatal("sweep dispatched no points")
	}
	resp := postJSON(t, coord.URL+"/v1/sweep", body)
	readBody(t, resp)
	if out := resp.Header.Get(headerCache); out != "hit" {
		t.Errorf("repeated sweep %s = %q, want hit", headerCache, out)
	}
	if pts := pool.Stats().Points; pts != dispatched {
		t.Errorf("cached sweep re-dispatched points (%d -> %d)", dispatched, pts)
	}
}

// TestClusterSynthesizeAndPortfolio covers the two non-grid routes: a
// single synthesize goes to its key's owner, a portfolio is proxied
// whole; both must answer byte-identically to a single-process server.
func TestClusterSynthesizeAndPortfolio(t *testing.T) {
	_, coord, _ := newTestCluster(t, 3)
	_, solo := newTestServer(t, Config{})

	requireSameResponse(t, "/v1/synthesize", `{"benchmark":"diffeq2","deadline":30,"power_max":15}`, coord.URL, solo.URL)
	// Deterministic infeasibility crosses the cluster as a 422 result.
	requireSameResponse(t, "/v1/synthesize", `{"benchmark":"hal","deadline":1}`, coord.URL, solo.URL)
	requireSameResponse(t, "/v1/portfolio", `{"benchmark":"hal","deadline":17,"power_max":20,"k":2,"budget":1,"seed":7}`, coord.URL, solo.URL)
	// Request errors never reach the fleet and must match too.
	requireSameResponse(t, "/v1/synthesize", `{"benchmark":"nope","deadline":10}`, coord.URL, solo.URL)
}

// TestClusterNoWorkers pins the failure mode of an empty fleet: 503, not
// a hang or a fallback to local computation the coordinator cannot do.
func TestClusterNoWorkers(t *testing.T) {
	pool := cluster.NewPool(cluster.PoolConfig{})
	_, coord := newTestServer(t, Config{Pool: pool})
	resp := postJSON(t, coord.URL+"/v1/synthesize", `{"benchmark":"hal","deadline":17}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", resp.StatusCode, body)
	}
}

// TestClusterSurvivesWorkerFailureMidSweep kills one worker after its
// first served point: the pool must mark it dead, re-dispatch its shard
// onto the survivors, and still assemble the byte-identical response.
func TestClusterSurvivesWorkerFailureMidSweep(t *testing.T) {
	var (
		urls   []string
		served atomic.Int64
		killed atomic.Int64
	)
	for i := 0; i < 3; i++ {
		s := New(Config{Worker: true})
		h := s.Handler()
		if i == 0 {
			// This worker dies after one point: every later request is
			// refused the way a crashed process would refuse it.
			h = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if strings.HasPrefix(r.URL.Path, "/cluster/point") && served.Add(1) > 1 {
					killed.Add(1)
					http.Error(w, "worker killed", http.StatusInternalServerError)
					return
				}
				s.Handler().ServeHTTP(w, r)
			})
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	pool := cluster.NewPool(cluster.PoolConfig{PerWorker: 2, PointTimeout: 30 * time.Second, ReviveAfter: time.Minute})
	pool.SetMembers(urls)
	_, coord := newTestServer(t, Config{Pool: pool})
	_, solo := newTestServer(t, Config{})

	body := `{"benchmark":"hal","deadlines":[10,17],"powers":[5,10,15,20,25,30,35,40]}`
	requireSameResponse(t, "/v1/surface", body, coord.URL, solo.URL)
	if killed.Load() > 0 && pool.Stats().Retries == 0 {
		t.Errorf("worker refused %d points but the pool recorded no retries", killed.Load())
	}
}

// TestClusterRegister exercises the coordinator's registration endpoint.
func TestClusterRegister(t *testing.T) {
	pool := cluster.NewPool(cluster.PoolConfig{})
	_, coord := newTestServer(t, Config{Pool: pool})

	resp := postJSON(t, coord.URL+"/cluster/register", `{"addr":"http://127.0.0.1:39999"}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register = %d (%s)", resp.StatusCode, body)
	}
	var reg cluster.RegisterResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatalf("decoding register response: %v", err)
	}
	if len(reg.Members) != 1 || reg.Members[0] != "http://127.0.0.1:39999" {
		t.Errorf("members = %v", reg.Members)
	}
	if got := pool.Members(); len(got) != 1 {
		t.Errorf("pool members = %v", got)
	}

	for _, bad := range []string{`{"addr":""}`, `{"addr":"not a url"}`, `{"addr":"/relative"}`} {
		resp := postJSON(t, coord.URL+"/cluster/register", bad)
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("register %s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestClusterPeerFill wires two workers into a cache-peer ring and
// checks the miss path: a key cached on its owner is served to the other
// worker as a peer fill ("peer" outcome), byte-identically.
func TestClusterPeerFill(t *testing.T) {
	peersA, peersB := cluster.NewPeers(), cluster.NewPeers()
	_, tsA := newTestServer(t, Config{Worker: true, Peers: peersA})
	_, tsB := newTestServer(t, Config{Worker: true, Peers: peersB})
	members := []string{tsA.URL, tsB.URL}
	peersA.Configure(tsA.URL, members)
	peersB.Configure(tsB.URL, members)

	// Address the request to its owner first so the non-owner's miss has
	// something to fetch.
	g, err := bench.ByName("hal")
	if err != nil {
		t.Fatal(err)
	}
	cons := core.Constraints{Deadline: 17, PowerMax: 20}
	key := cache.SynthesizeKey(g, library.Table1(), cons, false)
	owner, other := tsA.URL, tsB.URL
	if cluster.NewRing(members, 0).Owner(key) == tsB.URL {
		owner, other = tsB.URL, tsA.URL
	}

	const body = `{"benchmark":"hal","deadline":17,"power_max":20}`
	cold := postJSON(t, owner+"/v1/synthesize", body)
	coldBody := readBody(t, cold)
	if out := cold.Header.Get(headerCache); out != "miss" {
		t.Fatalf("owner's first request %s = %q, want miss", headerCache, out)
	}

	filled := postJSON(t, other+"/v1/synthesize", body)
	filledBody := readBody(t, filled)
	if out := filled.Header.Get(headerCache); out != "peer" {
		t.Fatalf("non-owner's miss %s = %q, want peer", headerCache, out)
	}
	if !bytes.Equal(coldBody, filledBody) {
		t.Error("peer-filled response differs from the owner's response")
	}

	// The fill populated the non-owner's local cache.
	warm := postJSON(t, other+"/v1/synthesize", body)
	readBody(t, warm)
	if out := warm.Header.Get(headerCache); out != "hit" {
		t.Errorf("repeat on the non-owner %s = %q, want hit", headerCache, out)
	}

	resp, err := http.Get(other + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody := readBody(t, resp)
	if !strings.Contains(string(mbody), "pchls_cache_peer_hits_total 1") {
		t.Errorf("peer metrics missing from /metrics:\n%s", mbody)
	}
}

// TestEndpointLatencyHistogram asserts the per-endpoint latency
// histogram pchls_request_seconds{endpoint=...} appears on /metrics with
// one observation per served request.
func TestEndpointLatencyHistogram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	readBody(t, postJSON(t, ts.URL+"/v1/synthesize", `{"benchmark":"hal","deadline":17,"power_max":20}`))
	readBody(t, postJSON(t, ts.URL+"/v1/batch", `{"requests":[{"synthesize":{"benchmark":"hal","deadline":17,"power_max":20}}]}`))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := string(readBody(t, resp))
	for _, want := range []string{
		`pchls_request_seconds_bucket{endpoint="/v1/synthesize",le="+Inf"} 1`,
		`pchls_request_seconds_count{endpoint="/v1/synthesize"} 1`,
		`pchls_request_seconds_count{endpoint="/v1/batch"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// batchResult mirrors batchItemJSON for decoding in tests.
type batchResult struct {
	Status int    `json:"status"`
	Cache  string `json:"cache"`
	Body   []byte `json:"body"`
}

// TestBatchMatchesIndividualResponses pins the batch contract: every
// item's (status, body) is byte-identical to the standalone endpoint's
// response, in input order, including request errors and 422s.
func TestBatchMatchesIndividualResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	items := []struct {
		kind, path, req string
	}{
		{"synthesize", "/v1/synthesize", `{"benchmark":"hal","deadline":17,"power_max":20}`},
		{"sweep", "/v1/sweep", `{"benchmark":"hal","deadline":17,"power_min":5,"power_max":20,"step":5,"single_pass":true}`},
		{"surface", "/v1/surface", `{"benchmark":"hal","deadlines":[10,17],"powers":[20,40],"single_pass":true}`},
		{"portfolio", "/v1/portfolio", `{"benchmark":"hal","deadline":17,"power_max":20,"k":2,"budget":1,"seed":3}`},
		{"synthesize", "/v1/synthesize", `{"benchmark":"hal","deadline":1}`},                              // deterministic 422
		{"synthesize", "/v1/synthesize", `{"benchmark":"nope","deadline":10}`},                            // request error 404/400
		{"sweep", "/v1/sweep", `{"benchmark":"hal","deadline":17,"power_min":50,"power_max":5,"step":5}`}, // invalid grid
	}

	type individual struct {
		status int
		body   []byte
	}
	want := make([]individual, len(items))
	for i, it := range items {
		resp := postJSON(t, ts.URL+it.path, it.req)
		want[i] = individual{status: resp.StatusCode, body: readBody(t, resp)}
	}

	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i, it := range items {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{%q:%s}`, it.kind, it.req)
	}
	sb.WriteString(`]}`)

	resp := postJSON(t, ts.URL+"/v1/batch", sb.String())
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d (%s)", resp.StatusCode, raw)
	}
	var out struct {
		Results []batchResult `json:"results"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	if len(out.Results) != len(items) {
		t.Fatalf("batch returned %d results for %d requests", len(out.Results), len(items))
	}
	for i, got := range out.Results {
		if got.Status != want[i].status {
			t.Errorf("item %d (%s): batch status %d, standalone %d", i, items[i].path, got.Status, want[i].status)
		}
		if !bytes.Equal(got.Body, want[i].body) {
			t.Errorf("item %d (%s): batch body differs from standalone response\nbatch:      %s\nstandalone: %s",
				i, items[i].path, got.Body, want[i].body)
		}
	}
	// The batch ran after the standalone requests, so every successful
	// item was a cache hit — the batch path shares the standalone keys.
	if out.Results[0].Cache != "hit" {
		t.Errorf("item 0 cache = %q, want hit", out.Results[0].Cache)
	}

	// Base64 bodies survive a raw-JSON round trip: decoding the wire form
	// by hand must yield the same bytes as encoding/json's []byte path.
	var rawOut struct {
		Results []struct {
			Body string `json:"body"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &rawOut); err != nil {
		t.Fatalf("raw decode: %v", err)
	}
	decoded, err := base64.StdEncoding.DecodeString(rawOut.Results[0].Body)
	if err != nil {
		t.Fatalf("body is not base64: %v", err)
	}
	if !bytes.Equal(decoded, want[0].body) {
		t.Error("hand-decoded base64 body differs from the standalone response")
	}
}

// TestBatchValidation covers the batch envelope's own error paths.
func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty", `{"requests":[]}`},
		{"no kind", `{"requests":[{}]}`},
		{"two kinds", `{"requests":[{"synthesize":{"benchmark":"hal","deadline":17},"sweep":{"benchmark":"hal","deadline":17,"power_min":5,"power_max":20,"step":5}}]}`},
		{"not json", `nope`},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/batch", tc.body)
		readBody(t, resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}

	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchRequests; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"synthesize":{"benchmark":"hal","deadline":17}}`)
	}
	sb.WriteString(`]}`)
	resp := postJSON(t, ts.URL+"/v1/batch", sb.String())
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status = %d, want 400", resp.StatusCode)
	}
}

// TestClusterBatchByteIdentical runs a mixed batch through the
// coordinator: every item must match the single-process standalone
// response, proving the batch and cluster layers compose.
func TestClusterBatchByteIdentical(t *testing.T) {
	_, coord, _ := newTestCluster(t, 3)
	_, solo := newTestServer(t, Config{})

	batch := `{"requests":[
		{"synthesize":{"benchmark":"hal","deadline":17,"power_max":20}},
		{"surface":{"benchmark":"diffeq2","deadlines":[20,30],"powers":[10,15],"single_pass":true}},
		{"synthesize":{"benchmark":"hal","deadline":1}}
	]}`
	requireSameResponse(t, "/v1/batch", batch, coord.URL, solo.URL)
}

// BenchmarkCluster measures how the coordinator scales a sweep across a
// worker fleet. Real single-pass synthesis of this grid is far too fast
// (microseconds per point) to expose dispatch parallelism on any machine,
// so each worker's engine is slowed by a fixed simulated service time;
// the lane then measures how well the coordinator overlaps that service
// time across workers. benchcompare's cluster lane pins the workers1 and
// workers3 budgets and the workers1/workers3 speedup floor
// (results/BENCH_cluster.json).
func BenchmarkCluster(b *testing.B) {
	const serviceTime = 20 * time.Millisecond
	for _, n := range []int{1, 3} {
		b.Run(fmt.Sprintf("workers%d", n), func(b *testing.B) {
			var urls []string
			for i := 0; i < n; i++ {
				ws := New(Config{Worker: true, Workers: 4})
				inner := ws.synth
				ws.synth = func(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error) {
					time.Sleep(serviceTime)
					return inner(ctx, g, lib, cons, cfg, singlePass)
				}
				ts := httptest.NewServer(ws.Handler())
				defer ts.Close()
				urls = append(urls, ts.URL)
			}
			pool := cluster.NewPool(cluster.PoolConfig{PerWorker: 4, PointTimeout: 60 * time.Second})
			pool.SetMembers(urls)
			cs := New(Config{Pool: pool, Workers: 8})
			cts := httptest.NewServer(cs.Handler())
			defer cts.Close()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh power grid every iteration: every cell is a cold
				// key, so each iteration pays ten real dispatches (powers
				// 5..50 step 5) instead of replaying the coordinator cache.
				body := fmt.Sprintf(`{"benchmark":"hal","deadline":17,"power_min":%g,"power_max":50,"step":5,"single_pass":true}`,
					5+float64(i)/1e6)
				resp, err := http.Post(cts.URL+"/v1/sweep", "application/json", strings.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("sweep status %d", resp.StatusCode)
				}
			}
		})
	}
}
