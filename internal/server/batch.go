package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"pchls/internal/cache"
	"pchls/internal/runner"
)

// POST /v1/batch: a list of synthesize/portfolio/sweep/surface/pareto requests
// evaluated with bounded fan-out, answered as index-ordered results.
// Each item routes through the same exec core as its standalone
// endpoint — same cache key, same admission slots, same engine or
// cluster dispatch — so an item's status and body are byte-identical to
// the response of the corresponding individual request.

// maxBatchRequests bounds one batch; larger workloads paginate.
const maxBatchRequests = 256

// batchItem is one request of a batch: exactly one field must be set.
type batchItem struct {
	Synthesize *synthesizeRequest `json:"synthesize,omitempty"`
	Portfolio  *portfolioRequest  `json:"portfolio,omitempty"`
	Sweep      *sweepRequest      `json:"sweep,omitempty"`
	Surface    *surfaceRequest    `json:"surface,omitempty"`
	Pareto     *paretoRequest     `json:"pareto,omitempty"`
}

func (it batchItem) kinds() int {
	n := 0
	for _, set := range []bool{it.Synthesize != nil, it.Portfolio != nil, it.Sweep != nil, it.Surface != nil, it.Pareto != nil} {
		if set {
			n++
		}
	}
	return n
}

type batchRequest struct {
	Requests []batchItem `json:"requests"`
}

// batchItemJSON is one item's outcome: the HTTP status and exact body
// the standalone endpoint would have produced, plus the cache outcome
// ("" when the item failed before reaching the cache). Body is base64
// on the wire ([]byte), not embedded JSON: re-indenting an embedded
// document would break the byte-for-byte equality with the standalone
// response that base64 preserves.
type batchItemJSON struct {
	Status int    `json:"status"`
	Cache  string `json:"cache,omitempty"`
	Body   []byte `json:"body"`
}

type batchJSON struct {
	Results []batchItemJSON `json:"results"`
}

// execBatchItem runs one batch item with its own request timeout,
// mirroring how a standalone request would be bounded.
func (s *Server) execBatchItem(parent context.Context, it batchItem) batchItemJSON {
	ctx, cancel := context.WithTimeout(parent, s.cfg.RequestTimeout)
	defer cancel()
	var (
		res     *result
		outcome cache.Outcome
		err     error
	)
	switch {
	case it.Synthesize != nil:
		res, outcome, err = s.execSynthesize(ctx, it.Synthesize)
	case it.Portfolio != nil:
		res, outcome, err = s.execPortfolio(ctx, it.Portfolio)
	case it.Sweep != nil:
		res, outcome, err = s.execSweep(ctx, it.Sweep)
	case it.Surface != nil:
		res, outcome, err = s.execSurface(ctx, it.Surface)
	case it.Pareto != nil:
		res, outcome, err = s.execPareto(ctx, it.Pareto)
	}
	if err != nil {
		if isRequestError(err) {
			status, msg := requestErrorStatus(err)
			return batchItemJSON{Status: status, Body: errorBody(msg)}
		}
		status, body, _ := computeErrorStatus(err)
		return batchItemJSON{Status: status, Body: body}
	}
	return batchItemJSON{Status: res.status, Cache: outcome.String(), Body: res.body}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeRequestError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, `"requests" must be non-empty`)
		return
	}
	if len(req.Requests) > maxBatchRequests {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("a batch may hold at most %d requests", maxBatchRequests))
		return
	}
	for i, it := range req.Requests {
		if it.kinds() != 1 {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf(`request %d must set exactly one of "synthesize", "portfolio", "sweep", "surface", "pareto"`, i))
			return
		}
	}
	// Fan out at most Workers items concurrently: items acquire the same
	// admission slots as standalone requests, so a wider fan-out would
	// only convert queue waits into 429s.
	results, err := runner.Map(r.Context(), len(req.Requests), runner.Config{Workers: s.cfg.Workers},
		func(ctx context.Context, i int) (batchItemJSON, error) {
			return s.execBatchItem(ctx, req.Requests[i]), nil
		})
	if err != nil {
		writeComputeError(w, err)
		return
	}
	body, err := json.MarshalIndent(batchJSON{Results: results}, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}
