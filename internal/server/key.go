package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"

	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
)

// Cache keys are content addresses: a SHA-256 over a canonical rendering
// of every input that can change the response bytes — the CDFG (node
// names, operations and edges in ID order), the module library
// (declaration order), the constraints and the algorithm selection.
// Inputs that provably cannot change the result — worker counts, the
// incremental-engine toggle (byte-identical by the PR 2 equivalence
// gate) — are deliberately excluded so they share cache entries.
//
// The keyVersion prefix invalidates the whole address space whenever the
// canonical rendering or the response schema changes.
const keyVersion = "pchls-v1"

// canonFloat renders a float bit-exactly (hex float format), so distinct
// constraint values never collide and equal values always agree.
func canonFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

// writeGraphLib renders the shared (graph, library) prefix of every key.
func writeGraphLib(sb *strings.Builder, g *cdfg.Graph, lib *library.Library) {
	sb.WriteString("graph\n")
	sb.WriteString(g.Text())
	sb.WriteString("library\n")
	for _, m := range lib.Modules() {
		ops := make([]string, len(m.Ops))
		for i, o := range m.Ops {
			ops[i] = o.String()
		}
		fmt.Fprintf(sb, "module %s %s %s %d %s\n",
			m.Name, strings.Join(ops, ","), canonFloat(m.Area), m.Delay, canonFloat(m.Power))
	}
}

func finishKey(sb *strings.Builder) string {
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// synthesizeKey derives the content address of one /v1/synthesize result.
func synthesizeKey(g *cdfg.Graph, lib *library.Library, cons core.Constraints, singlePass bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s synthesize single=%t deadline=%d power=%s\n",
		keyVersion, singlePass, cons.Deadline, canonFloat(cons.PowerMax))
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}

// portfolioKey derives the content address of one /v1/portfolio result.
// The effort knobs (k, budget) and the seed are part of the address: the
// portfolio's output is a pure function of them.
func portfolioKey(g *cdfg.Graph, lib *library.Library, cons core.Constraints, k, budget int, seed int64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s portfolio k=%d budget=%d seed=%d deadline=%d power=%s\n",
		keyVersion, k, budget, seed, cons.Deadline, canonFloat(cons.PowerMax))
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}

// sweepKey derives the content address of one /v1/sweep result.
func sweepKey(g *cdfg.Graph, lib *library.Library, deadline int, pmin, pmax, step float64, singlePass bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s sweep single=%t deadline=%d grid=%s:%s:%s\n",
		keyVersion, singlePass, deadline, canonFloat(pmin), canonFloat(pmax), canonFloat(step))
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}

// surfaceKey derives the content address of one /v1/surface result.
func surfaceKey(g *cdfg.Graph, lib *library.Library, deadlines []int, powers []float64, singlePass bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s surface single=%t deadlines=", keyVersion, singlePass)
	for i, d := range deadlines {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(d))
	}
	sb.WriteString(" powers=")
	for i, p := range powers {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(canonFloat(p))
	}
	sb.WriteByte('\n')
	writeGraphLib(&sb, g, lib)
	return finishKey(&sb)
}
