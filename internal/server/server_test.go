package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pchls/internal/bench"
	"pchls/internal/cdfg"
	"pchls/internal/core"
	"pchls/internal/library"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	return b
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEndToEndSynthesize drives a real listener end to end: the served
// design JSON must be byte-identical to what the engine (and therefore
// the CLI's -json output) produces for the same inputs.
func TestEndToEndSynthesize(t *testing.T) {
	s := New(Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	cases := []struct {
		name     string
		deadline int
		power    float64
	}{
		{"hal", 17, 20},
		{"diffeq2", 30, 15},
	}
	for _, tc := range cases {
		body := fmt.Sprintf(`{"benchmark":%q,"deadline":%d,"power_max":%g}`, tc.name, tc.deadline, tc.power)
		resp := postJSON(t, base+"/v1/synthesize", body)
		got := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d, body %s", tc.name, resp.StatusCode, got)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", tc.name, ct)
		}
		if out := resp.Header.Get(headerCache); out != "miss" {
			t.Errorf("%s: %s = %q, want miss", tc.name, headerCache, out)
		}

		g, err := bench.ByName(tc.name)
		if err != nil {
			t.Fatalf("bench.ByName(%q): %v", tc.name, err)
		}
		d, err := core.SynthesizeBestContext(context.Background(), g, library.Table1(),
			core.Constraints{Deadline: tc.deadline, PowerMax: tc.power}, core.Config{Workers: 1})
		if err != nil {
			t.Fatalf("engine synthesis of %s: %v", tc.name, err)
		}
		want, err := d.JSON()
		if err != nil {
			t.Fatalf("d.JSON(): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: served JSON differs from engine JSON (%d vs %d bytes)", tc.name, len(got), len(want))
		}
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestWarmCacheSkipsSynthesis repeats a request and requires the second
// response to come straight from the cache: zero engine runs, the same
// bytes, and no second call into the synthesis hook.
func TestWarmCacheSkipsSynthesis(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var calls atomic.Int64
	inner := s.synth
	s.synth = func(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error) {
		calls.Add(1)
		return inner(ctx, g, lib, cons, cfg, singlePass)
	}

	const body = `{"benchmark":"hal","deadline":17,"power_max":20}`
	cold := postJSON(t, ts.URL+"/v1/synthesize", body)
	coldBytes := readBody(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status = %d, body %s", cold.StatusCode, coldBytes)
	}
	if out := cold.Header.Get(headerCache); out != "miss" {
		t.Fatalf("cold %s = %q, want miss", headerCache, out)
	}
	if runs := cold.Header.Get(headerSchedulerRuns); runs == "0" || runs == "" {
		t.Fatalf("cold %s = %q, want > 0", headerSchedulerRuns, runs)
	}

	warm := postJSON(t, ts.URL+"/v1/synthesize", body)
	warmBytes := readBody(t, warm)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm status = %d", warm.StatusCode)
	}
	if out := warm.Header.Get(headerCache); out != "hit" {
		t.Errorf("warm %s = %q, want hit", headerCache, out)
	}
	if runs := warm.Header.Get(headerSchedulerRuns); runs != "0" {
		t.Errorf("warm %s = %q, want 0 (cache hits perform no synthesis)", headerSchedulerRuns, runs)
	}
	if runs := warm.Header.Get(headerIncrementalRuns); runs != "0" {
		t.Errorf("warm %s = %q, want 0", headerIncrementalRuns, runs)
	}
	if !bytes.Equal(coldBytes, warmBytes) {
		t.Errorf("warm body differs from cold body (%d vs %d bytes)", len(warmBytes), len(coldBytes))
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("synthesis hook called %d times, want 1", n)
	}

	metrics := string(readBody(t, postGet(t, ts.URL+"/metrics")))
	for _, want := range []string{
		"pchls_cache_hits_total 1",
		"pchls_cache_misses_total 1",
		"pchls_engine_synth_total 1",
		`pchls_http_requests_total{code="200",path="/v1/synthesize"} 2`,
		`pchls_http_request_seconds_count{path="/v1/synthesize"} 2`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func postGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestSingleflightConcurrentIdenticalRequests holds the one real
// synthesis open while identical requests pile up, then verifies exactly
// one engine run served every response.
func TestSingleflightConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := s.synth
	s.synth = func(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error) {
		if calls.Add(1) == 1 {
			close(entered)
		}
		<-release
		return inner(ctx, g, lib, cons, cfg, singlePass)
	}

	const body = `{"benchmark":"hal","deadline":17,"power_max":20}`
	const followers = 7
	type reply struct {
		status  int
		outcome string
		runs    string
		body    []byte
	}
	results := make(chan reply, followers+1)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json", strings.NewReader(body))
		if err != nil {
			results <- reply{status: -1}
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- reply{
			status:  resp.StatusCode,
			outcome: resp.Header.Get(headerCache),
			runs:    resp.Header.Get(headerSchedulerRuns),
			body:    b,
		}
	}

	go post() // leader: registers the flight, then blocks in synth
	<-entered
	for i := 0; i < followers; i++ {
		go post()
	}
	waitFor(t, "followers to coalesce", func() bool { return s.cache.Stats().Coalesced >= followers })
	close(release)

	var miss, coalesced int
	var first []byte
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("response %d: status = %d", i, r.status)
		}
		switch r.outcome {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("response %d: %s = %q", i, headerCache, r.outcome)
		}
		if r.runs == "0" || r.runs == "" {
			t.Errorf("response %d: %s = %q, want the leader's run count", i, headerSchedulerRuns, r.runs)
		}
		if first == nil {
			first = r.body
		} else if !bytes.Equal(first, r.body) {
			t.Errorf("response %d: body differs from first response", i)
		}
	}
	if miss != 1 || coalesced != followers {
		t.Errorf("outcomes: %d miss + %d coalesced, want 1 + %d", miss, coalesced, followers)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("synthesis hook called %d times, want 1", n)
	}

	metrics := string(readBody(t, postGet(t, ts.URL+"/metrics")))
	if !strings.Contains(metrics, "pchls_engine_synth_total 1") {
		t.Errorf("/metrics: engine ran more than once under singleflight")
	}
	if !strings.Contains(metrics, fmt.Sprintf("pchls_cache_coalesced_total %d", followers)) {
		t.Errorf("/metrics missing pchls_cache_coalesced_total %d", followers)
	}
}

// TestGracefulShutdown starts a real listener, parks one request inside
// synthesis, initiates Shutdown, and requires the in-flight request to
// complete while new ones are refused.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{})
	entered := make(chan struct{})
	release := make(chan struct{})
	inner := s.synth
	var calls atomic.Int64
	s.synth = func(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error) {
		if calls.Add(1) == 1 {
			close(entered)
		}
		<-release
		return inner(ctx, g, lib, cons, cfg, singlePass)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	inflight := make(chan reply1, 1)
	go func() {
		resp, err := http.Post(base+"/v1/synthesize", "application/json",
			strings.NewReader(`{"benchmark":"hal","deadline":17,"power_max":20}`))
		if err != nil {
			inflight <- reply1{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		inflight <- reply1{status: resp.StatusCode}
	}()
	<-entered

	shut := make(chan error, 1)
	go func() { shut <- s.Shutdown(context.Background()) }()
	waitFor(t, "drain flag", func() bool { return s.draining.Load() })

	// A draining server refuses new work on surviving connections...
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/synthesize",
		strings.NewReader(`{"benchmark":"hal","deadline":10}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining synthesize status = %d, want 503", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", rec.Code)
	}
	// ...and stops accepting new connections once Shutdown closes the
	// listener.
	waitFor(t, "listener to close", func() bool {
		conn, err := net.DialTimeout("tcp", l.Addr().String(), time.Second)
		if err != nil {
			return true
		}
		conn.Close()
		return false
	})

	close(release)
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Errorf("in-flight request status = %d, want 200", r.status)
	}
	if err := <-shut; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

type reply1 struct {
	status int
	err    error
}

// TestOverloadRejects fills every worker slot and queue position with
// gated requests, then requires the next distinct request to bounce with
// 429 immediately.
func TestOverloadRejects(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	inner := s.synth
	s.synth = func(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error) {
		entered <- struct{}{}
		<-release
		return inner(ctx, g, lib, cons, cfg, singlePass)
	}
	post := func(deadline int, out chan<- int) {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json",
			strings.NewReader(fmt.Sprintf(`{"benchmark":"hal","deadline":%d,"power_max":20}`, deadline)))
		if err != nil {
			out <- -1
			return
		}
		_, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		out <- resp.StatusCode
	}

	admitted := make(chan int, 3)
	go post(17, admitted) // occupies the single worker slot
	<-entered
	go post(18, admitted) // waits in the queue
	go post(19, admitted) // waits at the admission bound
	waitFor(t, "queue to fill", func() bool { return s.waiting.Load() == 2 })

	rejected := make(chan int, 1)
	post(20, rejected) // beyond Workers+QueueDepth: rejected immediately
	if code := <-rejected; code != http.StatusTooManyRequests {
		t.Fatalf("over-admission request status = %d, want 429", code)
	}

	close(release)
	for i := 0; i < 3; i++ {
		if code := <-admitted; code != http.StatusOK {
			t.Errorf("admitted request %d status = %d, want 200", i, code)
		}
	}
	metrics := string(readBody(t, postGet(t, ts.URL+"/metrics")))
	if !strings.Contains(metrics, "pchls_admission_rejected_total 1") {
		t.Errorf("/metrics missing pchls_admission_rejected_total 1")
	}
}

// TestRequestTimeout verifies that a synthesis outliving the per-request
// deadline maps to 503 and is not cached.
func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 20 * time.Millisecond})
	s.synth = func(ctx context.Context, g *cdfg.Graph, lib *library.Library, cons core.Constraints, cfg core.Config, singlePass bool) (*core.Design, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	resp := postJSON(t, ts.URL+"/v1/synthesize", `{"benchmark":"hal","deadline":17}`)
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request status = %d, want 503", resp.StatusCode)
	}
	if st := s.cache.Stats(); st.Entries != 0 {
		t.Errorf("timeout result was cached: %d entries", st.Entries)
	}
}

// TestInfeasibleCached verifies that deterministic infeasibility is a
// cacheable 422: the second identical request is a hit.
func TestInfeasibleCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const body = `{"benchmark":"hal","deadline":1}`
	first := postJSON(t, ts.URL+"/v1/synthesize", body)
	firstBytes := readBody(t, first)
	if first.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible status = %d, want 422 (body %s)", first.StatusCode, firstBytes)
	}
	second := postJSON(t, ts.URL+"/v1/synthesize", body)
	secondBytes := readBody(t, second)
	if second.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("repeat infeasible status = %d, want 422", second.StatusCode)
	}
	if out := second.Header.Get(headerCache); out != "hit" {
		t.Errorf("repeat infeasible %s = %q, want hit", headerCache, out)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Errorf("cached infeasible body differs")
	}
}

// TestBenchmarkAndInlineGraphShareCacheEntry posts hal by name and then
// as an inline graph: the content-addressed key must treat them as the
// same design.
func TestBenchmarkAndInlineGraphShareCacheEntry(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	byName := postJSON(t, ts.URL+"/v1/synthesize", `{"benchmark":"hal","deadline":17,"power_max":20}`)
	nameBytes := readBody(t, byName)
	if byName.StatusCode != http.StatusOK {
		t.Fatalf("by-name status = %d", byName.StatusCode)
	}

	g, err := bench.ByName("hal")
	if err != nil {
		t.Fatal(err)
	}
	graphJSON, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	inline := postJSON(t, ts.URL+"/v1/synthesize",
		fmt.Sprintf(`{"graph":%s,"deadline":17,"power_max":20}`, graphJSON))
	inlineBytes := readBody(t, inline)
	if inline.StatusCode != http.StatusOK {
		t.Fatalf("inline status = %d, body %s", inline.StatusCode, inlineBytes)
	}
	if out := inline.Header.Get(headerCache); out != "hit" {
		t.Errorf("inline-graph request %s = %q, want hit (same content address)", headerCache, out)
	}
	if !bytes.Equal(nameBytes, inlineBytes) {
		t.Errorf("inline-graph body differs from by-name body")
	}
	if st := s.cache.Stats(); st.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", st.Entries)
	}
}

// TestBadRequests maps malformed payloads to client errors.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"not json", "/v1/synthesize", `{`, http.StatusBadRequest},
		{"unknown field", "/v1/synthesize", `{"benchmark":"hal","deadline":17,"bogus":1}`, http.StatusBadRequest},
		{"trailing data", "/v1/synthesize", `{"benchmark":"hal","deadline":17}{}`, http.StatusBadRequest},
		{"no graph source", "/v1/synthesize", `{"deadline":17}`, http.StatusBadRequest},
		{"two graph sources", "/v1/synthesize", `{"benchmark":"hal","graph":{"name":"g","nodes":[{"name":"a","op":"+"}]},"deadline":17}`, http.StatusBadRequest},
		{"unknown benchmark", "/v1/synthesize", `{"benchmark":"nope","deadline":17}`, http.StatusBadRequest},
		{"zero deadline", "/v1/synthesize", `{"benchmark":"hal","deadline":0}`, http.StatusBadRequest},
		{"negative power", "/v1/synthesize", `{"benchmark":"hal","deadline":17,"power_max":-1}`, http.StatusBadRequest},
		{"nan power", "/v1/synthesize", `{"benchmark":"hal","deadline":17,"power_max":"x"}`, http.StatusBadRequest},
		{"unknown op", "/v1/synthesize", `{"graph":{"name":"g","nodes":[{"name":"a","op":"%"}]},"deadline":17}`, http.StatusBadRequest},
		{"cyclic graph", "/v1/synthesize", `{"graph":{"name":"g","nodes":[{"name":"a","op":"+"},{"name":"b","op":"+"}],"edges":[{"from":"a","to":"b"},{"from":"b","to":"a"}]},"deadline":17}`, http.StatusBadRequest},
		{"bad library", "/v1/synthesize", `{"benchmark":"hal","library":[{"name":"m","ops":["+"],"area":1,"delay":0,"power":1}],"deadline":17}`, http.StatusBadRequest},
		{"sweep zero step", "/v1/sweep", `{"benchmark":"hal","deadline":17,"power_min":5,"power_max":50,"step":0}`, http.StatusBadRequest},
		{"sweep inverted grid", "/v1/sweep", `{"benchmark":"hal","deadline":17,"power_min":50,"power_max":5,"step":5}`, http.StatusBadRequest},
		{"surface empty grid", "/v1/surface", `{"benchmark":"hal","deadlines":[],"powers":[20]}`, http.StatusBadRequest},
		{"surface bad deadline", "/v1/surface", `{"benchmark":"hal","deadlines":[0],"powers":[20]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts.URL+tc.path, tc.body)
			b := readBody(t, resp)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.status, b)
			}
			var e errorJSON
			if err := json.Unmarshal(b, &e); err != nil || e.Error == "" {
				t.Errorf("error body %q is not {\"error\":...}", b)
			}
		})
	}

	t.Run("oversized body", func(t *testing.T) {
		_, small := newTestServer(t, Config{MaxBodyBytes: 64})
		resp := postJSON(t, small.URL+"/v1/synthesize",
			`{"benchmark":"hal","deadline":17,"power_max":20.000000000000000000001}`)
		readBody(t, resp)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized status = %d, want 413", resp.StatusCode)
		}
	})
	t.Run("wrong method", func(t *testing.T) {
		resp := postGet(t, ts.URL+"/v1/synthesize")
		readBody(t, resp)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET synthesize status = %d, want 405", resp.StatusCode)
		}
	})
}

// TestSweepAndSurface smoke-tests the exploration endpoints including
// their warm-cache path.
func TestSweepAndSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{ExploreWorkers: 2})

	sweepBody := `{"benchmark":"hal","deadline":17,"power_min":10,"power_max":30,"step":10}`
	resp := postJSON(t, ts.URL+"/v1/sweep", sweepBody)
	cold := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status = %d, body %s", resp.StatusCode, cold)
	}
	var curve curveJSON
	if err := json.Unmarshal(cold, &curve); err != nil {
		t.Fatalf("sweep body: %v", err)
	}
	if curve.Benchmark != "hal" || len(curve.Points) != 3 {
		t.Errorf("sweep curve = %q with %d points, want hal with 3", curve.Benchmark, len(curve.Points))
	}
	if curve.TotalStats.SchedulerRuns == 0 {
		t.Errorf("sweep total_stats.scheduler_runs = 0, want > 0")
	}
	warm := postJSON(t, ts.URL+"/v1/sweep", sweepBody)
	warmBytes := readBody(t, warm)
	if out := warm.Header.Get(headerCache); out != "hit" {
		t.Errorf("warm sweep %s = %q, want hit", headerCache, out)
	}
	if !bytes.Equal(cold, warmBytes) {
		t.Errorf("warm sweep body differs from cold")
	}

	resp = postJSON(t, ts.URL+"/v1/surface", `{"benchmark":"hal","deadlines":[10,17],"powers":[20,40]}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("surface status = %d, body %s", resp.StatusCode, body)
	}
	var surf surfaceJSON
	if err := json.Unmarshal(body, &surf); err != nil {
		t.Fatalf("surface body: %v", err)
	}
	if len(surf.Points) != 4 {
		t.Errorf("surface points = %d, want 4", len(surf.Points))
	}
}

// TestBenchmarksEndpoint lists the built-in CDFG catalogue.
func TestBenchmarksEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postGet(t, ts.URL+"/v1/benchmarks")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("benchmarks status = %d", resp.StatusCode)
	}
	var list []benchmarkJSON
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("benchmarks body: %v", err)
	}
	if len(list) != len(benchmarkNames) {
		t.Fatalf("benchmarks = %d entries, want %d", len(list), len(benchmarkNames))
	}
	for i, b := range list {
		if b.Name != benchmarkNames[i] {
			t.Errorf("benchmark %d = %q, want %q", i, b.Name, benchmarkNames[i])
		}
		if b.Nodes == 0 || b.Graph == nil {
			t.Errorf("benchmark %q has no graph payload", b.Name)
		}
	}
}

// TestHealthz covers the liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := postGet(t, ts.URL+"/healthz")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, body)
	}
}

// BenchmarkServerSynthesize measures a synthesize round-trip through the
// full handler stack, cold (fresh cache every iteration) versus warm
// (every iteration after the first is a cache hit).
func BenchmarkServerSynthesize(b *testing.B) {
	const body = `{"benchmark":"hal","deadline":17,"power_max":20}`
	post := func(b *testing.B, s *Server) int {
		req := httptest.NewRequest("POST", "/v1/synthesize", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status = %d", rec.Code)
		}
		return rec.Body.Len()
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, New(Config{}))
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		s := New(Config{})
		post(b, s) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			post(b, s)
		}
	})
}
