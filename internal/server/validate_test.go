package server

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// metricValue extracts a metric's value line from the /metrics text.
func metricValue(t *testing.T, base, name string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body := string(readBody(t, resp))
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return ""
}

// TestValidateMode turns on response validation and requires it to be
// invisible in the bytes served: cold and warm responses stay identical
// to an unvalidated server's, warm hits are not re-validated, and the
// work is visible only in the metrics counters.
func TestValidateMode(t *testing.T) {
	_, plain := newTestServer(t, Config{})
	_, validating := newTestServer(t, Config{Validate: true})

	req := `{"benchmark":"hal","deadline":17,"power_max":7.5}`
	refResp := postJSON(t, plain.URL+"/v1/synthesize", req)
	ref := readBody(t, refResp)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("plain server: status %d: %s", refResp.StatusCode, ref)
	}

	cold := postJSON(t, validating.URL+"/v1/synthesize", req)
	coldBody := readBody(t, cold)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("validating server: status %d: %s", cold.StatusCode, coldBody)
	}
	if cold.Header.Get(headerCache) != "miss" {
		t.Fatalf("cold outcome = %q, want miss", cold.Header.Get(headerCache))
	}
	if !bytes.Equal(coldBody, ref) {
		t.Errorf("validation changed the served bytes (%d vs %d)", len(coldBody), len(ref))
	}
	if got := metricValue(t, validating.URL, "pchls_validations_total"); got != "1" {
		t.Errorf("pchls_validations_total = %s after cold request, want 1", got)
	}

	warm := postJSON(t, validating.URL+"/v1/synthesize", req)
	warmBody := readBody(t, warm)
	if warm.Header.Get(headerCache) != "hit" {
		t.Fatalf("warm outcome = %q, want hit", warm.Header.Get(headerCache))
	}
	if !bytes.Equal(warmBody, coldBody) {
		t.Error("warm response differs from cold response")
	}
	if got := metricValue(t, validating.URL, "pchls_validations_total"); got != "1" {
		t.Errorf("pchls_validations_total = %s after warm hit, want 1 (warm responses are not re-validated)", got)
	}
	if got := metricValue(t, validating.URL, "pchls_validation_failures_total"); got != "0" {
		t.Errorf("pchls_validation_failures_total = %s, want 0", got)
	}

	// The plain server never validates.
	if got := metricValue(t, plain.URL, "pchls_validations_total"); got != "0" {
		t.Errorf("unvalidated server counted %s validations", got)
	}
}

// TestValidateModeGridAndInfeasible covers the remaining response paths
// under validation: a sweep across feasibility regimes and a cacheable
// infeasibility verdict, neither of which changes under Validate.
func TestValidateModeGridAndInfeasible(t *testing.T) {
	_, ts := newTestServer(t, Config{Validate: true})

	resp := postJSON(t, ts.URL+"/v1/synthesize", `{"benchmark":"hal","deadline":2,"power_max":1}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible request: status %d: %s", resp.StatusCode, body)
	}
	if got := metricValue(t, ts.URL, "pchls_validations_total"); got != "0" {
		t.Errorf("infeasible synthesis was counted as a validation: %s", got)
	}

	for _, d := range []int{10, 17} {
		resp := postJSON(t, ts.URL+"/v1/synthesize", fmt.Sprintf(`{"benchmark":"hal","deadline":%d,"power_max":20}`, d))
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("T=%d: status %d: %s", d, resp.StatusCode, body)
		}
	}
	if got := metricValue(t, ts.URL, "pchls_validations_total"); got != "2" {
		t.Errorf("pchls_validations_total = %s, want 2", got)
	}
	if got := metricValue(t, ts.URL, "pchls_validation_failures_total"); got != "0" {
		t.Errorf("pchls_validation_failures_total = %s, want 0", got)
	}
}
